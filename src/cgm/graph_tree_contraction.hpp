// CGM tree contraction / expression tree evaluation (Table 1, Group C).
//
// Input: a binary expression tree (internal nodes carry + or *, leaves
// carry values) over the ring Z_2^64.  Output: the value of *every* node's
// subtree — the classical parallel tree-contraction problem [11].
//
// Rake-and-compress, CGM style (7 supersteps per round):
//   RAKE    — resolved nodes send their contribution g(v) (g is the
//             linear function accumulated on their parent edge) up; a
//             parent folds it into its partial, becoming a *chain node*
//             when exactly one unresolved child remains (its value is then
//             a linear function h(x) = g_child(x) op partial of that
//             child's value), or resolved when none remains.
//   COMPRESS— chains of chain nodes contract by randomized independent
//             sets exactly like list ranking: a node u with coin(u)=1 and
//             coin(parent)=0 splices a chain parent out by composing the
//             parent's pending function into its own edge function.  The
//             spliced parent freezes h for the expansion phase.
//   When few unresolved nodes remain they are gathered at processor 0,
//   evaluated sequentially, and scattered; spliced nodes then recover
//   their values in reverse rounds (v_p = h_p(v_child)).
//
// All arithmetic is in Z_2^64 (wrapping uint64), so + and * contributions
// compose into linear functions a*x + b exactly.
#pragma once

#include <vector>

#include "bsp/program.hpp"
#include "cgm/runner.hpp"

namespace embsp::cgm {

enum class ExprOp : std::uint8_t { kAdd = 0, kMul = 1 };

/// Linear function x -> a*x + b over Z_2^64.
struct LinFn {
  std::uint64_t a = 1;
  std::uint64_t b = 0;

  [[nodiscard]] std::uint64_t operator()(std::uint64_t x) const {
    return a * x + b;
  }
  /// Composition: (this after g)(x) = this(g(x)).
  [[nodiscard]] LinFn after(const LinFn& g) const {
    return LinFn{a * g.a, a * g.b + b};
  }
  /// The function x -> (x op k).
  static LinFn apply_op(ExprOp op, std::uint64_t k) {
    return op == ExprOp::kAdd ? LinFn{1, k} : LinFn{k, 0};
  }
};

struct TreeContractionProgram {
  std::uint64_t n = 0;
  std::uint64_t seed = 0xC0117ULL;
  std::uint64_t gather_threshold = 0;  ///< 0 = max(2*ceil(n/v), 64)

  static std::uint8_t coin(std::uint64_t node, std::uint32_t round,
                           std::uint64_t seed) {
    std::uint64_t z = node * 0x9e3779b97f4a7c15ULL + round * 31 + seed;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::uint8_t>((z ^ (z >> 31)) & 1);
  }

  enum Phase : std::uint8_t { kContract = 0, kGather = 1, kExpand = 2,
                              kDone = 3 };
  enum Status : std::uint8_t {
    kUnresolved = 0,      ///< >= 1 unresolved children
    kResolvedUnsent = 1,  ///< value known, contribution not yet sent up
    kResolvedSent = 2,
    kSpliced = 3,  ///< compressed out; value = h(value of splice_child)
    kFinal = 4,
  };

  struct Contribution {
    std::uint64_t parent;
    std::uint64_t value;  ///< already edge-function-applied
  };
  struct ChainQuery {
    std::uint64_t p;  ///< the parent being probed
    std::uint64_t u;  ///< the asking child
  };
  struct ChainReply {
    std::uint64_t u;
    std::uint64_t g_a, g_b;  ///< parent's edge function to *its* parent
    std::uint64_t partial;
    std::uint64_t grandparent;
    std::uint8_t op;
    std::uint8_t is_chain;
    std::uint8_t pad[6];
  };
  struct SpliceNotice {
    std::uint64_t p;          ///< spliced node
    std::uint64_t child;      ///< remaining child it depends on
    std::uint64_t h_a, h_b;   ///< v_p = h(v_child)
  };
  struct GatherNode {
    std::uint64_t id;
    std::uint64_t parent;
    std::uint64_t g_a, g_b;
    std::uint64_t partial;
    std::uint64_t value;
    std::uint8_t op;
    std::uint8_t pending;
    std::uint8_t status;
    std::uint8_t pad[5];
  };
  struct ValueMsg {
    std::uint64_t id;
    std::uint64_t value;
  };

  struct State {
    // Per local node (block distribution over [0, n)).
    std::vector<std::uint64_t> parent;
    std::vector<std::uint8_t> op;       ///< ExprOp for internal nodes
    std::vector<std::uint8_t> pending;  ///< unresolved children (0..2)
    std::vector<std::uint64_t> partial; ///< folded resolved contribution
    std::vector<std::uint8_t> has_partial;
    std::vector<std::uint64_t> g_a, g_b;  ///< edge function to parent
    std::vector<std::uint64_t> value;
    std::vector<std::uint8_t> status;
    std::vector<std::uint32_t> splice_round;
    std::vector<std::uint64_t> h_a, h_b, splice_child;
    std::uint8_t phase = kContract;
    std::uint8_t sub = 0;
    std::uint32_t round = 0;
    std::uint32_t total_rounds = 0;
    std::uint32_t expand_round = 0;

    void serialize(util::Writer& w) const {
      w.write_vector(parent);
      w.write_vector(op);
      w.write_vector(pending);
      w.write_vector(partial);
      w.write_vector(has_partial);
      w.write_vector(g_a);
      w.write_vector(g_b);
      w.write_vector(value);
      w.write_vector(status);
      w.write_vector(splice_round);
      w.write_vector(h_a);
      w.write_vector(h_b);
      w.write_vector(splice_child);
      w.write(phase);
      w.write(sub);
      w.write(round);
      w.write(total_rounds);
      w.write(expand_round);
    }
    void deserialize(util::Reader& r) {
      parent = r.read_vector<std::uint64_t>();
      op = r.read_vector<std::uint8_t>();
      pending = r.read_vector<std::uint8_t>();
      partial = r.read_vector<std::uint64_t>();
      has_partial = r.read_vector<std::uint8_t>();
      g_a = r.read_vector<std::uint64_t>();
      g_b = r.read_vector<std::uint64_t>();
      value = r.read_vector<std::uint64_t>();
      status = r.read_vector<std::uint8_t>();
      splice_round = r.read_vector<std::uint32_t>();
      h_a = r.read_vector<std::uint64_t>();
      h_b = r.read_vector<std::uint64_t>();
      splice_child = r.read_vector<std::uint64_t>();
      phase = r.read<std::uint8_t>();
      sub = r.read<std::uint8_t>();
      round = r.read<std::uint32_t>();
      total_rounds = r.read<std::uint32_t>();
      expand_round = r.read<std::uint32_t>();
    }
  };

  bool superstep(std::size_t, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const;

 private:
  bool contract_step(const bsp::ProcEnv& env, State& s, const bsp::Inbox& in,
                     bsp::Outbox& out) const;
  bool gather_step(const bsp::ProcEnv& env, State& s, const bsp::Inbox& in,
                   bsp::Outbox& out) const;
  bool expand_step(const bsp::ProcEnv& env, State& s, const bsp::Inbox& in,
                   bsp::Outbox& out) const;
};

/// A binary expression tree in parent-array form.  Internal nodes have
/// exactly two children; parent[root] == root.
struct ExpressionTree {
  std::vector<std::uint64_t> parent;
  std::vector<ExprOp> op;               ///< valid for internal nodes
  std::vector<std::uint64_t> leaf_value;  ///< valid for leaves
  std::vector<std::uint8_t> is_leaf;
};

struct TreeContractionOutcome {
  std::vector<std::uint64_t> value;  ///< per node, subtree value (Z_2^64)
  ExecResult exec;
};

/// Evaluates every subtree of the expression tree.
template <class Exec>
TreeContractionOutcome cgm_tree_contraction(Exec& exec,
                                            const ExpressionTree& tree,
                                            std::uint32_t v,
                                            std::uint64_t seed = 0xC0117ULL) {
  const std::uint64_t n = tree.parent.size();
  TreeContractionProgram prog;
  prog.n = n;
  prog.seed = seed;
  using State = TreeContractionProgram::State;
  BlockDist dist{n, v};
  TreeContractionOutcome outcome;
  outcome.value.assign(n, 0);
  outcome.exec = exec.run(
      prog, v,
      std::function<State(std::uint32_t)>([&](std::uint32_t pid) {
        State s;
        const auto first = dist.first(pid);
        const auto count = dist.count(pid);
        s.parent.assign(tree.parent.begin() + first,
                        tree.parent.begin() + first + count);
        s.op.resize(count);
        s.pending.assign(count, 0);
        s.partial.assign(count, 0);
        s.has_partial.assign(count, 0);
        s.g_a.assign(count, 1);
        s.g_b.assign(count, 0);
        s.value.assign(count, 0);
        s.status.resize(count);
        s.splice_round.assign(count, UINT32_MAX);
        s.h_a.assign(count, 1);
        s.h_b.assign(count, 0);
        s.splice_child.assign(count, 0);
        for (std::uint64_t i = 0; i < count; ++i) {
          s.op[i] = static_cast<std::uint8_t>(tree.op[first + i]);
          if (tree.is_leaf[first + i]) {
            s.value[i] = tree.leaf_value[first + i];
            s.status[i] = TreeContractionProgram::kResolvedUnsent;
          } else {
            s.pending[i] = 2;
            s.status[i] = TreeContractionProgram::kUnresolved;
          }
        }
        return s;
      }),
      std::function<void(std::uint32_t, State&)>(
          [&](std::uint32_t pid, State& s) {
            const auto first = dist.first(pid);
            for (std::uint64_t i = 0; i < s.value.size(); ++i) {
              outcome.value[first + i] = s.value[i];
            }
          }));
  return outcome;
}

/// Sequential reference evaluation (for tests).
std::vector<std::uint64_t> evaluate_expression_tree(
    const ExpressionTree& tree);

}  // namespace embsp::cgm
