#include "cgm/graph_lca.hpp"

#include <algorithm>
#include <unordered_map>

namespace embsp::cgm {

namespace {

/// Sparse table over depths for O(1) local range minima.
class SparseTable {
 public:
  explicit SparseTable(std::span<const TourEntry> a) : a_(a) {
    const std::size_t n = a.size();
    if (n == 0) return;
    levels_.push_back(std::vector<std::uint32_t>(n));
    for (std::size_t i = 0; i < n; ++i) {
      levels_[0][i] = static_cast<std::uint32_t>(i);
    }
    for (std::size_t len = 2; len <= n; len *= 2) {
      const auto& prev = levels_.back();
      std::vector<std::uint32_t> cur(n - len + 1);
      for (std::size_t i = 0; i + len <= n; ++i) {
        const auto x = prev[i];
        const auto y = prev[i + len / 2];
        cur[i] = a_[x].depth <= a_[y].depth ? x : y;
      }
      levels_.push_back(std::move(cur));
    }
  }

  /// Index of the minimum depth in [l, r] (inclusive, local indices).
  [[nodiscard]] std::size_t argmin(std::size_t l, std::size_t r) const {
    const std::size_t len = r - l + 1;
    std::size_t k = 0;
    while ((2ull << k) <= len) ++k;
    const auto x = levels_[k][l];
    const auto y = levels_[k][r + 1 - (1ull << k)];
    return a_[x].depth <= a_[y].depth ? x : y;
  }

 private:
  std::span<const TourEntry> a_;
  std::vector<std::vector<std::uint32_t>> levels_;
};

}  // namespace

bool LcaProgram::superstep(std::size_t step, const bsp::ProcEnv& env,
                           State& s, const bsp::Inbox& in,
                           bsp::Outbox& out) const {
  const std::uint32_t v = env.nprocs;
  BlockDist adist{array_len, v};

  switch (step) {
    case 0: {  // broadcast slab minima
      SlabMin mn{};
      mn.has = s.slab.empty() ? 0 : 1;
      if (mn.has) {
        mn.depth = s.slab[0].depth;
        mn.vertex = s.slab[0].vertex;
        for (const auto& e : s.slab) {
          if (e.depth < mn.depth) {
            mn.depth = e.depth;
            mn.vertex = e.vertex;
          }
        }
      }
      env.charge(s.slab.size() + 1);
      for (std::uint32_t q = 0; q < v; ++q) out.send_value(q, mn);
      return true;
    }
    case 1: {  // store minima; split queries into boundary sub-queries
      s.minima.clear();
      for (std::size_t i = 0; i < in.count(); ++i) {
        s.minima.push_back(in.value<SlabMin>(i));
      }
      std::vector<std::vector<SubQuery>> route(v);
      for (const auto& q : s.queries) {
        const auto sl = adist.owner(q.l);
        const auto sr = adist.owner(q.r);
        if (sl == sr) {
          route[sl].push_back(SubQuery{q.l, q.r, q.tag, env.pid, 1, {}});
        } else {
          route[sl].push_back(SubQuery{
              q.l, adist.first(sl) + adist.count(sl) - 1, q.tag, env.pid, 2,
              {}});
          route[sr].push_back(
              SubQuery{adist.first(sr), q.r, q.tag, env.pid, 2, {}});
        }
      }
      env.charge(s.queries.size() + 1);
      for (std::uint32_t q = 0; q < v; ++q) {
        if (!route[q].empty()) out.send_vector(q, route[q]);
      }
      return true;
    }
    case 2: {  // answer sub-queries with a local sparse table
      SparseTable table(s.slab);
      const std::uint64_t first = adist.first(env.pid);
      std::vector<std::vector<Partial>> replies(v);
      for (std::size_t i = 0; i < in.count(); ++i) {
        for (const auto& sq : in.vector<SubQuery>(i)) {
          const std::size_t idx =
              table.argmin(sq.l - first, sq.r - first);
          replies[sq.home].push_back(
              Partial{sq.tag, s.slab[idx].depth, s.slab[idx].vertex});
        }
      }
      env.charge(s.slab.size() + 1);
      for (std::uint32_t q = 0; q < v; ++q) {
        if (!replies[q].empty()) out.send_vector(q, replies[q]);
      }
      return true;
    }
    default: {  // step 3: combine partials + middle-slab minima
      std::unordered_map<std::uint64_t, Partial> best;
      for (std::size_t i = 0; i < in.count(); ++i) {
        for (const auto& p : in.vector<Partial>(i)) {
          auto [it, inserted] = best.try_emplace(p.tag, p);
          if (!inserted && p.depth < it->second.depth) it->second = p;
        }
      }
      s.answers.assign(s.queries.size(), 0);
      for (std::size_t i = 0; i < s.queries.size(); ++i) {
        const auto& q = s.queries[i];
        Partial acc = best.at(q.tag);
        const auto sl = adist.owner(q.l);
        const auto sr = adist.owner(q.r);
        for (std::uint32_t mid = sl + 1; mid < sr; ++mid) {
          if (s.minima[mid].has && s.minima[mid].depth < acc.depth) {
            acc.depth = s.minima[mid].depth;
            acc.vertex = s.minima[mid].vertex;
          }
        }
        s.answers[i] = acc.vertex;
      }
      env.charge(s.queries.size() + 1);
      return false;
    }
  }
}

}  // namespace embsp::cgm
