// CGM sorting by deterministic regular sampling (Table 1, Group A).
//
// The classic one-round-of-routing sample sort ([21] in the paper's
// numbering; Goodrich's communication-efficient sorting is its
// asymptotically refined cousin):
//   superstep 0: sort locally, pick v evenly spaced samples, send to proc 0
//   superstep 1: proc 0 sorts the v^2 samples, broadcasts v-1 splitters
//   superstep 2: partition the (locally sorted) data by splitter, route
//                partition i to processor i
//   superstep 3: merge the received sorted runs
// lambda = O(1) supersteps; with regular sampling no processor receives
// more than ~2n/v records.
//
// SortEngine is the embeddable state machine; several Group B/C algorithms
// run it as a sub-phase of their own superstep programs.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "bsp/program.hpp"
#include "cgm/runner.hpp"

namespace embsp::cgm {

template <typename Rec, typename Less>
struct SortEngine {
  static constexpr std::size_t kSteps = 4;

  /// One engine step.  `local_step` counts from 0; the engine consumes the
  /// inbox produced by its previous step, so the caller must route steps
  /// 0..3 to four consecutive supersteps.  `data` is sorted in place /
  /// replaced by this processor's slab of the global order.
  static void step(std::size_t local_step, const bsp::ProcEnv& env,
                   std::vector<Rec>& data, const bsp::Inbox& in,
                   bsp::Outbox& out, Less less) {
    const std::uint32_t v = env.nprocs;
    switch (local_step) {
      case 0: {
        std::stable_sort(data.begin(), data.end(), less);
        env.charge(data.size() ? data.size() * 8 : 1);
        std::vector<Rec> samples;
        samples.reserve(v);
        for (std::uint32_t j = 0; j < v && !data.empty(); ++j) {
          samples.push_back(data[j * data.size() / v]);
        }
        out.send_vector(0, samples);
        break;
      }
      case 1: {
        if (env.pid == 0) {
          std::vector<Rec> samples;
          for (std::size_t i = 0; i < in.count(); ++i) {
            auto part = in.vector<Rec>(i);
            samples.insert(samples.end(), part.begin(), part.end());
          }
          std::stable_sort(samples.begin(), samples.end(), less);
          env.charge(samples.size() * 8 + 1);
          std::vector<Rec> splitters;
          if (!samples.empty()) {
            for (std::uint32_t i = 1; i < v; ++i) {
              splitters.push_back(
                  samples[std::min(samples.size() - 1,
                                   i * samples.size() / v)]);
            }
          }
          for (std::uint32_t q = 0; q < v; ++q) {
            out.send_vector(q, splitters);
          }
        }
        break;
      }
      case 2: {
        const auto splitters = in.vector<Rec>(0);
        env.charge(data.size() + 1);
        // data is sorted; destination slabs are contiguous runs.
        std::size_t begin = 0;
        for (std::uint32_t q = 0; q < v; ++q) {
          std::size_t end;
          if (q + 1 <= splitters.size()) {
            // records r with less(r, splitters[q]) == false go to later
            // processors; run for q ends at the first r >= splitters[q]...
            // use upper_bound semantics: r goes to the first q such that
            // less(r, splitters[q]).
            end = static_cast<std::size_t>(
                std::lower_bound(data.begin() + begin, data.end(),
                                 splitters[q],
                                 [&](const Rec& r, const Rec& s) {
                                   return !less(s, r);  // r <= s
                                 }) -
                data.begin());
          } else {
            end = data.size();
          }
          if (end > begin) {
            std::vector<Rec> run(data.begin() + begin, data.begin() + end);
            out.send_vector(q, run);
          }
          begin = end;
        }
        data.clear();
        break;
      }
      case 3: {
        // Runs arrive sorted per source and the inbox is (src, seq)-sorted;
        // cascade-merge them.
        data.clear();
        for (std::size_t i = 0; i < in.count(); ++i) {
          auto run = in.vector<Rec>(i);
          const std::size_t mid = data.size();
          data.insert(data.end(), run.begin(), run.end());
          std::inplace_merge(data.begin(), data.begin() + mid, data.end(),
                             less);
        }
        env.charge(data.size() * 4 + 1);
        break;
      }
      default:
        break;
    }
  }
};

/// Standalone sorting program: four supersteps of SortEngine.
template <typename Rec, typename Less>
struct SortProgram {
  Less less{};

  struct State {
    std::vector<Rec> data;
    void serialize(util::Writer& w) const { w.write_vector(data); }
    void deserialize(util::Reader& r) { data = r.read_vector<Rec>(); }
  };

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const {
    SortEngine<Rec, Less>::step(step, env, s.data, in, out, less);
    return step + 1 < SortEngine<Rec, Less>::kSteps;
  }
};

template <typename Rec>
struct SortOutcome {
  std::vector<Rec> sorted;             ///< global order, concatenated slabs
  std::vector<std::uint64_t> slab_sizes;  ///< records per processor
  ExecResult exec;
};

/// Driver: block-distributes `input` over v virtual processors, runs the
/// sort program on `exec`, gathers the slabs in processor order.
template <typename Rec, typename Less, class Exec>
SortOutcome<Rec> cgm_sort(Exec& exec, std::span<const Rec> input,
                          std::uint32_t v, Less less = Less{}) {
  SortProgram<Rec, Less> prog{less};
  using State = typename SortProgram<Rec, Less>::State;
  BlockDist dist{input.size(), v};
  SortOutcome<Rec> outcome;
  std::vector<std::vector<Rec>> slabs(v);
  outcome.exec = exec.run(
      prog, v,
      std::function<State(std::uint32_t)>([&](std::uint32_t pid) {
        State s;
        const auto first = dist.first(pid);
        const auto count = dist.count(pid);
        s.data.assign(input.begin() + first, input.begin() + first + count);
        return s;
      }),
      std::function<void(std::uint32_t, State&)>(
          [&](std::uint32_t pid, State& s) {
            slabs[pid] = std::move(s.data);
          }));
  for (std::uint32_t q = 0; q < v; ++q) {
    outcome.slab_sizes.push_back(slabs[q].size());
    outcome.sorted.insert(outcome.sorted.end(), slabs[q].begin(),
                          slabs[q].end());
  }
  return outcome;
}

}  // namespace embsp::cgm
