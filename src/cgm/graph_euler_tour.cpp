#include "cgm/graph_euler_tour.hpp"

#include <algorithm>
#include <stdexcept>

namespace embsp::cgm {

bool ArcLinkProgram::superstep(std::size_t step, const bsp::ProcEnv& env,
                               State& s, const bsp::Inbox& in,
                               bsp::Outbox& out) const {
  const std::uint32_t v = env.nprocs;

  // Steps 0..3: global sort by (tail, head).
  if (step < 4) {
    Sorter::step(step, env, s.arcs, in, out, ArcLess{});
    return true;
  }
  // Steps 4..6: prefix sum of slab sizes -> global arc positions.
  if (step <= 6) {
    std::uint64_t total = 0;
    PrefixSumEngine::step(step - 4, env, s.arcs.size(), s.offset, total, in,
                          out);
    if (step == 6) {
      for (std::uint64_t i = 0; i < s.arcs.size(); ++i) {
        s.arcs[i].gpos = s.offset + i;
      }
    }
    return true;
  }
  switch (step) {
    case 7: {
      // Broadcast this slab's boundary info to everyone (owner lookups and
      // the open-group scan at processor 0 both need it).
      BoundaryInfo info{};
      info.has = s.arcs.empty() ? 0 : 1;
      info.offset = s.offset;
      info.count = s.arcs.size();
      info.internal_last_group_start = kNone;
      if (info.has) {
        info.first_tail = s.arcs.front().tail;
        info.first_head = s.arcs.front().head;
        info.last_tail = s.arcs.back().tail;
        for (std::uint64_t i = 1; i < s.arcs.size(); ++i) {
          if (s.arcs[i].tail != s.arcs[i - 1].tail) {
            info.internal_last_group_start = s.offset + i;
          }
        }
      }
      for (std::uint32_t q = 0; q < v; ++q) out.send_value(q, info);
      return true;
    }
    case 8: {
      s.slabs.clear();
      for (std::size_t i = 0; i < in.count(); ++i) {
        s.slabs.push_back(in.value<BoundaryInfo>(i));  // sorted by source
      }
      if (env.pid == 0) {
        // Scan: which group is open at each slab's start, and where does it
        // begin?
        OpenInfo open{};
        open.valid = 0;
        for (std::uint32_t q = 0; q < v; ++q) {
          out.send_value(q, open);
          const auto& info = s.slabs[q];
          if (!info.has) continue;
          if (info.internal_last_group_start != kNone) {
            open = OpenInfo{info.last_tail, info.internal_last_group_start,
                            1, {}};
          } else if (!(open.valid && open.tail == info.first_tail)) {
            // The slab is a single group that starts at its own offset.
            open = OpenInfo{info.first_tail, info.offset, 1, {}};
          }
          // else: the single group continues the open one — unchanged.
        }
      }
      return true;
    }
    case 9: {
      s.open = in.value<OpenInfo>(0);
      // Owner lookup by slab boundary keys (arcs are globally sorted).
      auto owner_of_key = [&](std::uint64_t tail,
                              std::uint64_t head) -> std::uint32_t {
        std::uint32_t owner = 0;
        for (std::uint32_t q = 0; q < v; ++q) {
          if (!s.slabs[q].has) continue;
          const auto& info = s.slabs[q];
          if (std::make_pair(info.first_tail, info.first_head) <=
              std::make_pair(tail, head)) {
            owner = q;
          } else {
            break;
          }
        }
        return owner;
      };

      // For each local arc b = (u, x) at position g: the Euler successor of
      // the *reversed* arc (x, u) is the cyclic next arc in u's group.
      std::vector<std::vector<NextMsg>> route(v);
      for (std::uint64_t i = 0; i < s.arcs.size(); ++i) {
        const Arc& b = s.arcs[i];
        // Next arc in the global order, if it shares b's tail.
        bool next_same_tail = false;
        if (i + 1 < s.arcs.size()) {
          next_same_tail = s.arcs[i + 1].tail == b.tail;
        } else {
          for (std::uint32_t q = env.pid + 1; q < v; ++q) {
            if (!s.slabs[q].has) continue;
            next_same_tail = s.slabs[q].first_tail == b.tail;
            break;
          }
        }
        std::uint64_t succ_pos;
        if (next_same_tail) {
          succ_pos = b.gpos + 1;
        } else if (b.tail_is_root) {
          succ_pos = kNone;  // circuit break: rev(b) is the tour tail
        } else {
          // Wrap to the start of b's group.
          std::uint64_t gs = s.offset;
          bool found = false;
          for (std::uint64_t j = i + 1; j-- > 0;) {
            if (j > 0 && s.arcs[j - 1].tail != b.tail) {
              gs = s.arcs[j].gpos;
              found = true;
              break;
            }
            if (j == 0) {
              // Group extends past the slab start: use the open-group info.
              if (s.open.valid && s.open.tail == b.tail) {
                gs = s.open.pos;
                found = true;
              } else {
                gs = s.offset;  // group starts exactly at our slab
                found = true;
              }
            }
          }
          if (!found) {
            throw std::runtime_error("ArcLinkProgram: group start not found");
          }
          succ_pos = gs;
        }
        route[owner_of_key(b.head, b.tail)].push_back(
            NextMsg{b.head, b.tail, succ_pos});
      }
      env.charge(s.arcs.size() * 4 + 1);
      for (std::uint32_t q = 0; q < v; ++q) {
        if (!route[q].empty()) out.send_vector(q, route[q]);
      }
      return true;
    }
    default: {  // step 10: apply the successor assignments
      for (std::size_t i = 0; i < in.count(); ++i) {
        for (const auto& msg : in.vector<NextMsg>(i)) {
          const Arc probe{msg.tail, msg.head, 0, 0, 0, 0, {}};
          auto it = std::lower_bound(s.arcs.begin(), s.arcs.end(), probe,
                                     ArcLess{});
          if (it == s.arcs.end() || it->tail != msg.tail ||
              it->head != msg.head) {
            throw std::runtime_error(
                "ArcLinkProgram: successor routed to the wrong slab");
          }
          it->succ = msg.succ;
        }
      }
      env.charge(s.arcs.size() + 1);
      return false;
    }
  }
}

}  // namespace embsp::cgm
