#include "cgm/graph_components.hpp"

#include <algorithm>
#include <unordered_map>

namespace embsp::cgm {

namespace {

/// Sequential union-find used by processor 0 in the gather phase.
class Dsu {
 public:
  std::uint64_t find(std::uint64_t x) {
    auto it = parent_.find(x);
    if (it == parent_.end() || it->second == x) return x;
    const std::uint64_t r = find(it->second);
    parent_[x] = r;
    return r;
  }
  /// Returns true if the union merged two distinct sets.
  bool unite(std::uint64_t a, std::uint64_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (a < b) std::swap(a, b);  // keep the smaller label as root
    parent_[a] = b;
    return true;
  }
  [[nodiscard]] const std::unordered_map<std::uint64_t, std::uint64_t>&
  raw() const {
    return parent_;
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> parent_;
};

}  // namespace

void ComponentsProgram::send_label_queries(const bsp::ProcEnv& env, State& s,
                                           bsp::Outbox& out) const {
  BlockDist vdist{n, env.nprocs};
  std::vector<std::vector<LabelQuery>> queries(env.nprocs);
  for (std::uint32_t e = 0; e < s.edges.size(); ++e) {
    if (!s.edges[e].active) continue;
    queries[vdist.owner(s.edges[e].u)].push_back(
        LabelQuery{s.edges[e].u, e, 0, {}});
    queries[vdist.owner(s.edges[e].v)].push_back(
        LabelQuery{s.edges[e].v, e, 1, {}});
  }
  env.charge(s.edges.size() + 1);
  for (std::uint32_t q = 0; q < env.nprocs; ++q) {
    if (!queries[q].empty()) out.send_vector(q, queries[q]);
  }
}

void ComponentsProgram::answer_label_queries(const bsp::ProcEnv& env,
                                             State& s, const bsp::Inbox& in,
                                             bsp::Outbox& out) const {
  BlockDist vdist{n, env.nprocs};
  const std::uint64_t first = vdist.first(env.pid);
  std::vector<std::vector<LabelReply>> replies(env.nprocs);
  for (std::size_t i = 0; i < in.count(); ++i) {
    const auto src = in.all()[i].src;
    for (const auto& q : in.vector<LabelQuery>(i)) {
      replies[src].push_back(
          LabelReply{s.parent[q.vertex - first], q.edge_idx, q.side, {}});
    }
  }
  for (std::uint32_t q = 0; q < env.nprocs; ++q) {
    if (!replies[q].empty()) out.send_vector(q, replies[q]);
  }
}

void ComponentsProgram::receive_labels(State& s, const bsp::Inbox& in) const {
  for (std::size_t i = 0; i < in.count(); ++i) {
    for (const auto& r : in.vector<LabelReply>(i)) {
      auto& e = s.edges[r.edge_idx];
      if (r.side == 0) {
        e.lu = r.label;
      } else {
        e.lv = r.label;
      }
    }
  }
}

bool ComponentsProgram::superstep(std::size_t, const bsp::ProcEnv& env,
                                  State& s, const bsp::Inbox& in,
                                  bsp::Outbox& out) const {
  BlockDist vdist{n, env.nprocs};
  BlockDist edist{m, env.nprocs};
  const std::uint64_t vfirst = vdist.first(env.pid);
  const std::uint64_t threshold =
      gather_threshold != 0 ? gather_threshold
                            : std::max<std::uint64_t>(2 * edist.chunk(), 64);

  switch (s.phase) {
    case kHookLookup:
      switch (s.sub) {
        case 0:
          send_label_queries(env, s, out);
          s.sub = 1;
          return true;
        case 1:
          answer_label_queries(env, s, in, out);
          s.sub = 2;
          return true;
        case 2: {
          receive_labels(s, in);
          std::vector<std::vector<Hook>> hooks(env.nprocs);
          for (auto& e : s.edges) {
            if (!e.active) continue;
            if (e.lu == e.lv) {
              e.active = 0;  // intra-component edge, done with it
              continue;
            }
            const std::uint64_t r = std::max(e.lu, e.lv);
            const std::uint64_t ml = std::min(e.lu, e.lv);
            hooks[vdist.owner(r)].push_back(Hook{r, ml, e.id});
          }
          env.charge(s.edges.size() + 1);
          for (std::uint32_t q = 0; q < env.nprocs; ++q) {
            if (!hooks[q].empty()) out.send_vector(q, hooks[q]);
          }
          s.sub = 3;
          return true;
        }
        default: {  // sub 3: accept the minimum hook per root
          std::unordered_map<std::uint64_t, Hook> best;
          for (std::size_t i = 0; i < in.count(); ++i) {
            for (const auto& h : in.vector<Hook>(i)) {
              auto [it, inserted] = best.try_emplace(h.r, h);
              if (!inserted && h.mlabel < it->second.mlabel) it->second = h;
            }
          }
          for (const auto& [r, h] : best) {
            const std::uint64_t lr = r - vfirst;
            if (s.parent[lr] == r) {  // still a root
              s.parent[lr] = h.mlabel;
              s.tree_edges.push_back(h.edge_id);
            }
          }
          s.hook_rounds += 1;
          s.phase = kJump;
          s.sub = 0;
          return true;
        }
      }
    case kJump:
      switch (s.sub) {
        case 0: {
          std::vector<std::vector<JumpQuery>> queries(env.nprocs);
          for (std::uint64_t i = 0; i < s.parent.size(); ++i) {
            if (s.parent[i] == vfirst + i) continue;
            queries[vdist.owner(s.parent[i])].push_back(
                JumpQuery{s.parent[i], vfirst + i});
          }
          env.charge(s.parent.size() + 1);
          for (std::uint32_t q = 0; q < env.nprocs; ++q) {
            if (!queries[q].empty()) out.send_vector(q, queries[q]);
          }
          s.sub = 1;
          return true;
        }
        case 1: {
          std::vector<std::vector<JumpReply>> replies(env.nprocs);
          for (std::size_t i = 0; i < in.count(); ++i) {
            for (const auto& q : in.vector<JumpQuery>(i)) {
              replies[vdist.owner(q.x)].push_back(
                  JumpReply{q.x, s.parent[q.p - vfirst]});
            }
          }
          for (std::uint32_t q = 0; q < env.nprocs; ++q) {
            if (!replies[q].empty()) out.send_vector(q, replies[q]);
          }
          s.sub = 2;
          return true;
        }
        case 2: {
          std::uint64_t changed = 0;
          for (std::size_t i = 0; i < in.count(); ++i) {
            for (const auto& r : in.vector<JumpReply>(i)) {
              auto& p = s.parent[r.x - vfirst];
              if (p != r.gp) {
                p = r.gp;
                ++changed;
              }
            }
          }
          s.jump_rounds += 1;
          out.send_value<std::uint64_t>(0, changed);
          s.sub = 3;
          return true;
        }
        case 3: {
          if (env.pid == 0) {
            std::uint64_t total = 0;
            for (std::size_t i = 0; i < in.count(); ++i) {
              total += in.value<std::uint64_t>(i);
            }
            const std::uint8_t again = total > 0 ? 1 : 0;
            for (std::uint32_t q = 0; q < env.nprocs; ++q) {
              out.send_value(q, again);
            }
          }
          s.sub = 4;
          return true;
        }
        default: {  // sub 4: dispatch on the jump decision
          if (in.value<std::uint8_t>(0) == 1) {
            s.phase = kJump;
            s.sub = 1;
            // Re-issue the jump queries in this superstep.
            std::vector<std::vector<JumpQuery>> queries(env.nprocs);
            for (std::uint64_t i = 0; i < s.parent.size(); ++i) {
              if (s.parent[i] == vfirst + i) continue;
              queries[vdist.owner(s.parent[i])].push_back(
                  JumpQuery{s.parent[i], vfirst + i});
            }
            for (std::uint32_t q = 0; q < env.nprocs; ++q) {
              if (!queries[q].empty()) out.send_vector(q, queries[q]);
            }
            return true;
          }
          // Jumping converged: count surviving edges.
          std::uint64_t active = 0;
          for (const auto& e : s.edges) active += e.active;
          out.send_value<std::uint64_t>(0, active);
          s.phase = kEdgeCount;
          s.sub = 1;
          return true;
        }
      }
    case kEdgeCount:
      switch (s.sub) {
        case 1: {
          if (env.pid == 0) {
            std::uint64_t total = 0;
            for (std::size_t i = 0; i < in.count(); ++i) {
              total += in.value<std::uint64_t>(i);
            }
            const std::uint8_t more = total > threshold ? 1 : 0;
            for (std::uint32_t q = 0; q < env.nprocs; ++q) {
              out.send_value(q, more);
            }
          }
          s.sub = 2;
          return true;
        }
        default: {  // sub 2: another hook round or gather
          if (in.value<std::uint8_t>(0) == 1) {
            s.phase = kHookLookup;
            s.sub = 1;
            send_label_queries(env, s, out);
          } else {
            s.phase = kGather;
            s.sub = 1;
            send_label_queries(env, s, out);  // fresh labels for the gather
          }
          return true;
        }
      }
    case kGather:
      switch (s.sub) {
        case 1:
          answer_label_queries(env, s, in, out);
          s.sub = 2;
          return true;
        case 2: {
          receive_labels(s, in);
          std::vector<GatherEdge> send;
          for (auto& e : s.edges) {
            if (!e.active) continue;
            if (e.lu == e.lv) {
              e.active = 0;
              continue;
            }
            send.push_back(GatherEdge{e.lu, e.lv, e.id});
          }
          if (!send.empty()) out.send_vector(0, send);
          s.sub = 3;
          return true;
        }
        case 3: {
          if (env.pid == 0) {
            Dsu dsu;
            for (std::size_t i = 0; i < in.count(); ++i) {
              for (const auto& e : in.vector<GatherEdge>(i)) {
                if (dsu.unite(e.lu, e.lv)) s.tree_edges.push_back(e.id);
              }
            }
            std::vector<MapEntry> mapping;
            for (const auto& [x, _] : dsu.raw()) {
              mapping.push_back(MapEntry{x, dsu.find(x)});
            }
            env.charge(mapping.size() * 4 + 1);
            for (std::uint32_t q = 0; q < env.nprocs; ++q) {
              out.send_vector(q, mapping);
            }
          }
          s.sub = 4;
          return true;
        }
        default: {  // sub 4: apply the final label mapping
          std::unordered_map<std::uint64_t, std::uint64_t> mapping;
          for (const auto& e : in.vector<MapEntry>(0)) {
            mapping.emplace(e.from, e.to);
          }
          for (auto& p : s.parent) {
            auto it = mapping.find(p);
            if (it != mapping.end()) p = it->second;
          }
          env.charge(s.parent.size() + 1);
          s.phase = kDone;
          return false;
        }
      }
    default:
      return false;
  }
}

}  // namespace embsp::cgm
