#include "cgm/permutation.hpp"

// Template drivers live in the header; this TU anchors the module.
