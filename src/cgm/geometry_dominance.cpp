#include "cgm/geometry_dominance.hpp"

namespace embsp::cgm {

std::vector<std::uint64_t> dominance_bruteforce(
    std::span<const util::Point2D> points,
    std::span<const std::uint64_t> weights) {
  std::vector<std::uint64_t> counts(points.size(), 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (points[j].x < points[i].x && points[j].y < points[i].y) {
        counts[i] += weights[j];
      }
    }
  }
  return counts;
}

}  // namespace embsp::cgm
