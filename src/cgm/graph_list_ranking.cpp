#include "cgm/graph_list_ranking.hpp"

#include <stdexcept>
#include <unordered_map>

namespace embsp::cgm {

bool ListRankingProgram::superstep(std::size_t, const bsp::ProcEnv& env,
                                   State& s, const bsp::Inbox& in,
                                   bsp::Outbox& out) const {
  switch (s.phase) {
    case kContract:
      return contract_step(env, s, in, out);
    case kGather:
      return gather_step(env, s, in, out);
    case kExpand:
      return expand_step(env, s, in, out);
    default:
      return false;
  }
}

bool ListRankingProgram::contract_step(const bsp::ProcEnv& env, State& s,
                                       const bsp::Inbox& in,
                                       bsp::Outbox& out) const {
  BlockDist dist{n, env.nprocs};
  const std::uint64_t first = dist.first(env.pid);

  switch (s.sub) {
    case 0: {
      if (s.round > 0) {
        const auto decision = in.value<std::uint8_t>(0);
        if (decision == 0) {
          // Switch to the gather phase; this superstep performs its first
          // sub-step (shipping survivors to processor 0).
          s.phase = kGather;
          s.total_rounds = s.round;
          std::vector<GatherNode> nodes;
          for (std::size_t lu = 0; lu < s.succ.size(); ++lu) {
            if (s.status[lu] != kActive) continue;
            nodes.push_back(GatherNode{first + lu, s.succ[lu], s.w1[lu],
                                       s.w2[lu]});
          }
          if (!nodes.empty()) out.send_vector(0, nodes);
          s.sub = 1;
          return true;
        }
      }
      // Independent-set queries: u splices its successor s out when
      // coin(u) = 1 and coin(s) = 0 and s is not a tail; whether s is a
      // tail (and its data) comes from s's owner.
      std::vector<std::vector<Query>> queries(env.nprocs);
      for (std::size_t lu = 0; lu < s.succ.size(); ++lu) {
        if (s.status[lu] != kActive) continue;
        const std::uint64_t u = first + lu;
        const std::uint64_t sn = s.succ[lu];
        if (sn == u) continue;  // tail
        if (coin(u, s.round, seed) != 1 || coin(sn, s.round, seed) != 0) {
          continue;
        }
        queries[dist.owner(sn)].push_back(Query{sn, u});
      }
      env.charge(s.succ.size() + 1);
      for (std::uint32_t q = 0; q < env.nprocs; ++q) {
        if (!queries[q].empty()) out.send_vector(q, queries[q]);
      }
      s.sub = 1;
      return true;
    }
    case 1: {
      std::vector<std::vector<Reply>> replies(env.nprocs);
      for (std::size_t i = 0; i < in.count(); ++i) {
        for (const auto& q : in.vector<Query>(i)) {
          const std::uint64_t ls = q.s - first;
          Reply r{};
          r.u = q.u;
          r.s_succ = s.succ[ls];
          r.s_w1 = s.w1[ls];
          r.s_w2 = s.w2[ls];
          r.s_is_tail = s.succ[ls] == q.s ? 1 : 0;
          replies[dist.owner(q.u)].push_back(r);
        }
      }
      for (std::uint32_t q = 0; q < env.nprocs; ++q) {
        if (!replies[q].empty()) out.send_vector(q, replies[q]);
      }
      s.sub = 2;
      return true;
    }
    case 2: {
      std::vector<std::vector<Query>> splices(env.nprocs);
      for (std::size_t i = 0; i < in.count(); ++i) {
        for (const auto& r : in.vector<Reply>(i)) {
          if (r.s_is_tail) continue;
          const std::uint64_t lu = r.u - first;
          const std::uint64_t s_id = s.succ[lu];
          s.succ[lu] = r.s_succ;
          s.w1[lu] += r.s_w1;
          s.w2[lu] += r.s_w2;  // wrapping add: channel 2 is two's complement
          splices[dist.owner(s_id)].push_back(Query{s_id, r.u});
        }
      }
      for (std::uint32_t q = 0; q < env.nprocs; ++q) {
        if (!splices[q].empty()) out.send_vector(q, splices[q]);
      }
      s.sub = 3;
      return true;
    }
    case 3: {
      for (std::size_t i = 0; i < in.count(); ++i) {
        for (const auto& m : in.vector<Query>(i)) {
          const std::uint64_t ls = m.s - first;
          s.status[ls] = kSpliced;
          s.splice_round[ls] = s.round;
        }
      }
      std::uint64_t active = 0;
      for (auto st : s.status) {
        if (st == kActive) ++active;
      }
      out.send_value<std::uint64_t>(0, active);
      s.sub = 4;
      return true;
    }
    default: {  // sub 4: processor 0 decides continue vs gather
      if (env.pid == 0) {
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < in.count(); ++i) {
          total += in.value<std::uint64_t>(i);
        }
        const std::uint64_t threshold =
            gather_threshold != 0
                ? gather_threshold
                : std::max<std::uint64_t>(2 * dist.chunk(), 64);
        const std::uint8_t decision = total > threshold ? 1 : 0;
        for (std::uint32_t q = 0; q < env.nprocs; ++q) {
          out.send_value(q, decision);
        }
      }
      s.round += 1;
      s.sub = 0;
      return true;
    }
  }
}

bool ListRankingProgram::gather_step(const bsp::ProcEnv& env, State& s,
                                     const bsp::Inbox& in,
                                     bsp::Outbox& out) const {
  BlockDist dist{n, env.nprocs};
  switch (s.sub) {
    case 1: {
      // Processor 0 ranks the contracted list sequentially.
      if (env.pid == 0) {
        std::unordered_map<std::uint64_t, GatherNode> nodes;
        for (std::size_t i = 0; i < in.count(); ++i) {
          for (const auto& gnode : in.vector<GatherNode>(i)) {
            nodes.emplace(gnode.id, gnode);
          }
        }
        std::unordered_map<std::uint64_t, RankMsg> ranks;
        std::vector<std::uint64_t> stack;
        for (const auto& [id, gnode] : nodes) {
          if (ranks.count(id) != 0) continue;
          std::uint64_t cur = id;
          stack.clear();
          while (ranks.count(cur) == 0) {
            if (stack.size() > nodes.size()) {
              throw std::runtime_error(
                  "cgm_list_ranking: successor cycle detected — the input "
                  "is not a set of lists with self-loop tails");
            }
            const auto& nd = nodes.at(cur);
            if (nd.succ == cur) {
              ranks[cur] = RankMsg{cur, nd.w1, nd.w2};  // tail
              break;
            }
            stack.push_back(cur);
            cur = nd.succ;
          }
          while (!stack.empty()) {
            const std::uint64_t u = stack.back();
            stack.pop_back();
            const auto& nd = nodes.at(u);
            const auto& rs = ranks.at(nd.succ);
            ranks[u] = RankMsg{u, nd.w1 + rs.r1, nd.w2 + rs.r2};
          }
        }
        env.charge(nodes.size() * 4 + 1);
        std::vector<std::vector<RankMsg>> outgoing(env.nprocs);
        for (const auto& [id, rmsg] : ranks) {
          outgoing[dist.owner(id)].push_back(rmsg);
        }
        for (std::uint32_t q = 0; q < env.nprocs; ++q) {
          if (!outgoing[q].empty()) out.send_vector(q, outgoing[q]);
        }
      }
      s.sub = 2;
      return true;
    }
    default: {  // sub 2: receive base ranks, enter expansion
      const std::uint64_t first = dist.first(env.pid);
      for (std::size_t i = 0; i < in.count(); ++i) {
        for (const auto& rmsg : in.vector<RankMsg>(i)) {
          const std::uint64_t lu = rmsg.id - first;
          s.rank1[lu] = rmsg.r1;
          s.rank2[lu] = rmsg.r2;
          s.status[lu] = kFinal;
        }
      }
      if (s.total_rounds == 0) {
        s.phase = kDone;
        return false;
      }
      s.phase = kExpand;
      s.expand_round = s.total_rounds - 1;
      s.sub = 0;
      return true;
    }
  }
}

bool ListRankingProgram::expand_step(const bsp::ProcEnv& env, State& s,
                                     const bsp::Inbox& in,
                                     bsp::Outbox& out) const {
  BlockDist dist{n, env.nprocs};
  const std::uint64_t first = dist.first(env.pid);
  switch (s.sub) {
    case 0: {
      std::vector<std::vector<Query>> queries(env.nprocs);
      for (std::size_t lu = 0; lu < s.succ.size(); ++lu) {
        if (s.status[lu] != kSpliced || s.splice_round[lu] != s.expand_round) {
          continue;
        }
        queries[dist.owner(s.succ[lu])].push_back(
            Query{s.succ[lu], first + lu});
      }
      for (std::uint32_t q = 0; q < env.nprocs; ++q) {
        if (!queries[q].empty()) out.send_vector(q, queries[q]);
      }
      s.sub = 1;
      return true;
    }
    case 1: {
      std::vector<std::vector<RankMsg>> replies(env.nprocs);
      for (std::size_t i = 0; i < in.count(); ++i) {
        for (const auto& q : in.vector<Query>(i)) {
          const std::uint64_t ls = q.s - first;
          if (s.status[ls] != kFinal) {
            throw std::runtime_error(
                "cgm_list_ranking: expansion queried a non-final rank "
                "(internal invariant violated)");
          }
          replies[dist.owner(q.u)].push_back(
              RankMsg{q.u, s.rank1[ls], s.rank2[ls]});
        }
      }
      for (std::uint32_t q = 0; q < env.nprocs; ++q) {
        if (!replies[q].empty()) out.send_vector(q, replies[q]);
      }
      s.sub = 2;
      return true;
    }
    default: {  // sub 2
      for (std::size_t i = 0; i < in.count(); ++i) {
        for (const auto& rmsg : in.vector<RankMsg>(i)) {
          const std::uint64_t lu = rmsg.id - first;
          s.rank1[lu] = s.w1[lu] + rmsg.r1;
          s.rank2[lu] = s.w2[lu] + rmsg.r2;
          s.status[lu] = kFinal;
        }
      }
      if (s.expand_round == 0) {
        s.phase = kDone;
        return false;
      }
      s.expand_round -= 1;
      s.sub = 0;
      return true;
    }
  }
}

}  // namespace embsp::cgm
