// CGM batched lowest common ancestors (Table 1, Group C) via the Euler
// tour technique: LCA(u, v) is the minimum-depth vertex *entered* between
// the first tour occurrences of u and v, so batched LCA reduces to batched
// range-minimum queries over the (2n-1)-entry visit array.
//
// Distributed RMQ in O(1) rounds:
//   step 0 — every processor broadcasts its slab minimum (v words);
//   step 1 — query homes split each query into <= 2 boundary sub-queries
//            routed to the slabs containing the range endpoints;
//   step 2 — slab owners answer sub-queries with a local sparse table;
//   step 3 — homes combine the two partials with the broadcast minima of
//            the fully covered middle slabs.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "bsp/program.hpp"
#include "cgm/graph_euler_tour.hpp"
#include "cgm/runner.hpp"

namespace embsp::cgm {

struct TourEntry {
  std::uint64_t vertex;
  std::uint64_t depth;
};

struct LcaQuery {
  std::uint64_t l, r;  ///< visit-array positions, l <= r
  std::uint64_t tag;
};

struct LcaProgram {
  std::uint64_t array_len = 0;  ///< visit array length (2n-1)
  std::uint64_t num_queries = 0;

  struct SlabMin {
    std::uint64_t depth;
    std::uint64_t vertex;
    std::uint8_t has;
    std::uint8_t pad[7];
  };
  struct SubQuery {
    std::uint64_t l, r;  ///< clipped to the receiving slab
    std::uint64_t tag;
    std::uint32_t home;
    std::uint8_t parts;  ///< total partials the home should expect
    std::uint8_t pad[3];
  };
  struct Partial {
    std::uint64_t tag;
    std::uint64_t depth;
    std::uint64_t vertex;
  };

  struct State {
    std::vector<TourEntry> slab;    ///< visit array slab
    std::vector<LcaQuery> queries;  ///< queries homed here
    std::vector<SlabMin> minima;    ///< per-slab minima (after step 1)
    std::vector<std::uint64_t> answers;  ///< per local query
    void serialize(util::Writer& w) const {
      w.write_vector(slab);
      w.write_vector(queries);
      w.write_vector(minima);
      w.write_vector(answers);
    }
    void deserialize(util::Reader& r) {
      slab = r.read_vector<TourEntry>();
      queries = r.read_vector<LcaQuery>();
      minima = r.read_vector<SlabMin>();
      answers = r.read_vector<std::uint64_t>();
    }
  };

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const;
};

struct RmqOutcome {
  std::vector<std::uint64_t> payload;  ///< payload of the min-key entry
  ExecResult exec;
};

/// Generic distributed batched range-minimum: for each query [l, r] over
/// `array`, the `vertex` payload of the minimum-`depth` entry.  This is
/// the engine behind batched LCA, and the subtree-aggregate machinery of
/// the biconnectivity algorithm (arrays crafted so that the "payload" is
/// the aggregate of interest).
template <class Exec>
RmqOutcome cgm_batched_range_min(Exec& exec,
                                 std::span<const TourEntry> array,
                                 std::span<const LcaQuery> queries,
                                 std::uint32_t v) {
  LcaProgram prog;
  prog.array_len = array.size();
  prog.num_queries = queries.size();
  using State = LcaProgram::State;
  BlockDist adist{array.size(), v};
  BlockDist qdist{queries.size(), v};
  RmqOutcome outcome;
  outcome.payload.assign(queries.size(), 0);
  outcome.exec = exec.run(
      prog, v,
      std::function<State(std::uint32_t)>([&](std::uint32_t pid) {
        State s;
        const auto afirst = adist.first(pid);
        s.slab.assign(array.begin() + afirst,
                      array.begin() + afirst + adist.count(pid));
        const auto qfirst = qdist.first(pid);
        for (std::uint64_t i = 0; i < qdist.count(pid); ++i) {
          s.queries.push_back(queries[qfirst + i]);
        }
        return s;
      }),
      std::function<void(std::uint32_t, State&)>(
          [&](std::uint32_t pid, State& s) {
            const auto qfirst = qdist.first(pid);
            for (std::uint64_t i = 0; i < s.answers.size(); ++i) {
              outcome.payload[qfirst + i] = s.answers[i];
            }
          }));
  return outcome;
}

struct LcaOutcome {
  std::vector<std::uint64_t> lca;  ///< per query
  EulerTourOutcome tour;
  ExecResult exec;
};

/// Answers LCA queries (pairs of vertices) on the rooted tree `parent`.
template <class Exec>
LcaOutcome cgm_batched_lca(
    Exec& exec, std::span<const std::uint64_t> parent,
    std::span<const std::pair<std::uint64_t, std::uint64_t>> queries,
    std::uint32_t v) {
  LcaOutcome outcome;
  const std::uint64_t n = parent.size();
  std::uint64_t root = 0;
  std::size_t roots = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (parent[i] == i) {
      root = i;
      ++roots;
    }
  }
  if (roots != 1) {
    throw std::invalid_argument(
        "cgm_batched_lca: parent[] must encode a single tree (found " +
        std::to_string(roots) + " roots); LCA across a forest is undefined");
  }
  outcome.tour = cgm_euler_tour(exec, parent, v);

  // Visit array: A[0] = root, A[p+1] = vertex entered by tour arc p.
  std::vector<TourEntry> visit(outcome.tour.num_arcs + 1);
  visit[0] = TourEntry{root, 0};
  // tour_vertex/depth from the Euler outcome: entry at position p+1 is the
  // vertex whose first_pos or last_pos equals p.
  for (std::uint64_t x = 0; x < n; ++x) {
    if (x == root) continue;
    visit[outcome.tour.first_pos[x] + 1] =
        TourEntry{x, outcome.tour.depth[x]};
    visit[outcome.tour.last_pos[x] + 1] =
        TourEntry{parent[x], outcome.tour.depth[parent[x]]};
  }

  auto first_of = [&](std::uint64_t x) {
    return x == root ? 0 : outcome.tour.first_pos[x] + 1;
  };

  std::vector<LcaQuery> rmq_queries;
  rmq_queries.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    std::uint64_t l = first_of(queries[i].first);
    std::uint64_t r = first_of(queries[i].second);
    if (l > r) std::swap(l, r);
    rmq_queries.push_back(LcaQuery{l, r, i});
  }
  auto rmq = cgm_batched_range_min(exec, visit, rmq_queries, v);
  outcome.lca = std::move(rmq.payload);
  outcome.exec = std::move(rmq.exec);
  return outcome;
}

}  // namespace embsp::cgm
