// CGM 3D-maxima (Table 1, Group B).
//
// A point p is *maximal* if no input point q has q.x > p.x, q.y > p.y and
// q.z > p.z simultaneously.  Algorithm:
//   1. global sort by x descending (SortEngine, 4 supersteps);
//   2. each processor sweeps its slab in x order, maintaining the 2D
//      staircase (the (y, z)-maxima) of the points seen so far — a point is
//      dominated iff the staircase built from larger-x points covers it;
//   3. processors combine their slab staircases with a parallel prefix
//      (Hillis–Steele doubling, ceil(log2 v) + 1 supersteps) so processor i
//      obtains the staircase of all larger-x slabs;
//   4. a final local sweep seeded with that prefix staircase marks maxima.
//
// lambda = O(log v); the paper's Table 1 cites an O(1)-round algorithm [19]
// with a more intricate staircase-splitting scheme — see DESIGN.md
// (substitutions).  Inputs are assumed in general position (distinct
// coordinates), the standard assumption for these algorithms.
#pragma once

#include <vector>

#include "cgm/sort.hpp"
#include "util/workloads.hpp"

namespace embsp::cgm {

struct MaxPoint {
  double x, y, z;
  std::uint64_t tag;   ///< original index
  std::uint8_t maximal;  ///< output flag
  std::uint8_t pad[7];
};

struct MaxPointXDesc {
  bool operator()(const MaxPoint& a, const MaxPoint& b) const {
    if (a.x != b.x) return a.x > b.x;
    if (a.y != b.y) return a.y < b.y;
    if (a.z != b.z) return a.z < b.z;
    return a.tag < b.tag;
  }
};

/// (y, z) staircase entry; kept sorted by y ascending / z descending.
struct StairPoint {
  double y, z;
};

/// Merge `pts` into the staircase `stairs` (both arbitrary), keeping only
/// (y, z)-maxima.  Exposed for unit testing.
void merge_staircase(std::vector<StairPoint>& stairs,
                     std::span<const StairPoint> pts);

/// True iff (y, z) is strictly dominated by some staircase entry.
bool staircase_dominates(const std::vector<StairPoint>& stairs, double y,
                         double z);

struct MaximaProgram {
  using Sorter = SortEngine<MaxPoint, MaxPointXDesc>;

  struct State {
    std::vector<MaxPoint> pts;
    std::vector<StairPoint> acc;     ///< doubling accumulator (incl. self)
    std::vector<StairPoint> prefix;  ///< staircase of larger-x slabs
    void serialize(util::Writer& w) const {
      w.write_vector(pts);
      w.write_vector(acc);
      w.write_vector(prefix);
    }
    void deserialize(util::Reader& r) {
      pts = r.read_vector<MaxPoint>();
      acc = r.read_vector<StairPoint>();
      prefix = r.read_vector<StairPoint>();
    }
  };

  static std::size_t doubling_rounds(std::uint32_t v) {
    std::size_t r = 0;
    while ((1u << r) < v) ++r;
    return r;
  }

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const {
    const std::uint32_t v = env.nprocs;
    const std::size_t rounds = doubling_rounds(v);
    const std::size_t sort_end = Sorter::kSteps;  // steps 0..3

    if (step < sort_end) {
      Sorter::step(step, env, s.pts, in, out, MaxPointXDesc{});
      if (step + 1 == sort_end) return true;  // fall through next superstep
      return true;
    }

    const std::size_t r = step - sort_end;  // doubling round index
    if (r == 0) {
      // Build the local slab staircase (all local points).
      s.acc.clear();
      std::vector<StairPoint> pts;
      pts.reserve(s.pts.size());
      for (const auto& p : s.pts) pts.push_back({p.y, p.z});
      merge_staircase(s.acc, pts);
      s.prefix.clear();
      env.charge(s.pts.size() + 1);
    }
    if (r > 0 && r <= rounds) {
      // Receive the accumulator sent in the previous round from pid - 2^(r-1).
      for (std::size_t i = 0; i < in.count(); ++i) {
        auto part = in.vector<StairPoint>(i);
        merge_staircase(s.acc, part);
        merge_staircase(s.prefix, part);
      }
      env.charge(s.acc.size() + 1);
    }
    if (r < rounds) {
      const std::uint32_t stride = 1u << r;
      if (env.pid + stride < v) {
        // Send the staircase covering slabs (pid - 2^r, pid] — which after
        // the merges above is exactly `acc` — to pid + 2^r; the receiver
        // folds it into both its accumulator and its exclusive prefix.
        out.send_vector(env.pid + stride, s.acc);
      }
      return true;
    }
    if (r == rounds) {
      // Final sweep: points are in x-descending order; seed with the prefix
      // staircase (larger-x slabs), insert-after-query locally.
      std::vector<StairPoint> stairs = s.prefix;
      for (auto& p : s.pts) {
        p.maximal = staircase_dominates(stairs, p.y, p.z) ? 0 : 1;
        const StairPoint sp{p.y, p.z};
        merge_staircase(stairs, std::span<const StairPoint>(&sp, 1));
      }
      env.charge(s.pts.size() * 4 + 1);
      return false;
    }
    return true;
  }
};

struct MaximaOutcome {
  std::vector<std::uint8_t> maximal;  ///< by original index
  ExecResult exec;
};

template <class Exec>
MaximaOutcome cgm_3d_maxima(Exec& exec,
                            std::span<const util::Point3D> points,
                            std::uint32_t v) {
  MaximaProgram prog;
  using State = MaximaProgram::State;
  BlockDist dist{points.size(), v};
  MaximaOutcome outcome;
  outcome.maximal.assign(points.size(), 0);
  outcome.exec = exec.run(
      prog, v,
      std::function<State(std::uint32_t)>([&](std::uint32_t pid) {
        State s;
        const auto first = dist.first(pid);
        for (std::uint64_t i = 0; i < dist.count(pid); ++i) {
          const auto& p = points[first + i];
          s.pts.push_back(MaxPoint{p.x, p.y, p.z, first + i, 0, {}});
        }
        return s;
      }),
      std::function<void(std::uint32_t, State&)>(
          [&](std::uint32_t, State& s) {
            for (const auto& p : s.pts) outcome.maximal[p.tag] = p.maximal;
          }));
  return outcome;
}

/// Reference O(n^2) implementation for tests.
std::vector<std::uint8_t> maxima3d_bruteforce(
    std::span<const util::Point3D> points);

}  // namespace embsp::cgm
