// CGM Euler tour of a rooted tree + the tree computations it unlocks
// (Table 1, Group C: "Euler tour (tree), tree contraction, expression tree
// evaluation" representatives — see DESIGN.md substitutions).
//
// Stage 1 (ArcLinkProgram, lambda = 11): the 2(n-1) directed arcs are
// sorted by (tail, head) — grouping each vertex's adjacency list — and the
// Euler successor next(x->u) = (u -> w), w the cyclic successor of x in
// adj(u), is computed distributedly: a prefix sum yields global arc
// positions, slab boundary keys are broadcast so each processor can route
// "your successor is ..." messages to the owner of the reversed arc, and
// the circuit is broken at the root's group wrap to form a list.
//
// Stage 2: weighted CGM list ranking over the arc list with two channels —
// w1 = 1 (tour positions) and w2 = +1/-1 for down/up arcs (depths).
//
// Outputs per vertex: depth, subtree size, first/last tour position.
#pragma once

#include <vector>

#include "cgm/graph_list_ranking.hpp"
#include "cgm/primitives.hpp"
#include "cgm/sort.hpp"

namespace embsp::cgm {

struct Arc {
  std::uint64_t tail;
  std::uint64_t head;
  std::uint64_t gpos;  ///< global position in sorted order (stage 1)
  std::uint64_t succ;  ///< Euler successor position (stage 1 output)
  std::uint8_t down;   ///< 1 = parent->child arc
  std::uint8_t tail_is_root;  ///< circuit break happens at root groups
  std::uint8_t pad[6];
};

struct ArcLess {
  bool operator()(const Arc& a, const Arc& b) const {
    if (a.tail != b.tail) return a.tail < b.tail;
    return a.head < b.head;
  }
};

struct ArcLinkProgram {
  static constexpr std::uint64_t kNone = UINT64_MAX;
  using Sorter = SortEngine<Arc, ArcLess>;

  struct BoundaryInfo {
    std::uint64_t first_tail, first_head;
    std::uint64_t last_tail;
    std::uint64_t internal_last_group_start;  ///< kNone if whole slab is one
                                              ///< group continuing leftward
    std::uint64_t offset;
    std::uint64_t count;
    std::uint8_t has;
    std::uint8_t pad[7];
  };

  struct OpenInfo {
    std::uint64_t tail;
    std::uint64_t pos;
    std::uint8_t valid;
    std::uint8_t pad[7];
  };

  struct NextMsg {
    std::uint64_t tail, head;  ///< key of the arc whose succ this sets
    std::uint64_t succ;        ///< kNone = this arc is the tour tail
  };

  struct State {
    std::vector<Arc> arcs;
    std::uint64_t offset = 0;
    std::vector<BoundaryInfo> slabs;  ///< one per processor, by pid
    OpenInfo open{};
    void serialize(util::Writer& w) const {
      w.write_vector(arcs);
      w.write(offset);
      w.write_vector(slabs);
      w.write(open);
    }
    void deserialize(util::Reader& r) {
      arcs = r.read_vector<Arc>();
      offset = r.read<std::uint64_t>();
      slabs = r.read_vector<BoundaryInfo>();
      open = r.read<OpenInfo>();
    }
  };

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const;
};

struct EulerTourOutcome {
  std::vector<std::uint64_t> depth;         ///< per vertex
  std::vector<std::uint64_t> subtree_size;  ///< per vertex
  std::vector<std::uint64_t> first_pos;     ///< first tour position (entry)
  std::vector<std::uint64_t> last_pos;      ///< last tour position (exit)
  std::uint64_t num_arcs = 0;
  ExecResult link_exec;
  ExecResult rank_exec;
};

/// parent[] encodes a rooted forest (parent[root] == root; any number of
/// trees).  Runs stage 1 and stage 2 on `exec` and derives the per-vertex
/// quantities.  depth and subtree_size are correct for forests; first/last
/// tour positions are *tree-relative* (each tree's tour counts back from
/// the shared arc count m), so they are comparable within one tree only.
template <class Exec>
EulerTourOutcome cgm_euler_tour(Exec& exec,
                                std::span<const std::uint64_t> parent,
                                std::uint32_t v) {
  const std::uint64_t n = parent.size();
  EulerTourOutcome outcome;
  outcome.depth.assign(n, 0);
  outcome.subtree_size.assign(n, 1);
  outcome.first_pos.assign(n, 0);
  outcome.last_pos.assign(n, 0);
  if (n <= 1) {
    if (n == 1) outcome.subtree_size[0] = 1;
    return outcome;
  }

  // Build the arc list (driver-side input transformation).  Every tree of
  // the forest contributes its own Euler circuit, broken into a list at
  // that tree's root.
  std::vector<Arc> arcs;
  arcs.reserve(2 * (n - 1));
  for (std::uint64_t i = 0; i < n; ++i) {
    if (parent[i] == i) continue;
    const std::uint64_t par = parent[i];
    const std::uint8_t par_is_root = parent[par] == par ? 1 : 0;
    arcs.push_back(Arc{par, i, 0, 0, 1, par_is_root, {}});
    arcs.push_back(Arc{i, par, 0, 0, 0, 0, {}});
  }
  const std::uint64_t m = arcs.size();
  outcome.num_arcs = m;
  if (m == 0) return outcome;  // forest of isolated vertices

  // Stage 1: sort + link.
  ArcLinkProgram prog;
  using State = ArcLinkProgram::State;
  BlockDist dist{m, v};
  std::vector<Arc> linked(m);
  outcome.link_exec = exec.run(
      prog, v,
      std::function<State(std::uint32_t)>([&](std::uint32_t pid) {
        State s;
        const auto first = dist.first(pid);
        s.arcs.assign(arcs.begin() + first,
                      arcs.begin() + first + dist.count(pid));
        return s;
      }),
      std::function<void(std::uint32_t, State&)>(
          [&](std::uint32_t, State& s) {
            for (const auto& a : s.arcs) linked[a.gpos] = a;
          }));

  // Stage 2: rank the tour list (w1 = 1 for positions, w2 = +-1 for depth).
  std::vector<std::uint64_t> succ(m), w1(m, 1), w2(m);
  for (std::uint64_t g = 0; g < m; ++g) {
    succ[g] = linked[g].succ == ArcLinkProgram::kNone ? g : linked[g].succ;
    w2[g] = linked[g].down ? 1ull : ~0ull;  // +1 / -1 two's complement
  }
  auto ranks = cgm_list_ranking_weighted(exec, succ, w1, w2, v);
  outcome.rank_exec = std::move(ranks.exec);

  // Derive per-vertex results.  pos(a) = m - rank1(a);
  // depth(head of a down arc) = w2(a) - rank2(a) = 1 - rank2(a) (signed).
  for (std::uint64_t g = 0; g < m; ++g) {
    const auto& a = linked[g];
    const std::uint64_t pos = m - ranks.rank1[g];
    if (a.down) {
      outcome.first_pos[a.head] = pos;
      outcome.depth[a.head] =
          static_cast<std::uint64_t>(1 + static_cast<std::int64_t>(
                                             ~ranks.rank2[g] + 1));
    } else {
      outcome.last_pos[a.tail] = pos;
    }
  }
  // Non-roots: from their own tour window; roots: one plus the sizes of
  // their children's subtrees (a forest may have many roots).
  for (std::uint64_t i = 0; i < n; ++i) {
    if (parent[i] != i) {
      outcome.subtree_size[i] =
          (outcome.last_pos[i] - outcome.first_pos[i] + 2) / 2;
    }
  }
  std::vector<std::uint64_t> root_size(n, 1);
  for (std::uint64_t i = 0; i < n; ++i) {
    if (parent[i] != i && parent[parent[i]] == parent[i]) {
      root_size[parent[i]] += outcome.subtree_size[i];
    }
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    if (parent[i] == i) {
      outcome.subtree_size[i] = root_size[i];
      // Tree-relative tour endpoints (for a forest the absolute values of
      // different trees overlap — see the function comment).
      outcome.first_pos[i] = 0;
      outcome.last_pos[i] = m - 1;
    }
  }
  return outcome;
}

}  // namespace embsp::cgm
