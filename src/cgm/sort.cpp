#include "cgm/sort.hpp"

// Template drivers live in the header; this TU anchors the module.
