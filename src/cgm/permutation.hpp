// CGM permutation routing (Table 1, Group A).
//
// Input: n records, each carrying the global index it must move to.  Each
// processor sends every record directly to the block-distribution owner of
// its target index; receivers place records into their output slab.
// lambda = 2 supersteps — the h-relation is a single direct route, which is
// exactly why the simulated EM algorithm beats the naive one-I/O-per-item
// EM permutation (Table 1's min(n/D, sort) row).
#pragma once

#include <span>
#include <vector>

#include "bsp/program.hpp"
#include "cgm/runner.hpp"

namespace embsp::cgm {

struct PermRecord {
  std::uint64_t target;  ///< global destination index
  std::uint64_t value;
};

struct PermutationProgram {
  std::uint64_t n = 0;  ///< total records (defines the block distribution)

  struct State {
    std::vector<PermRecord> data;  ///< in: records to route; out: slab
    void serialize(util::Writer& w) const { w.write_vector(data); }
    void deserialize(util::Reader& r) { data = r.read_vector<PermRecord>(); }
  };

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const {
    BlockDist dist{n, env.nprocs};
    if (step == 0) {
      // Group records by destination owner; one message per destination.
      std::vector<std::vector<PermRecord>> by_owner(env.nprocs);
      for (const auto& rec : s.data) {
        by_owner[dist.owner(rec.target)].push_back(rec);
      }
      env.charge(s.data.size() + 1);
      for (std::uint32_t q = 0; q < env.nprocs; ++q) {
        if (!by_owner[q].empty()) out.send_vector(q, by_owner[q]);
      }
      s.data.clear();
      return true;
    }
    // Place received records at their local offsets.
    s.data.assign(dist.count(env.pid), PermRecord{0, 0});
    for (std::size_t i = 0; i < in.count(); ++i) {
      for (const auto& rec : in.vector<PermRecord>(i)) {
        s.data[rec.target - dist.first(env.pid)] = rec;
      }
    }
    env.charge(s.data.size() + 1);
    return false;
  }
};

struct PermutationOutcome {
  std::vector<std::uint64_t> values;  ///< values in target order
  ExecResult exec;
};

/// Applies `perm` to `values`: output[perm[i]] = values[i].
template <class Exec>
PermutationOutcome cgm_permute(Exec& exec,
                               std::span<const std::uint64_t> values,
                               std::span<const std::uint64_t> perm,
                               std::uint32_t v) {
  const std::uint64_t n = values.size();
  PermutationProgram prog{n};
  using State = PermutationProgram::State;
  BlockDist dist{n, v};
  PermutationOutcome outcome;
  outcome.values.assign(n, 0);
  outcome.exec = exec.run(
      prog, v,
      std::function<State(std::uint32_t)>([&](std::uint32_t pid) {
        State s;
        const auto first = dist.first(pid);
        for (std::uint64_t i = 0; i < dist.count(pid); ++i) {
          s.data.push_back(PermRecord{perm[first + i], values[first + i]});
        }
        return s;
      }),
      std::function<void(std::uint32_t, State&)>(
          [&](std::uint32_t pid, State& s) {
            const auto first = dist.first(pid);
            for (std::uint64_t i = 0; i < s.data.size(); ++i) {
              outcome.values[first + i] = s.data[i].value;
            }
          }));
  return outcome;
}

}  // namespace embsp::cgm
