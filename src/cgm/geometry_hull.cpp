#include "cgm/geometry_hull.hpp"

#include <algorithm>

namespace embsp::cgm {

namespace {

double cross(const HullPoint& o, const HullPoint& a, const HullPoint& b) {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

}  // namespace

std::vector<HullPoint> monotone_chain(std::span<const HullPoint> sorted) {
  const std::size_t n = sorted.size();
  if (n <= 2) return {sorted.begin(), sorted.end()};
  std::vector<HullPoint> hull(2 * n);
  std::size_t k = 0;
  // Lower hull.
  for (std::size_t i = 0; i < n; ++i) {
    while (k >= 2 && cross(hull[k - 2], hull[k - 1], sorted[i]) <= 0) --k;
    hull[k++] = sorted[i];
  }
  // Upper hull.
  const std::size_t lower = k + 1;
  for (std::size_t i = n - 1; i-- > 0;) {
    while (k >= lower && cross(hull[k - 2], hull[k - 1], sorted[i]) <= 0) --k;
    hull[k++] = sorted[i];
  }
  hull.resize(k - 1);  // last point equals the first
  return hull;
}

std::vector<HullPoint> hull_points_sorted(std::span<const HullPoint> sorted) {
  auto hull = monotone_chain(sorted);
  std::sort(hull.begin(), hull.end(), HullPointLess{});
  return hull;
}

}  // namespace embsp::cgm
