#include "cgm/geometry_maxima.hpp"

#include <algorithm>
#include <limits>

namespace embsp::cgm {

void merge_staircase(std::vector<StairPoint>& stairs,
                     std::span<const StairPoint> pts) {
  if (pts.empty()) return;
  std::vector<StairPoint> all;
  all.reserve(stairs.size() + pts.size());
  all.insert(all.end(), stairs.begin(), stairs.end());
  all.insert(all.end(), pts.begin(), pts.end());
  std::sort(all.begin(), all.end(),
            [](const StairPoint& a, const StairPoint& b) {
              if (a.y != b.y) return a.y < b.y;
              return a.z > b.z;
            });
  // Sweep from the largest y down: keep entries whose z strictly exceeds
  // everything to their right.  An entry B with B.y >= A.y and B.z >= A.z
  // makes A redundant as a dominator.
  stairs.clear();
  double max_z = -std::numeric_limits<double>::infinity();
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    if (it->z > max_z) {
      stairs.push_back(*it);
      max_z = it->z;
    }
  }
  std::reverse(stairs.begin(), stairs.end());  // ascending y, descending z
}

bool staircase_dominates(const std::vector<StairPoint>& stairs, double y,
                         double z) {
  // First entry with entry.y > y; entries ascend in y and descend in z, so
  // it carries the largest z among all entries with larger y.
  auto it = std::upper_bound(
      stairs.begin(), stairs.end(), y,
      [](double value, const StairPoint& s) { return value < s.y; });
  return it != stairs.end() && it->z > z;
}

std::vector<std::uint8_t> maxima3d_bruteforce(
    std::span<const util::Point3D> points) {
  std::vector<std::uint8_t> maximal(points.size(), 1);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (points[j].x > points[i].x && points[j].y > points[i].y &&
          points[j].z > points[i].z) {
        maximal[i] = 0;
        break;
      }
    }
  }
  return maximal;
}

}  // namespace embsp::cgm
