#include "cgm/primitives.hpp"

// Header-only engines; this TU anchors the module.
