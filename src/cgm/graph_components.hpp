// CGM connected components + spanning forest (Table 1, Group C), after
// Cáceres et al. [11]: repeated hook-and-contract rounds.
//
// One HOOK round (4 supersteps): every active edge looks up the component
// labels (roots) of its endpoints; edges joining distinct components send a
// hook candidate "root r should attach to smaller root m"; each root
// accepts the minimum candidate (strictly decreasing labels — no cycles)
// and the winning edges become spanning-forest edges.  A JUMP loop (4
// supersteps per iteration) then compresses parent chains until every
// vertex points at its root.  When the surviving inter-component edges fit
// one processor, they are gathered and finished with a sequential
// union-find, and the final label mapping is broadcast.
//
// Components-with-external-edges at least halve per hook round, so the
// number of rounds is O(log n) worst case and small in practice; the bench
// reports the measured lambda against Table 1's O(log p) shape.
#pragma once

#include <vector>

#include "bsp/program.hpp"
#include "cgm/runner.hpp"
#include "util/workloads.hpp"

namespace embsp::cgm {

struct ComponentsProgram {
  std::uint64_t n = 0;            ///< vertices
  std::uint64_t m = 0;            ///< edges
  std::uint64_t gather_threshold = 0;  ///< 0 = max(2*ceil(m/v), 64)

  enum Phase : std::uint8_t {
    kHookLookup = 0,   // H0/H1/H2/H3 via sub
    kJump = 1,         // J0..J3 via sub
    kEdgeCount = 2,    // E0 (count) / E1 (decide)
    kGather = 3,       // G0..G3 via sub
    kResolve = 4,
    kDone = 5,
  };

  struct EdgeRec {
    std::uint64_t u, v;
    std::uint64_t id;
    std::uint64_t lu, lv;  ///< last looked-up labels
    std::uint8_t active;
    std::uint8_t pad[7];
  };
  struct LabelQuery {
    std::uint64_t vertex;
    std::uint32_t edge_idx;
    std::uint8_t side;  ///< 0 = u, 1 = v
    std::uint8_t pad[3];
  };
  struct LabelReply {
    std::uint64_t label;
    std::uint32_t edge_idx;
    std::uint8_t side;
    std::uint8_t pad[3];
  };
  struct Hook {
    std::uint64_t r, mlabel, edge_id;
  };
  struct JumpQuery {
    std::uint64_t p, x;
  };
  struct JumpReply {
    std::uint64_t x, gp;
  };
  struct GatherEdge {
    std::uint64_t lu, lv, id;
  };
  struct MapEntry {
    std::uint64_t from, to;
  };

  struct State {
    std::vector<std::uint64_t> parent;  ///< local vertex slab
    std::vector<EdgeRec> edges;         ///< local edge share
    std::vector<std::uint64_t> tree_edges;  ///< chosen forest edge ids
    std::uint8_t phase = kHookLookup;
    std::uint8_t sub = 0;
    std::uint32_t hook_rounds = 0;
    std::uint32_t jump_rounds = 0;

    void serialize(util::Writer& w) const {
      w.write_vector(parent);
      w.write_vector(edges);
      w.write_vector(tree_edges);
      w.write(phase);
      w.write(sub);
      w.write(hook_rounds);
      w.write(jump_rounds);
    }
    void deserialize(util::Reader& r) {
      parent = r.read_vector<std::uint64_t>();
      edges = r.read_vector<EdgeRec>();
      tree_edges = r.read_vector<std::uint64_t>();
      phase = r.read<std::uint8_t>();
      sub = r.read<std::uint8_t>();
      hook_rounds = r.read<std::uint32_t>();
      jump_rounds = r.read<std::uint32_t>();
    }
  };

  bool superstep(std::size_t, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const;

 private:
  void send_label_queries(const bsp::ProcEnv& env, State& s,
                          bsp::Outbox& out) const;
  void answer_label_queries(const bsp::ProcEnv& env, State& s,
                            const bsp::Inbox& in, bsp::Outbox& out) const;
  void receive_labels(State& s, const bsp::Inbox& in) const;
};

struct ComponentsOutcome {
  std::vector<std::uint64_t> component;   ///< label per vertex
  std::vector<std::uint64_t> tree_edges;  ///< spanning forest edge ids
  ExecResult exec;
};

template <class Exec>
ComponentsOutcome cgm_connected_components(Exec& exec, std::uint64_t n,
                                           std::span<const util::Edge> edges,
                                           std::uint32_t v) {
  ComponentsProgram prog;
  prog.n = n;
  prog.m = edges.size();
  using State = ComponentsProgram::State;
  BlockDist vdist{n, v};
  BlockDist edist{edges.size(), v};
  ComponentsOutcome outcome;
  outcome.component.assign(n, 0);
  outcome.exec = exec.run(
      prog, v,
      std::function<State(std::uint32_t)>([&](std::uint32_t pid) {
        State s;
        const auto vfirst = vdist.first(pid);
        for (std::uint64_t i = 0; i < vdist.count(pid); ++i) {
          s.parent.push_back(vfirst + i);
        }
        const auto efirst = edist.first(pid);
        for (std::uint64_t i = 0; i < edist.count(pid); ++i) {
          const auto& e = edges[efirst + i];
          s.edges.push_back(ComponentsProgram::EdgeRec{
              e.u, e.v, efirst + i, 0, 0, 1, {}});
        }
        return s;
      }),
      std::function<void(std::uint32_t, State&)>(
          [&](std::uint32_t pid, State& s) {
            const auto vfirst = vdist.first(pid);
            for (std::uint64_t i = 0; i < s.parent.size(); ++i) {
              outcome.component[vfirst + i] = s.parent[i];
            }
            outcome.tree_edges.insert(outcome.tree_edges.end(),
                                      s.tree_edges.begin(),
                                      s.tree_edges.end());
          }));
  return outcome;
}

}  // namespace embsp::cgm
