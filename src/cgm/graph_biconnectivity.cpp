#include "cgm/graph_biconnectivity.hpp"

#include <stdexcept>

namespace embsp::cgm {

std::vector<std::uint64_t> biconnected_bruteforce(
    std::uint64_t n, std::span<const util::Edge> edges) {
  // Hopcroft–Tarjan: iterative DFS keeping a stack of edges; when a child
  // subtree cannot reach above the current vertex, the edges popped since
  // entering it form one block.
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> adj(n);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    adj[edges[e].u].push_back({edges[e].v, e});
    adj[edges[e].v].push_back({edges[e].u, e});
  }
  std::vector<std::uint64_t> block(edges.size(), UINT64_MAX);
  std::vector<std::uint64_t> disc(n, UINT64_MAX), low(n, 0);
  std::vector<std::uint64_t> edge_stack;
  std::uint64_t timer = 0;

  struct Frame {
    std::uint64_t u;
    std::uint64_t parent_edge;
    std::size_t next;
  };
  for (std::uint64_t start = 0; start < n; ++start) {
    if (disc[start] != UINT64_MAX) continue;
    std::vector<Frame> stack{{start, UINT64_MAX, 0}};
    disc[start] = low[start] = timer++;
    while (!stack.empty()) {
      auto& f = stack.back();
      if (f.next < adj[f.u].size()) {
        const auto [w, e] = adj[f.u][f.next++];
        if (e == f.parent_edge) continue;
        if (disc[w] == UINT64_MAX) {
          edge_stack.push_back(e);
          disc[w] = low[w] = timer++;
          stack.push_back(Frame{w, e, 0});
        } else if (disc[w] < disc[f.u]) {
          edge_stack.push_back(e);
          low[f.u] = std::min(low[f.u], disc[w]);
        }
      } else {
        const auto u = f.u;
        const auto pe = f.parent_edge;
        stack.pop_back();
        if (stack.empty()) continue;
        auto& pf = stack.back();
        low[pf.u] = std::min(low[pf.u], low[u]);
        if (low[u] >= disc[pf.u]) {
          // Pop one block: everything above (and including) pe.
          std::uint64_t label = UINT64_MAX;
          std::vector<std::uint64_t> members;
          while (!edge_stack.empty()) {
            const auto e = edge_stack.back();
            edge_stack.pop_back();
            members.push_back(e);
            if (e == pe) break;
          }
          for (auto e : members) label = std::min(label, e);
          for (auto e : members) block[e] = label;
        }
      }
    }
  }
  return block;
}

}  // namespace embsp::cgm
