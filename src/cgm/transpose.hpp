// CGM matrix transpose (Table 1, Group A).
//
// An r x c matrix stored row-major and block-distributed over v processors
// is transposed by routing element (i, j) to position j*r + i of the output
// (the c x r row-major layout) — a fixed permutation, so one h-relation and
// lambda = 2 supersteps.  Unlike cgm_permute, the destination is computed
// from the matrix shape inside the program (no per-record target storage).
#pragma once

#include <span>
#include <vector>

#include "bsp/program.hpp"
#include "cgm/runner.hpp"

namespace embsp::cgm {

struct TransposeProgram {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;

  struct Elem {
    std::uint64_t index;  ///< destination index in the transposed layout
    std::uint64_t value;
  };

  struct State {
    std::vector<std::uint64_t> data;  ///< in: row-major slab; out: transposed
    void serialize(util::Writer& w) const { w.write_vector(data); }
    void deserialize(util::Reader& r) {
      data = r.read_vector<std::uint64_t>();
    }
  };

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const {
    const std::uint64_t n = rows * cols;
    BlockDist dist{n, env.nprocs};
    if (step == 0) {
      const std::uint64_t first = dist.first(env.pid);
      std::vector<std::vector<Elem>> by_owner(env.nprocs);
      for (std::uint64_t off = 0; off < s.data.size(); ++off) {
        const std::uint64_t g = first + off;
        const std::uint64_t i = g / cols;
        const std::uint64_t j = g % cols;
        const std::uint64_t t = j * rows + i;
        by_owner[dist.owner(t)].push_back(Elem{t, s.data[off]});
      }
      env.charge(s.data.size() + 1);
      for (std::uint32_t q = 0; q < env.nprocs; ++q) {
        if (!by_owner[q].empty()) out.send_vector(q, by_owner[q]);
      }
      s.data.clear();
      return true;
    }
    s.data.assign(dist.count(env.pid), 0);
    for (std::size_t m = 0; m < in.count(); ++m) {
      for (const auto& e : in.vector<Elem>(m)) {
        s.data[e.index - dist.first(env.pid)] = e.value;
      }
    }
    env.charge(s.data.size() + 1);
    return false;
  }
};

struct TransposeOutcome {
  std::vector<std::uint64_t> data;  ///< c x r row-major
  ExecResult exec;
};

template <class Exec>
TransposeOutcome cgm_transpose(Exec& exec,
                               std::span<const std::uint64_t> matrix,
                               std::uint64_t rows, std::uint64_t cols,
                               std::uint32_t v) {
  TransposeProgram prog{rows, cols};
  using State = TransposeProgram::State;
  const std::uint64_t n = rows * cols;
  BlockDist dist{n, v};
  TransposeOutcome outcome;
  outcome.data.assign(n, 0);
  outcome.exec = exec.run(
      prog, v,
      std::function<State(std::uint32_t)>([&](std::uint32_t pid) {
        State s;
        const auto first = dist.first(pid);
        s.data.assign(matrix.begin() + first,
                      matrix.begin() + first + dist.count(pid));
        return s;
      }),
      std::function<void(std::uint32_t, State&)>(
          [&](std::uint32_t pid, State& s) {
            const auto first = dist.first(pid);
            for (std::uint64_t i = 0; i < s.data.size(); ++i) {
              outcome.data[first + i] = s.data[i];
            }
          }));
  return outcome;
}

}  // namespace embsp::cgm
