// Uniform executor adapters.
//
// CGM algorithm drivers (cgm_sort, cgm_list_ranking, ...) are templated on
// an executor so the same program runs on:
//   * DirectExec — the in-memory reference runtime,
//   * SeqEmExec  — the 1-processor EM-BSP* simulator (Algorithm 1),
//   * ParEmExec  — the p-processor EM-BSP* simulator (Algorithm 3).
// Each adapter exposes run(prog, v, make_state, collect) -> ExecResult and
// auto-measures mu/gamma with a direct dry run when the caller has not
// declared them.
#pragma once

#include <optional>

#include "bsp/direct_runtime.hpp"
#include "sim/dist_simulator.hpp"
#include "sim/par_simulator.hpp"
#include "sim/seq_simulator.hpp"

namespace embsp::cgm {

struct ExecResult {
  std::size_t lambda = 0;
  bsp::RunCosts costs;
  std::optional<sim::SimResult> sim;  ///< set by the EM executors
};

class DirectExec {
 public:
  explicit DirectExec(std::size_t b = 1) { opt_.b = b; }

  template <bsp::Program P>
  ExecResult run(
      const P& prog, std::uint32_t v,
      const std::function<typename P::State(std::uint32_t)>& make_state,
      const std::function<void(std::uint32_t, typename P::State&)>& collect) {
    bsp::DirectRuntime rt;
    auto r = rt.run(prog, v, make_state, collect, opt_);
    return ExecResult{r.lambda(), std::move(r.costs), std::nullopt};
  }

 private:
  bsp::DirectRuntime::Options opt_;
};

/// Fills in mu/gamma by dry-running on the direct runtime if unset.
template <bsp::Program P>
sim::SimConfig autoconfigure(
    sim::SimConfig cfg, const P& prog, std::uint32_t v,
    const std::function<typename P::State(std::uint32_t)>& make_state) {
  cfg.machine.bsp.v = v;
  if (cfg.mu == 0 || cfg.gamma == 0) {
    const auto req = bsp::measure_requirements(prog, v, make_state);
    if (cfg.mu == 0) cfg.mu = req.mu + req.mu / 8 + 64;
    // req.gamma is already in wire bytes (payload + per-message overhead),
    // the exact quantity the simulators meter; a small margin guards
    // against rounding.
    if (cfg.gamma == 0) cfg.gamma = req.gamma + 64;
  }
  return cfg;
}

class SeqEmExec {
 public:
  explicit SeqEmExec(sim::SimConfig cfg) : cfg_(cfg) { cfg_.machine.p = 1; }

  template <bsp::Program P>
  ExecResult run(
      const P& prog, std::uint32_t v,
      const std::function<typename P::State(std::uint32_t)>& make_state,
      const std::function<void(std::uint32_t, typename P::State&)>& collect) {
    auto cfg = autoconfigure(cfg_, prog, v, make_state);
    // Multi-run workloads (e.g. euler_tour) call run() several times; the
    // checkpoint manifest records which invocation a checkpoint belongs to,
    // so a resumed process re-executes completed runs deterministically and
    // resumes only the interrupted one.
    cfg.checkpoint.run_index = runs_started_++;
    sim::SeqSimulator s(cfg);
    auto r = s.run(prog, make_state, collect);
    ExecResult out{r.lambda(), r.costs, std::nullopt};
    out.sim = std::move(r);
    return out;
  }

 private:
  sim::SimConfig cfg_;
  std::size_t runs_started_ = 0;
};

class ParEmExec {
 public:
  explicit ParEmExec(sim::SimConfig cfg) : cfg_(cfg) {}

  template <bsp::Program P>
  ExecResult run(
      const P& prog, std::uint32_t v,
      const std::function<typename P::State(std::uint32_t)>& make_state,
      const std::function<void(std::uint32_t, typename P::State&)>& collect) {
    auto cfg = autoconfigure(cfg_, prog, v, make_state);
    cfg.checkpoint.run_index = runs_started_++;  // see SeqEmExec::run
    sim::ParSimulator s(cfg);
    auto r = s.run(prog, make_state, collect);
    ExecResult out{r.lambda(), r.costs, std::nullopt};
    out.sim = std::move(r);
    return out;
  }

 private:
  sim::SimConfig cfg_;
  std::size_t runs_started_ = 0;
};

/// One rank of a distributed run: every participating process (or loopback
/// thread) drives the SAME workload code with its own DistEmExec over its
/// own transport endpoint; the executors stay in lockstep through the
/// transport's exchanges.  The mu/gamma dry run happens independently on
/// every rank — it is deterministic, so all ranks derive the same budgets.
class DistEmExec {
 public:
  DistEmExec(sim::SimConfig cfg, net::Transport& transport)
      : cfg_(cfg), tp_(&transport) {
    cfg_.machine.p = tp_->size();
  }

  template <bsp::Program P>
  ExecResult run(
      const P& prog, std::uint32_t v,
      const std::function<typename P::State(std::uint32_t)>& make_state,
      const std::function<void(std::uint32_t, typename P::State&)>& collect) {
    auto cfg = autoconfigure(cfg_, prog, v, make_state);
    sim::DistSimulator s(cfg, *tp_);
    auto r = s.run(prog, make_state, collect);
    ExecResult out{r.lambda(), r.costs, std::nullopt};
    out.sim = std::move(r);
    return out;
  }

 private:
  sim::SimConfig cfg_;
  net::Transport* tp_;
};

// --- Block distribution helpers --------------------------------------------
// CGM inputs of n items over v processors use block distribution: processor
// i owns items [i*ceil(n/v), min((i+1)*ceil(n/v), n)).

struct BlockDist {
  std::uint64_t n = 0;
  std::uint32_t v = 1;

  [[nodiscard]] std::uint64_t chunk() const { return (n + v - 1) / v; }
  [[nodiscard]] std::uint32_t owner(std::uint64_t i) const {
    return static_cast<std::uint32_t>(i / chunk());
  }
  [[nodiscard]] std::uint64_t first(std::uint32_t pid) const {
    return std::min<std::uint64_t>(static_cast<std::uint64_t>(pid) * chunk(),
                                   n);
  }
  [[nodiscard]] std::uint64_t count(std::uint32_t pid) const {
    return std::min<std::uint64_t>(first(pid) + chunk(), n) - first(pid);
  }
  [[nodiscard]] std::uint64_t local_index(std::uint64_t i) const {
    return i - first(owner(i));
  }
};

}  // namespace embsp::cgm
