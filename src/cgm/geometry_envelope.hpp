// CGM lower envelope of line segments (Table 1, Group B) — both rows:
//
//  * non-intersecting segments: envelopes of disjoint subsets never cross
//    inside an elementary x-interval, the merge never splits a piece, and
//    the result has O(n) pieces (order-2 Davenport–Schinzel);
//  * the *generalized* envelope (segments may intersect): the merge splits
//    pieces at crossings, giving the O(n alpha(n)) order-3
//    Davenport–Schinzel complexity of Table 1's generalized row.
//
// Algorithm: each processor folds its block of segments into a local
// envelope (divide and conquer), then a binary merge tree combines the
// envelopes towards processor 0 — lambda = 1 + ceil(log2 v) supersteps.
// Table 1 cites an O(1)-round algorithm [19]; see DESIGN.md substitutions.
#pragma once

#include <vector>

#include "bsp/program.hpp"
#include "cgm/runner.hpp"
#include "util/workloads.hpp"

namespace embsp::cgm {

/// One linear piece of the (partial) envelope: segment `seg` restricted to
/// [x1, x2] with heights y1 = f(x1), y2 = f(x2).
struct EnvPiece {
  double x1, y1, x2, y2;
  std::uint64_t seg;
};

/// Merge two partial lower envelopes (pieces sorted by x, non-overlapping
/// within each input).  Exposed for unit tests.
std::vector<EnvPiece> merge_envelopes(std::span<const EnvPiece> a,
                                      std::span<const EnvPiece> b);

/// Envelope of a set of segments (divide and conquer).  Exposed for tests.
std::vector<EnvPiece> build_envelope(std::span<const util::Segment2D> segs,
                                     std::uint64_t first_id);

/// Height of the envelope at x, or +infinity where undefined.
double envelope_eval(std::span<const EnvPiece> env, double x);

struct EnvelopeProgram {
  struct State {
    std::vector<EnvPiece> env;
    std::uint8_t active = 1;
    void serialize(util::Writer& w) const {
      w.write_vector(env);
      w.write(active);
    }
    void deserialize(util::Reader& r) {
      env = r.read_vector<EnvPiece>();
      active = r.read<std::uint8_t>();
    }
  };

  static std::size_t merge_rounds(std::uint32_t v) {
    std::size_t r = 0;
    while ((1u << r) < v) ++r;
    return r;
  }

  bool superstep(std::size_t step, const bsp::ProcEnv& env_,
                 State& s, const bsp::Inbox& in, bsp::Outbox& out) const {
    const std::size_t rounds = merge_rounds(env_.nprocs);
    if (step > 0) {
      for (std::size_t i = 0; i < in.count(); ++i) {
        auto part = in.vector<EnvPiece>(i);
        s.env = merge_envelopes(s.env, part);
      }
      env_.charge(s.env.size() + 1);
    }
    if (step < rounds) {
      const std::uint32_t stride = 1u << step;
      if (s.active && (env_.pid & stride) != 0) {
        out.send_vector(env_.pid - stride, s.env);
        s.env.clear();
        s.active = 0;
      }
      return true;
    }
    return false;
  }
};

struct EnvelopeOutcome {
  std::vector<EnvPiece> envelope;  ///< global lower envelope at processor 0
  ExecResult exec;
};

/// Batched point location on a computed envelope: for each query x, the
/// envelope height and the segment id attaining it (or has == 0 where the
/// envelope is undefined).  O(1) rounds: envelope pieces are
/// block-distributed by x order, slab boundary x's are broadcast, queries
/// route to the owning slab and answers route home.
struct EnvelopeAnswer {
  double y;
  std::uint64_t seg;
  std::uint8_t has;
  std::uint8_t pad[7];
};

struct EnvelopeLocateProgram {
  std::uint64_t num_pieces = 0;
  std::uint64_t num_queries = 0;

  struct Boundary {
    double first_x;
    std::uint8_t has;
    std::uint8_t pad[7];
  };
  struct Query {
    double x;
    std::uint64_t tag;
    std::uint32_t home;
    std::uint32_t pad;
  };
  struct Reply {
    std::uint64_t tag;
    EnvelopeAnswer ans;
  };

  struct State {
    std::vector<EnvPiece> pieces;   ///< slab of the envelope, x-ordered
    std::vector<Query> queries;     ///< queries homed here
    std::vector<EnvelopeAnswer> answers;
    void serialize(util::Writer& w) const {
      w.write_vector(pieces);
      w.write_vector(queries);
      w.write_vector(answers);
    }
    void deserialize(util::Reader& r) {
      pieces = r.read_vector<EnvPiece>();
      queries = r.read_vector<Query>();
      answers = r.read_vector<EnvelopeAnswer>();
    }
  };

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const;
};

struct EnvelopeLocateOutcome {
  std::vector<EnvelopeAnswer> answers;  ///< per query
  ExecResult exec;
};

/// Alias emphasizing that the same pipeline computes the generalized
/// envelope of possibly-intersecting segments.
template <class Exec>
EnvelopeOutcome cgm_lower_envelope_general(
    Exec& exec, std::span<const util::Segment2D> segs, std::uint32_t v) {
  return cgm_lower_envelope(exec, segs, v);
}

/// Locates each query x on the envelope (as produced by
/// cgm_lower_envelope).
template <class Exec>
EnvelopeLocateOutcome cgm_envelope_locate(Exec& exec,
                                          std::span<const EnvPiece> envelope,
                                          std::span<const double> queries,
                                          std::uint32_t v) {
  EnvelopeLocateProgram prog;
  prog.num_pieces = envelope.size();
  prog.num_queries = queries.size();
  using State = EnvelopeLocateProgram::State;
  BlockDist pdist{envelope.size(), v};
  BlockDist qdist{queries.size(), v};
  EnvelopeLocateOutcome outcome;
  outcome.answers.assign(queries.size(), EnvelopeAnswer{0, 0, 0, {}});
  outcome.exec = exec.run(
      prog, v,
      std::function<State(std::uint32_t)>([&](std::uint32_t pid) {
        State s;
        const auto pf = pdist.first(pid);
        s.pieces.assign(envelope.begin() + pf,
                        envelope.begin() + pf + pdist.count(pid));
        const auto qf = qdist.first(pid);
        for (std::uint64_t i = 0; i < qdist.count(pid); ++i) {
          s.queries.push_back(
              EnvelopeLocateProgram::Query{queries[qf + i], qf + i, pid, 0});
        }
        return s;
      }),
      std::function<void(std::uint32_t, State&)>(
          [&](std::uint32_t pid, State& s) {
            const auto qf = qdist.first(pid);
            for (std::uint64_t i = 0; i < s.answers.size(); ++i) {
              outcome.answers[qf + i] = s.answers[i];
            }
          }));
  return outcome;
}

template <class Exec>
EnvelopeOutcome cgm_lower_envelope(Exec& exec,
                                   std::span<const util::Segment2D> segs,
                                   std::uint32_t v) {
  EnvelopeProgram prog;
  using State = EnvelopeProgram::State;
  BlockDist dist{segs.size(), v};
  EnvelopeOutcome outcome;
  outcome.exec = exec.run(
      prog, v,
      std::function<State(std::uint32_t)>([&](std::uint32_t pid) {
        State s;
        const auto first = dist.first(pid);
        s.env = build_envelope(segs.subspan(first, dist.count(pid)), first);
        return s;
      }),
      std::function<void(std::uint32_t, State&)>(
          [&](std::uint32_t pid, State& s) {
            if (pid == 0) outcome.envelope = std::move(s.env);
          }));
  return outcome;
}

}  // namespace embsp::cgm
