#include "cgm/graph_tree_contraction.hpp"

#include <functional>
#include <stdexcept>
#include <unordered_map>

namespace embsp::cgm {

namespace {

std::uint64_t apply_expr_op(ExprOp op, std::uint64_t a, std::uint64_t b) {
  return op == ExprOp::kAdd ? a + b : a * b;
}

}  // namespace

bool TreeContractionProgram::superstep(std::size_t, const bsp::ProcEnv& env,
                                       State& s, const bsp::Inbox& in,
                                       bsp::Outbox& out) const {
  switch (s.phase) {
    case kContract:
      return contract_step(env, s, in, out);
    case kGather:
      return gather_step(env, s, in, out);
    case kExpand:
      return expand_step(env, s, in, out);
    default:
      return false;
  }
}

bool TreeContractionProgram::contract_step(const bsp::ProcEnv& env, State& s,
                                           const bsp::Inbox& in,
                                           bsp::Outbox& out) const {
  BlockDist dist{n, env.nprocs};
  const std::uint64_t first = dist.first(env.pid);

  switch (s.sub) {
    case 0: {
      if (s.round > 0 && in.value<std::uint8_t>(0) == 0) {
        // Enter the gather phase: ship every node that still matters
        // (unresolved, or resolved with an undelivered contribution) to
        // processor 0.
        s.phase = kGather;
        s.total_rounds = s.round;
        std::vector<GatherNode> nodes;
        for (std::size_t lu = 0; lu < s.parent.size(); ++lu) {
          if (s.status[lu] != kUnresolved &&
              s.status[lu] != kResolvedUnsent) {
            continue;
          }
          GatherNode g{};
          g.id = first + lu;
          g.parent = s.parent[lu];
          g.g_a = s.g_a[lu];
          g.g_b = s.g_b[lu];
          g.partial = s.has_partial[lu] ? s.partial[lu] : 0;
          g.value = s.value[lu];
          g.op = s.op[lu];
          // Low nibble: unresolved children count; bit 4: has_partial.
          g.pending = s.pending[lu] | (s.has_partial[lu] << 4);
          g.status = s.status[lu];
          nodes.push_back(g);
        }
        if (!nodes.empty()) out.send_vector(0, nodes);
        s.sub = 1;
        return true;
      }
      // RAKE send: resolved nodes push their contribution up.
      std::vector<std::vector<Contribution>> contrib(env.nprocs);
      for (std::size_t lu = 0; lu < s.parent.size(); ++lu) {
        if (s.status[lu] != kResolvedUnsent) continue;
        const std::uint64_t u = first + lu;
        if (s.parent[lu] == u) {
          s.status[lu] = kFinal;  // the root's value is final
          continue;
        }
        const LinFn g{s.g_a[lu], s.g_b[lu]};
        contrib[dist.owner(s.parent[lu])].push_back(
            Contribution{s.parent[lu], g(s.value[lu])});
        s.status[lu] = kResolvedSent;
      }
      env.charge(s.parent.size() + 1);
      for (std::uint32_t q = 0; q < env.nprocs; ++q) {
        if (!contrib[q].empty()) out.send_vector(q, contrib[q]);
      }
      s.sub = 1;
      return true;
    }
    case 1: {  // RAKE receive: fold contributions.
      for (std::size_t i = 0; i < in.count(); ++i) {
        for (const auto& c : in.vector<Contribution>(i)) {
          const std::uint64_t lp = c.parent - first;
          if (s.has_partial[lp]) {
            s.value[lp] = apply_expr_op(static_cast<ExprOp>(s.op[lp]),
                                        s.partial[lp], c.value);
            s.pending[lp] = 0;
            s.status[lp] = kResolvedUnsent;
          } else {
            s.partial[lp] = c.value;
            s.has_partial[lp] = 1;
            s.pending[lp] = 1;
          }
        }
      }
      s.sub = 2;
      return true;
    }
    case 2: {  // COMPRESS queries.
      std::vector<std::vector<ChainQuery>> queries(env.nprocs);
      for (std::size_t lu = 0; lu < s.parent.size(); ++lu) {
        if (s.status[lu] != kUnresolved) continue;
        const std::uint64_t u = first + lu;
        const std::uint64_t p = s.parent[lu];
        if (p == u) continue;
        if (coin(u, s.round, seed) != 1 || coin(p, s.round, seed) != 0) {
          continue;
        }
        queries[dist.owner(p)].push_back(ChainQuery{p, u});
      }
      env.charge(s.parent.size() + 1);
      for (std::uint32_t q = 0; q < env.nprocs; ++q) {
        if (!queries[q].empty()) out.send_vector(q, queries[q]);
      }
      s.sub = 3;
      return true;
    }
    case 3: {  // COMPRESS replies.
      std::vector<std::vector<ChainReply>> replies(env.nprocs);
      for (std::size_t i = 0; i < in.count(); ++i) {
        for (const auto& q : in.vector<ChainQuery>(i)) {
          const std::uint64_t lp = q.p - first;
          ChainReply r{};
          r.u = q.u;
          r.g_a = s.g_a[lp];
          r.g_b = s.g_b[lp];
          r.partial = s.partial[lp];
          r.grandparent = s.parent[lp];
          r.op = s.op[lp];
          r.is_chain = s.status[lp] == kUnresolved && s.pending[lp] == 1 &&
                               s.has_partial[lp] == 1 &&
                               s.parent[lp] != q.p  // never splice the root
                           ? 1
                           : 0;
          replies[dist.owner(q.u)].push_back(r);
        }
      }
      for (std::uint32_t q = 0; q < env.nprocs; ++q) {
        if (!replies[q].empty()) out.send_vector(q, replies[q]);
      }
      s.sub = 4;
      return true;
    }
    case 4: {  // COMPRESS apply: splice the chain parent out.
      std::vector<std::vector<SpliceNotice>> notices(env.nprocs);
      for (std::size_t i = 0; i < in.count(); ++i) {
        for (const auto& r : in.vector<ChainReply>(i)) {
          if (!r.is_chain) continue;
          const std::uint64_t lu = r.u - first;
          const std::uint64_t p = s.parent[lu];
          const LinFn g_old{s.g_a[lu], s.g_b[lu]};
          // v_p = h(v_u) with h = (x op partial) after g_old.
          const LinFn h = LinFn::apply_op(static_cast<ExprOp>(r.op),
                                          r.partial)
                              .after(g_old);
          // New edge function to the grandparent: g_p after h.
          const LinFn g_new = LinFn{r.g_a, r.g_b}.after(h);
          s.g_a[lu] = g_new.a;
          s.g_b[lu] = g_new.b;
          s.parent[lu] = r.grandparent;
          notices[dist.owner(p)].push_back(
              SpliceNotice{p, r.u, h.a, h.b});
        }
      }
      for (std::uint32_t q = 0; q < env.nprocs; ++q) {
        if (!notices[q].empty()) out.send_vector(q, notices[q]);
      }
      s.sub = 5;
      return true;
    }
    case 5: {  // Mark spliced parents; count unresolved nodes.
      for (std::size_t i = 0; i < in.count(); ++i) {
        for (const auto& m : in.vector<SpliceNotice>(i)) {
          const std::uint64_t lp = m.p - first;
          s.status[lp] = kSpliced;
          s.splice_round[lp] = s.round;
          s.h_a[lp] = m.h_a;
          s.h_b[lp] = m.h_b;
          s.splice_child[lp] = m.child;
        }
      }
      std::uint64_t active = 0;
      for (auto st : s.status) {
        if (st == kUnresolved || st == kResolvedUnsent) ++active;
      }
      out.send_value<std::uint64_t>(0, active);
      s.sub = 6;
      return true;
    }
    default: {  // sub 6: processor 0 decides continue vs gather.
      if (env.pid == 0) {
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < in.count(); ++i) {
          total += in.value<std::uint64_t>(i);
        }
        const std::uint64_t threshold =
            gather_threshold != 0
                ? gather_threshold
                : std::max<std::uint64_t>(2 * dist.chunk(), 64);
        const std::uint8_t decision = total > threshold ? 1 : 0;
        for (std::uint32_t q = 0; q < env.nprocs; ++q) {
          out.send_value(q, decision);
        }
      }
      s.round += 1;
      s.sub = 0;
      return true;
    }
  }
}

bool TreeContractionProgram::gather_step(const bsp::ProcEnv& env, State& s,
                                         const bsp::Inbox& in,
                                         bsp::Outbox& out) const {
  BlockDist dist{n, env.nprocs};
  switch (s.sub) {
    case 1: {
      if (env.pid == 0) {
        std::unordered_map<std::uint64_t, GatherNode> nodes;
        for (std::size_t i = 0; i < in.count(); ++i) {
          for (const auto& g : in.vector<GatherNode>(i)) {
            nodes.emplace(g.id, g);
          }
        }
        // Every gathered node with a parent still owes that parent its
        // contribution (kResolvedUnsent by definition, kUnresolved once its
        // own value is known) — collect those pending edges.
        std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>
            children;
        for (const auto& [id, g] : nodes) {
          if (g.parent != id) children[g.parent].push_back(id);
        }
        // Memoized evaluation over the residual tree.
        std::unordered_map<std::uint64_t, std::uint64_t> memo;
        std::function<std::uint64_t(std::uint64_t)> eval =
            [&](std::uint64_t id) -> std::uint64_t {
          auto mit = memo.find(id);
          if (mit != memo.end()) return mit->second;
          const auto& g = nodes.at(id);
          std::uint64_t val;
          if (g.status == kResolvedUnsent) {
            val = g.value;
          } else {
            // Fold the already-delivered partial with the outstanding
            // children contributions.
            std::uint64_t acc = 0;
            bool have = false;
            if ((g.pending >> 4) & 1) {
              acc = g.partial;
              have = true;
            }
            auto cit = children.find(id);
            if (cit != children.end()) {
              for (const auto c : cit->second) {
                const auto& gc = nodes.at(c);
                const std::uint64_t contrib =
                    LinFn{gc.g_a, gc.g_b}(eval(c));
                if (have) {
                  acc = apply_expr_op(static_cast<ExprOp>(g.op), acc,
                                      contrib);
                } else {
                  acc = contrib;
                  have = true;
                }
              }
            }
            val = acc;
          }
          memo[id] = val;
          return val;
        };
        std::vector<std::vector<ValueMsg>> outgoing(env.nprocs);
        for (const auto& [id, g] : nodes) {
          outgoing[dist.owner(id)].push_back(ValueMsg{id, eval(id)});
        }
        env.charge(nodes.size() * 4 + 1);
        for (std::uint32_t q = 0; q < env.nprocs; ++q) {
          if (!outgoing[q].empty()) out.send_vector(q, outgoing[q]);
        }
      }
      s.sub = 2;
      return true;
    }
    default: {  // sub 2: apply values, enter expansion.
      const std::uint64_t first = dist.first(env.pid);
      for (std::size_t i = 0; i < in.count(); ++i) {
        for (const auto& m : in.vector<ValueMsg>(i)) {
          const std::uint64_t lu = m.id - first;
          s.value[lu] = m.value;
          s.status[lu] = kFinal;
        }
      }
      for (auto& st : s.status) {
        if (st == kResolvedUnsent || st == kResolvedSent) st = kFinal;
      }
      if (s.total_rounds == 0) {
        s.phase = kDone;
        return false;
      }
      s.phase = kExpand;
      s.expand_round = s.total_rounds - 1;
      s.sub = 0;
      return true;
    }
  }
}

bool TreeContractionProgram::expand_step(const bsp::ProcEnv& env, State& s,
                                         const bsp::Inbox& in,
                                         bsp::Outbox& out) const {
  BlockDist dist{n, env.nprocs};
  const std::uint64_t first = dist.first(env.pid);
  switch (s.sub) {
    case 0: {
      std::vector<std::vector<ChainQuery>> queries(env.nprocs);
      for (std::size_t lu = 0; lu < s.parent.size(); ++lu) {
        if (s.status[lu] != kSpliced ||
            s.splice_round[lu] != s.expand_round) {
          continue;
        }
        queries[dist.owner(s.splice_child[lu])].push_back(
            ChainQuery{s.splice_child[lu], first + lu});
      }
      for (std::uint32_t q = 0; q < env.nprocs; ++q) {
        if (!queries[q].empty()) out.send_vector(q, queries[q]);
      }
      s.sub = 1;
      return true;
    }
    case 1: {
      std::vector<std::vector<ValueMsg>> replies(env.nprocs);
      for (std::size_t i = 0; i < in.count(); ++i) {
        for (const auto& q : in.vector<ChainQuery>(i)) {
          const std::uint64_t lc = q.p - first;
          if (s.status[lc] != kFinal) {
            throw std::runtime_error(
                "cgm_tree_contraction: expansion read a non-final value");
          }
          replies[dist.owner(q.u)].push_back(ValueMsg{q.u, s.value[lc]});
        }
      }
      for (std::uint32_t q = 0; q < env.nprocs; ++q) {
        if (!replies[q].empty()) out.send_vector(q, replies[q]);
      }
      s.sub = 2;
      return true;
    }
    default: {
      for (std::size_t i = 0; i < in.count(); ++i) {
        for (const auto& m : in.vector<ValueMsg>(i)) {
          const std::uint64_t lu = m.id - first;
          s.value[lu] = LinFn{s.h_a[lu], s.h_b[lu]}(m.value);
          s.status[lu] = kFinal;
        }
      }
      if (s.expand_round == 0) {
        s.phase = kDone;
        return false;
      }
      s.expand_round -= 1;
      s.sub = 0;
      return true;
    }
  }
}

std::vector<std::uint64_t> evaluate_expression_tree(
    const ExpressionTree& tree) {
  const std::uint64_t n = tree.parent.size();
  std::vector<std::vector<std::uint64_t>> children(n);
  std::uint64_t root = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (tree.parent[i] == i) {
      root = i;
    } else {
      children[tree.parent[i]].push_back(i);
    }
  }
  std::vector<std::uint64_t> value(n, 0);
  // Iterative post-order.
  std::vector<std::pair<std::uint64_t, bool>> stack{{root, false}};
  while (!stack.empty()) {
    auto [u, expanded] = stack.back();
    stack.pop_back();
    if (tree.is_leaf[u]) {
      value[u] = tree.leaf_value[u];
      continue;
    }
    if (!expanded) {
      stack.push_back({u, true});
      for (auto c : children[u]) stack.push_back({c, false});
      continue;
    }
    if (children[u].size() != 2) {
      throw std::invalid_argument(
          "evaluate_expression_tree: internal nodes need two children");
    }
    const std::uint64_t a = value[children[u][0]];
    const std::uint64_t b = value[children[u][1]];
    value[u] = tree.op[u] == ExprOp::kAdd ? a + b : a * b;
  }
  return value;
}

}  // namespace embsp::cgm
