#include "cgm/geometry_envelope.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace embsp::cgm {

namespace {

double piece_eval(const EnvPiece& p, double x) {
  if (p.x2 == p.x1) return std::min(p.y1, p.y2);
  const double t = (x - p.x1) / (p.x2 - p.x1);
  return p.y1 + t * (p.y2 - p.y1);
}

/// Index of the piece covering x in a sorted, non-overlapping list; -1 if
/// no piece covers x.
std::ptrdiff_t find_piece(std::span<const EnvPiece> env, double x) {
  auto it = std::upper_bound(
      env.begin(), env.end(), x,
      [](double value, const EnvPiece& p) { return value < p.x1; });
  if (it == env.begin()) return -1;
  --it;
  if (x > it->x2) return -1;
  return it - env.begin();
}

void append_piece(std::vector<EnvPiece>& out, const EnvPiece& src, double x1,
                  double x2) {
  if (x2 <= x1) return;
  EnvPiece clipped{x1, piece_eval(src, x1), x2, piece_eval(src, x2), src.seg};
  if (!out.empty() && out.back().seg == clipped.seg &&
      out.back().x2 == clipped.x1) {
    out.back().x2 = clipped.x2;  // coalesce adjacent pieces of one segment
    out.back().y2 = clipped.y2;
  } else {
    out.push_back(clipped);
  }
}

}  // namespace

std::vector<EnvPiece> merge_envelopes(std::span<const EnvPiece> a,
                                      std::span<const EnvPiece> b) {
  if (a.empty()) return {b.begin(), b.end()};
  if (b.empty()) return {a.begin(), a.end()};

  // Elementary intervals: between consecutive breakpoints of either input.
  std::vector<double> xs;
  xs.reserve(2 * (a.size() + b.size()));
  for (const auto& p : a) {
    xs.push_back(p.x1);
    xs.push_back(p.x2);
  }
  for (const auto& p : b) {
    xs.push_back(p.x1);
    xs.push_back(p.x2);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  std::vector<EnvPiece> out;
  out.reserve(a.size() + b.size());
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    const double x1 = xs[i];
    const double x2 = xs[i + 1];
    const double mid = 0.5 * (x1 + x2);
    const auto ia = find_piece(a, mid);
    const auto ib = find_piece(b, mid);
    if (ia < 0 && ib < 0) continue;
    if (ia < 0) {
      append_piece(out, b[ib], x1, x2);
    } else if (ib < 0) {
      append_piece(out, a[ia], x1, x2);
    } else {
      // Both pieces are linear over [x1, x2].  If they cross in the
      // interior (the *generalized* envelope row: segments may intersect),
      // split at the crossing; otherwise the endpoint comparison decides
      // the whole interval (the non-crossing case never splits).
      const double da1 = piece_eval(a[ia], x1) - piece_eval(b[ib], x1);
      const double da2 = piece_eval(a[ia], x2) - piece_eval(b[ib], x2);
      if (da1 * da2 < 0) {
        const double t = da1 / (da1 - da2);  // crossing parameter in (0,1)
        const double xc = x1 + t * (x2 - x1);
        const EnvPiece& first = da1 < 0 ? a[ia] : b[ib];
        const EnvPiece& second = da1 < 0 ? b[ib] : a[ia];
        append_piece(out, first, x1, xc);
        append_piece(out, second, xc, x2);
      } else {
        const bool a_lower =
            piece_eval(a[ia], mid) <= piece_eval(b[ib], mid);
        append_piece(out, a_lower ? a[ia] : b[ib], x1, x2);
      }
    }
  }
  return out;
}

std::vector<EnvPiece> build_envelope(std::span<const util::Segment2D> segs,
                                     std::uint64_t first_id) {
  if (segs.empty()) return {};
  if (segs.size() == 1) {
    const auto& s = segs[0];
    return {EnvPiece{s.x1, s.y1, s.x2, s.y2, first_id}};
  }
  const std::size_t half = segs.size() / 2;
  auto left = build_envelope(segs.subspan(0, half), first_id);
  auto right = build_envelope(segs.subspan(half), first_id + half);
  return merge_envelopes(left, right);
}

double envelope_eval(std::span<const EnvPiece> env, double x) {
  const auto i = find_piece(env, x);
  if (i < 0) return std::numeric_limits<double>::infinity();
  return piece_eval(env[i], x);
}

bool EnvelopeLocateProgram::superstep(std::size_t step,
                                      const bsp::ProcEnv& env, State& s,
                                      const bsp::Inbox& in,
                                      bsp::Outbox& out) const {
  const std::uint32_t v = env.nprocs;
  switch (step) {
    case 0: {  // broadcast slab boundary (first piece's x1)
      Boundary b{};
      b.has = s.pieces.empty() ? 0 : 1;
      if (b.has) b.first_x = s.pieces.front().x1;
      for (std::uint32_t q = 0; q < v; ++q) out.send_value(q, b);
      return true;
    }
    case 1: {  // route queries to the slab whose x-range contains them
      std::vector<Boundary> bounds;
      for (std::size_t i = 0; i < in.count(); ++i) {
        bounds.push_back(in.value<Boundary>(i));
      }
      std::vector<std::vector<Query>> route(v);
      for (const auto& q : s.queries) {
        // Owner: last nonempty slab whose first_x <= q.x (pieces are
        // globally x-sorted); fall back to the first nonempty slab, whose
        // scan will report "undefined" when x precedes the envelope.
        std::uint32_t owner = UINT32_MAX;
        for (std::uint32_t t = 0; t < v; ++t) {
          if (!bounds[t].has) continue;
          if (owner == UINT32_MAX || bounds[t].first_x <= q.x) owner = t;
          if (bounds[t].first_x > q.x) break;
        }
        if (owner == UINT32_MAX) owner = 0;  // empty envelope
        route[owner].push_back(q);
      }
      env.charge(s.queries.size() + 1);
      for (std::uint32_t t = 0; t < v; ++t) {
        if (!route[t].empty()) out.send_vector(t, route[t]);
      }
      return true;
    }
    case 2: {  // answer by binary search over the local slab
      std::vector<std::vector<Reply>> replies(v);
      for (std::size_t i = 0; i < in.count(); ++i) {
        for (const auto& q : in.vector<Query>(i)) {
          EnvelopeAnswer ans{0, 0, 0, {}};
          const auto idx = find_piece(s.pieces, q.x);
          if (idx >= 0) {
            ans.y = piece_eval(s.pieces[idx], q.x);
            ans.seg = s.pieces[idx].seg;
            ans.has = 1;
          }
          replies[q.home].push_back(Reply{q.tag, ans});
        }
      }
      env.charge(s.pieces.size() + 1);
      for (std::uint32_t t = 0; t < v; ++t) {
        if (!replies[t].empty()) out.send_vector(t, replies[t]);
      }
      return true;
    }
    default: {  // collect at homes
      BlockDist qdist{num_queries, v};
      s.answers.assign(s.queries.size(), EnvelopeAnswer{0, 0, 0, {}});
      for (std::size_t i = 0; i < in.count(); ++i) {
        for (const auto& r : in.vector<Reply>(i)) {
          s.answers[r.tag - qdist.first(env.pid)] = r.ans;
        }
      }
      return false;
    }
  }
}

}  // namespace embsp::cgm
