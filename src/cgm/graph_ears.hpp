// CGM ear decomposition (Table 1, Group C: the "ear and open ear
// decomposition" half of the biconnectivity row), Maon–Schieber–Vishkin
// style, composed from the library's phases:
//
//   1. spanning tree (cgm_connected_components) and Euler tour;
//   2. batched LCA of every nontree edge (each nontree edge's fundamental
//      cycle is a candidate ear);
//   3. nontree edges ranked by (depth of their LCA, edge id) — the MSV
//      ear order;
//   4. every tree edge joins the smallest-ranked nontree edge whose
//      fundamental cycle covers it.  Because a covering edge's LCA lies
//      strictly above the tree edge while a non-covering incident edge's
//      LCA lies inside the subtree (hence deeper), the covering minimum
//      equals a plain *subtree minimum* of per-vertex incident ranks —
//      one batched distributed RMQ (cgm_batched_range_min).
//
// For a 2-edge-connected input every tree edge is covered and the ears
// partition the edges: ear 0 is a cycle and every later ear is a path
// whose endpoints lie on earlier ears (open, for biconnected inputs).
#pragma once

#include <unordered_map>
#include <vector>

#include "cgm/graph_components.hpp"
#include "cgm/graph_lca.hpp"

namespace embsp::cgm {

struct EarDecompositionOutcome {
  /// Per input edge: ear index in [0, m - n + 1); ear 0 is the root cycle.
  std::vector<std::uint64_t> ear;
  std::size_t num_ears = 0;
  ExecResult cc_exec;
  ExecResult rmq_exec;
};

/// Ear decomposition of a connected, 2-edge-connected graph (throws if a
/// bridge or disconnection is detected).
template <class Exec>
EarDecompositionOutcome cgm_ear_decomposition(
    Exec& exec, std::uint64_t n, std::span<const util::Edge> edges,
    std::uint32_t v) {
  EarDecompositionOutcome outcome;
  outcome.ear.assign(edges.size(), UINT64_MAX);
  if (edges.empty()) return outcome;

  // --- spanning tree ---------------------------------------------------------
  auto cc = cgm_connected_components(exec, n, edges, v);
  outcome.cc_exec = std::move(cc.exec);
  {
    const std::uint64_t root_label = cc.component[0];
    for (std::uint64_t x = 0; x < n; ++x) {
      if (cc.component[x] != root_label) {
        throw std::invalid_argument(
            "cgm_ear_decomposition: the graph must be connected");
      }
    }
  }
  std::vector<std::vector<std::uint64_t>> adj(n);
  std::vector<std::uint8_t> is_tree(edges.size(), 0);
  for (auto id : cc.tree_edges) {
    is_tree[id] = 1;
    adj[edges[id].u].push_back(edges[id].v);
    adj[edges[id].v].push_back(edges[id].u);
  }
  std::vector<std::uint64_t> parent(n, UINT64_MAX);
  {
    std::vector<std::uint64_t> stack{0};
    parent[0] = 0;
    while (!stack.empty()) {
      const auto u = stack.back();
      stack.pop_back();
      for (auto w : adj[u]) {
        if (parent[w] == UINT64_MAX) {
          parent[w] = u;
          stack.push_back(w);
        }
      }
    }
  }

  // --- LCA depth of every nontree edge ---------------------------------------
  std::vector<std::pair<std::uint64_t, std::uint64_t>> lca_queries;
  std::vector<std::size_t> nontree_ids;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (is_tree[e]) continue;
    lca_queries.emplace_back(edges[e].u, edges[e].v);
    nontree_ids.push_back(e);
  }
  auto lca = cgm_batched_lca(exec, parent, lca_queries, v);
  const auto& tour = lca.tour;

  // --- MSV ear order: (depth of LCA, edge id) ---------------------------------
  std::vector<std::size_t> order(nontree_ids.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto da = tour.depth[lca.lca[a]];
    const auto db = tour.depth[lca.lca[b]];
    if (da != db) return da < db;
    return nontree_ids[a] < nontree_ids[b];
  });
  std::vector<std::uint64_t> rank(nontree_ids.size());
  for (std::size_t r = 0; r < order.size(); ++r) rank[order[r]] = r;
  outcome.num_ears = nontree_ids.size();
  for (std::size_t i = 0; i < nontree_ids.size(); ++i) {
    outcome.ear[nontree_ids[i]] = rank[i];
  }

  // --- subtree-min of per-vertex incident ranks --------------------------------
  const std::uint64_t kNone = UINT64_MAX;
  std::vector<std::uint64_t> key(n, kNone);
  for (std::size_t i = 0; i < nontree_ids.size(); ++i) {
    const auto& e = edges[nontree_ids[i]];
    key[e.u] = std::min(key[e.u], rank[i]);
    key[e.v] = std::min(key[e.v], rank[i]);
  }
  std::vector<TourEntry> arr(tour.num_arcs, TourEntry{kNone, kNone});
  for (std::uint64_t x = 0; x < n; ++x) {
    if (parent[x] == x) continue;
    arr[tour.first_pos[x]] = TourEntry{key[x], key[x]};
  }
  std::vector<LcaQuery> rmq_queries;
  std::vector<std::uint64_t> query_vertex;
  for (std::uint64_t x = 0; x < n; ++x) {
    if (parent[x] == x) continue;
    rmq_queries.push_back(
        LcaQuery{tour.first_pos[x], tour.last_pos[x], rmq_queries.size()});
    query_vertex.push_back(x);
  }
  if (!rmq_queries.empty()) {
    auto rmq = cgm_batched_range_min(exec, arr, rmq_queries, v);
    outcome.rmq_exec = std::move(rmq.exec);
    // Locate each tree edge (p(w), w) -> ear of the covering minimum.
    std::unordered_map<std::uint64_t, std::uint64_t> ear_of_child;
    for (std::size_t i = 0; i < rmq_queries.size(); ++i) {
      if (rmq.payload[i] == kNone) {
        throw std::invalid_argument(
            "cgm_ear_decomposition: bridge detected — the graph must be "
            "2-edge-connected");
      }
      ear_of_child.emplace(query_vertex[i], rmq.payload[i]);
    }
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (!is_tree[e]) continue;
      const auto child =
          parent[edges[e].v] == edges[e].u ? edges[e].v : edges[e].u;
      outcome.ear[e] = ear_of_child.at(child);
    }
  }
  return outcome;
}

}  // namespace embsp::cgm
