// CGM 2D convex hull (Table 1, Group B — stand-in for the paper's 3D hull
// row; see DESIGN.md substitutions).
//
//   1. global sort by (x, y) (4 supersteps);
//   2. local hulls via Andrew's monotone chain;
//   3. binary-tree merge: in round r, processor i with bit r set sends its
//      hull points to i - 2^r, which merges (hull points stay x-sorted, so
//      a linear merge + monotone chain recomputation suffices);
// lambda = 4 + ceil(log2 v) supersteps; processor 0 ends with the hull.
#pragma once

#include <vector>

#include "cgm/sort.hpp"
#include "util/workloads.hpp"

namespace embsp::cgm {

struct HullPoint {
  double x, y;
  std::uint64_t tag;
};

struct HullPointLess {
  bool operator()(const HullPoint& a, const HullPoint& b) const {
    if (a.x != b.x) return a.x < b.x;
    if (a.y != b.y) return a.y < b.y;
    return a.tag < b.tag;
  }
};

/// Andrew's monotone chain over x-sorted points; returns hull vertices in
/// counter-clockwise order starting from the leftmost point.  Collinear
/// points on hull edges are dropped.
std::vector<HullPoint> monotone_chain(std::span<const HullPoint> sorted);

/// Hull points of `sorted`, returned still sorted by (x, y) — the form the
/// tree merge keeps between rounds.  Exposed for testing.
std::vector<HullPoint> hull_points_sorted(std::span<const HullPoint> sorted);

struct HullProgram {
  using Sorter = SortEngine<HullPoint, HullPointLess>;

  struct State {
    std::vector<HullPoint> pts;  ///< slab points, then hull candidates
    std::uint8_t active = 1;
    void serialize(util::Writer& w) const {
      w.write_vector(pts);
      w.write(active);
    }
    void deserialize(util::Reader& r) {
      pts = r.read_vector<HullPoint>();
      active = r.read<std::uint8_t>();
    }
  };

  static std::size_t merge_rounds(std::uint32_t v) {
    std::size_t r = 0;
    while ((1u << r) < v) ++r;
    return r;
  }

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const {
    const std::size_t rounds = merge_rounds(env.nprocs);
    if (step < Sorter::kSteps) {
      Sorter::step(step, env, s.pts, in, out, HullPointLess{});
      return true;
    }
    const std::size_t r = step - Sorter::kSteps;
    if (r == 0) {
      s.pts = hull_points_sorted(s.pts);
      env.charge(s.pts.size() * 4 + 1);
    } else {
      // Merge hull candidates received from pid + 2^(r-1).
      for (std::size_t i = 0; i < in.count(); ++i) {
        auto part = in.vector<HullPoint>(i);
        std::vector<HullPoint> merged;
        merged.reserve(s.pts.size() + part.size());
        std::merge(s.pts.begin(), s.pts.end(), part.begin(), part.end(),
                   std::back_inserter(merged), HullPointLess{});
        s.pts = hull_points_sorted(merged);
      }
      env.charge(s.pts.size() * 4 + 1);
    }
    if (r < rounds) {
      const std::uint32_t stride = 1u << r;
      if (s.active && (env.pid & stride) != 0) {
        out.send_vector(env.pid - stride, s.pts);
        s.pts.clear();
        s.active = 0;
      }
      return true;
    }
    return false;
  }
};

struct HullOutcome {
  std::vector<util::Point2D> hull;      ///< CCW order
  std::vector<std::uint64_t> hull_tags; ///< original indices, CCW order
  ExecResult exec;
};

template <class Exec>
HullOutcome cgm_convex_hull(Exec& exec, std::span<const util::Point2D> points,
                            std::uint32_t v) {
  HullProgram prog;
  using State = HullProgram::State;
  BlockDist dist{points.size(), v};
  HullOutcome outcome;
  outcome.exec = exec.run(
      prog, v,
      std::function<State(std::uint32_t)>([&](std::uint32_t pid) {
        State s;
        const auto first = dist.first(pid);
        for (std::uint64_t i = 0; i < dist.count(pid); ++i) {
          s.pts.push_back(
              HullPoint{points[first + i].x, points[first + i].y, first + i});
        }
        return s;
      }),
      std::function<void(std::uint32_t, State&)>(
          [&](std::uint32_t pid, State& s) {
            if (pid == 0) {
              auto hull = monotone_chain(s.pts);
              for (const auto& h : hull) {
                outcome.hull.push_back({h.x, h.y});
                outcome.hull_tags.push_back(h.tag);
              }
            }
          }));
  return outcome;
}

}  // namespace embsp::cgm
