// CGM closest pair (Table 1, Group B — the "2D-nearest neighbors" family).
//
//   1. global sort by x (4 supersteps);
//   2. each processor finds its local closest pair and announces its slab
//      x-extent and local distance to everyone (1 superstep, O(v) words);
//   3. with the global candidate distance d0 known, every point within d0
//      of a slab boundary is sent to the processors whose slab intersects
//      (p.x, p.x + d0] (1 superstep);
//   4. receivers scan cross pairs with the classic y-ordered window, and a
//      final min-reduction picks the answer (2 supersteps).
// lambda = O(1), communication O(n/v + strip) per processor.
#pragma once

#include <cmath>
#include <limits>
#include <vector>

#include "cgm/sort.hpp"
#include "util/workloads.hpp"

namespace embsp::cgm {

struct CpPoint {
  double x, y;
  std::uint64_t tag;
};

struct CpPointLess {
  bool operator()(const CpPoint& a, const CpPoint& b) const {
    if (a.x != b.x) return a.x < b.x;
    if (a.y != b.y) return a.y < b.y;
    return a.tag < b.tag;
  }
};

struct CpBest {
  double dist2 = std::numeric_limits<double>::infinity();
  std::uint64_t tag_a = 0;
  std::uint64_t tag_b = 0;
};

/// Best pair within one y-sorted point set (sweep with window).  Exposed
/// for unit tests.
CpBest closest_pair_sweep(std::vector<CpPoint> pts);

struct ClosestPairProgram {
  using Sorter = SortEngine<CpPoint, CpPointLess>;

  struct SlabInfo {
    double min_x, max_x;
    CpBest best;
    std::uint8_t empty;
    std::uint8_t pad[7];
  };

  struct State {
    std::vector<CpPoint> pts;
    CpBest best;
    void serialize(util::Writer& w) const {
      w.write_vector(pts);
      w.write(best);
    }
    void deserialize(util::Reader& r) {
      pts = r.read_vector<CpPoint>();
      best = r.read<CpBest>();
    }
  };

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const {
    const std::uint32_t v = env.nprocs;
    if (step < Sorter::kSteps) {
      Sorter::step(step, env, s.pts, in, out, CpPointLess{});
      return true;
    }
    switch (step - Sorter::kSteps) {
      case 0: {  // local pair + slab announcement to everyone
        s.best = closest_pair_sweep(s.pts);
        env.charge(s.pts.size() * 8 + 1);
        SlabInfo info{};
        info.empty = s.pts.empty() ? 1 : 0;
        if (!s.pts.empty()) {
          info.min_x = s.pts.front().x;
          info.max_x = s.pts.back().x;
        }
        info.best = s.best;
        for (std::uint32_t q = 0; q < v; ++q) out.send_value(q, info);
        return true;
      }
      case 1: {  // strip exchange
        std::vector<SlabInfo> slabs;
        double d2 = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < in.count(); ++i) {
          slabs.push_back(in.value<SlabInfo>(i));  // inbox sorted by source
          if (slabs.back().best.dist2 < d2) {
            d2 = slabs.back().best.dist2;
            if (d2 < s.best.dist2) s.best = slabs.back().best;
          }
        }
        if (!std::isfinite(d2)) {
          // Fewer than two points per slab everywhere: fall back to sending
          // everything to the next nonempty slab's owner (tiny inputs).
          d2 = std::numeric_limits<double>::max();
        }
        const double d = std::sqrt(d2);
        std::vector<std::vector<CpPoint>> strip(v);
        for (const auto& p : s.pts) {
          for (std::uint32_t q = env.pid + 1; q < v; ++q) {
            if (slabs[q].empty) continue;
            if (slabs[q].min_x <= p.x + d) {
              strip[q].push_back(p);
            } else {
              break;  // slabs are x-ordered; no further slab qualifies
            }
          }
        }
        for (std::uint32_t q = env.pid + 1; q < v; ++q) {
          if (!strip[q].empty()) out.send_vector(q, strip[q]);
        }
        env.charge(s.pts.size() + 1);
        return true;
      }
      case 2: {  // cross-slab pairs, then reduce at processor 0
        std::vector<CpPoint> candidates;
        for (std::size_t i = 0; i < in.count(); ++i) {
          auto part = in.vector<CpPoint>(i);
          candidates.insert(candidates.end(), part.begin(), part.end());
        }
        if (!candidates.empty() && !s.pts.empty()) {
          // Cross pairs only matter within the best-so-far window; the
          // sweep over the union is a correct superset.
          std::vector<CpPoint> all = s.pts;
          all.insert(all.end(), candidates.begin(), candidates.end());
          const CpBest cross = closest_pair_sweep(std::move(all));
          if (cross.dist2 < s.best.dist2) s.best = cross;
        }
        env.charge((candidates.size() + s.pts.size()) * 8 + 1);
        out.send_value(0, s.best);
        return true;
      }
      case 3: {  // processor 0 combines and broadcasts
        if (env.pid == 0) {
          CpBest best;
          for (std::size_t i = 0; i < in.count(); ++i) {
            const auto b = in.value<CpBest>(i);
            if (b.dist2 < best.dist2) best = b;
          }
          for (std::uint32_t q = 0; q < v; ++q) out.send_value(q, best);
        }
        return true;
      }
      default:
        s.best = in.value<CpBest>(0);
        return false;
    }
  }
};

struct ClosestPairOutcome {
  CpBest best;
  ExecResult exec;
};

template <class Exec>
ClosestPairOutcome cgm_closest_pair(Exec& exec,
                                    std::span<const util::Point2D> points,
                                    std::uint32_t v) {
  ClosestPairProgram prog;
  using State = ClosestPairProgram::State;
  BlockDist dist{points.size(), v};
  ClosestPairOutcome outcome;
  outcome.exec = exec.run(
      prog, v,
      std::function<State(std::uint32_t)>([&](std::uint32_t pid) {
        State s;
        const auto first = dist.first(pid);
        for (std::uint64_t i = 0; i < dist.count(pid); ++i) {
          s.pts.push_back(
              CpPoint{points[first + i].x, points[first + i].y, first + i});
        }
        return s;
      }),
      std::function<void(std::uint32_t, State&)>(
          [&](std::uint32_t pid, State& s) {
            if (pid == 0) outcome.best = s.best;
          }));
  return outcome;
}

}  // namespace embsp::cgm
