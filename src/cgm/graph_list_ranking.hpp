// CGM list ranking (Table 1, Group C) by randomized independent-set
// contraction — the Cáceres et al. [11] recipe the paper cites:
//
//   contraction round (5 supersteps): every active node u whose coin is
//   heads and whose successor s has tails splices s out of the list
//   (succ(u) <- succ(s), weights accumulate); ~1/4 of the nodes disappear
//   per round, so O(log v) rounds reach <= max(2n/v, 64) survivors;
//
//   gather (3 supersteps): survivors are collected at processor 0, ranked
//   sequentially, and the ranks scattered back;
//
//   expansion (3 supersteps per round, reverse order): a node spliced in
//   round r computes rank(u) = w(u) + rank(frozen successor); the frozen
//   successor's rank is final by then because it survived round r.
//
// Ranks are weighted suffix sums along the list: rank(u) = w(u) if u is a
// tail, else w(u) + rank(succ(u)).  Two independent weight channels are
// ranked simultaneously (channel 2 in two's-complement) — the Euler tour
// module uses them for tour positions and depths in a single pass.
#pragma once

#include <vector>

#include "bsp/program.hpp"
#include "cgm/runner.hpp"

namespace embsp::cgm {

struct ListRankingProgram {
  std::uint64_t n = 0;
  std::uint64_t seed = 0x715EEDULL;
  std::uint64_t gather_threshold = 0;  ///< 0 = max(2*ceil(n/v), 64)

  static std::uint8_t coin(std::uint64_t node, std::uint32_t round,
                           std::uint64_t seed) {
    std::uint64_t z = node * 0x9e3779b97f4a7c15ULL + round + seed;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::uint8_t>((z ^ (z >> 31)) & 1);
  }

  enum Phase : std::uint8_t { kContract = 0, kGather = 1, kExpand = 2,
                              kDone = 3 };
  enum Status : std::uint8_t { kActive = 0, kSpliced = 1, kFinal = 2 };

  struct Query {
    std::uint64_t s;
    std::uint64_t u;
  };
  struct Reply {
    std::uint64_t u;
    std::uint64_t s_succ;
    std::uint64_t s_w1;
    std::uint64_t s_w2;
    std::uint8_t s_is_tail;
    std::uint8_t pad[7];
  };
  struct GatherNode {
    std::uint64_t id;
    std::uint64_t succ;
    std::uint64_t w1;
    std::uint64_t w2;
  };
  struct RankMsg {
    std::uint64_t id;
    std::uint64_t r1;
    std::uint64_t r2;
  };

  struct State {
    std::vector<std::uint64_t> succ, w1, w2, rank1, rank2;
    std::vector<std::uint8_t> status;
    std::vector<std::uint32_t> splice_round;
    std::uint8_t phase = kContract;
    std::uint8_t sub = 0;
    std::uint32_t round = 0;
    std::uint32_t total_rounds = 0;
    std::uint32_t expand_round = 0;

    void serialize(util::Writer& w) const {
      w.write_vector(succ);
      w.write_vector(w1);
      w.write_vector(w2);
      w.write_vector(rank1);
      w.write_vector(rank2);
      w.write_vector(status);
      w.write_vector(splice_round);
      w.write(phase);
      w.write(sub);
      w.write(round);
      w.write(total_rounds);
      w.write(expand_round);
    }
    void deserialize(util::Reader& r) {
      succ = r.read_vector<std::uint64_t>();
      w1 = r.read_vector<std::uint64_t>();
      w2 = r.read_vector<std::uint64_t>();
      rank1 = r.read_vector<std::uint64_t>();
      rank2 = r.read_vector<std::uint64_t>();
      status = r.read_vector<std::uint8_t>();
      splice_round = r.read_vector<std::uint32_t>();
      phase = r.read<std::uint8_t>();
      sub = r.read<std::uint8_t>();
      round = r.read<std::uint32_t>();
      total_rounds = r.read<std::uint32_t>();
      expand_round = r.read<std::uint32_t>();
    }
  };

  bool superstep(std::size_t, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const;

  // Implementation helpers (header-defined below to keep the program
  // self-contained for all executors).
 private:
  bool contract_step(const bsp::ProcEnv& env, State& s, const bsp::Inbox& in,
                     bsp::Outbox& out) const;
  bool gather_step(const bsp::ProcEnv& env, State& s, const bsp::Inbox& in,
                   bsp::Outbox& out) const;
  bool expand_step(const bsp::ProcEnv& env, State& s, const bsp::Inbox& in,
                   bsp::Outbox& out) const;
};

struct ListRankingOutcome {
  std::vector<std::uint64_t> rank1;
  std::vector<std::uint64_t> rank2;
  ExecResult exec;
};

/// Weighted list ranking: rank(u) = suffix sum of weights from u to the
/// tail of its list (inclusive).  Channel 2 may hold two's-complement
/// signed weights.
template <class Exec>
ListRankingOutcome cgm_list_ranking_weighted(
    Exec& exec, std::span<const std::uint64_t> succ,
    std::span<const std::uint64_t> w1, std::span<const std::uint64_t> w2,
    std::uint32_t v, std::uint64_t seed = 0x715EEDULL) {
  ListRankingProgram prog;
  prog.n = succ.size();
  prog.seed = seed;
  using State = ListRankingProgram::State;
  BlockDist dist{succ.size(), v};
  ListRankingOutcome outcome;
  outcome.rank1.assign(succ.size(), 0);
  outcome.rank2.assign(succ.size(), 0);
  outcome.exec = exec.run(
      prog, v,
      std::function<State(std::uint32_t)>([&](std::uint32_t pid) {
        State s;
        const auto first = dist.first(pid);
        const auto count = dist.count(pid);
        s.succ.assign(succ.begin() + first, succ.begin() + first + count);
        s.w1.assign(w1.begin() + first, w1.begin() + first + count);
        s.w2.assign(w2.begin() + first, w2.begin() + first + count);
        s.rank1.assign(count, 0);
        s.rank2.assign(count, 0);
        s.status.assign(count, ListRankingProgram::kActive);
        s.splice_round.assign(count, UINT32_MAX);
        return s;
      }),
      std::function<void(std::uint32_t, State&)>(
          [&](std::uint32_t pid, State& s) {
            const auto first = dist.first(pid);
            for (std::size_t i = 0; i < s.rank1.size(); ++i) {
              outcome.rank1[first + i] = s.rank1[i];
              outcome.rank2[first + i] = s.rank2[i];
            }
          }));
  return outcome;
}

/// Unweighted convenience: rank(u) = number of hops from u to the tail —
/// identical semantics to baseline::em_list_ranking.
template <class Exec>
ListRankingOutcome cgm_list_ranking(Exec& exec,
                                    std::span<const std::uint64_t> succ,
                                    std::uint32_t v,
                                    std::uint64_t seed = 0x715EEDULL) {
  std::vector<std::uint64_t> w1(succ.size()), w2(succ.size(), 0);
  for (std::size_t i = 0; i < succ.size(); ++i) {
    w1[i] = succ[i] == i ? 0 : 1;
  }
  return cgm_list_ranking_weighted(exec, succ, w1, w2, v, seed);
}

}  // namespace embsp::cgm
