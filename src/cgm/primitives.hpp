// Small communication primitives shared by the CGM algorithm programs.
//
// Each is an *engine*: a stateless step function the caller wires into its
// own superstep numbering (the engine's step t consumes the messages its
// step t-1 sent).  All follow the gather-at-0 / broadcast pattern that CGM
// algorithms use for O(1)-round reductions (legal because v values always
// fit one processor's memory under the CGM assumption n/v >= v).
#pragma once

#include <cstdint>
#include <vector>

#include "bsp/program.hpp"

namespace embsp::cgm {

/// All-reduce of one trivially copyable value with a caller-supplied
/// combine function.  Two steps: gather at processor 0, broadcast.
template <typename T>
struct AllReduceEngine {
  static constexpr std::size_t kSteps = 3;

  /// step 0: send local value to 0.
  /// step 1: proc 0 combines and broadcasts.
  /// step 2: everyone reads the result from the inbox into `value`.
  template <typename Combine>
  static void step(std::size_t local_step, const bsp::ProcEnv& env, T& value,
                   const bsp::Inbox& in, bsp::Outbox& out, Combine combine) {
    switch (local_step) {
      case 0:
        out.send_value(0, value);
        break;
      case 1:
        if (env.pid == 0) {
          T acc = in.value<T>(0);
          for (std::size_t i = 1; i < in.count(); ++i) {
            acc = combine(acc, in.value<T>(i));
          }
          for (std::uint32_t q = 0; q < env.nprocs; ++q) {
            out.send_value(q, acc);
          }
        }
        break;
      case 2:
        value = in.value<T>(0);
        break;
      default:
        break;
    }
  }
};

/// Exclusive prefix sum of one uint64 per processor (e.g. local record
/// counts -> global slab offsets).  Three steps like AllReduce.
struct PrefixSumEngine {
  static constexpr std::size_t kSteps = 3;

  struct OffsetTotal {
    std::uint64_t offset;
    std::uint64_t total;
  };

  /// After step 2, `offset` holds the sum over lower-numbered processors
  /// and `total` the global sum.
  static void step(std::size_t local_step, const bsp::ProcEnv& env,
                   std::uint64_t local, std::uint64_t& offset,
                   std::uint64_t& total, const bsp::Inbox& in,
                   bsp::Outbox& out) {
    switch (local_step) {
      case 0:
        out.send_value(0, local);
        break;
      case 1:
        if (env.pid == 0) {
          // Inbox is sorted by source, so in.value<...>(q) is processor q's
          // count.
          std::uint64_t run = 0;
          std::uint64_t sum = 0;
          for (std::size_t q = 0; q < in.count(); ++q) {
            sum += in.value<std::uint64_t>(q);
          }
          for (std::size_t q = 0; q < in.count(); ++q) {
            const std::uint64_t c = in.value<std::uint64_t>(q);
            out.send_value(static_cast<std::uint32_t>(q),
                           OffsetTotal{run, sum});
            run += c;
          }
        }
        break;
      case 2: {
        const auto ot = in.value<OffsetTotal>(0);
        offset = ot.offset;
        total = ot.total;
        break;
      }
      default:
        break;
    }
  }
};

/// Fenwick tree over [0, size) with uint64 sums — used by the dominance
/// counting sweeps.
class Fenwick {
 public:
  explicit Fenwick(std::size_t size) : tree_(size + 1, 0) {}

  void add(std::size_t i, std::uint64_t w) {
    for (++i; i < tree_.size(); i += i & (~i + 1)) tree_[i] += w;
  }

  /// Sum of weights at indices < i.
  [[nodiscard]] std::uint64_t prefix(std::size_t i) const {
    std::uint64_t s = 0;
    for (; i > 0; i -= i & (~i + 1)) s += tree_[i];
    return s;
  }

 private:
  std::vector<std::uint64_t> tree_;
};

}  // namespace embsp::cgm
