#include "cgm/geometry_closest_pair.hpp"

#include <algorithm>

namespace embsp::cgm {

CpBest closest_pair_sweep(std::vector<CpPoint> pts) {
  CpBest best;
  if (pts.size() < 2) return best;
  std::sort(pts.begin(), pts.end(), [](const CpPoint& a, const CpPoint& b) {
    if (a.y != b.y) return a.y < b.y;
    return a.x < b.x;
  });
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      const double dy = pts[j].y - pts[i].y;
      if (dy * dy >= best.dist2) break;  // y-window prune
      if (pts[i].tag == pts[j].tag) continue;  // same point seen twice
      const double dx = pts[j].x - pts[i].x;
      const double d2 = dx * dx + dy * dy;
      if (d2 < best.dist2) {
        best.dist2 = d2;
        best.tag_a = std::min(pts[i].tag, pts[j].tag);
        best.tag_b = std::max(pts[i].tag, pts[j].tag);
      }
    }
  }
  return best;
}

}  // namespace embsp::cgm
