// CGM biconnected components (Table 1, Group C: "ear and open ear
// decomposition, biconnected components" row) via the Tarjan–Vishkin
// reduction, composed entirely from this library's CGM phases:
//
//   1. spanning tree            — cgm_connected_components
//   2. Euler tour of the tree   — cgm_euler_tour (first/last positions
//                                  serve as preorder/subtree intervals)
//   3. low(v) / high(v)         — two batched distributed range-minimum
//                                  passes over the tour (cgm_batched_
//                                  range_min with crafted key arrays)
//   4. auxiliary graph          — one node per tree edge; Tarjan–Vishkin
//                                  rules connect tree edges that share a
//                                  biconnected component:
//        (A) nontree edge (u,v), u and v unrelated in the tree: join the
//            parent edges of u and v;
//        (B) tree edge (v,w), w a non-root child: join (p(v),v) and (v,w)
//            iff low(w) < first(v) or high(w) > last(v) — some nontree
//            edge escapes subtree(v) from within subtree(w).
//   5. connected components of the auxiliary graph label the blocks;
//      every edge of G inherits the label of its descendant endpoint's
//      parent tree edge.
//
// The driver performs O(n + m) sequential glue (rooting the tree, key
// preparation, rule application) between the CGM phases, matching the
// driver pattern of the other Table 1 rows.
#pragma once

#include <vector>

#include "cgm/graph_components.hpp"
#include "cgm/graph_euler_tour.hpp"
#include "cgm/graph_lca.hpp"

namespace embsp::cgm {

struct BiconnectivityOutcome {
  /// Per input edge: biconnected component label (normalized to the
  /// smallest edge index in the block).
  std::vector<std::uint64_t> edge_block;
  std::size_t num_blocks = 0;
  ExecResult cc_exec;    ///< spanning tree phase
  ExecResult aux_exec;   ///< auxiliary graph connectivity phase
};

/// Biconnected components of a *connected* graph (throws otherwise).
template <class Exec>
BiconnectivityOutcome cgm_biconnected_components(
    Exec& exec, std::uint64_t n, std::span<const util::Edge> edges,
    std::uint32_t v);

/// Sequential reference (Hopcroft–Tarjan DFS) for tests.
std::vector<std::uint64_t> biconnected_bruteforce(
    std::uint64_t n, std::span<const util::Edge> edges);

// ---------------------------------------------------------------------------
// implementation
// ---------------------------------------------------------------------------

template <class Exec>
BiconnectivityOutcome cgm_biconnected_components(
    Exec& exec, std::uint64_t n, std::span<const util::Edge> edges,
    std::uint32_t v) {
  BiconnectivityOutcome outcome;
  outcome.edge_block.assign(edges.size(), UINT64_MAX);
  if (n == 0 || edges.empty()) return outcome;

  // --- 1. spanning tree -----------------------------------------------------
  auto cc = cgm_connected_components(exec, n, edges, v);
  outcome.cc_exec = std::move(cc.exec);
  {
    const std::uint64_t root_label = cc.component[0];
    for (std::uint64_t x = 0; x < n; ++x) {
      if (cc.component[x] != root_label) {
        throw std::invalid_argument(
            "cgm_biconnected_components: the graph must be connected");
      }
    }
  }

  // Root the tree at 0 (sequential glue over the n-1 tree edges).
  std::vector<std::vector<std::uint64_t>> adj(n);
  std::vector<std::uint8_t> is_tree(edges.size(), 0);
  for (auto id : cc.tree_edges) {
    is_tree[id] = 1;
    adj[edges[id].u].push_back(edges[id].v);
    adj[edges[id].v].push_back(edges[id].u);
  }
  std::vector<std::uint64_t> parent(n, UINT64_MAX);
  {
    std::vector<std::uint64_t> stack{0};
    parent[0] = 0;
    while (!stack.empty()) {
      const auto u = stack.back();
      stack.pop_back();
      for (auto w : adj[u]) {
        if (parent[w] == UINT64_MAX) {
          parent[w] = u;
          stack.push_back(w);
        }
      }
    }
  }

  // --- 2. Euler tour ----------------------------------------------------------
  auto tour = cgm_euler_tour(exec, parent, v);
  const auto& first = tour.first_pos;
  const auto& last = tour.last_pos;

  // --- 3. low / high via distributed RMQ -------------------------------------
  // Per-vertex keys: the extreme first_pos reachable through an incident
  // nontree edge (or the vertex's own position).
  std::vector<std::uint64_t> key_low(n), key_high(n);
  for (std::uint64_t x = 0; x < n; ++x) key_low[x] = key_high[x] = first[x];
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (is_tree[e]) continue;
    const auto u = edges[e].u;
    const auto w = edges[e].v;
    key_low[u] = std::min(key_low[u], first[w]);
    key_low[w] = std::min(key_low[w], first[u]);
    key_high[u] = std::max(key_high[u], first[w]);
    key_high[w] = std::max(key_high[w], first[u]);
  }
  // Tour-position arrays: a vertex's key sits at its entry position (its
  // down arc); all other positions are neutral.
  const std::uint64_t m_arcs = tour.num_arcs;
  const std::uint64_t kNeutral = UINT64_MAX;
  std::vector<TourEntry> low_arr(m_arcs, TourEntry{0, kNeutral});
  std::vector<TourEntry> high_arr(m_arcs, TourEntry{0, kNeutral});
  for (std::uint64_t x = 0; x < n; ++x) {
    if (parent[x] == x) continue;  // the root has no entry arc
    low_arr[first[x]] = TourEntry{key_low[x], key_low[x]};
    // Maximum via key reversal (the RMQ engine minimizes).
    high_arr[first[x]] = TourEntry{key_high[x], kNeutral - key_high[x]};
  }
  std::vector<LcaQuery> queries;
  std::vector<std::uint64_t> query_vertex;
  for (std::uint64_t x = 0; x < n; ++x) {
    if (parent[x] == x) continue;
    queries.push_back(LcaQuery{first[x], last[x], queries.size()});
    query_vertex.push_back(x);
  }
  std::vector<std::uint64_t> low(n, 0), high(n, 0);
  if (!queries.empty()) {
    auto low_rmq = cgm_batched_range_min(exec, low_arr, queries, v);
    auto high_rmq = cgm_batched_range_min(exec, high_arr, queries, v);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      low[query_vertex[i]] = low_rmq.payload[i];
      high[query_vertex[i]] = high_rmq.payload[i];
    }
  }

  // --- 4. auxiliary graph -----------------------------------------------------
  // Aux vertex for tree edge (p(w), w) = w; the root has no edge, so aux
  // vertices live in [0, n) with the root isolated.
  auto unrelated = [&](std::uint64_t a, std::uint64_t b) {
    const bool a_anc = first[a] <= first[b] && first[b] <= last[a];
    const bool b_anc = first[b] <= first[a] && first[a] <= last[b];
    return !a_anc && !b_anc;
  };
  std::vector<util::Edge> aux;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (is_tree[e]) continue;
    const auto u = edges[e].u;
    const auto w = edges[e].v;
    if (unrelated(u, w)) aux.push_back(util::Edge{u, w});  // rule (A)
  }
  for (std::uint64_t w = 0; w < n; ++w) {
    if (parent[w] == w) continue;
    const auto pv = parent[w];
    if (parent[pv] == pv) continue;  // p(w) is the root: no edge above it
    if (low[w] < first[pv] || high[w] > last[pv]) {
      aux.push_back(util::Edge{w, pv});  // rule (B)
    }
  }

  // --- 5. connected components of the auxiliary graph -------------------------
  auto aux_cc = cgm_connected_components(exec, n, aux, v);
  outcome.aux_exec = std::move(aux_cc.exec);

  // Every edge inherits the label of its descendant endpoint's parent
  // edge; normalize labels to the smallest member edge index.
  std::vector<std::uint64_t> raw(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto u = edges[e].u;
    const auto w = edges[e].v;
    std::uint64_t child;
    if (is_tree[e]) {
      child = parent[w] == u ? w : u;
    } else {
      // The descendant endpoint (for unrelated pairs either side works —
      // rule (A) put them in one aux component).
      child = first[u] > first[w] ? u : w;
    }
    raw[e] = aux_cc.component[child];
  }
  std::unordered_map<std::uint64_t, std::uint64_t> norm;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    auto [it, inserted] = norm.try_emplace(raw[e], e);
    outcome.edge_block[e] = it->second;
  }
  outcome.num_blocks = norm.size();
  return outcome;
}

}  // namespace embsp::cgm
