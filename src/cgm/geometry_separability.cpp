#include "cgm/geometry_separability.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace embsp::cgm {

namespace {

double cross3(const util::Point2D& o, const util::Point2D& a,
              const util::Point2D& b) {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

/// Squared distance from point p to segment [a, b].
double point_segment_dist2(const util::Point2D& p, const util::Point2D& a,
                           const util::Point2D& b) {
  const double vx = b.x - a.x, vy = b.y - a.y;
  const double wx = p.x - a.x, wy = p.y - a.y;
  const double vv = vx * vx + vy * vy;
  double t = vv > 0 ? (wx * vx + wy * vy) / vv : 0.0;
  t = std::clamp(t, 0.0, 1.0);
  const double dx = p.x - (a.x + t * vx);
  const double dy = p.y - (a.y + t * vy);
  return dx * dx + dy * dy;
}

/// Point strictly inside (or on the boundary of) a convex polygon given in
/// CCW order; degenerate polygons (points, segments) handled by distance.
bool point_in_convex(const util::Point2D& p,
                     std::span<const util::Point2D> poly) {
  const std::size_t h = poly.size();
  if (h == 0) return false;
  if (h == 1) return p.x == poly[0].x && p.y == poly[0].y;
  if (h == 2) return point_segment_dist2(p, poly[0], poly[1]) == 0.0;
  for (std::size_t i = 0; i < h; ++i) {
    if (cross3(poly[i], poly[(i + 1) % h], p) < 0) return false;
  }
  return true;
}

bool segments_intersect(const util::Point2D& a, const util::Point2D& b,
                        const util::Point2D& c, const util::Point2D& d) {
  const double d1 = cross3(c, d, a);
  const double d2 = cross3(c, d, b);
  const double d3 = cross3(a, b, c);
  const double d4 = cross3(a, b, d);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  auto on = [](const util::Point2D& p, const util::Point2D& q,
               const util::Point2D& r) {
    return cross3(p, q, r) == 0 && std::min(p.x, q.x) <= r.x &&
           r.x <= std::max(p.x, q.x) && std::min(p.y, q.y) <= r.y &&
           r.y <= std::max(p.y, q.y);
  };
  return on(c, d, a) || on(c, d, b) || on(a, b, c) || on(a, b, d);
}

}  // namespace

bool convex_hulls_disjoint(std::span<const util::Point2D> hull_a,
                           std::span<const util::Point2D> hull_b) {
  if (hull_a.empty() || hull_b.empty()) return true;
  // Containment either way.
  if (point_in_convex(hull_a[0], hull_b)) return false;
  if (point_in_convex(hull_b[0], hull_a)) return false;
  // Any boundary crossing.
  const std::size_t ha = hull_a.size(), hb = hull_b.size();
  for (std::size_t i = 0; i < ha; ++i) {
    const auto& a1 = hull_a[i];
    const auto& a2 = hull_a[(i + 1) % ha];
    for (std::size_t j = 0; j < hb; ++j) {
      const auto& b1 = hull_b[j];
      const auto& b2 = hull_b[(j + 1) % hb];
      if (segments_intersect(a1, a2, b1, b2)) return false;
    }
  }
  return true;
}

std::vector<util::Point2D> minkowski_difference_hull(
    std::span<const util::Point2D> hull_a,
    std::span<const util::Point2D> hull_b) {
  std::vector<HullPoint> diffs;
  diffs.reserve(hull_a.size() * hull_b.size());
  std::uint64_t tag = 0;
  for (const auto& b : hull_b) {
    for (const auto& a : hull_a) {
      diffs.push_back(HullPoint{b.x - a.x, b.y - a.y, tag++});
    }
  }
  std::sort(diffs.begin(), diffs.end(), HullPointLess{});
  auto hull = monotone_chain(diffs);
  std::vector<util::Point2D> out;
  out.reserve(hull.size());
  for (const auto& h : hull) out.push_back({h.x, h.y});
  return out;
}

bool polygon_intersects_ray(std::span<const util::Point2D> poly, double dx,
                            double dy) {
  if (poly.empty()) return false;
  const util::Point2D origin{0, 0};
  if (point_in_convex(origin, poly)) return true;
  // The ray hits the polygon iff it crosses its boundary.  Use a far point
  // along d well beyond the polygon's extent.
  double scale = 1.0;
  for (const auto& p : poly) {
    scale = std::max({scale, std::abs(p.x), std::abs(p.y)});
  }
  const double norm = std::hypot(dx, dy);
  if (norm == 0) return false;
  const util::Point2D far{dx / norm * 4 * scale, dy / norm * 4 * scale};
  const std::size_t h = poly.size();
  if (h == 1) {
    return point_segment_dist2(poly[0], origin, far) == 0.0;
  }
  for (std::size_t i = 0; i < h; ++i) {
    if (segments_intersect(origin, far, poly[i], poly[(i + 1) % h])) {
      return true;
    }
  }
  return false;
}

bool direction_separable(std::span<const util::Point2D> hull_a,
                         std::span<const util::Point2D> hull_b, double dx,
                         double dy) {
  if (hull_a.empty() || hull_b.empty()) return true;
  if (!convex_hulls_disjoint(hull_a, hull_b)) return false;
  // A translated by t*d intersects B iff some b - a equals t*d, i.e. the
  // Minkowski difference hull(B) (-) hull(A) meets the ray t*d (t >= 0).
  const auto diff = minkowski_difference_hull(hull_a, hull_b);
  return !polygon_intersects_ray(diff, dx, dy);
}

}  // namespace embsp::cgm
