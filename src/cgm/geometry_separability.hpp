// CGM uni- and multi-directional separability (Table 1, Group B).
//
// Two solid convex objects (given as point sets A and B; the objects are
// their convex hulls) are
//   * linearly separable   — some line keeps hull(A) and hull(B) on
//     opposite sides (equivalently the hulls are disjoint);
//   * d-separable          — A can be translated to infinity along the
//     direction d without ever intersecting B (uni-directional
//     separability; assumes the hulls start disjoint);
//   * multi-directionally separable — d-separable for at least one of a
//     batch of query directions.
//
// Following the CGM geometry recipe ([19]): the heavy, input-sized work is
// two O(1)-round CGM hull computations; the decisions then run on the
// output-sized hulls (like the hull/envelope gathers).  d-separability
// reduces to "does the Minkowski difference hull(B) (-) hull(A) intersect
// the ray t*d, t >= 0", which is an O(hA * hB) construction plus an O(h)
// ray test.
#pragma once

#include <vector>

#include "cgm/geometry_hull.hpp"

namespace embsp::cgm {

/// True iff the (solid) convex hulls of the two vertex lists are disjoint.
/// Handles degenerate hulls (points, segments).
bool convex_hulls_disjoint(std::span<const util::Point2D> hull_a,
                           std::span<const util::Point2D> hull_b);

/// Minkowski difference hull: { b - a : a in hull_a, b in hull_b }.
std::vector<util::Point2D> minkowski_difference_hull(
    std::span<const util::Point2D> hull_a,
    std::span<const util::Point2D> hull_b);

/// True iff the convex polygon `poly` intersects the ray { t*d : t >= 0 }.
bool polygon_intersects_ray(std::span<const util::Point2D> poly, double dx,
                            double dy);

/// True iff A (as a solid hull) can translate to infinity along (dx, dy)
/// without intersecting B.  Requires the hulls to be initially disjoint
/// (returns false otherwise).
bool direction_separable(std::span<const util::Point2D> hull_a,
                         std::span<const util::Point2D> hull_b, double dx,
                         double dy);

struct SeparabilityOutcome {
  std::vector<util::Point2D> hull_a;
  std::vector<util::Point2D> hull_b;
  bool linearly_separable = false;
  std::vector<std::uint8_t> dir_separable;  ///< per query direction
  bool multi_separable = false;             ///< any query direction works
  ExecResult exec_a;
  ExecResult exec_b;
};

/// Full pipeline: two CGM hulls + output-sized separability decisions.
template <class Exec>
SeparabilityOutcome cgm_separability(
    Exec& exec, std::span<const util::Point2D> a,
    std::span<const util::Point2D> b,
    std::span<const util::Point2D> query_dirs, std::uint32_t v) {
  SeparabilityOutcome out;
  auto ha = cgm_convex_hull(exec, a, v);
  auto hb = cgm_convex_hull(exec, b, v);
  out.hull_a = std::move(ha.hull);
  out.hull_b = std::move(hb.hull);
  out.exec_a = std::move(ha.exec);
  out.exec_b = std::move(hb.exec);
  out.linearly_separable = convex_hulls_disjoint(out.hull_a, out.hull_b);
  out.dir_separable.reserve(query_dirs.size());
  for (const auto& d : query_dirs) {
    const bool ok = direction_separable(out.hull_a, out.hull_b, d.x, d.y);
    out.dir_separable.push_back(ok ? 1 : 0);
    out.multi_separable = out.multi_separable || ok;
  }
  return out;
}

}  // namespace embsp::cgm
