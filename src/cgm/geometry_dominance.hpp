// CGM 2D weighted dominance counting (Table 1, Group B), O(1) rounds.
//
// For every point q, compute the total weight of points p with p.x < q.x
// and p.y < q.y (strict dominance; general position assumed).
//
// Distribution-sweeping decomposition.  After a global sort by x (x-slab =
// processor id, x-rank = global position) and a global sort by y (y-slab =
// processor id), the dominating set of q splits into three disjoint parts:
//   LOCAL — p in q's y-slab: counted by a local y-sweep with a Fenwick
//           tree over x-ranks;
//   B1    — p in an earlier y-slab and a strictly smaller x-slab: counted
//           from the v x v histogram "weight of (y-slab, x-slab) cells",
//           prefix-summed at processor 0;
//   B2    — p in an earlier y-slab and the *same* x-slab: points are routed
//           to their x-slab owner, which sweeps them in x-rank order with a
//           Fenwick tree over y-slab ids.
// Partial results (LOCAL + B1 from the y-slab owner, B2 from the x-slab
// owner) meet at the point's home processor.  lambda = 15 supersteps, all
// h-relations O(n/v + v).
#pragma once

#include <vector>

#include "cgm/primitives.hpp"
#include "cgm/sort.hpp"
#include "util/workloads.hpp"

namespace embsp::cgm {

struct DomPoint {
  double x, y;
  std::uint64_t w;      ///< weight
  std::uint64_t tag;    ///< original index
  std::uint64_t xrank;  ///< global position in x order
  std::uint32_t xslab;  ///< processor id of the x-slab
  std::uint32_t yslab;  ///< processor id of the y-slab
  std::uint64_t count;  ///< running partial result
};

struct DomByX {
  bool operator()(const DomPoint& a, const DomPoint& b) const {
    if (a.x != b.x) return a.x < b.x;
    return a.tag < b.tag;
  }
};

struct DomByY {
  bool operator()(const DomPoint& a, const DomPoint& b) const {
    if (a.y != b.y) return a.y < b.y;
    return a.tag < b.tag;
  }
};

struct DominanceProgram {
  std::uint64_t n = 0;
  using SortX = SortEngine<DomPoint, DomByX>;
  using SortY = SortEngine<DomPoint, DomByY>;

  struct TagCount {
    std::uint64_t tag;
    std::uint64_t count;
  };

  struct State {
    std::vector<DomPoint> pts;
    std::vector<std::uint64_t> out;  ///< results for owned tags
    std::uint64_t xoff = 0;          ///< x-rank offset of this slab
    void serialize(util::Writer& w) const {
      w.write_vector(pts);
      w.write_vector(out);
      w.write(xoff);
    }
    void deserialize(util::Reader& r) {
      pts = r.read_vector<DomPoint>();
      out = r.read_vector<std::uint64_t>();
      xoff = r.read<std::uint64_t>();
    }
  };

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const {
    const std::uint32_t v = env.nprocs;
    BlockDist home{n, v};

    // Steps 0..3: sort by x.
    if (step < 4) {
      SortX::step(step, env, s.pts, in, out, DomByX{});
      return true;
    }
    // Steps 4..6: exclusive prefix sum of slab sizes -> x-rank offsets.
    if (step <= 6) {
      std::uint64_t total = 0;
      PrefixSumEngine::step(step - 4, env, s.pts.size(), s.xoff, total, in,
                            out);
      if (step == 6) {
        for (std::uint64_t i = 0; i < s.pts.size(); ++i) {
          s.pts[i].xrank = s.xoff + i;
          s.pts[i].xslab = env.pid;
        }
        // Begin the y-sort in the same superstep (its samples are the only
        // messages sent here, so the next inbox is unambiguous).
        SortY::step(0, env, s.pts, in, out, DomByY{});
      }
      return true;
    }
    // Steps 7..9: remaining y-sort steps.
    if (step <= 9) {
      SortY::step(step - 6, env, s.pts, in, out, DomByY{});
      return true;
    }
    switch (step) {
      case 10: {
        // LOCAL: y-sweep with a Fenwick tree over (locally compressed)
        // x-ranks; also build this y-slab's histogram over x-slabs.
        for (auto& p : s.pts) p.yslab = env.pid;
        std::vector<std::uint64_t> ranks;
        ranks.reserve(s.pts.size());
        for (const auto& p : s.pts) ranks.push_back(p.xrank);
        std::sort(ranks.begin(), ranks.end());
        Fenwick bit(ranks.size());
        for (auto& p : s.pts) {  // pts are y-sorted
          const auto idx = static_cast<std::size_t>(
              std::lower_bound(ranks.begin(), ranks.end(), p.xrank) -
              ranks.begin());
          p.count = bit.prefix(idx);
          bit.add(idx, p.w);
        }
        env.charge(s.pts.size() * 8 + 1);
        std::vector<std::uint64_t> hist(v, 0);
        for (const auto& p : s.pts) hist[p.xslab] += p.w;
        out.send_vector(0, hist);
        return true;
      }
      case 11: {
        // Processor 0: exclusive prefix over y-slabs of the histograms.
        if (env.pid == 0) {
          std::vector<std::uint64_t> run(v, 0);
          for (std::size_t t = 0; t < in.count(); ++t) {
            out.send_vector(static_cast<std::uint32_t>(t), run);
            auto h = in.vector<std::uint64_t>(t);  // inbox sorted by source
            for (std::uint32_t sx = 0; sx < v; ++sx) run[sx] += h[sx];
          }
        }
        return true;
      }
      case 12: {
        // B1 from the prefix histogram; route points to x-slab owners.
        auto pt = in.vector<std::uint64_t>(0);  // P_t[s]
        std::vector<std::uint64_t> pfx(v + 1, 0);
        for (std::uint32_t sx = 0; sx < v; ++sx) pfx[sx + 1] = pfx[sx] + pt[sx];
        std::vector<std::vector<DomPoint>> route(v);
        for (auto& p : s.pts) {
          p.count += pfx[p.xslab];  // B1: earlier y-slab, smaller x-slab
          route[p.xslab].push_back(p);
        }
        env.charge(s.pts.size() + 1);
        for (std::uint32_t q = 0; q < v; ++q) {
          if (!route[q].empty()) out.send_vector(q, route[q]);
        }
        return true;
      }
      case 13: {
        // B2 at the x-slab owner: sweep in x-rank order, Fenwick over
        // y-slab ids.  Send B2 and (LOCAL + B1) partials to the homes.
        std::vector<DomPoint> mine;
        for (std::size_t i = 0; i < in.count(); ++i) {
          auto part = in.vector<DomPoint>(i);
          mine.insert(mine.end(), part.begin(), part.end());
        }
        std::sort(mine.begin(), mine.end(),
                  [](const DomPoint& a, const DomPoint& b) {
                    return a.xrank < b.xrank;
                  });
        Fenwick bit(v);
        std::vector<std::vector<TagCount>> results(v);
        for (const auto& p : mine) {
          const std::uint64_t b2 = bit.prefix(p.yslab);
          bit.add(p.yslab, p.w);
          const auto owner = home.owner(p.tag);
          // LOCAL + B1 travelled with the point; add B2 here so each tag
          // gets exactly one result message.
          results[owner].push_back(TagCount{p.tag, p.count + b2});
        }
        env.charge(mine.size() * 8 + 1);
        for (std::uint32_t q = 0; q < v; ++q) {
          if (!results[q].empty()) out.send_vector(q, results[q]);
        }
        s.pts.clear();
        return true;
      }
      default: {
        // Step 14: homes collect results for their tags.
        s.out.assign(home.count(env.pid), 0);
        for (std::size_t i = 0; i < in.count(); ++i) {
          for (const auto& tc : in.vector<TagCount>(i)) {
            s.out[tc.tag - home.first(env.pid)] = tc.count;
          }
        }
        env.charge(s.out.size() + 1);
        return false;
      }
    }
  }
};

struct DominanceOutcome {
  std::vector<std::uint64_t> counts;  ///< by original index
  ExecResult exec;
};

/// Weighted dominance counts for `points` with weights `weights`.
template <class Exec>
DominanceOutcome cgm_dominance_counts(Exec& exec,
                                      std::span<const util::Point2D> points,
                                      std::span<const std::uint64_t> weights,
                                      std::uint32_t v) {
  DominanceProgram prog{points.size()};
  using State = DominanceProgram::State;
  BlockDist dist{points.size(), v};
  DominanceOutcome outcome;
  outcome.counts.assign(points.size(), 0);
  outcome.exec = exec.run(
      prog, v,
      std::function<State(std::uint32_t)>([&](std::uint32_t pid) {
        State s;
        const auto first = dist.first(pid);
        for (std::uint64_t i = 0; i < dist.count(pid); ++i) {
          DomPoint p{};
          p.x = points[first + i].x;
          p.y = points[first + i].y;
          p.w = weights[first + i];
          p.tag = first + i;
          s.pts.push_back(p);
        }
        return s;
      }),
      std::function<void(std::uint32_t, State&)>(
          [&](std::uint32_t pid, State& s) {
            const auto first = dist.first(pid);
            for (std::uint64_t i = 0; i < s.out.size(); ++i) {
              outcome.counts[first + i] = s.out[i];
            }
          }));
  return outcome;
}

/// Reference O(n^2) implementation for tests.
std::vector<std::uint64_t> dominance_bruteforce(
    std::span<const util::Point2D> points,
    std::span<const std::uint64_t> weights);

}  // namespace embsp::cgm
