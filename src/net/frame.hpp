// Wire framing for the socket transport.
//
// Every transmission is one frame:
//
//   offset  size  field
//        0     4  magic        0x454D4250 ("EMBP")
//        4     1  kind         FrameKind
//        5     3  reserved     zero
//        8     4  src          sender rank
//       12     4  len          payload length in bytes
//       16     8  checksum     util::checksum64 of the payload bytes
//       24   len  payload
//
// All integers are native-endian: both ends of a link are the same build on
// the same machine family (the simulators never compare checksums across
// architectures, see util/checksum.hpp).  The checksum turns a torn or
// corrupted stream into a typed CorruptFrameError instead of a silently
// wrong simulation; the magic catches framing desynchronization early.
//
// Frame kinds:
//   hello — handshake; announces the sender's rank after connect().
//   data  — one posted message (Transport::post → one data frame).
//   end   — phase delimiter; "I have entered exchange() and everything I
//           posted to you this phase precedes this frame".  Receiving END
//           from every peer is the barrier.
//   abort — fatal-error broadcast; payload is the human-readable reason.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>

#include "net/transport.hpp"
#include "util/checksum.hpp"

namespace embsp::net {

enum class FrameKind : std::uint8_t { hello = 0, data = 1, end = 2, abort = 3 };

inline constexpr std::uint32_t kFrameMagic = 0x454D4250;  // "EMBP"
inline constexpr std::size_t kFrameHeaderBytes = 24;
/// Sanity cap on a single frame's payload; anything larger is treated as a
/// desynchronized or corrupted stream (gamma bounds real payloads far
/// below this).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 30;

struct FrameHeader {
  FrameKind kind = FrameKind::data;
  std::uint32_t src = 0;
  std::uint32_t len = 0;
  std::uint64_t checksum = 0;
};

inline void encode_frame_header(const FrameHeader& h,
                                std::span<std::byte> out) {
  std::uint8_t buf[kFrameHeaderBytes] = {};
  std::memcpy(buf, &kFrameMagic, 4);
  buf[4] = static_cast<std::uint8_t>(h.kind);
  std::memcpy(buf + 8, &h.src, 4);
  std::memcpy(buf + 12, &h.len, 4);
  std::memcpy(buf + 16, &h.checksum, 8);
  std::memcpy(out.data(), buf, kFrameHeaderBytes);
}

/// Decodes and validates a header.  Throws CorruptFrameError on a bad
/// magic, unknown kind, or an implausible length.
inline FrameHeader decode_frame_header(std::span<const std::byte> in) {
  std::uint32_t magic = 0;
  std::memcpy(&magic, in.data(), 4);
  if (magic != kFrameMagic) {
    throw CorruptFrameError("net: bad frame magic (stream desynchronized)");
  }
  const auto kind = static_cast<std::uint8_t>(in[4]);
  if (kind > static_cast<std::uint8_t>(FrameKind::abort)) {
    throw CorruptFrameError("net: unknown frame kind " + std::to_string(kind));
  }
  FrameHeader h;
  h.kind = static_cast<FrameKind>(kind);
  std::memcpy(&h.src, in.data() + 8, 4);
  std::memcpy(&h.len, in.data() + 12, 4);
  std::memcpy(&h.checksum, in.data() + 16, 8);
  if (h.len > kMaxFramePayload) {
    throw CorruptFrameError("net: frame length " + std::to_string(h.len) +
                            " exceeds the sanity cap");
  }
  return h;
}

/// Payload checksum over gathered fragments — matches util::checksum64 of
/// the concatenated bytes, which is what the receiver computes.
inline std::uint64_t fragment_checksum(
    std::span<const std::span<const std::byte>> frags) {
  std::size_t total = 0;
  for (const auto& f : frags) total += f.size();
  util::ChecksumStream cs(total);
  for (const auto& f : frags) cs.update(f);
  return cs.finish();
}

}  // namespace embsp::net
