// Inter-processor transport for the distributed EM-BSP* simulation.
//
// Algorithm 3's communication pattern is bulk-synchronous: within one phase
// every real processor posts blocks to peers, then all processors meet at a
// barrier and each receives what was posted to it.  `Transport` captures
// exactly that as a three-call protocol — `post()` queues outgoing
// messages, `progress()` opportunistically drains them (and buffers
// arriving bytes) without ever blocking, and `complete()` (historically
// `exchange()`) is the barrier + delivery — so `DistSimulator` is written
// once against the interface and runs unchanged over the in-process
// loopback (tests, parity against the threaded `ParSimulator`) and the
// Unix-socket/TCP backend (separate worker processes, each with private
// memory and disks: the machine the EM-BSP model actually describes).
// Calling progress() between posts lets a rank push its phase's traffic
// onto the wire while it is still computing or waiting on its disks;
// skipping it is always correct, merely slower — complete() drains
// whatever is left.
//
// Failure semantics: a peer that dies or stalls surfaces as a typed
// `NetError` (folded into the `em::IoError` taxonomy so callers classify it
// like any other I/O fault), never as a hang — every blocking wait carries a
// deadline, and `abort()` broadcasts a best-effort poison frame so peers
// fail fast instead of timing out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "em/io_error.hpp"

namespace embsp::obs {
class Registry;
}  // namespace embsp::obs

namespace embsp::net {

/// Transport-tier failure, classified on the em::IoError taxonomy:
///   transient  — a peer missed a deadline (it may merely be slow),
///   persistent — a peer reported a fatal error or its connection died,
///   corrupt    — a frame failed its checksum or header validation.
class NetError : public em::IoError {
 public:
  NetError(Kind kind, const std::string& what) : em::IoError(kind, what) {}
};

class PeerTimeoutError : public NetError {
 public:
  explicit PeerTimeoutError(const std::string& what)
      : NetError(Kind::transient, what) {}
};

class PeerFailedError : public NetError {
 public:
  explicit PeerFailedError(const std::string& what)
      : NetError(Kind::persistent, what) {}
};

class CorruptFrameError : public NetError {
 public:
  explicit CorruptFrameError(const std::string& what)
      : NetError(Kind::corrupt, what) {}
};

using Blob = std::vector<std::byte>;

class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual std::uint32_t rank() const = 0;
  [[nodiscard]] virtual std::uint32_t size() const = 0;

  /// Queue one message for `dst` (any rank, including self).  The fragments
  /// are gathered at transmission time — the socket backend serializes them
  /// straight into vectored send buffers (writev), so arena-resident
  /// MessageRef spans go to the wire with no intermediate copy.  Callers
  /// must keep the fragment storage alive until the next exchange()
  /// returns.
  virtual void post(std::uint32_t dst,
                    std::span<const std::span<const std::byte>> frags) = 0;

  /// Single-fragment convenience overload.
  void post(std::uint32_t dst, std::span<const std::byte> payload) {
    const std::span<const std::byte> frag[1] = {payload};
    post(dst, frag);
  }

  /// Non-blocking progress: drain queued sends toward the kernel and
  /// buffer (and pre-parse) whatever peers have already delivered, then
  /// return immediately — never waits, and never throws PeerTimeoutError
  /// (the io deadline is anchored at complete(), not here; see below).
  /// Wire or framing failures still surface as PeerFailedError /
  /// CorruptFrameError.  The default is a no-op: backends whose post()
  /// already completes the transmission (loopback) need nothing more.
  virtual void progress() {}

  /// Phase barrier + delivery: blocks until every rank has entered
  /// exchange(), then returns, for each source rank, the messages it
  /// posted to this rank during the phase, in posting order
  /// (result[src][i]).  Throws NetError if a peer aborts, disconnects, or
  /// misses the deadline — the deadline clock starts HERE, when the rank
  /// enters the barrier, never at post(): an arbitrarily long compute
  /// phase between post() and the barrier cannot trip an io-timeout.
  virtual std::vector<std::vector<Blob>> exchange() = 0;

  /// Named barrier of the post()/progress()/complete() protocol; alias of
  /// exchange(), kept separate so call sites can say which role they mean.
  std::vector<std::vector<Blob>> complete() { return exchange(); }

  /// Best-effort fatal-error broadcast: peers blocked in exchange() unwind
  /// with PeerFailedError carrying `reason` instead of timing out.
  virtual void abort(const std::string& reason) noexcept = 0;

  /// Per-link traffic counters and latency histograms, exported under
  /// "net.link.<peer>.*" plus transport-wide "net.*" entries.
  virtual void export_metrics(obs::Registry& reg) const = 0;
};

/// In-process loopback group: p endpoints sharing one mailbox table, with a
/// generation-counted barrier.  Endpoint i is rank i; each must be driven
/// from its own thread.  Used for tests and for `--transport loopback`,
/// where parity with the threaded ParSimulator is checked byte for byte.
std::vector<std::unique_ptr<Transport>> make_loopback_group(
    std::uint32_t p, std::uint64_t timeout_ms = 120'000);

/// Socket transport configuration.  `address` selects the family:
///   "host:port" — TCP; rank r listens on port + r,
///   anything else — a Unix-domain path prefix; rank r binds "<prefix>.r".
struct SocketConfig {
  std::string address;
  std::uint32_t rank = 0;
  std::uint32_t peers = 1;
  /// Budget for the full-mesh connect/accept handshake (covers peers that
  /// are still being launched; connects retry with backoff until it ends).
  std::uint64_t connect_timeout_ms = 30'000;
  /// Deadline for any single exchange() to complete once entered.
  std::uint64_t io_timeout_ms = 120'000;
};

/// Connects the full mesh (ranks connect to all lower ranks, accept all
/// higher ranks) and returns this rank's endpoint.  Blocks until the mesh
/// is up or connect_timeout_ms expires (PeerTimeoutError).
std::unique_ptr<Transport> make_socket_transport(const SocketConfig& cfg);

}  // namespace embsp::net
