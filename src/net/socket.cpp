// Unix-domain / TCP socket transport: one worker process per real
// processor, full-mesh stream connections.
//
// Mesh bring-up: rank r binds its own listener (unix "<prefix>.r", or TCP
// port base+r), connects to every lower rank (retrying with backoff while
// the peer is still launching), then accepts every higher rank.  Each
// accepted/established connection starts with a HELLO frame carrying the
// sender's rank.  The connect-to-lower / accept-from-higher split makes
// bring-up deadlock-free: a listener exists as soon as its process starts,
// independent of that process's own connect progress.
//
// Data plane: post() queues one frame per message as gather iovecs —
// header + the caller's payload fragments, unchanged and uncopied — and
// exchange() pumps all links from one poll() loop, servicing reads and
// writes simultaneously.  That concurrency is load-bearing, not an
// optimization: in an all-to-all phase every rank is sending at once, so a
// send-then-receive schedule deadlocks as soon as h-relations exceed the
// kernel's socket buffers.  A phase ends on this side when every peer's
// END frame has arrived and every queued frame has drained; bytes that
// arrive after a peer's END (the next phase, from a fast sender) stay
// buffered and are parsed at the next exchange().
//
// Every wait carries a deadline; expiry throws PeerTimeoutError naming the
// laggard ranks.  A dead connection is PeerFailedError, a checksum or
// framing violation CorruptFrameError — all NetError, all classified on
// the em::IoError taxonomy.
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <thread>

#include "net/frame.hpp"
#include "net/link_stats.hpp"
#include "net/transport.hpp"

namespace embsp::net {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const std::string& what, int err) {
  throw NetError(em::classify_errno(err),
                 what + ": " + std::strerror(err) + " (errno " +
                     std::to_string(err) + ")");
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("net: fcntl(O_NONBLOCK)", errno);
  }
}

/// "host:port" with a numeric port → TCP; anything else is a unix path
/// prefix.
bool is_tcp_address(const std::string& addr, std::string& host,
                    std::uint16_t& port) {
  const auto colon = addr.rfind(':');
  if (colon == std::string::npos || colon + 1 >= addr.size()) return false;
  const std::string tail = addr.substr(colon + 1);
  if (tail.find_first_not_of("0123456789") != std::string::npos) return false;
  const unsigned long val = std::strtoul(tail.c_str(), nullptr, 10);
  if (val == 0 || val > 65535) return false;
  host = addr.substr(0, colon);
  port = static_cast<std::uint16_t>(val);
  return true;
}

struct Address {
  bool tcp = false;
  std::string host;      // tcp
  std::uint16_t port = 0;  // tcp base port; rank r uses port + r
  std::string prefix;    // unix path prefix; rank r uses "<prefix>.r"

  [[nodiscard]] std::string describe(std::uint32_t rank) const {
    return tcp ? host + ":" + std::to_string(port + rank)
               : prefix + "." + std::to_string(rank);
  }
};

Address parse_address(const std::string& addr) {
  Address a;
  a.tcp = is_tcp_address(addr, a.host, a.port);
  if (!a.tcp) a.prefix = addr;
  return a;
}

int open_tcp_socket(const Address& a, std::uint32_t rank, bool listen_side,
                    sockaddr_in& out) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  if (listen_side) hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string port = std::to_string(a.port + rank);
  const char* node = a.host.empty() ? nullptr : a.host.c_str();
  if (const int rc = ::getaddrinfo(node, port.c_str(), &hints, &res);
      rc != 0 || res == nullptr) {
    throw NetError(em::IoError::Kind::persistent,
                   "net: cannot resolve " + a.describe(rank) + ": " +
                       ::gai_strerror(rc));
  }
  std::memcpy(&out, res->ai_addr, sizeof(sockaddr_in));
  ::freeaddrinfo(res);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("net: socket", errno);
  return fd;
}

class SocketTransport final : public Transport {
 public:
  SocketTransport(const SocketConfig& cfg)
      : addr_(parse_address(cfg.address)),
        rank_(cfg.rank),
        p_(cfg.peers),
        io_timeout_ms_(cfg.io_timeout_ms),
        peers_(cfg.peers),
        links_(cfg.peers) {
    if (rank_ >= p_) {
      throw NetError(em::IoError::Kind::persistent,
                     "net: rank " + std::to_string(rank_) +
                         " out of range for " + std::to_string(p_) +
                         " peers");
    }
    try {
      connect_mesh(cfg.connect_timeout_ms);
    } catch (...) {
      close_all();
      throw;
    }
  }

  ~SocketTransport() override { close_all(); }

  [[nodiscard]] std::uint32_t rank() const override { return rank_; }
  [[nodiscard]] std::uint32_t size() const override { return p_; }

  void post(std::uint32_t dst,
            std::span<const std::span<const std::byte>> frags) override {
    std::size_t total = 0;
    for (const auto& f : frags) total += f.size();
    if (dst == rank_) {
      // Self delivery never touches the wire: materialize the gathered
      // fragments exactly as the receive path would.
      Blob blob(total);
      std::size_t off = 0;
      for (const auto& f : frags) {
        std::memcpy(blob.data() + off, f.data(), f.size());
        off += f.size();
      }
      self_ready_.push_back(std::move(blob));
      return;
    }
    Peer& peer = peers_[dst];
    FrameHeader h;
    h.kind = FrameKind::data;
    h.src = rank_;
    h.len = static_cast<std::uint32_t>(total);
    h.checksum = fragment_checksum(frags);
    queue_frame(peer, h, frags);
    links_[dst].bytes_sent += kFrameHeaderBytes + total;
    links_[dst].frames_sent += 1;
    links_[dst].send_bytes.record(total);
    track_inflight(dst, kFrameHeaderBytes + total);
  }

  void progress() override {
    // One non-blocking pump pass: drain whatever the kernel will take,
    // buffer whatever peers have delivered, return.  poll(0) never sleeps
    // and a zero result is simply "nothing movable right now" — the io
    // deadline belongs to exchange(), not here.  Bytes drained from this
    // path are the overlap the caller bought by interleaving progress()
    // with its compute/disk work.
    progressing_ = true;
    struct Reset {
      bool& flag;
      ~Reset() { flag = false; }
    } reset{progressing_};
    pfds_.clear();
    pfd_rank_.clear();
    for (std::uint32_t q = 0; q < p_; ++q) {
      if (q == rank_) continue;
      Peer& peer = peers_[q];
      if (peer.fd < 0) continue;
      short events = POLLIN;  // early next-phase bytes are parsed and kept
      if (peer.iov_idx < peer.iov.size()) events |= POLLOUT;
      pfds_.push_back({peer.fd, events, 0});
      pfd_rank_.push_back(q);
    }
    if (pfds_.empty()) return;
    const int n = ::poll(pfds_.data(), pfds_.size(), 0);
    if (n < 0) {
      if (errno == EINTR) return;
      throw_errno("net: poll", errno);
    }
    if (n == 0) return;
    for (std::size_t i = 0; i < pfds_.size(); ++i) {
      const std::uint32_t q = pfd_rank_[i];
      if (pfds_[i].revents == 0) continue;
      if (pfds_[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        read_some(q);
        parse_frames(q);
      }
      if (pfds_[i].revents & POLLOUT) write_some(q);
    }
  }

  std::vector<std::vector<Blob>> exchange() override {
    const auto t0 = Clock::now();
    const auto deadline =
        t0 + std::chrono::milliseconds(io_timeout_ms_);
    // Phase delimiters: one END frame per peer, after all queued data.
    for (std::uint32_t q = 0; q < p_; ++q) {
      if (q == rank_) continue;
      FrameHeader h;
      h.kind = FrameKind::end;
      h.src = rank_;
      h.checksum = util::checksum64({});
      queue_frame(peers_[q], h, {});
      links_[q].bytes_sent += kFrameHeaderBytes;
      track_inflight(q, kFrameHeaderBytes);
      // A fast peer may already have delivered next-phase bytes; frames
      // buffered past the previous END are parsed now.
      parse_frames(q);
    }
    pump(deadline);
    std::vector<std::vector<Blob>> out(p_);
    for (std::uint32_t q = 0; q < p_; ++q) {
      if (q == rank_) {
        out[q] = std::move(self_ready_);
        self_ready_.clear();
        continue;
      }
      out[q] = std::move(peers_[q].ready);
      peers_[q].ready.clear();
      peers_[q].end_seen = false;
      peers_[q].iov.clear();
      peers_[q].iov_idx = 0;
      peers_[q].headers.clear();
      links_[q].inflight_bytes = 0;  // everything queued has drained
    }
    ++exchanges_;
    exchange_wait_ns_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count()));
    return out;
  }

  void abort(const std::string& reason) noexcept override {
    try {
      std::array<std::byte, kFrameHeaderBytes> hdr;
      const auto payload = std::as_bytes(
          std::span<const char>(reason.data(), reason.size()));
      FrameHeader h;
      h.kind = FrameKind::abort;
      h.src = rank_;
      h.len = static_cast<std::uint32_t>(payload.size());
      h.checksum = util::checksum64(payload);
      encode_frame_header(h, hdr);
      for (std::uint32_t q = 0; q < p_; ++q) {
        if (q == rank_ || peers_[q].fd < 0) continue;
        // Best effort with a short budget; an unreachable peer falls back
        // to its own timeout.
        send_blocking(peers_[q].fd, hdr.data(), hdr.size(), 2000);
        send_blocking(peers_[q].fd, payload.data(), payload.size(), 2000);
      }
    } catch (...) {
    }
  }

  void export_metrics(obs::Registry& reg) const override {
    const double ratio =
        total_drained_bytes_ > 0
            ? static_cast<double>(progressed_drained_bytes_) /
                  static_cast<double>(total_drained_bytes_)
            : 0.0;
    export_link_metrics(reg, links_, rank_, exchanges_, exchange_wait_ns_,
                        ratio);
  }

 private:
  struct Peer {
    int fd = -1;
    // --- send side: gather list built by post(), drained by pump() ------
    std::deque<std::array<std::byte, kFrameHeaderBytes>> headers;
    std::vector<iovec> iov;
    std::size_t iov_idx = 0;  ///< first incomplete entry; earlier are sent
    // --- receive side ----------------------------------------------------
    std::vector<std::byte> inbuf;
    std::size_t parse_pos = 0;
    std::vector<Blob> ready;
    bool end_seen = false;
  };

  void track_inflight(std::uint32_t dst, std::uint64_t frame_bytes) {
    auto& l = links_[dst];
    l.inflight_bytes += frame_bytes;
    l.max_inflight_bytes = std::max(l.max_inflight_bytes, l.inflight_bytes);
  }

  void queue_frame(Peer& peer, const FrameHeader& h,
                   std::span<const std::span<const std::byte>> frags) {
    peer.headers.emplace_back();
    encode_frame_header(h, peer.headers.back());
    peer.iov.push_back(
        {peer.headers.back().data(), peer.headers.back().size()});
    for (const auto& f : frags) {
      if (f.empty()) continue;
      // iovec's iov_base is non-const by API; the kernel only reads it.
      peer.iov.push_back(
          {const_cast<std::byte*>(f.data()), f.size()});
    }
  }

  /// Drives every link until all sends drained and all ENDs arrived.  The
  /// deadline is refreshed whenever any link makes progress: a peer that
  /// is slow but still flowing never trips the timeout, only one that goes
  /// completely silent for io_timeout_ms does.
  void pump(Clock::time_point deadline) {
    for (;;) {
      pfds_.clear();
      pfd_rank_.clear();
      bool pending = false;
      for (std::uint32_t q = 0; q < p_; ++q) {
        if (q == rank_) continue;
        Peer& peer = peers_[q];
        short events = 0;
        if (peer.iov_idx < peer.iov.size()) events |= POLLOUT;
        if (!peer.end_seen) events |= POLLIN;
        if (events == 0) continue;
        pending = true;
        pfds_.push_back({peer.fd, events, 0});
        pfd_rank_.push_back(q);
      }
      if (!pending) return;
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline - Clock::now());
      if (remaining.count() <= 0) throw_timeout();
      const int n = ::poll(pfds_.data(), pfds_.size(),
                           static_cast<int>(remaining.count()));
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("net: poll", errno);
      }
      if (n == 0) throw_timeout();
      deadline = Clock::now() + std::chrono::milliseconds(io_timeout_ms_);
      for (std::size_t i = 0; i < pfds_.size(); ++i) {
        const std::uint32_t q = pfd_rank_[i];
        if (pfds_[i].revents == 0) continue;
        if (pfds_[i].revents & (POLLIN | POLLHUP | POLLERR)) {
          read_some(q);
          parse_frames(q);
        }
        if (pfds_[i].revents & POLLOUT) write_some(q);
      }
    }
  }

  [[noreturn]] void throw_timeout() const {
    std::string slow;
    for (std::uint32_t q = 0; q < p_; ++q) {
      if (q == rank_) continue;
      const Peer& peer = peers_[q];
      if (peer.iov_idx < peer.iov.size() || !peer.end_seen) {
        if (!slow.empty()) slow += ", ";
        slow += std::to_string(q);
      }
    }
    throw PeerTimeoutError("net: exchange timed out after " +
                           std::to_string(io_timeout_ms_) +
                           "ms waiting on rank(s) " + slow);
  }

  void write_some(std::uint32_t q) {
    Peer& peer = peers_[q];
    while (peer.iov_idx < peer.iov.size()) {
      const std::size_t cnt =
          std::min<std::size_t>(peer.iov.size() - peer.iov_idx, 64);
      msghdr msg{};
      msg.msg_iov = peer.iov.data() + peer.iov_idx;
      msg.msg_iovlen = cnt;
      const ssize_t n = ::sendmsg(peer.fd, &msg, MSG_NOSIGNAL);
      if (n < 0) {
        const int err = errno;
        if (err == EINTR) continue;
        if (err == EAGAIN || err == EWOULDBLOCK) return;
        if (err == EPIPE || err == ECONNRESET) {
          throw PeerFailedError("net: rank " + std::to_string(q) +
                                " closed the connection mid-phase");
        }
        throw_errno("net: sendmsg to rank " + std::to_string(q), err);
      }
      const auto drained = static_cast<std::uint64_t>(n);
      links_[q].inflight_bytes -=
          std::min(links_[q].inflight_bytes, drained);
      total_drained_bytes_ += drained;
      if (progressing_) progressed_drained_bytes_ += drained;
      std::size_t left = static_cast<std::size_t>(n);
      while (left > 0 && peer.iov_idx < peer.iov.size()) {
        iovec& v = peer.iov[peer.iov_idx];
        if (left >= v.iov_len) {
          left -= v.iov_len;
          ++peer.iov_idx;
        } else {
          v.iov_base = static_cast<std::byte*>(v.iov_base) + left;
          v.iov_len -= left;
          left = 0;
        }
      }
    }
  }

  void read_some(std::uint32_t q) {
    Peer& peer = peers_[q];
    for (;;) {
      const std::size_t old = peer.inbuf.size();
      peer.inbuf.resize(old + 256 * 1024);
      const ssize_t n =
          ::recv(peer.fd, peer.inbuf.data() + old, peer.inbuf.size() - old, 0);
      if (n < 0) {
        peer.inbuf.resize(old);
        const int err = errno;
        if (err == EINTR) continue;
        if (err == EAGAIN || err == EWOULDBLOCK) return;
        throw_errno("net: recv from rank " + std::to_string(q), err);
      }
      if (n == 0) {
        peer.inbuf.resize(old);
        throw PeerFailedError("net: rank " + std::to_string(q) +
                              " closed the connection mid-phase");
      }
      peer.inbuf.resize(old + static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < 256 * 1024) return;  // drained
    }
  }

  /// Consumes complete frames from the peer's buffer, stopping at its END
  /// frame for this phase — later bytes belong to the next phase.
  void parse_frames(std::uint32_t q) {
    Peer& peer = peers_[q];
    while (!peer.end_seen &&
           peer.inbuf.size() - peer.parse_pos >= kFrameHeaderBytes) {
      const std::span<const std::byte> buf(
          peer.inbuf.data() + peer.parse_pos,
          peer.inbuf.size() - peer.parse_pos);
      const FrameHeader h = decode_frame_header(buf);
      if (buf.size() < kFrameHeaderBytes + h.len) break;  // partial payload
      const auto payload = buf.subspan(kFrameHeaderBytes, h.len);
      if (util::checksum64(payload) != h.checksum) {
        throw CorruptFrameError(
            "net: frame from rank " + std::to_string(q) +
            " failed its checksum (" + std::to_string(h.len) + " bytes)");
      }
      if (h.src != q) {
        throw CorruptFrameError("net: frame on link " + std::to_string(q) +
                                " claims src " + std::to_string(h.src));
      }
      peer.parse_pos += kFrameHeaderBytes + h.len;
      links_[q].bytes_received += kFrameHeaderBytes + h.len;
      switch (h.kind) {
        case FrameKind::data:
          peer.ready.emplace_back(payload.begin(), payload.end());
          links_[q].frames_received += 1;
          break;
        case FrameKind::end:
          peer.end_seen = true;
          break;
        case FrameKind::abort:
          throw PeerFailedError(
              "net: rank " + std::to_string(q) + " aborted: " +
              std::string(reinterpret_cast<const char*>(payload.data()),
                          payload.size()));
        case FrameKind::hello:
          throw CorruptFrameError("net: unexpected HELLO from rank " +
                                  std::to_string(q) + " after handshake");
      }
    }
    if (peer.parse_pos == peer.inbuf.size()) {
      peer.inbuf.clear();
      peer.parse_pos = 0;
    } else if (peer.parse_pos >= 1u << 20) {
      peer.inbuf.erase(peer.inbuf.begin(),
                       peer.inbuf.begin() +
                           static_cast<std::ptrdiff_t>(peer.parse_pos));
      peer.parse_pos = 0;
    }
  }

  // --- mesh bring-up ------------------------------------------------------

  void connect_mesh(std::uint64_t connect_timeout_ms) {
    if (p_ == 1) return;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(connect_timeout_ms);
    open_listener();
    for (std::uint32_t q = 0; q < rank_; ++q) connect_to(q, deadline);
    accept_higher(deadline);
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (!addr_.tcp) ::unlink(addr_.describe(rank_).c_str());
    for (std::uint32_t q = 0; q < p_; ++q) {
      if (q == rank_) continue;
      set_nonblocking(peers_[q].fd);
      if (addr_.tcp) {
        const int one = 1;
        ::setsockopt(peers_[q].fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
      }
    }
  }

  void open_listener() {
    if (addr_.tcp) {
      sockaddr_in sa{};
      listen_fd_ = open_tcp_socket(addr_, rank_, /*listen_side=*/true, sa);
      const int one = 1;
      ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) <
          0) {
        throw_errno("net: bind " + addr_.describe(rank_), errno);
      }
    } else {
      const std::string path = addr_.describe(rank_);
      sockaddr_un sa{};
      if (path.size() >= sizeof(sa.sun_path)) {
        throw NetError(em::IoError::Kind::persistent,
                       "net: unix socket path too long: " + path);
      }
      ::unlink(path.c_str());
      listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (listen_fd_ < 0) throw_errno("net: socket", errno);
      sa.sun_family = AF_UNIX;
      std::strncpy(sa.sun_path, path.c_str(), sizeof(sa.sun_path) - 1);
      if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) <
          0) {
        throw_errno("net: bind " + path, errno);
      }
    }
    if (::listen(listen_fd_, static_cast<int>(p_)) < 0) {
      throw_errno("net: listen", errno);
    }
  }

  void connect_to(std::uint32_t q, Clock::time_point deadline) {
    std::uint64_t backoff_ms = 1;
    for (;;) {
      int fd = -1;
      int err = 0;
      if (addr_.tcp) {
        sockaddr_in sa{};
        fd = open_tcp_socket(addr_, q, /*listen_side=*/false, sa);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) ==
            0) {
          err = -1;  // connected
        } else {
          err = errno;
        }
      } else {
        const std::string path = addr_.describe(q);
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        std::strncpy(sa.sun_path, path.c_str(), sizeof(sa.sun_path) - 1);
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) throw_errno("net: socket", errno);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) ==
            0) {
          err = -1;
        } else {
          err = errno;
        }
      }
      if (err == -1) {
        send_hello(fd, q);
        peers_[q].fd = fd;
        return;
      }
      ::close(fd);
      // The peer may simply not have started yet: retry with backoff on
      // the not-up-yet errnos until the handshake budget runs out.
      if (err != ECONNREFUSED && err != ENOENT && err != ETIMEDOUT &&
          err != EINTR && err != EAGAIN) {
        throw_errno("net: connect to rank " + std::to_string(q) + " at " +
                        addr_.describe(q),
                    err);
      }
      if (Clock::now() + std::chrono::milliseconds(backoff_ms) > deadline) {
        throw PeerTimeoutError("net: rank " + std::to_string(q) + " at " +
                               addr_.describe(q) +
                               " did not come up within the connect budget");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min<std::uint64_t>(backoff_ms * 2, 100);
    }
  }

  void send_hello(int fd, std::uint32_t q) {
    std::array<std::byte, kFrameHeaderBytes> hdr;
    FrameHeader h;
    h.kind = FrameKind::hello;
    h.src = rank_;
    h.checksum = util::checksum64({});
    encode_frame_header(h, hdr);
    if (!send_blocking(fd, hdr.data(), hdr.size(), 5000)) {
      ::close(fd);
      throw PeerFailedError("net: HELLO to rank " + std::to_string(q) +
                            " failed");
    }
  }

  void accept_higher(Clock::time_point deadline) {
    std::uint32_t missing = p_ - rank_ - 1;
    while (missing > 0) {
      pollfd pfd{listen_fd_, POLLIN, 0};
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline - Clock::now());
      if (remaining.count() <= 0) {
        throw PeerTimeoutError(
            "net: " + std::to_string(missing) +
            " higher-ranked peer(s) never connected within the handshake "
            "budget");
      }
      const int n = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("net: poll(listen)", errno);
      }
      if (n == 0) continue;
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        throw_errno("net: accept", errno);
      }
      // The HELLO frame tells us which rank this connection is.
      std::array<std::byte, kFrameHeaderBytes> hdr;
      if (!recv_blocking(fd, hdr.data(), hdr.size(), deadline)) {
        ::close(fd);
        continue;
      }
      FrameHeader h;
      try {
        h = decode_frame_header(hdr);
      } catch (const CorruptFrameError&) {
        ::close(fd);
        continue;
      }
      if (h.kind != FrameKind::hello || h.src <= rank_ || h.src >= p_ ||
          peers_[h.src].fd >= 0) {
        ::close(fd);
        continue;
      }
      peers_[h.src].fd = fd;
      --missing;
    }
  }

  static bool send_blocking(int fd, const void* data, std::size_t len,
                            std::uint64_t budget_ms) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(budget_ms);
    const auto* p = static_cast<const std::byte*>(data);
    while (len > 0) {
      const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
      if (n > 0) {
        p += n;
        len -= static_cast<std::size_t>(n);
        continue;
      }
      const int err = errno;
      if (err == EINTR) continue;
      if ((err == EAGAIN || err == EWOULDBLOCK) && Clock::now() < deadline) {
        pollfd pfd{fd, POLLOUT, 0};
        ::poll(&pfd, 1, 50);
        continue;
      }
      return false;
    }
    return true;
  }

  static bool recv_blocking(int fd, void* data, std::size_t len,
                            Clock::time_point deadline) {
    auto* p = static_cast<std::byte*>(data);
    while (len > 0) {
      pollfd pfd{fd, POLLIN, 0};
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline - Clock::now());
      if (remaining.count() <= 0) return false;
      const int pn = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
      if (pn < 0 && errno != EINTR) return false;
      if (pn <= 0) continue;
      const ssize_t n = ::recv(fd, p, len, 0);
      if (n > 0) {
        p += n;
        len -= static_cast<std::size_t>(n);
        continue;
      }
      if (n == 0) return false;
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    return true;
  }

  void close_all() noexcept {
    for (auto& peer : peers_) {
      if (peer.fd >= 0) {
        ::close(peer.fd);
        peer.fd = -1;
      }
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      if (!addr_.tcp) ::unlink(addr_.describe(rank_).c_str());
    }
  }

  const Address addr_;
  const std::uint32_t rank_;
  const std::uint32_t p_;
  const std::uint64_t io_timeout_ms_;
  int listen_fd_ = -1;
  std::vector<Peer> peers_;
  std::vector<Blob> self_ready_;
  std::vector<LinkStats> links_;
  std::uint64_t exchanges_ = 0;
  obs::LogHistogram exchange_wait_ns_;
  // Poll scratch, reused by pump() and progress() across every exchange
  // (reallocating these per pump iteration showed up in bench/net_routing
  // at small h-relations).
  std::vector<pollfd> pfds_;
  std::vector<std::uint32_t> pfd_rank_;
  /// True while progress() drives write_some: those drained bytes were
  /// hidden behind the caller's compute/disk work.
  bool progressing_ = false;
  std::uint64_t total_drained_bytes_ = 0;
  std::uint64_t progressed_drained_bytes_ = 0;
};

}  // namespace

std::unique_ptr<Transport> make_socket_transport(const SocketConfig& cfg) {
  return std::make_unique<SocketTransport>(cfg);
}

}  // namespace embsp::net
