// Per-link traffic accounting shared by the transport backends.
//
// Concurrency contract follows LogHistogram: a LinkStats is written by the
// endpoint's owning thread only and read at export time, when the run is
// quiescent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"

namespace embsp::net {

struct LinkStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  /// Bytes queued toward this peer that have not yet left the endpoint
  /// (posted but undrained); drops back to zero by the end of each
  /// complete().  The high-water mark measures how much of a phase's
  /// traffic was in flight at once — the depth the overlap machinery has
  /// to play with.
  std::uint64_t inflight_bytes = 0;
  std::uint64_t max_inflight_bytes = 0;
  /// Payload size of each message sent over this link.
  obs::LogHistogram send_bytes;
};

/// Exports one endpoint's view: per-peer links under "net.link.<peer>.*"
/// (the self index is skipped — loopback delivery is not wire traffic)
/// plus the transport-wide exchange counters.  `overlap_ratio` is the
/// fraction of outbound wire bytes this endpoint drained outside the
/// complete() barrier (via post()/progress()), i.e. hidden behind compute
/// or disk I/O; 0 when nothing was sent.
inline void export_link_metrics(obs::Registry& reg,
                                const std::vector<LinkStats>& links,
                                std::uint32_t self, std::uint64_t exchanges,
                                const obs::LogHistogram& exchange_wait_ns,
                                double overlap_ratio) {
  for (std::uint32_t peer = 0; peer < links.size(); ++peer) {
    if (peer == self) continue;
    const auto& l = links[peer];
    const std::string base = "net.link." + std::to_string(peer) + ".";
    reg.add(base + "bytes_sent", l.bytes_sent);
    reg.add(base + "bytes_received", l.bytes_received);
    reg.add(base + "frames_sent", l.frames_sent);
    reg.add(base + "frames_received", l.frames_received);
    reg.set_gauge(base + "max_inflight_bytes",
                  static_cast<double>(l.max_inflight_bytes));
    if (!l.send_bytes.empty()) {
      reg.merge_histogram(base + "send_bytes", l.send_bytes);
    }
  }
  reg.add("net.exchanges", exchanges);
  reg.set_gauge("net.exchange_overlap_ratio", overlap_ratio);
  if (!exchange_wait_ns.empty()) {
    reg.merge_histogram("net.exchange_wait_ns", exchange_wait_ns);
  }
}

}  // namespace embsp::net
