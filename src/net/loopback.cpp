// In-process loopback transport: p endpoints over one shared mailbox table.
//
// post() assembles the gathered fragments into one owned Blob in the
// staging cell (src, dst) — the same copy the threaded ParSimulator's
// mailboxes make — and exchange() is a generation-counted condition-variable
// barrier: the last rank to arrive swaps the staging table into the
// delivery table and wakes everyone.
//
// Safety of the swap: rank r reads only delivery[r], and the delivery table
// is replaced only when ALL ranks have arrived at the NEXT exchange — which
// happens-after every rank moved its row out.  No rank can still be
// touching the previous delivery when it is overwritten.
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>

#include "net/link_stats.hpp"
#include "net/transport.hpp"

namespace embsp::net {

namespace {

class LoopbackTransport;

struct LoopbackGroup {
  explicit LoopbackGroup(std::uint32_t n, std::uint64_t timeout)
      : p(n),
        timeout_ms(timeout),
        staging(n, std::vector<std::vector<Blob>>(n)),
        delivery(n, std::vector<std::vector<Blob>>(n)) {}

  const std::uint32_t p;
  const std::uint64_t timeout_ms;

  std::mutex m;
  std::condition_variable cv;
  /// staging[src][dst]: posted this phase.  delivery[dst][src]: readable
  /// after the barrier.
  std::vector<std::vector<std::vector<Blob>>> staging;
  std::vector<std::vector<std::vector<Blob>>> delivery;
  std::uint64_t generation = 0;
  std::uint32_t arrived = 0;
  bool poisoned = false;
  std::string poison_reason;
};

class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(std::shared_ptr<LoopbackGroup> group, std::uint32_t rank)
      : group_(std::move(group)), rank_(rank), links_(group_->p) {}

  [[nodiscard]] std::uint32_t rank() const override { return rank_; }
  [[nodiscard]] std::uint32_t size() const override { return group_->p; }

  void post(std::uint32_t dst,
            std::span<const std::span<const std::byte>> frags) override {
    std::size_t total = 0;
    for (const auto& f : frags) total += f.size();
    Blob blob(total);
    std::size_t off = 0;
    for (const auto& f : frags) {
      std::memcpy(blob.data() + off, f.data(), f.size());
      off += f.size();
    }
    if (dst != rank_) {
      auto& l = links_[dst];
      l.bytes_sent += total;
      l.frames_sent += 1;
      l.send_bytes.record(total);
      // The copy above IS the transmission: the bytes sit in the shared
      // staging table until the barrier swaps them over.
      l.inflight_bytes += total;
      l.max_inflight_bytes = std::max(l.max_inflight_bytes, l.inflight_bytes);
    }
    std::lock_guard<std::mutex> lock(group_->m);
    group_->staging[rank_][dst].push_back(std::move(blob));
  }

  std::vector<std::vector<Blob>> exchange() override {
    auto& g = *group_;
    const auto t0 = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(g.m);
    if (g.poisoned) {
      throw PeerFailedError("net: peer aborted: " + g.poison_reason);
    }
    if (++g.arrived == g.p) {
      for (std::uint32_t dst = 0; dst < g.p; ++dst) {
        for (std::uint32_t src = 0; src < g.p; ++src) {
          g.delivery[dst][src] = std::move(g.staging[src][dst]);
          g.staging[src][dst].clear();
        }
      }
      g.arrived = 0;
      ++g.generation;
      g.cv.notify_all();
    } else {
      const std::uint64_t gen = g.generation;
      const bool done = g.cv.wait_for(
          lock, std::chrono::milliseconds(g.timeout_ms),
          [&] { return g.generation != gen || g.poisoned; });
      if (g.poisoned) {
        throw PeerFailedError("net: peer aborted: " + g.poison_reason);
      }
      if (!done) {
        // Leave the barrier: this arrival must not count toward a phase
        // this endpoint has given up on.
        --g.arrived;
        throw PeerTimeoutError(
            "net: loopback barrier timed out after " +
            std::to_string(g.timeout_ms) + "ms (a peer never reached "
            "exchange)");
      }
    }
    auto out = std::move(g.delivery[rank_]);
    g.delivery[rank_].assign(g.p, {});
    for (std::uint32_t src = 0; src < g.p; ++src) {
      if (src == rank_) continue;
      for (const auto& b : out[src]) {
        links_[src].bytes_received += b.size();
        links_[src].frames_received += 1;
      }
    }
    for (auto& l : links_) l.inflight_bytes = 0;  // staging was delivered
    ++exchanges_;
    exchange_wait_ns_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    return out;
  }

  void abort(const std::string& reason) noexcept override {
    try {
      std::lock_guard<std::mutex> lock(group_->m);
      if (!group_->poisoned) {
        group_->poisoned = true;
        group_->poison_reason =
            "rank " + std::to_string(rank_) + ": " + reason;
      }
      group_->cv.notify_all();
    } catch (...) {  // lock/alloc failure: peers fall back to the timeout
    }
  }

  void export_metrics(obs::Registry& reg) const override {
    // post() performs the entire transmission before the barrier, so every
    // wire byte was drained outside complete(): full overlap whenever this
    // endpoint sent anything at all.
    std::uint64_t sent = 0;
    for (const auto& l : links_) sent += l.bytes_sent;
    export_link_metrics(reg, links_, rank_, exchanges_, exchange_wait_ns_,
                        sent > 0 ? 1.0 : 0.0);
  }

 private:
  std::shared_ptr<LoopbackGroup> group_;
  const std::uint32_t rank_;
  std::vector<LinkStats> links_;
  std::uint64_t exchanges_ = 0;
  obs::LogHistogram exchange_wait_ns_;
};

}  // namespace

std::vector<std::unique_ptr<Transport>> make_loopback_group(
    std::uint32_t p, std::uint64_t timeout_ms) {
  auto group = std::make_shared<LoopbackGroup>(p, timeout_ms);
  std::vector<std::unique_ptr<Transport>> endpoints;
  endpoints.reserve(p);
  for (std::uint32_t r = 0; r < p; ++r) {
    endpoints.push_back(std::make_unique<LoopbackTransport>(group, r));
  }
  return endpoints;
}

}  // namespace embsp::net
