// Sequential EM list ranking by PRAM simulation (Chiang et al. [14] style) —
// the Group C comparison point of Table 1:
//   O(G * n/B * log_{M/B}(n/B)) per pointer-jumping round, log2(n) rounds,
// i.e. an EM sort for every PRAM step.
//
// Each round replaces succ[i] with succ[succ[i]] and accumulates
// rank[i] += rank[succ[i]] — the classic pointer-jumping recurrence — with
// the random accesses resolved by sorting:
//   1. scan succ[] producing query records keyed by succ[i];
//   2. EM-sort the queries; scan them in lock-step with succ[]/rank[]
//      (both index-ordered) producing answer records keyed by i;
//   3. EM-sort the answers; scan to update succ[]/rank[].
//
// The result is rank[i] = number of hops from i to the list tail, matching
// cgm_list_ranking, so the benches compare identical problems.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "em/disk_array.hpp"
#include "em/io_stats.hpp"

namespace embsp::baseline {

struct EmListRankStats {
  em::IoStats total;       ///< all I/O including sorts
  std::size_t rounds = 0;  ///< pointer-jumping rounds (= ceil(log2 n))
};

/// succ[i] is node i's successor; the tail points to itself.  Returns
/// rank[i] = #hops from i to the tail.  Requires n < 2^32.
std::vector<std::uint64_t> em_list_ranking(em::DiskArray& disks,
                                           std::span<const std::uint64_t> succ,
                                           std::size_t memory_bytes,
                                           EmListRankStats* stats = nullptr);

}  // namespace embsp::baseline
