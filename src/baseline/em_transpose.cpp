#include "baseline/em_transpose.hpp"

#include <algorithm>
#include <stdexcept>

#include "em/striped_region.hpp"
#include "em/track_allocator.hpp"

namespace embsp::baseline {

namespace {
std::span<const std::byte> as_bytes(std::span<const std::uint64_t> s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size() * 8};
}
}  // namespace

std::vector<std::uint64_t> em_transpose(em::DiskArray& disks,
                                        std::span<const std::uint64_t> matrix,
                                        std::uint64_t rows, std::uint64_t cols,
                                        std::size_t memory_bytes,
                                        EmTransposeStats* stats) {
  const std::size_t B = disks.block_size();
  const std::size_t ib = B / 8;
  const std::size_t D = disks.num_disks();
  const std::uint64_t n = rows * cols;
  if (matrix.size() != n) {
    throw std::invalid_argument("em_transpose: size mismatch");
  }
  if (rows % ib != 0 || cols % ib != 0) {
    throw std::invalid_argument(
        "em_transpose: rows and cols must be multiples of the per-block item "
        "count B/8 = " +
        std::to_string(ib));
  }
  EmTransposeStats local;
  EmTransposeStats& st = stats ? *stats : local;
  st = EmTransposeStats{};

  // Tile side: largest multiple of ib with 2 tiles fitting in memory.
  std::uint64_t t = ib;
  while ((t + ib) * (t + ib) * 2 * 8 <= memory_bytes) t += ib;
  t = std::min({t, rows, cols});
  st.tile = t;

  em::TrackAllocators alloc(D);
  auto in_region = em::StripedRegion::reserve(disks, alloc, n / ib);
  auto out_region = em::StripedRegion::reserve(disks, alloc, n / ib);
  const std::size_t mem_items = memory_bytes / 8;

  auto snapshot = [&]() { return disks.stats(); };
  auto account = [&](em::IoStats& slot, const em::IoStats& before) {
    slot += disks.stats().since(before);
  };

  // Load.
  {
    const auto before = snapshot();
    std::uint64_t written = 0;
    std::vector<std::uint64_t> chunk;
    while (written < n) {
      const std::uint64_t take =
          std::min<std::uint64_t>(mem_items / ib * ib, n - written);
      chunk.assign(matrix.begin() + written, matrix.begin() + written + take);
      in_region.write_blocks(written / ib, take / ib, as_bytes(chunk));
      written += take;
    }
    account(st.load, before);
  }

  // Tiled transpose.
  {
    const auto before = snapshot();
    std::vector<std::uint64_t> tile_in(t * t), tile_out(t * t);
    for (std::uint64_t i0 = 0; i0 < rows; i0 += t) {
      const std::uint64_t th = std::min<std::uint64_t>(t, rows - i0);
      for (std::uint64_t j0 = 0; j0 < cols; j0 += t) {
        const std::uint64_t tw = std::min<std::uint64_t>(t, cols - j0);
        // Read th row segments of tw items each (block aligned).
        for (std::uint64_t i = 0; i < th; ++i) {
          const std::uint64_t off = (i0 + i) * cols + j0;
          in_region.read_blocks(
              off / ib, tw / ib,
              {reinterpret_cast<std::byte*>(tile_in.data() + i * tw),
               tw * 8});
        }
        for (std::uint64_t i = 0; i < th; ++i) {
          for (std::uint64_t j = 0; j < tw; ++j) {
            tile_out[j * th + i] = tile_in[i * tw + j];
          }
        }
        // Write tw row segments of th items into the transposed layout.
        for (std::uint64_t j = 0; j < tw; ++j) {
          const std::uint64_t off = (j0 + j) * rows + i0;
          out_region.write_blocks(
              off / ib, th / ib,
              as_bytes({tile_out.data() + j * th, th}));
        }
      }
    }
    account(st.algorithm, before);
  }

  // Collect.
  std::vector<std::uint64_t> out;
  {
    const auto before = snapshot();
    std::vector<std::uint64_t> chunk;
    std::uint64_t b = 0;
    const std::uint64_t blocks = n / ib;
    while (b < blocks) {
      const std::uint64_t take = std::min<std::uint64_t>(
          std::max<std::size_t>(1, mem_items / ib), blocks - b);
      chunk.resize(take * ib);
      out_region.read_blocks(
          b, take, {reinterpret_cast<std::byte*>(chunk.data()), take * B});
      out.insert(out.end(), chunk.begin(), chunk.end());
      b += take;
    }
    account(st.collect, before);
  }
  return out;
}

}  // namespace embsp::baseline
