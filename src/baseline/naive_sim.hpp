// Naive BSP-to-EM simulation in the style of Sibeyn–Kaufmann [26], the
// concurrent work §2.1 contrasts with:
//
//   "They simulate a superstep of one virtual processor at a time, saving
//    the context and generated messages in a v x v array on disk, where
//    each cell is of size 3*mu ... the paper does not include techniques to
//    accommodate the blocking factor ... nor does it provide mechanisms for
//    handling multiple disks or multiple physical processors."
//
// Faithfully to that design, this simulator:
//   * runs one virtual processor per round (k = 1, no memory grouping),
//   * keeps a dense v x v message matrix on disk with a fixed-capacity cell
//    per (source, destination) pair, reading *every* source cell of a
//    destination each superstep (one I/O per block, one disk at a time),
//   * never issues multi-disk parallel I/O — disks hold data round-robin
//     but each operation touches a single drive.
//
// It executes the same Program concept as the real simulators, so tests
// can verify identical results while the benches compare I/O counts —
// the quantitative version of the paper's §2.1 comparison.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "bsp/cost_model.hpp"
#include "bsp/program.hpp"
#include "em/disk_array.hpp"
#include "util/serialization.hpp"

namespace embsp::baseline {

struct NaiveSimConfig {
  std::uint32_t v = 1;        ///< virtual processors
  std::size_t D = 1;          ///< disks (used one at a time)
  std::size_t B = 4096;       ///< block size
  std::size_t mu = 0;         ///< max context bytes
  std::size_t cell_bytes = 0; ///< capacity of one (src, dst) message cell
  std::uint64_t seed = 1;     ///< unused; kept for interface symmetry
  std::size_t max_supersteps = 100000;
};

struct NaiveSimResult {
  em::IoStats total_io;
  std::size_t lambda = 0;
  std::uint64_t max_tracks_per_disk = 0;
};

class NaiveSimulator {
 public:
  explicit NaiveSimulator(NaiveSimConfig cfg);

  template <bsp::Program P>
  NaiveSimResult run(
      const P& prog,
      const std::function<typename P::State(std::uint32_t)>& make_state,
      const std::function<void(std::uint32_t, typename P::State&)>& collect);

  [[nodiscard]] const em::DiskArray& disks() const { return *disks_; }

 private:
  // Single-block, single-disk I/O helpers (the S-K access pattern).
  void read_region(std::uint64_t start_block, std::size_t nblocks,
                   std::vector<std::byte>& out);
  void write_region(std::uint64_t start_block,
                    std::span<const std::byte> data);
  [[nodiscard]] std::pair<std::uint32_t, std::uint64_t> place(
      std::uint64_t global_block) const;

  NaiveSimConfig cfg_;
  std::unique_ptr<em::DiskArray> disks_;
  std::size_t ctx_blocks_ = 0;
  std::size_t cell_blocks_ = 0;
  std::uint64_t ctx_base_ = 0;   ///< first global block of the context area
  std::uint64_t cell_base_ = 0;  ///< first global block of the v x v matrix
  std::vector<std::byte> scratch_;
};

// ---------------------------------------------------------------------------
// implementation
// ---------------------------------------------------------------------------

template <bsp::Program P>
NaiveSimResult NaiveSimulator::run(
    const P& prog,
    const std::function<typename P::State(std::uint32_t)>& make_state,
    const std::function<void(std::uint32_t, typename P::State&)>& collect) {
  using State = typename P::State;
  const std::uint32_t v = cfg_.v;

  // Layout: contexts first, then two v x v cell matrices (row-major by
  // source) used alternately per superstep — the receiver of superstep s
  // still reads matrix s%2 while senders fill matrix (s+1)%2, mirroring
  // the 3*mu cell provisioning of [26].
  ctx_base_ = 0;
  cell_base_ = static_cast<std::uint64_t>(v) * ctx_blocks_;

  // Cell header: (superstep_tag, length).  Cells from older supersteps are
  // treated as empty, so empty cells never need to be cleared.
  struct CellHeader {
    std::uint64_t tag;
    std::uint64_t len;
  };
  const std::uint64_t kNoTag = UINT64_MAX;

  const std::uint64_t matrix_blocks =
      static_cast<std::uint64_t>(v) * v * cell_blocks_;
  auto cell_block = [&](std::uint32_t src, std::uint32_t dst,
                        std::uint64_t parity) {
    return cell_base_ + parity * matrix_blocks +
           (static_cast<std::uint64_t>(src) * v + dst) * cell_blocks_;
  };

  // Write initial contexts.
  std::vector<std::byte> buf;
  for (std::uint32_t j = 0; j < v; ++j) {
    util::Writer w;
    make_state(j).serialize(w);
    auto payload = w.take();
    if (payload.size() > cfg_.mu) {
      throw std::runtime_error("NaiveSimulator: context exceeds mu");
    }
    buf.assign(ctx_blocks_ * cfg_.B, std::byte{0});
    const auto len = static_cast<std::uint32_t>(payload.size());
    std::memcpy(buf.data(), &len, 4);
    std::memcpy(buf.data() + 4, payload.data(), payload.size());
    write_region(ctx_base_ + static_cast<std::uint64_t>(j) * ctx_blocks_,
                 buf);
  }

  NaiveSimResult result;
  bsp::WorkMeter meter;
  for (std::size_t step = 0;; ++step) {
    if (step >= cfg_.max_supersteps) {
      throw std::runtime_error("NaiveSimulator: superstep limit exceeded");
    }
    bool any_continue = false;
    for (std::uint32_t j = 0; j < v; ++j) {
      // Fetch context.
      read_region(ctx_base_ + static_cast<std::uint64_t>(j) * ctx_blocks_,
                  ctx_blocks_, buf);
      std::uint32_t len = 0;
      std::memcpy(&len, buf.data(), 4);
      State state;
      util::Reader ctx_reader(std::span<const std::byte>(buf).subspan(4, len));
      state.deserialize(ctx_reader);

      // Fetch the whole column j of the message matrix: the dense-array
      // design reads every source cell (at least its first block).
      std::vector<bsp::Message> incoming;
      std::vector<std::byte> cell;
      for (std::uint32_t i = 0; i < v; ++i) {
        read_region(cell_block(i, j, step % 2), 1, cell);
        CellHeader h;
        std::memcpy(&h, cell.data(), sizeof(h));
        if (h.tag != step || h.len == 0) continue;
        if (sizeof(h) + h.len > cfg_.B) {
          // Long cell: read the remaining blocks.
          std::vector<std::byte> rest;
          const std::size_t more =
              (sizeof(h) + h.len + cfg_.B - 1) / cfg_.B - 1;
          read_region(cell_block(i, j, step % 2) + 1, more, rest);
          cell.insert(cell.end(), rest.begin(), rest.end());
        }
        util::Reader r(std::span<const std::byte>(cell).subspan(
            sizeof(h), h.len));
        while (!r.exhausted()) {
          bsp::Message m;
          m.src = i;
          m.dst = j;
          m.seq = r.read<std::uint32_t>();
          const auto plen = r.read<std::uint32_t>();
          auto bytes = r.read_bytes(plen);
          m.payload.assign(bytes.begin(), bytes.end());
          incoming.push_back(std::move(m));
        }
      }

      bsp::Inbox in(std::move(incoming));
      bsp::Outbox out(j, v);
      meter.reset();
      bsp::ProcEnv env{j, v, &meter};
      const bool cont = prog.superstep(step, env, state, in, out);
      any_continue = any_continue || cont;

      // Write generated messages into row j of the matrix (next superstep's
      // tag), one cell per destination.
      std::vector<util::Writer> cells(v);
      for (const auto& m : out.messages()) {
        cells[m.dst].write<std::uint32_t>(m.seq);
        cells[m.dst].write<std::uint32_t>(
            static_cast<std::uint32_t>(m.payload.size()));
        cells[m.dst].write_bytes(m.payload);
      }
      for (std::uint32_t d = 0; d < v; ++d) {
        if (cells[d].size() == 0) continue;
        CellHeader h{step + 1, cells[d].size()};
        if (sizeof(h) + h.len > cell_blocks_ * cfg_.B) {
          throw std::runtime_error(
              "NaiveSimulator: cell capacity exceeded (raise cell_bytes)");
        }
        const std::size_t blocks = (sizeof(h) + h.len + cfg_.B - 1) / cfg_.B;
        std::vector<std::byte> data(blocks * cfg_.B, std::byte{0});
        std::memcpy(data.data(), &h, sizeof(h));
        std::memcpy(data.data() + sizeof(h), cells[d].bytes().data(), h.len);
        write_region(cell_block(j, d, (step + 1) % 2), data);
      }
      (void)kNoTag;

      // Write the context back.
      util::Writer w;
      state.serialize(w);
      auto payload = w.take();
      if (payload.size() > cfg_.mu) {
        throw std::runtime_error("NaiveSimulator: context exceeds mu");
      }
      buf.assign(ctx_blocks_ * cfg_.B, std::byte{0});
      const auto out_len = static_cast<std::uint32_t>(payload.size());
      std::memcpy(buf.data(), &out_len, 4);
      std::memcpy(buf.data() + 4, payload.data(), payload.size());
      write_region(ctx_base_ + static_cast<std::uint64_t>(j) * ctx_blocks_,
                   buf);
    }
    ++result.lambda;
    if (!any_continue) break;
  }

  for (std::uint32_t j = 0; j < v; ++j) {
    read_region(ctx_base_ + static_cast<std::uint64_t>(j) * ctx_blocks_,
                ctx_blocks_, buf);
    std::uint32_t len = 0;
    std::memcpy(&len, buf.data(), 4);
    State state;
    util::Reader r(std::span<const std::byte>(buf).subspan(4, len));
    state.deserialize(r);
    collect(j, state);
  }

  result.total_io = disks_->stats();
  result.max_tracks_per_disk = disks_->max_tracks_used();
  return result;
}

}  // namespace embsp::baseline
