// Sequential external-memory mergesort — the classical I/O-optimal
// comparison point of Table 1 (Aggarwal–Vitter [1]; PDM variant [33]):
//   Theta(G * n/(DB) * log_{M/B}(n/B)) I/O time on one processor, D disks.
//
// Implementation: run formation (memory-sized sorted runs, striped across
// the disks) followed by (M/B)-way merge passes.  The merge keeps full disk
// parallelism with the classical *forecasting* technique: the first key of
// every unread block is retained when the run is written, and refills fetch
// the D most urgently needed blocks (on distinct drives) in one parallel
// I/O.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "em/disk_array.hpp"
#include "em/io_stats.hpp"
#include "em/track_allocator.hpp"

namespace embsp::baseline {

struct EmSortStats {
  em::IoStats load;           ///< writing the unsorted input to disk
  em::IoStats run_formation;  ///< pass 0: read, sort, write runs
  em::IoStats merge;          ///< all merge passes
  em::IoStats collect;        ///< reading the final result back
  std::size_t initial_runs = 0;
  std::size_t merge_passes = 0;
  std::size_t fan_in = 0;

  [[nodiscard]] em::IoStats algorithm_io() const {
    em::IoStats s = run_formation;
    s += merge;
    return s;
  }
};

/// Sorts `input` using `disks` as external memory with an internal memory
/// budget of `memory_bytes`.  Returns the sorted keys; fills `stats`.
/// Pass `alloc` to share track allocation with other on-disk structures on
/// the same drives (the sort reserves its scratch regions from it);
/// nullptr uses private allocators starting at track 0.
std::vector<std::uint64_t> em_mergesort(em::DiskArray& disks,
                                        std::span<const std::uint64_t> input,
                                        std::size_t memory_bytes,
                                        EmSortStats* stats = nullptr,
                                        em::TrackAllocators* alloc = nullptr);

/// 16-byte key/value record variant (same algorithm, same cost shape);
/// sorts by `key` with ties broken by `value` (a deterministic total
/// order).  Used by the PRAM-simulation framework, whose every step is
/// "sort the requests, scan, sort the answers".
struct KeyValue {
  std::uint64_t key;
  std::uint64_t value;
};

std::vector<KeyValue> em_mergesort_kv(em::DiskArray& disks,
                                      std::span<const KeyValue> input,
                                      std::size_t memory_bytes,
                                      EmSortStats* stats = nullptr,
                                      em::TrackAllocators* alloc = nullptr);

/// Predicted parallel I/O count of the optimal bound, for theory columns:
/// 2 * ceil(n/(D*ib)) * (1 + passes) with ib = B/8 items per block.
double em_sort_predicted_ios(std::uint64_t n, std::size_t memory_bytes,
                             std::size_t num_disks, std::size_t block_bytes);

}  // namespace embsp::baseline
