#include "baseline/em_pram.hpp"

#include <stdexcept>

#include "baseline/em_mergesort.hpp"
#include "em/striped_region.hpp"
#include "em/track_allocator.hpp"

namespace embsp::baseline {

namespace {

constexpr std::uint64_t kPidBits = 20;
constexpr std::uint64_t kSlotBits = 4;

std::span<const std::byte> as_bytes(std::span<const std::uint64_t> s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size() * 8};
}

void stream_out(em::StripedRegion& region, std::span<const std::uint64_t> a,
                std::size_t ib, std::size_t mem_items) {
  std::vector<std::uint64_t> chunk;
  std::uint64_t written = 0;
  const std::uint64_t n = a.size();
  while (written < n) {
    const std::uint64_t take =
        std::min<std::uint64_t>(mem_items / ib * ib, n - written);
    chunk.assign(a.begin() + written, a.begin() + written + take);
    chunk.resize((take + ib - 1) / ib * ib, 0);
    region.write_blocks(written / ib, chunk.size() / ib, as_bytes(chunk));
    written += take;
  }
}

void stream_in(const em::StripedRegion& region, std::vector<std::uint64_t>& a,
               std::uint64_t n, std::size_t ib, std::size_t mem_items) {
  a.clear();
  a.reserve(n);
  std::vector<std::uint64_t> chunk;
  std::uint64_t read = 0;
  const std::uint64_t blocks = (n + ib - 1) / ib;
  while (read < blocks) {
    const std::uint64_t take = std::min<std::uint64_t>(
        std::max<std::size_t>(1, mem_items / ib), blocks - read);
    chunk.resize(take * ib);
    region.read_blocks(
        read, take,
        {reinterpret_cast<std::byte*>(chunk.data()), take * ib * 8});
    a.insert(a.end(), chunk.begin(), chunk.end());
    read += take;
  }
  a.resize(n);
}

}  // namespace

std::vector<std::uint64_t> em_pram_run(em::DiskArray& disks,
                                       const PramProgram& program,
                                       const PramConfig& config,
                                       std::span<const std::uint64_t> memory,
                                       std::size_t memory_bytes,
                                       EmPramStats* stats) {
  if (config.num_procs >= (1ull << kPidBits)) {
    throw std::invalid_argument("em_pram_run: too many PRAM processors");
  }
  if (config.memory_cells >= (1ull << (64 - kPidBits - kSlotBits))) {
    throw std::invalid_argument("em_pram_run: shared memory too large");
  }
  if (memory.size() != config.memory_cells) {
    throw std::invalid_argument("em_pram_run: initial memory size mismatch");
  }
  if (config.max_reads > (1u << kSlotBits)) {
    throw std::invalid_argument("em_pram_run: max_reads too large");
  }
  EmPramStats local;
  EmPramStats& st = stats ? *stats : local;
  st = EmPramStats{};
  const auto start = disks.stats();

  const std::size_t B = disks.block_size();
  const std::size_t ib = B / 8;
  const std::size_t mem_items = memory_bytes / 8;
  const std::uint64_t P = config.num_procs;
  const std::uint64_t M = config.memory_cells;

  em::TrackAllocators alloc(disks.num_disks());
  // Shared memory and register files live on disk; contexts are 9 words
  // (8 registers + active flag).
  auto mem_region = em::StripedRegion::reserve(disks, alloc,
                                               (M + ib - 1) / ib);
  auto ctx_region = em::StripedRegion::reserve(disks, alloc,
                                               (P * 9 + ib - 1) / ib);
  stream_out(mem_region, memory, ib, mem_items);
  {
    std::vector<std::uint64_t> ctx0(P * 9, 0);
    for (std::uint64_t p = 0; p < P; ++p) ctx0[p * 9 + 8] = 1;  // active
    stream_out(ctx_region, ctx0, ib, mem_items);
  }

  std::vector<std::uint64_t> mem_cur, ctx_cur;
  std::vector<std::uint64_t> scratch_addrs;
  std::vector<PramWrite> scratch_writes;

  for (std::size_t step = 0;; ++step) {
    if (step >= config.max_steps) {
      throw std::runtime_error("em_pram_run: step limit exceeded");
    }
    // --- 1. Plan reads (register scan). ------------------------------------
    stream_in(ctx_region, ctx_cur, P * 9, ib, mem_items);
    std::vector<KeyValue> requests;
    for (std::uint64_t p = 0; p < P; ++p) {
      if (ctx_cur[p * 9 + 8] == 0) continue;
      PramContext ctx;
      for (int r = 0; r < 8; ++r) ctx.reg[r] = ctx_cur[p * 9 + r];
      scratch_addrs.clear();
      program.plan_reads(step, p, ctx, scratch_addrs);
      if (scratch_addrs.size() > config.max_reads) {
        throw std::runtime_error("em_pram_run: processor exceeded max_reads");
      }
      for (std::size_t slot = 0; slot < scratch_addrs.size(); ++slot) {
        const std::uint64_t addr = scratch_addrs[slot];
        if (addr >= M) {
          throw std::out_of_range("em_pram_run: read address out of range");
        }
        requests.push_back(
            KeyValue{addr, (p << kSlotBits) | slot});
      }
    }
    st.read_requests += requests.size();

    // --- 2. Sort requests by address; join against the memory scan. --------
    auto sorted_req = em_mergesort_kv(disks, requests, memory_bytes, nullptr,
                                      &alloc);
    stream_in(mem_region, mem_cur, M, ib, mem_items);
    std::vector<KeyValue> answers;
    answers.reserve(sorted_req.size());
    for (const auto& rq : sorted_req) {
      answers.push_back(KeyValue{rq.value, mem_cur[rq.key]});
    }
    auto sorted_ans = em_mergesort_kv(disks, answers, memory_bytes, nullptr,
                                      &alloc);

    // --- 3. Compute (register scan aligned with sorted answers). -----------
    std::vector<KeyValue> writes;  // key = addr << pidbits | pid
    std::size_t cursor = 0;
    bool any_active = false;
    std::vector<std::uint64_t> values;
    for (std::uint64_t p = 0; p < P; ++p) {
      if (ctx_cur[p * 9 + 8] == 0) continue;
      PramContext ctx;
      for (int r = 0; r < 8; ++r) ctx.reg[r] = ctx_cur[p * 9 + r];
      values.clear();
      while (cursor < sorted_ans.size() &&
             (sorted_ans[cursor].key >> kSlotBits) == p) {
        values.push_back(sorted_ans[cursor].value);
        ++cursor;
      }
      scratch_writes.clear();
      const bool cont =
          program.compute(step, p, ctx, values, scratch_writes);
      if (scratch_writes.size() > config.max_writes) {
        throw std::runtime_error(
            "em_pram_run: processor exceeded max_writes");
      }
      for (const auto& w : scratch_writes) {
        if (w.addr >= M) {
          throw std::out_of_range("em_pram_run: write address out of range");
        }
        writes.push_back(KeyValue{(w.addr << kPidBits) | p, w.value});
      }
      for (int r = 0; r < 8; ++r) ctx_cur[p * 9 + r] = ctx.reg[r];
      ctx_cur[p * 9 + 8] = cont ? 1 : 0;
      any_active = any_active || cont;
    }
    st.write_requests += writes.size();
    stream_out(ctx_region, ctx_cur, ib, mem_items);

    // --- 4. Apply writes: sort by (addr, pid); highest pid wins. ------------
    auto sorted_wr = em_mergesort_kv(disks, writes, memory_bytes, nullptr,
                                     &alloc);
    for (std::size_t i = 0; i < sorted_wr.size(); ++i) {
      const std::uint64_t addr = sorted_wr[i].key >> kPidBits;
      // Priority CRCW: the last record of an equal-address run carries the
      // highest processor id.
      if (i + 1 == sorted_wr.size() ||
          (sorted_wr[i + 1].key >> kPidBits) != addr) {
        mem_cur[addr] = sorted_wr[i].value;
      }
    }
    stream_out(mem_region, mem_cur, ib, mem_items);

    ++st.steps;
    if (!any_active) break;
  }

  stream_in(mem_region, mem_cur, M, ib, mem_items);
  st.total = disks.stats().since(start);
  return mem_cur;
}

}  // namespace embsp::baseline
