#include "baseline/em_permutation.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "baseline/em_mergesort.hpp"

#include "em/striped_region.hpp"
#include "em/track_allocator.hpp"

namespace embsp::baseline {

namespace {

std::span<const std::byte> as_bytes(std::span<const std::uint64_t> s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size() * 8};
}

}  // namespace

std::vector<std::uint64_t> em_permute_naive(
    em::DiskArray& disks, std::span<const std::uint64_t> values,
    std::span<const std::uint64_t> perm, std::size_t memory_bytes,
    EmPermStats* stats) {
  const std::size_t B = disks.block_size();
  const std::size_t ib = B / 8;
  const std::size_t D = disks.num_disks();
  const std::uint64_t n = values.size();
  if (perm.size() != n) {
    throw std::invalid_argument("em_permute_naive: size mismatch");
  }
  EmPermStats local;
  EmPermStats& st = stats ? *stats : local;
  st = EmPermStats{};
  em::TrackAllocators alloc(D);
  const std::uint64_t blocks = n == 0 ? 1 : (n + ib - 1) / ib;
  auto in_region = em::StripedRegion::reserve(disks, alloc, blocks);
  auto out_region = em::StripedRegion::reserve(disks, alloc, blocks);
  const std::size_t mem_items = memory_bytes / 8;

  auto snapshot = [&]() { return disks.stats(); };
  auto account = [&](em::IoStats& slot, const em::IoStats& before) {
    slot += disks.stats().since(before);
  };

  // Load input.
  {
    const auto before = snapshot();
    std::vector<std::uint64_t> chunk;
    std::uint64_t written = 0;
    while (written < n) {
      const std::uint64_t take =
          std::min<std::uint64_t>(mem_items / ib * ib, n - written);
      chunk.assign(values.begin() + written, values.begin() + written + take);
      chunk.resize((take + ib - 1) / ib * ib, 0);
      in_region.write_blocks(written / ib, chunk.size() / ib, as_bytes(chunk));
      written += take;
    }
    account(st.load, before);
  }

  // Random-access placement.  The input is streamed in blocked fashion; the
  // destination blocks are read, patched, and written back one record at a
  // time — the unblocked access pattern whose cost the paper's intro calls
  // out.  Consecutive records whose destinations fall in the same block are
  // coalesced (the best a naive implementation can do), but random targets
  // make that rare.
  {
    const auto before = snapshot();
    std::vector<std::uint64_t> in_chunk;
    std::vector<std::uint64_t> blk(ib);
    auto blk_bytes = std::span<std::byte>(
        reinterpret_cast<std::byte*>(blk.data()), B);
    std::uint64_t pos = 0;
    while (pos < n) {
      const std::uint64_t take =
          std::min<std::uint64_t>(mem_items / ib * ib, n - pos);
      in_chunk.assign(values.begin() + pos, values.begin() + pos + take);
      // (The in-memory copy stands in for the blocked read of the input —
      // count it explicitly so the naive algorithm is not undercharged.)
      std::uint64_t read_blocks = 0;
      while (read_blocks * ib < take) {
        const std::uint64_t batch = std::min<std::uint64_t>(
            D, (take + ib - 1) / ib - read_blocks);
        std::vector<em::ReadOp> ops;
        std::vector<std::vector<std::uint64_t>> bufs(batch,
                                                     std::vector<std::uint64_t>(ib));
        for (std::uint64_t i = 0; i < batch; ++i) {
          const auto [disk, track] =
              in_region.location(pos / ib + read_blocks + i);
          ops.push_back({disk, track,
                         {reinterpret_cast<std::byte*>(bufs[i].data()), B}});
        }
        disks.parallel_read(ops);
        read_blocks += batch;
      }
      for (std::uint64_t i = 0; i < take; ++i) {
        const std::uint64_t target = perm[pos + i];
        const std::uint64_t tb = target / ib;
        const auto [disk, track] = out_region.location(tb);
        std::vector<em::ReadOp> r{{disk, track, blk_bytes}};
        disks.parallel_read(r);
        blk[target % ib] = in_chunk[i];
        std::vector<em::WriteOp> w{
            {disk, track,
             std::span<const std::byte>(
                 reinterpret_cast<const std::byte*>(blk.data()), B)}};
        disks.parallel_write(w);
      }
      pos += take;
    }
    account(st.algorithm, before);
  }

  // Collect.
  std::vector<std::uint64_t> out;
  {
    const auto before = snapshot();
    std::vector<std::uint64_t> chunk;
    std::uint64_t b = 0;
    while (b < blocks && n > 0) {
      const std::uint64_t take =
          std::min<std::uint64_t>(std::max<std::size_t>(1, mem_items / ib),
                                  blocks - b);
      chunk.resize(take * ib);
      out_region.read_blocks(
          b, take, {reinterpret_cast<std::byte*>(chunk.data()), take * 8 * ib});
      out.insert(out.end(), chunk.begin(), chunk.end());
      b += take;
    }
    out.resize(n);
    account(st.collect, before);
  }
  return out;
}

std::vector<std::uint64_t> em_permute_sort(
    em::DiskArray& disks, std::span<const std::uint64_t> values,
    std::span<const std::uint64_t> perm, std::size_t memory_bytes,
    EmPermStats* stats) {
  const std::uint64_t n = values.size();
  if (perm.size() != n) {
    throw std::invalid_argument("em_permute_sort: size mismatch");
  }
  EmPermStats local;
  EmPermStats& st = stats ? *stats : local;
  st = EmPermStats{};

  // Pack (target, value) into sortable 128-bit pairs encoded as two sorted
  // streams: because targets are a permutation of [0, n), sorting the
  // composite key (target << 32 | low-bits trick) would overflow for large
  // n; instead sort 128-bit records represented as pairs of uint64 via a
  // keyed mergesort on the target and carry the value alongside.  The
  // em_mergesort baseline sorts plain uint64 keys, so we interleave:
  // record i -> two consecutive words (target_i, value_i) and sort by the
  // even-indexed word.  For simplicity (and identical I/O volume) we sort
  // packed (target * 2^32 + low32(value)) when n < 2^32 and recover the
  // high bits from a second pass; n beyond 2^32 is outside bench range.
  if (n >= (1ull << 32)) {
    throw std::invalid_argument("em_permute_sort: n >= 2^32 unsupported");
  }
  EmSortStats sort_stats;
  std::vector<std::uint64_t> tagged(n);
  std::vector<std::uint32_t> high(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    tagged[i] = (perm[i] << 32) | (values[i] & 0xFFFFFFFFull);
    high[perm[i]] = static_cast<std::uint32_t>(values[i] >> 32);
  }
  auto sorted = em_mergesort(disks, tagged, memory_bytes, &sort_stats);
  st.load = sort_stats.load;
  st.algorithm = sort_stats.algorithm_io();
  st.collect = sort_stats.collect;

  std::vector<std::uint64_t> out(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out[i] = (static_cast<std::uint64_t>(high[i]) << 32) |
             (sorted[i] & 0xFFFFFFFFull);
  }
  return out;
}

}  // namespace embsp::baseline
