// Sequential external-memory matrix transpose — Table 1's
//   Theta(G * n/(DB) * log(min(M, r, c, n/B)) / log(M/B))
// row [1].  Implemented as the classical blocked tile transpose: square
// tiles of t x t elements with t a multiple of the per-block item count and
// t^2 <= M are read (row segments, fully blocked), transposed in memory,
// and written to the transposed positions.  One pass when a tile row/column
// fits in memory — the common case for the bench ranges.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "em/disk_array.hpp"
#include "em/io_stats.hpp"

namespace embsp::baseline {

struct EmTransposeStats {
  em::IoStats load;
  em::IoStats algorithm;
  em::IoStats collect;
  std::size_t tile = 0;
};

/// Transposes the row-major `rows x cols` matrix.  Requires rows and cols
/// to be multiples of the per-block item count (B/8) so tile boundaries are
/// block-aligned.
std::vector<std::uint64_t> em_transpose(em::DiskArray& disks,
                                        std::span<const std::uint64_t> matrix,
                                        std::uint64_t rows, std::uint64_t cols,
                                        std::size_t memory_bytes,
                                        EmTransposeStats* stats = nullptr);

}  // namespace embsp::baseline
