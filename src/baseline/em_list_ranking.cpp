#include "baseline/em_list_ranking.hpp"

#include <cmath>
#include <stdexcept>

#include "baseline/em_mergesort.hpp"
#include "em/striped_region.hpp"
#include "em/track_allocator.hpp"

namespace embsp::baseline {

namespace {

std::span<const std::byte> as_bytes(std::span<const std::uint64_t> s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size() * 8};
}

/// Blocked sequential write of a whole array into a region.
void stream_out(em::StripedRegion& region, std::span<const std::uint64_t> a,
                std::size_t ib, std::size_t mem_items) {
  std::vector<std::uint64_t> chunk;
  std::uint64_t written = 0;
  const std::uint64_t n = a.size();
  while (written < n) {
    const std::uint64_t take =
        std::min<std::uint64_t>(mem_items / ib * ib, n - written);
    chunk.assign(a.begin() + written, a.begin() + written + take);
    chunk.resize((take + ib - 1) / ib * ib, 0);
    region.write_blocks(written / ib, chunk.size() / ib, as_bytes(chunk));
    written += take;
  }
}

/// Blocked sequential read of a whole array out of a region.
void stream_in(const em::StripedRegion& region, std::vector<std::uint64_t>& a,
               std::uint64_t n, std::size_t ib, std::size_t mem_items) {
  a.clear();
  a.reserve(n);
  std::vector<std::uint64_t> chunk;
  std::uint64_t read = 0;
  const std::uint64_t blocks = (n + ib - 1) / ib;
  while (read < blocks) {
    const std::uint64_t take = std::min<std::uint64_t>(
        std::max<std::size_t>(1, mem_items / ib), blocks - read);
    chunk.resize(take * ib);
    region.read_blocks(read, take,
                       {reinterpret_cast<std::byte*>(chunk.data()),
                        take * ib * 8});
    a.insert(a.end(), chunk.begin(), chunk.end());
    read += take;
  }
  a.resize(n);
}

}  // namespace

std::vector<std::uint64_t> em_list_ranking(em::DiskArray& disks,
                                           std::span<const std::uint64_t> succ,
                                           std::size_t memory_bytes,
                                           EmListRankStats* stats) {
  const std::uint64_t n = succ.size();
  if (n == 0) return {};
  if (n >= (1ull << 32)) {
    throw std::invalid_argument("em_list_ranking: n >= 2^32 unsupported");
  }
  const std::size_t B = disks.block_size();
  const std::size_t ib = B / 8;
  const std::size_t mem_items = memory_bytes / 8;
  EmListRankStats local;
  EmListRankStats& st = stats ? *stats : local;
  st = EmListRankStats{};
  const auto start = disks.stats();

  em::TrackAllocators alloc(disks.num_disks());
  const std::uint64_t blocks = (n + ib - 1) / ib;
  auto s_region = em::StripedRegion::reserve(disks, alloc, blocks);
  auto r_region = em::StripedRegion::reserve(disks, alloc, blocks);

  // Initialize: S = succ, R[i] = (succ[i] == i) ? 0 : 1.
  {
    std::vector<std::uint64_t> r0(n);
    for (std::uint64_t i = 0; i < n; ++i) r0[i] = succ[i] == i ? 0 : 1;
    stream_out(s_region, succ, ib, mem_items);
    stream_out(r_region, r0, ib, mem_items);
  }

  // NOTE: the driver stages the intermediate streams in memory vectors for
  // orchestration simplicity; every logical disk transfer of the EM
  // algorithm (array scans and the sorts' own passes) is still performed
  // against the disk array and counted.  This matches the standard
  // accounting for PRAM-simulation EM algorithms, whose cost is dominated
  // by the per-round sorts.
  const std::size_t rounds =
      n <= 1 ? 0
             : static_cast<std::size_t>(
                   std::ceil(std::log2(static_cast<double>(n))));
  st.rounds = rounds;

  std::vector<std::uint64_t> s_cur, r_cur, stream;
  for (std::size_t round = 0; round < rounds; ++round) {
    // 1. Scan S producing queries keyed by succ: (S[i] << 32) | i.
    stream_in(s_region, s_cur, n, ib, mem_items);
    stream.resize(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      stream[i] = (s_cur[i] << 32) | i;
    }
    auto sorted_q = em_mergesort(disks, stream, memory_bytes, nullptr, &alloc);

    // 2. Join against index-ordered S and R (scanned once, cursor moves
    //    monotonically because sorted_q is ordered by s).
    stream_in(r_region, r_cur, n, ib, mem_items);
    std::vector<std::uint64_t> a(n), rc(n);
    for (std::uint64_t q = 0; q < n; ++q) {
      const std::uint64_t s = sorted_q[q] >> 32;
      const std::uint64_t i = sorted_q[q] & 0xFFFFFFFFull;
      a[q] = (i << 32) | s_cur[s];
      rc[q] = (i << 32) | r_cur[s];
    }

    // 3. Route answers back to their owners by sorting on i.
    auto sorted_a = em_mergesort(disks, a, memory_bytes, nullptr, &alloc);
    auto sorted_rc = em_mergesort(disks, rc, memory_bytes, nullptr, &alloc);

    // 4. Update: S[i] = succ[succ[i]], R[i] += rank[succ[i]].
    for (std::uint64_t i = 0; i < n; ++i) {
      s_cur[i] = sorted_a[i] & 0xFFFFFFFFull;
      r_cur[i] += sorted_rc[i] & 0xFFFFFFFFull;
    }
    stream_out(s_region, s_cur, ib, mem_items);
    stream_out(r_region, r_cur, ib, mem_items);
  }

  stream_in(r_region, r_cur, n, ib, mem_items);
  st.total = disks.stats().since(start);
  return r_cur;
}

}  // namespace embsp::baseline
