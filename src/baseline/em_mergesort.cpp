#include "baseline/em_mergesort.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <queue>
#include <stdexcept>

#include "em/striped_region.hpp"
#include "em/track_allocator.hpp"

namespace embsp::baseline {

namespace {

/// A sorted run stored in a slice of a striped region, plus the forecasting
/// key of every block (the classical technique: one record per block of
/// metadata, size n/B in total).
template <typename Rec>
struct Run {
  std::uint64_t first_block = 0;  ///< global block index in the region
  std::uint64_t num_blocks = 0;
  std::uint64_t num_items = 0;
  std::vector<Rec> forecast;  ///< first record of each block
};

template <typename Rec>
struct RunCursor {
  const Run<Rec>* run = nullptr;
  std::uint64_t next_block = 0;  ///< blocks fetched so far
  std::vector<Rec> buffer;
  std::size_t buffer_pos = 0;

  [[nodiscard]] bool buffer_empty() const {
    return buffer_pos >= buffer.size();
  }
  [[nodiscard]] std::size_t buffered() const {
    return buffer.size() - buffer_pos;
  }
  [[nodiscard]] bool blocks_left() const {
    return next_block < run->num_blocks;
  }
  [[nodiscard]] bool exhausted() const {
    return buffer_empty() && !blocks_left();
  }
  void append(std::span<const Rec> items) {
    // Compact consumed prefix so the buffer stays small.
    if (buffer_pos > 0) {
      buffer.erase(buffer.begin(),
                   buffer.begin() + static_cast<std::ptrdiff_t>(buffer_pos));
      buffer_pos = 0;
    }
    buffer.insert(buffer.end(), items.begin(), items.end());
  }
};

template <typename Rec>
std::span<const std::byte> as_bytes(std::span<const Rec> s) {
  return {reinterpret_cast<const std::byte*>(s.data()),
          s.size() * sizeof(Rec)};
}

/// The full external mergesort, generic over the record type.  `pad` is a
/// maximal sentinel record used to fill partial blocks; `less` must be a
/// strict total order with pad as its maximum.
template <typename Rec, typename Less>
std::vector<Rec> em_mergesort_impl(em::DiskArray& disks,
                                   std::span<const Rec> input,
                                   std::size_t memory_bytes, Rec pad,
                                   Less less, EmSortStats* stats,
                                   em::TrackAllocators* alloc_in) {
  const std::size_t B = disks.block_size();
  if (B % sizeof(Rec) != 0) {
    throw std::invalid_argument(
        "em_mergesort: block size must be a multiple of the record size");
  }
  const std::size_t ib = B / sizeof(Rec);  // items per block
  const std::size_t D = disks.num_disks();
  const std::size_t mem_items = memory_bytes / sizeof(Rec);
  if (mem_items < 2 * ib * D) {
    throw std::invalid_argument(
        "em_mergesort: memory must hold at least two blocks per disk");
  }
  const std::uint64_t n = input.size();
  EmSortStats local_stats;
  EmSortStats& st = stats ? *stats : local_stats;
  st = EmSortStats{};

  em::TrackAllocators own_alloc(D);
  em::TrackAllocators& alloc = alloc_in ? *alloc_in : own_alloc;
  const std::uint64_t total_blocks = n == 0 ? 1 : (n + ib - 1) / ib;

  auto snapshot = [&]() { return disks.stats(); };
  auto account = [&](em::IoStats& slot, const em::IoStats& before) {
    slot += disks.stats().since(before);
  };

  // --- Load: place the unsorted input on disk (striped). ------------------
  auto in_region = em::StripedRegion::reserve(disks, alloc, total_blocks);
  {
    const auto before = snapshot();
    std::vector<Rec> chunk;
    std::uint64_t written = 0;
    while (written < n) {
      const std::uint64_t take =
          std::min<std::uint64_t>(mem_items / ib * ib, n - written);
      chunk.assign(input.begin() + written, input.begin() + written + take);
      chunk.resize((take + ib - 1) / ib * ib, pad);
      in_region.write_blocks(written / ib, chunk.size() / ib,
                             as_bytes<Rec>(chunk));
      written += take;
    }
    account(st.load, before);
  }
  if (n == 0) return {};

  // --- Pass 0: run formation. ---------------------------------------------
  auto region_a = em::StripedRegion::reserve(disks, alloc, total_blocks);
  auto region_b = em::StripedRegion::reserve(disks, alloc, total_blocks);
  std::vector<Run<Rec>> runs;
  {
    const auto before = snapshot();
    std::vector<Rec> chunk;
    std::uint64_t block = 0;
    std::uint64_t item = 0;
    while (item < n) {
      const std::uint64_t take =
          std::min<std::uint64_t>(mem_items / ib * ib, n - item);
      const std::uint64_t blocks = (take + ib - 1) / ib;
      chunk.resize(blocks * ib);
      in_region.read_blocks(
          block, blocks,
          {reinterpret_cast<std::byte*>(chunk.data()), blocks * B});
      chunk.resize(take);
      std::sort(chunk.begin(), chunk.end(), less);
      chunk.resize(blocks * ib, pad);
      region_a.write_blocks(block, blocks, as_bytes<Rec>(chunk));
      Run<Rec> run;
      run.first_block = block;
      run.num_blocks = blocks;
      run.num_items = take;
      for (std::uint64_t b = 0; b < blocks; ++b) {
        run.forecast.push_back(chunk[b * ib]);
      }
      runs.push_back(std::move(run));
      block += blocks;
      item += take;
    }
    account(st.run_formation, before);
  }
  st.initial_runs = runs.size();

  // --- Merge passes (forecasting keeps all D drives busy). -----------------
  const std::size_t fan_in = std::max<std::size_t>(
      2, mem_items / ib >= 2 * D + 2 ? mem_items / ib - 2 * D : 2);
  st.fan_in = fan_in;

  em::StripedRegion* src = &region_a;
  em::StripedRegion* dst = &region_b;

  const auto merge_before = snapshot();
  while (runs.size() > 1) {
    ++st.merge_passes;
    std::vector<Run<Rec>> next_runs;
    std::uint64_t out_block = 0;
    for (std::size_t g = 0; g < runs.size(); g += fan_in) {
      const std::size_t gend = std::min(runs.size(), g + fan_in);
      std::vector<RunCursor<Rec>> cursors;
      for (std::size_t r = g; r < gend; ++r) {
        cursors.push_back(RunCursor<Rec>{&runs[r], 0, {}, 0});
      }

      Run<Rec> merged;
      merged.first_block = out_block;
      std::vector<Rec> out_buf;
      out_buf.reserve(ib * D + ib);

      auto flush_out = [&](bool final_flush) {
        while (out_buf.size() >= ib * D || (final_flush && !out_buf.empty())) {
          const std::uint64_t blocks =
              std::min<std::uint64_t>(D, (out_buf.size() + ib - 1) / ib);
          std::vector<Rec> tmp(
              out_buf.begin(),
              out_buf.begin() +
                  std::min<std::size_t>(out_buf.size(), blocks * ib));
          out_buf.erase(out_buf.begin(), out_buf.begin() + tmp.size());
          tmp.resize(blocks * ib, pad);
          for (std::uint64_t b = 0; b < blocks; ++b) {
            merged.forecast.push_back(tmp[b * ib]);
          }
          dst->write_blocks(out_block, blocks, as_bytes<Rec>(tmp));
          out_block += blocks;
          merged.num_blocks += blocks;
          if (!final_flush) break;
        }
      };

      constexpr std::size_t kPrefetch = 2;
      auto refill = [&]() {
        for (;;) {
          std::vector<std::size_t> urgent;
          std::vector<std::size_t> candidates;
          for (std::size_t c = 0; c < cursors.size(); ++c) {
            if (!cursors[c].blocks_left()) continue;
            if (cursors[c].buffer_empty()) {
              urgent.push_back(c);
            } else if (cursors[c].buffered() < kPrefetch * ib) {
              candidates.push_back(c);
            }
          }
          if (urgent.empty()) return;
          auto by_forecast = [&](std::size_t a, std::size_t b) {
            return less(cursors[a].run->forecast[cursors[a].next_block],
                        cursors[b].run->forecast[cursors[b].next_block]);
          };
          std::sort(urgent.begin(), urgent.end(), by_forecast);
          std::sort(candidates.begin(), candidates.end(), by_forecast);
          std::vector<std::uint8_t> disk_used(D, 0);
          std::vector<em::ReadOp> ops;
          std::vector<std::pair<std::size_t, std::vector<Rec>>> fills;
          auto try_add = [&](std::size_t c) {
            const std::uint64_t gblock =
                cursors[c].run->first_block + cursors[c].next_block;
            const auto [disk, track] = src->location(gblock);
            if (disk_used[disk]) return;
            disk_used[disk] = 1;
            fills.emplace_back(c, std::vector<Rec>(ib));
            ops.push_back(
                {disk, track,
                 {reinterpret_cast<std::byte*>(fills.back().second.data()),
                  B}});
          };
          for (std::size_t c : urgent) {
            if (ops.size() == D) break;
            try_add(c);
          }
          for (std::size_t c : candidates) {
            if (ops.size() == D) break;
            try_add(c);
          }
          disks.parallel_read(ops);
          for (auto& [c, data] : fills) {
            auto& cur = cursors[c];
            const std::uint64_t base = cur.next_block * ib;
            const std::uint64_t remain = cur.run->num_items - base;
            data.resize(std::min<std::uint64_t>(ib, remain));
            cur.append(data);
            ++cur.next_block;
          }
        }
      };

      struct HeapLess {
        Less less;
        const std::vector<RunCursor<Rec>>* cursors;
        bool operator()(std::size_t a, std::size_t b) const {
          // Max-heap by default: invert for a min-heap over head records.
          return less((*cursors)[b].buffer[(*cursors)[b].buffer_pos],
                      (*cursors)[a].buffer[(*cursors)[a].buffer_pos]);
        }
      };
      std::priority_queue<std::size_t, std::vector<std::size_t>, HeapLess>
          heap(HeapLess{less, &cursors});
      refill();
      for (std::size_t c = 0; c < cursors.size(); ++c) {
        if (!cursors[c].exhausted()) heap.push(c);
      }
      while (!heap.empty()) {
        const std::size_t c = heap.top();
        heap.pop();
        auto& cur = cursors[c];
        out_buf.push_back(cur.buffer[cur.buffer_pos]);
        merged.num_items += 1;
        ++cur.buffer_pos;
        if (cur.buffer_empty() && cur.blocks_left()) refill();
        if (!cur.exhausted()) heap.push(c);
        if (out_buf.size() >= ib * D) flush_out(false);
      }
      flush_out(true);
      next_runs.push_back(std::move(merged));
    }
    runs = std::move(next_runs);
    std::swap(src, dst);
  }
  account(st.merge, merge_before);

  // --- Collect the final run back into memory. -----------------------------
  std::vector<Rec> out_items;
  {
    const auto before = snapshot();
    const Run<Rec>& final_run = runs.front();
    std::vector<Rec> chunk;
    std::uint64_t b = 0;
    const std::uint64_t batch_blocks =
        std::max<std::uint64_t>(1, mem_items / ib);
    while (b < final_run.num_blocks) {
      const std::uint64_t take =
          std::min<std::uint64_t>(batch_blocks, final_run.num_blocks - b);
      chunk.resize(take * ib);
      src->read_blocks(
          final_run.first_block + b, take,
          {reinterpret_cast<std::byte*>(chunk.data()), take * B});
      out_items.insert(out_items.end(), chunk.begin(), chunk.end());
      b += take;
    }
    out_items.resize(n);  // drop padding
    account(st.collect, before);
  }
  return out_items;
}

}  // namespace

std::vector<std::uint64_t> em_mergesort(em::DiskArray& disks,
                                        std::span<const std::uint64_t> input,
                                        std::size_t memory_bytes,
                                        EmSortStats* stats,
                                        em::TrackAllocators* alloc_in) {
  return em_mergesort_impl<std::uint64_t>(
      disks, input, memory_bytes, UINT64_MAX, std::less<std::uint64_t>{},
      stats, alloc_in);
}

std::vector<KeyValue> em_mergesort_kv(em::DiskArray& disks,
                                      std::span<const KeyValue> input,
                                      std::size_t memory_bytes,
                                      EmSortStats* stats,
                                      em::TrackAllocators* alloc_in) {
  auto less = [](const KeyValue& a, const KeyValue& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.value < b.value;
  };
  return em_mergesort_impl<KeyValue>(disks, input, memory_bytes,
                                     KeyValue{UINT64_MAX, UINT64_MAX}, less,
                                     stats, alloc_in);
}

double em_sort_predicted_ios(std::uint64_t n, std::size_t memory_bytes,
                             std::size_t num_disks, std::size_t block_bytes) {
  const double ib = static_cast<double>(block_bytes) / 8.0;
  const double blocks = std::ceil(static_cast<double>(n) / ib);
  const double mb =
      static_cast<double>(memory_bytes) / static_cast<double>(block_bytes);
  const double runs = std::ceil(static_cast<double>(n) /
                                (static_cast<double>(memory_bytes) / 8.0));
  const double passes =
      runs <= 1 ? 0.0
                : std::ceil(std::log(runs) / std::log(std::max(2.0, mb)));
  return 2.0 * blocks / static_cast<double>(num_disks) * (1.0 + passes);
}

}  // namespace embsp::baseline
