// General PRAM-to-EM simulation framework — the Chiang et al. [14]
// technique the paper's §2.1 reviews:
//
//   "Chiang et al. explored simulation of PRAM algorithms as a source of
//    new EM techniques.  Their approach involves an EM sort with every
//    PRAM step."
//
// A synchronous priority-CRCW PRAM with P processors and a shared memory
// of 64-bit cells is simulated on the disk substrate; each PRAM step costs
// O(sort(#requests)) I/Os:
//
//   1. scan the register files, collect read requests (addr, pid, slot);
//   2. EM-sort the requests by address; merge-join against a sequential
//      scan of the memory array; EM-sort the answers back by (pid, slot);
//   3. scan registers + answers, run each processor's compute function,
//      collect write requests;
//   4. EM-sort the writes by (addr, pid) and merge-apply against the
//      memory scan — the highest processor id wins a conflict (priority
//      CRCW), deterministically.
//
// This is the *general* predecessor technique; baseline::em_list_ranking
// is its hand-specialized instance, and bench/table1_group_c compares both
// against the paper's EM-CGM algorithms.  As in em_list_ranking, the
// orchestration stages streams in memory vectors for simplicity, but every
// logical disk transfer (array scans + the sorts' passes) is performed
// against the disk array and counted.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "em/disk_array.hpp"
#include "em/io_stats.hpp"

namespace embsp::baseline {

struct PramContext {
  std::array<std::uint64_t, 8> reg{};  ///< per-processor registers
  std::uint8_t active = 1;
};

struct PramWrite {
  std::uint64_t addr;
  std::uint64_t value;
};

/// A synchronous PRAM program.  Each step, every active processor first
/// plans its reads (addresses may depend on registers but not on this
/// step's reads), then computes on the fetched values and issues writes.
class PramProgram {
 public:
  virtual ~PramProgram() = default;

  /// Append the cell addresses to read this step (at most
  /// PramConfig::max_reads).
  virtual void plan_reads(std::uint64_t step, std::uint64_t pid,
                          const PramContext& ctx,
                          std::vector<std::uint64_t>& addrs) const = 0;

  /// `values[i]` is the content of the i-th planned address.  Returns true
  /// to stay active next step; an all-inactive step ends the run.
  virtual bool compute(std::uint64_t step, std::uint64_t pid,
                       PramContext& ctx,
                       std::span<const std::uint64_t> values,
                       std::vector<PramWrite>& writes) const = 0;
};

struct PramConfig {
  std::uint64_t num_procs = 1;
  std::uint64_t memory_cells = 1;
  std::size_t max_reads = 2;
  std::size_t max_writes = 2;
  std::size_t max_steps = 1 << 20;
};

struct EmPramStats {
  em::IoStats total;
  std::size_t steps = 0;
  std::uint64_t read_requests = 0;
  std::uint64_t write_requests = 0;
};

/// Runs the program until every processor is inactive; returns the final
/// shared memory.  Requires memory_cells < 2^40 and num_procs < 2^20
/// (request keys are packed into 64 bits).
std::vector<std::uint64_t> em_pram_run(em::DiskArray& disks,
                                       const PramProgram& program,
                                       const PramConfig& config,
                                       std::span<const std::uint64_t> memory,
                                       std::size_t memory_bytes,
                                       EmPramStats* stats = nullptr);

}  // namespace embsp::baseline
