// Sequential external-memory permutation — Table 1's
//   Theta(G * min(n/D, n/(DB) * log_{M/B}(n/B)))
// row [1], [33].  Two classical strategies:
//
//  * naive     — random access: stream the input; for every record, read the
//    destination block, place the record, write the block back.  ~2 I/Os per
//    record (batched opportunistically over distinct disks), i.e. the n/D
//    branch of the min.
//  * sort-based — tag each record with its destination index and run the
//    I/O-optimal mergesort on (destination, value) pairs: the sort branch.
//
// The crossover between the two is precisely what the n/D-vs-sort min in
// Table 1 expresses; bench/table1_group_a measures both.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "em/disk_array.hpp"
#include "em/io_stats.hpp"

namespace embsp::baseline {

struct EmPermStats {
  em::IoStats load;
  em::IoStats algorithm;
  em::IoStats collect;
};

/// output[perm[i]] = values[i], via per-record random disk access.
std::vector<std::uint64_t> em_permute_naive(
    em::DiskArray& disks, std::span<const std::uint64_t> values,
    std::span<const std::uint64_t> perm, std::size_t memory_bytes,
    EmPermStats* stats = nullptr);

/// output[perm[i]] = values[i], via external mergesort on (target, value).
std::vector<std::uint64_t> em_permute_sort(
    em::DiskArray& disks, std::span<const std::uint64_t> values,
    std::span<const std::uint64_t> perm, std::size_t memory_bytes,
    EmPermStats* stats = nullptr);

}  // namespace embsp::baseline
