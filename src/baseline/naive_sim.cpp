#include "baseline/naive_sim.hpp"

#include <cstring>

namespace embsp::baseline {

NaiveSimulator::NaiveSimulator(NaiveSimConfig cfg) : cfg_(cfg) {
  if (cfg_.v == 0 || cfg_.B == 0 || cfg_.mu == 0 || cfg_.cell_bytes == 0) {
    throw std::invalid_argument("NaiveSimulator: invalid configuration");
  }
  disks_ = std::make_unique<em::DiskArray>(cfg_.D, cfg_.B);
  ctx_blocks_ = (cfg_.mu + 4 + cfg_.B - 1) / cfg_.B;
  cell_blocks_ = (cfg_.cell_bytes + 16 + cfg_.B - 1) / cfg_.B;
}

std::pair<std::uint32_t, std::uint64_t> NaiveSimulator::place(
    std::uint64_t global_block) const {
  // Blocks are laid out round-robin across drives, but accesses below never
  // batch two drives into one I/O — the naive design is oblivious to disk
  // parallelism.
  return {static_cast<std::uint32_t>(global_block % cfg_.D),
          global_block / cfg_.D};
}

void NaiveSimulator::read_region(std::uint64_t start_block,
                                 std::size_t nblocks,
                                 std::vector<std::byte>& out) {
  out.resize(nblocks * cfg_.B);
  for (std::size_t b = 0; b < nblocks; ++b) {
    const auto [disk, track] = place(start_block + b);
    em::ReadOp op{disk, track,
                  std::span<std::byte>(out).subspan(b * cfg_.B, cfg_.B)};
    disks_->parallel_read({&op, 1});
  }
}

void NaiveSimulator::write_region(std::uint64_t start_block,
                                  std::span<const std::byte> data) {
  const std::size_t nblocks = data.size() / cfg_.B;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const auto [disk, track] = place(start_block + b);
    em::WriteOp op{disk, track, data.subspan(b * cfg_.B, cfg_.B)};
    disks_->parallel_write({&op, 1});
  }
}

}  // namespace embsp::baseline
