#include "util/table.hpp"

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace embsp::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) out << "  ";
    }
    out << '\n';
  };
  emit(header_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    if (c + 1 < widths.size()) rule.append("  ");
  }
  out << rule << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fmt_double(double v, int prec) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(prec) << v;
  return out.str();
}

std::string fmt_ratio(double v) {
  std::ostringstream out;
  out << "x" << std::fixed << std::setprecision(2) << v;
  return out.str();
}

std::string fmt_bytes(std::uint64_t n) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(n);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  std::ostringstream out;
  out << std::fixed << std::setprecision(unit == 0 ? 0 : 1) << v << ' '
      << kUnits[unit];
  return out.str();
}

}  // namespace embsp::util
