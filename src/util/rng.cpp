#include "util/rng.hpp"

// Header-only; see rng.hpp.
