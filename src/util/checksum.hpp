// 64-bit block checksums for the disk substrate's integrity envelopes.
//
// The fault model (em/fault_backend.hpp) includes silent bit-rot: a backend
// may return data that differs from what was written without reporting an
// error.  Disks optionally keep one 64-bit checksum per track and verify it
// on every read, turning silent corruption into a classified IoError that
// the retry machinery can act on.
//
// In-house implementation (no external deps): FNV-1a over 8-byte lanes with
// an xxhash-style avalanche finalizer.  Collision quality is far beyond
// what single-bit-flip detection needs, and the 8-byte inner loop keeps the
// cost per block well below the memcpy the transfer already paid for.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace embsp::util {

/// Checksum of an arbitrary byte range.  Deterministic across platforms of
/// the same endianness (the simulators only ever compare sums computed in
/// the same process, so endianness never observable).
[[nodiscard]] std::uint64_t checksum64(std::span<const std::byte> data);

/// Streaming form of checksum64 for data that is only available as a
/// sequence of fragments (e.g. the net tier checksumming a frame payload it
/// sends as gathered iovecs).  The total length must be declared up front —
/// checksum64 folds the length into the seed — and the concatenation of the
/// update() fragments must supply exactly that many bytes.  For any
/// fragmentation, finish() equals checksum64 over the concatenated bytes.
class ChecksumStream {
 public:
  explicit ChecksumStream(std::size_t total_size);

  void update(std::span<const std::byte> data);
  [[nodiscard]] std::uint64_t finish() const;

 private:
  std::uint64_t h_;
  /// Carry for a partial 8-byte lane spanning fragment boundaries.
  std::byte lane_[8];
  std::size_t lane_fill_ = 0;
};

/// Final avalanche mix — exposed for tests and for composing sums.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace embsp::util
