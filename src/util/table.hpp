// Plain-text table rendering for the benchmark harnesses.
//
// Every bench binary prints rows in the style of the paper's Table 1:
// problem, parameters, measured cost, predicted cost, ratio.  A tiny
// column-aligned renderer keeps that output readable without pulling in a
// formatting library.
#pragma once

#include <string>
#include <vector>

namespace embsp::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Add one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with column alignment, a header underline, and 2-space gutters.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers used by the benches.
std::string fmt_count(std::uint64_t n);     // 1234567 -> "1,234,567"
std::string fmt_double(double v, int prec); // fixed precision
std::string fmt_ratio(double v);            // "x12.3" style
std::string fmt_bytes(std::uint64_t n);     // "4.0 MiB"

}  // namespace embsp::util
