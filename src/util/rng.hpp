// Deterministic random number generation for the simulators.
//
// Every randomized decision in the paper (random disk permutations in
// Algorithm 1 step 1(d), random intermediate processors in Algorithm 3 step
// 1(c)) must be reproducible for testing, so all randomness flows through an
// explicitly seeded engine owned by the caller.
#pragma once

#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

namespace embsp::util {

/// SplitMix64: tiny, fast, and good enough for load-balancing decisions.
/// Chosen over std::mt19937_64 on the simulator hot path because a random
/// permutation of D disks is drawn for *every* write cycle.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound).  Uses Lemire's multiply-shift reduction; the
  /// slight modulo bias of the plain approach is irrelevant here but this is
  /// just as cheap.
  std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Fisher–Yates shuffle of [0, n) written into `out` (resized).
  void permutation(std::size_t n, std::vector<std::uint32_t>& out) {
    out.resize(n);
    std::iota(out.begin(), out.end(), 0u);
    for (std::size_t i = n; i > 1; --i) {
      const auto j = static_cast<std::size_t>(below(i));
      std::swap(out[i - 1], out[j]);
    }
  }

  /// Derive an independent child stream (for per-processor engines in the
  /// parallel simulator).
  Rng fork(std::uint64_t salt) { return Rng(next() ^ (salt * 0xd1342543de82ef95ULL)); }

  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Raw engine state, for checkpoint/restore.  A stream restored with
  /// set_raw_state() continues exactly where raw_state() captured it, so a
  /// resumed simulation draws the same sequence an uninterrupted one would.
  [[nodiscard]] std::uint64_t raw_state() const { return state_; }
  void set_raw_state(std::uint64_t s) { state_ = s; }

 private:
  std::uint64_t state_;
};

}  // namespace embsp::util
