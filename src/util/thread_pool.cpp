#include "util/thread_pool.hpp"

#include <condition_variable>
#include <cstdint>
#include <limits>
#include <mutex>
#include <thread>

namespace embsp::util {

struct ComputePool::Impl {
  std::mutex m;
  std::condition_variable work_cv;  // workers wait for a job
  std::condition_variable done_cv;  // run() waits for the job to finish
  const std::function<void(std::size_t)>* fn = nullptr;  // guarded by m
  std::size_t count = 0;     // guarded by m
  std::size_t next = 0;      // guarded by m
  std::size_t active = 0;    // workers currently inside fn; guarded by m
  bool stop = false;         // guarded by m
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;  // lowest-index exception; guarded by m
  std::vector<std::thread> threads;

  void record_error(std::size_t index, std::exception_ptr e) {
    // caller holds m
    if (index < error_index) {
      error_index = index;
      error = std::move(e);
    }
  }

  void worker_loop() {
    std::unique_lock<std::mutex> lock(m);
    for (;;) {
      work_cv.wait(lock, [&] { return stop || (fn != nullptr && next < count); });
      if (stop) return;
      while (fn != nullptr && next < count) {
        const std::size_t i = next++;
        ++active;
        const auto* f = fn;
        lock.unlock();
        std::exception_ptr e;
        try {
          (*f)(i);
        } catch (...) {
          e = std::current_exception();
        }
        lock.lock();
        if (e != nullptr) record_error(i, std::move(e));
        --active;
      }
      if (next >= count && active == 0) done_cv.notify_all();
    }
  }
};

ComputePool::ComputePool(std::size_t extra_threads) : threads_(extra_threads) {
  if (extra_threads == 0) return;
  impl_ = new Impl;
  impl_->threads.reserve(extra_threads);
  for (std::size_t t = 0; t < extra_threads; ++t) {
    impl_->threads.emplace_back([this] { impl_->worker_loop(); });
  }
}

ComputePool::~ComputePool() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (auto& t : impl_->threads) t.join();
  delete impl_;
}

void ComputePool::run(std::size_t count,
                      const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // No workers (extra_threads == 0, i.e. compute_threads == 1) or a single
  // task: execute entirely on the calling thread.  No locks are taken and
  // no worker is woken, so a width-1 "pool" is exactly the sequential loop.
  if (impl_ == nullptr || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  Impl& s = *impl_;
  {
    std::lock_guard<std::mutex> lock(s.m);
    s.fn = &fn;
    s.count = count;
    s.next = 0;
    s.error_index = std::numeric_limits<std::size_t>::max();
    s.error = nullptr;
  }
  s.work_cv.notify_all();
  // The caller participates until the cursor runs dry...
  for (;;) {
    std::size_t i;
    {
      std::lock_guard<std::mutex> lock(s.m);
      if (s.next >= count) break;
      i = s.next++;
    }
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(s.m);
      s.record_error(i, std::current_exception());
    }
  }
  // ...then waits for the workers still inside fn.
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(s.m);
    s.done_cv.wait(lock, [&] { return s.active == 0 && s.next >= count; });
    s.fn = nullptr;
    error = std::move(s.error);
    s.error = nullptr;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace embsp::util
