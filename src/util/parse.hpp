// Strict numeric parsing for command-line values.
//
// std::stoul-family parsing has two failure modes that make bad CLI input
// dangerous: it throws (an uncaught std::invalid_argument aborts the
// process with a stack trace instead of a usage message), and it silently
// accepts trailing garbage ("10x" parses as 10).  These helpers consume
// the ENTIRE string or return nullopt, and never throw — the caller turns
// nullopt into a diagnostic naming the flag.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace embsp::util {

/// Base-10 unsigned parse of the whole string; nullopt on empty input,
/// sign characters, non-digits, trailing garbage, or overflow.
std::optional<std::uint64_t> parse_u64(std::string_view s);

/// Like parse_u64 but additionally rejects values above `max`.
std::optional<std::uint64_t> parse_u64_max(std::string_view s,
                                           std::uint64_t max);

/// Finite decimal parse of the whole string; nullopt on empty input,
/// trailing garbage, nan/inf, or out-of-range magnitudes.
std::optional<double> parse_f64(std::string_view s);

}  // namespace embsp::util
