#include "util/checksum.hpp"

#include <cstring>

namespace embsp::util {

std::uint64_t checksum64(std::span<const std::byte> data) {
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;  // FNV-1a basis
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;        // FNV-1a prime
  std::uint64_t h = kOffset ^ (data.size() * kPrime);
  std::size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    std::uint64_t lane;
    std::memcpy(&lane, data.data() + i, 8);
    h = (h ^ mix64(lane)) * kPrime;
  }
  for (; i < data.size(); ++i) {
    h = (h ^ static_cast<std::uint8_t>(data[i])) * kPrime;
  }
  return mix64(h);
}

}  // namespace embsp::util
