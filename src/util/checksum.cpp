#include "util/checksum.hpp"

#include <cstring>

namespace embsp::util {

namespace {
constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;  // FNV-1a basis
constexpr std::uint64_t kPrime = 0x100000001b3ULL;        // FNV-1a prime
}  // namespace

std::uint64_t checksum64(std::span<const std::byte> data) {
  std::uint64_t h = kOffset ^ (data.size() * kPrime);
  std::size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    std::uint64_t lane;
    std::memcpy(&lane, data.data() + i, 8);
    h = (h ^ mix64(lane)) * kPrime;
  }
  for (; i < data.size(); ++i) {
    h = (h ^ static_cast<std::uint8_t>(data[i])) * kPrime;
  }
  return mix64(h);
}

ChecksumStream::ChecksumStream(std::size_t total_size)
    : h_(kOffset ^ (total_size * kPrime)) {}

void ChecksumStream::update(std::span<const std::byte> data) {
  std::size_t i = 0;
  if (lane_fill_ > 0) {
    while (lane_fill_ < 8 && i < data.size()) lane_[lane_fill_++] = data[i++];
    if (lane_fill_ < 8) return;
    std::uint64_t lane;
    std::memcpy(&lane, lane_, 8);
    h_ = (h_ ^ mix64(lane)) * kPrime;
    lane_fill_ = 0;
  }
  for (; i + 8 <= data.size(); i += 8) {
    std::uint64_t lane;
    std::memcpy(&lane, data.data() + i, 8);
    h_ = (h_ ^ mix64(lane)) * kPrime;
  }
  for (; i < data.size(); ++i) lane_[lane_fill_++] = data[i];
}

std::uint64_t ChecksumStream::finish() const {
  // Trailing bytes (< one lane) use the byte-at-a-time tail fold, exactly
  // as checksum64 does for a contiguous buffer.
  std::uint64_t h = h_;
  for (std::size_t i = 0; i < lane_fill_; ++i) {
    h = (h ^ static_cast<std::uint8_t>(lane_[i])) * kPrime;
  }
  return mix64(h);
}

}  // namespace embsp::util
