#include "util/workloads.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace embsp::util {

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng.next();
  return keys;
}

std::vector<std::uint64_t> random_permutation(std::size_t n,
                                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::uint64_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.below(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::vector<Point2D> random_points_2d(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point2D> pts(n);
  for (auto& p : pts) p = {rng.uniform01(), rng.uniform01()};
  return pts;
}

std::vector<Point3D> random_points_3d(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point3D> pts(n);
  for (auto& p : pts) p = {rng.uniform01(), rng.uniform01(), rng.uniform01()};
  return pts;
}

std::vector<Segment2D> random_disjoint_segments(std::size_t n,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Segment2D> segs(n);
  // One horizontal band per segment guarantees non-intersection; the band
  // order is shuffled so y is uncorrelated with the index.
  std::vector<std::uint32_t> bands;
  rng.permutation(n, bands);
  const double band_h = 1.0 / static_cast<double>(n == 0 ? 1 : n);
  for (std::size_t i = 0; i < n; ++i) {
    const double y0 = bands[i] * band_h;
    double xa = rng.uniform01();
    double xb = rng.uniform01();
    if (xa > xb) std::swap(xa, xb);
    if (xb - xa < 1e-9) xb = xa + 1e-9;  // avoid degenerate verticals
    const double ya = y0 + 0.1 * band_h + 0.3 * band_h * rng.uniform01();
    const double yb = y0 + 0.1 * band_h + 0.3 * band_h * rng.uniform01();
    segs[i] = {xa, ya, xb, yb};
  }
  return segs;
}

std::vector<Segment2D> random_segments(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Segment2D> segs(n);
  for (auto& s : segs) {
    double xa = rng.uniform01(), xb = rng.uniform01();
    if (xa > xb) std::swap(xa, xb);
    if (xb - xa < 1e-6) xb = xa + 1e-6;
    s = {xa, rng.uniform01(), xb, rng.uniform01()};
  }
  return segs;
}

std::pair<std::vector<std::uint64_t>, std::uint64_t> random_list(
    std::size_t n, std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("random_list: n must be > 0");
  auto order = random_permutation(n, seed);
  std::vector<std::uint64_t> succ(n);
  for (std::size_t i = 0; i + 1 < n; ++i) succ[order[i]] = order[i + 1];
  succ[order[n - 1]] = order[n - 1];  // tail self-loop
  return {std::move(succ), order[0]};
}

std::vector<std::uint64_t> random_tree(std::size_t n, std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("random_tree: n must be > 0");
  Rng rng(seed);
  // Build on a random labeling so node 0 is not structurally special.
  auto label = random_permutation(n, seed ^ 0xabcdef12345ULL);
  std::vector<std::uint64_t> parent(n);
  parent[label[0]] = label[0];
  for (std::size_t i = 1; i < n; ++i) {
    const auto j = static_cast<std::size_t>(rng.below(i));
    parent[label[i]] = label[j];
  }
  return parent;
}

std::vector<Edge> random_graph(std::size_t n, std::size_t m,
                               std::uint64_t seed) {
  if (n < 2 && m > 0) throw std::invalid_argument("random_graph: n too small");
  Rng rng(seed);
  std::unordered_set<std::uint64_t> used;
  std::vector<Edge> edges;
  edges.reserve(m);
  while (edges.size() < m) {
    auto u = rng.below(n);
    auto v = rng.below(n);
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const std::uint64_t key = u * n + v;
    if (used.insert(key).second) edges.push_back({u, v});
  }
  return edges;
}

std::pair<std::vector<Edge>, std::vector<std::uint64_t>>
random_components_graph(std::size_t n, std::size_t k, std::size_t extra_edges,
                        std::uint64_t seed) {
  if (k == 0 || k > n) {
    throw std::invalid_argument("random_components_graph: need 0 < k <= n");
  }
  Rng rng(seed);
  // Assign each vertex a component (every component gets at least one
  // vertex: the first k vertices of a random permutation seed them).
  auto order = random_permutation(n, seed ^ 0x5eedULL);
  std::vector<std::uint64_t> comp(n);
  std::vector<std::vector<std::uint64_t>> members(k);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t c = (i < k) ? i : rng.below(k);
    comp[order[i]] = c;
    members[c].push_back(order[i]);
  }
  std::vector<Edge> edges;
  // Spanning tree inside each component.
  for (const auto& vs : members) {
    for (std::size_t i = 1; i < vs.size(); ++i) {
      const auto j = static_cast<std::size_t>(rng.below(i));
      edges.push_back({vs[j], vs[i]});
    }
  }
  // Extra intra-component edges.
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < extra_edges && attempts < extra_edges * 20 + 100) {
    ++attempts;
    const auto c = static_cast<std::size_t>(rng.below(k));
    const auto& vs = members[c];
    if (vs.size() < 2) continue;
    const auto a = vs[rng.below(vs.size())];
    const auto b = vs[rng.below(vs.size())];
    if (a == b) continue;
    edges.push_back({a, b});
    ++added;
  }
  return {std::move(edges), std::move(comp)};
}

std::vector<Rect> random_rects(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Rect> rects(n);
  for (auto& r : rects) {
    double xa = rng.uniform01(), xb = rng.uniform01();
    double ya = rng.uniform01(), yb = rng.uniform01();
    if (xa > xb) std::swap(xa, xb);
    if (ya > yb) std::swap(ya, yb);
    r = {xa, ya, xb + 1e-9, yb + 1e-9};
  }
  return rects;
}

}  // namespace embsp::util
