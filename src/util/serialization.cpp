#include "util/serialization.hpp"

// All of Writer/Reader is header-only; this TU exists so the module has a
// home for future out-of-line helpers and to keep the build graph uniform.
