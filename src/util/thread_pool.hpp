// A small persistent pool for the simulators' parallel compute phase.
//
// run(count, fn) executes fn(0..count-1) across the pool's threads *plus
// the calling thread*, pulling indices from a shared cursor.  This is
// deliberately minimal — the k superstep() calls of one group are coarse,
// independent tasks (each owns its state/inbox/outbox), so a mutex-guarded
// cursor is plenty and keeps the pool trivially race-clean under TSan.
//
// Determinism: fn must only touch per-index data; the simulators aggregate
// costs from a per-index result slot afterwards, in index order, so the
// numbers (and any overflow/validation error raised during aggregation)
// are independent of the execution interleaving.  If multiple fn calls
// throw, run() rethrows the LOWEST index's exception after every task has
// settled — the same error the sequential loop would have surfaced first.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <vector>

namespace embsp::util {

class ComputePool {
 public:
  /// Spawns `extra_threads` workers; run() additionally uses the caller,
  /// so total parallelism is extra_threads + 1.  0 = run() executes inline.
  explicit ComputePool(std::size_t extra_threads);
  ~ComputePool();

  ComputePool(const ComputePool&) = delete;
  ComputePool& operator=(const ComputePool&) = delete;

  void run(std::size_t count, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t width() const { return threads_ + 1; }

 private:
  struct Impl;
  Impl* impl_ = nullptr;  // null when extra_threads == 0
  std::size_t threads_ = 0;
};

}  // namespace embsp::util
