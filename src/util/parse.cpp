#include "util/parse.hpp"

#include <charconv>
#include <cmath>

namespace embsp::util {

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  // from_chars already rejects '-' for unsigned types but accepts nothing
  // else we need to pre-filter; an explicit '+' is rejected too, keeping
  // the accepted grammar exactly [0-9]+.
  if (s.front() == '+' || s.front() == '-') return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_u64_max(std::string_view s,
                                           std::uint64_t max) {
  const auto v = parse_u64(s);
  if (!v || *v > max) return std::nullopt;
  return v;
}

std::optional<double> parse_f64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  // "nan" and "inf" parse successfully but are never meaningful flag
  // values; worse, NaN slips through range checks written as
  // `x < lo || x > hi` (both comparisons are false).
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

}  // namespace embsp::util
