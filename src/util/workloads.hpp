// Workload generators shared by the tests, benches, and examples.
//
// Table 1's three application groups need: key sequences (sorting,
// permutation), matrices (transpose), point/segment sets (geometry), and
// lists / trees / graphs (graph algorithms).  Everything is generated from an
// explicit seed so experiments are repeatable.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace embsp::util {

/// n uniformly random 64-bit keys.
std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed);

/// A uniformly random permutation of [0, n).
std::vector<std::uint64_t> random_permutation(std::size_t n,
                                              std::uint64_t seed);

struct Point2D {
  double x;
  double y;
};

struct Point3D {
  double x;
  double y;
  double z;
};

/// Non-vertical segment with x1 < x2; generators below guarantee pairwise
/// non-intersection (required by the lower-envelope algorithm).
struct Segment2D {
  double x1, y1, x2, y2;
};

std::vector<Point2D> random_points_2d(std::size_t n, std::uint64_t seed);
std::vector<Point3D> random_points_3d(std::size_t n, std::uint64_t seed);

/// n pairwise non-intersecting segments, built by stacking each segment in
/// its own horizontal band (random x-extents, distinct y bands).
std::vector<Segment2D> random_disjoint_segments(std::size_t n,
                                                std::uint64_t seed);

/// n segments with random endpoints in the unit square — crossings are
/// abundant (workload for the generalized lower envelope).
std::vector<Segment2D> random_segments(std::size_t n, std::uint64_t seed);

/// Successor representation of a random singly linked list over nodes
/// [0, n): succ[i] is the next node; the tail points to itself.
/// Returns {succ, head}.
std::pair<std::vector<std::uint64_t>, std::uint64_t> random_list(
    std::size_t n, std::uint64_t seed);

/// Random tree on n nodes as a parent array; parent[root] == root.
/// Attachment is uniform over earlier nodes after a random relabeling, so
/// both depth and fanout vary.
std::vector<std::uint64_t> random_tree(std::size_t n, std::uint64_t seed);

struct Edge {
  std::uint64_t u;
  std::uint64_t v;
};

/// Random undirected graph: n vertices, m distinct edges (no self loops).
std::vector<Edge> random_graph(std::size_t n, std::size_t m,
                               std::uint64_t seed);

/// A graph that is a union of `k` disjoint random trees plus extra random
/// intra-component edges — used to test connected components with a known
/// component structure.  Returns {edges, component_of}.
std::pair<std::vector<Edge>, std::vector<std::uint64_t>> random_components_graph(
    std::size_t n, std::size_t k, std::size_t extra_edges, std::uint64_t seed);

struct Rect {
  double x1, y1, x2, y2;
};

std::vector<Rect> random_rects(std::size_t n, std::uint64_t seed);

}  // namespace embsp::util
