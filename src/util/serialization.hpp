// Byte-level serialization for virtual-processor contexts and messages.
//
// The EM simulators (src/sim/) persist the *context* of every virtual
// processor to disk between compound supersteps, and ship messages around as
// raw bytes.  All user-visible state therefore has to round-trip through a
// small, explicit byte format.  We deliberately avoid any reflection or
// third-party serializers: a Writer appends to a byte buffer, a Reader
// consumes a span, and both are cheap enough to sit on the simulator's hot
// path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace embsp::util {

/// Appends primitive values / trivially-copyable records to a growable byte
/// buffer.  The buffer can be inspected or moved out after writing.
///
/// Two modes: a default-constructed Writer owns its buffer (move it out
/// with take()); a Writer constructed over an external buffer appends in
/// place — the zero-copy path the simulators use to serialize contexts
/// directly into block-aligned staging memory.  In external mode, size()
/// reports the bytes written *by this Writer* (the external buffer may
/// already hold earlier contexts).
class Writer {
 public:
  Writer() : buf_(&owned_) {}

  /// Append to `external` instead of an owned buffer; `external` must
  /// outlive the Writer.  Existing contents are preserved.
  explicit Writer(std::vector<std::byte>& external)
      : buf_(&external), base_(external.size()) {}

  Writer(Writer&& other) noexcept
      : owned_(std::move(other.owned_)),
        buf_(other.buf_ == &other.owned_ ? &owned_ : other.buf_),
        base_(other.base_) {}
  Writer& operator=(Writer&& other) noexcept {
    owned_ = std::move(other.owned_);
    buf_ = other.buf_ == &other.owned_ ? &owned_ : other.buf_;
    base_ = other.base_;
    return *this;
  }
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Reserve capacity up front when the final size is known (avoids
  /// reallocation during context save).
  void reserve(std::size_t bytes) { buf_->reserve(base_ + bytes); }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write(const T& value) {
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    buf_->insert(buf_->end(), p, p + sizeof(T));
  }

  void write_bytes(std::span<const std::byte> bytes) {
    buf_->insert(buf_->end(), bytes.begin(), bytes.end());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write_vector(const std::vector<T>& v) {
    write<std::uint64_t>(v.size());
    if (!v.empty()) {
      const auto* p = reinterpret_cast<const std::byte*>(v.data());
      buf_->insert(buf_->end(), p, p + v.size() * sizeof(T));
    }
  }

  void write_string(const std::string& s) {
    write<std::uint64_t>(s.size());
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buf_->insert(buf_->end(), p, p + s.size());
  }

  [[nodiscard]] std::size_t size() const { return buf_->size() - base_; }
  [[nodiscard]] const std::vector<std::byte>& bytes() const { return *buf_; }
  /// Owned mode only: move the buffer out.
  [[nodiscard]] std::vector<std::byte> take() { return std::move(*buf_); }

 private:
  std::vector<std::byte> owned_;
  std::vector<std::byte>* buf_;
  std::size_t base_ = 0;
};

/// Consumes a byte span produced by Writer.  Throws std::out_of_range on
/// under-run — a corrupted context read from disk must fail loudly, not
/// silently produce garbage state.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T read() {
    T value;
    require(sizeof(T));
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::span<const std::byte> read_bytes(std::size_t n) {
    require(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> read_vector() {
    const auto n = static_cast<std::size_t>(read<std::uint64_t>());
    std::vector<T> v(n);
    if (n != 0) {
      require(n * sizeof(T));
      std::memcpy(v.data(), data_.data() + pos_, n * sizeof(T));
      pos_ += n * sizeof(T);
    }
    return v;
  }

  std::string read_string() {
    const auto n = static_cast<std::size_t>(read<std::uint64_t>());
    require(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw std::out_of_range("Reader: truncated buffer (need " +
                              std::to_string(n) + " bytes, have " +
                              std::to_string(data_.size() - pos_) + ")");
    }
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Concept satisfied by virtual-processor context types: they must know how
/// to save themselves to a Writer and restore from a Reader.
template <typename T>
concept Serializable = requires(const T& ct, T& t, Writer& w, Reader& r) {
  { ct.serialize(w) } -> std::same_as<void>;
  { t.deserialize(r) } -> std::same_as<void>;
};

/// Serialized size of a context, by actually serializing it.  Used by the
/// simulators to validate the declared context bound µ.
template <Serializable T>
std::size_t serialized_size(const T& value) {
  Writer w;
  value.serialize(w);
  return w.size();
}

}  // namespace embsp::util
