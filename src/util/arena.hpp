// Bump allocator backing the zero-copy message path.
//
// The simulators move every message payload through several stages per
// superstep (outbox -> staged blocks -> reassembly -> inbox).  Backing the
// payload bytes with an arena instead of one std::vector per message makes
// the stage handoffs free: a stage passes spans (bsp::MessageRef) into
// memory that stays put, and the whole superstep's allocations are retired
// with one reset() instead of thousands of destructor runs.
//
// Guarantees:
//  * Stability — a span returned by allocate()/copy() never moves until
//    reset() (chunks are never reallocated, only appended), so spans taken
//    early in a superstep stay valid while later allocations happen.
//  * reset() retains capacity: chunks are kept and their cursors rewound,
//    so a steady-state superstep allocates no memory at all.
//  * Single-threaded: one arena belongs to one owner (an Outbox, a
//    simulator group loop, a ParSimulator proc).  Concurrent *reads* of
//    handed-out spans are fine; concurrent allocate() is not.
//
// high_water() feeds the "sim.arena_bytes" gauge: the peak number of
// payload bytes alive at once, i.e. the real memory cost of the zero-copy
// path.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

namespace embsp::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}

  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `n` bytes (8-byte aligned so callers may
  /// overlay trivially-copyable records).  n == 0 yields an empty span.
  std::span<std::byte> allocate(std::size_t n) {
    in_use_ += n;
    if (in_use_ > high_water_) high_water_ = in_use_;
    if (n == 0) return {};
    const std::size_t need = (n + 7) & ~std::size_t{7};
    while (active_ < chunks_.size()) {
      Chunk& c = chunks_[active_];
      if (c.cap - c.used >= need) {
        std::byte* p = c.data.get() + c.used;
        c.used += need;
        return {p, n};
      }
      ++active_;
    }
    // Grow: double the last capacity so a long superstep settles into a few
    // large chunks; oversized requests get a dedicated chunk.
    const std::size_t grown =
        chunks_.empty() ? chunk_bytes_ : chunks_.back().cap * 2;
    const std::size_t cap = need > grown ? need : grown;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(cap), cap, need});
    active_ = chunks_.size() - 1;
    return {chunks_.back().data.get(), n};
  }

  /// Copy `src` into the arena and return the stable copy.
  std::span<const std::byte> copy(std::span<const std::byte> src) {
    auto dst = allocate(src.size());
    if (!src.empty()) std::memcpy(dst.data(), src.data(), src.size());
    return dst;
  }

  /// Invalidate every handed-out span; capacity is retained.
  void reset() {
    for (auto& c : chunks_) c.used = 0;
    active_ = 0;
    in_use_ = 0;
  }

  /// Payload bytes currently alive (since the last reset).
  [[nodiscard]] std::size_t bytes_in_use() const { return in_use_; }
  /// Peak bytes_in_use() over the arena's lifetime.
  [[nodiscard]] std::size_t high_water() const { return high_water_; }
  /// Total backing capacity currently reserved.
  [[nodiscard]] std::size_t capacity() const {
    std::size_t total = 0;
    for (const auto& c : chunks_) total += c.cap;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t cap = 0;
    std::size_t used = 0;
  };

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  ///< first chunk worth probing for space
  std::size_t in_use_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace embsp::util
