// I/O failure taxonomy and retry policy for the disk substrate.
//
// Real parallel-disk deployments see three classes of failure, and the
// right reaction differs per class (see DESIGN.md §"Failure model"):
//
//   transient  — the device hiccupped (bus reset, timeout, injected EIO);
//                the same transfer retried a moment later succeeds.
//   corrupt    — the transfer "succeeded" but the data failed its integrity
//                check (bit-rot, torn write read back).  Re-reading usually
//                heals an in-flight flip; media rot needs redundancy above
//                this layer.  Treated as retryable.
//   persistent — the failure will not go away (dead sector range, bad file
//                descriptor, capacity exceeded).  Retrying wastes time;
//                fail fast and let superstep-granular recovery (or the
//                caller) decide.
//
// Everything the backends and disks throw on an I/O path derives from
// IoError, so DiskArray::run_transfer can classify with one catch.  IoError
// derives from std::runtime_error: pre-existing call sites that catch
// runtime_error keep working.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace embsp::em {

class IoError : public std::runtime_error {
 public:
  enum class Kind { transient, persistent, corrupt };

  IoError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] Kind kind() const { return kind_; }

  /// Whether re-issuing the same transfer can possibly succeed.
  [[nodiscard]] bool retryable() const { return kind_ != Kind::persistent; }

 private:
  Kind kind_;
};

class TransientIoError final : public IoError {
 public:
  explicit TransientIoError(const std::string& what)
      : IoError(Kind::transient, what) {}
};

class PersistentIoError final : public IoError {
 public:
  explicit PersistentIoError(const std::string& what)
      : IoError(Kind::persistent, what) {}
};

class CorruptBlockError final : public IoError {
 public:
  explicit CorruptBlockError(const std::string& what)
      : IoError(Kind::corrupt, what) {}
};

/// Map an errno from a failed pread/pwrite/fdatasync to a failure class.
/// Device-level hiccups are worth retrying; programming or resource errors
/// are not.
[[nodiscard]] IoError::Kind classify_errno(int err);

/// Bounded retry with exponential backoff and seeded jitter, applied to
/// every per-disk transfer by DiskArray::run_transfer (both the serial
/// engine and the per-disk workers of ParallelDiskArray).
///
/// Attempt n (1-based) that fails retryably sleeps
///   backoff = min(base * multiplier^(n-1), max) * U  with U ~ [0.5, 1.5)
/// before attempt n+1; the jitter stream is per-disk and seeded, so wall
/// clock stays deterministic-ish but — crucially — *results* never depend
/// on it.  After `max_attempts` total attempts the error propagates and
/// the giveup counter increments (EngineStats).
struct RetryPolicy {
  std::uint32_t max_attempts = 4;       ///< total attempts incl. the first
  std::uint64_t base_backoff_ns = 20'000;
  double multiplier = 2.0;
  std::uint64_t max_backoff_ns = 2'000'000;

  /// Backoff before the retry following failed attempt `attempt` (1-based).
  [[nodiscard]] std::uint64_t backoff_ns(std::uint32_t attempt,
                                         util::Rng& jitter) const;
};

}  // namespace embsp::em
