#include "em/uring_backend.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "em/io_error.hpp"

// Self-gating compile-time detection: the CMake check sets
// EMBSP_HAVE_URING explicitly, but the __has_include fallback keeps the
// translation unit correct under any build system.  With 0 the file
// compiles to the fallback stubs at the bottom.
#ifndef EMBSP_HAVE_URING
#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define EMBSP_HAVE_URING 1
#else
#define EMBSP_HAVE_URING 0
#endif
#endif

#if EMBSP_HAVE_URING
#include <fcntl.h>
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace embsp::em {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Process-unique suffix so two scratch factories (or two runs sharing a
/// dir) never open the same backing file.
std::uint64_t next_scratch_id() {
  static std::atomic<std::uint64_t> id{0};
  return id.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

#if EMBSP_HAVE_URING

namespace {

int sys_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

int sys_uring_register(int fd, unsigned opcode, const void* arg,
                       unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

// Ring-buffer indices are shared with the kernel: head/tail crossings need
// acquire/release, exactly like liburing's smp_load_acquire/store_release.
unsigned load_acquire(const unsigned* p) {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}
void store_release(unsigned* p, unsigned v) {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

}  // namespace

bool uring_supported() {
  static const bool ok = [] {
    io_uring_params p{};
    const int fd = sys_uring_setup(2, &p);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return ok;
}

struct UringBackend::Impl {
  std::string path;
  std::string registry_key;
  bool keep = false;
  UringConfig cfg;
  bool direct = false;  ///< O_DIRECT accepted by the filesystem
  int file_fd = -1;
  std::atomic<std::uint64_t> size{0};  ///< logical high-water (like FileBackend)

  // --- ring state ----------------------------------------------------------
  int ring_fd = -1;
  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned* sq_array = nullptr;
  unsigned sq_entries = 0;
  io_uring_sqe* sqes = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned cq_mask = 0;
  io_uring_cqe* cqes = nullptr;
  void* sq_ptr = nullptr;
  std::size_t sq_len = 0;
  void* cq_ptr = nullptr;  ///< == sq_ptr under IORING_FEAT_SINGLE_MMAP
  std::size_t cq_len = 0;
  void* sqe_ptr = nullptr;
  std::size_t sqe_len = 0;

  // --- fixed buffers -------------------------------------------------------
  struct Region {
    std::byte* base;
    std::size_t len;
  };
  std::vector<Region> registered;

  // --- O_DIRECT staging ----------------------------------------------------
  void* staging = nullptr;
  std::size_t staging_len = 0;

  std::mutex m;  ///< serializes ring access (uncontended: one issuer per drive)
  UringBackendStats stats;

  /// One SQE's worth of outstanding transfer; re-queued on partial
  /// completion until fully settled.
  struct Unit {
    std::uint64_t offset;
    std::byte* dst = nullptr;        // read target
    const std::byte* src = nullptr;  // write source
    std::size_t len = 0;
  };

  [[nodiscard]] bool aligned(std::uint64_t offset, const void* p,
                             std::size_t len) const {
    const std::size_t a = cfg.alignment;
    return offset % a == 0 && len % a == 0 &&
           reinterpret_cast<std::uintptr_t>(p) % a == 0;
  }

  /// Registered-region index containing [p, p+len), or -1.
  [[nodiscard]] int fixed_index(const void* p, std::size_t len) const {
    const auto* b = static_cast<const std::byte*>(p);
    for (std::size_t i = 0; i < registered.size(); ++i) {
      if (b >= registered[i].base &&
          b + len <= registered[i].base + registered[i].len) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  [[noreturn]] void raise(const char* what, int err) const {
    throw IoError(classify_errno(err), std::string("UringBackend: ") + what +
                                           " failed on " + path + ": " +
                                           std::strerror(err));
  }

  void setup_ring() {
    io_uring_params p{};
    ring_fd = sys_uring_setup(cfg.entries, &p);
    if (ring_fd < 0) {
      throw PersistentIoError("UringBackend: io_uring_setup failed: " +
                              std::string(std::strerror(errno)));
    }
    sq_len = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    cq_len = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    const bool single = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single) sq_len = cq_len = std::max(sq_len, cq_len);
    sq_ptr = ::mmap(nullptr, sq_len, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQ_RING);
    if (sq_ptr == MAP_FAILED) {
      sq_ptr = nullptr;
      throw PersistentIoError("UringBackend: mmap(SQ ring) failed");
    }
    cq_ptr = sq_ptr;
    if (!single) {
      cq_ptr = ::mmap(nullptr, cq_len, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_CQ_RING);
      if (cq_ptr == MAP_FAILED) {
        cq_ptr = nullptr;
        throw PersistentIoError("UringBackend: mmap(CQ ring) failed");
      }
    }
    sqe_len = p.sq_entries * sizeof(io_uring_sqe);
    sqe_ptr = ::mmap(nullptr, sqe_len, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQES);
    if (sqe_ptr == MAP_FAILED) {
      sqe_ptr = nullptr;
      throw PersistentIoError("UringBackend: mmap(SQEs) failed");
    }
    auto* sq = static_cast<std::byte*>(sq_ptr);
    sq_head = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
    sq_tail = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
    sq_mask = *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
    sq_array = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
    sq_entries = p.sq_entries;
    auto* cq = static_cast<std::byte*>(cq_ptr);
    cq_head = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
    cq_tail = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
    cq_mask = *reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
    cqes = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);
    sqes = static_cast<io_uring_sqe*>(sqe_ptr);
  }

  void teardown_ring() {
    if (sqe_ptr != nullptr) ::munmap(sqe_ptr, sqe_len);
    if (cq_ptr != nullptr && cq_ptr != sq_ptr) ::munmap(cq_ptr, cq_len);
    if (sq_ptr != nullptr) ::munmap(sq_ptr, sq_len);
    if (ring_fd >= 0) ::close(ring_fd);
    sqe_ptr = cq_ptr = sq_ptr = nullptr;
    ring_fd = -1;
  }

  /// Fill the next free SQE.  The caller guarantees space (one wave never
  /// exceeds sq_entries).
  void prep_sqe(const Unit& u, bool is_read, std::uint64_t user_data) {
    const unsigned tail = *sq_tail;  // single issuer: plain read is fine
    const unsigned idx = tail & sq_mask;
    io_uring_sqe* sqe = &sqes[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->fd = file_fd;
    sqe->off = u.offset;
    sqe->user_data = user_data;
    const void* buf = is_read ? static_cast<const void*>(u.dst)
                              : static_cast<const void*>(u.src);
    sqe->addr = reinterpret_cast<std::uint64_t>(buf);
    sqe->len = static_cast<std::uint32_t>(u.len);
    const int fixed = fixed_index(buf, u.len);
    if (fixed >= 0) {
      sqe->opcode = is_read ? IORING_OP_READ_FIXED : IORING_OP_WRITE_FIXED;
      sqe->buf_index = static_cast<std::uint16_t>(fixed);
      stats.fixed_ops += 1;
    } else {
      sqe->opcode = is_read ? IORING_OP_READ : IORING_OP_WRITE;
    }
    sq_array[idx] = idx;
    store_release(sq_tail, tail + 1);
  }

  /// Submit every unit and block until all have fully completed, re-queuing
  /// partial transfers.  Reads past EOF zero-fill (FileBackend semantics).
  /// All submitted SQEs are reaped before an error is thrown, so the ring
  /// never carries stale completions into the next call.
  void run_wave(std::vector<Unit>& units, bool is_read) {
    std::size_t next = 0;  // next unit to submit
    std::size_t live = 0;  // submitted, not yet settled
    int first_err = 0;
    std::size_t zero_progress = 0;
    const std::uint64_t t0 = now_ns();
    while (next < units.size() || live > 0) {
      // Top up the ring (bounded by SQ capacity), then wait for everything
      // currently in flight with a single enter.
      unsigned to_submit = 0;
      while (next < units.size() && live < sq_entries) {
        prep_sqe(units[next], is_read, next);
        ++next;
        ++live;
        ++to_submit;
      }
      stats.sqes += to_submit;
      stats.ring_depth.record(live);
      int rc = sys_uring_enter(ring_fd, to_submit, static_cast<unsigned>(live),
                               IORING_ENTER_GETEVENTS);
      stats.enters += 1;
      if (rc < 0) {
        if (errno == EINTR) {
          // SQEs were consumed before the signal; wait again without
          // resubmitting.
          to_submit = 0;
          continue;
        }
        raise("io_uring_enter", errno);
      }
      // Reap everything available.
      unsigned head = load_acquire(cq_head);
      const unsigned tail = load_acquire(cq_tail);
      while (head != tail) {
        const io_uring_cqe& cqe = cqes[head & cq_mask];
        Unit& u = units[cqe.user_data];
        const auto res = cqe.res;
        ++head;
        --live;
        if (res < 0) {
          if (res == -EINTR || res == -EAGAIN) {
            prep_sqe(u, is_read, cqe.user_data);
            ++live;
            stats.sqes += 1;
            // This enter must retry EINTR itself: the outer loop's
            // to_submit is already spent, so an unsubmitted resubmission
            // SQE would leave `live` waiting on a completion that never
            // arrives.
            int rrc;
            do {
              rrc = sys_uring_enter(ring_fd, 1, 0, 0);
              stats.enters += 1;
            } while (rrc < 0 && errno == EINTR);
            if (rrc < 0 && first_err == 0) first_err = errno;
            continue;
          }
          if (first_err == 0) first_err = -res;
          continue;
        }
        if (is_read && res == 0 && u.len > 0) {
          // Past EOF: unwritten territory reads as zero.
          std::memset(u.dst, 0, u.len);
          continue;
        }
        if (static_cast<std::size_t>(res) < u.len) {
          if (res == 0) {
            // A zero-length write completion makes no progress; guard
            // against spinning forever on a broken filesystem.
            if (++zero_progress > 64 && first_err == 0) first_err = EIO;
            if (first_err != 0) continue;
          }
          u.offset += static_cast<std::uint64_t>(res);
          u.len -= static_cast<std::size_t>(res);
          if (is_read) {
            u.dst += res;
          } else {
            u.src += res;
          }
          prep_sqe(u, is_read, cqe.user_data);
          ++live;
          stats.sqes += 1;
          if (sys_uring_enter(ring_fd, 1, 0, 0) < 0 && first_err == 0) {
            first_err = errno;
          }
          stats.enters += 1;
        }
      }
      store_release(cq_head, head);
      if (first_err != 0 && live == 0 && next >= units.size()) break;
    }
    stats.completion_ns.record(now_ns() - t0);
    if (first_err != 0) {
      raise(is_read ? "read" : "write", first_err);
    }
  }

  void bump_size(std::uint64_t end) {
    std::uint64_t seen = size.load(std::memory_order_relaxed);
    while (seen < end && !size.compare_exchange_weak(
                             seen, end, std::memory_order_relaxed)) {
    }
  }

  // --- O_DIRECT staging paths ---------------------------------------------
  // Unaligned transfers bounce through `staging` in aligned chunks; the
  // read-modify-write on the edges preserves neighbouring bytes exactly
  // like a buffered write would.

  void staged_read(std::uint64_t offset, std::span<std::byte> dst) {
    const std::size_t a = cfg.alignment;
    std::size_t done = 0;
    while (done < dst.size()) {
      const std::uint64_t pos = offset + done;
      const std::uint64_t c0 = pos / a * a;
      const std::size_t within = static_cast<std::size_t>(pos - c0);
      const std::size_t want = std::min<std::size_t>(
          staging_len - within, dst.size() - done + within);
      const std::size_t chunk = (want + a - 1) / a * a;
      std::vector<Unit> u{{c0, static_cast<std::byte*>(staging), nullptr,
                           chunk}};
      run_wave(u, /*is_read=*/true);
      const std::size_t n = std::min(dst.size() - done, chunk - within);
      std::memcpy(dst.data() + done, static_cast<std::byte*>(staging) + within,
                  n);
      stats.bounced_bytes += n;
      done += n;
    }
  }

  void staged_write(std::uint64_t offset, std::span<const std::byte> src) {
    const std::size_t a = cfg.alignment;
    std::size_t done = 0;
    while (done < src.size()) {
      const std::uint64_t pos = offset + done;
      const std::uint64_t c0 = pos / a * a;
      const std::size_t within = static_cast<std::size_t>(pos - c0);
      const std::size_t want = std::min<std::size_t>(
          staging_len - within, src.size() - done + within);
      const std::size_t chunk = (want + a - 1) / a * a;
      // Edge blocks may carry neighbouring live data: read-modify-write
      // whenever the chunk extends past the source slice into territory the
      // file has ever covered.
      const std::uint64_t logical = size.load(std::memory_order_relaxed);
      const std::uint64_t covered = (logical + a - 1) / a * a;
      const bool partial = within != 0 || (chunk - within) > src.size() - done;
      if (partial && c0 < covered) {
        std::vector<Unit> u{{c0, static_cast<std::byte*>(staging), nullptr,
                             chunk}};
        run_wave(u, /*is_read=*/true);
        stats.bounced_bytes += chunk;
      } else {
        std::memset(staging, 0, chunk);
      }
      const std::size_t n = std::min(src.size() - done, chunk - within);
      std::memcpy(static_cast<std::byte*>(staging) + within, src.data() + done,
                  n);
      stats.bounced_bytes += n;
      std::vector<Unit> w{{c0, nullptr,
                           static_cast<const std::byte*>(staging), chunk}};
      run_wave(w, /*is_read=*/false);
      done += n;
    }
    bump_size(offset + src.size());
  }
};

UringBackend::UringBackend(std::string path, bool keep, UringConfig cfg)
    : impl_(std::make_unique<Impl>()) {
  Impl& s = *impl_;
  s.path = std::move(path);
  s.keep = keep;
  s.cfg = cfg;
  if (s.cfg.alignment == 0 || (s.cfg.alignment & (s.cfg.alignment - 1)) != 0) {
    throw std::invalid_argument("UringBackend: alignment must be a power of 2");
  }
  s.registry_key = detail::claim_backend_path(s.path);
  bool claimed = true;
  try {
    // FileBackend's keep/truncate discipline: only freshly created files
    // are truncated.
    int flags = O_RDWR | O_CREAT;
    bool preexisting = false;
    if (s.keep) {
      struct stat st{};
      preexisting = ::stat(s.path.c_str(), &st) == 0;
    }
    if (!preexisting) flags |= O_TRUNC;
    if (s.cfg.sync_writes) flags |= O_DSYNC;
    if (s.cfg.direct) flags |= O_DIRECT;
    s.file_fd = ::open(s.path.c_str(), flags, 0644);
    if (s.file_fd < 0 && s.cfg.direct && errno == EINVAL) {
      // Filesystem refuses O_DIRECT (tmpfs): degrade to buffered I/O
      // rather than failing the run — direct_io() reports the truth.
      s.file_fd = ::open(s.path.c_str(), flags & ~O_DIRECT, 0644);
    } else if (s.file_fd >= 0 && s.cfg.direct) {
      s.direct = true;
    }
    if (s.file_fd < 0) {
      const int err = errno;
      throw IoError(classify_errno(err), "UringBackend: cannot open " +
                                             s.path + ": " +
                                             std::strerror(err));
    }
    if (preexisting) {
      const off_t end = ::lseek(s.file_fd, 0, SEEK_END);
      if (end > 0) {
        s.size.store(static_cast<std::uint64_t>(end),
                     std::memory_order_relaxed);
      }
    }
    s.setup_ring();
    if (s.direct) {
      s.staging_len = std::max<std::size_t>(s.cfg.alignment, std::size_t{1}
                                                                 << 20);
      s.staging_len = s.staging_len / s.cfg.alignment * s.cfg.alignment;
      s.staging = std::aligned_alloc(s.cfg.alignment, s.staging_len);
      if (s.staging == nullptr) {
        throw std::bad_alloc();
      }
    }
  } catch (...) {
    if (s.ring_fd >= 0 || s.sq_ptr != nullptr) s.teardown_ring();
    if (s.file_fd >= 0) {
      ::close(s.file_fd);
      if (!s.keep) ::unlink(s.path.c_str());
    }
    if (claimed) detail::release_backend_path(s.registry_key);
    throw;
  }
}

UringBackend::~UringBackend() {
  Impl& s = *impl_;
  if (s.staging != nullptr) std::free(s.staging);
  s.teardown_ring();
  if (s.file_fd >= 0) {
    // Staged O_DIRECT writes land in whole aligned chunks, so the physical
    // file may run past the logical high-water mark.  Trim kept files back
    // so the on-disk image is byte-identical to the buffered engines'.
    if (s.keep && s.direct) {
      (void)::ftruncate(s.file_fd,
                        static_cast<off_t>(s.size.load(std::memory_order_acquire)));
    }
    ::close(s.file_fd);
  }
  if (!s.keep) ::unlink(s.path.c_str());
  detail::release_backend_path(s.registry_key);
}

void UringBackend::read(std::uint64_t offset, std::span<std::byte> dst) {
  if (dst.empty()) return;
  Impl& s = *impl_;
  std::lock_guard<std::mutex> lock(s.m);
  if (s.direct && !s.aligned(offset, dst.data(), dst.size())) {
    s.staged_read(offset, dst);
    return;
  }
  std::vector<Impl::Unit> u{{offset, dst.data(), nullptr, dst.size()}};
  s.run_wave(u, /*is_read=*/true);
}

void UringBackend::write(std::uint64_t offset, std::span<const std::byte> src) {
  if (src.empty()) return;
  Impl& s = *impl_;
  std::lock_guard<std::mutex> lock(s.m);
  if (s.direct && !s.aligned(offset, src.data(), src.size())) {
    s.staged_write(offset, src);
    return;
  }
  std::vector<Impl::Unit> u{{offset, nullptr, src.data(), src.size()}};
  s.run_wave(u, /*is_read=*/false);
  s.bump_size(offset + src.size());
}

void UringBackend::read_vec(std::uint64_t offset,
                            std::span<const std::span<std::byte>> dsts) {
  Impl& s = *impl_;
  std::lock_guard<std::mutex> lock(s.m);
  std::vector<Impl::Unit> units;
  units.reserve(dsts.size());
  std::uint64_t pos = offset;
  bool ok = true;
  for (const auto& d : dsts) {
    if (!d.empty()) {
      units.push_back({pos, d.data(), nullptr, d.size()});
      ok = ok && (!s.direct || s.aligned(pos, d.data(), d.size()));
    }
    pos += d.size();
  }
  if (units.empty()) return;
  if (!ok) {
    // O_DIRECT with unaligned pieces: bounce each buffer individually.
    for (const auto& u : units) s.staged_read(u.offset, {u.dst, u.len});
    return;
  }
  s.run_wave(units, /*is_read=*/true);
}

void UringBackend::write_vec(std::uint64_t offset,
                             std::span<const std::span<const std::byte>> srcs) {
  Impl& s = *impl_;
  std::lock_guard<std::mutex> lock(s.m);
  std::vector<Impl::Unit> units;
  units.reserve(srcs.size());
  std::uint64_t pos = offset;
  std::uint64_t total = 0;
  bool ok = true;
  for (const auto& src : srcs) {
    if (!src.empty()) {
      units.push_back({pos, nullptr, src.data(), src.size()});
      ok = ok && (!s.direct || s.aligned(pos, src.data(), src.size()));
    }
    pos += src.size();
    total += src.size();
  }
  if (units.empty()) return;
  if (!ok) {
    for (const auto& u : units) s.staged_write(u.offset, {u.src, u.len});
    return;
  }
  s.run_wave(units, /*is_read=*/false);
  s.bump_size(offset + total);
}

void UringBackend::flush() {
  Impl& s = *impl_;
  std::lock_guard<std::mutex> lock(s.m);
  const unsigned tail = *s.sq_tail;
  const unsigned idx = tail & s.sq_mask;
  io_uring_sqe* sqe = &s.sqes[idx];
  std::memset(sqe, 0, sizeof(*sqe));
  sqe->opcode = IORING_OP_FSYNC;
  sqe->fd = s.file_fd;
  sqe->fsync_flags = IORING_FSYNC_DATASYNC;
  sqe->user_data = 0;
  s.sq_array[idx] = idx;
  store_release(s.sq_tail, tail + 1);
  s.stats.sqes += 1;
  s.stats.ring_depth.record(1);
  for (;;) {
    const int rc = sys_uring_enter(s.ring_fd, 1, 1, IORING_ENTER_GETEVENTS);
    s.stats.enters += 1;
    if (rc >= 0) break;
    if (errno != EINTR) s.raise("io_uring_enter(fsync)", errno);
  }
  unsigned head = load_acquire(s.cq_head);
  int res = 0;
  while (head != load_acquire(s.cq_tail)) {
    res = s.cqes[head & s.cq_mask].res;
    ++head;
  }
  store_release(s.cq_head, head);
  if (res < 0) s.raise("fsync", -res);
}

std::uint64_t UringBackend::size() const {
  return impl_->size.load(std::memory_order_relaxed);
}

bool UringBackend::register_buffers(
    std::span<const std::span<std::byte>> regions) {
  Impl& s = *impl_;
  std::lock_guard<std::mutex> lock(s.m);
  if (!s.registered.empty()) {
    sys_uring_register(s.ring_fd, IORING_UNREGISTER_BUFFERS, nullptr, 0);
    s.registered.clear();
  }
  if (regions.empty()) return true;
  std::vector<iovec> iov;
  iov.reserve(regions.size());
  for (const auto& r : regions) {
    if (r.empty()) return false;
    iov.push_back(iovec{r.data(), r.size()});
  }
  if (sys_uring_register(s.ring_fd, IORING_REGISTER_BUFFERS, iov.data(),
                         static_cast<unsigned>(iov.size())) < 0) {
    return false;
  }
  s.registered.reserve(regions.size());
  for (const auto& r : regions) s.registered.push_back({r.data(), r.size()});
  return true;
}

bool UringBackend::direct_io() const { return impl_->direct; }

const UringBackendStats& UringBackend::uring_stats() const {
  return impl_->stats;
}

#else  // !EMBSP_HAVE_URING

// Compile-time fallback: no <linux/io_uring.h>.  The API surface stays so
// callers link unconditionally; construction reports unavailability and
// the factory falls back to FileBackend.

bool uring_supported() { return false; }

struct UringBackend::Impl {};

UringBackend::UringBackend(std::string path, bool /*keep*/, UringConfig /*cfg*/)
    : impl_(nullptr) {
  throw PersistentIoError("UringBackend: built without io_uring support (" +
                          path + ")");
}

UringBackend::~UringBackend() = default;

void UringBackend::read(std::uint64_t, std::span<std::byte>) {}
void UringBackend::write(std::uint64_t, std::span<const std::byte>) {}
void UringBackend::read_vec(std::uint64_t,
                            std::span<const std::span<std::byte>>) {}
void UringBackend::write_vec(std::uint64_t,
                             std::span<const std::span<const std::byte>>) {}
void UringBackend::flush() {}
std::uint64_t UringBackend::size() const { return 0; }
bool UringBackend::register_buffers(std::span<const std::span<std::byte>>) {
  return false;
}
bool UringBackend::direct_io() const { return false; }
const UringBackendStats& UringBackend::uring_stats() const {
  static const UringBackendStats empty;
  return empty;
}

#endif  // EMBSP_HAVE_URING

std::unique_ptr<Backend> make_uring_file_backend(const std::string& path,
                                                 bool keep, UringConfig cfg) {
  if (uring_supported()) {
    return std::make_unique<UringBackend>(path, keep, cfg);
  }
  return make_file_backend(path, keep, cfg.sync_writes);
}

std::function<std::unique_ptr<Backend>(std::size_t)>
make_uring_scratch_factory(std::string dir, std::string tag, UringConfig cfg) {
  if (dir.empty()) {
    std::error_code ec;
    const auto tmp = std::filesystem::temp_directory_path(ec);
    dir = ec ? "." : tmp.string();
  }
  const std::uint64_t run = next_scratch_id();
  return [dir = std::move(dir), tag = std::move(tag), cfg,
          run](std::size_t d) -> std::unique_ptr<Backend> {
    const std::string path = dir + "/embsp_" + tag + "_" +
                             std::to_string(::getpid()) + "_" +
                             std::to_string(run) + "_d" + std::to_string(d) +
                             ".bin";
    return make_uring_file_backend(path, /*keep=*/false, cfg);
  };
}

}  // namespace embsp::em
