// Kernel-native file backend on io_uring (raw syscalls, no liburing).
//
// UringBackend is the third disk substrate next to MemoryBackend and
// FileBackend: one submission/completion ring per backend instance — i.e.
// one ring per drive, since DiskArray creates one backend per disk — and
// every transfer maps onto SQEs reaped as CQEs:
//
//   * scalar read()/write()    — one IORING_OP_READ / IORING_OP_WRITE SQE,
//                                one io_uring_enter(GETEVENTS);
//   * read_vec()/write_vec()   — one SQE per buffer at consecutive offsets,
//                                submitted as a single wave and reaped with
//                                one enter, so a coalesced run of adjacent
//                                tracks costs one syscall like preadv —
//                                but, unlike preadv, the wave survives
//                                O_DIRECT splitting and scales past IOV_MAX;
//   * flush()                  — an IORING_OP_FSYNC (datasync) SQE.
//
// Fixed buffers: register_buffers() hands bump-allocated arenas (or any
// long-lived staging region) to IORING_REGISTER_BUFFERS; transfers whose
// buffer lies entirely inside a registered region are submitted as
// IORING_OP_READ_FIXED / IORING_OP_WRITE_FIXED, extending the zero-copy
// path into the kernel (no per-op get_user_pages).
//
// O_DIRECT: with UringConfig::direct the file is opened O_DIRECT and reads
// and writes bypass the page cache, so benches measure device behavior.
// Direct I/O requires offset, length and buffer address aligned to
// `alignment` (4096 covers every mainstream filesystem); transfers that
// are not aligned bounce through an internal aligned staging buffer —
// track-size-aligned reads-modify-writes for unaligned edges — which keeps
// the Backend byte-semantics identical to FileBackend at a copy cost
// recorded in UringBackendStats::bounced_bytes.  Filesystems that reject
// O_DIRECT (tmpfs) degrade gracefully: the open retries without the flag
// and direct_io() reports false.
//
// Fallback: uring_supported() probes the kernel once (io_uring_setup);
// make_uring_file_backend() returns a plain FileBackend when the probe
// fails, and the whole translation unit compiles to the fallback when
// <linux/io_uring.h> is absent — callers never need #ifdefs.
//
// Concurrency: rings are single-issuer.  A mutex serializes calls, but by
// construction each backend belongs to one Disk whose transfers are issued
// by one thread (the serial engine's caller or the drive's worker under
// ParallelDiskArray/IoEngine::uring), so the lock is uncontended.
// register_buffers() must be called while no I/O is in flight.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "em/backend.hpp"
#include "obs/histogram.hpp"

namespace embsp::em {

/// Tuning knobs of one ring; defaults suit one-drive-per-ring use.
struct UringConfig {
  /// SQ entries requested from io_uring_setup (kernel rounds up to a power
  /// of two).  64 comfortably holds the widest coalesced wave per drive.
  unsigned entries = 64;
  /// Open the backing file O_DIRECT (page-cache bypass); silently degraded
  /// to buffered I/O on filesystems that refuse it (see direct_io()).
  bool direct = false;
  /// Offset/length/address granularity O_DIRECT transfers must satisfy;
  /// unaligned transfers bounce through the staging buffer.
  std::size_t alignment = 4096;
  /// Open O_DSYNC so every write reaches the device before its CQE.
  bool sync_writes = false;
};

/// Ring-level execution counters of one UringBackend.  Single-writer (the
/// issuing thread); read when quiescent.  DiskArray::harvest_backend_stats
/// folds them into EngineStats::uring.
struct UringBackendStats {
  std::uint64_t sqes = 0;         ///< SQEs submitted
  std::uint64_t enters = 0;       ///< io_uring_enter syscalls
  std::uint64_t fixed_ops = 0;    ///< READ_FIXED/WRITE_FIXED SQEs
  std::uint64_t bounced_bytes = 0;///< bytes copied through O_DIRECT staging
  obs::LogHistogram ring_depth;   ///< SQEs in flight per enter
  obs::LogHistogram completion_ns;///< submit-to-reap latency per wave
};

/// One-time runtime probe: can this kernel set up an io_uring instance?
/// (false on pre-5.1 kernels, seccomp-filtered containers, or when the
/// translation unit was built without <linux/io_uring.h>).
[[nodiscard]] bool uring_supported();

class UringBackend final : public Backend {
 public:
  /// Opens `path` with FileBackend's keep/truncate semantics (and the same
  /// process-wide double-open guard) and sets up the ring.  Throws
  /// PersistentIoError when io_uring is unavailable — use
  /// make_uring_file_backend() for the graceful-fallback path.
  explicit UringBackend(std::string path, bool keep = false,
                        UringConfig cfg = {});
  ~UringBackend() override;

  UringBackend(const UringBackend&) = delete;
  UringBackend& operator=(const UringBackend&) = delete;

  void read(std::uint64_t offset, std::span<std::byte> dst) override;
  void write(std::uint64_t offset, std::span<const std::byte> src) override;
  void read_vec(std::uint64_t offset,
                std::span<const std::span<std::byte>> dsts) override;
  void write_vec(std::uint64_t offset,
                 std::span<const std::span<const std::byte>> srcs) override;
  void flush() override;
  [[nodiscard]] std::uint64_t size() const override;

  /// Registers long-lived memory regions as kernel fixed buffers; replaces
  /// any previous registration.  Returns false when the kernel refuses
  /// (ops then fall back to plain READ/WRITE SQEs — never an error).
  bool register_buffers(std::span<const std::span<std::byte>> regions) override;

  /// Whether O_DIRECT is actually in effect (requested AND accepted by the
  /// filesystem).
  [[nodiscard]] bool direct_io() const;

  [[nodiscard]] const UringBackendStats& uring_stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// UringBackend when the kernel supports io_uring, FileBackend otherwise
/// (same path/keep semantics; cfg.sync_writes maps to O_DSYNC either way).
/// This is the runtime face of the graceful-fallback contract.
std::unique_ptr<Backend> make_uring_file_backend(const std::string& path,
                                                 bool keep = false,
                                                 UringConfig cfg = {});

/// Per-drive scratch-file factory for SimConfig::io_engine == uring when
/// the caller supplied no backend factory: drive d gets a scratch file
/// under `dir` (std::filesystem::temp_directory_path() when empty) named
/// from `tag`, the pid and a process-unique run id, so concurrent
/// simulations never collide.  Each backend falls back to FileBackend when
/// io_uring is unavailable.
std::function<std::unique_ptr<Backend>(std::size_t)>
make_uring_scratch_factory(std::string dir, std::string tag,
                           UringConfig cfg = {});

}  // namespace embsp::em
