#include "em/disk_array.hpp"

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "em/parallel_disk_array.hpp"

namespace embsp::em {

namespace {
std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

DiskArray::DiskArray(
    std::size_t num_disks, std::size_t block_size,
    std::function<std::unique_ptr<Backend>(std::size_t)> make_backend,
    std::uint64_t capacity_tracks_per_disk, DiskArrayOptions options)
    : block_size_(block_size), options_(options), seen_(num_disks, 0) {
  if (num_disks == 0) {
    throw std::invalid_argument("DiskArray: need at least one disk");
  }
  disks_.reserve(num_disks);
  jitter_.reserve(num_disks);
  for (std::size_t d = 0; d < num_disks; ++d) {
    auto backend =
        make_backend ? make_backend(d) : make_memory_backend();
    disks_.push_back(std::make_unique<Disk>(block_size, std::move(backend),
                                            capacity_tracks_per_disk,
                                            options_.verify_checksums));
    // Backoff jitter only shapes sleep durations, never data, so a fixed
    // per-disk seed keeps arrays reproducible without configuration.
    jitter_.emplace_back(0xB0FF'0000ULL + d);
  }
  engine_.per_disk.resize(num_disks);
}

void DiskArray::check_distinct(std::span<const std::uint32_t> disks) const {
  if (disks.empty()) {
    throw std::invalid_argument("DiskArray: empty parallel I/O operation");
  }
  if (disks.size() > disks_.size()) {
    throw std::invalid_argument(
        "DiskArray: more ops than disks in one parallel I/O");
  }
  for (auto d : disks) {
    if (d >= disks_.size()) {
      throw std::out_of_range("DiskArray: disk index " + std::to_string(d));
    }
    if (seen_[d] != 0) {
      // Clean up before throwing so the array stays usable.
      for (auto e : disks) seen_[e] = 0;
      throw std::invalid_argument(
          "DiskArray: disk " + std::to_string(d) +
          " accessed twice in one parallel I/O (model violation)");
    }
    seen_[d] = 1;
  }
  for (auto d : disks) seen_[d] = 0;
}

void DiskArray::run_transfer(const Transfer& t) {
  auto& ds = engine_.per_disk[t.disk];
  const RetryPolicy& policy = options_.retry;
  for (std::uint32_t attempt = 1;; ++attempt) {
    const std::uint64_t t0 = now_ns();
    try {
      if (t.dst != nullptr) {
        disks_[t.disk]->read_track(t.track, {t.dst, t.len});
      } else {
        disks_[t.disk]->write_track(t.track, {t.src, t.len});
      }
      const std::uint64_t dt = now_ns() - t0;
      ds.busy_ns += dt;
      ds.service_ns.record(dt);
      break;
    } catch (const IoError& e) {
      const std::uint64_t dt = now_ns() - t0;
      ds.busy_ns += dt;
      ds.service_ns.record(dt);
      if (!e.retryable() || attempt >= policy.max_attempts) {
        ds.giveups += 1;
        throw;
      }
      ds.retries += 1;
      const std::uint64_t delay = policy.backoff_ns(attempt, jitter_[t.disk]);
      ds.retry_delay_ns.record(delay);
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
      }
    }
  }
  ds.ops += 1;
  ds.bytes += t.len;
}

void DiskArray::execute(std::span<const Transfer> transfers) {
  for (const auto& t : transfers) run_transfer(t);
}

void DiskArray::sync() {
  for (auto& d : disks_) d->flush();
}

void DiskArray::parallel_read(std::span<const ReadOp> ops) {
  std::vector<std::uint32_t> ids;
  ids.reserve(ops.size());
  for (const auto& op : ops) ids.push_back(op.disk);
  check_distinct(ids);
  transfers_.clear();
  std::uint64_t bytes = 0;
  for (const auto& op : ops) {
    transfers_.push_back(
        {op.disk, op.track, op.dst.data(), nullptr, op.dst.size()});
    bytes += op.dst.size();
  }
  engine_.max_queue_depth =
      std::max<std::uint64_t>(engine_.max_queue_depth, transfers_.size());
  engine_.queue_depth.record(transfers_.size());
  const std::uint64_t t0 = now_ns();
  execute(transfers_);
  engine_.stall_ns += now_ns() - t0;
  // Model accounting only after the operation succeeded: a throwing
  // execute() must charge nothing, or recovery paths double-count bytes
  // for I/O that never completed.
  stats_.parallel_ios += 1;
  stats_.blocks_read += ops.size();
  stats_.bytes_read += bytes;
}

void DiskArray::parallel_write(std::span<const WriteOp> ops) {
  std::vector<std::uint32_t> ids;
  ids.reserve(ops.size());
  for (const auto& op : ops) ids.push_back(op.disk);
  check_distinct(ids);
  transfers_.clear();
  std::uint64_t bytes = 0;
  for (const auto& op : ops) {
    transfers_.push_back(
        {op.disk, op.track, nullptr, op.src.data(), op.src.size()});
    bytes += op.src.size();
  }
  engine_.max_queue_depth =
      std::max<std::uint64_t>(engine_.max_queue_depth, transfers_.size());
  engine_.queue_depth.record(transfers_.size());
  const std::uint64_t t0 = now_ns();
  execute(transfers_);
  engine_.stall_ns += now_ns() - t0;
  // Same rule as parallel_read: charge the model only on success.
  stats_.parallel_ios += 1;
  stats_.blocks_written += ops.size();
  stats_.bytes_written += bytes;
}

std::uint64_t DiskArray::max_tracks_used() const {
  std::uint64_t used = 0;
  for (const auto& d : disks_) used = std::max(used, d->tracks_used());
  return used;
}

std::unique_ptr<DiskArray> make_disk_array(
    IoEngine engine, std::size_t num_disks, std::size_t block_size,
    std::function<std::unique_ptr<Backend>(std::size_t)> make_backend,
    std::uint64_t capacity_tracks_per_disk, DiskArrayOptions options) {
  if (engine == IoEngine::parallel) {
    return std::make_unique<ParallelDiskArray>(
        num_disks, block_size, std::move(make_backend),
        capacity_tracks_per_disk, options);
  }
  return std::make_unique<DiskArray>(num_disks, block_size,
                                     std::move(make_backend),
                                     capacity_tracks_per_disk, options);
}

}  // namespace embsp::em
