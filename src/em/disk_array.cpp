#include "em/disk_array.hpp"

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>

#include "em/parallel_disk_array.hpp"
#include "em/uring_backend.hpp"

namespace embsp::em {

namespace {
std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

DiskArray::DiskArray(
    std::size_t num_disks, std::size_t block_size,
    std::function<std::unique_ptr<Backend>(std::size_t)> make_backend,
    std::uint64_t capacity_tracks_per_disk, DiskArrayOptions options)
    : block_size_(block_size), options_(options), seen_(num_disks, 0) {
  if (num_disks == 0) {
    throw std::invalid_argument("DiskArray: need at least one disk");
  }
  disks_.reserve(num_disks);
  jitter_.reserve(num_disks);
  for (std::size_t d = 0; d < num_disks; ++d) {
    auto backend =
        make_backend ? make_backend(d) : make_memory_backend();
    disks_.push_back(std::make_unique<Disk>(block_size, std::move(backend),
                                            capacity_tracks_per_disk,
                                            options_.verify_checksums));
    // Backoff jitter only shapes sleep durations, never data, so a fixed
    // per-disk seed keeps arrays reproducible without configuration.
    jitter_.emplace_back(0xB0FF'0000ULL + d);
  }
  engine_.per_disk.resize(num_disks);
}

DiskArray::~DiskArray() {
  // Tokens never settled by the owner are settled here so their successful
  // I/O is not silently forgotten.  ParallelDiskArray drains before joining
  // its workers, making this a no-op for the concurrent engine.
  drain();
}

void DiskArray::check_distinct(std::span<const std::uint32_t> disks) const {
  if (disks.empty()) {
    throw std::invalid_argument("DiskArray: empty parallel I/O operation");
  }
  if (disks.size() > disks_.size()) {
    throw std::invalid_argument(
        "DiskArray: more ops than disks in one parallel I/O");
  }
  for (auto d : disks) {
    if (d >= disks_.size()) {
      throw std::out_of_range("DiskArray: disk index " + std::to_string(d));
    }
    if (seen_[d] != 0) {
      // Clean up before throwing so the array stays usable.
      for (auto e : disks) seen_[e] = 0;
      throw std::invalid_argument(
          "DiskArray: disk " + std::to_string(d) +
          " accessed twice in one parallel I/O (model violation)");
    }
    seen_[d] = 1;
  }
  for (auto d : disks) seen_[d] = 0;
}

void DiskArray::run_transfer(const Transfer& t) {
  auto& ds = engine_.per_disk[t.disk];
  const RetryPolicy& policy = options_.retry;
  const std::size_t n = t.tracks();
  // Span tables for the vectored path, built once per transfer (a retry
  // reuses them — it replays the whole run, which is why the simulators
  // disable coalescing when deterministic fault schedules are active).
  std::vector<std::span<std::byte>> read_spans;
  std::vector<std::span<const std::byte>> write_spans;
  if (n > 1) {
    if (t.dst != nullptr) {
      read_spans.reserve(n);
      read_spans.emplace_back(t.dst, t.len);
      for (std::byte* p : t.more_dst) read_spans.emplace_back(p, t.len);
    } else {
      write_spans.reserve(n);
      write_spans.emplace_back(t.src, t.len);
      for (const std::byte* p : t.more_src) write_spans.emplace_back(p, t.len);
    }
  }
  for (std::uint32_t attempt = 1;; ++attempt) {
    const std::uint64_t t0 = now_ns();
    try {
      if (t.dst != nullptr) {
        if (n == 1) {
          disks_[t.disk]->read_track(t.track, {t.dst, t.len});
        } else {
          disks_[t.disk]->read_tracks(t.track, read_spans);
        }
      } else {
        if (n == 1) {
          disks_[t.disk]->write_track(t.track, {t.src, t.len});
        } else {
          disks_[t.disk]->write_tracks(t.track, write_spans);
        }
      }
      const std::uint64_t dt = now_ns() - t0;
      ds.busy_ns += dt;
      ds.service_ns.record(dt);
      break;
    } catch (const IoError& e) {
      const std::uint64_t dt = now_ns() - t0;
      ds.busy_ns += dt;
      ds.service_ns.record(dt);
      if (!e.retryable() || attempt >= policy.max_attempts) {
        ds.giveups += 1;
        throw;
      }
      ds.retries += 1;
      const std::uint64_t delay = policy.backoff_ns(attempt, jitter_[t.disk]);
      ds.retry_delay_ns.record(delay);
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
      }
    }
  }
  ds.ops += n;
  ds.bytes += t.len * n;
  if (n > 1) ds.coalesced_tracks += n - 1;
}

void DiskArray::PendingOp::complete(std::size_t index,
                                    std::exception_ptr error) {
  std::lock_guard<std::mutex> lock(m);
  if (error != nullptr) errors[index] = std::move(error);
  if (--remaining == 0) {
    done = true;
    // Notify under the lock: the waiter re-checks `done` holding m, so it
    // cannot destroy the op while we still touch it.
    cv.notify_all();
  }
}

void DiskArray::start(const std::shared_ptr<PendingOp>& op) {
  // Serial engine: the issuing thread performs the transfers back-to-back
  // and STOPS at the first failure (the historical serial semantics —
  // later transfers of a failed operation never reach the disk, so
  // deterministic fault schedules keyed on per-disk call counts are
  // preserved).  The whole inline execution is issuing-thread stall.
  const std::uint64_t t0 = now_ns();
  std::size_t i = 0;
  std::exception_ptr err;
  for (; i < op->transfers.size(); ++i) {
    try {
      run_transfer(op->transfers[i]);
    } catch (...) {
      err = std::current_exception();
      break;
    }
  }
  engine_.stall_ns += now_ns() - t0;
  std::lock_guard<std::mutex> lock(op->m);
  if (err != nullptr) op->errors[i] = std::move(err);
  op->remaining = 0;
  op->done = true;
}

DiskArray::IoToken DiskArray::launch(std::shared_ptr<PendingOp> op,
                                     std::size_t width) {
  op->remaining = op->transfers.size();
  op->errors.resize(op->transfers.size());
  engine_.max_queue_depth =
      std::max<std::uint64_t>(engine_.max_queue_depth, width);
  engine_.queue_depth.record(width);
  const IoToken token = next_token_++;
  pending_.emplace(token, op);
  start(op);
  return token;
}

template <class Op>
DiskArray::IoToken DiskArray::submit(std::span<const Op> ops, bool is_read) {
  std::vector<std::uint32_t> ids;
  ids.reserve(ops.size());
  for (const auto& op : ops) ids.push_back(op.disk);
  check_distinct(ids);
  auto op = std::make_shared<PendingOp>();
  op->is_read = is_read;
  op->transfers.reserve(ops.size());
  for (const auto& o : ops) {
    if constexpr (std::is_same_v<Op, ReadOp>) {
      op->transfers.push_back(
          {o.disk, o.track, o.dst.data(), nullptr, o.dst.size()});
      op->bytes += o.dst.size();
    } else {
      op->transfers.push_back(
          {o.disk, o.track, nullptr, o.src.data(), o.src.size()});
      op->bytes += o.src.size();
    }
  }
  op->blocks = ops.size();
  return launch(std::move(op), ops.size());
}

template <class Op>
DiskArray::IoToken DiskArray::submit_batch(std::span<const Op> ops,
                                           std::uint64_t cycles,
                                           bool is_read) {
  if (ops.empty()) {
    throw std::invalid_argument("DiskArray: empty batched I/O");
  }
  // Partition op indices per disk, preserving op order — the per-disk
  // execution order (and therefore any per-disk deterministic fault
  // schedule) is exactly the order the caller listed the ops in.
  std::vector<std::vector<std::size_t>> per_disk(disks_.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].disk >= disks_.size()) {
      throw std::out_of_range("DiskArray: disk index " +
                              std::to_string(ops[i].disk));
    }
    per_disk[ops[i].disk].push_back(i);
  }
  std::size_t deepest = 0;
  std::size_t width = 0;
  for (const auto& v : per_disk) {
    deepest = std::max(deepest, v.size());
    if (!v.empty()) ++width;
  }
  if (cycles < deepest) {
    throw std::invalid_argument(
        "DiskArray: batch declares " + std::to_string(cycles) +
        " cycles but some disk needs " + std::to_string(deepest) +
        " (one track per disk per parallel I/O)");
  }
  auto op = std::make_shared<PendingOp>();
  op->is_read = is_read;
  op->cycles = cycles;
  op->blocks = ops.size();
  for (std::size_t d = 0; d < per_disk.size(); ++d) {
    const auto& idxs = per_disk[d];
    for (std::size_t j = 0; j < idxs.size();) {
      const Op& first = ops[idxs[j]];
      Transfer t{};
      t.disk = first.disk;
      t.track = first.track;
      if constexpr (std::is_same_v<Op, ReadOp>) {
        t.dst = first.dst.data();
        t.len = first.dst.size();
      } else {
        t.src = first.src.data();
        t.len = first.src.size();
      }
      op->bytes += t.len;
      std::size_t k = j + 1;
      // Extend the run while the next op on this disk targets the very
      // next track (physical adjacency is what preadv/pwritev require).
      while (options_.coalesce && k < idxs.size() &&
             ops[idxs[k]].track == ops[idxs[k - 1]].track + 1) {
        const Op& next = ops[idxs[k]];
        if constexpr (std::is_same_v<Op, ReadOp>) {
          if (next.dst.size() != t.len) break;
          t.more_dst.push_back(next.dst.data());
        } else {
          if (next.src.size() != t.len) break;
          t.more_src.push_back(next.src.data());
        }
        op->bytes += t.len;
        ++k;
      }
      op->transfers.push_back(std::move(t));
      j = k;
    }
  }
  return launch(std::move(op), width);
}

void DiskArray::settle(PendingOp& op, bool swallow) {
  {
    std::unique_lock<std::mutex> lock(op.m);
    if (!op.done) {
      const std::uint64_t t0 = now_ns();
      op.cv.wait(lock, [&] { return op.done; });
      engine_.stall_ns += now_ns() - t0;
    }
  }
  std::exception_ptr first;
  for (auto& e : op.errors) {
    if (e != nullptr) {
      first = e;
      break;
    }
  }
  if (first != nullptr) {
    // Model accounting only on success: a failed operation must charge
    // nothing, or recovery paths double-count bytes for I/O that never
    // completed.
    if (!swallow) std::rethrow_exception(first);
    // Swallowed ≠ invisible: quiescence points (drain) discard the error to
    // keep rollback noexcept, but the obs snapshot must still show that a
    // recovery-path I/O failed — record every swallow and keep the first
    // error's classification.
    engine_.drain_errors += 1;
    if (engine_.last_drain_error_kind < 0) {
      try {
        std::rethrow_exception(first);
      } catch (const IoError& e) {
        engine_.last_drain_error_kind = static_cast<int>(e.kind());
        engine_.last_drain_error = e.what();
      } catch (const std::exception& e) {
        engine_.last_drain_error_kind = static_cast<int>(IoError::Kind::persistent);
        engine_.last_drain_error = e.what();
      } catch (...) {
        engine_.last_drain_error_kind = static_cast<int>(IoError::Kind::persistent);
        engine_.last_drain_error = "unknown error";
      }
    }
    return;
  }
  stats_.parallel_ios += op.cycles;
  if (op.is_read) {
    stats_.blocks_read += op.blocks;
    stats_.bytes_read += op.bytes;
  } else {
    stats_.blocks_written += op.blocks;
    stats_.bytes_written += op.bytes;
  }
}

DiskArray::IoToken DiskArray::submit_read(std::span<const ReadOp> ops) {
  return submit(ops, /*is_read=*/true);
}

DiskArray::IoToken DiskArray::submit_write(std::span<const WriteOp> ops) {
  return submit(ops, /*is_read=*/false);
}

DiskArray::IoToken DiskArray::submit_read_batch(std::span<const ReadOp> ops,
                                                std::uint64_t cycles) {
  return submit_batch(ops, cycles, /*is_read=*/true);
}

DiskArray::IoToken DiskArray::submit_write_batch(std::span<const WriteOp> ops,
                                                 std::uint64_t cycles) {
  return submit_batch(ops, cycles, /*is_read=*/false);
}

void DiskArray::parallel_read_batch(std::span<const ReadOp> ops,
                                    std::uint64_t cycles) {
  wait(submit_read_batch(ops, cycles));
}

void DiskArray::parallel_write_batch(std::span<const WriteOp> ops,
                                     std::uint64_t cycles) {
  wait(submit_write_batch(ops, cycles));
}

void DiskArray::wait(IoToken token) {
  auto it = pending_.find(token);
  if (it == pending_.end()) return;  // already settled
  auto op = std::move(it->second);
  pending_.erase(it);
  settle(*op, /*swallow=*/false);
}

void DiskArray::wait_all() {
  std::exception_ptr first;
  for (auto& [token, op] : pending_) {
    try {
      settle(*op, /*swallow=*/false);
    } catch (...) {
      if (first == nullptr) first = std::current_exception();
    }
  }
  pending_.clear();
  if (first != nullptr) std::rethrow_exception(first);
}

void DiskArray::drain() noexcept {
  for (auto& [token, op] : pending_) settle(*op, /*swallow=*/true);
  pending_.clear();
}

void DiskArray::parallel_read(std::span<const ReadOp> ops) {
  wait(submit_read(ops));
}

void DiskArray::parallel_write(std::span<const WriteOp> ops) {
  wait(submit_write(ops));
}

void DiskArray::sync() {
  wait_all();
  for (auto& d : disks_) d->flush();
}

std::uint64_t DiskArray::max_tracks_used() const {
  std::uint64_t used = 0;
  for (const auto& d : disks_) used = std::max(used, d->tracks_used());
  return used;
}

std::size_t DiskArray::register_io_buffers(
    std::span<const std::span<std::byte>> regions) {
  std::size_t accepted = 0;
  for (auto& d : disks_) {
    if (d->backend().register_buffers(regions)) ++accepted;
  }
  return accepted;
}

void DiskArray::harvest_backend_stats() {
  // Re-snapshot (assign, not accumulate) so calling at every superstep
  // boundary never double-counts.  When a decorator (FaultInjectingBackend)
  // wraps the UringBackend the dynamic_cast misses and the ring counters
  // stay zero — fault runs care about schedules, not hardware telemetry.
  UringEngineStats u{};
  for (auto& d : disks_) {
    const auto* ub = dynamic_cast<const UringBackend*>(&d->backend());
    if (ub == nullptr) continue;
    const UringBackendStats& s = ub->uring_stats();
    u.rings += 1;
    if (ub->direct_io()) u.direct_rings += 1;
    u.sqes += s.sqes;
    u.enters += s.enters;
    u.fixed_ops += s.fixed_ops;
    u.bounced_bytes += s.bounced_bytes;
    u.ring_depth.merge(s.ring_depth);
    u.completion_ns.merge(s.completion_ns);
  }
  engine_.uring = std::move(u);
}

std::unique_ptr<DiskArray> make_disk_array(
    IoEngine engine, std::size_t num_disks, std::size_t block_size,
    std::function<std::unique_ptr<Backend>(std::size_t)> make_backend,
    std::uint64_t capacity_tracks_per_disk, DiskArrayOptions options) {
  if (engine == IoEngine::parallel || engine == IoEngine::uring) {
    // The uring engine reuses the per-drive worker scheduling; what changes
    // is the backend each drive talks to (UringBackend — the simulators
    // default make_backend to make_uring_scratch_factory when the caller
    // supplied none).  Keeping one scheduler preserves per-disk FIFO order
    // and therefore byte/cost/fault parity across engines.
    return std::make_unique<ParallelDiskArray>(
        num_disks, block_size, std::move(make_backend),
        capacity_tracks_per_disk, options);
  }
  return std::make_unique<DiskArray>(num_disks, block_size,
                                     std::move(make_backend),
                                     capacity_tracks_per_disk, options);
}

}  // namespace embsp::em
