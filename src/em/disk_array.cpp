#include "em/disk_array.hpp"

#include <stdexcept>
#include <string>

namespace embsp::em {

DiskArray::DiskArray(
    std::size_t num_disks, std::size_t block_size,
    std::function<std::unique_ptr<Backend>(std::size_t)> make_backend,
    std::uint64_t capacity_tracks_per_disk)
    : block_size_(block_size), seen_(num_disks, 0) {
  if (num_disks == 0) {
    throw std::invalid_argument("DiskArray: need at least one disk");
  }
  disks_.reserve(num_disks);
  for (std::size_t d = 0; d < num_disks; ++d) {
    auto backend =
        make_backend ? make_backend(d) : make_memory_backend();
    disks_.push_back(std::make_unique<Disk>(block_size, std::move(backend),
                                            capacity_tracks_per_disk));
  }
}

void DiskArray::check_distinct(std::span<const std::uint32_t> disks) const {
  if (disks.empty()) {
    throw std::invalid_argument("DiskArray: empty parallel I/O operation");
  }
  if (disks.size() > disks_.size()) {
    throw std::invalid_argument(
        "DiskArray: more ops than disks in one parallel I/O");
  }
  for (auto d : disks) {
    if (d >= disks_.size()) {
      throw std::out_of_range("DiskArray: disk index " + std::to_string(d));
    }
    if (seen_[d] != 0) {
      // Clean up before throwing so the array stays usable.
      for (auto e : disks) seen_[e] = 0;
      throw std::invalid_argument(
          "DiskArray: disk " + std::to_string(d) +
          " accessed twice in one parallel I/O (model violation)");
    }
    seen_[d] = 1;
  }
  for (auto d : disks) seen_[d] = 0;
}

void DiskArray::parallel_read(std::span<const ReadOp> ops) {
  std::vector<std::uint32_t> ids;
  ids.reserve(ops.size());
  for (const auto& op : ops) ids.push_back(op.disk);
  check_distinct(ids);
  for (const auto& op : ops) {
    disks_[op.disk]->read_track(op.track, op.dst);
    stats_.bytes_read += op.dst.size();
  }
  stats_.parallel_ios += 1;
  stats_.blocks_read += ops.size();
}

void DiskArray::parallel_write(std::span<const WriteOp> ops) {
  std::vector<std::uint32_t> ids;
  ids.reserve(ops.size());
  for (const auto& op : ops) ids.push_back(op.disk);
  check_distinct(ids);
  for (const auto& op : ops) {
    disks_[op.disk]->write_track(op.track, op.src);
    stats_.bytes_written += op.src.size();
  }
  stats_.parallel_ios += 1;
  stats_.blocks_written += ops.size();
}

std::uint64_t DiskArray::max_tracks_used() const {
  std::uint64_t used = 0;
  for (const auto& d : disks_) used = std::max(used, d->tracks_used());
  return used;
}

}  // namespace embsp::em
