// A single simulated disk drive (§3): a sequence of tracks, each storing
// exactly one block of B bytes, addressed by track number.
//
// With `verify_checksums`, the drive keeps a 64-bit checksum per written
// track (in-memory metadata, the same class as the linked buckets' pointer
// tables) and verifies it on every read: silent bit-rot surfaces as a
// classified CorruptBlockError instead of wrong data.  The checksum table
// never touches the backend, so enabling verification leaves the on-disk
// image byte-identical.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "em/backend.hpp"
#include "util/checksum.hpp"

namespace embsp::em {

class Disk {
 public:
  /// `block_size` is B in bytes.  `capacity_tracks` == 0 means unbounded
  /// (the backend grows on demand); a nonzero capacity makes out-of-range
  /// accesses throw, which the tests use to pin down space bounds.
  Disk(std::size_t block_size, std::unique_ptr<Backend> backend,
       std::uint64_t capacity_tracks = 0, bool verify_checksums = false);

  void read_track(std::uint64_t track, std::span<std::byte> dst);
  void write_track(std::uint64_t track, std::span<const std::byte> src);

  /// Read `dsts.size()` consecutive tracks starting at `first_track` with a
  /// single vectored backend transfer.  Per-track accounting is unchanged:
  /// reads() advances by dsts.size() and each track's checksum is verified
  /// individually, so the only observable difference from a read_track loop
  /// is the number of backend calls.
  void read_tracks(std::uint64_t first_track,
                   std::span<const std::span<std::byte>> dsts);

  /// Write `srcs.size()` consecutive tracks starting at `first_track`;
  /// mirror of read_tracks.
  void write_tracks(std::uint64_t first_track,
                    std::span<const std::span<const std::byte>> srcs);

  /// Flush buffered writes to the backend's medium (DiskArray::sync).
  void flush() { backend_->flush(); }

  /// The storage substrate behind this drive — used by DiskArray to pass
  /// through buffer registrations and to harvest engine-specific stats
  /// (e.g. UringBackend ring counters).
  [[nodiscard]] Backend& backend() { return *backend_; }
  [[nodiscard]] const Backend& backend() const { return *backend_; }

  [[nodiscard]] std::size_t block_size() const { return block_size_; }
  [[nodiscard]] std::uint64_t capacity_tracks() const { return capacity_; }
  [[nodiscard]] bool verify_checksums() const { return verify_; }

  /// Highest track ever written + 1 — the disk-space usage the space bounds
  /// of Lemma 1 / Theorem 1 talk about.
  [[nodiscard]] std::uint64_t tracks_used() const { return tracks_used_; }

  /// Per-drive transfer counters (used to verify even load across drives).
  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }

  /// Reads that failed checksum verification (each throws; retried reads
  /// that then pass do not undo the count).
  [[nodiscard]] std::uint64_t checksum_failures() const {
    return checksum_failures_;
  }

  /// Off-model track access for the checkpoint subsystem: reads/writes the
  /// medium without touching reads_/writes_ counters or checksum
  /// verification (restore_track still refreshes the checksum table so
  /// later verified reads pass).  Callers must hand these the *unwrapped*
  /// backend path — see FaultInjectingBackend::inner() — so checkpoint
  /// traffic consumes no fault-schedule draws.  Model IoStats are charged
  /// by the DiskArray layer, which these bypass entirely: checkpointing is
  /// outside the EM-BSP cost model, like the allocator's metadata.
  void peek_track(std::uint64_t track, std::span<std::byte> dst,
                  Backend& raw) {
    check(track, dst.size());
    raw.read(track * block_size_, dst);
  }
  void restore_track(std::uint64_t track, std::span<const std::byte> src,
                     Backend& raw) {
    check(track, src.size());
    raw.write(track * block_size_, src);
    tracks_used_ = std::max(tracks_used_, track + 1);
    if (verify_) {
      if (track >= has_sum_.size()) {
        has_sum_.resize(track + 1, 0);
        sums_.resize(track + 1, 0);
      }
      sums_[track] = util::checksum64(src);
      has_sum_[track] = 1;
    }
  }

  /// Restore the tracks_used() high-water mark on resume (the checkpoint
  /// records it; a fresh Disk starts at 0).
  void note_tracks_used(std::uint64_t used) {
    tracks_used_ = std::max(tracks_used_, used);
  }

 private:
  void check(std::uint64_t track, std::size_t len) const;

  std::size_t block_size_;
  std::unique_ptr<Backend> backend_;
  std::uint64_t capacity_;
  bool verify_;
  std::uint64_t tracks_used_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t checksum_failures_ = 0;
  std::vector<std::uint64_t> sums_;     ///< per-track checksum (if verify_)
  std::vector<std::uint8_t> has_sum_;   ///< track ever written
};

}  // namespace embsp::em
