// A single simulated disk drive (§3): a sequence of tracks, each storing
// exactly one block of B bytes, addressed by track number.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "em/backend.hpp"

namespace embsp::em {

class Disk {
 public:
  /// `block_size` is B in bytes.  `capacity_tracks` == 0 means unbounded
  /// (the backend grows on demand); a nonzero capacity makes out-of-range
  /// accesses throw, which the tests use to pin down space bounds.
  Disk(std::size_t block_size, std::unique_ptr<Backend> backend,
       std::uint64_t capacity_tracks = 0);

  void read_track(std::uint64_t track, std::span<std::byte> dst);
  void write_track(std::uint64_t track, std::span<const std::byte> src);

  /// Flush buffered writes to the backend's medium (DiskArray::sync).
  void flush() { backend_->flush(); }

  [[nodiscard]] std::size_t block_size() const { return block_size_; }
  [[nodiscard]] std::uint64_t capacity_tracks() const { return capacity_; }

  /// Highest track ever written + 1 — the disk-space usage the space bounds
  /// of Lemma 1 / Theorem 1 talk about.
  [[nodiscard]] std::uint64_t tracks_used() const { return tracks_used_; }

  /// Per-drive transfer counters (used to verify even load across drives).
  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }

 private:
  void check(std::uint64_t track, std::size_t len) const;

  std::size_t block_size_;
  std::unique_ptr<Backend> backend_;
  std::uint64_t capacity_;
  std::uint64_t tracks_used_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace embsp::em
