// Track allocation for one disk drive.
//
// Two allocation disciplines coexist in the simulation:
//  * contiguous regions — reserved once at setup for the context store and
//    the reorganized message areas ("standard consecutive format"); and
//  * single tracks — allocated and recycled while message buckets are being
//    written in "standard linked format" ("whenever we write a block of
//    bucket i to disk Dj, we allocate a free track on Dj").
// Contiguous reservations come from a bump pointer; single tracks prefer
// the free list so space is reused across compound supersteps.
#pragma once

#include <cstdint>
#include <vector>

namespace embsp::em {

class TrackAllocator {
 public:
  TrackAllocator() = default;

  /// Complete allocator state, captured at a superstep boundary so a failed
  /// superstep can be re-executed from identical allocation state (tracks
  /// handed out by the abandoned attempt are reclaimed wholesale).
  struct Snapshot {
    std::uint64_t next = 0;
    std::vector<std::uint64_t> free;
  };

  [[nodiscard]] Snapshot snapshot() const { return {next_, free_}; }
  void restore(const Snapshot& s) {
    next_ = s.next;
    free_ = s.free;
  }

  /// Reserve `n` consecutive tracks; returns the first track number.
  std::uint64_t reserve_region(std::uint64_t n);

  /// Allocate a single track (recycled if possible).
  std::uint64_t alloc_track();

  /// Return a single track to the free list.
  void release_track(std::uint64_t track);

  /// Tracks handed out and never released (high-water mark of the bump
  /// pointer; released tracks still count — they remain reserved space).
  [[nodiscard]] std::uint64_t high_water() const { return next_; }

  [[nodiscard]] std::size_t free_tracks() const { return free_.size(); }

 private:
  std::uint64_t next_ = 0;
  std::vector<std::uint64_t> free_;
};

/// One allocator per drive of a disk array.
class TrackAllocators {
 public:
  explicit TrackAllocators(std::size_t num_disks) : per_disk_(num_disks) {}

  TrackAllocator& operator[](std::size_t d) { return per_disk_[d]; }
  const TrackAllocator& operator[](std::size_t d) const { return per_disk_[d]; }
  [[nodiscard]] std::size_t size() const { return per_disk_.size(); }

  /// Reserve the same number of consecutive tracks on every disk; returns
  /// the per-disk start tracks (used for striped regions).
  std::vector<std::uint64_t> reserve_striped(std::uint64_t tracks_per_disk);

  [[nodiscard]] std::vector<TrackAllocator::Snapshot> snapshot() const {
    std::vector<TrackAllocator::Snapshot> s;
    s.reserve(per_disk_.size());
    for (const auto& a : per_disk_) s.push_back(a.snapshot());
    return s;
  }

  void restore(const std::vector<TrackAllocator::Snapshot>& s) {
    for (std::size_t d = 0; d < per_disk_.size(); ++d) {
      per_disk_[d].restore(s[d]);
    }
  }

 private:
  std::vector<TrackAllocator> per_disk_;
};

}  // namespace embsp::em
