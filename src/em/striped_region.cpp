#include "em/striped_region.hpp"

#include <stdexcept>
#include <string>

namespace embsp::em {

StripedRegion::StripedRegion(DiskArray& disks,
                             std::vector<std::uint64_t> start_tracks,
                             std::uint64_t num_blocks)
    : disks_(&disks),
      start_tracks_(std::move(start_tracks)),
      num_blocks_(num_blocks) {
  if (start_tracks_.size() != disks.num_disks()) {
    throw std::invalid_argument(
        "StripedRegion: need one start track per disk");
  }
}

StripedRegion StripedRegion::reserve(DiskArray& disks, TrackAllocators& alloc,
                                     std::uint64_t num_blocks) {
  const std::uint64_t d = disks.num_disks();
  const std::uint64_t per_disk = (num_blocks + d - 1) / d;
  return StripedRegion(disks, alloc.reserve_striped(per_disk), num_blocks);
}

std::pair<std::uint32_t, std::uint64_t> StripedRegion::location(
    std::uint64_t g) const {
  const std::uint64_t d = disks_->num_disks();
  const auto disk = static_cast<std::uint32_t>(g % d);
  return {disk, start_tracks_[disk] + g / d};
}

void StripedRegion::check_range(std::uint64_t first, std::uint64_t count,
                                std::size_t bytes) const {
  if (first + count > num_blocks_) {
    throw std::out_of_range("StripedRegion: blocks [" + std::to_string(first) +
                            ", " + std::to_string(first + count) +
                            ") out of range (size " +
                            std::to_string(num_blocks_) + ")");
  }
  if (bytes != count * disks_->block_size()) {
    throw std::invalid_argument("StripedRegion: buffer size mismatch");
  }
}

void StripedRegion::read_blocks(std::uint64_t first, std::uint64_t count,
                                std::span<std::byte> dst) const {
  check_range(first, count, dst.size());
  const std::uint64_t d = disks_->num_disks();
  const std::size_t bs = disks_->block_size();
  std::vector<ReadOp> ops;
  ops.reserve(d);
  std::uint64_t done = 0;
  while (done < count) {
    const std::uint64_t batch = std::min<std::uint64_t>(d, count - done);
    ops.clear();
    for (std::uint64_t i = 0; i < batch; ++i) {
      const std::uint64_t g = first + done + i;
      const auto [disk, track] = location(g);
      ops.push_back({disk, track, dst.subspan((done + i) * bs, bs)});
    }
    disks_->parallel_read(ops);
    done += batch;
  }
}

void StripedRegion::write_blocks(std::uint64_t first, std::uint64_t count,
                                 std::span<const std::byte> src) {
  check_range(first, count, src.size());
  const std::uint64_t d = disks_->num_disks();
  const std::size_t bs = disks_->block_size();
  std::vector<WriteOp> ops;
  ops.reserve(d);
  std::uint64_t done = 0;
  while (done < count) {
    const std::uint64_t batch = std::min<std::uint64_t>(d, count - done);
    ops.clear();
    for (std::uint64_t i = 0; i < batch; ++i) {
      const std::uint64_t g = first + done + i;
      const auto [disk, track] = location(g);
      ops.push_back({disk, track, src.subspan((done + i) * bs, bs)});
    }
    disks_->parallel_write(ops);
    done += batch;
  }
}

}  // namespace embsp::em
