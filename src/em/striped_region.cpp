#include "em/striped_region.hpp"

#include <stdexcept>
#include <string>

namespace embsp::em {

StripedRegion::StripedRegion(DiskArray& disks,
                             std::vector<std::uint64_t> start_tracks,
                             std::uint64_t num_blocks)
    : disks_(&disks),
      start_tracks_(std::move(start_tracks)),
      num_blocks_(num_blocks) {
  if (start_tracks_.size() != disks.num_disks()) {
    throw std::invalid_argument(
        "StripedRegion: need one start track per disk");
  }
}

StripedRegion StripedRegion::reserve(DiskArray& disks, TrackAllocators& alloc,
                                     std::uint64_t num_blocks) {
  const std::uint64_t d = disks.num_disks();
  const std::uint64_t per_disk = (num_blocks + d - 1) / d;
  return StripedRegion(disks, alloc.reserve_striped(per_disk), num_blocks);
}

std::pair<std::uint32_t, std::uint64_t> StripedRegion::location(
    std::uint64_t g) const {
  const std::uint64_t d = disks_->num_disks();
  const auto disk = static_cast<std::uint32_t>(g % d);
  return {disk, start_tracks_[disk] + g / d};
}

void StripedRegion::check_range(std::uint64_t first, std::uint64_t count,
                                std::size_t bytes) const {
  if (first + count > num_blocks_) {
    throw std::out_of_range("StripedRegion: blocks [" + std::to_string(first) +
                            ", " + std::to_string(first + count) +
                            ") out of range (size " +
                            std::to_string(num_blocks_) + ")");
  }
  if (bytes != count * disks_->block_size()) {
    throw std::invalid_argument("StripedRegion: buffer size mismatch");
  }
}

void StripedRegion::read_blocks(std::uint64_t first, std::uint64_t count,
                                std::span<std::byte> dst) const {
  check_range(first, count, dst.size());
  if (count == 0) return;
  const std::uint64_t d = disks_->num_disks();
  const std::size_t bs = disks_->block_size();
  // One batched submission for the whole run, pre-declared at the cost the
  // old <=D-batch loop charged: ceil(count/D) parallel I/Os.  A disk's
  // blocks (g, g+D, g+2D, ...) sit on consecutive tracks, so the g-ascending
  // op order coalesces into one vectored backend transfer per drive.
  std::vector<ReadOp> ops;
  ops.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto [disk, track] = location(first + i);
    ops.push_back({disk, track, dst.subspan(i * bs, bs)});
  }
  disks_->parallel_read_batch(ops, (count + d - 1) / d);
}

void StripedRegion::write_blocks(std::uint64_t first, std::uint64_t count,
                                 std::span<const std::byte> src) {
  check_range(first, count, src.size());
  if (count == 0) return;
  const std::uint64_t d = disks_->num_disks();
  const std::size_t bs = disks_->block_size();
  std::vector<WriteOp> ops;
  ops.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto [disk, track] = location(first + i);
    ops.push_back({disk, track, src.subspan(i * bs, bs)});
  }
  disks_->parallel_write_batch(ops, (count + d - 1) / d);
}

}  // namespace embsp::em
