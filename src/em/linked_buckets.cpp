#include "em/linked_buckets.hpp"

#include <stdexcept>
#include <string>

namespace embsp::em {

LinkedBuckets::LinkedBuckets(DiskArray& disks, TrackAllocators& alloc,
                             std::size_t num_buckets)
    : disks_(&disks), alloc_(&alloc), num_buckets_(num_buckets) {
  if (num_buckets == 0) {
    throw std::invalid_argument("LinkedBuckets: need at least one bucket");
  }
  chains_.resize(disks.num_disks());
  for (auto& per_disk : chains_) per_disk.resize(num_buckets);
}

DiskArray::IoToken LinkedBuckets::submit_write_cycle(
    std::span<const OutBlock> blocks, util::Rng& rng) {
  const std::size_t d = disks_->num_disks();
  if (blocks.empty()) return 0;
  if (blocks.size() > d) {
    throw std::invalid_argument(
        "LinkedBuckets: at most one block per disk per write cycle");
  }
  // Placement is fixed at submission: the permutation draw, the track
  // allocation and the chain append all happen here, in call order, so the
  // write-behind schedule consumes the RNG stream exactly like the blocking
  // one and the eventual disk image is byte-identical.
  std::vector<std::uint32_t> perm;
  rng.permutation(d, perm);

  std::vector<WriteOp> ops;
  ops.reserve(blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (blocks[i].bucket >= num_buckets_) {
      throw std::out_of_range("LinkedBuckets: bucket " +
                              std::to_string(blocks[i].bucket));
    }
    const std::uint32_t disk = perm[i];
    const std::uint64_t track = (*alloc_)[disk].alloc_track();
    ops.push_back({disk, track, blocks[i].data});
    chains_[disk][blocks[i].bucket].push_back(track);
  }
  return disks_->submit_write(ops);
}

void LinkedBuckets::write_cycle(std::span<const OutBlock> blocks,
                                util::Rng& rng) {
  disks_->wait(submit_write_cycle(blocks, rng));
}

DiskArray::IoToken LinkedBuckets::submit_write_cycle_assigned(
    std::span<const OutBlock> blocks, std::span<const std::uint32_t> disks) {
  if (blocks.empty()) return 0;
  if (blocks.size() != disks.size() || blocks.size() > disks_->num_disks()) {
    throw std::invalid_argument(
        "LinkedBuckets: bad assigned write cycle shape");
  }
  std::vector<WriteOp> ops;
  ops.reserve(blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (blocks[i].bucket >= num_buckets_) {
      throw std::out_of_range("LinkedBuckets: bucket " +
                              std::to_string(blocks[i].bucket));
    }
    const std::uint32_t disk = disks[i];
    const std::uint64_t track = (*alloc_)[disk].alloc_track();
    ops.push_back({disk, track, blocks[i].data});
    chains_[disk][blocks[i].bucket].push_back(track);
  }
  return disks_->submit_write(ops);
}

void LinkedBuckets::write_cycle_assigned(
    std::span<const OutBlock> blocks, std::span<const std::uint32_t> disks) {
  disks_->wait(submit_write_cycle_assigned(blocks, disks));
}

std::optional<std::uint64_t> LinkedBuckets::pop_track(std::size_t bucket,
                                                      std::size_t disk) {
  auto& chain = chains_[disk][bucket];
  if (chain.empty()) return std::nullopt;
  const std::uint64_t t = chain.back();
  chain.pop_back();
  return t;
}

void LinkedBuckets::release_track(std::size_t disk, std::uint64_t track) {
  (*alloc_)[disk].release_track(track);
}

std::size_t LinkedBuckets::blocks_on_disk(std::size_t bucket,
                                          std::size_t disk) const {
  return chains_[disk][bucket].size();
}

std::size_t LinkedBuckets::bucket_size(std::size_t bucket) const {
  std::size_t total = 0;
  for (const auto& per_disk : chains_) total += per_disk[bucket].size();
  return total;
}

void LinkedBuckets::drain_bucket(
    std::size_t bucket,
    const std::function<void(std::span<const std::byte>)>& consume) {
  const std::size_t d = disks_->num_disks();
  const std::size_t bs = disks_->block_size();
  std::vector<std::byte> buf(d * bs);
  std::vector<ReadOp> ops;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> popped;
  for (;;) {
    ops.clear();
    popped.clear();
    for (std::size_t disk = 0; disk < d; ++disk) {
      if (auto track = pop_track(bucket, disk)) {
        ops.push_back({static_cast<std::uint32_t>(disk), *track,
                       std::span<std::byte>(buf).subspan(ops.size() * bs, bs)});
        popped.emplace_back(static_cast<std::uint32_t>(disk), *track);
      }
    }
    if (ops.empty()) break;
    disks_->parallel_read(ops);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      consume(std::span<const std::byte>(buf).subspan(i * bs, bs));
      release_track(popped[i].first, popped[i].second);
    }
  }
}

}  // namespace embsp::em
