// I/O cost accounting for the EM-BSP model (§3 of the paper).
//
// The model charges G time units per *parallel I/O operation*: one operation
// moves at most one track (= one block of B bytes) per disk, touching up to
// D disks at once.  The simulation theorems (Theorem 1, Corollary 1) are
// statements about the number of such operations, so the substrate counts
// them exactly; wall-clock time plays no role in the accounting.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace embsp::obs {
class Registry;
}  // namespace embsp::obs

namespace embsp::em {

struct IoStats {
  std::uint64_t parallel_ios = 0;   ///< number of parallel I/O operations
  std::uint64_t blocks_read = 0;    ///< total blocks moved disk -> memory
  std::uint64_t blocks_written = 0; ///< total blocks moved memory -> disk
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  /// Model I/O time: t_IO = G * (#parallel I/O operations).
  [[nodiscard]] double io_time(double cost_g) const {
    return cost_g * static_cast<double>(parallel_ios);
  }

  /// Fraction of disk slots actually used: 1.0 means every parallel I/O
  /// moved a block on every disk (the "full parallel disk I/O" the paper is
  /// after); 1/D means disks were used one at a time.
  [[nodiscard]] double utilization(std::size_t num_disks) const {
    if (parallel_ios == 0 || num_disks == 0) return 0.0;
    return static_cast<double>(blocks_read + blocks_written) /
           (static_cast<double>(parallel_ios) *
            static_cast<double>(num_disks));
  }

  IoStats& operator+=(const IoStats& o) {
    parallel_ios += o.parallel_ios;
    blocks_read += o.blocks_read;
    blocks_written += o.blocks_written;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    return *this;
  }

  /// Stats accumulated since `before` was captured — used for per-phase
  /// breakdowns (fetch / compute / write / reorganize).
  [[nodiscard]] IoStats since(const IoStats& before) const {
    IoStats d;
    d.parallel_ios = parallel_ios - before.parallel_ios;
    d.blocks_read = blocks_read - before.blocks_read;
    d.blocks_written = blocks_written - before.blocks_written;
    d.bytes_read = bytes_read - before.bytes_read;
    d.bytes_written = bytes_written - before.bytes_written;
    return d;
  }
};

/// Wall-clock execution stats of one disk drive inside an I/O engine.
/// Model cost (IoStats above) is deterministic; these measure what the
/// engine actually did with the hardware.  Written only by the drive's
/// owning thread (the caller for the serial engine, the drive's worker for
/// the parallel engine); safe to read whenever no parallel I/O is in
/// flight.
struct DiskIoStats {
  std::uint64_t ops = 0;      ///< one-track transfers executed on this drive
  std::uint64_t bytes = 0;    ///< bytes moved through this drive
  std::uint64_t busy_ns = 0;  ///< wall time spent inside backend transfers
  std::uint64_t retries = 0;  ///< transfer attempts repeated after IoError
  std::uint64_t giveups = 0;  ///< transfers abandoned (retry budget spent
                              ///< or persistent failure)
  /// Tracks that rode along in a coalesced vectored transfer instead of
  /// costing their own backend call: a run of n adjacent tracks adds n - 1.
  /// ops still counts every track, so ops - coalesced_tracks approximates
  /// the drive's backend call count.
  std::uint64_t coalesced_tracks = 0;
  /// Per-attempt service time (every backend transfer attempt, successful
  /// or not) — busy_ns is this histogram's sum.
  obs::LogHistogram service_ns;
  /// Backoff delay actually slept before each retry (jittered; see
  /// RetryPolicy) — the latency cost of absorbing transient faults.
  obs::LogHistogram retry_delay_ns;
};

/// Ring-level execution stats aggregated over the UringBackends of a disk
/// array (zero/inactive when no drive runs on io_uring).  Harvested at
/// quiescence points by DiskArray::harvest_backend_stats().
struct UringEngineStats {
  std::uint64_t rings = 0;         ///< drives backed by an io_uring instance
  std::uint64_t direct_rings = 0;  ///< of those, rings with O_DIRECT in effect
  std::uint64_t sqes = 0;          ///< SQEs submitted across all rings
  std::uint64_t enters = 0;        ///< io_uring_enter syscalls
  std::uint64_t fixed_ops = 0;     ///< READ_FIXED/WRITE_FIXED SQEs
  std::uint64_t bounced_bytes = 0; ///< bytes copied through O_DIRECT staging
  obs::LogHistogram ring_depth;    ///< SQEs in flight per submission wave
  obs::LogHistogram completion_ns; ///< submit-to-reap latency per wave
  [[nodiscard]] bool active() const { return rings != 0; }
};

/// Engine-level execution stats of a whole disk array.
struct EngineStats {
  std::vector<DiskIoStats> per_disk;
  /// Wall time the issuing thread spent blocked waiting for parallel I/O
  /// operations to complete.  For the serial engine this equals the total
  /// transfer time (the caller does the work itself); for the parallel
  /// engine it is the per-operation max over the involved drives — the gap
  /// between the two is the overlap the worker pool buys.
  std::uint64_t stall_ns = 0;
  /// Largest number of per-disk transfers issued by one parallel I/O
  /// operation (== D when every drive participates in some operation).
  /// Semantics differ by engine: under ParallelDiskArray the transfers are
  /// genuinely concurrent, so this is true in-flight depth; under the
  /// serial DiskArray the issuing thread runs them back-to-back, so it is
  /// the *batch size* of the widest operation, not a concurrency measure.
  std::uint64_t max_queue_depth = 0;
  /// Distribution of per-operation batch width (same per-engine caveat as
  /// max_queue_depth): how often the caller actually filled all D slots.
  obs::LogHistogram queue_depth;
  /// Errors swallowed by drain() at quiescence points (rollback paths).
  /// drain() is noexcept by contract, but the failures must stay visible:
  /// the counter and the first error's classification surface in the obs
  /// snapshot (see export_metrics).
  std::uint64_t drain_errors = 0;
  /// IoError::Kind of the first swallowed drain error as an int
  /// (transient=0, persistent=1, corrupt=2); -1 when none occurred.
  int last_drain_error_kind = -1;
  /// what() of the first swallowed drain error; empty when none occurred.
  std::string last_drain_error;
  /// io_uring ring counters; inactive() unless drives run on UringBackend.
  UringEngineStats uring;

  void reset() {
    for (auto& d : per_disk) d = DiskIoStats{};
    stall_ns = 0;
    max_queue_depth = 0;
    queue_depth = obs::LogHistogram{};
    drain_errors = 0;
    last_drain_error_kind = -1;
    last_drain_error.clear();
    uring = UringEngineStats{};
  }

  [[nodiscard]] std::uint64_t total_ops() const {
    std::uint64_t n = 0;
    for (const auto& d : per_disk) n += d.ops;
    return n;
  }

  [[nodiscard]] std::uint64_t max_busy_ns() const {
    std::uint64_t n = 0;
    for (const auto& d : per_disk) n = std::max(n, d.busy_ns);
    return n;
  }

  [[nodiscard]] std::uint64_t total_retries() const {
    std::uint64_t n = 0;
    for (const auto& d : per_disk) n += d.retries;
    return n;
  }

  [[nodiscard]] std::uint64_t total_giveups() const {
    std::uint64_t n = 0;
    for (const auto& d : per_disk) n += d.giveups;
    return n;
  }

  [[nodiscard]] std::uint64_t total_coalesced_tracks() const {
    std::uint64_t n = 0;
    for (const auto& d : per_disk) n += d.coalesced_tracks;
    return n;
  }

  /// Fraction of the busiest disk's service time the issuing thread spent
  /// stalled, over the window since `prev` was captured (pass a
  /// default-constructed EngineStats for run-to-date).  ~1 means I/O
  /// bound, ~0 means the engine hid the I/O behind compute.  Clamped to
  /// [0, 1]; 0 when the window saw no disk activity.  Wall-clock derived —
  /// a tuning signal, never part of the determinism guarantees.
  [[nodiscard]] double stall_fraction_since(const EngineStats& prev) const;
};

/// Dump engine execution stats into a metrics registry under `prefix`
/// (e.g. "engine." or "proc.3.engine."): per-disk counters
/// `<prefix>disk.<d>.{ops,bytes,busy_ns,retries,giveups}`, per-disk
/// histograms `<prefix>disk.<d>.{service_ns,retry_delay_ns}`, plus
/// `<prefix>stall_ns`, `<prefix>max_queue_depth` (gauge) and
/// `<prefix>queue_depth` (histogram).  Call once per run, after all
/// parallel I/O has completed.
void export_metrics(const EngineStats& stats, obs::Registry& registry,
                    const std::string& prefix);

}  // namespace embsp::em
