// I/O cost accounting for the EM-BSP model (§3 of the paper).
//
// The model charges G time units per *parallel I/O operation*: one operation
// moves at most one track (= one block of B bytes) per disk, touching up to
// D disks at once.  The simulation theorems (Theorem 1, Corollary 1) are
// statements about the number of such operations, so the substrate counts
// them exactly; wall-clock time plays no role in the accounting.
#pragma once

#include <cstddef>
#include <cstdint>

namespace embsp::em {

struct IoStats {
  std::uint64_t parallel_ios = 0;   ///< number of parallel I/O operations
  std::uint64_t blocks_read = 0;    ///< total blocks moved disk -> memory
  std::uint64_t blocks_written = 0; ///< total blocks moved memory -> disk
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  /// Model I/O time: t_IO = G * (#parallel I/O operations).
  [[nodiscard]] double io_time(double cost_g) const {
    return cost_g * static_cast<double>(parallel_ios);
  }

  /// Fraction of disk slots actually used: 1.0 means every parallel I/O
  /// moved a block on every disk (the "full parallel disk I/O" the paper is
  /// after); 1/D means disks were used one at a time.
  [[nodiscard]] double utilization(std::size_t num_disks) const {
    if (parallel_ios == 0 || num_disks == 0) return 0.0;
    return static_cast<double>(blocks_read + blocks_written) /
           (static_cast<double>(parallel_ios) *
            static_cast<double>(num_disks));
  }

  IoStats& operator+=(const IoStats& o) {
    parallel_ios += o.parallel_ios;
    blocks_read += o.blocks_read;
    blocks_written += o.blocks_written;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    return *this;
  }

  /// Stats accumulated since `before` was captured — used for per-phase
  /// breakdowns (fetch / compute / write / reorganize).
  [[nodiscard]] IoStats since(const IoStats& before) const {
    IoStats d;
    d.parallel_ios = parallel_ios - before.parallel_ios;
    d.blocks_read = blocks_read - before.blocks_read;
    d.blocks_written = blocks_written - before.blocks_written;
    d.bytes_read = bytes_read - before.bytes_read;
    d.bytes_written = bytes_written - before.bytes_written;
    return d;
  }
};

}  // namespace embsp::em
