// Standard consecutive format (Definition 2).
//
// A StripedRegion is a logical array of blocks spread round-robin across the
// D drives: block g lives on disk (g mod D) at track start[g mod D] + g/D.
// Reading or writing a run of consecutive blocks therefore proceeds in
// batches of up to D blocks, each batch touching D *distinct* drives — one
// fully parallel I/O per batch.  This is the layout used for virtual
// processor contexts (Algorithm 1 steps 1(a)/1(e)) and for reorganized
// message groups (output of Algorithm 2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "em/disk_array.hpp"
#include "em/track_allocator.hpp"

namespace embsp::em {

class StripedRegion {
 public:
  /// Use pre-reserved per-disk start tracks (one entry per drive).
  StripedRegion(DiskArray& disks, std::vector<std::uint64_t> start_tracks,
                std::uint64_t num_blocks);

  /// Reserve space for `num_blocks` blocks via the allocators and build the
  /// region.  Reserves ceil(num_blocks / D) tracks on every disk, matching
  /// the "number of blocks on each disk differs by at most one" clause.
  static StripedRegion reserve(DiskArray& disks, TrackAllocators& alloc,
                               std::uint64_t num_blocks);

  /// Read blocks [first, first+count) into dst (count * B bytes).
  void read_blocks(std::uint64_t first, std::uint64_t count,
                   std::span<std::byte> dst) const;

  /// Write blocks [first, first+count) from src (count * B bytes).
  void write_blocks(std::uint64_t first, std::uint64_t count,
                    std::span<const std::byte> src);

  [[nodiscard]] std::uint64_t num_blocks() const { return num_blocks_; }
  [[nodiscard]] std::size_t block_size() const { return disks_->block_size(); }

  /// Physical placement of logical block g (useful for tests).
  [[nodiscard]] std::pair<std::uint32_t, std::uint64_t> location(
      std::uint64_t g) const;

 private:
  void check_range(std::uint64_t first, std::uint64_t count,
                   std::size_t bytes) const;

  DiskArray* disks_;
  std::vector<std::uint64_t> start_tracks_;
  std::uint64_t num_blocks_;
};

}  // namespace embsp::em
