// Concurrent I/O engine: a DiskArray whose parallel I/O operations really
// overlap on the hardware.
//
// The EM-BSP cost model (§3) charges one G for a parallel I/O that moves up
// to D blocks, one track per disk — the whole point being that D transfers
// take the time of one.  The serial DiskArray meters that cost exactly but
// executes the D transfers back-to-back on the issuing thread, so on a file
// backend the simulator never sees real disk parallelism.  This engine
// keeps one persistent worker thread per drive; each parallel_read/
// parallel_write dispatches its per-disk transfers to the owning workers
// and joins on a latch, so the operation completes in ~max (not sum) of the
// per-disk transfer times.
//
// Threading model / ordering guarantees (see DESIGN.md §"I/O engine"):
//  * one worker per drive — a drive's transfers are totally ordered, and a
//    parallel I/O touches each drive at most once (model invariant), so
//    no two in-flight transfers ever overlap a byte range;
//  * parallel_read/parallel_write BLOCK until every transfer of the
//    operation has completed (latch join): writes issued by operation n are
//    visible to operation n+1, so higher layers observe exactly the serial
//    engine's semantics and serial/parallel runs produce byte-identical
//    disk images;
//  * the latch join publishes the workers' effects (data, per-disk stats,
//    Disk counters) to the issuing thread — reading stats between
//    operations is race-free;
//  * a transfer that throws (capacity violation, backend error) is captured
//    on the worker and rethrown on the issuing thread after the whole
//    operation has settled, leaving the array usable;
//  * sync() additionally flushes every backend to its medium.
#pragma once

#include <condition_variable>
#include <exception>
#include <latch>
#include <mutex>
#include <thread>

#include "em/disk_array.hpp"

namespace embsp::em {

class ParallelDiskArray final : public DiskArray {
 public:
  ParallelDiskArray(std::size_t num_disks, std::size_t block_size,
                    std::function<std::unique_ptr<Backend>(std::size_t)>
                        make_backend = nullptr,
                    std::uint64_t capacity_tracks_per_disk = 0,
                    DiskArrayOptions options = {});
  ~ParallelDiskArray() override;

  void sync() override;

 protected:
  void execute(std::span<const Transfer> transfers) override;

 private:
  struct Worker {
    std::mutex m;
    std::condition_variable cv;
    const Transfer* task = nullptr;  ///< guarded by m
    std::latch* done = nullptr;      ///< guarded by m
    bool stop = false;               ///< guarded by m
    std::exception_ptr error;        ///< published by the latch count_down
    std::thread thread;
  };

  void worker_loop(std::size_t disk);

  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace embsp::em
