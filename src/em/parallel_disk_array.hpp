// Concurrent I/O engine: a DiskArray whose parallel I/O operations really
// overlap on the hardware.
//
// The EM-BSP cost model (§3) charges one G for a parallel I/O that moves up
// to D blocks, one track per disk — the whole point being that D transfers
// take the time of one.  The serial DiskArray meters that cost exactly but
// executes the D transfers back-to-back on the issuing thread, so on a file
// backend the simulator never sees real disk parallelism.  This engine
// keeps one persistent worker thread per drive, each with a FIFO task
// queue: submit_read/submit_write enqueue one task per transfer and return
// immediately; wait() joins the operation.  The blocking calls therefore
// complete in ~max (not sum) of the per-disk transfer times, and the
// pipelined simulator can keep several operations in flight while it
// computes.
//
// Threading model / ordering guarantees (see DESIGN.md §"I/O engine"):
//  * one worker per drive — a drive executes its tasks strictly in
//    submission order (FIFO), and a single parallel I/O touches each drive
//    at most once (model invariant), so two transfers to the same byte
//    range are always ordered by their submission order;
//  * higher layers only submit overlapping-range operations when the
//    earlier one must land first (e.g. a context write of group g before a
//    later superstep's read of the same slot), which the per-drive FIFO
//    honors — and the simulators additionally quiesce at superstep
//    boundaries;
//  * the per-drive FIFO also fixes the per-disk *call sequence*: a
//    deterministic fault schedule keyed on (seed, disk, per-disk call
//    count) fires on the same transfers whether operations were submitted
//    eagerly (pipelined) or one at a time (serial schedule);
//  * wait() blocks until every transfer of the operation has settled;
//    PendingOp::complete publishes the workers' effects (data, per-disk
//    stats, Disk counters) to the issuing thread, so reading stats after a
//    wait_all()/drain() is race-free;
//  * a transfer that throws (capacity violation, backend error) is captured
//    per transfer index and the lowest-index error is rethrown at wait(),
//    after the whole operation has settled, leaving the array usable;
//  * sync() waits out every token and flushes every backend to its medium.
//
// IoEngine::uring reuses this scheduler unchanged: each drive's worker is
// the single issuer of its UringBackend's ring (uring_backend.hpp), so the
// kernel-native engine inherits every ordering and parity guarantee above —
// what changes is only how a transfer reaches the device (SQE/CQE waves
// instead of blocking p{read,write}v).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "em/disk_array.hpp"

namespace embsp::em {

class ParallelDiskArray final : public DiskArray {
 public:
  ParallelDiskArray(std::size_t num_disks, std::size_t block_size,
                    std::function<std::unique_ptr<Backend>(std::size_t)>
                        make_backend = nullptr,
                    std::uint64_t capacity_tracks_per_disk = 0,
                    DiskArrayOptions options = {});
  ~ParallelDiskArray() override;

 protected:
  void start(const std::shared_ptr<PendingOp>& op) override;

 private:
  /// One enqueued transfer: the owning operation (shared so the op outlives
  /// every worker access regardless of wait/drain timing) and the index of
  /// the transfer within it.
  struct Task {
    std::shared_ptr<PendingOp> op;
    std::size_t index;
  };

  struct Worker {
    std::mutex m;
    std::condition_variable cv;
    std::deque<Task> queue;  ///< guarded by m; FIFO per drive
    bool stop = false;       ///< guarded by m
    std::thread thread;
  };

  void worker_loop(std::size_t disk);

  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace embsp::em
