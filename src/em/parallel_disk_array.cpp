#include "em/parallel_disk_array.hpp"

namespace embsp::em {

ParallelDiskArray::ParallelDiskArray(
    std::size_t num_disks, std::size_t block_size,
    std::function<std::unique_ptr<Backend>(std::size_t)> make_backend,
    std::uint64_t capacity_tracks_per_disk, DiskArrayOptions options)
    : DiskArray(num_disks, block_size, std::move(make_backend),
                capacity_tracks_per_disk, options) {
  workers_.reserve(num_disks);
  for (std::size_t d = 0; d < num_disks; ++d) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Threads started only after every Worker exists (no vector relocation
  // races) — each thread owns drive d for the array's whole lifetime.
  for (std::size_t d = 0; d < num_disks; ++d) {
    workers_[d]->thread = std::thread([this, d] { worker_loop(d); });
  }
}

ParallelDiskArray::~ParallelDiskArray() {
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->m);
      w->stop = true;
    }
    w->cv.notify_one();
  }
  for (auto& w : workers_) w->thread.join();
}

void ParallelDiskArray::worker_loop(std::size_t disk) {
  Worker& w = *workers_[disk];
  for (;;) {
    const Transfer* task = nullptr;
    std::latch* done = nullptr;
    {
      std::unique_lock<std::mutex> lock(w.m);
      w.cv.wait(lock, [&] { return w.stop || w.task != nullptr; });
      if (w.task == nullptr) return;  // stop requested, nothing pending
      task = w.task;
      done = w.done;
      w.task = nullptr;
      w.done = nullptr;
    }
    try {
      run_transfer(*task);
    } catch (...) {
      w.error = std::current_exception();
    }
    // count_down() publishes the transfer's effects (and w.error) to the
    // issuing thread blocked in latch::wait.
    done->count_down();
  }
}

void ParallelDiskArray::execute(std::span<const Transfer> transfers) {
  std::latch done(static_cast<std::ptrdiff_t>(transfers.size()));
  for (const auto& t : transfers) {
    Worker& w = *workers_[t.disk];
    {
      std::lock_guard<std::mutex> lock(w.m);
      w.task = &t;
      w.done = &done;
    }
    w.cv.notify_one();
  }
  done.wait();
  std::exception_ptr first;
  for (const auto& t : transfers) {
    Worker& w = *workers_[t.disk];
    if (w.error != nullptr) {
      if (first == nullptr) first = w.error;
      w.error = nullptr;
    }
  }
  if (first != nullptr) std::rethrow_exception(first);
}

void ParallelDiskArray::sync() {
  // All transfers have completed (execute joins before returning); the
  // latch of the last operation ordered the workers' writes before us, so
  // flushing from this thread is race-free.
  DiskArray::sync();
}

}  // namespace embsp::em
