#include "em/parallel_disk_array.hpp"

namespace embsp::em {

ParallelDiskArray::ParallelDiskArray(
    std::size_t num_disks, std::size_t block_size,
    std::function<std::unique_ptr<Backend>(std::size_t)> make_backend,
    std::uint64_t capacity_tracks_per_disk, DiskArrayOptions options)
    : DiskArray(num_disks, block_size, std::move(make_backend),
                capacity_tracks_per_disk, options) {
  workers_.reserve(num_disks);
  for (std::size_t d = 0; d < num_disks; ++d) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Threads started only after every Worker exists (no vector relocation
  // races) — each thread owns drive d for the array's whole lifetime.
  for (std::size_t d = 0; d < num_disks; ++d) {
    workers_[d]->thread = std::thread([this, d] { worker_loop(d); });
  }
}

ParallelDiskArray::~ParallelDiskArray() {
  // Settle every outstanding token before stopping the workers: tasks hold
  // shared_ptrs to their ops, but the staging buffers the transfers target
  // belong to callers, so nothing may still be in flight when we return.
  drain();
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->m);
      w->stop = true;
    }
    w->cv.notify_one();
  }
  for (auto& w : workers_) w->thread.join();
}

void ParallelDiskArray::worker_loop(std::size_t disk) {
  Worker& w = *workers_[disk];
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(w.m);
      w.cv.wait(lock, [&] { return w.stop || !w.queue.empty(); });
      if (w.queue.empty()) return;  // stop requested, nothing pending
      task = std::move(w.queue.front());
      w.queue.pop_front();
    }
    std::exception_ptr error;
    try {
      run_transfer(task.op->transfers[task.index]);
    } catch (...) {
      error = std::current_exception();
    }
    // complete() publishes the transfer's effects (and the error slot) to
    // whichever thread eventually waits the token.
    task.op->complete(task.index, std::move(error));
  }
}

void ParallelDiskArray::start(const std::shared_ptr<PendingOp>& op) {
  for (std::size_t i = 0; i < op->transfers.size(); ++i) {
    Worker& w = *workers_[op->transfers[i].disk];
    {
      std::lock_guard<std::mutex> lock(w.m);
      w.queue.push_back(Task{op, i});
    }
    w.cv.notify_one();
  }
}

}  // namespace embsp::em
