// Deterministic fault injection for storage backends.
//
// FaultInjectingBackend wraps any Backend and injects faults from a seeded
// schedule, so the substrate's failure handling (retry/backoff in
// DiskArray::run_transfer, checksum verification in Disk, superstep
// rollback in the simulators) can be exercised reproducibly:
//
//   * transient read/write failures  — EIO-style TransientIoError;
//   * persistent dead ranges         — byte ranges that always fail
//                                      (PersistentIoError, never retried);
//   * scripted failure bursts        — calls [first, first+count) on a
//                                      disk fail; a burst longer than the
//                                      retry budget forces the giveup path
//                                      and superstep-granular recovery;
//   * torn writes                    — only a prefix reaches the backend
//                                      before the call fails (healed by the
//                                      retried full rewrite);
//   * silent bit flips               — one bit of the *returned* read
//                                      buffer is flipped, with no error;
//                                      only block checksums notice.  The
//                                      medium itself stays intact, so a
//                                      re-read heals it;
//   * latency spikes                 — a sleep, no error (exercises the
//                                      engines' overlap under slow disks).
//
// Determinism: the wrapper draws a fixed number of RNG values per call
// from a stream seeded by (spec.seed, simulation seed, disk index), so the
// fault schedule is a pure function of the per-disk call sequence.  Both
// I/O engines issue each disk's transfers in the same order (one worker
// per drive; one track per disk per operation), hence the same seed yields
// the same schedule under either engine — the property the determinism
// tests pin down.
//
// Concurrency: unlike plain backends, the wrapper keeps per-call mutable
// state (RNG, call counter), so calls on one wrapper must be serialized.
// Both engines guarantee this per disk (a drive's transfers are totally
// ordered); do not share one wrapper between drives.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "em/backend.hpp"
#include "em/io_error.hpp"
#include "util/rng.hpp"

namespace embsp::em {

/// A byte range on one disk that fails every access (a dead sector run).
struct FaultRange {
  static constexpr std::uint32_t kAllDisks =
      std::numeric_limits<std::uint32_t>::max();
  std::uint32_t disk = kAllDisks;
  std::uint64_t begin = 0;  ///< first failing byte offset
  std::uint64_t end = 0;    ///< one past the last failing byte offset
};

/// A scripted run of failing calls: backend calls (reads and writes,
/// 0-indexed per disk, retries included) in [first_call, first_call+count)
/// on `disk` throw TransientIoError.  With count >= RetryPolicy
/// max_attempts this deterministically exhausts the retry budget and
/// exercises superstep rollback.
struct FaultBurst {
  std::uint32_t disk = 0;
  std::uint64_t first_call = 0;
  std::uint64_t count = 0;
};

/// What a scripted fault does when its call number comes up.
enum class FaultKind {
  transient,  ///< throw TransientIoError (like a one-call FaultBurst)
  crash,      ///< kill the process immediately (std::_Exit) — the durability
              ///< story's "pull the plug here" point; only a checkpoint on
              ///< stable storage survives it
};

/// One scripted fault at an exact per-disk call number.  Unlike FaultBurst
/// (a range of transient errors), a ScriptedFault can also be a crash point:
/// the deterministic schedule makes "the process dies at backend call #N of
/// disk d" a reproducible event, which the checkpoint/restart tests use to
/// prove crash consistency at arbitrary points of the superstep schedule.
struct ScriptedFault {
  FaultKind kind = FaultKind::transient;
  std::uint32_t disk = 0;
  std::uint64_t call = 0;
};

/// Per-disk fault model, configured in SimConfig.  All rates are
/// probabilities per backend call in [0, 1].
struct FaultSpec {
  std::uint64_t seed = 0;  ///< folded with the sim seed and disk index

  double read_error_rate = 0.0;   ///< transient EIO on read
  double write_error_rate = 0.0;  ///< transient EIO on write
  double torn_write_rate = 0.0;   ///< partial write, then transient error
  double bit_flip_rate = 0.0;     ///< silent single-bit flip on read
  double latency_spike_rate = 0.0;
  std::uint32_t latency_spike_us = 50;

  std::vector<FaultRange> dead_ranges;
  std::vector<FaultBurst> bursts;
  std::vector<ScriptedFault> scripted;

  [[nodiscard]] bool enabled() const {
    return read_error_rate > 0 || write_error_rate > 0 ||
           torn_write_rate > 0 || bit_flip_rate > 0 ||
           latency_spike_rate > 0 || !dead_ranges.empty() ||
           !bursts.empty() || !scripted.empty();
  }
};

/// Tally of injected faults, shared by all wrappers of one simulation
/// (atomics: the parallel engine's workers and the parallel simulator's
/// threads all bump them).
struct FaultCounters {
  std::atomic<std::uint64_t> read_errors{0};
  std::atomic<std::uint64_t> write_errors{0};
  std::atomic<std::uint64_t> torn_writes{0};
  std::atomic<std::uint64_t> bit_flips{0};
  std::atomic<std::uint64_t> latency_spikes{0};
  std::atomic<std::uint64_t> dead_range_hits{0};
};

/// Plain-value snapshot of FaultCounters (for SimResult).
struct FaultCounts {
  std::uint64_t read_errors = 0;
  std::uint64_t write_errors = 0;
  std::uint64_t torn_writes = 0;
  std::uint64_t bit_flips = 0;
  std::uint64_t latency_spikes = 0;
  std::uint64_t dead_range_hits = 0;

  [[nodiscard]] std::uint64_t total() const {
    return read_errors + write_errors + torn_writes + bit_flips +
           latency_spikes + dead_range_hits;
  }

  /// Fold another tally in — a resumed run adds the checkpointed run's
  /// pre-boundary tally to its own so the totals match an uninterrupted run.
  FaultCounts& operator+=(const FaultCounts& o) {
    read_errors += o.read_errors;
    write_errors += o.write_errors;
    torn_writes += o.torn_writes;
    bit_flips += o.bit_flips;
    latency_spikes += o.latency_spikes;
    dead_range_hits += o.dead_range_hits;
    return *this;
  }
};

[[nodiscard]] FaultCounts snapshot(const FaultCounters& c);

class FaultInjectingBackend final : public Backend {
 public:
  /// `disk_index` selects this wrapper's dead ranges/bursts and salts the
  /// schedule stream; `sim_seed` is the owning simulation's seed.
  FaultInjectingBackend(std::unique_ptr<Backend> inner, FaultSpec spec,
                        std::uint64_t sim_seed, std::uint32_t disk_index,
                        std::shared_ptr<FaultCounters> counters = nullptr);

  // read_vec/write_vec are deliberately NOT overridden: the Backend
  // defaults decompose a vectored transfer into one read()/write() per
  // buffer, in order, so the fault schedule sees exactly the same per-disk
  // call sequence as the scalar path.  (The simulators additionally disable
  // track coalescing when faults are enabled, because retrying a coalesced
  // run would replay calls for buffers that already succeeded.)
  void read(std::uint64_t offset, std::span<std::byte> dst) override;
  void write(std::uint64_t offset, std::span<const std::byte> src) override;
  void flush() override { inner_->flush(); }
  [[nodiscard]] std::uint64_t size() const override { return inner_->size(); }

  /// Backend calls seen so far (reads + writes, retries included).
  [[nodiscard]] std::uint64_t calls() const { return calls_; }

  /// The wrapped backend — the checkpoint subsystem's off-model access
  /// path.  Checkpoint capture/restore must neither consume schedule RNG
  /// draws nor advance the call counter (either would shift the fault
  /// schedule of the run being checkpointed), so it bypasses the wrapper.
  [[nodiscard]] Backend& inner() { return *inner_; }

  /// Complete schedule position: restoring it into a fresh wrapper makes
  /// the resumed run's fault schedule continue exactly where the
  /// checkpointed run left off.
  struct ScheduleState {
    std::uint64_t calls = 0;
    std::uint64_t rng_state = 0;
  };
  [[nodiscard]] ScheduleState schedule_state() const {
    return {calls_, rng_.raw_state()};
  }
  void set_schedule_state(const ScheduleState& s) {
    calls_ = s.calls;
    rng_.set_raw_state(s.rng_state);
  }

 private:
  void check_dead_range(std::uint64_t offset, std::size_t len,
                        const char* what);
  void check_burst(std::uint64_t call, const char* what);
  void check_scripted(std::uint64_t call, const char* what);
  void maybe_latency_spike(double draw);

  std::unique_ptr<Backend> inner_;
  FaultSpec spec_;
  std::uint32_t disk_;
  util::Rng rng_;
  std::uint64_t calls_ = 0;
  std::shared_ptr<FaultCounters> counters_;
};

/// Wrap a backend factory so every created backend injects faults per
/// `spec`.  Returns `base` unchanged (or a plain memory-backend factory if
/// `base` is null) when the spec is disabled, so the fault-free path pays
/// nothing.  `disk_of(i)` defaults to identity; the parallel simulator
/// passes globally unique indices.
std::function<std::unique_ptr<Backend>(std::size_t)> wrap_with_faults(
    std::function<std::unique_ptr<Backend>(std::size_t)> base,
    const FaultSpec& spec, std::uint64_t sim_seed,
    std::shared_ptr<FaultCounters> counters);

/// The backend behind `b` when it is fault-wrapped, `b` itself otherwise —
/// the off-model access path the checkpoint subsystem pairs with
/// Disk::peek_track/restore_track so checkpoint traffic neither consumes
/// fault-schedule draws nor advances the per-disk call counter.
inline Backend& unwrap_faults(Backend& b) {
  auto* wrapped = dynamic_cast<FaultInjectingBackend*>(&b);
  return wrapped != nullptr ? wrapped->inner() : b;
}

/// Env-triggered kill hook for crash soak harnesses: when
/// EMBSP_CRASH_AFTER_MS is set, arms a detached timer thread that calls
/// std::_Exit(137) after that many milliseconds — a SIGKILL-equivalent
/// death at an arbitrary (wall-clock-chosen) point, with no destructors,
/// no atexit, no flushing.  Returns true when armed.  Idempotent.
bool install_crash_hook_from_env();

}  // namespace embsp::em
