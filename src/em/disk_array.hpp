// The D-disk array of one EM-BSP processor, with the parallel-I/O discipline
// of §3 enforced by construction:
//
//   "Each processor can use all of its D disk drives concurrently, and
//    transfer D x B items ... in a single I/O operation and at cost G.  In
//    such an operation, we permit only one track per disk to be accessed."
//
// Every read/write goes through one parallel I/O operation: either the
// blocking parallel_read()/parallel_write(), or the asynchronous
// submit_read()/submit_write() + wait() pair that the pipelined simulator
// uses to overlap transfers with compute.  The blocking calls are literally
// submit+wait, so both paths meter identical model cost.  A call that names
// the same disk twice throws — higher layers cannot accidentally serialize
// disk accesses without it showing up in the operation count.
//
// Async contract:
//  * submit_read/submit_write validate the op set (distinct disks), start
//    the transfers, and return a completion token;
//  * wait(token) blocks until the operation settles, charges IoStats (one
//    parallel I/O) **at completion, only on success**, and rethrows the
//    lowest-transfer-index error on failure (deterministic across engines);
//  * wait_all() settles every outstanding token in submission order;
//    drain() does the same but swallows errors — the quiescence point the
//    simulator's rollback path uses before restoring snapshots;
//  * tokens, submissions and waits belong to ONE issuing thread per array
//    (the simulators' coordinator / per-proc worker); only the transfers
//    themselves run concurrently.
//  * distinct in-flight operations MAY touch the same disk: each drive
//    executes its transfers in submission order (FIFO per drive), so the
//    per-disk sequence of track accesses — and therefore any per-disk
//    deterministic fault schedule — is the submission order, regardless of
//    how operations interleave in time.
//
// Two execution engines implement the same interface:
//  * DiskArray          — serial: start() runs the transfers back-to-back
//                         on the issuing thread (submission blocks; wait is
//                         then a bookkeeping step — the model cost is
//                         identical, only wall-clock differs);
//  * ParallelDiskArray  — a persistent worker pool, one worker per drive,
//                         with a FIFO task queue per worker: submissions
//                         return immediately and the D transfers of each
//                         operation proceed concurrently
//                         (parallel_disk_array.hpp).
// Select via make_disk_array(IoEngine, ...).  Model-cost accounting
// (IoStats) is engine-independent; EngineStats records what the engine did
// with the hardware (per-disk busy time, issuing-thread stall, queue depth).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "em/disk.hpp"
#include "em/io_error.hpp"
#include "em/io_stats.hpp"
#include "util/rng.hpp"

namespace embsp::em {

struct ReadOp {
  std::uint32_t disk;
  std::uint64_t track;
  std::span<std::byte> dst;  ///< exactly block_size bytes
};

struct WriteOp {
  std::uint32_t disk;
  std::uint64_t track;
  std::span<const std::byte> src;  ///< exactly block_size bytes
};

/// How a disk array executes the per-disk transfers of one parallel I/O.
enum class IoEngine {
  serial,    ///< issuing thread performs transfers back-to-back
  parallel,  ///< persistent per-disk workers execute them concurrently
  uring,     ///< per-disk workers issuing kernel-native io_uring transfers
             ///< (scheduling as `parallel`; drives default to UringBackend
             ///< scratch files, with runtime fallback to FileBackend —
             ///< see uring_backend.hpp)
};

/// Resilience knobs of a disk array, applied identically by both engines.
struct DiskArrayOptions {
  /// Retry discipline for transient IoErrors raised by a per-disk transfer
  /// (see run_transfer).  max_attempts == 1 disables retrying.
  RetryPolicy retry{};
  /// Keep and verify a 64-bit checksum per written track; mismatches on
  /// read surface as CorruptBlockError (and are retried like any other
  /// transient fault, which heals read-path bit flips).
  bool verify_checksums = false;
  /// Merge runs of adjacent tracks inside a *batched* submission into one
  /// vectored backend transfer per run (preadv/pwritev on FileBackend).
  /// Purely physical: model IoStats, per-track checksums, and Disk
  /// read/write counters are charged per track either way.  The simulators
  /// turn this off when fault injection is active, because retrying a
  /// multi-track run would replay backend calls for tracks that already
  /// succeeded and shift the deterministic fault schedule.
  bool coalesce = true;
};

class DiskArray {
 public:
  /// Completion token for an asynchronous parallel I/O operation.  Tokens
  /// are handed out in submission order; wait()ing a token that was already
  /// settled (by wait, wait_all or drain) is a no-op.
  using IoToken = std::uint64_t;

  /// Creates `num_disks` drives with the given block size.  `make_backend`
  /// is invoked once per drive; pass nullptr for in-memory backends.
  DiskArray(std::size_t num_disks, std::size_t block_size,
            std::function<std::unique_ptr<Backend>(std::size_t)> make_backend =
                nullptr,
            std::uint64_t capacity_tracks_per_disk = 0,
            DiskArrayOptions options = {});
  virtual ~DiskArray();

  DiskArray(const DiskArray&) = delete;
  DiskArray& operator=(const DiskArray&) = delete;

  /// One parallel I/O operation reading up to one track per disk; blocks
  /// until complete (submit_read + wait).  Empty op lists are rejected
  /// (they would be free I/O).
  void parallel_read(std::span<const ReadOp> ops);

  /// One parallel I/O operation writing up to one track per disk; blocks
  /// until complete (submit_write + wait).
  void parallel_write(std::span<const WriteOp> ops);

  /// Start one parallel read without waiting for it.  The destination
  /// buffers must stay alive (and untouched) until the token is settled.
  IoToken submit_read(std::span<const ReadOp> ops);

  /// Start one parallel write without waiting for it.  The source buffers
  /// must stay alive (and unmodified) until the token is settled.
  IoToken submit_write(std::span<const WriteOp> ops);

  /// Start a *batched* read: `ops` may name the same disk several times
  /// (per-disk execution order = op order), and the batch is pre-declared
  /// to cost `cycles` parallel I/O operations — the number of D-block
  /// cycles Algorithm 1 would schedule for it, which must be at least the
  /// per-disk op count (one track per disk per cycle; validated).  Model
  /// IoStats charge exactly `cycles` parallel_ios when the token settles
  /// successfully.  With options.coalesce, runs of adjacent tracks on one
  /// disk execute as a single vectored backend transfer; per-track
  /// accounting (Disk counters, checksums, IoStats blocks/bytes) is
  /// unchanged, so the disk image and model costs are byte-identical to
  /// submitting the equivalent sequence of ≤D-op cycles.
  IoToken submit_read_batch(std::span<const ReadOp> ops, std::uint64_t cycles);

  /// Batched write; mirror of submit_read_batch.
  IoToken submit_write_batch(std::span<const WriteOp> ops,
                             std::uint64_t cycles);

  /// Blocking forms of the batched submissions (submit + wait).
  void parallel_read_batch(std::span<const ReadOp> ops, std::uint64_t cycles);
  void parallel_write_batch(std::span<const WriteOp> ops,
                            std::uint64_t cycles);

  /// Block until the given operation has settled.  On success charges one
  /// parallel I/O to IoStats; on failure rethrows the error of the lowest
  /// transfer index without charging anything.  Settled/unknown tokens are
  /// a no-op.
  void wait(IoToken token);

  /// Settle every outstanding token in submission order; rethrows the
  /// first error encountered (after settling the rest).
  void wait_all();

  /// Quiesce: settle every outstanding token, swallowing errors (successful
  /// operations are still charged).  Rollback paths call this before
  /// restoring snapshots so no in-flight transfer can touch a staging
  /// buffer — or the disk image — after the restore.  Swallowed errors are
  /// not lost: each one bumps EngineStats::drain_errors and the first is
  /// kept as EngineStats::last_drain_error{_kind}, so recovery-path I/O
  /// failures stay visible in the obs snapshot.
  void drain() noexcept;

  /// Tokens submitted but not yet settled.  Quiescence invariant checks
  /// (tests, simulator abort paths) assert this returns 0 after drain().
  [[nodiscard]] std::size_t pending_ops() const { return pending_.size(); }

  /// Offer long-lived buffer regions (e.g. the simulator's bump-allocated
  /// staging arenas) to every drive's backend for registration as kernel
  /// fixed buffers.  Returns the number of drives whose backend accepted
  /// (0 for memory/file backends — the hint is free).  Call while no I/O
  /// is in flight.
  std::size_t register_io_buffers(
      std::span<const std::span<std::byte>> regions);

  /// Fold backend-level execution stats (UringBackend ring counters) into
  /// EngineStats::uring.  Call at a quiescence point before reading
  /// engine_stats(); repeated calls re-snapshot rather than double-count.
  void harvest_backend_stats();

  /// Barrier: returns once every transfer issued so far has completed and
  /// the backends have flushed buffered data to their medium.  Implies
  /// wait_all(), so outstanding async errors surface here.
  virtual void sync();

  [[nodiscard]] std::size_t num_disks() const { return disks_.size(); }
  [[nodiscard]] std::size_t block_size() const { return block_size_; }

  [[nodiscard]] Disk& disk(std::size_t i) { return *disks_[i]; }
  [[nodiscard]] const Disk& disk(std::size_t i) const { return *disks_[i]; }

  [[nodiscard]] const IoStats& stats() const { return stats_; }
  /// Engine execution stats; valid whenever no parallel I/O is in flight.
  [[nodiscard]] const EngineStats& engine_stats() const { return engine_; }
  void reset_stats() {
    stats_ = IoStats{};
    engine_.reset();
  }
  /// Pre-load the model-cost accumulator with the stats a checkpointed run
  /// had accrued, so a resumed run's stats()/since() deltas and final
  /// totals match an uninterrupted run's.  Call before any I/O is issued.
  void seed_stats(const IoStats& s) { stats_ = s; }

  /// Max tracks used over all drives — the per-disk space bound of Lemma 1.
  [[nodiscard]] std::uint64_t max_tracks_used() const;

 protected:
  /// One per-disk transfer of a parallel I/O operation; exactly one of
  /// `dst` / `src` is non-null.  A coalesced transfer carries extra
  /// buffers in `more_dst`/`more_src`: buffer i holds track `track + 1 + i`
  /// (all `len` bytes each), and the whole run executes as one vectored
  /// backend call.
  struct Transfer {
    std::uint32_t disk;
    std::uint64_t track;
    std::byte* dst = nullptr;
    const std::byte* src = nullptr;
    std::size_t len = 0;
    std::vector<std::byte*> more_dst;
    std::vector<const std::byte*> more_src;
    [[nodiscard]] std::size_t tracks() const {
      return 1 + (dst != nullptr ? more_dst.size() : more_src.size());
    }
  };

  /// One in-flight parallel I/O operation.  Transfer completions are
  /// recorded per transfer index so the error rethrown at wait() is the
  /// lowest-index one, independent of completion order.
  struct PendingOp {
    std::vector<Transfer> transfers;
    bool is_read = false;
    std::uint64_t cycles = 1;  ///< parallel I/Os charged when it settles
    std::uint64_t blocks = 0;
    std::uint64_t bytes = 0;
    std::mutex m;
    std::condition_variable cv;
    std::size_t remaining = 0;                 ///< guarded by m
    bool done = false;                         ///< guarded by m
    std::vector<std::exception_ptr> errors;    ///< slot i = transfers[i]
    /// Mark transfer `index` finished (with `error` if it threw); wakes the
    /// waiter when the whole operation has settled.
    void complete(std::size_t index, std::exception_ptr error);
  };

  /// Begin executing an already-validated operation.  The serial engine
  /// runs the transfers back-to-back on the calling thread, stopping at the
  /// first failure (remaining transfers are marked skipped-by-error — the
  /// historical serial semantics).  ParallelDiskArray overrides this to
  /// enqueue one task per transfer on the owning drive's FIFO worker.
  virtual void start(const std::shared_ptr<PendingOp>& op);

  /// Perform one transfer against the owning Disk, retrying retryable
  /// IoErrors per the array's RetryPolicy (with per-disk jittered backoff),
  /// and record per-disk engine stats including retries/giveups.  Safe to
  /// call concurrently for *different* disks.
  void run_transfer(const Transfer& t);

  EngineStats engine_;

 private:
  void check_distinct(std::span<const std::uint32_t> disks) const;
  template <class Op>
  IoToken submit(std::span<const Op> ops, bool is_read);
  template <class Op>
  IoToken submit_batch(std::span<const Op> ops, std::uint64_t cycles,
                       bool is_read);
  IoToken launch(std::shared_ptr<PendingOp> op, std::size_t width);
  /// Block until `op` settles; charge stats / rethrow per the wait()
  /// contract.  With `swallow` set, errors are discarded instead.
  void settle(PendingOp& op, bool swallow);

  std::size_t block_size_;
  DiskArrayOptions options_;
  std::vector<std::unique_ptr<Disk>> disks_;
  std::vector<util::Rng> jitter_;  ///< per-disk backoff jitter streams
  IoStats stats_;
  mutable std::vector<std::uint8_t> seen_;  // scratch for distinctness check
  IoToken next_token_ = 1;
  std::map<IoToken, std::shared_ptr<PendingOp>> pending_;  // issuing thread
};

/// Worker-pool engine: see parallel_disk_array.hpp.  Declared here so the
/// factory can live next to the interface.
std::unique_ptr<DiskArray> make_disk_array(
    IoEngine engine, std::size_t num_disks, std::size_t block_size,
    std::function<std::unique_ptr<Backend>(std::size_t)> make_backend =
        nullptr,
    std::uint64_t capacity_tracks_per_disk = 0, DiskArrayOptions options = {});

}  // namespace embsp::em
