// The D-disk array of one EM-BSP processor, with the parallel-I/O discipline
// of §3 enforced by construction:
//
//   "Each processor can use all of its D disk drives concurrently, and
//    transfer D x B items ... in a single I/O operation and at cost G.  In
//    such an operation, we permit only one track per disk to be accessed."
//
// Every read/write goes through parallel_read()/parallel_write(), each call
// counting as exactly one parallel I/O operation.  A call that names the
// same disk twice throws — higher layers cannot accidentally serialize disk
// accesses without it showing up in the operation count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "em/disk.hpp"
#include "em/io_stats.hpp"

namespace embsp::em {

struct ReadOp {
  std::uint32_t disk;
  std::uint64_t track;
  std::span<std::byte> dst;  ///< exactly block_size bytes
};

struct WriteOp {
  std::uint32_t disk;
  std::uint64_t track;
  std::span<const std::byte> src;  ///< exactly block_size bytes
};

class DiskArray {
 public:
  /// Creates `num_disks` drives with the given block size.  `make_backend`
  /// is invoked once per drive; pass nullptr for in-memory backends.
  DiskArray(std::size_t num_disks, std::size_t block_size,
            std::function<std::unique_ptr<Backend>(std::size_t)> make_backend =
                nullptr,
            std::uint64_t capacity_tracks_per_disk = 0);

  /// One parallel I/O operation reading up to one track per disk.
  /// Empty op lists are rejected (they would be free I/O).
  void parallel_read(std::span<const ReadOp> ops);

  /// One parallel I/O operation writing up to one track per disk.
  void parallel_write(std::span<const WriteOp> ops);

  [[nodiscard]] std::size_t num_disks() const { return disks_.size(); }
  [[nodiscard]] std::size_t block_size() const { return block_size_; }

  [[nodiscard]] Disk& disk(std::size_t i) { return *disks_[i]; }
  [[nodiscard]] const Disk& disk(std::size_t i) const { return *disks_[i]; }

  [[nodiscard]] const IoStats& stats() const { return stats_; }
  void reset_stats() { stats_ = IoStats{}; }

  /// Max tracks used over all drives — the per-disk space bound of Lemma 1.
  [[nodiscard]] std::uint64_t max_tracks_used() const;

 private:
  void check_distinct(std::span<const std::uint32_t> disks) const;

  std::size_t block_size_;
  std::vector<std::unique_ptr<Disk>> disks_;
  IoStats stats_;
  mutable std::vector<std::uint8_t> seen_;  // scratch for distinctness check
};

}  // namespace embsp::em
