// The D-disk array of one EM-BSP processor, with the parallel-I/O discipline
// of §3 enforced by construction:
//
//   "Each processor can use all of its D disk drives concurrently, and
//    transfer D x B items ... in a single I/O operation and at cost G.  In
//    such an operation, we permit only one track per disk to be accessed."
//
// Every read/write goes through parallel_read()/parallel_write(), each call
// counting as exactly one parallel I/O operation.  A call that names the
// same disk twice throws — higher layers cannot accidentally serialize disk
// accesses without it showing up in the operation count.
//
// Two execution engines implement the same interface:
//  * DiskArray          — serial: the issuing thread performs the D
//                         per-disk transfers one after another (the model
//                         cost is identical; only wall-clock differs);
//  * ParallelDiskArray  — a persistent worker pool, one worker per drive,
//                         executes the D transfers of each operation
//                         concurrently (parallel_disk_array.hpp).
// Select via make_disk_array(IoEngine, ...).  Model-cost accounting
// (IoStats) is engine-independent; EngineStats records what the engine did
// with the hardware (per-disk busy time, issuing-thread stall, queue depth).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "em/disk.hpp"
#include "em/io_error.hpp"
#include "em/io_stats.hpp"
#include "util/rng.hpp"

namespace embsp::em {

struct ReadOp {
  std::uint32_t disk;
  std::uint64_t track;
  std::span<std::byte> dst;  ///< exactly block_size bytes
};

struct WriteOp {
  std::uint32_t disk;
  std::uint64_t track;
  std::span<const std::byte> src;  ///< exactly block_size bytes
};

/// How a disk array executes the per-disk transfers of one parallel I/O.
enum class IoEngine {
  serial,    ///< issuing thread performs transfers back-to-back
  parallel,  ///< persistent per-disk workers execute them concurrently
};

/// Resilience knobs of a disk array, applied identically by both engines.
struct DiskArrayOptions {
  /// Retry discipline for transient IoErrors raised by a per-disk transfer
  /// (see run_transfer).  max_attempts == 1 disables retrying.
  RetryPolicy retry{};
  /// Keep and verify a 64-bit checksum per written track; mismatches on
  /// read surface as CorruptBlockError (and are retried like any other
  /// transient fault, which heals read-path bit flips).
  bool verify_checksums = false;
};

class DiskArray {
 public:
  /// Creates `num_disks` drives with the given block size.  `make_backend`
  /// is invoked once per drive; pass nullptr for in-memory backends.
  DiskArray(std::size_t num_disks, std::size_t block_size,
            std::function<std::unique_ptr<Backend>(std::size_t)> make_backend =
                nullptr,
            std::uint64_t capacity_tracks_per_disk = 0,
            DiskArrayOptions options = {});
  virtual ~DiskArray() = default;

  DiskArray(const DiskArray&) = delete;
  DiskArray& operator=(const DiskArray&) = delete;

  /// One parallel I/O operation reading up to one track per disk.
  /// Empty op lists are rejected (they would be free I/O).
  void parallel_read(std::span<const ReadOp> ops);

  /// One parallel I/O operation writing up to one track per disk.
  void parallel_write(std::span<const WriteOp> ops);

  /// Barrier: returns once every transfer issued so far has completed and
  /// the backends have flushed buffered data to their medium.  Both engines
  /// complete all transfers before parallel_read/parallel_write return, so
  /// this only adds the backend flush — but callers should use it as the
  /// ordering point before inspecting backing files externally.
  virtual void sync();

  [[nodiscard]] std::size_t num_disks() const { return disks_.size(); }
  [[nodiscard]] std::size_t block_size() const { return block_size_; }

  [[nodiscard]] Disk& disk(std::size_t i) { return *disks_[i]; }
  [[nodiscard]] const Disk& disk(std::size_t i) const { return *disks_[i]; }

  [[nodiscard]] const IoStats& stats() const { return stats_; }
  /// Engine execution stats; valid whenever no parallel I/O is in flight.
  [[nodiscard]] const EngineStats& engine_stats() const { return engine_; }
  void reset_stats() {
    stats_ = IoStats{};
    engine_.reset();
  }

  /// Max tracks used over all drives — the per-disk space bound of Lemma 1.
  [[nodiscard]] std::uint64_t max_tracks_used() const;

 protected:
  /// One per-disk transfer of a parallel I/O operation; exactly one of
  /// `dst` / `src` is non-null.
  struct Transfer {
    std::uint32_t disk;
    std::uint64_t track;
    std::byte* dst = nullptr;
    const std::byte* src = nullptr;
    std::size_t len = 0;
  };

  /// Execute the (distinct-disk) transfers of one parallel I/O operation.
  /// Must not return before every transfer has completed; errors propagate
  /// as exceptions after all transfers have settled.
  virtual void execute(std::span<const Transfer> transfers);

  /// Perform one transfer against the owning Disk, retrying retryable
  /// IoErrors per the array's RetryPolicy (with per-disk jittered backoff),
  /// and record per-disk engine stats including retries/giveups.  Safe to
  /// call concurrently for *different* disks.
  void run_transfer(const Transfer& t);

  EngineStats engine_;

 private:
  void check_distinct(std::span<const std::uint32_t> disks) const;

  std::size_t block_size_;
  DiskArrayOptions options_;
  std::vector<std::unique_ptr<Disk>> disks_;
  std::vector<util::Rng> jitter_;  ///< per-disk backoff jitter streams
  IoStats stats_;
  mutable std::vector<std::uint8_t> seen_;  // scratch for distinctness check
  std::vector<Transfer> transfers_;         // scratch for op translation
};

/// Worker-pool engine: see parallel_disk_array.hpp.  Declared here so the
/// factory can live next to the interface.
std::unique_ptr<DiskArray> make_disk_array(
    IoEngine engine, std::size_t num_disks, std::size_t block_size,
    std::function<std::unique_ptr<Backend>(std::size_t)> make_backend =
        nullptr,
    std::uint64_t capacity_tracks_per_disk = 0, DiskArrayOptions options = {});

}  // namespace embsp::em
