#include "em/backend.hpp"

#include <fcntl.h>
#include <limits.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <unordered_set>

#include "em/io_error.hpp"

namespace embsp::em {

// --- MemoryBackend ---------------------------------------------------------

std::byte* MemoryBackend::segment(std::uint64_t index, bool create) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index >= segments_.size()) {
    if (!create) return nullptr;
    segments_.resize(index + 1);
  }
  auto& seg = segments_[index];
  if (seg == nullptr) {
    if (!create) return nullptr;
    seg = std::make_unique<std::byte[]>(kSegmentBytes);  // zero-filled
  }
  return seg.get();
}

void MemoryBackend::read(std::uint64_t offset, std::span<std::byte> dst) {
  std::size_t done = 0;
  while (done < dst.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t idx = pos / kSegmentBytes;
    const std::size_t within = static_cast<std::size_t>(pos % kSegmentBytes);
    const std::size_t n =
        std::min<std::size_t>(kSegmentBytes - within, dst.size() - done);
    if (const std::byte* seg = segment(idx, /*create=*/false)) {
      std::memcpy(dst.data() + done, seg + within, n);
    } else {
      // Never-written territory reads as zero (freshly formatted disk).
      std::memset(dst.data() + done, 0, n);
    }
    done += n;
  }
}

void MemoryBackend::write(std::uint64_t offset,
                          std::span<const std::byte> src) {
  std::size_t done = 0;
  while (done < src.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t idx = pos / kSegmentBytes;
    const std::size_t within = static_cast<std::size_t>(pos % kSegmentBytes);
    const std::size_t n =
        std::min<std::size_t>(kSegmentBytes - within, src.size() - done);
    std::byte* seg = segment(idx, /*create=*/true);
    std::memcpy(seg + within, src.data() + done, n);
    done += n;
  }
  const std::uint64_t end = offset + src.size();
  std::uint64_t seen = size_.load(std::memory_order_relaxed);
  while (seen < end &&
         !size_.compare_exchange_weak(seen, end, std::memory_order_relaxed)) {
  }
}

// --- FileBackend -----------------------------------------------------------

namespace {

// Live backing files in this process: a second backend on the same path
// would silently clobber the first, so constructors reject it (shared by
// FileBackend and UringBackend through detail::claim_backend_path).
std::mutex g_open_paths_mutex;
std::unordered_set<std::string>& open_paths() {
  static std::unordered_set<std::string> set;
  return set;
}

std::string registry_key_for(const std::string& path) {
  std::error_code ec;
  auto abs = std::filesystem::absolute(path, ec);
  if (ec) return path;
  return abs.lexically_normal().string();
}

}  // namespace

namespace detail {

std::string claim_backend_path(const std::string& path) {
  std::string key = registry_key_for(path);
  std::lock_guard<std::mutex> lock(g_open_paths_mutex);
  if (!open_paths().insert(key).second) {
    throw PersistentIoError(path +
                            " is already open in this process (double-open "
                            "would clobber the backing file)");
  }
  return key;
}

void release_backend_path(const std::string& key) {
  std::lock_guard<std::mutex> lock(g_open_paths_mutex);
  open_paths().erase(key);
}

}  // namespace detail

FileBackend::FileBackend(std::string path, bool keep, bool sync_writes)
    : path_(std::move(path)), keep_(keep) {
  registry_key_ = detail::claim_backend_path(path_);
  // Truncate only files we create: with `keep`, an existing backing file is
  // data the caller asked to preserve across runs.  Scratch files
  // (!keep) are always started fresh.
  int flags = O_RDWR | O_CREAT;
  bool preexisting = false;
  if (keep_) {
    struct stat st{};
    preexisting = ::stat(path_.c_str(), &st) == 0;
  }
  if (!preexisting) flags |= O_TRUNC;
  if (sync_writes) flags |= O_DSYNC;
  // open() can be interrupted too (e.g. O_DSYNC on slow media while an
  // interval timer fires) — retry like the transfer loops do.
  do {
    fd_ = ::open(path_.c_str(), flags, 0644);
  } while (fd_ < 0 && errno == EINTR);
  if (fd_ < 0) {
    const int err = errno;
    detail::release_backend_path(registry_key_);
    throw IoError(classify_errno(err), "FileBackend: cannot open " + path_ +
                                           ": " + std::strerror(err));
  }
  if (preexisting) {
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end > 0) {
      size_.store(static_cast<std::uint64_t>(end),
                  std::memory_order_relaxed);
    }
  }
}

FileBackend::~FileBackend() {
  if (fd_ >= 0) ::close(fd_);
  if (!keep_) ::unlink(path_.c_str());
  detail::release_backend_path(registry_key_);
}

void FileBackend::read(std::uint64_t offset, std::span<std::byte> dst) {
  std::size_t done = 0;
  while (done < dst.size()) {
    const ssize_t got =
        ::pread(fd_, dst.data() + done, dst.size() - done,
                static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      throw IoError(classify_errno(err), "FileBackend: read failed on " +
                                             path_ + ": " +
                                             std::strerror(err));
    }
    if (got == 0) {
      // Past EOF: unwritten tracks read as zero.  (Holes inside the file
      // already read as zero through pread itself.)
      std::memset(dst.data() + done, 0, dst.size() - done);
      return;
    }
    done += static_cast<std::size_t>(got);
  }
}

void FileBackend::write(std::uint64_t offset, std::span<const std::byte> src) {
  std::size_t done = 0;
  while (done < src.size()) {
    const ssize_t put =
        ::pwrite(fd_, src.data() + done, src.size() - done,
                 static_cast<off_t>(offset + done));
    if (put < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      throw IoError(classify_errno(err), "FileBackend: write failed on " +
                                             path_ + ": " +
                                             std::strerror(err));
    }
    done += static_cast<std::size_t>(put);
  }
  const std::uint64_t end = offset + src.size();
  std::uint64_t seen = size_.load(std::memory_order_relaxed);
  while (seen < end &&
         !size_.compare_exchange_weak(seen, end, std::memory_order_relaxed)) {
  }
}

void FileBackend::read_vec(std::uint64_t offset,
                           std::span<const std::span<std::byte>> dsts) {
  std::vector<iovec> iov;
  iov.reserve(dsts.size());
  for (const auto& d : dsts) {
    if (!d.empty()) iov.push_back(iovec{d.data(), d.size()});
  }
  std::size_t idx = 0;  // first iovec not yet fully transferred
  std::uint64_t pos = offset;
  while (idx < iov.size()) {
    const int cnt = static_cast<int>(
        std::min<std::size_t>(iov.size() - idx, std::size_t{IOV_MAX}));
    const ssize_t got =
        ::preadv(fd_, iov.data() + idx, cnt, static_cast<off_t>(pos));
    if (got < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      throw IoError(classify_errno(err), "FileBackend: preadv failed on " +
                                             path_ + ": " +
                                             std::strerror(err));
    }
    if (got == 0) {
      // Past EOF: unwritten tracks read as zero, same as the scalar path.
      for (; idx < iov.size(); ++idx) {
        std::memset(iov[idx].iov_base, 0, iov[idx].iov_len);
      }
      return;
    }
    pos += static_cast<std::uint64_t>(got);
    auto remaining = static_cast<std::size_t>(got);
    while (remaining > 0 && idx < iov.size()) {
      if (remaining >= iov[idx].iov_len) {
        remaining -= iov[idx].iov_len;
        ++idx;
      } else {
        iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + remaining;
        iov[idx].iov_len -= remaining;
        remaining = 0;
      }
    }
  }
}

void FileBackend::write_vec(std::uint64_t offset,
                            std::span<const std::span<const std::byte>> srcs) {
  std::vector<iovec> iov;
  iov.reserve(srcs.size());
  std::uint64_t total = 0;
  for (const auto& s : srcs) {
    total += s.size();
    if (!s.empty()) {
      // pwritev never modifies the buffers; iovec just lacks a const view.
      iov.push_back(iovec{const_cast<std::byte*>(s.data()), s.size()});
    }
  }
  std::size_t idx = 0;
  std::uint64_t pos = offset;
  while (idx < iov.size()) {
    const int cnt = static_cast<int>(
        std::min<std::size_t>(iov.size() - idx, std::size_t{IOV_MAX}));
    const ssize_t put =
        ::pwritev(fd_, iov.data() + idx, cnt, static_cast<off_t>(pos));
    if (put < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      throw IoError(classify_errno(err), "FileBackend: pwritev failed on " +
                                             path_ + ": " +
                                             std::strerror(err));
    }
    pos += static_cast<std::uint64_t>(put);
    auto remaining = static_cast<std::size_t>(put);
    while (remaining > 0 && idx < iov.size()) {
      if (remaining >= iov[idx].iov_len) {
        remaining -= iov[idx].iov_len;
        ++idx;
      } else {
        iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + remaining;
        iov[idx].iov_len -= remaining;
        remaining = 0;
      }
    }
  }
  const std::uint64_t end = offset + total;
  std::uint64_t seen = size_.load(std::memory_order_relaxed);
  while (seen < end &&
         !size_.compare_exchange_weak(seen, end, std::memory_order_relaxed)) {
  }
}

void FileBackend::flush() {
  // fdatasync blocks for the full device flush, making it the likeliest
  // call to take a signal mid-flight; bailing out here would report a
  // durability failure that never happened.
  int rc;
  do {
    rc = ::fdatasync(fd_);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int err = errno;
    throw IoError(classify_errno(err), "FileBackend: fdatasync failed on " +
                                           path_ + ": " + std::strerror(err));
  }
}

std::unique_ptr<Backend> make_memory_backend() {
  return std::make_unique<MemoryBackend>();
}

std::unique_ptr<Backend> make_file_backend(const std::string& path, bool keep,
                                           bool sync_writes) {
  return std::make_unique<FileBackend>(path, keep, sync_writes);
}

}  // namespace embsp::em
