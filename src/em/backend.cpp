#include "em/backend.hpp"

#include <cstring>
#include <stdexcept>

namespace embsp::em {

void MemoryBackend::read(std::uint64_t offset, std::span<std::byte> dst) {
  const std::uint64_t end = offset + dst.size();
  // Bytes beyond the high-water mark read as zero (freshly formatted disk).
  if (offset >= data_.size()) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  const std::uint64_t avail = std::min<std::uint64_t>(end, data_.size()) - offset;
  std::memcpy(dst.data(), data_.data() + offset, avail);
  if (avail < dst.size()) {
    std::memset(dst.data() + avail, 0, dst.size() - avail);
  }
}

void MemoryBackend::write(std::uint64_t offset, std::span<const std::byte> src) {
  const std::uint64_t end = offset + src.size();
  if (end > data_.size()) data_.resize(end);
  std::memcpy(data_.data() + offset, src.data(), src.size());
}

FileBackend::FileBackend(std::string path, bool keep)
    : path_(std::move(path)), keep_(keep) {
  file_ = std::fopen(path_.c_str(), "w+b");
  if (file_ == nullptr) {
    throw std::runtime_error("FileBackend: cannot open " + path_);
  }
}

FileBackend::~FileBackend() {
  if (file_ != nullptr) std::fclose(file_);
  if (!keep_) std::remove(path_.c_str());
}

void FileBackend::read(std::uint64_t offset, std::span<std::byte> dst) {
  if (offset >= size_) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    throw std::runtime_error("FileBackend: seek failed on " + path_);
  }
  const std::size_t avail = static_cast<std::size_t>(
      std::min<std::uint64_t>(offset + dst.size(), size_) - offset);
  const std::size_t got = std::fread(dst.data(), 1, avail, file_);
  if (got != avail) {
    throw std::runtime_error("FileBackend: short read on " + path_);
  }
  if (avail < dst.size()) {
    std::memset(dst.data() + avail, 0, dst.size() - avail);
  }
}

void FileBackend::write(std::uint64_t offset, std::span<const std::byte> src) {
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    throw std::runtime_error("FileBackend: seek failed on " + path_);
  }
  if (std::fwrite(src.data(), 1, src.size(), file_) != src.size()) {
    throw std::runtime_error("FileBackend: short write on " + path_);
  }
  size_ = std::max<std::uint64_t>(size_, offset + src.size());
}

std::unique_ptr<Backend> make_memory_backend() {
  return std::make_unique<MemoryBackend>();
}

std::unique_ptr<Backend> make_file_backend(const std::string& path, bool keep) {
  return std::make_unique<FileBackend>(path, keep);
}

}  // namespace embsp::em
