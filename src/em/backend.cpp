#include "em/backend.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace embsp::em {

void MemoryBackend::read(std::uint64_t offset, std::span<std::byte> dst) {
  const std::uint64_t end = offset + dst.size();
  // Bytes beyond the high-water mark read as zero (freshly formatted disk).
  if (offset >= data_.size()) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  const std::uint64_t avail = std::min<std::uint64_t>(end, data_.size()) - offset;
  std::memcpy(dst.data(), data_.data() + offset, avail);
  if (avail < dst.size()) {
    std::memset(dst.data() + avail, 0, dst.size() - avail);
  }
}

void MemoryBackend::write(std::uint64_t offset, std::span<const std::byte> src) {
  const std::uint64_t end = offset + src.size();
  if (end > data_.size()) data_.resize(end);
  std::memcpy(data_.data() + offset, src.data(), src.size());
}

FileBackend::FileBackend(std::string path, bool keep, bool sync_writes)
    : path_(std::move(path)), keep_(keep) {
  int flags = O_RDWR | O_CREAT | O_TRUNC;
  if (sync_writes) flags |= O_DSYNC;
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("FileBackend: cannot open " + path_ + ": " +
                             std::strerror(errno));
  }
}

FileBackend::~FileBackend() {
  if (fd_ >= 0) ::close(fd_);
  if (!keep_) ::unlink(path_.c_str());
}

void FileBackend::read(std::uint64_t offset, std::span<std::byte> dst) {
  std::size_t done = 0;
  while (done < dst.size()) {
    const ssize_t got =
        ::pread(fd_, dst.data() + done, dst.size() - done,
                static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("FileBackend: read failed on " + path_ + ": " +
                               std::strerror(errno));
    }
    if (got == 0) {
      // Past EOF: unwritten tracks read as zero.  (Holes inside the file
      // already read as zero through pread itself.)
      std::memset(dst.data() + done, 0, dst.size() - done);
      return;
    }
    done += static_cast<std::size_t>(got);
  }
}

void FileBackend::write(std::uint64_t offset, std::span<const std::byte> src) {
  std::size_t done = 0;
  while (done < src.size()) {
    const ssize_t put =
        ::pwrite(fd_, src.data() + done, src.size() - done,
                 static_cast<off_t>(offset + done));
    if (put < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("FileBackend: write failed on " + path_ + ": " +
                               std::strerror(errno));
    }
    done += static_cast<std::size_t>(put);
  }
  const std::uint64_t end = offset + src.size();
  std::uint64_t seen = size_.load(std::memory_order_relaxed);
  while (seen < end &&
         !size_.compare_exchange_weak(seen, end, std::memory_order_relaxed)) {
  }
}

void FileBackend::flush() {
  if (::fdatasync(fd_) != 0) {
    throw std::runtime_error("FileBackend: fdatasync failed on " + path_ +
                             ": " + std::strerror(errno));
  }
}

std::unique_ptr<Backend> make_memory_backend() {
  return std::make_unique<MemoryBackend>();
}

std::unique_ptr<Backend> make_file_backend(const std::string& path, bool keep,
                                           bool sync_writes) {
  return std::make_unique<FileBackend>(path, keep, sync_writes);
}

}  // namespace embsp::em
