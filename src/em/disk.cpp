#include "em/disk.hpp"

#include <stdexcept>
#include <string>

#include "em/io_error.hpp"
#include "util/checksum.hpp"

namespace embsp::em {

Disk::Disk(std::size_t block_size, std::unique_ptr<Backend> backend,
           std::uint64_t capacity_tracks, bool verify_checksums)
    : block_size_(block_size),
      backend_(std::move(backend)),
      capacity_(capacity_tracks),
      verify_(verify_checksums) {
  if (block_size_ == 0) {
    throw std::invalid_argument("Disk: block size must be > 0");
  }
  if (backend_ == nullptr) {
    throw std::invalid_argument("Disk: backend must not be null");
  }
}

void Disk::check(std::uint64_t track, std::size_t len) const {
  if (len != block_size_) {
    throw std::invalid_argument(
        "Disk: transfer must be exactly one block (" +
        std::to_string(block_size_) + " bytes), got " + std::to_string(len));
  }
  if (capacity_ != 0 && track >= capacity_) {
    throw std::out_of_range("Disk: track " + std::to_string(track) +
                            " beyond capacity " + std::to_string(capacity_));
  }
}

void Disk::read_track(std::uint64_t track, std::span<std::byte> dst) {
  check(track, dst.size());
  backend_->read(track * block_size_, dst);
  ++reads_;
  if (verify_ && track < has_sum_.size() && has_sum_[track] != 0) {
    const std::uint64_t sum = util::checksum64(dst);
    if (sum != sums_[track]) {
      ++checksum_failures_;
      throw CorruptBlockError("Disk: checksum mismatch on track " +
                              std::to_string(track) +
                              " (silent corruption detected)");
    }
  }
}

void Disk::write_track(std::uint64_t track, std::span<const std::byte> src) {
  check(track, src.size());
  backend_->write(track * block_size_, src);
  ++writes_;
  tracks_used_ = std::max(tracks_used_, track + 1);
  if (verify_) {
    if (track >= has_sum_.size()) {
      has_sum_.resize(track + 1, 0);
      sums_.resize(track + 1, 0);
    }
    sums_[track] = util::checksum64(src);
    has_sum_[track] = 1;
  }
}

}  // namespace embsp::em
