#include "em/disk.hpp"

#include <stdexcept>
#include <string>

#include "em/io_error.hpp"
#include "util/checksum.hpp"

namespace embsp::em {

Disk::Disk(std::size_t block_size, std::unique_ptr<Backend> backend,
           std::uint64_t capacity_tracks, bool verify_checksums)
    : block_size_(block_size),
      backend_(std::move(backend)),
      capacity_(capacity_tracks),
      verify_(verify_checksums) {
  if (block_size_ == 0) {
    throw std::invalid_argument("Disk: block size must be > 0");
  }
  if (backend_ == nullptr) {
    throw std::invalid_argument("Disk: backend must not be null");
  }
}

void Disk::check(std::uint64_t track, std::size_t len) const {
  if (len != block_size_) {
    throw std::invalid_argument(
        "Disk: transfer must be exactly one block (" +
        std::to_string(block_size_) + " bytes), got " + std::to_string(len));
  }
  if (capacity_ != 0 && track >= capacity_) {
    throw std::out_of_range("Disk: track " + std::to_string(track) +
                            " beyond capacity " + std::to_string(capacity_));
  }
}

void Disk::read_track(std::uint64_t track, std::span<std::byte> dst) {
  check(track, dst.size());
  backend_->read(track * block_size_, dst);
  ++reads_;
  if (verify_ && track < has_sum_.size() && has_sum_[track] != 0) {
    const std::uint64_t sum = util::checksum64(dst);
    if (sum != sums_[track]) {
      ++checksum_failures_;
      throw CorruptBlockError("Disk: checksum mismatch on track " +
                              std::to_string(track) +
                              " (silent corruption detected)");
    }
  }
}

void Disk::write_track(std::uint64_t track, std::span<const std::byte> src) {
  check(track, src.size());
  backend_->write(track * block_size_, src);
  ++writes_;
  tracks_used_ = std::max(tracks_used_, track + 1);
  if (verify_) {
    if (track >= has_sum_.size()) {
      has_sum_.resize(track + 1, 0);
      sums_.resize(track + 1, 0);
    }
    sums_[track] = util::checksum64(src);
    has_sum_[track] = 1;
  }
}

void Disk::read_tracks(std::uint64_t first_track,
                       std::span<const std::span<std::byte>> dsts) {
  for (std::size_t i = 0; i < dsts.size(); ++i) {
    check(first_track + i, dsts[i].size());
  }
  backend_->read_vec(first_track * block_size_, dsts);
  reads_ += dsts.size();
  if (!verify_) return;
  for (std::size_t i = 0; i < dsts.size(); ++i) {
    const std::uint64_t track = first_track + i;
    if (track < has_sum_.size() && has_sum_[track] != 0) {
      const std::uint64_t sum = util::checksum64(dsts[i]);
      if (sum != sums_[track]) {
        ++checksum_failures_;
        throw CorruptBlockError("Disk: checksum mismatch on track " +
                                std::to_string(track) +
                                " (silent corruption detected)");
      }
    }
  }
}

void Disk::write_tracks(std::uint64_t first_track,
                        std::span<const std::span<const std::byte>> srcs) {
  for (std::size_t i = 0; i < srcs.size(); ++i) {
    check(first_track + i, srcs[i].size());
  }
  backend_->write_vec(first_track * block_size_, srcs);
  writes_ += srcs.size();
  if (!srcs.empty()) {
    tracks_used_ = std::max(tracks_used_, first_track + srcs.size());
  }
  if (!verify_) return;
  const std::uint64_t last = first_track + srcs.size() - 1;
  if (last >= has_sum_.size()) {
    has_sum_.resize(last + 1, 0);
    sums_.resize(last + 1, 0);
  }
  for (std::size_t i = 0; i < srcs.size(); ++i) {
    sums_[first_track + i] = util::checksum64(srcs[i]);
    has_sum_[first_track + i] = 1;
  }
}

}  // namespace embsp::em
