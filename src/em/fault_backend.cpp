#include "em/fault_backend.hpp"

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

namespace embsp::em {

namespace {

std::uint64_t schedule_seed(std::uint64_t spec_seed, std::uint64_t sim_seed,
                            std::uint32_t disk) {
  // Distinct, decorrelated stream per disk; any change to either seed or
  // the disk index yields an unrelated schedule.
  std::uint64_t s = spec_seed ^ (sim_seed * 0x9e3779b97f4a7c15ULL);
  s ^= (static_cast<std::uint64_t>(disk) + 1) * 0xd1342543de82ef95ULL;
  return s;
}

}  // namespace

FaultCounts snapshot(const FaultCounters& c) {
  FaultCounts s;
  s.read_errors = c.read_errors.load(std::memory_order_relaxed);
  s.write_errors = c.write_errors.load(std::memory_order_relaxed);
  s.torn_writes = c.torn_writes.load(std::memory_order_relaxed);
  s.bit_flips = c.bit_flips.load(std::memory_order_relaxed);
  s.latency_spikes = c.latency_spikes.load(std::memory_order_relaxed);
  s.dead_range_hits = c.dead_range_hits.load(std::memory_order_relaxed);
  return s;
}

FaultInjectingBackend::FaultInjectingBackend(
    std::unique_ptr<Backend> inner, FaultSpec spec, std::uint64_t sim_seed,
    std::uint32_t disk_index, std::shared_ptr<FaultCounters> counters)
    : inner_(std::move(inner)),
      spec_(std::move(spec)),
      disk_(disk_index),
      rng_(schedule_seed(spec_.seed, sim_seed, disk_index)),
      counters_(std::move(counters)) {}

void FaultInjectingBackend::check_dead_range(std::uint64_t offset,
                                             std::size_t len,
                                             const char* what) {
  for (const auto& r : spec_.dead_ranges) {
    if (r.disk != FaultRange::kAllDisks && r.disk != disk_) continue;
    if (offset < r.end && offset + len > r.begin) {
      if (counters_) {
        counters_->dead_range_hits.fetch_add(1, std::memory_order_relaxed);
      }
      throw PersistentIoError(
          "fault injection: " + std::string(what) + " touches dead range [" +
          std::to_string(r.begin) + ", " + std::to_string(r.end) +
          ") on disk " + std::to_string(disk_));
    }
  }
}

void FaultInjectingBackend::check_burst(std::uint64_t call,
                                        const char* what) {
  for (const auto& b : spec_.bursts) {
    if (b.disk != disk_) continue;
    if (call >= b.first_call && call < b.first_call + b.count) {
      throw TransientIoError("fault injection: scripted burst fails " +
                             std::string(what) + " call " +
                             std::to_string(call) + " on disk " +
                             std::to_string(disk_));
    }
  }
}

void FaultInjectingBackend::check_scripted(std::uint64_t call,
                                           const char* what) {
  for (const auto& f : spec_.scripted) {
    if (f.disk != disk_ || f.call != call) continue;
    if (f.kind == FaultKind::crash) {
      // A scripted crash is the deterministic analogue of kill -9: die
      // right here, mid-superstep, with no unwinding — only durable
      // checkpoint state survives.  137 = 128 + SIGKILL, the exit code a
      // real kill -9 produces, so harnesses treat both paths alike.
      std::_Exit(137);
    }
    throw TransientIoError("fault injection: scripted fault fails " +
                           std::string(what) + " call " +
                           std::to_string(call) + " on disk " +
                           std::to_string(disk_));
  }
}

void FaultInjectingBackend::maybe_latency_spike(double draw) {
  if (draw < spec_.latency_spike_rate) {
    if (counters_) {
      counters_->latency_spikes.fetch_add(1, std::memory_order_relaxed);
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(spec_.latency_spike_us));
  }
}

void FaultInjectingBackend::read(std::uint64_t offset,
                                 std::span<std::byte> dst) {
  const std::uint64_t call = calls_++;
  // Fixed draw count per call: the schedule is a pure function of the call
  // sequence, never of which faults happened to fire.
  const double d_latency = rng_.uniform01();
  const double d_error = rng_.uniform01();
  const double d_flip = rng_.uniform01();
  const std::uint64_t d_pos = rng_.next();

  check_dead_range(offset, dst.size(), "read");
  check_burst(call, "read");
  check_scripted(call, "read");
  maybe_latency_spike(d_latency);
  if (d_error < spec_.read_error_rate) {
    if (counters_) {
      counters_->read_errors.fetch_add(1, std::memory_order_relaxed);
    }
    throw TransientIoError("fault injection: transient read error at offset " +
                           std::to_string(offset) + " on disk " +
                           std::to_string(disk_));
  }
  inner_->read(offset, dst);
  if (d_flip < spec_.bit_flip_rate && !dst.empty()) {
    // Flip one bit of the returned buffer; the medium is untouched, so a
    // verified re-read heals it.  Without checksums this is silent.
    const std::uint64_t bit = d_pos % (dst.size() * 8);
    dst[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    if (counters_) {
      counters_->bit_flips.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void FaultInjectingBackend::write(std::uint64_t offset,
                                  std::span<const std::byte> src) {
  const std::uint64_t call = calls_++;
  const double d_latency = rng_.uniform01();
  const double d_error = rng_.uniform01();
  const double d_torn = rng_.uniform01();
  const std::uint64_t d_len = rng_.next();

  check_dead_range(offset, src.size(), "write");
  check_burst(call, "write");
  check_scripted(call, "write");
  maybe_latency_spike(d_latency);
  if (d_error < spec_.write_error_rate) {
    if (counters_) {
      counters_->write_errors.fetch_add(1, std::memory_order_relaxed);
    }
    throw TransientIoError(
        "fault injection: transient write error at offset " +
        std::to_string(offset) + " on disk " + std::to_string(disk_));
  }
  if (d_torn < spec_.torn_write_rate && src.size() > 1) {
    // Persist a strict prefix, then fail — the retried full write repairs
    // the tear, so a successful operation leaves no trace of it.
    const std::size_t cut = 1 + d_len % (src.size() - 1);
    inner_->write(offset, src.first(cut));
    if (counters_) {
      counters_->torn_writes.fetch_add(1, std::memory_order_relaxed);
    }
    throw TransientIoError("fault injection: torn write (" +
                           std::to_string(cut) + "/" +
                           std::to_string(src.size()) + " bytes) at offset " +
                           std::to_string(offset) + " on disk " +
                           std::to_string(disk_));
  }
  inner_->write(offset, src);
}

std::function<std::unique_ptr<Backend>(std::size_t)> wrap_with_faults(
    std::function<std::unique_ptr<Backend>(std::size_t)> base,
    const FaultSpec& spec, std::uint64_t sim_seed,
    std::shared_ptr<FaultCounters> counters) {
  if (!spec.enabled()) return base;
  return [base = std::move(base), spec, sim_seed,
          counters = std::move(counters)](std::size_t d) {
    auto inner = base ? base(d) : make_memory_backend();
    return std::make_unique<FaultInjectingBackend>(
        std::move(inner), spec, sim_seed, static_cast<std::uint32_t>(d),
        counters);
  };
}

bool install_crash_hook_from_env() {
  static bool armed = false;
  if (armed) return true;
  const char* ms_str = std::getenv("EMBSP_CRASH_AFTER_MS");
  if (ms_str == nullptr || *ms_str == '\0') return false;
  const long ms = std::strtol(ms_str, nullptr, 10);
  if (ms < 0) return false;
  armed = true;
  std::thread([ms] {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    std::_Exit(137);
  }).detach();
  return true;
}

}  // namespace embsp::em
