#include "em/track_allocator.hpp"

namespace embsp::em {

std::uint64_t TrackAllocator::reserve_region(std::uint64_t n) {
  const std::uint64_t start = next_;
  next_ += n;
  return start;
}

std::uint64_t TrackAllocator::alloc_track() {
  if (!free_.empty()) {
    const std::uint64_t t = free_.back();
    free_.pop_back();
    return t;
  }
  return next_++;
}

void TrackAllocator::release_track(std::uint64_t track) {
  free_.push_back(track);
}

std::vector<std::uint64_t> TrackAllocators::reserve_striped(
    std::uint64_t tracks_per_disk) {
  std::vector<std::uint64_t> starts(per_disk_.size());
  for (std::size_t d = 0; d < per_disk_.size(); ++d) {
    starts[d] = per_disk_[d].reserve_region(tracks_per_disk);
  }
  return starts;
}

}  // namespace embsp::em
