// Standard linked format (§5.1, step 1(d) of Algorithm 1).
//
// Generated message blocks are partitioned into buckets by destination and
// appended to per-disk linked lists:
//
//   "The blocks are partitioned into D buckets on the disks ... the
//    simulation uses a table of D pointers on each disk.  The i-th entry in
//    the table on a disk points to the head of a list of blocks of bucket i
//    that have been written to that disk.  Whenever we write a block of
//    bucket i to disk Dj, we allocate a free track on Dj and concatenate it
//    to the list for bucket i."
//
// Blocks are written in *write cycles*: up to D blocks per cycle, one per
// disk, with the disk chosen by a fresh random permutation — precisely the
// randomized placement that Lemma 2 analyzes.  The per-disk chain lengths
// are exposed so tests and benches can measure the balance the lemma
// promises.
//
// The chain metadata (track lists) is kept in memory; it stands in for the
// on-disk pointer table + intra-track links of the paper and is O(1) words
// per block.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "em/disk_array.hpp"
#include "em/track_allocator.hpp"
#include "util/rng.hpp"

namespace embsp::em {

class LinkedBuckets {
 public:
  LinkedBuckets(DiskArray& disks, TrackAllocators& alloc,
                std::size_t num_buckets);

  struct OutBlock {
    std::uint32_t bucket;
    std::span<const std::byte> data;  ///< exactly block_size bytes
  };

  /// One write cycle: writes `blocks` (at most D of them) in a single
  /// parallel I/O.  Block i goes to disk pi(i) for a random permutation pi
  /// drawn from `rng` — Algorithm 1 step 1(d).
  void write_cycle(std::span<const OutBlock> blocks, util::Rng& rng);

  /// Asynchronous write cycle (the write-behind path of the pipelined
  /// simulator).  The permutation is drawn from `rng` and the tracks are
  /// allocated AT SUBMISSION, in call order — so interleaving submissions
  /// with compute leaves the RNG stream, the track placement, and hence the
  /// on-disk image byte-identical to the blocking schedule.  The chain
  /// metadata is updated eagerly as well; a failed cycle surfaces when the
  /// caller waits the token (recovery restores chains + allocators from
  /// snapshots, so the eager update is safe).  `blocks` data must stay
  /// alive until the token settles.
  DiskArray::IoToken submit_write_cycle(std::span<const OutBlock> blocks,
                                        util::Rng& rng);

  /// Deterministic variant: block i goes to `disks[i]` (all distinct) —
  /// used by RoutingMode::deterministic, where the caller derives the
  /// placement from per-bucket round-robin cursors.
  void write_cycle_assigned(std::span<const OutBlock> blocks,
                            std::span<const std::uint32_t> disks);

  /// Asynchronous form of write_cycle_assigned; same submission-time
  /// placement/metadata contract as submit_write_cycle.
  DiskArray::IoToken submit_write_cycle_assigned(
      std::span<const OutBlock> blocks, std::span<const std::uint32_t> disks);

  /// Pop the next track of `bucket` stored on `disk` (LIFO — list head).
  /// The caller is expected to read the track and then release_track() it.
  std::optional<std::uint64_t> pop_track(std::size_t bucket,
                                         std::size_t disk);

  /// Return a drained track to the free pool.
  void release_track(std::size_t disk, std::uint64_t track);

  /// Chain length: blocks of `bucket` currently stored on `disk` — the
  /// random variable X_{j,k} of Lemma 2.
  [[nodiscard]] std::size_t blocks_on_disk(std::size_t bucket,
                                           std::size_t disk) const;

  [[nodiscard]] std::size_t bucket_size(std::size_t bucket) const;

  [[nodiscard]] std::size_t num_buckets() const { return num_buckets_; }

  /// Deep copy of every chain, captured before the (destructive) bucket
  /// drain of reorganization so a failed reorganize can restart from intact
  /// chains.  Tracks of blocks drained by the abandoned attempt are
  /// re-covered by restoring the matching TrackAllocators snapshot.
  using ChainsSnapshot =
      std::vector<std::vector<std::vector<std::uint64_t>>>;

  [[nodiscard]] ChainsSnapshot snapshot_chains() const { return chains_; }
  void restore_chains(const ChainsSnapshot& s) { chains_ = s; }

  /// Read and remove every block of `bucket`, calling `consume` once per
  /// block.  Uses maximal disk parallelism: each parallel I/O reads one
  /// block from every drive that still holds part of the bucket, so the
  /// number of I/Os equals the *longest chain* — the quantity Lemma 2
  /// bounds by ~R/D w.h.p.
  void drain_bucket(std::size_t bucket,
                    const std::function<void(std::span<const std::byte>)>&
                        consume);

 private:
  DiskArray* disks_;
  TrackAllocators* alloc_;
  std::size_t num_buckets_;
  // chains_[disk][bucket] = tracks holding blocks of that bucket.
  std::vector<std::vector<std::vector<std::uint64_t>>> chains_;
};

}  // namespace embsp::em
