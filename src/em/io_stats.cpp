#include "em/io_stats.hpp"

// Header-only; see io_stats.hpp.
