#include "em/io_stats.hpp"

#include "obs/metrics.hpp"

namespace embsp::em {

double EngineStats::stall_fraction_since(const EngineStats& prev) const {
  const std::uint64_t stall =
      stall_ns >= prev.stall_ns ? stall_ns - prev.stall_ns : stall_ns;
  std::uint64_t busy = 0;
  for (std::size_t d = 0; d < per_disk.size(); ++d) {
    const std::uint64_t before =
        d < prev.per_disk.size() ? prev.per_disk[d].busy_ns : 0;
    const std::uint64_t now = per_disk[d].busy_ns;
    busy = std::max(busy, now >= before ? now - before : now);
  }
  if (busy == 0) return 0.0;
  return std::clamp(
      static_cast<double>(stall) / static_cast<double>(busy), 0.0, 1.0);
}

void export_metrics(const EngineStats& stats, obs::Registry& registry,
                    const std::string& prefix) {
  std::string key;
  key.reserve(prefix.size() + 32);
  auto at = [&](const std::string& mid, std::string_view leaf)
      -> const std::string& {
    key.assign(prefix).append(mid).append(leaf);
    return key;
  };
  for (std::size_t d = 0; d < stats.per_disk.size(); ++d) {
    const DiskIoStats& ds = stats.per_disk[d];
    const std::string mid = "disk." + std::to_string(d) + ".";
    registry.add(at(mid, "ops"), ds.ops);
    registry.add(at(mid, "bytes"), ds.bytes);
    registry.add(at(mid, "busy_ns"), ds.busy_ns);
    registry.add(at(mid, "retries"), ds.retries);
    registry.add(at(mid, "giveups"), ds.giveups);
    registry.add(at(mid, "coalesced_tracks"), ds.coalesced_tracks);
    registry.merge_histogram(at(mid, "service_ns"), ds.service_ns);
    if (!ds.retry_delay_ns.empty()) {
      registry.merge_histogram(at(mid, "retry_delay_ns"), ds.retry_delay_ns);
    }
  }
  registry.add(at("", "stall_ns"), stats.stall_ns);
  registry.add(at("", "coalesced_tracks"), stats.total_coalesced_tracks());
  registry.set_gauge(at("", "max_queue_depth"),
                     static_cast<double>(stats.max_queue_depth));
  registry.merge_histogram(at("", "queue_depth"), stats.queue_depth);
  // Quiescence-point failures: always exported (a zero is the signal that
  // the recovery paths stayed clean); the kind gauge only when one occurred.
  registry.add(at("", "drain_errors"), stats.drain_errors);
  if (stats.last_drain_error_kind >= 0) {
    registry.set_gauge(at("", "last_drain_error_kind"),
                       static_cast<double>(stats.last_drain_error_kind));
  }
  if (stats.uring.active()) {
    const UringEngineStats& u = stats.uring;
    registry.add(at("uring.", "rings"), u.rings);
    registry.add(at("uring.", "direct_rings"), u.direct_rings);
    registry.add(at("uring.", "sqes"), u.sqes);
    registry.add(at("uring.", "enters"), u.enters);
    registry.add(at("uring.", "fixed_ops"), u.fixed_ops);
    registry.add(at("uring.", "bounced_bytes"), u.bounced_bytes);
    registry.merge_histogram(at("uring.", "ring_depth"), u.ring_depth);
    registry.merge_histogram(at("uring.", "completion_ns"), u.completion_ns);
  }
}

}  // namespace embsp::em
