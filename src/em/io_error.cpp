#include "em/io_error.hpp"

#include <cerrno>

namespace embsp::em {

IoError::Kind classify_errno(int err) {
  switch (err) {
    case EIO:
    case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case EBUSY:
    case ETIMEDOUT:
    case ENOBUFS:
    case ENOMEM:
    // A signal interrupting the syscall, not a device error: the transfer
    // loops retry EINTR inline, but an EINTR that surfaces anyway (e.g.
    // from open/fdatasync wrappers on exotic kernels) is worth retrying,
    // never a reason to give up.
    case EINTR:
      return IoError::Kind::transient;
    default:
      return IoError::Kind::persistent;
  }
}

std::uint64_t RetryPolicy::backoff_ns(std::uint32_t attempt,
                                      util::Rng& jitter) const {
  double ns = static_cast<double>(base_backoff_ns);
  for (std::uint32_t i = 1; i < attempt; ++i) ns *= multiplier;
  ns = std::min(ns, static_cast<double>(max_backoff_ns));
  const double u = 0.5 + jitter.uniform01();  // [0.5, 1.5)
  return static_cast<std::uint64_t>(ns * u);
}

}  // namespace embsp::em
