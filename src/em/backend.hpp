// Storage backends for simulated disk drives.
//
// A Disk stores tracks through a Backend.  Two implementations:
//  * MemoryBackend — a growable byte vector; fast, used by tests/benches.
//  * FileBackend   — one flat file per disk accessed at byte offsets; this
//    is the STXXL-style path used when the data genuinely exceeds RAM (see
//    examples/em_sort_file.cpp).
// The paper's machine has physical disks; per the substitution rules the
// backends exercise the same code paths while letting the cost meter (the
// quantity the paper's theorems are about) stay exact.
#pragma once

#include <cstddef>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace embsp::em {

class Backend {
 public:
  virtual ~Backend() = default;

  /// Read `dst.size()` bytes starting at `offset`.  Reading a region that
  /// was never written yields zero bytes.
  virtual void read(std::uint64_t offset, std::span<std::byte> dst) = 0;

  /// Write `src.size()` bytes starting at `offset`, growing as needed.
  virtual void write(std::uint64_t offset, std::span<const std::byte> src) = 0;

  /// High-water mark of bytes ever touched (for disk-space reporting).
  [[nodiscard]] virtual std::uint64_t size() const = 0;
};

class MemoryBackend final : public Backend {
 public:
  void read(std::uint64_t offset, std::span<std::byte> dst) override;
  void write(std::uint64_t offset, std::span<const std::byte> src) override;
  [[nodiscard]] std::uint64_t size() const override { return data_.size(); }

 private:
  std::vector<std::byte> data_;
};

/// Flat-file backend.  The file is created on construction and removed on
/// destruction unless `keep` is set.
class FileBackend final : public Backend {
 public:
  explicit FileBackend(std::string path, bool keep = false);
  ~FileBackend() override;

  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  void read(std::uint64_t offset, std::span<std::byte> dst) override;
  void write(std::uint64_t offset, std::span<const std::byte> src) override;
  [[nodiscard]] std::uint64_t size() const override { return size_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t size_ = 0;
  bool keep_ = false;
};

/// Factory so DiskArray can create one backend per drive.
using BackendFactory =
    std::unique_ptr<Backend> (*)(std::size_t disk_index, void* user);

std::unique_ptr<Backend> make_memory_backend();
std::unique_ptr<Backend> make_file_backend(const std::string& path,
                                           bool keep = false);

}  // namespace embsp::em
