// Storage backends for simulated disk drives.
//
// A Disk stores tracks through a Backend.  Implementations:
//  * MemoryBackend        — a segmented byte store; fast, used by
//    tests/benches.
//  * FileBackend          — one flat file per disk accessed at byte
//    offsets; this is the STXXL-style path used when the data genuinely
//    exceeds RAM (see examples/em_sort_file.cpp).
//  * FaultInjectingBackend (fault_backend.hpp) — decorator injecting a
//    deterministic fault schedule over any of the above.
// The paper's machine has physical disks; per the substitution rules the
// backends exercise the same code paths while letting the cost meter (the
// quantity the paper's theorems are about) stay exact.
//
// Thread-safety contract: read()/write() must be safe to call without
// external locking as long as concurrent calls do not overlap byte ranges —
// including calls that grow the backend.  The parallel I/O engine
// (ParallelDiskArray) relies on this — each disk's worker issues one-track
// transfers, and one parallel I/O touches at most one track per disk, so
// ranges never overlap within an operation.
//
// Error contract: I/O failures are reported as em::IoError (io_error.hpp)
// so DiskArray::run_transfer can classify transient vs persistent failures
// for its retry policy.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace embsp::em {

class Backend {
 public:
  virtual ~Backend() = default;

  /// Read `dst.size()` bytes starting at `offset`.  Reading a region that
  /// was never written yields zero bytes.
  virtual void read(std::uint64_t offset, std::span<std::byte> dst) = 0;

  /// Write `src.size()` bytes starting at `offset`, growing as needed.
  virtual void write(std::uint64_t offset, std::span<const std::byte> src) = 0;

  /// Vectored read: fill `dsts[0]`, `dsts[1]`, ... from consecutive byte
  /// ranges starting at `offset` (gather into scattered buffers).  The
  /// default decomposes into one read() per buffer, in order — decorators
  /// that count or perturb calls (FaultInjectingBackend) therefore see
  /// exactly the same call sequence as the scalar path.  FileBackend
  /// overrides this with preadv so a coalesced run of adjacent tracks
  /// costs one syscall.
  virtual void read_vec(std::uint64_t offset,
                        std::span<const std::span<std::byte>> dsts) {
    for (const auto& d : dsts) {
      read(offset, d);
      offset += d.size();
    }
  }

  /// Vectored write: store `srcs[0]`, `srcs[1]`, ... to consecutive byte
  /// ranges starting at `offset` (scatter from gathered buffers).  Default
  /// and override contract mirror read_vec.
  virtual void write_vec(std::uint64_t offset,
                         std::span<const std::span<const std::byte>> srcs) {
    for (const auto& s : srcs) {
      write(offset, s);
      offset += s.size();
    }
  }

  /// Make all completed writes durable on the backing medium (no-op for
  /// memory backends).  Called from DiskArray::sync().
  virtual void flush() {}

  /// High-water mark of bytes ever touched (for disk-space reporting).
  [[nodiscard]] virtual std::uint64_t size() const = 0;

  /// Offer long-lived memory regions (bump-allocated arenas, staging pools)
  /// for backend-side acceleration.  UringBackend registers them as kernel
  /// fixed buffers (IORING_REGISTER_BUFFERS); every other backend ignores
  /// the hint and returns false.  Must be called while no I/O is in flight;
  /// a later call replaces the previous registration.
  virtual bool register_buffers(
      std::span<const std::span<std::byte>> /*regions*/) {
    return false;
  }
};

namespace detail {

/// Process-wide double-open guard shared by file-backed backends: claims
/// `path` (normalized to an absolute key, which is returned) and throws
/// PersistentIoError if a live backend already owns it — two backends
/// writing one file would silently clobber each other.
std::string claim_backend_path(const std::string& path);

/// Releases a key previously returned by claim_backend_path.
void release_backend_path(const std::string& key);

}  // namespace detail

/// In-memory backend over fixed-size segments.  Segments make concurrent
/// growth safe: a plain growable vector would reallocate (or zero-fill)
/// under a writer that is mid-memcpy on a non-overlapping range, violating
/// the backend concurrency contract.  Here segment payloads never move —
/// the directory of segment pointers is the only shared structure, and it
/// is guarded by a mutex held only while resolving/creating segments,
/// never during the copies themselves.
class MemoryBackend final : public Backend {
 public:
  void read(std::uint64_t offset, std::span<std::byte> dst) override;
  void write(std::uint64_t offset, std::span<const std::byte> src) override;
  [[nodiscard]] std::uint64_t size() const override {
    return size_.load(std::memory_order_relaxed);
  }

  static constexpr std::size_t kSegmentBytes = 256 * 1024;

 private:
  /// Segment holding `offset`, created zero-filled on demand if `create`;
  /// nullptr when absent and !create.
  std::byte* segment(std::uint64_t index, bool create);

  mutable std::mutex mutex_;  ///< guards segments_ (directory only)
  std::vector<std::unique_ptr<std::byte[]>> segments_;
  std::atomic<std::uint64_t> size_{0};
};

/// Flat-file backend on a raw file descriptor.  All accesses go through
/// pread/pwrite at explicit 64-bit offsets, so the backend carries no seek
/// state, is safe for concurrent non-overlapping transfers, and supports
/// sparse files larger than 2 GiB.  With `keep`, the backing file survives
/// destruction AND re-opening an existing file preserves its contents
/// (only freshly created files are truncated); without `keep` the file is
/// scratch: truncated on open, removed on destruction.  Opening a path
/// that is already held by a live FileBackend in this process throws —
/// two backends writing one file would silently clobber each other.  With
/// `sync_writes`, the file is opened O_DSYNC so every write reaches the
/// device before returning — used by benches to measure genuine
/// device-level I/O overlap.
class FileBackend final : public Backend {
 public:
  explicit FileBackend(std::string path, bool keep = false,
                       bool sync_writes = false);
  ~FileBackend() override;

  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  void read(std::uint64_t offset, std::span<std::byte> dst) override;
  void write(std::uint64_t offset, std::span<const std::byte> src) override;
  void read_vec(std::uint64_t offset,
                std::span<const std::span<std::byte>> dsts) override;
  void write_vec(std::uint64_t offset,
                 std::span<const std::span<const std::byte>> srcs) override;
  void flush() override;
  [[nodiscard]] std::uint64_t size() const override {
    return size_.load(std::memory_order_relaxed);
  }

 private:
  std::string path_;
  std::string registry_key_;
  int fd_ = -1;
  std::atomic<std::uint64_t> size_{0};
  bool keep_ = false;
};

/// Factory so DiskArray can create one backend per drive.
using BackendFactory =
    std::unique_ptr<Backend> (*)(std::size_t disk_index, void* user);

std::unique_ptr<Backend> make_memory_backend();
std::unique_ptr<Backend> make_file_backend(const std::string& path,
                                           bool keep = false,
                                           bool sync_writes = false);

}  // namespace embsp::em
