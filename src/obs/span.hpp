// Recorder + RAII phase spans: the glue between instrumented code and the
// sinks.
//
// A PhaseSpan measures the wall-clock duration of one phase (fetch /
// compute / write / reorganize / ...) and pairs it with the *model-cost*
// delta the phase produced (parallel I/Os, blocks, bytes — the quantities
// the paper's theorems bound).  On destruction it feeds both into the
// recorder's Registry (wall_ns histogram + per-phase cost counters, keyed
// "phase.<name>.*") and, when tracing is enabled, appends a Chrome trace
// event on the span's tid track.
//
// Null-sink fast path: every entry point takes Recorder* and a null
// recorder makes construction/destruction a pointer test — no clock reads,
// no allocation, no locking.  Default-config runs (recorder unset) execute
// the exact instruction sequence they did before instrumentation existed,
// which is what keeps them byte-identical and inside the noise floor.
//
// Layering: obs knows nothing of the em/sim layers.  CostDelta mirrors
// em::IoStats field-for-field; sim/obs_hooks.hpp does the translation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace_events.hpp"

namespace embsp::obs {

/// Model-cost delta attributed to one span (mirrors em::IoStats).
struct CostDelta {
  std::uint64_t parallel_ios = 0;
  std::uint64_t blocks_read = 0;
  std::uint64_t blocks_written = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  [[nodiscard]] bool any() const {
    return parallel_ios | blocks_read | blocks_written | bytes_read |
           bytes_written;
  }
};

/// One metrics pipeline: a registry plus an optional trace-event stream.
/// Non-copyable; attach by pointer (SimConfig::recorder) — the owner
/// outlives every run that records into it.
struct Recorder {
  Registry registry;
  TraceWriter trace;
  /// Trace events are buffered only when enabled; the registry is always
  /// live once a recorder is attached.
  bool trace_enabled = false;

  Recorder() = default;
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;
};

class PhaseSpan {
 public:
  /// `name` must outlive the span (string literals in practice).  `tid`
  /// labels the trace track (real-processor index).
  PhaseSpan(Recorder* rec, std::string_view name, std::uint32_t tid = 0)
      : rec_(rec), name_(name), tid_(tid) {
    if (rec_ != nullptr) start_ns_ = TraceWriter::now_ns();
  }

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  /// Attach model cost observed during the span (accumulates).
  void add_cost(const CostDelta& d) {
    cost_.parallel_ios += d.parallel_ios;
    cost_.blocks_read += d.blocks_read;
    cost_.blocks_written += d.blocks_written;
    cost_.bytes_read += d.bytes_read;
    cost_.bytes_written += d.bytes_written;
  }

  ~PhaseSpan() {
    if (rec_ == nullptr) return;
    const std::uint64_t dur = TraceWriter::now_ns() - start_ns_;
    auto& reg = rec_->registry;
    std::string key;
    key.reserve(name_.size() + 24);
    key.append("phase.").append(name_);
    const std::size_t base = key.size();
    auto with = [&](std::string_view suffix) -> std::string& {
      key.resize(base);
      key.append(suffix);
      return key;
    };
    reg.observe(with(".wall_ns"), dur);
    reg.add(with(".calls"));
    reg.add(with(".parallel_ios"), cost_.parallel_ios);
    reg.add(with(".blocks_read"), cost_.blocks_read);
    reg.add(with(".blocks_written"), cost_.blocks_written);
    reg.add(with(".bytes_read"), cost_.bytes_read);
    reg.add(with(".bytes_written"), cost_.bytes_written);
    if (rec_->trace_enabled) {
      rec_->trace.duration(name_, "phase", tid_, start_ns_, dur);
    }
  }

 private:
  Recorder* rec_;
  std::string_view name_;
  std::uint32_t tid_;
  std::uint64_t start_ns_ = 0;
  CostDelta cost_;
};

}  // namespace embsp::obs
