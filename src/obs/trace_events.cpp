#include "obs/trace_events.hpp"

#include <chrono>

#include "obs/json.hpp"

namespace embsp::obs {

std::uint64_t TraceWriter::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceWriter::TraceWriter() : epoch_ns_(now_ns()) {}

void TraceWriter::duration(std::string_view name, std::string_view category,
                           std::uint32_t tid, std::uint64_t start_ns,
                           std::uint64_t dur_ns) {
  std::lock_guard<std::mutex> lock(m_);
  events_.push_back({std::string(name), std::string(category), tid, 'X',
                     start_ns, dur_ns});
}

void TraceWriter::instant(std::string_view name, std::string_view category,
                          std::uint32_t tid, std::uint64_t ts_ns) {
  std::lock_guard<std::mutex> lock(m_);
  events_.push_back(
      {std::string(name), std::string(category), tid, 'i', ts_ns, 0});
}

std::size_t TraceWriter::size() const {
  std::lock_guard<std::mutex> lock(m_);
  return events_.size();
}

void TraceWriter::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(m_);
  JsonWriter w(out, /*indent=*/-1);  // compact: traces can be large
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const auto& e : events_) {
    w.begin_object();
    w.kv("name", std::string_view(e.name));
    w.kv("cat", std::string_view(e.category));
    w.key("ph");
    w.value(std::string_view(&e.phase, 1));
    // Chrome expects microseconds; keep sub-us precision as a fraction.
    const std::uint64_t rel =
        e.ts_ns >= epoch_ns_ ? e.ts_ns - epoch_ns_ : 0;
    w.kv("ts", static_cast<double>(rel) / 1000.0);
    if (e.phase == 'X') {
      w.kv("dur", static_cast<double>(e.dur_ns) / 1000.0);
    } else {
      w.kv("s", "t");  // instant scope: thread
    }
    w.kv("pid", std::uint64_t{0});
    w.kv("tid", static_cast<std::uint64_t>(e.tid));
    w.end_object();
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  out << '\n';
}

}  // namespace embsp::obs
