#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace embsp::obs {

void JsonWriter::newline_indent() {
  if (indent_ < 0) return;
  *out_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_);
       ++i) {
    *out_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (!first_in_scope_) *out_ << ',';
    newline_indent();
  }
  first_in_scope_ = false;
}

void JsonWriter::begin_object() {
  before_value();
  *out_ << '{';
  stack_.push_back(Ctx::object);
  first_in_scope_ = true;
}

void JsonWriter::end_object() {
  stack_.pop_back();
  if (!first_in_scope_) newline_indent();
  *out_ << '}';
  first_in_scope_ = false;
}

void JsonWriter::begin_array() {
  before_value();
  *out_ << '[';
  stack_.push_back(Ctx::array);
  first_in_scope_ = true;
}

void JsonWriter::end_array() {
  stack_.pop_back();
  if (!first_in_scope_) newline_indent();
  *out_ << ']';
  first_in_scope_ = false;
}

void JsonWriter::key(std::string_view k) {
  if (!first_in_scope_) *out_ << ',';
  newline_indent();
  first_in_scope_ = false;
  write_escaped(k);
  *out_ << (indent_ < 0 ? ":" : ": ");
  after_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  before_value();
  write_escaped(v);
}

void JsonWriter::value(bool v) {
  before_value();
  *out_ << (v ? "true" : "false");
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  *out_ << v;
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  *out_ << v;
}

void JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {  // JSON has no Infinity/NaN literals
    *out_ << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out_ << buf;
}

namespace {

/// Length of the valid UTF-8 sequence starting at s[i], or 0 if the bytes
/// there are not well-formed UTF-8 (truncated sequence, stray continuation
/// byte, overlong encoding, surrogate code point, or > U+10FFFF).
std::size_t utf8_sequence_length(std::string_view s, std::size_t i) {
  const auto b0 = static_cast<unsigned char>(s[i]);
  std::size_t len;
  std::uint32_t cp;
  if (b0 < 0x80) return 1;
  if ((b0 & 0xE0) == 0xC0) {
    len = 2;
    cp = b0 & 0x1Fu;
  } else if ((b0 & 0xF0) == 0xE0) {
    len = 3;
    cp = b0 & 0x0Fu;
  } else if ((b0 & 0xF8) == 0xF0) {
    len = 4;
    cp = b0 & 0x07u;
  } else {
    return 0;  // continuation byte or 0xF8-0xFF lead
  }
  if (i + len > s.size()) return 0;
  for (std::size_t k = 1; k < len; ++k) {
    const auto b = static_cast<unsigned char>(s[i + k]);
    if ((b & 0xC0) != 0x80) return 0;
    cp = (cp << 6) | (b & 0x3Fu);
  }
  // Reject overlong encodings, UTF-16 surrogates and out-of-range points:
  // all of them break strict JSON parsers even though the byte pattern
  // looks superficially well-formed.
  static constexpr std::uint32_t kMinForLen[5] = {0, 0, 0x80, 0x800, 0x10000};
  if (cp < kMinForLen[len]) return 0;
  if (cp >= 0xD800 && cp <= 0xDFFF) return 0;
  if (cp > 0x10FFFF) return 0;
  return len;
}

}  // namespace

void JsonWriter::write_escaped(std::string_view s) {
  *out_ << '"';
  for (std::size_t i = 0; i < s.size();) {
    const char c = s[i];
    switch (c) {
      case '"':
        *out_ << "\\\"";
        ++i;
        continue;
      case '\\':
        *out_ << "\\\\";
        ++i;
        continue;
      case '\b':
        *out_ << "\\b";
        ++i;
        continue;
      case '\f':
        *out_ << "\\f";
        ++i;
        continue;
      case '\n':
        *out_ << "\\n";
        ++i;
        continue;
      case '\r':
        *out_ << "\\r";
        ++i;
        continue;
      case '\t':
        *out_ << "\\t";
        ++i;
        continue;
      default:
        break;
    }
    const auto u = static_cast<unsigned char>(c);
    // RFC 8259 requires escaping ALL control characters below 0x20; DEL is
    // escaped too so labels never embed invisible control bytes raw.
    if (u < 0x20 || u == 0x7F) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(u));
      *out_ << buf;
      ++i;
      continue;
    }
    if (u < 0x80) {
      *out_ << c;
      ++i;
      continue;
    }
    // Multibyte input: pass through only well-formed UTF-8.  Anything else
    // (a label built from raw bytes, a truncated copy) becomes U+FFFD —
    // emitting it verbatim would make the whole document unparseable.
    const std::size_t len = utf8_sequence_length(s, i);
    if (len == 0) {
      *out_ << "\xEF\xBF\xBD";  // U+FFFD replacement character
      ++i;
      continue;
    }
    *out_ << s.substr(i, len);
    i += len;
  }
  *out_ << '"';
}

}  // namespace embsp::obs
