#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace embsp::obs {

void JsonWriter::newline_indent() {
  if (indent_ < 0) return;
  *out_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_);
       ++i) {
    *out_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (!first_in_scope_) *out_ << ',';
    newline_indent();
  }
  first_in_scope_ = false;
}

void JsonWriter::begin_object() {
  before_value();
  *out_ << '{';
  stack_.push_back(Ctx::object);
  first_in_scope_ = true;
}

void JsonWriter::end_object() {
  stack_.pop_back();
  if (!first_in_scope_) newline_indent();
  *out_ << '}';
  first_in_scope_ = false;
}

void JsonWriter::begin_array() {
  before_value();
  *out_ << '[';
  stack_.push_back(Ctx::array);
  first_in_scope_ = true;
}

void JsonWriter::end_array() {
  stack_.pop_back();
  if (!first_in_scope_) newline_indent();
  *out_ << ']';
  first_in_scope_ = false;
}

void JsonWriter::key(std::string_view k) {
  if (!first_in_scope_) *out_ << ',';
  newline_indent();
  first_in_scope_ = false;
  write_escaped(k);
  *out_ << (indent_ < 0 ? ":" : ": ");
  after_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  before_value();
  write_escaped(v);
}

void JsonWriter::value(bool v) {
  before_value();
  *out_ << (v ? "true" : "false");
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  *out_ << v;
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  *out_ << v;
}

void JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {  // JSON has no Infinity/NaN literals
    *out_ << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out_ << buf;
}

void JsonWriter::write_escaped(std::string_view s) {
  *out_ << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out_ << "\\\"";
        break;
      case '\\':
        *out_ << "\\\\";
        break;
      case '\n':
        *out_ << "\\n";
        break;
      case '\r':
        *out_ << "\\r";
        break;
      case '\t':
        *out_ << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out_ << buf;
        } else {
          *out_ << c;
        }
    }
  }
  *out_ << '"';
}

}  // namespace embsp::obs
