#include "obs/metrics.hpp"

#include "obs/json.hpp"

namespace embsp::obs {

namespace {

// Heterogeneous lookup-or-insert: std::map::operator[] would force a
// std::string temporary per call even on hits.
template <typename Map>
auto& slot(Map& m, std::string_view name) {
  auto it = m.find(name);
  if (it == m.end()) {
    it = m.emplace(std::string(name), typename Map::mapped_type{}).first;
  }
  return it->second;
}

}  // namespace

void Registry::add(std::string_view counter, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(m_);
  slot(counters_, counter) += delta;
}

void Registry::set_gauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(m_);
  slot(gauges_, name) = value;
}

void Registry::observe(std::string_view histogram, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(m_);
  slot(histograms_, histogram).record(value);
}

void Registry::merge_histogram(std::string_view name, const LogHistogram& h) {
  std::lock_guard<std::mutex> lock(m_);
  slot(histograms_, name).merge(h);
}

std::uint64_t Registry::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(m_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Registry::gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(m_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

LogHistogram Registry::histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(m_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? LogHistogram{} : it->second;
}

bool Registry::empty() const {
  std::lock_guard<std::mutex> lock(m_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void Registry::clear() {
  std::lock_guard<std::mutex> lock(m_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void Registry::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(m_);
  JsonWriter w(out);
  w.begin_object();
  w.kv("schema_version", kMetricsSchemaVersion);

  w.key("counters");
  w.begin_object();
  for (const auto& [name, v] : counters_) w.kv(name, v);
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (const auto& [name, v] : gauges_) w.kv(name, v);
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.kv("count", h.count());
    w.kv("sum", h.sum());
    w.kv("min", h.min());
    w.kv("max", h.max());
    w.kv("mean", h.mean());
    w.kv("p50", h.percentile(0.50));
    w.kv("p99", h.percentile(0.99));
    w.key("buckets");
    w.begin_array();
    for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i) {
      if (h.bucket_count(i) == 0) continue;
      w.begin_array();
      w.value(LogHistogram::bucket_lo(i));
      w.value(LogHistogram::bucket_hi(i));
      w.value(h.bucket_count(i));
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.end_object();
  out << '\n';
}

}  // namespace embsp::obs
