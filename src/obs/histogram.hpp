// Log-scale (power-of-two bucket) histogram for latency- and size-shaped
// quantities: values span nanoseconds to seconds (or bytes to gigabytes),
// so fixed-width buckets would either truncate the tail or waste the head.
//
// Bucket i holds values whose bit width is i: bucket 0 is exactly {0},
// bucket i >= 1 covers [2^(i-1), 2^i - 1].  record() is a handful of
// arithmetic ops (std::bit_width + three adds) — cheap enough to live on
// the per-transfer path of the disk engines, where two steady_clock reads
// already dwarf it.
//
// Concurrency contract: a LogHistogram is a plain value type with NO
// internal locking, following DiskIoStats (io_stats.hpp): it must be
// written by a single owning thread and read only when that writer is
// quiescent.  Multi-writer aggregation goes through obs::Registry, which
// serializes access, or through merge() on quiescent copies.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace embsp::obs {

class LogHistogram {
 public:
  /// Bucket count covers the full uint64 range: bit widths 0..64.
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t value) {
    buckets_[bucket_index(value)] += 1;
    count_ += 1;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  /// Min over recorded values; 0 when empty.
  [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i];
  }

  /// Inclusive value range [lo, hi] of bucket i.
  static constexpr std::uint64_t bucket_lo(std::size_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
  static constexpr std::uint64_t bucket_hi(std::size_t i) {
    if (i == 0) return 0;
    if (i >= 64) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << i) - 1;
  }

  static constexpr std::size_t bucket_index(std::uint64_t value) {
    return static_cast<std::size_t>(std::bit_width(value));
  }

  /// Approximate p-quantile (p in [0, 1]): the upper bound of the bucket
  /// containing the p*count-th recorded value, clamped to the observed max.
  /// Exact to within one power of two — the right resolution for "did p99
  /// service time jump an order of magnitude".
  [[nodiscard]] std::uint64_t percentile(double p) const {
    if (count_ == 0) return 0;
    p = std::clamp(p, 0.0, 1.0);
    const auto rank = static_cast<std::uint64_t>(
        p * static_cast<double>(count_ - 1));  // 0-based
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen > rank) return std::min(bucket_hi(i), max_);
    }
    return max_;
  }

  LogHistogram& merge(const LogHistogram& o) {
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
    count_ += o.count_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    return *this;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

}  // namespace embsp::obs
