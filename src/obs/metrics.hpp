// Metrics registry: named counters, gauges and log-scale histograms with a
// machine-readable JSON snapshot.
//
// Names are hierarchical dot-paths ("phase.fetch_ctx.parallel_ios",
// "engine.disk.3.service_ns"); the registry does not interpret them — it
// only guarantees a stable, sorted JSON rendering so snapshots diff
// cleanly across runs.
//
// Thread safety: every mutation and read takes one internal mutex.  The
// registry sits OFF the per-transfer hot path by design — the disk engines
// record into plain per-disk LogHistograms (single-writer, lock-free) and
// bulk-merge them here once per run; simulator phase spans touch the
// registry a handful of times per superstep, where a mutex is noise.
//
// Snapshot schema (validated by tests/test_obs.cpp):
//   {
//     "schema_version": 1,
//     "counters":   { "<name>": <u64>, ... },
//     "gauges":     { "<name>": <double>, ... },
//     "histograms": { "<name>": { "count": u64, "sum": u64, "min": u64,
//                                 "max": u64, "mean": double,
//                                 "p50": u64, "p99": u64,
//                                 "buckets": [[lo, hi, count], ...] }, ... }
//   }
// Histogram bucket lists include only non-empty buckets.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "obs/histogram.hpp"

namespace embsp::obs {

inline constexpr int kMetricsSchemaVersion = 1;

class Registry {
 public:
  void add(std::string_view counter, std::uint64_t delta = 1);
  void set_gauge(std::string_view name, double value);
  /// Record one value into the named histogram (created on first use).
  void observe(std::string_view histogram, std::uint64_t value);
  /// Bulk-merge an externally accumulated histogram (engine stats export).
  void merge_histogram(std::string_view name, const LogHistogram& h);

  /// Snapshot accessors (tests / reports); missing names read as empty.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] double gauge(std::string_view name) const;
  [[nodiscard]] LogHistogram histogram(std::string_view name) const;
  [[nodiscard]] bool empty() const;

  void write_json(std::ostream& out) const;
  void clear();

 private:
  mutable std::mutex m_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, LogHistogram, std::less<>> histograms_;
};

}  // namespace embsp::obs
