// Chrome trace-event sink: phase spans rendered as a timeline that
// chrome://tracing (or Perfetto) opens directly.
//
// Events are buffered in memory (a span is ~60 bytes; even a long run is a
// few MB) and written once at the end — no I/O on the instrumented path, so
// tracing never perturbs the wall-clock numbers it reports.
//
// Output is the JSON Object Format: {"traceEvents": [...]}, each event a
// complete-duration ("ph":"X") or instant ("ph":"i") record with
// microsecond timestamps relative to the writer's construction.  "pid" is
// always 0 (one simulated machine); "tid" carries the real-processor index,
// so the parallel simulator's p timelines stack as separate tracks.
//
// Thread safety: append takes an internal mutex (spans from p simulator
// threads interleave); write_json must run when no spans are in flight.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace embsp::obs {

class TraceWriter {
 public:
  TraceWriter();

  /// Complete-duration event ("ph":"X").  Timestamps are steady-clock ns;
  /// the writer rebases them onto its own epoch.
  void duration(std::string_view name, std::string_view category,
                std::uint32_t tid, std::uint64_t start_ns,
                std::uint64_t dur_ns);

  /// Instant event ("ph":"i") — e.g. a recovery rollback.
  void instant(std::string_view name, std::string_view category,
               std::uint32_t tid, std::uint64_t ts_ns);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }

  void write_json(std::ostream& out) const;

  /// Current steady-clock time in ns (the timebase events are recorded in).
  static std::uint64_t now_ns();

 private:
  struct Event {
    std::string name;
    std::string category;
    std::uint32_t tid;
    char phase;  // 'X' or 'i'
    std::uint64_t ts_ns;
    std::uint64_t dur_ns;
  };

  mutable std::mutex m_;
  std::vector<Event> events_;
  std::uint64_t epoch_ns_;
};

}  // namespace embsp::obs
