// Minimal streaming JSON writer — the one serialization format every obs
// sink (metrics snapshot, Chrome trace events, bench artifacts) shares.
//
// Push-style: begin/end nesting with automatic comma placement and string
// escaping.  No DOM, no allocation beyond the nesting stack; output is
// deterministic (callers control ordering), which keeps golden-schema tests
// and diff-based perf trajectories stable.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace embsp::obs {

class JsonWriter {
 public:
  /// indent < 0 emits compact single-line JSON; otherwise pretty-print
  /// with `indent` spaces per nesting level.
  explicit JsonWriter(std::ostream& out, int indent = 2)
      : out_(&out), indent_(indent) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object member key; must be followed by a value or begin_*.
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v);
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }

  /// Convenience: key + scalar value.
  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

  /// True once every begin_* has been matched by its end_*.
  [[nodiscard]] bool balanced() const { return stack_.empty(); }

 private:
  enum class Ctx : std::uint8_t { object, array };
  void before_value();
  void newline_indent();
  void write_escaped(std::string_view s);

  std::ostream* out_;
  int indent_;
  std::vector<Ctx> stack_;
  bool first_in_scope_ = true;
  bool after_key_ = false;
};

}  // namespace embsp::obs
