#include "bsp/direct_runtime.hpp"

// Template executor lives in the header; this TU anchors the module.
