// The BSP* program concept shared by all three executors.
//
// A program describes one virtual processor's behaviour:
//
//   struct MyProgram {
//     struct State { ...; void serialize(util::Writer&) const;
//                         void deserialize(util::Reader&); };
//     // Computation + sending superstep.  Return true to request another
//     // superstep (the runtime keeps going while *any* processor returns
//     // true; every processor is invoked every superstep).
//     bool superstep(std::size_t step, const ProcEnv& env, State& state,
//                    const Inbox& in, Outbox& out) const;
//   };
//
// Programs must be *oblivious to the executor*: all inter-processor state
// flows through messages, and State must round-trip through serialization
// (the EM simulators park it on disk between compound supersteps).
#pragma once

#include <cstdint>

#include "bsp/message.hpp"
#include "util/serialization.hpp"

namespace embsp::bsp {

/// Accounting hook for the computation cost T_comp ("basic computation
/// operations").  Programs charge their local work so the c-optimality
/// analysis (§5.4, Observation 2) has a machine-independent T_comp.
class WorkMeter {
 public:
  void charge(std::uint64_t ops) { ops_ += ops; }
  [[nodiscard]] std::uint64_t total() const { return ops_; }
  void reset() { ops_ = 0; }

 private:
  std::uint64_t ops_ = 0;
};

/// Per-virtual-processor environment passed to each superstep.
struct ProcEnv {
  std::uint32_t pid = 0;     ///< virtual processor id in [0, v)
  std::uint32_t nprocs = 1;  ///< v, the number of virtual processors
  WorkMeter* meter = nullptr;

  void charge(std::uint64_t ops) const {
    if (meter != nullptr) meter->charge(ops);
  }
};

template <typename P>
concept Program = requires(const P& prog, std::size_t step, const ProcEnv& env,
                           typename P::State& state, const Inbox& in,
                           Outbox& out) {
  requires util::Serializable<typename P::State>;
  requires std::default_initializable<typename P::State>;
  { prog.superstep(step, env, state, in, out) } -> std::same_as<bool>;
};

}  // namespace embsp::bsp
