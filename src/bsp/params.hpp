// Machine parameters for the BSP* and EM-BSP* models (§2.2, §3 and the
// terminology table in Appendix A.2).
#pragma once

#include <cstddef>
#include <cstdint>

namespace embsp::bsp {

/// BSP* parameters of the *virtual* machine being simulated.
struct BspParams {
  std::uint32_t v = 1;   ///< number of (virtual) processors
  std::size_t b = 1;     ///< minimum packet size for full router bandwidth
  double g = 1.0;        ///< time to transport one packet of size b
  double L = 1.0;        ///< barrier synchronization time
};

/// EM extension parameters of the *target* machine (per real processor).
struct EmParams {
  std::size_t M = 1 << 20;  ///< local memory size in bytes
  std::size_t D = 1;        ///< number of disk drives per processor
  std::size_t B = 4096;     ///< transfer block size in bytes
  double G = 1.0;           ///< time per parallel I/O operation (D blocks)

  /// The model requires M >= D*B: a processor must be able to hold one
  /// block from each local disk simultaneously (§3).
  [[nodiscard]] bool valid() const { return D > 0 && B > 0 && M >= D * B; }
};

/// Full EM-BSP* target machine: p real processors, each with EmParams.
struct MachineParams {
  std::uint32_t p = 1;  ///< number of real processors
  BspParams bsp;        ///< parameters of the virtual BSP* machine
  EmParams em;          ///< per-processor EM parameters

  void validate() const;  ///< throws std::invalid_argument on violations
};

/// Slackness condition of Theorem 1: v >= k * p * D * log2(M/B).
/// Returns the minimum v for the given machine and group size k.
std::uint64_t min_virtual_processors(const MachineParams& m, std::size_t k);

/// Group size k = floor(M / mu), at least 1 (§5.1: "To maximize the use of
/// available memory, we choose k = floor(M/mu)").
std::size_t default_group_size(std::size_t memory_bytes,
                               std::size_t context_bytes);

}  // namespace embsp::bsp
