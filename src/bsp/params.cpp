#include "bsp/params.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace embsp::bsp {

void MachineParams::validate() const {
  if (p == 0) throw std::invalid_argument("MachineParams: p must be > 0");
  if (bsp.v == 0) throw std::invalid_argument("MachineParams: v must be > 0");
  if (bsp.b == 0) throw std::invalid_argument("MachineParams: b must be > 0");
  if (!em.valid()) {
    throw std::invalid_argument(
        "MachineParams: EM parameters invalid (need D,B > 0 and M >= D*B)");
  }
  if (bsp.v % p != 0) {
    throw std::invalid_argument(
        "MachineParams: v must be a multiple of p (each real processor "
        "simulates v/p virtual processors)");
  }
}

std::uint64_t min_virtual_processors(const MachineParams& m, std::size_t k) {
  const double log_mb =
      std::max(1.0, std::log2(static_cast<double>(m.em.M) /
                              static_cast<double>(m.em.B)));
  return static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(k) * m.p * m.em.D * log_mb));
}

std::size_t default_group_size(std::size_t memory_bytes,
                               std::size_t context_bytes) {
  if (context_bytes == 0) return 1;
  return std::max<std::size_t>(1, memory_bytes / context_bytes);
}

}  // namespace embsp::bsp
