#include "bsp/message.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace embsp::bsp {

Inbox::Inbox(std::vector<Message> messages) : messages_(std::move(messages)) {
  sort_inbox(messages_);
}

std::size_t Inbox::total_bytes() const {
  std::size_t total = 0;
  for (const auto& m : messages_) total += m.payload.size();
  return total;
}

Outbox::Outbox(std::uint32_t src, std::uint32_t nprocs)
    : src_(src), nprocs_(nprocs) {}

void Outbox::send(std::uint32_t dst, std::span<const std::byte> payload) {
  send_owned(dst, std::vector<std::byte>(payload.begin(), payload.end()));
}

void Outbox::send_owned(std::uint32_t dst, std::vector<std::byte> payload) {
  if (dst >= nprocs_) {
    throw std::out_of_range("Outbox: destination " + std::to_string(dst) +
                            " out of range (v = " + std::to_string(nprocs_) +
                            ")");
  }
  total_bytes_ += payload.size();
  messages_.push_back(Message{src_, dst, next_seq_++, std::move(payload)});
}

void sort_inbox(std::vector<Message>& messages) {
  std::sort(messages.begin(), messages.end(),
            [](const Message& a, const Message& b) {
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
}

}  // namespace embsp::bsp
