#include "bsp/message.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace embsp::bsp {

Inbox::Inbox(std::vector<Message> messages) : owned_(std::move(messages)) {
  sort_inbox(owned_);
  messages_.reserve(owned_.size());
  for (const Message& m : owned_) {
    messages_.push_back(MessageRef{m.src, m.dst, m.seq, m.payload});
  }
}

Inbox::Inbox(std::vector<MessageRef> messages)
    : messages_(std::move(messages)) {
  sort_inbox(messages_);
}

std::size_t Inbox::total_bytes() const {
  std::size_t total = 0;
  for (const MessageRef& m : messages_) total += m.payload.size();
  return total;
}

Outbox::Outbox(std::uint32_t src, std::uint32_t nprocs)
    : src_(src), nprocs_(nprocs) {}

std::span<std::byte> Outbox::reserve(std::uint32_t dst, std::size_t size) {
  if (dst >= nprocs_) {
    throw std::out_of_range("Outbox: destination " + std::to_string(dst) +
                            " out of range (v = " + std::to_string(nprocs_) +
                            ")");
  }
  auto span = arena_.allocate(size);
  messages_.push_back(
      MessageRef{src_, dst, next_seq_++, {span.data(), span.size()}});
  total_bytes_ += size;
  return span;
}

void Outbox::send(std::uint32_t dst, std::span<const std::byte> payload) {
  auto span = reserve(dst, payload.size());
  if (!payload.empty()) {
    std::memcpy(span.data(), payload.data(), payload.size());
  }
}

std::vector<Message> Outbox::take() {
  std::vector<Message> out;
  out.reserve(messages_.size());
  for (const MessageRef& m : messages_) {
    out.push_back(
        Message{m.src, m.dst, m.seq, {m.payload.begin(), m.payload.end()}});
    bytes_copied_ += m.payload.size();
  }
  clear();
  return out;
}

void Outbox::clear() {
  messages_.clear();
  arena_.reset();
  total_bytes_ = 0;
  next_seq_ = 0;
}

void sort_inbox(std::vector<Message>& messages) {
  std::sort(messages.begin(), messages.end(),
            [](const Message& a, const Message& b) {
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
}

void sort_inbox(std::vector<MessageRef>& messages) {
  std::sort(messages.begin(), messages.end(),
            [](const MessageRef& a, const MessageRef& b) {
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
}

}  // namespace embsp::bsp
