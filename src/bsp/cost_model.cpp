#include "bsp/cost_model.hpp"

#include <algorithm>

namespace embsp::bsp {

std::uint64_t packets_for(std::uint64_t bytes, std::size_t b) {
  if (bytes == 0) return 1;
  return (bytes + b - 1) / b;
}

std::uint64_t RunCosts::max_comm_bytes() const {
  std::uint64_t m = 0;
  for (const auto& s : supersteps) {
    m = std::max({m, s.max_bytes_sent, s.max_bytes_received});
  }
  return m;
}

std::uint64_t RunCosts::max_comm_wire() const {
  std::uint64_t m = 0;
  for (const auto& s : supersteps) {
    m = std::max({m, s.max_wire_sent, s.max_wire_received});
  }
  return m;
}

double RunCosts::computation_time(const BspParams& p) const {
  double t = 0;
  for (const auto& s : supersteps) {
    t += std::max(p.L, static_cast<double>(s.max_work));
  }
  return t;
}

double RunCosts::communication_time(const BspParams& p) const {
  double t = 0;
  for (const auto& s : supersteps) {
    const double packets = static_cast<double>(s.max_packets_sent +
                                               s.max_packets_received);
    t += std::max(p.L, p.g * packets);
  }
  return t;
}

std::uint64_t RunCosts::total_bytes() const {
  std::uint64_t t = 0;
  for (const auto& s : supersteps) t += s.total_bytes;
  return t;
}

RunCosts& RunCosts::operator+=(const RunCosts& other) {
  supersteps.insert(supersteps.end(), other.supersteps.begin(),
                    other.supersteps.end());
  return *this;
}

}  // namespace embsp::bsp
