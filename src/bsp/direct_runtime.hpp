// Direct (in-memory) BSP* executor.
//
// Runs a Program with all v contexts resident in memory and messages moved
// by pointer swap.  This is the reference semantics: the EM simulators must
// produce bit-identical per-processor results (tests assert this), and
// measure_requirements() runs a program here first to learn its mu (max
// context size), gamma (max per-processor communication per superstep), and
// lambda (superstep count) before an EM simulation is configured.
#pragma once

#include <functional>
#include <stdexcept>
#include <vector>

#include "bsp/cost_model.hpp"
#include "bsp/message.hpp"
#include "bsp/program.hpp"

namespace embsp::bsp {

struct DirectRunResult {
  RunCosts costs;
  /// Max serialized context size observed across processors and supersteps
  /// (only when Options::measure_context); this is the paper's mu.
  std::size_t max_context_bytes = 0;
  /// gamma: max *wire* bytes sent or received by one processor in one
  /// superstep (payload + per-message overhead) — the budget an EM
  /// simulation of this program must be configured with.
  [[nodiscard]] std::uint64_t gamma() const { return costs.max_comm_wire(); }
  [[nodiscard]] std::size_t lambda() const { return costs.num_supersteps(); }
};

class DirectRuntime {
 public:
  struct Options {
    bool measure_context = false;
    std::size_t max_supersteps = 1'000'000;  ///< runaway-program guard
    std::size_t b = 1;  ///< BSP* packet size used for packet accounting
  };

  template <Program P>
  DirectRunResult run(
      const P& prog, std::uint32_t v,
      const std::function<typename P::State(std::uint32_t)>& make_state,
      const std::function<void(std::uint32_t, typename P::State&)>& collect,
      Options opt = {}) {
    if (v == 0) throw std::invalid_argument("DirectRuntime: v must be > 0");
    using State = typename P::State;

    std::vector<State> states;
    states.reserve(v);
    for (std::uint32_t i = 0; i < v; ++i) states.push_back(make_state(i));

    DirectRunResult result;
    if (opt.measure_context) {
      for (const auto& s : states) {
        result.max_context_bytes =
            std::max(result.max_context_bytes, util::serialized_size(s));
      }
    }

    std::vector<std::vector<Message>> pending(v);  // inboxes for this step
    WorkMeter meter;

    for (std::size_t step = 0;; ++step) {
      if (step >= opt.max_supersteps) {
        throw std::runtime_error(
            "DirectRuntime: superstep limit exceeded (runaway program?)");
      }
      SuperstepCost cost;
      std::vector<std::vector<Message>> next(v);
      bool any_continue = false;

      for (std::uint32_t pid = 0; pid < v; ++pid) {
        Inbox in(std::move(pending[pid]));
        Outbox out(pid, v);
        meter.reset();
        ProcEnv env{pid, v, &meter};

        const bool cont = prog.superstep(step, env, states[pid], in, out);
        any_continue = any_continue || cont;

        // Cost accounting for this processor.
        cost.max_work = std::max(cost.max_work, meter.total());
        cost.total_work += meter.total();
        std::uint64_t sent_packets = 0;
        std::uint64_t sent_wire = 0;
        for (const auto& m : out.messages()) {
          sent_packets += packets_for(m.size_bytes(), opt.b);
          sent_wire += wire_bytes(m.size_bytes());
        }
        cost.max_bytes_sent = std::max<std::uint64_t>(cost.max_bytes_sent,
                                                      out.total_bytes());
        cost.max_packets_sent =
            std::max(cost.max_packets_sent, sent_packets);
        cost.max_wire_sent = std::max(cost.max_wire_sent, sent_wire);
        std::uint64_t recv_bytes = in.total_bytes();
        std::uint64_t recv_packets = 0;
        std::uint64_t recv_wire = 0;
        for (const auto& m : in.all()) {
          recv_packets += packets_for(m.size_bytes(), opt.b);
          recv_wire += wire_bytes(m.size_bytes());
        }
        cost.max_bytes_received =
            std::max(cost.max_bytes_received, recv_bytes);
        cost.max_packets_received =
            std::max(cost.max_packets_received, recv_packets);
        cost.max_wire_received = std::max(cost.max_wire_received, recv_wire);
        cost.total_bytes += out.total_bytes();
        cost.num_messages += out.messages().size();

        for (auto& m : out.take()) {
          next[m.dst].push_back(std::move(m));
        }

        if (opt.measure_context) {
          result.max_context_bytes = std::max(
              result.max_context_bytes, util::serialized_size(states[pid]));
        }
      }

      result.costs.supersteps.push_back(cost);
      pending = std::move(next);
      if (!any_continue) break;
    }

    // Undelivered messages indicate a program bug (sent in the final
    // superstep with nobody left to receive them).
    for (const auto& box : pending) {
      if (!box.empty()) {
        throw std::runtime_error(
            "DirectRuntime: messages sent in the final superstep were never "
            "received");
      }
    }

    for (std::uint32_t pid = 0; pid < v; ++pid) collect(pid, states[pid]);
    return result;
  }
};

/// Program requirements measured by a direct dry run: inputs for configuring
/// an EM simulation of the same program.
struct Requirements {
  std::size_t mu = 0;       ///< max context bytes
  std::uint64_t gamma = 0;  ///< max per-processor comm bytes per superstep
  std::size_t lambda = 0;   ///< supersteps
};

template <Program P>
Requirements measure_requirements(
    const P& prog, std::uint32_t v,
    const std::function<typename P::State(std::uint32_t)>& make_state) {
  DirectRuntime rt;
  DirectRuntime::Options opt;
  opt.measure_context = true;
  auto result = rt.run(
      prog, v, make_state, [](std::uint32_t, typename P::State&) {}, opt);
  return Requirements{result.max_context_bytes, result.gamma(),
                      result.lambda()};
}

}  // namespace embsp::bsp
