// Cost accounting in the BSP / BSP* / EM-BSP* models (§2.2, §3).
//
// Each executor fills one SuperstepCost per compound superstep; RunCosts
// aggregates them and evaluates the model formulas:
//   T_comp = sum_i max(L, max_j t_j)
//   T_comm (BSP*) = sum_i max(L, g * max_j (ceil-packets sent+received))
//   T_IO   = G * (parallel I/O operations)
#pragma once

#include <cstdint>
#include <vector>

#include "bsp/params.hpp"

namespace embsp::bsp {

struct SuperstepCost {
  /// Max over processors of charged computation operations.
  std::uint64_t max_work = 0;
  /// Sum over processors of charged computation operations.
  std::uint64_t total_work = 0;
  /// Max over processors of bytes sent (resp. received) this superstep.
  std::uint64_t max_bytes_sent = 0;
  std::uint64_t max_bytes_received = 0;
  /// Max over processors of BSP* packets (ceil(msg/b) summed per processor).
  std::uint64_t max_packets_sent = 0;
  std::uint64_t max_packets_received = 0;
  /// Max over processors of *wire* bytes (payload + kWireOverheadPerMessage
  /// per message) — the budget the EM simulators meter against gamma.
  std::uint64_t max_wire_sent = 0;
  std::uint64_t max_wire_received = 0;
  /// Total bytes moved between processors this superstep.
  std::uint64_t total_bytes = 0;
  /// Number of messages generated.
  std::uint64_t num_messages = 0;
};

struct RunCosts {
  std::vector<SuperstepCost> supersteps;

  /// lambda — the superstep count the paper's bounds are written in.
  [[nodiscard]] std::size_t num_supersteps() const { return supersteps.size(); }

  /// Largest per-processor communication volume in any single superstep
  /// (the gamma of §5; gamma = O(mu)).
  [[nodiscard]] std::uint64_t max_comm_bytes() const;

  /// Same, in wire bytes (payload + per-message overhead).
  [[nodiscard]] std::uint64_t max_comm_wire() const;

  /// T_comp under the BSP cost model (work measured in charged operations).
  [[nodiscard]] double computation_time(const BspParams& p) const;

  /// T_comm under the BSP* cost model.
  [[nodiscard]] double communication_time(const BspParams& p) const;

  /// Total h-relation bytes routed (for CGM-style H_{n,p} accounting).
  [[nodiscard]] std::uint64_t total_bytes() const;

  RunCosts& operator+=(const RunCosts& other);
};

/// BSP* packet count for a message of `bytes` bytes: ceil(bytes / b), with
/// empty messages still costing one packet (the model charges messages
/// shorter than b as if they had length b).
std::uint64_t packets_for(std::uint64_t bytes, std::size_t b);

/// Fixed per-message overhead charged when metering communication against
/// the declared gamma: covers the block-format chunk headers the EM
/// transport adds (see sim/routing.hpp).
inline constexpr std::uint64_t kWireOverheadPerMessage = 32;

/// Wire size of one message under that accounting.
inline std::uint64_t wire_bytes(std::uint64_t payload) {
  return payload + kWireOverheadPerMessage;
}

}  // namespace embsp::bsp
