// Shared configuration and result types for the EM-BSP* simulators.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "bsp/cost_model.hpp"
#include "bsp/params.hpp"
#include "em/disk_array.hpp"
#include "em/fault_backend.hpp"
#include "em/io_error.hpp"
#include "em/io_stats.hpp"
#include "obs/span.hpp"
#include "sim/routing.hpp"

namespace embsp::sim {

/// Per-message wire overhead charged against gamma: one chunk header plus
/// slack for splitting (see routing.hpp).  Programs' declared gamma must
/// bound sum(payload + kMessageOverhead) per virtual processor per
/// superstep, sent and received.  Aliases the bsp-level constant so the
/// direct runtime's measured gamma() is directly usable as SimConfig.gamma.
inline constexpr std::size_t kMessageOverhead =
    static_cast<std::size_t>(bsp::kWireOverheadPerMessage);

/// Durable checkpoint/restart (see DESIGN.md §"Failure model & recovery").
/// With `dir` set, the simulators serialize a crash-consistent snapshot of
/// the run's logical state to `dir` at superstep boundaries (every `every`
/// supersteps), using write-tmp → fsync → atomic-rename ordering so a
/// checkpoint torn by a crash is always detectable and the previous epoch
/// always loadable.  With `resume` set, the run restores the last committed
/// epoch from `dir` instead of initializing, and then continues — producing
/// byte-identical images and costs to an uninterrupted run.
struct CheckpointConfig {
  std::string dir;          ///< checkpoint directory; empty = disabled
  std::size_t every = 1;    ///< checkpoint every N superstep boundaries
  bool resume = false;      ///< restore the last committed epoch from `dir`
  /// Which exec.run() invocation of a multi-run workload this simulator
  /// instance is (workloads like euler_tour run several simulations); the
  /// manifest records it so a resumed process re-executes earlier runs
  /// deterministically and resumes only the interrupted one.
  std::size_t run_index = 0;

  [[nodiscard]] bool enabled() const { return !dir.empty(); }
};

/// Thrown when a run stops at a superstep boundary because the caller's
/// cancel flag was set (SIGINT/SIGTERM graceful shutdown).  If
/// checkpointing is enabled a final checkpoint was published first, so the
/// run is resumable from where it stopped.
class CanceledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct SimConfig {
  bsp::MachineParams machine;  ///< target machine (p, BSP* params, EM params)
  std::size_t mu = 0;          ///< declared max serialized context bytes
  std::size_t gamma = 0;       ///< declared max comm bytes per vproc/superstep
  std::size_t k = 0;           ///< group size; 0 = auto floor(M / context slot)
  RoutingMode routing = RoutingMode::compact;

  /// Self-tuning layout (CLI --auto-tune): LayoutPlanner::apply_auto_tune
  /// overrides k, routing mode, coalescing and (when pipelining) the
  /// compute-pool width at construction, and the sequential simulator
  /// re-plans the compute width at superstep boundaries from the engine's
  /// stall/busy deltas.  Results never depend on any tuned knob — only
  /// wall clock does.  The chosen plan is exported as sim.layout.* gauges.
  bool auto_tune = false;

  /// Zero-copy message path: pack outbox messages (arena-backed spans)
  /// straight into staged block buffers and deliver fetched messages as
  /// MessageRef views over an arena, skipping the per-message and per-block
  /// bounce copies of the legacy path.  Disk image, costs and fault
  /// schedule are byte-identical either way for a fixed seed; off restores
  /// the copying path (kept for parity tests and as a fallback).
  bool zero_copy = true;

  /// Merge runs of adjacent tracks inside one batched submission into a
  /// single vectored backend transfer per disk (preadv/pwritev).  Purely
  /// physical — model costs and the disk image are unchanged.  Forced off
  /// when fault injection is active: retrying a coalesced run would replay
  /// backend calls for tracks that already succeeded and shift the
  /// deterministic fault schedule.
  bool coalesce_io = true;
  /// How the D per-disk transfers of each parallel I/O are executed:
  /// serial (issuing thread, default), parallel (per-disk worker pool —
  /// overlaps real device I/O on file backends), or uring (per-disk workers
  /// over kernel-native io_uring backends; when no backend factory is
  /// supplied the simulator creates per-drive UringBackend scratch files,
  /// falling back to FileBackend on kernels without io_uring).  Model cost
  /// is identical; results are byte-identical for a fixed seed.
  em::IoEngine io_engine = em::IoEngine::serial;

  /// With io_engine == uring (and no caller-supplied backend factory): open
  /// the scratch files O_DIRECT so transfers bypass the page cache and
  /// benches measure device behavior.  Filesystems that refuse O_DIRECT
  /// (tmpfs) degrade gracefully to buffered I/O.  Ignored by the other
  /// engines (their default backends are in-memory).
  bool direct_io = false;

  /// Directory for the uring engine's per-drive scratch files; empty means
  /// std::filesystem::temp_directory_path().  Point it at a real block
  /// device's filesystem when measuring with direct_io.
  std::string disk_dir;
  std::uint64_t seed = 0x5EEDULL;
  std::size_t max_supersteps = 1'000'000;

  // --- Pipelined execution (see DESIGN.md §"Pipelined execution") ---------

  /// Overlap group I/O with compute: while group g computes, prefetch group
  /// g+1's contexts and message arena and retire group g-1's write-backs
  /// (double-buffered staging, at most 2 groups resident — SimLayout
  /// tightens its bound to 2*k*slot <= M).  RNG draws and disk placement
  /// happen at submission in group order, so for a fixed seed the disk
  /// image, SimResult costs and fault schedule are byte-identical to the
  /// serial schedule.  Off by default (the default path is untouched).
  /// Pair with io_engine = parallel; under the serial engine submission
  /// itself blocks and pipelining buys nothing.  Composes with the
  /// distributed simulator: each DistSimulator rank runs the same
  /// double-buffered schedule against its private disks and additionally
  /// drives Transport::progress() from the fetch/compute/scatter phases,
  /// overlapping wire traffic with compute and disk I/O (byte-identical
  /// results either way — see dist_simulator.hpp).
  bool pipeline = false;

  /// Compute-phase width when pipelining: total concurrent superstep()
  /// calls per group, including the coordinating thread (1 = compute stays
  /// on the coordinator).  Cost aggregation is reduced in virtual-processor
  /// order, so results do not depend on this value.  Requires superstep()
  /// implementations without shared mutable state across virtual
  /// processors (true for Program implementations by construction).
  std::size_t compute_threads = 1;

  // --- Resilience (see DESIGN.md §"Failure model & recovery") -------------

  /// Deterministic fault injection over every disk backend.  Disabled by
  /// default (all rates zero): the fault-free path is byte-for-byte the
  /// PR-1 substrate.  The schedule folds `faults.seed` with `seed` and the
  /// disk index, so a fixed config reproduces the exact same faults under
  /// either I/O engine.
  em::FaultSpec faults;

  /// Retry/backoff for per-disk transfers that raise retryable IoErrors.
  em::RetryPolicy retry;

  /// Keep + verify a 64-bit checksum per written track (detects silent
  /// bit-rot; adds no I/O and leaves the disk image unchanged).
  bool block_checksums = false;

  /// Superstep-granular recovery (sequential simulator): journal context
  /// writes (2x context disk space) and, when a transfer exhausts its retry
  /// budget, roll back to the enclosing superstep boundary and re-execute.
  /// Off by default so default-config layouts match PR 1 exactly.
  bool superstep_recovery = false;

  /// Re-execution budget per recovery unit (superstep body / reorganize);
  /// exceeded => the original IoError propagates to the caller.
  std::size_t max_superstep_retries = 2;

  /// Durable checkpoint/restart; disabled unless checkpoint.dir is set.
  CheckpointConfig checkpoint;

  /// Cooperative cancellation: when non-null and set, the run stops at the
  /// next superstep boundary — after quiescing in-flight tokens and (if
  /// checkpointing is enabled) publishing a final checkpoint — by throwing
  /// CanceledError.  Set from a signal handler for graceful shutdown.
  const std::atomic<bool>* cancel = nullptr;

  // --- Observability (see DESIGN.md §"Observability") ---------------------

  /// Metrics/trace sink shared by the run: phase spans, engine histograms
  /// and routing/recovery counters are recorded here.  Null (the default)
  /// disables all instrumentation — the null-sink fast path makes spans
  /// free and keeps default-config runs byte-identical.  The recorder must
  /// outlive the run; it is borrowed, never owned.
  obs::Recorder* recorder = nullptr;
};

/// Resilience events observed during one run (all zero on a fault-free
/// run with default config).
struct RecoveryStats {
  std::uint64_t io_retries = 0;   ///< per-disk transfer attempts repeated
  std::uint64_t io_giveups = 0;   ///< transfers that exhausted the budget
  std::uint64_t superstep_rollbacks = 0;   ///< superstep bodies re-executed
  std::uint64_t reorganize_rollbacks = 0;  ///< reorganizations re-executed
  std::uint64_t checkpoints = 0;  ///< checkpoint epochs published this run
  /// Superstep boundary the run resumed from (0 when it started fresh).
  std::uint64_t resume_epoch = 0;
  em::FaultCounts faults;         ///< injected-fault tally

  [[nodiscard]] std::uint64_t total_rollbacks() const {
    return superstep_rollbacks + reorganize_rollbacks;
  }
};

/// Per-phase I/O breakdown of one simulation run (maps onto the phases of
/// Algorithm 1: fetch = steps 1(a)+1(b), write = steps 1(d)+1(e),
/// reorganize = step 2).
struct PhaseIo {
  em::IoStats init;        ///< writing the initial contexts
  em::IoStats fetch_ctx;   ///< step 1(a)
  em::IoStats fetch_msg;   ///< step 1(b)
  em::IoStats write_msg;   ///< step 1(d)
  em::IoStats write_ctx;   ///< step 1(e)
  em::IoStats reorganize;  ///< step 2 (SimulateRouting)
  em::IoStats collect;     ///< reading final contexts out
};

struct SimResult {
  bsp::RunCosts costs;        ///< per-superstep BSP-level cost records
  em::IoStats total_io;       ///< all parallel I/O (max over processors in
                              ///< the parallel simulator)
  std::vector<em::IoStats> per_proc_io;  ///< one entry per real processor
  /// Per-superstep I/O deltas (sequential simulator only; used by the CSV
  /// trace writer in sim/trace.hpp).
  std::vector<em::IoStats> per_superstep_io;
  PhaseIo phase_io;           ///< phase breakdown (processor 0 in parallel)
  RoutingStats routing_stats; ///< accumulated SimulateRouting statistics
  std::size_t group_size = 0; ///< k actually used
  std::uint64_t max_tracks_per_disk = 0;  ///< disk space (Lemma 1 bound)
  /// Real-processor communication per superstep (parallel simulator only):
  /// max bytes sent/received by one real processor.
  std::uint64_t real_comm_bytes = 0;
  /// Retries, rollbacks and injected faults observed during the run.
  RecoveryStats recovery;
  /// Fraction of the busiest disk's service time hidden from the issuing
  /// thread: 1 - stall_ns / max_busy_ns, clamped to [0, 1].  ~0 for the
  /// serial engine (every transfer stalls the issuer); approaches 1 when
  /// pipelining keeps the disks busy behind compute.  Wall-clock derived —
  /// excluded from determinism guarantees.
  double overlap_ratio = 0.0;

  [[nodiscard]] std::size_t lambda() const { return costs.num_supersteps(); }
  [[nodiscard]] double io_time(double cost_g) const {
    return total_io.io_time(cost_g);
  }
};

}  // namespace embsp::sim
