// Message block format and routing statistics.
//
// §5.1, step 1(d): "The coarse-grained nature of the BSP* algorithm results
// in large messages ... We cut the messages into blocks of size B.  Each
// block inherits the destination address from its original message."
//
// Because the randomized placement (and the parallel simulator's random
// scattering) delivers blocks in arbitrary order, each block is
// self-describing:
//
//   block  := [u32 dst_group][u16 n_chunks][u16 pad] chunk*   (zero filled)
//   chunk  := [u32 src][u32 dst][u32 seq][u32 total_len][u32 offset]
//             [u16 chunk_len] bytes[chunk_len]
//
// A message may be split across blocks; chunks carry (offset, total_len) so
// the receiver can reassemble in any arrival order.  Dummy blocks (used by
// RoutingMode::padded to realize the paper's "introduce dummy blocks"
// device) carry dst_group == kDummyGroup and are skipped on parse.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "bsp/message.hpp"

namespace embsp::sim {

/// How SimulateRouting sizes its work and places blocks (see DESIGN.md):
///  * padded  — every destination group is padded with dummy blocks to its
///              capacity, exactly the paper's analysis device; every
///              superstep performs the worst-case (fixed) number of I/Os.
///  * compact — exact per-group block counts (kept in memory) are used; no
///              dummy traffic.  An engineering optimization ablated in
///              bench/fig2_routing.
///  * deterministic — like compact, but blocks are placed round-robin per
///              bucket instead of by random permutation: the paper's §4
///              remark that "for communication of predetermined size, such
///              as occurs in a CGM, our simulation result can be made
///              deterministic".  Per-bucket balance is exact by
///              construction; a write cycle whose blocks collide on a disk
///              splits into several parallel I/Os.
///  * automatic — compact placement, but when every destination group's
///              buckets provably fit in the simulator's staging budget the
///              MessageStore keeps staged blocks in memory and skips
///              Algorithm 2's two-pass reorganization entirely.  The
///              reorganization exists only because buckets exceed M
///              (Fig. 2); when they don't, delivery is a zero-I/O handoff.
///              Falls back to compact behavior when the budget is too
///              small, so it is always safe to request.
enum class RoutingMode { padded, compact, deterministic, automatic };

inline constexpr std::uint32_t kDummyGroup = 0xFFFFFFFFu;

struct BlockHeader {
  std::uint32_t dst_group = 0;
  std::uint16_t n_chunks = 0;
};

inline constexpr std::size_t kBlockHeaderBytes = 8;
inline constexpr std::size_t kChunkHeaderBytes = 22;

/// Minimum supported block size: header + one chunk header + some payload.
inline constexpr std::size_t kMinBlockSize =
    kBlockHeaderBytes + kChunkHeaderBytes + 2;

/// Packs messages into size-B blocks, all addressed to one destination
/// group.  Returns the number of blocks produced via `emit` (each call gets
/// a span of exactly `block_size` bytes, valid until the next call).
std::size_t pack_blocks(
    std::span<const bsp::Message* const> messages, std::uint32_t dst_group,
    std::size_t block_size,
    const std::function<void(std::span<const std::byte>)>& emit);

/// Zero-copy overload: packs MessageRef views (arena-backed payloads)
/// through the identical algorithm, so both overloads produce bit-identical
/// blocks for the same message sequence.
std::size_t pack_blocks(
    std::span<const bsp::MessageRef> messages, std::uint32_t dst_group,
    std::size_t block_size,
    const std::function<void(std::span<const std::byte>)>& emit);

/// Alloc-style packing that writes blocks in place (no bounce buffer).
/// Each call to `alloc` must return a writable span of exactly `block_size`
/// bytes; the previously returned span is fully written — header, chunks,
/// zero padding — before the next call, so the callback may ship or enqueue
/// it.  Returns the number of blocks produced (== number of alloc calls).
std::size_t pack_blocks_into(
    std::span<const bsp::MessageRef> messages, std::uint32_t dst_group,
    std::size_t block_size,
    const std::function<std::span<std::byte>()>& alloc);

/// Builds one dummy block (for padding) in `out` (resized to block_size).
void make_dummy_block(std::uint32_t dst_group, std::size_t block_size,
                      std::vector<std::byte>& out);

[[nodiscard]] BlockHeader parse_header(std::span<const std::byte> block);

/// True if the block is a padding block with no message content.
[[nodiscard]] bool is_dummy_block(std::span<const std::byte> block);

/// Walk one block's chunk records without reassembling: `fn` receives each
/// whole record (chunk header + payload, exactly as laid out in the block)
/// plus its destination virtual processor.  The multi-level distributor
/// uses this to re-cut a super-group block into leaf-group blocks by moving
/// records verbatim.  Validates every header field against the block span
/// like Reassembler::absorb (the block came off disk) and throws
/// em::CorruptBlockError on any inconsistency; dummy blocks are skipped.
void for_each_chunk(
    std::span<const std::byte> block,
    const std::function<void(std::span<const std::byte> record,
                             std::uint32_t dst)>& fn);

/// Incremental builder of pack-compatible blocks from whole chunk records
/// (the output side of the multi-level distributor).  append() only accepts
/// records that fit — check fits() first and take() the finished block; a
/// record never spans two output blocks because it is moved verbatim, so a
/// re-cut block parses with the same Reassembler as a packed one.
class BlockBuilder {
 public:
  explicit BlockBuilder(std::size_t block_size);

  /// Whether a whole record of `record_bytes` still fits this block.
  [[nodiscard]] bool fits(std::size_t record_bytes) const;

  /// Append one record (chunk header + payload) verbatim.  Throws
  /// std::invalid_argument if it does not fit or is not a whole record.
  void append(std::span<const std::byte> record);

  [[nodiscard]] bool empty() const { return n_chunks_ == 0; }

  /// Finalize the block into `out` (resized to block_size, zero padded)
  /// addressed to `dst_group`, and reset the builder for the next block.
  void take(std::uint32_t dst_group, std::vector<std::byte>& out);

 private:
  std::size_t block_size_;
  std::vector<std::byte> buf_;  ///< records accumulated after the header
  std::uint16_t n_chunks_ = 0;
};

/// Incremental message reassembly from chunks.
///
/// Blocks come back from disk, so every header field (n_chunks, chunk_len,
/// offset, total_len) is treated as untrusted input: absorb() bounds-checks
/// each chunk against the block span and the message's total length in
/// 64-bit arithmetic and throws em::CorruptBlockError (retryable — a
/// re-read may heal an in-flight flip) on any inconsistency, never reading
/// or writing out of bounds.
class Reassembler {
 public:
  /// `max_message_bytes` caps any single message's claimed total_len; a
  /// block claiming more is rejected as corrupt instead of triggering a
  /// giant allocation.  0 disables the cap.  The simulators pass gamma
  /// (the per-processor message-size bound the BSP* model already
  /// enforces on send).
  ///
  /// When `arena` is non-null the reassembler runs in zero-copy mode:
  /// payload buffers are bump-allocated from the arena and take_refs()
  /// returns span views into it (valid until the arena resets).  take()
  /// remains available for callers that need owning messages.
  explicit Reassembler(std::uint64_t max_message_bytes = 0,
                       util::Arena* arena = nullptr)
      : max_message_bytes_(max_message_bytes), arena_(arena) {}

  /// Parse one block and absorb its chunks.  `expected_group` validates the
  /// block's header (pass kDummyGroup to skip validation).
  void absorb(std::span<const std::byte> block, std::uint32_t expected_group);

  /// All fully reassembled messages; throws if any message is incomplete.
  [[nodiscard]] std::vector<bsp::Message> take();

  /// Zero-copy variant of take(): views into the arena passed at
  /// construction.  Only valid in arena mode.
  [[nodiscard]] std::vector<bsp::MessageRef> take_refs();

  [[nodiscard]] std::size_t pending() const { return partial_.size(); }

 private:
  struct Partial {
    bsp::Message msg;            ///< owning buffer (msg.payload) when
                                 ///< arena_ == nullptr
    std::span<std::byte> buf;    ///< arena buffer when arena_ != nullptr
    std::uint64_t received = 0;
    [[nodiscard]] std::size_t total(bool arena_mode) const {
      return arena_mode ? buf.size() : msg.payload.size();
    }
  };
  // Key is the full (src, dst, seq) triple: seq numbers only order messages
  // with the same (src, dst) pair (bsp::Message), so two messages from one
  // source with equal seq to different virtual processors are distinct and
  // must not share a reassembly slot.
  struct ChunkKey {
    std::uint32_t src;
    std::uint32_t dst;
    std::uint32_t seq;
    bool operator==(const ChunkKey&) const = default;
  };
  struct ChunkKeyHash {
    std::size_t operator()(const ChunkKey& k) const {
      std::uint64_t h = (static_cast<std::uint64_t>(k.src) << 32) ^
                        (static_cast<std::uint64_t>(k.dst) << 16) ^ k.seq;
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
      h *= 0xc4ceb9fe1a85ec53ULL;
      h ^= h >> 33;
      return static_cast<std::size_t>(h);
    }
  };
  std::unordered_map<ChunkKey, Partial, ChunkKeyHash> partial_;
  std::uint64_t max_message_bytes_ = 0;
  util::Arena* arena_ = nullptr;
  Partial* find_or_create(std::uint32_t src, std::uint32_t dst,
                          std::uint32_t seq, std::uint32_t total_len);
  void check_complete(const Partial& p) const;
};

/// Per-invocation statistics of SimulateRouting, used by bench/fig2_routing
/// and the Lemma 2/3 experiments.
struct RoutingStats {
  std::uint64_t blocks_total = 0;      ///< real + dummy blocks routed
  std::uint64_t dummy_blocks = 0;      ///< padding blocks (padded mode)
  std::uint64_t step1_cycles = 0;      ///< parallel read+write pairs, step 1
  std::uint64_t step2_cycles = 0;      ///< parallel read+write pairs, step 2
  std::uint64_t max_chain = 0;         ///< max blocks of one bucket on one
                                       ///< disk (Lemma 2's X_{j,k})
  /// Parallel read+write pairs spent re-cutting super-group blocks into
  /// leaf-group blocks through scratch (multi-level schedules only; the
  /// extra distribution pass a flat schedule does not pay).
  std::uint64_t distribute_cycles = 0;
  RoutingStats& operator+=(const RoutingStats& o) {
    blocks_total += o.blocks_total;
    dummy_blocks += o.dummy_blocks;
    step1_cycles += o.step1_cycles;
    step2_cycles += o.step2_cycles;
    max_chain = std::max(max_chain, o.max_chain);
    distribute_cycles += o.distribute_cycles;
    return *this;
  }
};

}  // namespace embsp::sim
