#include "sim/layout_planner.hpp"

#include <algorithm>
#include <string>
#include <thread>

#include "bsp/params.hpp"

namespace embsp::sim {

namespace {

/// Pieces of the layout arithmetic every planning entry point shares.
struct LayoutCore {
  std::size_t slot = 0;      ///< context slot bytes (mu + header, in blocks)
  std::size_t resident = 1;  ///< context groups resident at once
  std::size_t usable = 1;    ///< packed message payload bytes per block
};

LayoutCore validate_core(const SimConfig& cfg, std::uint32_t local_v) {
  const auto& em = cfg.machine.em;
  if (cfg.mu == 0) {
    throw std::invalid_argument("SimLayout: mu (max context bytes) not set");
  }
  if (cfg.gamma == 0) {
    throw std::invalid_argument(
        "SimLayout: gamma (max comm bytes per processor) not set");
  }
  if (em.B < kMinBlockSize) {
    throw std::invalid_argument("SimLayout: block size B must be at least " +
                                std::to_string(kMinBlockSize) + " bytes");
  }
  if (local_v == 0) {
    throw LayoutError(
        "LayoutPlanner: this processor hosts 0 virtual processors, so the "
        "group size k = min(floor(M/slot), local_v) would underflow to 0; "
        "every real processor needs local_v >= 1");
  }

  LayoutCore core;
  // Context slot: [u32 length] + mu, rounded up to whole blocks.
  const std::size_t slot_blocks = (cfg.mu + 4 + em.B - 1) / em.B;
  core.slot = slot_blocks * em.B;
  // Pipelined execution double-buffers the context staging (groups g and
  // g+1 resident at once), so its memory bound tightens to 2*k*slot <= M.
  core.resident = cfg.pipeline ? 2 : 1;
  // Even k = 1 (one context resident per level) must respect the memory
  // bound; no amount of extra grouping levels can split a single context.
  if (core.slot * core.resident > em.M) {
    throw LayoutError(
        "LayoutPlanner: one context slot is " + std::to_string(core.slot) +
        " bytes (mu = " + std::to_string(cfg.mu) +
        " + header, rounded up to blocks)" +
        (cfg.pipeline ? ", doubled by pipelined double buffering" : "") +
        ", which already exceeds the memory bound M = " +
        std::to_string(em.M) + "; even k = 1 cannot fit");
  }

  const std::size_t payload = em.B - kBlockHeaderBytes;
  core.usable =
      payload > 2 * kChunkHeaderBytes ? payload - 2 * kChunkHeaderBytes : 1;
  return core;
}

/// k = floor(M / mu) at most v (§5.1), with the practical num_groups >= D
/// clamp — exactly the resolution the simulators used inline before the
/// planner existed (see flat()).
std::size_t resolve_k(const SimConfig& cfg, std::uint32_t local_v,
                      const LayoutCore& core) {
  const auto& em = cfg.machine.em;
  std::size_t k = cfg.k != 0
                      ? cfg.k
                      : bsp::default_group_size(em.M / core.resident,
                                                core.slot);
  if (cfg.k == 0 && local_v >= em.D) {
    k = std::min<std::size_t>(k, local_v / em.D);
  }
  k = std::min<std::size_t>(k, local_v);
  k = std::max<std::size_t>(k, 1);
  return k;
}

/// Fill a SimLayout for a resolved group size k (bounds already enforced).
SimLayout make_layout(const SimConfig& cfg, std::uint32_t local_v,
                      const LayoutCore& core, std::size_t k) {
  const auto& em = cfg.machine.em;
  SimLayout layout;
  layout.context_slot_bytes = core.slot;
  layout.k = k;
  layout.num_groups = static_cast<std::uint32_t>((local_v + k - 1) / k);
  // Blocks one group may receive in one superstep: k receivers, each with a
  // gamma budget, packed at >= (payload_capacity - chunk header) bytes per
  // block, plus one underfull tail block per source group.
  layout.group_capacity =
      (static_cast<std::uint64_t>(k) * cfg.gamma + core.usable - 1) /
          core.usable +
      layout.num_groups + 1;
  const std::uint64_t ctx_resident =
      static_cast<std::uint64_t>(core.resident) * k * core.slot;
  layout.routing_mem_budget = em.M > ctx_resident ? em.M - ctx_resident : 0;
  return layout;
}

}  // namespace

SimLayout LayoutPlanner::flat(const SimConfig& cfg, std::uint32_t local_v) {
  const auto& em = cfg.machine.em;
  const LayoutCore core = validate_core(cfg, local_v);
  const std::size_t k = resolve_k(cfg, local_v, core);
  // §5.1: "k = floor(M/mu)" — one group's contexts must fit the memory M
  // the model grants; an explicit cfg.k gets the same bound.  (No slack:
  // the group's message blocks of step 1(b) share the same M, so granting
  // more than M of context would already break the theorem's premise.)
  if (cfg.k != 0 && cfg.k * core.slot * core.resident > em.M) {
    throw LayoutError(
        "SimLayout: requested group size k needs " +
        std::to_string(cfg.k * core.slot * core.resident) +
        " bytes of context memory" +
        (cfg.pipeline ? " (2 groups resident: pipelined double buffering)"
                      : "") +
        " but M = " + std::to_string(em.M) +
        "; use multi-level grouping (LayoutPlanner::plan) to run this k");
  }
  return make_layout(cfg, local_v, core, k);
}

SimLayout SimLayout::compute(const SimConfig& cfg, std::uint32_t local_v) {
  return LayoutPlanner::flat(cfg, local_v);
}

LayoutPlan LayoutPlanner::plan(const SimConfig& cfg, std::uint32_t local_v) {
  const auto& em = cfg.machine.em;
  const LayoutCore core = validate_core(cfg, local_v);
  // Largest leaf group the memory bound admits (>= 1: slot*resident <= M
  // was just checked).
  const std::size_t k_fit =
      std::max<std::size_t>(1, (em.M / core.resident) / core.slot);
  const std::size_t k_req = resolve_k(cfg, local_v, core);

  LayoutPlan plan;
  if (k_req <= k_fit) {
    // Flat schedule feasible — emit exactly what flat() computes.  (plan()
    // clamps the requested k to local_v before the bound check, so it
    // accepts a handful of configs flat() rejects; the layouts agree on
    // every config both accept.)
    plan.leaf = make_layout(cfg, local_v, core, k_req);
    plan.levels.push_back(
        GroupLevel{plan.leaf.k, plan.leaf.num_groups});
    return plan;
  }

  // Two-level schedule: leaf groups sized to fit M, super-groups of
  // `fanout` consecutive leaves carrying the requested granularity.
  // Routing (Algorithm 2) runs at super-group granularity; each
  // super-group is re-cut through scratch into leaf-granular blocks on
  // first fetch, so every level's resident working set respects M.
  const std::size_t k_leaf = std::min<std::size_t>(k_fit, local_v);
  const std::size_t fanout = (k_req + k_leaf - 1) / k_leaf;
  const std::size_t k_super = fanout * k_leaf;

  plan.leaf = make_layout(cfg, local_v, core, k_leaf);
  const std::uint32_t num_leaf = plan.leaf.num_groups;
  const auto num_super =
      static_cast<std::uint32_t>((local_v + k_super - 1) / k_super);
  plan.levels.push_back(GroupLevel{k_leaf, num_leaf});
  plan.levels.push_back(GroupLevel{k_super, num_super});

  // One super-group's receive bound: k_super receivers' gamma budgets
  // packed, plus an underfull tail block per *source* — message staging is
  // flushed per computed leaf group, so there are num_leaf sources.
  plan.super_capacity_blocks =
      (static_cast<std::uint64_t>(k_super) * cfg.gamma + core.usable - 1) /
          core.usable +
      num_leaf + 1;
  // Scratch slab per leaf group for the re-cut blocks.  Re-cutting moves
  // whole chunk records, so a leaf's payload fits in its flat receive
  // bound; the 2x + 1 slack absorbs the packing fragmentation of cutting
  // at super-block boundaries instead of per-destination streams.
  plan.leaf_capacity_blocks =
      2 * ((static_cast<std::uint64_t>(k_leaf) * cfg.gamma + core.usable - 1) /
           core.usable) +
      num_leaf + 2;
  return plan;
}

void LayoutPlanner::apply_auto_tune(SimConfig& cfg) {
  if (!cfg.auto_tune) return;
  // k: back to the planner's own formula (floor(M/slot) with the
  // num_groups >= D clamp) — the k the theorems size everything for.
  cfg.k = 0;
  // Routing: let the store pick per run — in-memory when the post-context
  // budget admits the whole exchange, Algorithm 2's compact scheme
  // otherwise.
  cfg.routing = RoutingMode::automatic;
  // Coalescing is a pure win except under fault injection, where retrying
  // a coalesced run would replay calls for tracks that already succeeded
  // and shift the deterministic fault schedule.
  cfg.coalesce_io = !cfg.faults.enabled();
  // Compute width matters only when the pipeline overlaps compute with
  // I/O; start from the hardware and let GroupTuner trim per superstep.
  if (cfg.pipeline && cfg.compute_threads <= 1) {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 2;
    cfg.compute_threads =
        std::clamp<std::size_t>(hw / 2, std::size_t{2}, std::size_t{8});
  }
}

void LayoutPlanner::export_plan(obs::Registry& reg, const LayoutPlan& plan,
                                const SimConfig& cfg) {
  reg.set_gauge("sim.layout.levels",
                static_cast<double>(plan.levels.size()));
  reg.set_gauge("sim.layout.k", static_cast<double>(plan.leaf.k));
  reg.set_gauge("sim.layout.num_groups",
                static_cast<double>(plan.leaf.num_groups));
  reg.set_gauge("sim.layout.fanout", static_cast<double>(plan.fanout()));
  reg.set_gauge("sim.layout.group_capacity_blocks",
                static_cast<double>(plan.leaf.group_capacity));
  reg.set_gauge("sim.layout.context_slot_bytes",
                static_cast<double>(plan.leaf.context_slot_bytes));
  reg.set_gauge("sim.layout.routing_mem_budget",
                static_cast<double>(plan.leaf.routing_mem_budget));
  reg.set_gauge("sim.layout.auto_tuned", cfg.auto_tune ? 1.0 : 0.0);
  if (plan.hierarchical()) {
    reg.set_gauge("sim.layout.super_k",
                  static_cast<double>(plan.levels[1].k));
    reg.set_gauge("sim.layout.num_super_groups",
                  static_cast<double>(plan.levels[1].num_groups));
    reg.set_gauge("sim.layout.super_capacity_blocks",
                  static_cast<double>(plan.super_capacity_blocks));
    reg.set_gauge("sim.layout.leaf_capacity_blocks",
                  static_cast<double>(plan.leaf_capacity_blocks));
  }
}

std::size_t GroupTuner::recommend(const em::EngineStats& stats,
                                  std::size_t current) {
  const double stall = stats.stall_fraction_since(prev_);
  prev_ = stats;
  std::size_t next = std::clamp(current, min_w_, max_w_);
  // I/O-bound superstep (the issuer spent most of the busiest disk's
  // service time stalled): compute threads are idle ballast — shed one.
  // Compute-bound (almost no stall): the disks are keeping up — widen.
  if (stall > 0.5 && next > min_w_) {
    --next;
  } else if (stall < 0.1 && next < max_w_) {
    ++next;
  }
  if (next != current) ++replans_;
  return next;
}

}  // namespace embsp::sim
