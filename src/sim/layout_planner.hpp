// Layout planning for the EM-BSP* simulators.
//
// One planner computes the group layout all three simulators used to derive
// inline (SeqSimulator / ParSimulator / DistSimulator): the flat SimLayout
// of §5.1 (k = floor(M/slot) grouping, group receive capacity, the staging
// budget left for routing), plus two extensions:
//
//  * Multi-level (recursive) grouping.  A flat schedule needs k·slot ≤ M
//    (2·k·slot ≤ M pipelined).  When an explicitly requested k exceeds that
//    bound, plan() no longer rejects the config: it emits a two-level group
//    tree — super-groups of ⌈k/k_leaf⌉ leaf groups, each leaf sized to fit
//    M — and the MessageStore walks it level by level, routing at
//    super-group granularity (Algorithm 2 unchanged) and re-cutting each
//    super-group through a scratch region into leaf-granular blocks on
//    first fetch.  The level-bound invariant: at every level the resident
//    context working set is k_leaf·slot·resident ≤ M and the routing
//    working sets stay O((D + fanout)·B), like Algorithm 2's O(D·B).
//
//  * Self-tuning (SimConfig::auto_tune).  apply_auto_tune() picks k,
//    routing mode (compact vs in-memory via RoutingMode::automatic),
//    coalescing and the compute-pool width instead of hand-set flags;
//    GroupTuner re-plans the compute width at superstep boundaries only,
//    from the engine's stall/busy deltas, so the call-indexed fault
//    schedule stays aligned within a superstep run.  Results never depend
//    on any tuned knob — only wall clock does.
#pragma once

#include <cstdint>
#include <vector>

#include "em/io_error.hpp"
#include "em/io_stats.hpp"
#include "obs/metrics.hpp"
#include "sim/sim_config.hpp"

namespace embsp::sim {

/// Typed configuration error for layouts the machine cannot host: a single
/// context slot larger than M, zero virtual processors (k would underflow
/// to 0), a flat group request exceeding the memory bound, or a feature
/// combination the multi-level schedule does not support.  Persistent in
/// the em::IoError taxonomy — retrying the same config cannot succeed.
class LayoutError : public em::IoError {
 public:
  explicit LayoutError(const std::string& what)
      : em::IoError(Kind::persistent, what) {}
};

/// Flat layout derived from a SimConfig (shared with the parallel and
/// distributed simulators, which apply it per real processor).
struct SimLayout {
  std::size_t k = 1;                  ///< group size
  std::uint32_t num_groups = 1;       ///< destination groups per processor
  std::uint64_t group_capacity = 1;   ///< blocks a group may receive
  std::size_t context_slot_bytes = 0; ///< mu rounded up to blocks
  /// What M leaves after the resident context groups — the staging budget
  /// offered to RoutingMode::automatic's in-memory fast path.
  std::uint64_t routing_mem_budget = 0;

  /// Computes the flat layout for `local_v` virtual processors on one real
  /// processor.  Throws LayoutError if the config violates the model
  /// (k*slot > M, slot > M, local_v == 0) and std::invalid_argument when
  /// mu/gamma/B are unset or malformed.
  static SimLayout compute(const SimConfig& cfg, std::uint32_t local_v);
};

/// One level of the group tree.  Level 0 is the leaf level (what the
/// context/message working sets are sized by); level 1, when present,
/// groups `k / levels[0].k` consecutive leaf groups into one super-group.
struct GroupLevel {
  std::size_t k = 1;             ///< virtual processors per group
  std::uint32_t num_groups = 1;  ///< groups at this level (per processor)
};

struct LayoutPlan {
  /// Leaf-level layout — identical to SimLayout::compute whenever a flat
  /// schedule is feasible (the parity contract the simulators rely on).
  SimLayout leaf;
  std::vector<GroupLevel> levels;  ///< [0] = leaf; size() == 1 means flat
  /// Hierarchical plans only: blocks one super-group may receive per
  /// superstep (what the MessageStore's level-1 routing is sized by) ...
  std::uint64_t super_capacity_blocks = 0;
  /// ... and the per-leaf slab capacity of the distribution scratch region
  /// (level 2; conservative — chunk-granular re-packing fragments).
  std::uint64_t leaf_capacity_blocks = 0;

  [[nodiscard]] bool hierarchical() const { return levels.size() > 1; }
  /// Leaf groups per super-group (1 for flat plans).
  [[nodiscard]] std::uint32_t fanout() const {
    return hierarchical()
               ? static_cast<std::uint32_t>(levels[1].k / levels[0].k)
               : 1u;
  }
};

class LayoutPlanner {
 public:
  /// The extracted flat computation (exactly what the three simulators
  /// computed inline before the planner existed).
  static SimLayout flat(const SimConfig& cfg, std::uint32_t local_v);

  /// Group-tree planning: a flat single-level plan whenever the requested
  /// (or auto-picked) k fits the memory bound, otherwise a two-level plan
  /// whose leaf size is the largest that fits.  Never rejects a config a
  /// flat schedule accepts; rejects only what no level count can fix
  /// (slot > M, local_v == 0).
  static LayoutPlan plan(const SimConfig& cfg, std::uint32_t local_v);

  /// Static half of SimConfig::auto_tune, applied once at simulator
  /// construction (before the disk arrays are built): k goes back to the
  /// planner's formula, routing to RoutingMode::automatic (in-memory when
  /// the budget admits it, compact otherwise), coalescing on unless fault
  /// injection would make retries shift the call schedule, and — when
  /// pipelining — a hardware-sized compute-pool width.  No-op unless
  /// cfg.auto_tune is set.
  static void apply_auto_tune(SimConfig& cfg);

  /// Export the chosen plan as `sim.layout.*` gauges.
  static void export_plan(obs::Registry& reg, const LayoutPlan& plan,
                          const SimConfig& cfg);
};

/// Superstep-boundary re-planner for the compute-pool width (the one knob
/// that is safe to change mid-run: the on-disk layout and the per-disk
/// call-indexed fault schedule never depend on it).  recommend() reads the
/// engine's stall/busy deltas since its previous call: an I/O-bound
/// superstep (the issuing thread spent most of the busiest disk's service
/// time stalled) sheds a compute thread; a compute-bound one (almost no
/// stall) adds one.
class GroupTuner {
 public:
  GroupTuner(std::size_t min_width, std::size_t max_width)
      : min_w_(min_width), max_w_(max_width) {}

  [[nodiscard]] std::size_t recommend(const em::EngineStats& stats,
                                      std::size_t current);

  /// Boundaries at which the recommendation changed the width.
  [[nodiscard]] std::uint64_t replans() const { return replans_; }

 private:
  std::size_t min_w_;
  std::size_t max_w_;
  em::EngineStats prev_;  ///< baseline for stall_fraction_since deltas
  std::uint64_t replans_ = 0;
};

}  // namespace embsp::sim
