// Superstep-level cost traces.
//
// Every executor produces a RunCosts with one record per superstep; the
// sequential simulator additionally tracks per-superstep parallel-I/O
// counts.  write_cost_csv renders them as CSV for plotting — the raw data
// behind the EXPERIMENTS.md tables.
#pragma once

#include <ostream>

#include "sim/sim_config.hpp"

namespace embsp::sim {

/// One CSV row per superstep: index, work (max/total), bytes and packets
/// (max per processor), messages, and — when per-superstep I/O counts are
/// available (sequential simulator) — parallel I/Os and blocks moved.
void write_cost_csv(std::ostream& out, const bsp::RunCosts& costs,
                    const std::vector<em::IoStats>* per_superstep_io =
                        nullptr);

/// Convenience: the trace of a whole simulation result.
void write_cost_csv(std::ostream& out, const SimResult& result);

}  // namespace embsp::sim
