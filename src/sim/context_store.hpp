// On-disk storage of virtual processor contexts (Algorithm 1, steps 1(a)
// and 1(e)).
//
//   "We reserve an area of total size v*mu on the disks, v*mu/DB blocks on
//    each disk, where we store the contexts.  We split the context V_j of
//    virtual processor j into blocks of size B and store the i-th block of
//    V_j on disk (i + j*(mu/B)) mod D using track floor((i + j*(mu/B))/D)."
//
// We realize the same idea with a per-context rotation: context j's i-th
// block lives on disk (j + i) mod D inside context j's private track band,
// so reading/writing a group of consecutive contexts drives all D disks in
// parallel even when only each context's *used* blocks are transferred.
//
// Each context slot stores [u32 length][serialized bytes][zero padding].
//
// As an engineering optimization the store keeps each context's current
// length in memory (O(v) words — the same class of metadata as the linked
// buckets' pointer tables) and transfers only the blocks a context
// actually occupies.  The layout (and hence full disk parallelism) is
// unchanged; supersteps in which contexts are small cost proportionally
// less I/O.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "em/striped_region.hpp"
#include "util/serialization.hpp"

namespace embsp::sim {

class ContextStore {
 public:
  /// `max_context_bytes` is the paper's mu (serialized size bound).
  ///
  /// With `journaled`, the store keeps TWO banks per context and writes
  /// always go to the non-live bank; commit_epoch() flips the live bank of
  /// every context written since the last commit, discard_epoch() abandons
  /// them.  Until a context's epoch commits, reads still return its
  /// previous committed payload — this is what makes the context area a
  /// consistent checkpoint at superstep boundaries (§5.1) even when a write
  /// attempt dies mid-superstep.  Costs 2x context disk space; layout and
  /// I/O counts are otherwise unchanged.
  ContextStore(em::DiskArray& disks, em::TrackAllocators& alloc,
               std::uint32_t num_contexts, std::size_t max_context_bytes,
               bool journaled = false);

  /// Blocks per context after padding (mu/B, rounded up, incl. the length
  /// prefix).
  [[nodiscard]] std::uint64_t blocks_per_context() const { return blocks_; }
  [[nodiscard]] std::size_t slot_bytes() const {
    return static_cast<std::size_t>(blocks_) * block_size_;
  }

  /// Physical placement of context `ctx`'s block `block` (for tests).
  [[nodiscard]] std::pair<std::uint32_t, std::uint64_t> location(
      std::uint32_t ctx, std::uint64_t block) const;

  /// Serializes the context of processor `ctx` into the Writer, which
  /// appends directly to the block-aligned staging buffer (no intermediate
  /// per-context vector).
  using EmitFn = std::function<void(std::uint32_t ctx, util::Writer& w)>;

  /// One in-flight read or write of a contiguous context range: the staged
  /// bytes, per-context offsets into them, and the completion tokens of the
  /// submitted parallel I/Os.  Owned by the caller so the pipelined
  /// simulator can double-buffer; reused across supersteps (grow-only
  /// buffer).
  struct PendingIo {
    std::vector<em::DiskArray::IoToken> tokens;
    std::vector<std::byte> buf;
    std::vector<std::size_t> ctx_offset;
    std::vector<std::uint32_t> expected_len;  ///< read: length at submission
    std::uint32_t first = 0;
    std::uint32_t count = 0;
    bool active = false;
  };

  /// Write contexts [first, first+count); `payloads[i]` is the serialized
  /// context of processor first+i and must fit in mu bytes.
  void write(std::uint32_t first,
             std::span<const std::vector<std::byte>> payloads);

  /// Write contexts [first, first+count), serializing each directly into
  /// the staging buffer via `emit` (blocking; same I/O schedule as the
  /// span overload).
  void write(std::uint32_t first, std::uint32_t count, const EmitFn& emit);

  /// Read contexts [first, first+count); returns one byte vector per
  /// context (exactly the bytes previously written).
  [[nodiscard]] std::vector<std::vector<std::byte>> read(std::uint32_t first,
                                                         std::uint32_t count);

  /// Reusable-buffer variant of read(): fills `out[i]` with the payload of
  /// context first+i, recycling the vectors' capacity.
  void read_into(std::uint32_t first, std::uint32_t count,
                 std::vector<std::vector<std::byte>>& out);

  // --- Asynchronous paths (pipelined simulator) ----------------------------
  //
  // Submission stages the data and starts every parallel I/O of the range
  // (same op batching as the blocking calls — one block per disk per
  // operation, so model cost is identical); the matching wait settles the
  // tokens in submission order.  `io.buf` must stay untouched between
  // submit and wait.  Metadata (lengths, journal dirty bits) is updated at
  // submission, exactly when the blocking calls update it.

  void read_submit(std::uint32_t first, std::uint32_t count, PendingIo& io);
  void read_wait(PendingIo& io, std::vector<std::vector<std::byte>>& out);
  void write_submit(std::uint32_t first, std::uint32_t count,
                    const EmitFn& emit, PendingIo& io);
  void write_wait(PendingIo& io);

  [[nodiscard]] std::uint32_t num_contexts() const { return num_contexts_; }
  [[nodiscard]] bool journaled() const { return journaled_; }

  /// Journaled mode only: make every write since the last commit/discard
  /// the live version (flip banks).  In-memory metadata flips only —
  /// no I/O.
  void commit_epoch();

  /// Journaled mode only: abandon every uncommitted write; subsequent reads
  /// keep returning the last committed payloads.
  void discard_epoch();

  /// Epoch tag of the committed state: commit_epoch() increments it,
  /// discard_epoch() leaves it — after a rollback the store still holds
  /// (and names) the last committed superstep boundary.  The parallel
  /// simulator's coordinated recovery and the checkpoint manifest both key
  /// on this tag.  0 until the first commit; counts in non-journaled mode
  /// too (commit is then a pure tag bump).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  void set_epoch(std::uint64_t e) { epoch_ = e; }

  // --- Checkpoint capture/restore (off-model; see sim/checkpoint.hpp) -----
  //
  // Both paths go through Disk::peek_track/restore_track with the
  // fault-unwrapped backend: no model IoStats, no Disk read/write counters,
  // no fault-schedule draws — checkpointing must not perturb the run it
  // snapshots.

  /// Append context `ctx`'s committed record — live-bank tag, length, and
  /// payload bytes read back from the committed bank — to `w`.
  void export_context(std::uint32_t ctx, util::Writer& w);

  /// Restore one context record produced by export_context into this
  /// (freshly constructed, same-shape) store: rewrites the slot's blocks in
  /// the recorded bank and reinstates the length/bank metadata, so every
  /// subsequent location() and write target matches the checkpointed run's.
  void restore_context(std::uint32_t ctx, util::Reader& r);

 private:
  [[nodiscard]] std::uint64_t blocks_for(std::size_t bytes) const {
    return (bytes + sizeof(std::uint32_t) + block_size_ - 1) / block_size_;
  }

  /// Placement of context `ctx`'s block `block` in bank `bank`.
  [[nodiscard]] std::pair<std::uint32_t, std::uint64_t> location_in_bank(
      std::uint32_t ctx, std::uint64_t block, std::uint8_t bank) const;

  em::DiskArray* disks_;
  std::uint32_t num_contexts_;
  std::size_t max_context_bytes_;
  std::size_t block_size_;
  std::uint64_t blocks_;
  std::uint64_t band_;  ///< tracks per context per disk
  bool journaled_;
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> start_tracks_;
  std::vector<std::uint32_t> lengths_;  ///< committed length per context
  std::vector<std::uint8_t> bank_;      ///< live bank (journaled mode)
  std::vector<std::uint8_t> dirty_;     ///< written this epoch
  std::vector<std::uint32_t> pending_lengths_;  ///< uncommitted lengths
  PendingIo sync_io_;  ///< staging slot of the blocking read/write calls
};

}  // namespace embsp::sim
