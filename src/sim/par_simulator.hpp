// Algorithm 3 — ParCompoundSuperstep: simulation of a v-processor BSP* on a
// p-processor EM-BSP* machine (§5.2).
//
// Real processor i (one thread, owning a private D-disk array) simulates
// virtual processors [i*v/p, (i+1)*v/p).  A compound superstep runs in
// v/(p*k) rounds; in round j processor i simulates its j-th group of k
// virtual processors.  Batch j is the set of messages destined to the
// virtual processors simulated in round j (across all real processors).
//
//   1(a) Fetching: each processor reads its locally stored blocks of batch
//        j from its disks and forwards each block to the real processor
//        that simulates the block's destination.
//   1(b) Computing: the k virtual supersteps run in memory.
//   1(c) Writing: generated messages are packed into size-B blocks (the
//        packet granularity; the model requires b >= B) and each block is
//        sent to a *uniformly random* real processor — the two-phase
//        randomized routing that balances communication (Lemma 10); the
//        receiver writes it to its local buckets with random disk
//        placement.
//   (2)  Each processor reorganizes its received blocks with
//        SimulateRouting so every batch lies in standard consecutive
//        format on its local disks.
//
// Inter-processor "communication" is mailbox passing between threads; its
// volume is metered per superstep (h-relation accounting), which is the
// quantity Theorem 1 bounds.
#pragma once

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "bsp/direct_runtime.hpp"
#include "bsp/program.hpp"
#include "em/disk_array.hpp"
#include "sim/checkpoint.hpp"
#include "sim/context_store.hpp"
#include "sim/message_store.hpp"
#include "sim/obs_hooks.hpp"
#include "sim/seq_simulator.hpp"
#include "sim/sim_config.hpp"
#include "util/thread_pool.hpp"

namespace embsp::sim {

class ParSimulator {
 public:
  explicit ParSimulator(
      SimConfig cfg,
      std::function<std::unique_ptr<em::Backend>(std::size_t)> backend =
          nullptr);

  template <bsp::Program P>
  SimResult run(
      const P& prog,
      const std::function<typename P::State(std::uint32_t)>& make_state,
      const std::function<void(std::uint32_t, typename P::State&)>& collect);

  [[nodiscard]] const em::DiskArray& disks(std::size_t i) const {
    return *disk_arrays_[i];
  }
  [[nodiscard]] const SimConfig& config() const { return cfg_; }

 private:
  SimConfig cfg_;
  std::vector<std::unique_ptr<em::DiskArray>> disk_arrays_;
  /// Shared tally of injected faults (null when injection is disabled).
  std::shared_ptr<em::FaultCounters> fault_counters_;
};

// ---------------------------------------------------------------------------
// implementation
// ---------------------------------------------------------------------------

template <bsp::Program P>
SimResult ParSimulator::run(
    const P& prog,
    const std::function<typename P::State(std::uint32_t)>& make_state,
    const std::function<void(std::uint32_t, typename P::State&)>& collect) {
  using State = typename P::State;
  cfg_.machine.validate();
  const std::uint32_t p = cfg_.machine.p;
  const std::uint32_t v = cfg_.machine.bsp.v;
  const std::uint32_t local_v = v / p;

  // The parallel simulator consumes the plan at leaf granularity: its
  // forwarding step inspects every block's owner per round, which already
  // makes rounds leaf-sized — the legality win of a hierarchical plan —
  // while routing stays per leaf batch (super-packed blocks would mix
  // batches across owners).  The leaf equals the old flat SimLayout
  // whenever a flat schedule is feasible.
  SimLayout layout = LayoutPlanner::plan(cfg_, local_v).leaf;
  // Extra receive capacity per batch: random scattering is balanced only in
  // expectation, and per-(source, destination-owner) tail blocks add
  // fragmentation.  Overflow is detected at runtime with a clear error.
  layout.group_capacity = layout.group_capacity * 2 + 4 * p + 4;
  const auto k = static_cast<std::uint32_t>(layout.k);
  const std::uint32_t rounds = layout.num_groups;

  struct Proc {
    std::unique_ptr<em::TrackAllocators> alloc;
    std::unique_ptr<ContextStore> contexts;
    std::unique_ptr<MessageStore> messages;
    util::Rng rng{0};
    std::uint64_t rr_scatter = 0;  ///< deterministic-mode scatter cursor
    PhaseIo phase_io;
    RoutingStats routing;
    std::uint64_t comm_bytes_this_step = 0;
    std::uint64_t max_comm_bytes_step = 0;
    std::uint64_t outbox_copied = 0;  ///< take() traffic (legacy path only)
    std::uint64_t arena_peak = 0;     ///< peak arena residency
    bool want_continue = false;
  };
  std::vector<Proc> procs(p);
  {
    util::Rng master(cfg_.seed);
    for (std::uint32_t i = 0; i < p; ++i) {
      procs[i].alloc =
          std::make_unique<em::TrackAllocators>(disk_arrays_[i]->num_disks());
      procs[i].contexts = std::make_unique<ContextStore>(
          *disk_arrays_[i], *procs[i].alloc, local_v, cfg_.mu,
          /*journaled=*/cfg_.superstep_recovery);
      MessageStoreConfig mcfg;
      mcfg.num_groups = rounds;
      mcfg.group_capacity_blocks = layout.group_capacity;
      mcfg.mode = cfg_.routing;
      mcfg.max_message_bytes = cfg_.gamma;
      mcfg.memory_budget_bytes = layout.routing_mem_budget;
      procs[i].messages = std::make_unique<MessageStore>(
          *disk_arrays_[i], *procs[i].alloc, mcfg);
      procs[i].rng = master.fork(i + 1);
    }
  }

  // Mailboxes: cell (src, dst) is written only by thread src between two
  // barriers and read only by thread dst after the barrier.
  using BlockVec = std::vector<std::vector<std::byte>>;
  std::vector<std::vector<BlockVec>> forward_mail(p, std::vector<BlockVec>(p));
  std::vector<std::vector<BlockVec>> scatter_mail(p, std::vector<BlockVec>(p));

  std::barrier<> bar(static_cast<std::ptrdiff_t>(p));
  std::mutex cost_mutex;
  bsp::SuperstepCost step_cost;
  std::vector<std::uint8_t> continue_flags(p, 0);
  std::atomic<bool> failed{false};
  std::vector<std::exception_ptr> errors(p);
  SimResult result;
  result.group_size = layout.k;
  std::vector<State> final_states(v);

  // --- Coordinated recovery state (cfg_.superstep_recovery) ---------------
  // A worker that exhausts its retry budget (or fails a checksum) no longer
  // aborts the run: it raises `step_failed`, fast-forwards the remaining
  // barrier arrivals of the current recovery unit, and at the unit's
  // verdict barrier *all* processors roll back to the last committed epoch
  // and re-execute, bounded by cfg_.max_superstep_retries.  The barrier is
  // the commit point: context epochs commit only on a unanimous verdict.
  const bool coordinated = cfg_.superstep_recovery;
  std::atomic<bool> step_failed{false};
  std::atomic<std::uint64_t> superstep_rollbacks{0};
  std::atomic<std::uint64_t> reorganize_rollbacks{0};

  // --- Durable checkpoint/restart (see sim/checkpoint.hpp) ----------------
  const std::uint64_t config_fp = config_fingerprint(cfg_);
  std::optional<CheckpointDir> ckpt;
  bool ckpt_write = false;
  std::optional<CheckpointDir::Loaded> loaded;
  if (cfg_.checkpoint.enabled()) {
    ckpt.emplace(cfg_.checkpoint.dir);
    ckpt_write = true;
    if (cfg_.checkpoint.resume) {
      const auto m = ckpt->manifest();
      if (m.has_value() && m->run_index > cfg_.checkpoint.run_index) {
        ckpt_write = false;  // this run finished before the crash
      } else {
        loaded = ckpt->load(cfg_.checkpoint.run_index, config_fp);
      }
    }
  }
  const bool ckpt_active = ckpt.has_value() && ckpt_write;
  std::atomic<std::uint64_t> checkpoints_published{0};
  // Per-processor capture staging: each worker serializes its own record
  // (its disks are its own), proc 0 concatenates and publishes.
  std::vector<std::vector<std::byte>> ckpt_records(p);
  bool cancel_seen = false;  ///< written by proc 0 between two barriers
  std::size_t start_step = 0;
  std::uint64_t base_io_retries = 0;
  std::uint64_t base_io_giveups = 0;
  em::FaultCounts base_faults;
  if (loaded.has_value()) {
    // Resume on the main thread, before the workers exist: reinstate the
    // global bookkeeping and every processor's substrate record.
    util::Reader r(loaded->payload);
    start_step = static_cast<std::size_t>(r.read<std::uint64_t>());
    result.costs.supersteps = r.read_vector<bsp::SuperstepCost>();
    superstep_rollbacks.store(r.read<std::uint64_t>());
    reorganize_rollbacks.store(r.read<std::uint64_t>());
    base_io_retries = r.read<std::uint64_t>();
    base_io_giveups = r.read<std::uint64_t>();
    base_faults = r.read<em::FaultCounts>();
    if (r.read<std::uint32_t>() != p) {
      throw std::runtime_error("checkpoint: processor count mismatch");
    }
    for (std::uint32_t i = 0; i < p; ++i) {
      const auto rec_bytes = r.read_vector<std::byte>();
      util::Reader pr(rec_bytes);
      procs[i].rr_scatter = pr.read<std::uint64_t>();
      procs[i].max_comm_bytes_step = pr.read<std::uint64_t>();
      procs[i].outbox_copied = pr.read<std::uint64_t>();
      procs[i].arena_peak = pr.read<std::uint64_t>();
      procs[i].phase_io = pr.read<PhaseIo>();
      procs[i].routing = pr.read<RoutingStats>();
      load_proc_state(pr, *disk_arrays_[i], *procs[i].alloc,
                      *procs[i].contexts, *procs[i].messages, procs[i].rng);
      if (!pr.exhausted()) {
        throw std::runtime_error(
            "checkpoint: trailing bytes in processor record");
      }
    }
    if (!r.exhausted()) {
      throw std::runtime_error("checkpoint: trailing bytes in payload");
    }
    result.recovery.resume_epoch = loaded->epoch;
  }
  const bool resumed = loaded.has_value();

  const auto owner_of = [local_v](std::uint32_t vp) { return vp / local_v; };
  // Destination batch of a virtual processor: its round index on its owner.
  const auto batch_of = [local_v, k](std::uint32_t vp) {
    return (vp % local_v) / k;
  };

  // Cooperative abort: a thread that throws records its error, raises
  // `failed`, and drops from the barrier (which still counts as an arrival
  // for the current phase, unblocking peers).  Peers observe `failed` after
  // their next barrier and unwind the same way, so no thread is left
  // waiting on a barrier that can never complete.
  struct Aborted {};

  auto worker = [&](std::uint32_t me) {
    auto sync = [&]() {
      bar.arrive_and_wait();
      if (failed.load()) throw Aborted{};
    };
    // Pipelined double-buffered context staging.  Declared OUTSIDE the try:
    // stack unwinding must not destroy buffers that in-flight transfers
    // still reference — the catch blocks below drain the disk array first.
    ContextStore::PendingIo ctx_read[2];
    ContextStore::PendingIo ctx_write[2];
    // Unregisters kernel fixed buffers on any exit; declared after the
    // slots so it runs before their destruction (the catch blocks have
    // drained by then).
    struct RegGuard {
      em::DiskArray* d = nullptr;
      ~RegGuard() {
        if (d != nullptr) d->register_io_buffers({});
      }
    } reg_guard;
    std::unique_ptr<util::ComputePool> pool;
    try {
      auto& self = procs[me];
      auto& disks = *disk_arrays_[me];
      obs::Recorder* const rec = cfg_.recorder;
      const bool pipelined = cfg_.pipeline;
      if (pipelined) {
        self.messages->enable_write_behind(4);
        if (cfg_.compute_threads > 1) {
          pool = std::make_unique<util::ComputePool>(cfg_.compute_threads - 1);
        }
        // Kernel fixed buffers (uring engine): pre-size this worker's
        // double-buffered context staging and register it with its private
        // disk array (see SeqSimulator::run for the contract).
        const std::size_t ctx_bytes = layout.k * layout.context_slot_bytes;
        std::vector<std::span<std::byte>> regions;
        for (int s = 0; s < 2; ++s) {
          ctx_read[s].buf.resize(ctx_bytes);
          ctx_write[s].buf.resize(ctx_bytes);
          regions.push_back({ctx_read[s].buf.data(), ctx_read[s].buf.size()});
          regions.push_back(
              {ctx_write[s].buf.data(), ctx_write[s].buf.size()});
        }
        if (disks.register_io_buffers(regions) > 0) reg_guard.d = &disks;
      }

      // Settles every in-flight token of this worker's private array and
      // resets the double-buffered staging slots; required before any
      // snapshot restore (a late-landing write would corrupt the restored
      // state) and cheap when nothing is in flight.
      auto worker_quiesce = [&] {
        disks.drain();
        self.messages->abandon_inflight();
        for (int s = 0; s < 2; ++s) {
          ctx_read[s].active = false;
          ctx_read[s].tokens.clear();
          ctx_write[s].active = false;
          ctx_write[s].tokens.clear();
        }
      };

      // Initial contexts (local virtual processors i*local_v .. ).  Skipped
      // on resume: the restored context banks already hold the state of the
      // checkpointed boundary.
      if (!resumed) {
        {
          ObsPhase phase(rec, "init", disks, &self.phase_io.init, me);
          for (std::uint32_t r = 0; r < rounds; ++r) {
            const std::uint32_t first = r * k;
            const std::uint32_t count = std::min(k, local_v - first);
            // Serialize straight into the store's block-aligned staging.
            self.contexts->write(
                first, count, [&](std::uint32_t ctx, util::Writer& w) {
                  make_state(me * local_v + ctx).serialize(w);
                });
          }
        }
        // The initial contexts are the first committed epoch.
        if (self.contexts->journaled()) self.contexts->commit_epoch();
      }
      sync();

      // Buffers reused across rounds and supersteps (no per-round churn).
      std::vector<std::vector<std::byte>> payloads;
      std::vector<std::vector<bsp::Message>> inboxes;
      std::vector<bsp::Message> outgoing;
      std::vector<State> states;
      // Zero-copy path: reassembled payloads live in this arena (reset per
      // round — the previous round's compute has consumed its refs).
      const bool zero_copy = cfg_.zero_copy;
      util::Arena inbox_arena;
      std::vector<std::vector<bsp::MessageRef>> inbox_refs;
      std::vector<bsp::MessageRef> outgoing_refs;
      struct VpStats {
        bool cont = false;
        std::uint64_t work = 0;
        std::uint64_t sent_packets = 0;
        std::uint64_t sent_wire = 0;
        std::uint64_t bytes_sent = 0;
        std::uint64_t num_messages = 0;
        std::uint64_t recv_packets = 0;
        std::uint64_t recv_bytes = 0;
      };
      std::vector<VpStats> vp;
      std::vector<bsp::Outbox> outboxes;
      auto submit_ctx_read = [&](std::uint32_t r) {
        const std::uint32_t rf = r * k;
        const std::uint32_t rc = std::min(k, local_v - rf);
        self.contexts->read_submit(rf, rc, ctx_read[r & 1]);
      };
      // Barrier arrivals inside one superstep body: 3 per round (fetch,
      // scatter, receive).  A worker that fails mid-body fast-forwards the
      // arrivals it has not made yet, so every worker reaches the verdict
      // barrier with the same arrival count and nobody deadlocks.
      const std::size_t body_sync_total = 3 * static_cast<std::size_t>(rounds);
      std::size_t body_syncs = 0;
      auto body_sync = [&] {
        ++body_syncs;
        sync();
      };
      for (std::size_t step = start_step;; ++step) {
        if (step >= cfg_.max_supersteps) {
          throw std::runtime_error("ParSimulator: superstep limit exceeded");
        }

        // One superstep body: all rounds' fetch / compute / write.  Reads
        // touch only committed state (the arena written by the previous
        // reorganize, the committed context bank), so re-execution after a
        // coordinated rollback sees exactly the original inputs.
        auto run_rounds = [&] {
        body_syncs = 0;
        self.want_continue = false;
        self.comm_bytes_this_step = 0;
        if (pipelined) submit_ctx_read(0);

        for (std::uint32_t round = 0; round < rounds; ++round) {
          // --- Fetch: read local blocks of this batch, forward to owners.
          {
            ObsPhase phase(rec, "fetch_msg", disks, &self.phase_io.fetch_msg,
                           me);
            self.messages->fetch_group_blocks(
                round, [&](std::span<const std::byte> block) {
                  if (is_dummy_block(block)) return;
                  // All chunks in a block share one destination virtual
                  // processor group (they were packed per owner) — peek at
                  // the first chunk's dst to find the owner.
                  util::Reader r(block.subspan(kBlockHeaderBytes));
                  r.read<std::uint32_t>();  // src
                  const auto dst = r.read<std::uint32_t>();
                  const auto owner = owner_of(dst);
                  forward_mail[me][owner].emplace_back(block.begin(),
                                                       block.end());
                  if (owner != me) {
                    self.comm_bytes_this_step += block.size();
                  }
                });
          }
          body_sync();

          // --- Compute: reassemble inboxes, run the k virtual supersteps.
          const std::uint32_t first = round * k;
          const std::uint32_t count = std::min(k, local_v - first);
          if (zero_copy) inbox_arena.reset();
          Reassembler reasm(cfg_.gamma,
                            zero_copy ? &inbox_arena : nullptr);
          for (std::uint32_t src = 0; src < p; ++src) {
            for (auto& block : forward_mail[src][me]) {
              reasm.absorb(block, round);
            }
          }
          if (zero_copy) {
            if (inbox_refs.size() < count) inbox_refs.resize(count);
            for (std::uint32_t i = 0; i < count; ++i) inbox_refs[i].clear();
            for (const auto& m : reasm.take_refs()) {
              const std::uint32_t local = m.dst - me * local_v;
              if (owner_of(m.dst) != me || local < first ||
                  local >= first + count) {
                throw std::runtime_error(
                    "ParSimulator: block forwarded to the wrong processor");
              }
              inbox_refs[local - first].push_back(m);
            }
          } else {
            auto incoming = reasm.take();
            if (inboxes.size() < count) inboxes.resize(count);
            for (std::uint32_t i = 0; i < count; ++i) inboxes[i].clear();
            for (auto& m : incoming) {
              const std::uint32_t local = m.dst - me * local_v;
              if (owner_of(m.dst) != me || local < first ||
                  local >= first + count) {
                throw std::runtime_error(
                    "ParSimulator: block forwarded to the wrong processor");
              }
              inboxes[local - first].push_back(std::move(m));
            }
          }

          {
            ObsPhase phase(rec, pipelined ? "prefetch_ctx" : "fetch_ctx",
                           disks, &self.phase_io.fetch_ctx, me);
            if (pipelined) {
              self.contexts->read_wait(ctx_read[round & 1], payloads);
              // Read-ahead: the next round's contexts stream in while this
              // round computes.
              if (round + 1 < rounds) submit_ctx_read(round + 1);
            } else {
              self.contexts->read_into(first, count, payloads);
            }
          }

          states.clear();
          states.resize(count);
          vp.assign(count, VpStats{});
          outboxes.clear();
          for (std::uint32_t i = 0; i < count; ++i) {
            outboxes.emplace_back(me * local_v + first + i, v);
          }
          outgoing.clear();
          outgoing_refs.clear();
          bsp::SuperstepCost local_cost;
          {
            ObsPhase compute_phase(rec, "compute", disks, nullptr, me);
            // Each task touches only index-i data; costs are reduced below
            // in vproc order, so the totals match the sequential loop.
            auto task = [&](std::size_t i) {
              util::Reader r(payloads[i]);
              states[i].deserialize(r);
              bsp::Inbox in = zero_copy
                                  ? bsp::Inbox(std::move(inbox_refs[i]))
                                  : bsp::Inbox(std::move(inboxes[i]));
              bsp::WorkMeter m;
              bsp::ProcEnv env{
                  me * local_v + first + static_cast<std::uint32_t>(i), v, &m};
              VpStats& s = vp[i];
              s.cont = prog.superstep(step, env, states[i], in, outboxes[i]);
              s.work = m.total();
              for (const auto& msg : outboxes[i].messages()) {
                s.sent_packets +=
                    bsp::packets_for(msg.size_bytes(), cfg_.machine.bsp.b);
                s.sent_wire += bsp::wire_bytes(msg.size_bytes());
              }
              s.bytes_sent = outboxes[i].total_bytes();
              s.num_messages = outboxes[i].messages().size();
              for (const auto& msg : in.all()) {
                s.recv_packets +=
                    bsp::packets_for(msg.size_bytes(), cfg_.machine.bsp.b);
                s.recv_bytes += msg.size_bytes();
              }
            };
            if (pool != nullptr) {
              pool->run(count, task);
            } else {
              for (std::uint32_t i = 0; i < count; ++i) task(i);
            }
          }  // end compute span
          for (std::uint32_t i = 0; i < count; ++i) {
            const VpStats& s = vp[i];
            self.want_continue = self.want_continue || s.cont;
            local_cost.max_work = std::max(local_cost.max_work, s.work);
            local_cost.total_work += s.work;
            if (s.sent_wire > cfg_.gamma) {
              throw std::runtime_error(
                  "ParSimulator: processor exceeded the declared gamma");
            }
            local_cost.max_bytes_sent =
                std::max(local_cost.max_bytes_sent, s.bytes_sent);
            local_cost.max_packets_sent =
                std::max(local_cost.max_packets_sent, s.sent_packets);
            local_cost.max_wire_sent =
                std::max(local_cost.max_wire_sent, s.sent_wire);
            local_cost.max_bytes_received =
                std::max(local_cost.max_bytes_received, s.recv_bytes);
            local_cost.max_packets_received =
                std::max(local_cost.max_packets_received, s.recv_packets);
            local_cost.total_bytes += s.bytes_sent;
            local_cost.num_messages += s.num_messages;
            if (zero_copy) {
              // Refs stay valid through the scatter packing below: the
              // outboxes (and their arenas) outlive this round's writing.
              for (const auto& m : outboxes[i].messages()) {
                outgoing_refs.push_back(m);
              }
              self.arena_peak = std::max<std::uint64_t>(
                  self.arena_peak, outboxes[i].arena_high_water());
            } else {
              for (auto& m : outboxes[i].take()) {
                outgoing.push_back(std::move(m));
              }
              self.outbox_copied += outboxes[i].bytes_copied();
            }
          }
          self.arena_peak = std::max<std::uint64_t>(
              self.arena_peak, inbox_arena.high_water());
          {
            std::lock_guard<std::mutex> lock(cost_mutex);
            step_cost.max_work = std::max(step_cost.max_work,
                                          local_cost.max_work);
            step_cost.total_work += local_cost.total_work;
            step_cost.max_bytes_sent =
                std::max(step_cost.max_bytes_sent, local_cost.max_bytes_sent);
            step_cost.max_bytes_received = std::max(
                step_cost.max_bytes_received, local_cost.max_bytes_received);
            step_cost.max_packets_sent = std::max(
                step_cost.max_packets_sent, local_cost.max_packets_sent);
            step_cost.max_packets_received =
                std::max(step_cost.max_packets_received,
                         local_cost.max_packets_received);
            step_cost.total_bytes += local_cost.total_bytes;
            step_cost.num_messages += local_cost.num_messages;
          }

          // Write contexts back.
          {
            ObsPhase phase(rec, pipelined ? "writeback_ctx" : "write_ctx",
                           disks, &self.phase_io.write_ctx, me);
            auto emit = [&](std::uint32_t ctx, util::Writer& w) {
              states[ctx - first].serialize(w);
            };
            if (pipelined) {
              // Retire round r-2's write-backs, then submit round r's; the
              // writes overlap the following rounds' compute.
              self.contexts->write_wait(ctx_write[round & 1]);
              self.contexts->write_submit(first, count, emit,
                                          ctx_write[round & 1]);
            } else {
              self.contexts->write(first, count, emit);
            }
          }

          // --- Writing: pack per (owner, batch) and scatter randomly.
          {
            // Group messages by (owner, batch) pairs; small per round.
            std::vector<std::uint64_t> dest_keys;
            std::vector<std::pair<std::uint64_t, std::size_t>> index;
            const auto slot_of = [&](std::uint32_t dst) {
              const std::uint64_t key =
                  (static_cast<std::uint64_t>(owner_of(dst)) << 32) |
                  batch_of(dst);
              for (const auto& [kk, s] : index) {
                if (kk == key) return s;
              }
              const std::size_t slot = index.size();
              index.emplace_back(key, slot);
              dest_keys.push_back(key);
              return slot;
            };
            // Random intermediate (Lemma 10) — or round robin when the
            // routing is deterministic.
            const auto scatter_block = [&](std::span<const std::byte> block) {
              const auto target = static_cast<std::uint32_t>(
                  cfg_.routing == RoutingMode::deterministic
                      ? (me + self.rr_scatter++) % p
                      : self.rng.below(p));
              scatter_mail[me][target].emplace_back(block.begin(),
                                                    block.end());
              if (target != me) {
                self.comm_bytes_this_step += block.size();
              }
            };
            if (zero_copy) {
              std::vector<std::vector<bsp::MessageRef>> by_dest;
              for (const auto& m : outgoing_refs) {
                const std::size_t slot = slot_of(m.dst);
                if (by_dest.size() <= slot) by_dest.resize(slot + 1);
                by_dest[slot].push_back(m);
              }
              for (std::size_t s = 0; s < by_dest.size(); ++s) {
                const auto batch =
                    static_cast<std::uint32_t>(dest_keys[s] & 0xFFFFFFFFu);
                pack_blocks(std::span<const bsp::MessageRef>(by_dest[s]),
                            batch, disks.block_size(), scatter_block);
              }
            } else {
              std::vector<std::vector<const bsp::Message*>> by_dest;
              for (const auto& m : outgoing) {
                const std::size_t slot = slot_of(m.dst);
                if (by_dest.size() <= slot) by_dest.resize(slot + 1);
                by_dest[slot].push_back(&m);
              }
              for (std::size_t s = 0; s < by_dest.size(); ++s) {
                const auto batch =
                    static_cast<std::uint32_t>(dest_keys[s] & 0xFFFFFFFFu);
                pack_blocks(by_dest[s], batch, disks.block_size(),
                            scatter_block);
              }
            }
          }
          body_sync();

          // --- Receive scattered blocks, write them to local buckets.
          {
            ObsPhase phase(rec, "write_msg", disks, &self.phase_io.write_msg,
                           me);
            for (std::uint32_t src = 0; src < p; ++src) {
              for (auto& block : scatter_mail[src][me]) {
                if (zero_copy) {
                  // Adopt the mailbox buffer instead of copying it.
                  self.messages->write_block(std::move(block), self.rng);
                } else {
                  self.messages->write_block(block, self.rng);
                }
              }
              scatter_mail[src][me].clear();
              forward_mail[src][me].clear();
            }
          }
          body_sync();
        }

        if (pipelined) {
          // Drain the pipeline before reorganizing: the last two rounds'
          // context write-backs and every in-flight message write cycle.
          {
            ObsPhase phase(rec, "writeback_ctx", disks,
                           &self.phase_io.write_ctx, me);
            self.contexts->write_wait(ctx_write[rounds & 1]);
            self.contexts->write_wait(ctx_write[(rounds + 1) & 1]);
          }
          ObsPhase phase(rec, "writeback_msg", disks,
                         &self.phase_io.write_msg, me);
          self.messages->quiesce();
        }
        };  // end run_rounds

        if (!coordinated) {
          run_rounds();
        } else {
          // Coordinated recovery unit: superstep body.  Every worker takes
          // its local snapshots at the (barrier-aligned) unit entry; the
          // verdict barrier after the body is the commit point.
          for (std::size_t attempt = 0;; ++attempt) {
            const util::Rng rng_ckpt = self.rng;
            const std::uint64_t rr_ckpt = self.rr_scatter;
            const auto alloc_ckpt = self.alloc->snapshot();
            const auto msg_ckpt = self.messages->snapshot();
            std::exception_ptr unit_error;
            try {
              run_rounds();
            } catch (const Aborted&) {
              throw;
            } catch (const em::IoError&) {
              // Primary failure: a transfer exhausted its retry budget (or
              // a checksum failed).  Flag the step, quiesce, and make the
              // remaining barrier arrivals of the body without doing work.
              unit_error = std::current_exception();
              step_failed.store(true);
              worker_quiesce();
              for (; body_syncs < body_sync_total; ++body_syncs) sync();
            } catch (...) {
              // Secondary failure: another worker's flagged failure starved
              // this one of mail mid-body (e.g. an incomplete reassembly).
              // Only tolerable when the step is already marked failed.
              if (!step_failed.load()) throw;
              worker_quiesce();
              for (; body_syncs < body_sync_total; ++body_syncs) sync();
            }
            sync();  // verdict barrier — the elected commit point
            if (!step_failed.load()) {
              if (self.contexts->journaled()) self.contexts->commit_epoch();
              break;
            }
            // Unanimous rollback to the last committed epoch: quiesce
            // in-flight tokens, drop this attempt's mail, restore the
            // unit-entry snapshots, abandon uncommitted context writes.
            worker_quiesce();
            for (std::uint32_t j = 0; j < p; ++j) {
              forward_mail[me][j].clear();
              scatter_mail[me][j].clear();
            }
            self.rng = rng_ckpt;
            self.rr_scatter = rr_ckpt;
            self.alloc->restore(alloc_ckpt);
            self.messages->restore(msg_ckpt);
            self.contexts->discard_epoch();
            if (attempt >= cfg_.max_superstep_retries) {
              // Budget exhausted (every worker sees the same attempt count):
              // the primary failer propagates its original error through the
              // cooperative abort path, peers fold quietly.
              if (unit_error != nullptr) std::rethrow_exception(unit_error);
              throw Aborted{};
            }
            sync();
            if (me == 0) {
              step_failed.store(false);
              {
                std::lock_guard<std::mutex> lock(cost_mutex);
                step_cost = bsp::SuperstepCost{};
              }
              superstep_rollbacks.fetch_add(1);
              record_rollback(rec, "superstep", me);
            }
            sync();  // retry starts only after the flags are reset
          }
        }

        // --- Step 2: local SimulateRouting.  Its own recovery unit: it
        // drains the bucket chains destructively and overwrites the arena
        // (this superstep's input), so its rollback snapshot is taken at
        // its entry — after the body committed.
        RoutingStats attempt_routing;
        auto reorganize_once = [&] {
          attempt_routing = RoutingStats{};
          ObsPhase phase(rec, "reorganize", disks, &self.phase_io.reorganize,
                         me);
          self.messages->flush(self.rng);
          attempt_routing += self.messages->reorganize(self.rng);
        };
        if (!coordinated) {
          reorganize_once();
        } else {
          for (std::size_t attempt = 0;; ++attempt) {
            const util::Rng rng_ckpt = self.rng;
            const auto alloc_ckpt = self.alloc->snapshot();
            const auto msg_ckpt = self.messages->snapshot();
            std::exception_ptr unit_error;
            try {
              reorganize_once();
            } catch (const Aborted&) {
              throw;
            } catch (const em::IoError&) {
              unit_error = std::current_exception();
              step_failed.store(true);
              worker_quiesce();
            } catch (...) {
              if (!step_failed.load()) throw;
              worker_quiesce();
            }
            sync();  // verdict barrier
            if (!step_failed.load()) break;
            worker_quiesce();
            self.rng = rng_ckpt;
            self.alloc->restore(alloc_ckpt);
            self.messages->restore(msg_ckpt);
            if (attempt >= cfg_.max_superstep_retries) {
              if (unit_error != nullptr) std::rethrow_exception(unit_error);
              throw Aborted{};
            }
            sync();
            if (me == 0) {
              step_failed.store(false);
              reorganize_rollbacks.fetch_add(1);
              record_rollback(rec, "reorganize", me);
            }
            sync();
          }
        }
        self.routing += attempt_routing;
        self.max_comm_bytes_step =
            std::max(self.max_comm_bytes_step, self.comm_bytes_this_step);
        continue_flags[me] = self.want_continue ? 1 : 0;
        sync();

        bool any = false;
        for (std::uint32_t i = 0; i < p; ++i) any = any || continue_flags[i];
        if (me == 0) {
          {
            std::lock_guard<std::mutex> lock(cost_mutex);
            result.costs.supersteps.push_back(step_cost);
            step_cost = bsp::SuperstepCost{};
          }
          // One worker samples the cancel flag so every worker takes the
          // same branch below (a per-worker read could disagree mid-flip
          // and desynchronize the barrier schedule).
          cancel_seen = cfg_.cancel != nullptr &&
                        cfg_.cancel->load(std::memory_order_relaxed);
        }
        sync();

        // --- Superstep boundary: durability point (§5.1). ---------------
        const bool do_ckpt =
            ckpt_active && any &&
            (cancel_seen || (step + 1) % cfg_.checkpoint.every == 0);
        if (do_ckpt) {
          // Capture is parallel — each worker serializes its own disks into
          // its staging record (off-model: no IoStats, no fault draws) —
          // publication is proc 0's.
          util::Writer w;
          w.write<std::uint64_t>(self.rr_scatter);
          w.write<std::uint64_t>(self.max_comm_bytes_step);
          w.write<std::uint64_t>(self.outbox_copied);
          w.write<std::uint64_t>(self.arena_peak);
          w.write<PhaseIo>(self.phase_io);
          w.write<RoutingStats>(self.routing);
          save_proc_state(w, disks, *self.alloc, *self.contexts,
                          *self.messages, self.rng);
          ckpt_records[me] = w.take();
          sync();
          if (me == 0) {
            const auto t0 = std::chrono::steady_clock::now();
            util::Writer g;
            g.write<std::uint64_t>(step + 1);
            g.write_vector(result.costs.supersteps);
            g.write<std::uint64_t>(superstep_rollbacks.load());
            g.write<std::uint64_t>(reorganize_rollbacks.load());
            std::uint64_t retries = base_io_retries;
            std::uint64_t giveups = base_io_giveups;
            for (std::uint32_t i = 0; i < p; ++i) {
              retries += disk_arrays_[i]->engine_stats().total_retries();
              giveups += disk_arrays_[i]->engine_stats().total_giveups();
            }
            g.write<std::uint64_t>(retries);
            g.write<std::uint64_t>(giveups);
            em::FaultCounts fc = base_faults;
            if (fault_counters_ != nullptr) {
              fc += em::snapshot(*fault_counters_);
            }
            g.write<em::FaultCounts>(fc);
            g.write<std::uint32_t>(p);
            for (std::uint32_t i = 0; i < p; ++i) {
              g.write_vector(ckpt_records[i]);
            }
            const auto payload = g.take();
            ckpt->publish(cfg_.checkpoint.run_index, step + 1, payload,
                          config_fp);
            record_checkpoint(
                rec, checkpoints_published.fetch_add(1) + 1, payload.size(),
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count()));
          }
          sync();
        }
        if (cancel_seen && any) {
          throw CanceledError(
              "ParSimulator: canceled at superstep boundary " +
              std::to_string(step + 1));
        }
        if (!any) break;
      }

      // Collect local results.
      {
        ObsPhase phase(rec, "collect", disks, &self.phase_io.collect, me);
        for (std::uint32_t r = 0; r < rounds; ++r) {
          const std::uint32_t first = r * k;
          const std::uint32_t count = std::min(k, local_v - first);
          self.contexts->read_into(first, count, payloads);
          for (std::uint32_t i = 0; i < count; ++i) {
            util::Reader rd(payloads[i]);
            final_states[me * local_v + first + i].deserialize(rd);
          }
        }
      }
      // Flush barrier for this processor's private disk array (see
      // SeqSimulator::run).
      disks.sync();
    } catch (const Aborted&) {
      // Quiesce unconditionally (not just under cfg_.pipeline): tokens can
      // be in flight whenever the throw unwinds past a submitted-but-not-
      // settled operation, and a drained array is a no-op to drain.  The
      // staging buffers the tokens target live in this frame — unwinding
      // with transfers in flight would be a use-after-free.
      disk_arrays_[me]->drain();
      procs[me].messages->abandon_inflight();
      bar.arrive_and_drop();
    } catch (...) {
      errors[me] = std::current_exception();
      failed.store(true);
      disk_arrays_[me]->drain();
      procs[me].messages->abandon_inflight();
      bar.arrive_and_drop();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(p);
  for (std::uint32_t i = 0; i < p; ++i) threads.emplace_back(worker, i);
  for (auto& t : threads) t.join();

  // Aggregate and export BEFORE checking for errors: when a worker aborted
  // (retry giveup past the recovery budget, cancellation, a model-violation
  // throw), the registry still receives everything the run accumulated, so
  // the caller's metrics/trace flush makes the failed run diagnosable.
  // Aggregate: total_io is the max over processors (the model's t_IO is a
  // max), per_proc_io keeps the full picture.
  result.recovery.io_retries = base_io_retries;
  result.recovery.io_giveups = base_io_giveups;
  for (std::uint32_t i = 0; i < p; ++i) {
    disk_arrays_[i]->harvest_backend_stats();  // ring counters → engine stats
    result.per_proc_io.push_back(disk_arrays_[i]->stats());
    if (disk_arrays_[i]->stats().parallel_ios >= result.total_io.parallel_ios) {
      result.total_io = disk_arrays_[i]->stats();
    }
    // Compute/I/O overlap, worst (least overlapped) processor.
    const auto& eng = disk_arrays_[i]->engine_stats();
    if (const std::uint64_t busy = eng.max_busy_ns(); busy > 0) {
      const double r =
          1.0 - static_cast<double>(eng.stall_ns) / static_cast<double>(busy);
      const double clamped = std::clamp(r, 0.0, 1.0);
      result.overlap_ratio =
          i == 0 ? clamped : std::min(result.overlap_ratio, clamped);
    }
    result.routing_stats += procs[i].routing;
    result.real_comm_bytes =
        std::max(result.real_comm_bytes, procs[i].max_comm_bytes_step);
    result.max_tracks_per_disk = std::max(
        result.max_tracks_per_disk, disk_arrays_[i]->max_tracks_used());
    result.recovery.io_retries +=
        disk_arrays_[i]->engine_stats().total_retries();
    result.recovery.io_giveups +=
        disk_arrays_[i]->engine_stats().total_giveups();
  }
  result.recovery.superstep_rollbacks = superstep_rollbacks.load();
  result.recovery.reorganize_rollbacks = reorganize_rollbacks.load();
  result.recovery.checkpoints = checkpoints_published.load();
  result.recovery.faults = base_faults;
  if (fault_counters_ != nullptr) {
    result.recovery.faults += em::snapshot(*fault_counters_);
  }
  result.phase_io = procs[0].phase_io;
  if (cfg_.recorder != nullptr) {
    auto& reg = cfg_.recorder->registry;
    for (std::uint32_t i = 0; i < p; ++i) {
      em::export_metrics(disk_arrays_[i]->engine_stats(), reg,
                         "proc." + std::to_string(i) + ".engine.");
    }
    export_routing_stats(reg, result.routing_stats);
    export_recovery_stats(reg, result.recovery);
    reg.add("sim.supersteps", result.costs.num_supersteps());
    reg.set_gauge("sim.group_size", static_cast<double>(result.group_size));
    reg.set_gauge("sim.max_tracks_per_disk",
                  static_cast<double>(result.max_tracks_per_disk));
    reg.set_gauge("sim.real_comm_bytes",
                  static_cast<double>(result.real_comm_bytes));
    reg.set_gauge("sim.overlap_ratio", result.overlap_ratio);
    // Copy discipline: staging/mailbox bytes that crossed a memcpy and the
    // worst per-processor peak arena residency.
    std::uint64_t copied = 0;
    std::uint64_t arena_peak = 0;
    bool mem_routing = true;
    for (std::uint32_t i = 0; i < p; ++i) {
      copied += procs[i].messages->bytes_copied() + procs[i].outbox_copied;
      arena_peak = std::max(arena_peak, procs[i].arena_peak);
      mem_routing = mem_routing && procs[i].messages->in_memory_routing();
    }
    reg.add("sim.bytes_copied", copied);
    reg.set_gauge("sim.arena_bytes", static_cast<double>(arena_peak));
    reg.set_gauge("sim.in_memory_routing", mem_routing ? 1.0 : 0.0);
  }

  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  for (std::uint32_t vp = 0; vp < v; ++vp) collect(vp, final_states[vp]);
  return result;
}

}  // namespace embsp::sim
