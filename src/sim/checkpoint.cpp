#include "sim/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "em/fault_backend.hpp"
#include "util/checksum.hpp"

namespace embsp::sim {

namespace {

constexpr std::uint64_t kManifestMagic = 0x454d42535043'4b50ULL;  // EMBSPCKP
constexpr std::uint32_t kManifestVersion = 1;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("checkpoint: " + what + " (" +
                           std::strerror(errno) + ")");
}

std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  return util::mix64(h ^ util::mix64(v + 0x9e3779b97f4a7c15ULL));
}

std::uint64_t fold_double(std::uint64_t h, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return fold(h, bits);
}

/// Write `bytes` to `path` with write-ahead ordering: tmp file, fsync,
/// atomic rename, directory fsync.  After this returns, the file is
/// durable under `path` or an exception was thrown.
void write_file_durable(const std::string& dir, const std::string& path,
                        std::span<const std::byte> bytes) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail("cannot create " + tmp);
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail("short write to " + tmp);
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail("fsync of " + tmp);
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    fail("rename " + tmp + " -> " + path);
  }
  // Make the rename itself durable: fsync the containing directory so a
  // crash right here cannot roll the directory entry back.
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

std::optional<std::vector<std::byte>> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const auto size = static_cast<std::size_t>(in.tellg());
  std::vector<std::byte> bytes(size);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  if (!in) return std::nullopt;
  return bytes;
}

}  // namespace

std::uint64_t config_fingerprint(const SimConfig& cfg) {
  std::uint64_t h = kManifestMagic;
  h = fold(h, cfg.machine.p);
  h = fold(h, cfg.machine.em.D);
  h = fold(h, cfg.machine.em.B);
  h = fold(h, cfg.machine.em.M);
  h = fold(h, cfg.mu);
  h = fold(h, cfg.gamma);
  h = fold(h, cfg.k);
  h = fold(h, static_cast<std::uint64_t>(cfg.routing));
  h = fold(h, cfg.seed);
  h = fold(h, cfg.max_supersteps);
  h = fold(h, cfg.block_checksums ? 1 : 0);
  h = fold(h, cfg.superstep_recovery ? 1 : 0);
  h = fold(h, cfg.max_superstep_retries);
  // The fault schedule is part of the run's identity: resuming under a
  // different schedule would splice two different histories together.
  h = fold(h, cfg.faults.seed);
  h = fold_double(h, cfg.faults.read_error_rate);
  h = fold_double(h, cfg.faults.write_error_rate);
  h = fold_double(h, cfg.faults.torn_write_rate);
  h = fold_double(h, cfg.faults.bit_flip_rate);
  h = fold_double(h, cfg.faults.latency_spike_rate);
  for (const auto& r : cfg.faults.dead_ranges) {
    h = fold(fold(fold(h, r.disk), r.begin), r.end);
  }
  for (const auto& b : cfg.faults.bursts) {
    h = fold(fold(fold(h, b.disk), b.first_call), b.count);
  }
  for (const auto& s : cfg.faults.scripted) {
    // Crash points are excluded: a crash never perturbs the history of a
    // run that survives it (the process just ends there), and a restart
    // legitimately re-runs *without* the crash script — the fingerprint
    // must treat the two configs as the same run.
    if (s.kind == em::FaultKind::crash) continue;
    h = fold(fold(fold(h, static_cast<std::uint64_t>(s.kind)), s.disk),
             s.call);
  }
  return h;
}

CheckpointDir::CheckpointDir(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) {
    throw std::invalid_argument("CheckpointDir: empty directory");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("checkpoint: cannot create directory " + dir_ +
                             " (" + ec.message() + ")");
  }
}

std::string CheckpointDir::epoch_path(std::uint64_t run_index,
                                      std::uint64_t epoch) const {
  return dir_ + "/epoch-" + std::to_string(run_index) + "-" +
         std::to_string(epoch) + ".ckpt";
}

void CheckpointDir::publish(std::size_t run_index, std::uint64_t epoch,
                            std::span<const std::byte> payload,
                            std::uint64_t config_fp) {
  const auto old = manifest();
  // Step 1: the payload becomes durable under its final name before any
  // manifest mentions it.
  write_file_durable(dir_, epoch_path(run_index, epoch), payload);

  // Step 2: publish the manifest naming it (and the previous epoch as the
  // verified fallback).
  Manifest m;
  m.run_index = run_index;
  m.cur_epoch = epoch;
  m.cur_bytes = payload.size();
  m.cur_checksum = util::checksum64(payload);
  m.config_fp = config_fp;
  if (old.has_value() && old->run_index == run_index &&
      old->cur_epoch != epoch) {
    m.prev_epoch = old->cur_epoch;
    m.prev_bytes = old->cur_bytes;
    m.prev_checksum = old->cur_checksum;
  }
  util::Writer w;
  w.write<std::uint64_t>(kManifestMagic);
  w.write<std::uint32_t>(kManifestVersion);
  w.write<std::uint64_t>(m.run_index);
  w.write<std::uint64_t>(m.cur_epoch);
  w.write<std::uint64_t>(m.cur_bytes);
  w.write<std::uint64_t>(m.cur_checksum);
  w.write<std::uint64_t>(m.prev_epoch);
  w.write<std::uint64_t>(m.prev_bytes);
  w.write<std::uint64_t>(m.prev_checksum);
  w.write<std::uint64_t>(m.config_fp);
  w.write<std::uint64_t>(util::checksum64(w.bytes()));
  write_file_durable(dir_, dir_ + "/MANIFEST", w.bytes());

  // Step 3: retention — with the new manifest durable, anything older than
  // the retained previous epoch is unreachable; drop it.  Best effort: a
  // leaked file is wasted space, not a correctness problem.
  if (old.has_value()) {
    std::error_code ec;
    if (old->run_index != run_index) {
      // A new run supersedes the old run's epochs entirely.
      std::filesystem::remove(epoch_path(old->run_index, old->cur_epoch), ec);
      if (old->prev_epoch != 0) {
        std::filesystem::remove(epoch_path(old->run_index, old->prev_epoch),
                                ec);
      }
    } else if (old->prev_epoch != 0 && old->prev_epoch != m.prev_epoch &&
               old->prev_epoch != epoch) {
      std::filesystem::remove(epoch_path(run_index, old->prev_epoch), ec);
    }
  }
}

std::optional<CheckpointDir::Manifest> CheckpointDir::manifest() const {
  const auto bytes = read_file(dir_ + "/MANIFEST");
  if (!bytes.has_value()) return std::nullopt;
  constexpr std::size_t kManifestBytes =
      sizeof(std::uint64_t) * 10 + sizeof(std::uint32_t);
  if (bytes->size() != kManifestBytes) return std::nullopt;
  const auto body =
      std::span<const std::byte>(*bytes).first(kManifestBytes - 8);
  util::Reader r(*bytes);
  if (r.read<std::uint64_t>() != kManifestMagic) return std::nullopt;
  if (r.read<std::uint32_t>() != kManifestVersion) return std::nullopt;
  Manifest m;
  m.run_index = r.read<std::uint64_t>();
  m.cur_epoch = r.read<std::uint64_t>();
  m.cur_bytes = r.read<std::uint64_t>();
  m.cur_checksum = r.read<std::uint64_t>();
  m.prev_epoch = r.read<std::uint64_t>();
  m.prev_bytes = r.read<std::uint64_t>();
  m.prev_checksum = r.read<std::uint64_t>();
  m.config_fp = r.read<std::uint64_t>();
  if (r.read<std::uint64_t>() != util::checksum64(body)) return std::nullopt;
  return m;
}

std::optional<CheckpointDir::Loaded> CheckpointDir::load(
    std::size_t run_index, std::uint64_t config_fp) const {
  const auto m = manifest();
  if (!m.has_value() || m->run_index != run_index) return std::nullopt;
  if (m->config_fp != config_fp) {
    throw std::runtime_error(
        "checkpoint: config fingerprint mismatch — the checkpoint in " +
        dir_ + " was taken under a different configuration");
  }
  const auto try_epoch =
      [&](std::uint64_t epoch, std::uint64_t expect_bytes,
          std::uint64_t expect_sum) -> std::optional<Loaded> {
    auto bytes = read_file(epoch_path(run_index, epoch));
    if (!bytes.has_value() || bytes->size() != expect_bytes) {
      return std::nullopt;
    }
    if (util::checksum64(*bytes) != expect_sum) return std::nullopt;
    return Loaded{epoch, std::move(*bytes)};
  };
  if (auto cur = try_epoch(m->cur_epoch, m->cur_bytes, m->cur_checksum)) {
    return cur;
  }
  if (m->prev_epoch != 0) {
    if (auto prev =
            try_epoch(m->prev_epoch, m->prev_bytes, m->prev_checksum)) {
      return prev;
    }
  }
  throw std::runtime_error(
      "checkpoint: no verifiable epoch in " + dir_ +
      " (current epoch failed checksum and no previous epoch loads)");
}

void save_proc_state(util::Writer& w, em::DiskArray& disks,
                     const em::TrackAllocators& alloc,
                     ContextStore& contexts, MessageStore& messages,
                     const util::Rng& rng) {
  w.write<std::uint64_t>(rng.raw_state());
  // Accrued model cost: the resumed array is seeded with it so since()
  // deltas and final totals match an uninterrupted run.
  w.write<em::IoStats>(disks.stats());
  const std::size_t d = disks.num_disks();
  w.write<std::uint64_t>(d);
  for (std::size_t i = 0; i < d; ++i) {
    em::Disk& disk = disks.disk(i);
    w.write<std::uint64_t>(disk.tracks_used());
    auto* faults = dynamic_cast<em::FaultInjectingBackend*>(&disk.backend());
    w.write<std::uint8_t>(faults != nullptr ? 1 : 0);
    if (faults != nullptr) {
      const auto s = faults->schedule_state();
      w.write<std::uint64_t>(s.calls);
      w.write<std::uint64_t>(s.rng_state);
    }
  }
  const auto snaps = alloc.snapshot();
  for (const auto& s : snaps) {
    w.write<std::uint64_t>(s.next);
    w.write_vector(s.free);
  }
  w.write<std::uint64_t>(contexts.epoch());
  w.write<std::uint32_t>(contexts.num_contexts());
  for (std::uint32_t c = 0; c < contexts.num_contexts(); ++c) {
    contexts.export_context(c, w);
  }
  messages.export_state(w);
}

void load_proc_state(util::Reader& r, em::DiskArray& disks,
                     em::TrackAllocators& alloc, ContextStore& contexts,
                     MessageStore& messages, util::Rng& rng) {
  rng.set_raw_state(r.read<std::uint64_t>());
  disks.seed_stats(r.read<em::IoStats>());
  const auto d = r.read<std::uint64_t>();
  if (d != disks.num_disks()) {
    throw std::runtime_error("checkpoint: disk count mismatch");
  }
  for (std::size_t i = 0; i < d; ++i) {
    em::Disk& disk = disks.disk(i);
    disk.note_tracks_used(r.read<std::uint64_t>());
    const auto has_faults = r.read<std::uint8_t>();
    auto* faults = dynamic_cast<em::FaultInjectingBackend*>(&disk.backend());
    if (has_faults != 0) {
      em::FaultInjectingBackend::ScheduleState s;
      s.calls = r.read<std::uint64_t>();
      s.rng_state = r.read<std::uint64_t>();
      // No wrapper on this side: the config fingerprint already pinned
      // every history-affecting fault parameter, so the difference can
      // only be crash scripts (present when the checkpoint was taken,
      // dropped for the restart — the machine does not lose power twice).
      // The schedule position is then irrelevant; discard it.
      if (faults != nullptr) faults->set_schedule_state(s);
    }
  }
  std::vector<em::TrackAllocator::Snapshot> snaps(d);
  for (std::size_t i = 0; i < d; ++i) {
    snaps[i].next = r.read<std::uint64_t>();
    snaps[i].free = r.read_vector<std::uint64_t>();
  }
  alloc.restore(snaps);
  contexts.set_epoch(r.read<std::uint64_t>());
  const auto n = r.read<std::uint32_t>();
  if (n != contexts.num_contexts()) {
    throw std::runtime_error("checkpoint: context count mismatch");
  }
  for (std::uint32_t c = 0; c < n; ++c) contexts.restore_context(c, r);
  messages.restore_state(r);
}

}  // namespace embsp::sim
