// Analytic tail bounds from the paper's probabilistic analysis
// (Lemma 2, Lemma 9, Lemma 10 / Appendix A.1), evaluated numerically so the
// benches can plot measured frequencies against the theory curves.
#pragma once

#include <cstdint>

namespace embsp::sim {

/// Lemma 2: Pr[X_{j,k} >= l * R/D] <= exp(-(R/D) * (l*ln(l) - l + 1)),
/// the explicit constant obtained in the paper's proof by substituting
/// r = ln l.  `R` is the number of blocks in the bucket, `D` the number of
/// disks, and `l >= 1` the overload factor.  Returns a probability in
/// [0, 1].
double lemma2_tail(double l, double R, double D);

/// Lemma 10 (balls into bins): with x balls thrown independently into y
/// bins, Pr[some bin receives more than l*x/y balls]
///   <= exp(l*(x/y) - l*ln(l)*(x/y) - ln(l) + 2*ln(y)),
/// the explicit expression derived in the proof.  Returns a probability in
/// [0, 1]; meaningful for l > e.
double lemma10_tail(double l, double x, double y);

/// Hoeffding bound of Lemma 9: Pr[sum >= u*m] <= exp(-u*m/k) for u >= e^2,
/// independent X_i in [0, k] with mean-sum m.
double lemma9_tail(double u, double m, double k);

}  // namespace embsp::sim
