// Observability glue for the simulators: translates em-layer model cost
// (IoStats deltas) into obs-layer spans and registry entries.
//
// ObsPhase is the simulators' phase bracket.  It subsumes the old
// snapshot()/account() lambda pair: construction captures the disk array's
// IoStats, destruction accumulates the delta into the given PhaseIo slot
// AND — when a recorder is attached — into an obs::PhaseSpan, which pairs
// the model cost with the phase's wall-clock duration.  With no recorder
// and no slot the destructor does nothing; with no recorder it reduces to
// exactly the accounting the simulators always did, so default-config runs
// stay byte-identical.
//
// Being RAII, the delta is charged even when the phase unwinds with an
// exception (retry-budget exhaustion mid-phase).  That keeps phase_io
// consistent with total_io, which likewise counts I/O from abandoned
// superstep attempts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "em/disk_array.hpp"
#include "em/io_stats.hpp"
#include "obs/span.hpp"
#include "sim/sim_config.hpp"

namespace embsp::sim {

class ObsPhase {
 public:
  /// `slot` may be null (wall-clock-only phase, e.g. compute).  `tid`
  /// labels the trace track with the real-processor index.
  ObsPhase(obs::Recorder* rec, std::string_view name,
           const em::DiskArray& disks, em::IoStats* slot,
           std::uint32_t tid = 0)
      : disks_(&disks),
        slot_(slot),
        span_(rec, name, tid),
        track_cost_(slot != nullptr || rec != nullptr) {
    if (track_cost_) before_ = disks_->stats();
  }

  ObsPhase(const ObsPhase&) = delete;
  ObsPhase& operator=(const ObsPhase&) = delete;

  ~ObsPhase() {
    if (!track_cost_) return;
    const em::IoStats d = disks_->stats().since(before_);
    if (slot_ != nullptr) *slot_ += d;
    span_.add_cost(obs::CostDelta{d.parallel_ios, d.blocks_read,
                                  d.blocks_written, d.bytes_read,
                                  d.bytes_written});
  }

 private:
  const em::DiskArray* disks_;
  em::IoStats* slot_;
  obs::PhaseSpan span_;  // destructs after ~ObsPhase's body ran add_cost
  bool track_cost_;
  em::IoStats before_;
};

/// Mark one recovery rollback: counter + (if tracing) an instant event on
/// the rolling-back processor's track.
inline void record_rollback(obs::Recorder* rec, std::string_view unit,
                            std::uint32_t tid = 0) {
  if (rec == nullptr) return;
  std::string key("recovery.rollbacks.");
  key.append(unit);
  rec->registry.add(key);
  if (rec->trace_enabled) {
    rec->trace.instant(unit, "recovery", tid, obs::TraceWriter::now_ns());
  }
}

inline void export_routing_stats(obs::Registry& reg, const RoutingStats& rs) {
  reg.add("routing.blocks_total", rs.blocks_total);
  reg.add("routing.dummy_blocks", rs.dummy_blocks);
  reg.add("routing.step1_cycles", rs.step1_cycles);
  reg.add("routing.step2_cycles", rs.step2_cycles);
  reg.add("routing.distribute_cycles", rs.distribute_cycles);
  reg.set_gauge("routing.max_chain", static_cast<double>(rs.max_chain));
}

/// Mark one published checkpoint epoch: running count (a gauge, so the
/// abort/cancel flush paths see the live value without double-counting the
/// final export) plus size/latency histograms (wall-clock latency —
/// excluded from determinism guarantees, like every histogram).
inline void record_checkpoint(obs::Recorder* rec, std::uint64_t count,
                              std::size_t bytes, std::uint64_t latency_ns) {
  if (rec == nullptr) return;
  rec->registry.set_gauge("recovery.checkpoints", static_cast<double>(count));
  rec->registry.observe("checkpoint.bytes", static_cast<double>(bytes));
  rec->registry.observe("checkpoint.latency_ns",
                        static_cast<double>(latency_ns));
}

inline void export_recovery_stats(obs::Registry& reg,
                                  const RecoveryStats& rc) {
  reg.add("recovery.io_retries", rc.io_retries);
  reg.add("recovery.io_giveups", rc.io_giveups);
  reg.add("recovery.superstep_rollbacks", rc.superstep_rollbacks);
  reg.add("recovery.reorganize_rollbacks", rc.reorganize_rollbacks);
  reg.set_gauge("recovery.checkpoints", static_cast<double>(rc.checkpoints));
  reg.set_gauge("recovery.resume_epoch",
                static_cast<double>(rc.resume_epoch));
  reg.add("faults.injected.read_errors", rc.faults.read_errors);
  reg.add("faults.injected.write_errors", rc.faults.write_errors);
  reg.add("faults.injected.torn_writes", rc.faults.torn_writes);
  reg.add("faults.injected.bit_flips", rc.faults.bit_flips);
  reg.add("faults.injected.latency_spikes", rc.faults.latency_spikes);
  reg.add("faults.injected.dead_range_hits", rc.faults.dead_range_hits);
}

}  // namespace embsp::sim
