// Durable checkpoint/restart for the EM-BSP simulators.
//
// §5.1's observation that the disks hold a consistent snapshot at superstep
// boundaries makes the boundary the natural *durability* point too: at a
// boundary the staging side of the MessageStore is empty, every context has
// a committed payload, and the whole logical state of the run — contexts,
// ready message blocks, RNG streams, allocator tables, cost accumulators,
// fault-schedule positions — fits in one self-contained record.  This
// module persists that record crash-consistently and loads it back.
//
// On-disk format, inside the checkpoint directory:
//
//   epoch-<run>-<E>.ckpt   one serialized payload per published epoch
//   MANIFEST               fixed-size binary record naming the current and
//                          previous epoch (file size + checksum64 each), the
//                          run index, a config fingerprint, and a trailing
//                          checksum64 of the manifest bytes themselves
//
// Write-ahead ordering makes a torn checkpoint detectable and the previous
// epoch always loadable:
//
//   1. write payload to epoch-...ckpt.tmp, fsync, rename into place,
//      fsync the directory;
//   2. write the new MANIFEST to MANIFEST.tmp, fsync, rename, fsync dir.
//
// A crash before (2) leaves the old manifest — which still names the old
// (fully durable) epoch.  A crash during either rename leaves either the
// old or the new file, never a mix.  load() additionally verifies the
// manifest trailer and the payload checksum, and falls back to the
// previous epoch when the current one fails verification.  Only the two
// newest epochs are retained.
//
// Checkpoint traffic is off-model by construction: capture reads and
// restore writes go through Disk::peek_track/restore_track with the
// fault-unwrapped backend, so IoStats, the deterministic fault schedule,
// and the model costs of the run being checkpointed are untouched.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "em/disk_array.hpp"
#include "em/track_allocator.hpp"
#include "sim/context_store.hpp"
#include "sim/message_store.hpp"
#include "sim/sim_config.hpp"
#include "util/rng.hpp"
#include "util/serialization.hpp"

namespace embsp::sim {

/// Fingerprint of the determinism-relevant configuration: a resumed run
/// must be the *same* run (machine shape, layout knobs, seeds, fault
/// schedule), or the restored state would not mesh with the re-executed
/// schedule.  Mismatches are detected at load time and rejected loudly.
[[nodiscard]] std::uint64_t config_fingerprint(const SimConfig& cfg);

class CheckpointDir {
 public:
  /// Opens (creating if needed) the checkpoint directory.
  explicit CheckpointDir(std::string dir);

  /// Durably publish `payload` as epoch `epoch` of run `run_index` (see
  /// the ordering contract above).  Retains the previously published epoch
  /// of the same run as the fallback, removes anything older.  Throws
  /// std::runtime_error on any I/O failure — a checkpoint that cannot be
  /// made durable must not be silently skipped.
  void publish(std::size_t run_index, std::uint64_t epoch,
               std::span<const std::byte> payload,
               std::uint64_t config_fp);

  struct Manifest {
    std::uint64_t run_index = 0;
    std::uint64_t cur_epoch = 0;
    std::uint64_t cur_bytes = 0;
    std::uint64_t cur_checksum = 0;
    std::uint64_t prev_epoch = 0;  ///< 0 = no previous epoch retained
    std::uint64_t prev_bytes = 0;
    std::uint64_t prev_checksum = 0;
    std::uint64_t config_fp = 0;
  };

  /// The manifest, if a verifiable one exists (trailer checksum OK).
  [[nodiscard]] std::optional<Manifest> manifest() const;

  struct Loaded {
    std::uint64_t epoch = 0;
    std::vector<std::byte> payload;
  };

  /// Load the newest verifiable epoch of run `run_index`: the manifest's
  /// current epoch, or — when its payload fails size/checksum verification
  /// (a torn or corrupted file) — the previous epoch.  Returns nullopt when
  /// no manifest exists or it names a different run; throws when the
  /// manifest matches but its config fingerprint differs from `config_fp`
  /// (resuming under a changed config is an error, not a fresh start), or
  /// when no epoch of a matching manifest verifies.
  [[nodiscard]] std::optional<Loaded> load(std::size_t run_index,
                                           std::uint64_t config_fp) const;

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Path of epoch `epoch`'s payload file for run `run_index`.
  [[nodiscard]] std::string epoch_path(std::uint64_t run_index,
                                       std::uint64_t epoch) const;

 private:
  std::string dir_;
};

// --- Per-processor substrate records --------------------------------------
//
// One simulating processor's complete logical state at a superstep
// boundary: RNG stream, track-allocator tables, per-disk fault-schedule
// positions and space high-water marks, accrued model IoStats, every
// context's committed payload, and the MessageStore's ready side.  The
// sequential simulator writes one such record per checkpoint; the parallel
// simulator writes p of them.

void save_proc_state(util::Writer& w, em::DiskArray& disks,
                     const em::TrackAllocators& alloc,
                     ContextStore& contexts, MessageStore& messages,
                     const util::Rng& rng);

/// Mirror of save_proc_state into freshly constructed, same-shape
/// components.  Seeds the DiskArray's IoStats with the checkpointed
/// totals, restores per-disk fault wrapper positions so the resumed fault
/// schedule continues exactly where the checkpointed run left off, and
/// rewrites every context/message block through the off-model path.
void load_proc_state(util::Reader& r, em::DiskArray& disks,
                     em::TrackAllocators& alloc, ContextStore& contexts,
                     MessageStore& messages, util::Rng& rng);

}  // namespace embsp::sim
