#include "sim/tail_bounds.hpp"

#include <algorithm>
#include <cmath>

namespace embsp::sim {

namespace {
double clamp_prob(double p) { return std::clamp(p, 0.0, 1.0); }
}  // namespace

double lemma2_tail(double l, double R, double D) {
  if (l <= 1.0 || R <= 0.0 || D <= 0.0) return 1.0;
  // From the proof: exp((R*(e^r - 1) - r*l*R)/D) with r = ln l
  //               = exp(-(R/D) * (l*ln l - l + 1)).
  const double exponent = -(R / D) * (l * std::log(l) - l + 1.0);
  return clamp_prob(std::exp(exponent));
}

double lemma10_tail(double l, double x, double y) {
  if (l <= 1.0 || x <= 0.0 || y <= 0.0) return 1.0;
  const double r = x / y;
  const double exponent =
      l * r - l * std::log(l) * r - std::log(l) + 2.0 * std::log(y);
  return clamp_prob(std::exp(exponent));
}

double lemma9_tail(double u, double m, double k) {
  if (m <= 0.0 || k <= 0.0) return 1.0;
  return clamp_prob(std::exp(-u * m / k));
}

}  // namespace embsp::sim
