#include "sim/seq_simulator.hpp"

#include <string>

#include "em/uring_backend.hpp"

namespace embsp::sim {

SimLayout SimLayout::compute(const SimConfig& cfg, std::uint32_t local_v) {
  const auto& em = cfg.machine.em;
  if (cfg.mu == 0) {
    throw std::invalid_argument("SimLayout: mu (max context bytes) not set");
  }
  if (cfg.gamma == 0) {
    throw std::invalid_argument(
        "SimLayout: gamma (max comm bytes per processor) not set");
  }
  if (em.B < kMinBlockSize) {
    throw std::invalid_argument("SimLayout: block size B must be at least " +
                                std::to_string(kMinBlockSize) + " bytes");
  }

  SimLayout layout;
  // Context slot: [u32 length] + mu, rounded up to whole blocks.
  const std::size_t slot_blocks = (cfg.mu + 4 + em.B - 1) / em.B;
  layout.context_slot_bytes = slot_blocks * em.B;

  // k = floor(M / mu), at least 1, at most v (§5.1).  The memory the model
  // grants is M; one group's contexts plus its messages must fit.
  //
  // Additionally the number of groups must be at least D, or the routing
  // buckets (one per disk) cannot all be populated and SimulateRouting
  // degenerates to near-serial I/O — this is the practical face of the
  // paper's slackness requirement v >= k*D*log(M/B) (Theorem 1).
  // Pipelined execution double-buffers the context staging (groups g and
  // g+1 resident at once), so its memory bound tightens to 2*k*slot <= M.
  const std::size_t resident = cfg.pipeline ? 2 : 1;
  std::size_t k = cfg.k != 0
                      ? cfg.k
                      : bsp::default_group_size(em.M / resident,
                                                layout.context_slot_bytes);
  if (cfg.k == 0 && local_v >= em.D) {
    k = std::min<std::size_t>(k, local_v / em.D);
  }
  k = std::min<std::size_t>(k, local_v);
  k = std::max<std::size_t>(k, 1);
  // §5.1: "k = floor(M/mu)" — one group's contexts must fit the memory M
  // the model grants; an explicit cfg.k gets the same bound.  (No slack:
  // the group's message blocks of step 1(b) share the same M, so granting
  // more than M of context would already break the theorem's premise.)
  if (cfg.k != 0 && cfg.k * layout.context_slot_bytes * resident > em.M) {
    throw std::invalid_argument(
        "SimLayout: requested group size k needs " +
        std::to_string(cfg.k * layout.context_slot_bytes * resident) +
        " bytes of context memory" +
        (cfg.pipeline ? " (2 groups resident: pipelined double buffering)"
                      : "") +
        " but M = " + std::to_string(em.M));
  }
  layout.k = k;
  layout.num_groups =
      static_cast<std::uint32_t>((local_v + k - 1) / k);

  // Blocks one group may receive in one superstep: k receivers, each with a
  // gamma budget, packed at >= (payload_capacity - chunk header) bytes per
  // block, plus one underfull tail block per source group.
  const std::size_t payload = em.B - kBlockHeaderBytes;
  const std::size_t usable = payload > 2 * kChunkHeaderBytes
                                 ? payload - 2 * kChunkHeaderBytes
                                 : 1;
  layout.group_capacity =
      (static_cast<std::uint64_t>(k) * cfg.gamma + usable - 1) / usable +
      layout.num_groups + 1;
  const std::uint64_t ctx_resident =
      static_cast<std::uint64_t>(resident) * k * layout.context_slot_bytes;
  layout.routing_mem_budget = em.M > ctx_resident ? em.M - ctx_resident : 0;
  return layout;
}

SeqSimulator::SeqSimulator(
    SimConfig cfg,
    std::function<std::unique_ptr<em::Backend>(std::size_t)> backend)
    : cfg_(cfg) {
  cfg_.machine.validate();
  if (cfg_.faults.enabled()) {
    fault_counters_ = std::make_shared<em::FaultCounters>();
  }
  // The uring engine's drives live on kernel-native scratch files unless
  // the caller brought their own backends (a caller-supplied factory always
  // wins — parity tests run uring scheduling over memory backends that
  // way).  Fault injection composes as a decorator ABOVE the ring, so the
  // per-disk call schedule is identical across engines.
  if (cfg_.io_engine == em::IoEngine::uring && !backend) {
    em::UringConfig ucfg;
    ucfg.direct = cfg_.direct_io;
    backend = em::make_uring_scratch_factory(cfg_.disk_dir, "seq", ucfg);
  }
  auto make_backend = em::wrap_with_faults(std::move(backend), cfg_.faults,
                                           cfg_.seed, fault_counters_);
  em::DiskArrayOptions opts;
  opts.retry = cfg_.retry;
  opts.verify_checksums = cfg_.block_checksums;
  // Coalescing must not shift the deterministic fault schedule (a retried
  // run would replay calls for tracks that already succeeded).
  opts.coalesce = cfg_.coalesce_io && !cfg_.faults.enabled();
  disks_ = em::make_disk_array(cfg_.io_engine, cfg_.machine.em.D,
                               cfg_.machine.em.B, std::move(make_backend),
                               /*capacity_tracks_per_disk=*/0, opts);
}

}  // namespace embsp::sim
