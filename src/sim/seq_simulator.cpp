#include "sim/seq_simulator.hpp"

#include <string>

#include "em/uring_backend.hpp"

namespace embsp::sim {

// SimLayout::compute lives in layout_planner.cpp (the extracted planner).

SeqSimulator::SeqSimulator(
    SimConfig cfg,
    std::function<std::unique_ptr<em::Backend>(std::size_t)> backend)
    : cfg_(cfg) {
  cfg_.machine.validate();
  // Self-tuning resolves its static knobs (k, routing mode, coalescing,
  // compute width) before the disk substrate is built — the engine options
  // below read them.
  LayoutPlanner::apply_auto_tune(cfg_);
  if (cfg_.faults.enabled()) {
    fault_counters_ = std::make_shared<em::FaultCounters>();
  }
  // The uring engine's drives live on kernel-native scratch files unless
  // the caller brought their own backends (a caller-supplied factory always
  // wins — parity tests run uring scheduling over memory backends that
  // way).  Fault injection composes as a decorator ABOVE the ring, so the
  // per-disk call schedule is identical across engines.
  if (cfg_.io_engine == em::IoEngine::uring && !backend) {
    em::UringConfig ucfg;
    ucfg.direct = cfg_.direct_io;
    backend = em::make_uring_scratch_factory(cfg_.disk_dir, "seq", ucfg);
  }
  auto make_backend = em::wrap_with_faults(std::move(backend), cfg_.faults,
                                           cfg_.seed, fault_counters_);
  em::DiskArrayOptions opts;
  opts.retry = cfg_.retry;
  opts.verify_checksums = cfg_.block_checksums;
  // Coalescing must not shift the deterministic fault schedule (a retried
  // run would replay calls for tracks that already succeeded).
  opts.coalesce = cfg_.coalesce_io && !cfg_.faults.enabled();
  disks_ = em::make_disk_array(cfg_.io_engine, cfg_.machine.em.D,
                               cfg_.machine.em.B, std::move(make_backend),
                               /*capacity_tracks_per_disk=*/0, opts);
}

}  // namespace embsp::sim
