#include "sim/dist_simulator.hpp"

#include "em/uring_backend.hpp"

namespace embsp::sim {

DistSimulator::DistSimulator(
    SimConfig cfg, net::Transport& transport,
    std::function<std::unique_ptr<em::Backend>(std::size_t)> backend)
    : cfg_(cfg), tp_(&transport) {
  cfg_.machine.validate();
  // Resolve the self-tuned knobs before the engine options read them.
  LayoutPlanner::apply_auto_tune(cfg_);
  if (tp_->size() != cfg_.machine.p) {
    throw std::invalid_argument(
        "DistSimulator: transport has " + std::to_string(tp_->size()) +
        " endpoints but the machine declares p=" +
        std::to_string(cfg_.machine.p));
  }
  // Features whose protocols assume shared memory (cross-worker snapshot
  // flags, a single checkpoint publisher, barrier-counted recovery units)
  // are rejected up front rather than silently misbehaving over the wire.
  // The pipelined group scheduler is NOT among them anymore: each rank's
  // double-buffered schedule is private to its own disks, and the wire
  // traffic it produces is identical (see dist_simulator.hpp).
  if (cfg_.checkpoint.enabled()) {
    throw std::invalid_argument(
        "DistSimulator: checkpoint/restart is not supported over a "
        "transport yet");
  }
  if (cfg_.superstep_recovery) {
    throw std::invalid_argument(
        "DistSimulator: coordinated superstep recovery is not supported "
        "over a transport yet (transient faults are still absorbed by "
        "per-rank retry)");
  }
  if (cfg_.faults.enabled()) {
    fault_counters_ = std::make_shared<em::FaultCounters>();
  }
  if (cfg_.io_engine == em::IoEngine::uring && !backend) {
    em::UringConfig ucfg;
    ucfg.direct = cfg_.direct_io;
    backend = em::make_uring_scratch_factory(cfg_.disk_dir, "dist", ucfg);
  }
  em::DiskArrayOptions opts;
  opts.retry = cfg_.retry;
  opts.verify_checksums = cfg_.block_checksums;
  opts.coalesce = cfg_.coalesce_io && !cfg_.faults.enabled();
  auto global = em::wrap_with_faults(backend, cfg_.faults, cfg_.seed,
                                     fault_counters_);
  // Machine-wide drive indices (rank*D + d), exactly as the ParSimulator
  // numbers them: the deterministic fault schedule and any file-backed
  // factory see the same per-drive streams in both simulators.
  const std::uint32_t me = tp_->rank();
  auto make = global
                  ? std::function<std::unique_ptr<em::Backend>(std::size_t)>(
                        [global, me, this](std::size_t d) {
                          return global(me * cfg_.machine.em.D + d);
                        })
                  : nullptr;
  disks_ = em::make_disk_array(cfg_.io_engine, cfg_.machine.em.D,
                               cfg_.machine.em.B, std::move(make),
                               /*capacity_tracks_per_disk=*/0, opts);
}

}  // namespace embsp::sim
