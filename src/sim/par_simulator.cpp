#include "sim/par_simulator.hpp"

namespace embsp::sim {

ParSimulator::ParSimulator(
    SimConfig cfg,
    std::function<std::unique_ptr<em::Backend>(std::size_t)> backend)
    : cfg_(cfg) {
  cfg_.machine.validate();
  if (cfg_.faults.enabled()) {
    fault_counters_ = std::make_shared<em::FaultCounters>();
  }
  em::DiskArrayOptions opts;
  opts.retry = cfg_.retry;
  opts.verify_checksums = cfg_.block_checksums;
  // Coalescing must not shift the deterministic fault schedule (a retried
  // run would replay calls for tracks that already succeeded).
  opts.coalesce = cfg_.coalesce_io && !cfg_.faults.enabled();
  // `global` takes a machine-wide drive index: the fault schedule is keyed
  // by that index, so every drive of every processor gets its own
  // decorrelated stream.  With faults disabled this is `backend` unchanged.
  auto global = em::wrap_with_faults(backend, cfg_.faults, cfg_.seed,
                                     fault_counters_);
  disk_arrays_.reserve(cfg_.machine.p);
  for (std::uint32_t i = 0; i < cfg_.machine.p; ++i) {
    // Give each processor's drives distinct global indices so file-backed
    // setups do not collide.
    auto make = global
                    ? std::function<std::unique_ptr<em::Backend>(std::size_t)>(
                          [global, i, this](std::size_t d) {
                            return global(i * cfg_.machine.em.D + d);
                          })
                    : nullptr;
    disk_arrays_.push_back(em::make_disk_array(
        cfg_.io_engine, cfg_.machine.em.D, cfg_.machine.em.B,
        std::move(make), /*capacity_tracks_per_disk=*/0, opts));
  }
}

}  // namespace embsp::sim
