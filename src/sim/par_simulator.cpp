#include "sim/par_simulator.hpp"

namespace embsp::sim {

ParSimulator::ParSimulator(
    SimConfig cfg,
    std::function<std::unique_ptr<em::Backend>(std::size_t)> backend)
    : cfg_(cfg) {
  cfg_.machine.validate();
  disk_arrays_.reserve(cfg_.machine.p);
  for (std::uint32_t i = 0; i < cfg_.machine.p; ++i) {
    // Give each processor's drives distinct backend indices so file-backed
    // setups do not collide.
    auto make = backend
                    ? std::function<std::unique_ptr<em::Backend>(std::size_t)>(
                          [backend, i, this](std::size_t d) {
                            return backend(i * cfg_.machine.em.D + d);
                          })
                    : nullptr;
    disk_arrays_.push_back(em::make_disk_array(
        cfg_.io_engine, cfg_.machine.em.D, cfg_.machine.em.B,
        std::move(make)));
  }
}

}  // namespace embsp::sim
