#include "sim/par_simulator.hpp"

#include "em/uring_backend.hpp"

namespace embsp::sim {

ParSimulator::ParSimulator(
    SimConfig cfg,
    std::function<std::unique_ptr<em::Backend>(std::size_t)> backend)
    : cfg_(cfg) {
  cfg_.machine.validate();
  // Resolve the self-tuned knobs before the engine options read them.
  LayoutPlanner::apply_auto_tune(cfg_);
  if (cfg_.faults.enabled()) {
    fault_counters_ = std::make_shared<em::FaultCounters>();
  }
  // Default the uring engine to kernel-native scratch files, keyed by the
  // machine-wide drive index below so every (proc, disk) pair gets its own
  // file.  A caller-supplied factory always wins; the fault decorator wraps
  // either, keeping the per-disk call schedule engine-independent.
  if (cfg_.io_engine == em::IoEngine::uring && !backend) {
    em::UringConfig ucfg;
    ucfg.direct = cfg_.direct_io;
    backend = em::make_uring_scratch_factory(cfg_.disk_dir, "par", ucfg);
  }
  em::DiskArrayOptions opts;
  opts.retry = cfg_.retry;
  opts.verify_checksums = cfg_.block_checksums;
  // Coalescing must not shift the deterministic fault schedule (a retried
  // run would replay calls for tracks that already succeeded).
  opts.coalesce = cfg_.coalesce_io && !cfg_.faults.enabled();
  // `global` takes a machine-wide drive index: the fault schedule is keyed
  // by that index, so every drive of every processor gets its own
  // decorrelated stream.  With faults disabled this is `backend` unchanged.
  auto global = em::wrap_with_faults(backend, cfg_.faults, cfg_.seed,
                                     fault_counters_);
  disk_arrays_.reserve(cfg_.machine.p);
  for (std::uint32_t i = 0; i < cfg_.machine.p; ++i) {
    // Give each processor's drives distinct global indices so file-backed
    // setups do not collide.
    auto make = global
                    ? std::function<std::unique_ptr<em::Backend>(std::size_t)>(
                          [global, i, this](std::size_t d) {
                            return global(i * cfg_.machine.em.D + d);
                          })
                    : nullptr;
    disk_arrays_.push_back(em::make_disk_array(
        cfg_.io_engine, cfg_.machine.em.D, cfg_.machine.em.B,
        std::move(make), /*capacity_tracks_per_disk=*/0, opts));
  }
}

}  // namespace embsp::sim
