// Algorithm 1 — SeqCompoundSuperstep: simulation of a v-processor BSP* on a
// single-processor EM-BSP* machine with D disks (§5.1).
//
// Each compound superstep is simulated in v/k rounds of k virtual
// processors (one *group*):
//   1(a) read the k contexts            — ContextStore, striped, parallel
//   1(b) read the group's messages      — MessageStore arena, parallel
//   1(c) run the k supersteps in memory
//   1(d) cut generated messages into blocks, write them to the D buckets
//        with a random disk permutation per write cycle
//   1(e) write the k contexts back
//   (2)  SimulateRouting — reorganize buckets into standard consecutive
//        format per destination group
//
// The simulator validates the model's resource discipline at runtime:
// contexts must fit the declared mu, per-processor communication must fit
// the declared gamma, and k*mu must fit the machine's memory M.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>

#include "bsp/direct_runtime.hpp"
#include "bsp/program.hpp"
#include "em/disk_array.hpp"
#include "sim/checkpoint.hpp"
#include "sim/context_store.hpp"
#include "sim/layout_planner.hpp"
#include "sim/message_store.hpp"
#include "sim/obs_hooks.hpp"
#include "sim/sim_config.hpp"
#include "util/thread_pool.hpp"

namespace embsp::sim {

class SeqSimulator {
 public:
  explicit SeqSimulator(
      SimConfig cfg,
      std::function<std::unique_ptr<em::Backend>(std::size_t)> backend =
          nullptr);

  template <bsp::Program P>
  SimResult run(
      const P& prog,
      const std::function<typename P::State(std::uint32_t)>& make_state,
      const std::function<void(std::uint32_t, typename P::State&)>& collect);

  [[nodiscard]] const em::DiskArray& disks() const { return *disks_; }
  [[nodiscard]] const SimConfig& config() const { return cfg_; }

 private:
  SimConfig cfg_;
  std::unique_ptr<em::DiskArray> disks_;
  /// Shared tally of injected faults (null when injection is disabled).
  std::shared_ptr<em::FaultCounters> fault_counters_;
};

/// Convenience: measure mu/gamma with a direct dry run (small v is fine as
/// long as it has the same per-processor footprint), then simulate.
template <bsp::Program P>
SimResult simulate_measured(
    const P& prog, SimConfig cfg,
    const std::function<typename P::State(std::uint32_t)>& make_state,
    const std::function<void(std::uint32_t, typename P::State&)>& collect) {
  const auto req =
      bsp::measure_requirements(prog, cfg.machine.bsp.v, make_state);
  cfg.mu = req.mu + req.mu / 8 + 64;  // headroom: serialized sizes may drift
  cfg.gamma = req.gamma + 64;         // req.gamma is already in wire bytes
  SeqSimulator sim(cfg);
  return sim.run(prog, make_state, collect);
}

// ---------------------------------------------------------------------------
// implementation
// ---------------------------------------------------------------------------

template <bsp::Program P>
SimResult SeqSimulator::run(
    const P& prog,
    const std::function<typename P::State(std::uint32_t)>& make_state,
    const std::function<void(std::uint32_t, typename P::State&)>& collect) {
  using State = typename P::State;
  cfg_.machine.validate();
  if (cfg_.machine.p != 1) {
    throw std::invalid_argument(
        "SeqSimulator: p must be 1 (use ParSimulator for p > 1)");
  }
  const std::uint32_t v = cfg_.machine.bsp.v;
  // The planner emits a flat single-level layout whenever the (requested or
  // auto-picked) k fits the memory bound, and a two-level group tree when
  // it does not: contexts are walked in leaf groups sized to fit M, while
  // messages route at super-group granularity and are re-cut into leaf
  // blocks through scratch on fetch.  plan.leaf is exactly the old
  // SimLayout in the flat case.
  const LayoutPlan plan = LayoutPlanner::plan(cfg_, v);
  const SimLayout layout = plan.leaf;
  const auto k = static_cast<std::uint32_t>(layout.k);
  const std::uint32_t num_groups = layout.num_groups;
  const bool hier = plan.hierarchical();
  if (hier && (cfg_.superstep_recovery || cfg_.checkpoint.enabled())) {
    throw LayoutError(
        "SeqSimulator: superstep recovery / checkpointing do not compose "
        "with the multi-level group schedule yet (the distribution scratch "
        "is not part of the recovery records); lower k or raise M");
  }
  // Virtual processors per *routing* destination group: the super-group
  // size in a hierarchical plan, k itself in a flat one.
  const auto route_k = static_cast<std::uint32_t>(plan.levels.back().k);

  em::TrackAllocators alloc(disks_->num_disks());
  ContextStore contexts(*disks_, alloc, v, cfg_.mu,
                        /*journaled=*/cfg_.superstep_recovery);
  MessageStoreConfig mcfg;
  mcfg.num_groups = plan.levels.back().num_groups;
  mcfg.group_capacity_blocks =
      hier ? plan.super_capacity_blocks : layout.group_capacity;
  mcfg.mode = cfg_.routing;
  mcfg.max_message_bytes = cfg_.gamma;
  mcfg.memory_budget_bytes = layout.routing_mem_budget;
  if (hier) {
    mcfg.leaf_fanout = plan.fanout();
    mcfg.num_leaf_groups = num_groups;
    mcfg.leaf_capacity_blocks = plan.leaf_capacity_blocks;
    mcfg.leaf_of = [k](std::uint32_t dst) { return dst / k; };
  }
  MessageStore messages(*disks_, alloc, mcfg);
  util::Rng rng(cfg_.seed);

  SimResult result;
  result.group_size = layout.k;
  obs::Recorder* const rec = cfg_.recorder;
  auto snapshot = [&]() { return disks_->stats(); };

  // Superstep-granular recovery (§5.1: the on-disk state at a superstep
  // boundary is a consistent checkpoint).  Each recovery *unit* — init,
  // one superstep body, one reorganization, collect — runs under this
  // wrapper: on an unrecoverable IoError (a transfer that exhausted its
  // retry budget) the in-memory metadata (RNG, track allocators, message
  // chains, journaled context epoch) is rolled back to the unit's entry
  // and the unit re-executes.  Re-execution replays the exact same RNG
  // draws and track placements, so its writes overwrite whatever the
  // abandoned attempt left behind — torn blocks included — and a recovered
  // run's disk image is byte-identical to an undisturbed one.
  // --- Pipelined execution state (tentpole; inert when cfg_.pipeline is
  // off).  Two groups are resident at once: while group g computes, group
  // g+1's contexts and message arena blocks stream in and group g-1's
  // write-backs retire, all through the disk array's async token API.
  const bool pipelined = cfg_.pipeline;
  std::unique_ptr<util::ComputePool> pool;
  if (pipelined && cfg_.compute_threads > 1) {
    pool = std::make_unique<util::ComputePool>(cfg_.compute_threads - 1);
  }
  // Self-tuning: re-plan the compute-pool width at superstep boundaries
  // from the engine's stall/busy deltas.  Width is the one knob that is
  // safe to change mid-run — the on-disk layout and the call-indexed fault
  // schedule never depend on it, and costs are reduced in vproc order, so
  // results are identical at any width.
  std::optional<GroupTuner> tuner;
  if (cfg_.auto_tune && pipelined) {
    tuner.emplace(/*min_width=*/1,
                  /*max_width=*/std::max<std::size_t>(cfg_.compute_threads,
                                                      8));
  }
  if (pipelined) {
    // Bounded write-behind: at most 4 message write cycles (<= 4*D blocks)
    // ride behind the computing group before write_messages throttles.
    messages.enable_write_behind(4);
  }
  // Double-buffered staging slots, indexed by group parity.  The staging
  // buffers inside live for the whole run, so in-flight transfers never
  // reference memory owned by a dead stack frame.
  ContextStore::PendingIo ctx_read[2];
  ContextStore::PendingIo ctx_write[2];
  MessageStore::PendingFetch msg_fetch[2];
  // Kernel fixed buffers (uring engine): the slots above are the run's
  // long-lived I/O staging — size them to their steady-state maximum up
  // front and offer them to the backends, so context and message transfers
  // go out as READ_FIXED/WRITE_FIXED SQEs.  Non-uring backends decline the
  // hint (free); a buffer that later outgrows its registration silently
  // falls back to plain SQEs.  The guard unregisters before the slots are
  // destroyed — a stale registration could otherwise alias a future run's
  // allocations at the same addresses.
  struct RegGuard {
    em::DiskArray* d = nullptr;
    ~RegGuard() {
      if (d != nullptr) d->register_io_buffers({});
    }
  } reg_guard;
  if (pipelined) {
    const std::size_t ctx_bytes = layout.k * layout.context_slot_bytes;
    // Hierarchical plans fetch leaf slabs out of scratch, so the staging
    // slot is sized by the leaf scratch capacity, not the (much larger)
    // routing-group capacity.
    const std::size_t msg_bytes =
        static_cast<std::size_t>(hier ? plan.leaf_capacity_blocks
                                      : layout.group_capacity) *
        cfg_.machine.em.B;
    std::vector<std::span<std::byte>> regions;
    for (int s = 0; s < 2; ++s) {
      ctx_read[s].buf.resize(ctx_bytes);
      ctx_write[s].buf.resize(ctx_bytes);
      msg_fetch[s].buf.resize(msg_bytes);
      regions.push_back({ctx_read[s].buf.data(), ctx_read[s].buf.size()});
      regions.push_back({ctx_write[s].buf.data(), ctx_write[s].buf.size()});
      regions.push_back({msg_fetch[s].buf.data(), msg_fetch[s].buf.size()});
    }
    if (disks_->register_io_buffers(regions) > 0) reg_guard.d = disks_.get();
  }

  // Buffers reused across groups and supersteps (no per-group churn).
  std::vector<std::vector<std::byte>> payloads;
  std::vector<std::vector<bsp::Message>> inboxes;
  std::vector<bsp::Message> outgoing;
  std::vector<State> states;
  states.reserve(layout.k);
  inboxes.reserve(layout.k);

  // Zero-copy path state: fetched payloads live in this arena (reset per
  // group — the previous group's compute has consumed its refs by then),
  // and outgoing refs point into the per-vproc outbox arenas, which stay
  // alive until the write phase has packed them.
  const bool zero_copy = cfg_.zero_copy;
  util::Arena inbox_arena;
  std::vector<bsp::MessageRef> incoming_refs;
  std::vector<std::vector<bsp::MessageRef>> inbox_refs;
  std::vector<bsp::MessageRef> outgoing_refs;
  std::uint64_t outbox_copied = 0;  // take() traffic (legacy path only)
  std::uint64_t arena_peak = 0;     // peak arena residency, all arenas

  // Per-virtual-processor compute results, filled by (possibly concurrent)
  // superstep() calls and reduced sequentially in vproc order so the cost
  // totals are independent of thread interleaving.
  struct VpStats {
    bool cont = false;
    std::uint64_t work = 0;
    std::uint64_t sent_packets = 0;
    std::uint64_t sent_wire = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t num_messages = 0;
    std::uint64_t recv_packets = 0;
    std::uint64_t recv_bytes = 0;
  };
  std::vector<VpStats> vp;
  std::vector<bsp::Outbox> outboxes;

  // Settles every in-flight token and abandons staged message cycles.
  // Must run before any exception leaves this frame (the transfers point
  // into the staging buffers above) and before recovery restores snapshots
  // (a late-landing write would corrupt the restored state).
  auto pipeline_quiesce = [&] {
    if (!pipelined) return;
    disks_->drain();
    messages.abandon_inflight();
    for (int s = 0; s < 2; ++s) {
      ctx_read[s].active = false;
      ctx_read[s].tokens.clear();
      ctx_write[s].active = false;
      ctx_write[s].tokens.clear();
      msg_fetch[s].active = false;
      msg_fetch[s].tokens.clear();
    }
  };

  std::uint64_t superstep_rollbacks = 0;
  std::uint64_t reorganize_rollbacks = 0;
  auto run_protected = [&](std::uint64_t& rollbacks, auto&& body) {
    if (!cfg_.superstep_recovery) {
      if (!pipelined) {
        body();
        return;
      }
      try {
        body();
      } catch (...) {
        pipeline_quiesce();
        throw;
      }
      return;
    }
    for (std::size_t attempt = 0;; ++attempt) {
      const util::Rng rng_ckpt = rng;
      const auto alloc_ckpt = alloc.snapshot();
      const auto msg_ckpt = messages.snapshot();
      try {
        body();
        contexts.commit_epoch();
        return;
      } catch (const em::IoError&) {
        pipeline_quiesce();
        if (attempt >= cfg_.max_superstep_retries) throw;
        rng = rng_ckpt;
        alloc.restore(alloc_ckpt);
        messages.restore(msg_ckpt);
        contexts.discard_epoch();
        ++rollbacks;
        record_rollback(rec, &rollbacks == &superstep_rollbacks
                                 ? "superstep"
                                 : "reorganize");
      } catch (...) {
        pipeline_quiesce();
        throw;
      }
    }
  };

  // --- Durable checkpoint/restart (see sim/checkpoint.hpp) ----------------
  const std::uint64_t config_fp = config_fingerprint(cfg_);
  std::optional<CheckpointDir> ckpt;
  bool ckpt_write = false;
  std::optional<CheckpointDir::Loaded> loaded;
  if (cfg_.checkpoint.enabled()) {
    ckpt.emplace(cfg_.checkpoint.dir);
    ckpt_write = true;
    if (cfg_.checkpoint.resume) {
      const auto m = ckpt->manifest();
      if (m.has_value() && m->run_index > cfg_.checkpoint.run_index) {
        // The checkpointed process crashed in a *later* run of this
        // workload, so this run completed before the crash.  Re-execute it
        // deterministically and leave the later run's checkpoint alone.
        ckpt_write = false;
      } else {
        loaded = ckpt->load(cfg_.checkpoint.run_index, config_fp);
      }
    }
  }
  // Resumed bookkeeping baselines: counters the fresh engine/fault state
  // restarts at zero, carried over from the checkpointed run so final
  // totals match an uninterrupted run.
  std::uint64_t base_io_retries = 0;
  std::uint64_t base_io_giveups = 0;
  em::FaultCounts base_faults;
  std::uint64_t checkpoints_published = 0;
  // The complete resumable state at the current superstep boundary: replay
  // header (bookkeeping accumulated so far) + the substrate record.
  auto save_run_state = [&](std::uint64_t next_step) {
    util::Writer w;
    w.write<std::uint64_t>(next_step);
    w.write_vector(result.costs.supersteps);
    w.write_vector(result.per_superstep_io);
    w.write<RoutingStats>(result.routing_stats);
    w.write<PhaseIo>(result.phase_io);
    w.write<std::uint64_t>(superstep_rollbacks);
    w.write<std::uint64_t>(reorganize_rollbacks);
    w.write<std::uint64_t>(base_io_retries +
                           disks_->engine_stats().total_retries());
    w.write<std::uint64_t>(base_io_giveups +
                           disks_->engine_stats().total_giveups());
    em::FaultCounts fc = base_faults;
    if (fault_counters_ != nullptr) fc += em::snapshot(*fault_counters_);
    w.write<em::FaultCounts>(fc);
    w.write<std::uint64_t>(outbox_copied);
    w.write<std::uint64_t>(arena_peak);
    save_proc_state(w, *disks_, alloc, contexts, messages, rng);
    return w.take();
  };
  auto publish_checkpoint = [&](std::uint64_t next_step) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto payload = save_run_state(next_step);
    ckpt->publish(cfg_.checkpoint.run_index, next_step, payload, config_fp);
    ++checkpoints_published;
    record_checkpoint(
        rec, checkpoints_published, payload.size(),
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
  };

  std::size_t start_step = 0;
  if (loaded.has_value()) {
    // Resume: reinstate the bookkeeping and substrate exactly as the
    // checkpointed run left them at the boundary, then continue the
    // superstep loop from there (init already happened in the first life).
    util::Reader r(loaded->payload);
    start_step = static_cast<std::size_t>(r.read<std::uint64_t>());
    result.costs.supersteps = r.read_vector<bsp::SuperstepCost>();
    result.per_superstep_io = r.read_vector<em::IoStats>();
    result.routing_stats = r.read<RoutingStats>();
    result.phase_io = r.read<PhaseIo>();
    superstep_rollbacks = r.read<std::uint64_t>();
    reorganize_rollbacks = r.read<std::uint64_t>();
    base_io_retries = r.read<std::uint64_t>();
    base_io_giveups = r.read<std::uint64_t>();
    base_faults = r.read<em::FaultCounts>();
    outbox_copied = r.read<std::uint64_t>();
    arena_peak = r.read<std::uint64_t>();
    load_proc_state(r, *disks_, alloc, contexts, messages, rng);
    if (!r.exhausted()) {
      throw std::runtime_error("checkpoint: trailing bytes in payload");
    }
    result.recovery.resume_epoch = loaded->epoch;
  } else {
    // Write initial contexts, one group at a time (never more than k
    // contexts in memory — the EM discipline applies to setup too).
    run_protected(superstep_rollbacks, [&] {
      ObsPhase phase(rec, "init", *disks_, &result.phase_io.init);
      for (std::uint32_t gidx = 0; gidx < num_groups; ++gidx) {
        const std::uint32_t first = gidx * k;
        const std::uint32_t count = std::min(k, v - first);
        // Serialize straight into the store's block-aligned staging buffer.
        contexts.write(first, count, [&](std::uint32_t ctx, util::Writer& w) {
          make_state(ctx).serialize(w);
        });
      }
    });
  }

  const auto group_of = [route_k](std::uint32_t dst) {
    return dst / route_k;
  };
  // Submit group g's context reads and arena fetches into its parity slot.
  auto submit_prefetch = [&](std::uint32_t g) {
    const int slot = static_cast<int>(g & 1);
    const std::uint32_t pf = g * k;
    const std::uint32_t pc = std::min(k, v - pf);
    contexts.read_submit(pf, pc, ctx_read[slot]);
    messages.fetch_group_submit(g, msg_fetch[slot]);
  };
  bool all_done = false;

  for (std::size_t step = start_step; !all_done; ++step) {
    if (step >= cfg_.max_supersteps) {
      throw std::runtime_error(
          "SeqSimulator: superstep limit exceeded (runaway program?)");
    }
    const auto superstep_before = snapshot();
    bsp::SuperstepCost cost;
    bool any_continue = false;

    // One recovery unit: the whole superstep body (all groups' fetch /
    // compute / write).  Its reads touch only committed state — the arena
    // written by the previous reorganize and the committed context bank —
    // so re-execution after a rollback sees exactly the original inputs.
    run_protected(superstep_rollbacks, [&] {
    cost = bsp::SuperstepCost{};
    any_continue = false;

    if (pipelined) submit_prefetch(0);

    for (std::uint32_t gidx = 0; gidx < num_groups; ++gidx) {
      const std::uint32_t first = gidx * k;
      const std::uint32_t count = std::min(k, v - first);
      const int cur = static_cast<int>(gidx & 1);

      // --- Fetching Phase: steps 1(a) and 1(b) ---
      // Zero-copy: the previous group's compute has consumed its refs, so
      // the inbox arena can recycle before this group's fetch fills it.
      if (zero_copy) inbox_arena.reset();
      std::vector<bsp::Message> incoming;
      if (pipelined) {
        {
          ObsPhase phase(rec, "prefetch_ctx", *disks_,
                         &result.phase_io.fetch_ctx);
          contexts.read_wait(ctx_read[cur], payloads);
        }
        {
          ObsPhase phase(rec, "prefetch_msg", *disks_,
                         &result.phase_io.fetch_msg);
          if (zero_copy) {
            incoming_refs =
                messages.fetch_group_wait_refs(msg_fetch[cur], inbox_arena);
          } else {
            incoming = messages.fetch_group_wait(msg_fetch[cur]);
          }
        }
        // Read-ahead: group g+1's transfers overlap group g's compute.
        if (gidx + 1 < num_groups) submit_prefetch(gidx + 1);
      } else {
        {
          ObsPhase phase(rec, "fetch_ctx", *disks_,
                         &result.phase_io.fetch_ctx);
          contexts.read_into(first, count, payloads);
        }
        ObsPhase phase(rec, "fetch_msg", *disks_, &result.phase_io.fetch_msg);
        if (zero_copy) {
          incoming_refs = messages.fetch_group_refs(gidx, inbox_arena);
        } else {
          incoming = messages.fetch_group(gidx);
        }
      }

      if (zero_copy) {
        if (inbox_refs.size() < count) inbox_refs.resize(count);
        for (std::uint32_t i = 0; i < count; ++i) inbox_refs[i].clear();
        for (const auto& m : incoming_refs) {
          if (m.dst < first || m.dst >= first + count) {
            throw std::runtime_error(
                "SeqSimulator: message routed to the wrong group");
          }
          inbox_refs[m.dst - first].push_back(m);
        }
      } else {
        if (inboxes.size() < count) inboxes.resize(count);
        for (std::uint32_t i = 0; i < count; ++i) inboxes[i].clear();
        for (auto& m : incoming) {
          if (m.dst < first || m.dst >= first + count) {
            throw std::runtime_error(
                "SeqSimulator: message routed to the wrong group");
          }
          inboxes[m.dst - first].push_back(std::move(m));
        }
      }

      // --- Computation Phase: step 1(c) ---
      states.clear();
      states.resize(count);
      vp.assign(count, VpStats{});
      outboxes.clear();
      for (std::uint32_t i = 0; i < count; ++i) {
        outboxes.emplace_back(first + i, v);
      }
      outgoing.clear();
      outgoing_refs.clear();
      {
        // Wall-clock-only span: compute does no I/O, so there is no PhaseIo
        // slot for it.
        ObsPhase compute_phase(rec, "compute", *disks_, nullptr);
        // Each task touches only index-i data; costs are reduced below in
        // vproc order, so the totals are identical inline or pooled.
        auto task = [&](std::size_t i) {
          util::Reader r(payloads[i]);
          states[i].deserialize(r);
          bsp::Inbox in = zero_copy ? bsp::Inbox(std::move(inbox_refs[i]))
                                    : bsp::Inbox(std::move(inboxes[i]));
          bsp::WorkMeter m;
          bsp::ProcEnv env{first + static_cast<std::uint32_t>(i), v, &m};
          VpStats& s = vp[i];
          s.cont = prog.superstep(step, env, states[i], in, outboxes[i]);
          s.work = m.total();
          for (const auto& msg : outboxes[i].messages()) {
            s.sent_packets +=
                bsp::packets_for(msg.size_bytes(), cfg_.machine.bsp.b);
            s.sent_wire += bsp::wire_bytes(msg.size_bytes());
          }
          s.bytes_sent = outboxes[i].total_bytes();
          s.num_messages = outboxes[i].messages().size();
          for (const auto& msg : in.all()) {
            s.recv_packets +=
                bsp::packets_for(msg.size_bytes(), cfg_.machine.bsp.b);
            s.recv_bytes += msg.size_bytes();
          }
        };
        if (pool != nullptr) {
          pool->run(count, task);
        } else {
          for (std::uint32_t i = 0; i < count; ++i) task(i);
        }
      }  // end compute span

      // Sequential reduction in vproc order — cost accounting identical to
      // DirectRuntime (and independent of the compute interleaving).
      for (std::uint32_t i = 0; i < count; ++i) {
        const VpStats& s = vp[i];
        any_continue = any_continue || s.cont;
        cost.max_work = std::max(cost.max_work, s.work);
        cost.total_work += s.work;
        if (s.sent_wire > cfg_.gamma) {
          throw std::runtime_error(
              "SeqSimulator: processor " + std::to_string(first + i) +
              " sent " + std::to_string(s.sent_wire) +
              " bytes in one superstep, exceeding the declared gamma = " +
              std::to_string(cfg_.gamma));
        }
        cost.max_bytes_sent = std::max(cost.max_bytes_sent, s.bytes_sent);
        cost.max_packets_sent =
            std::max(cost.max_packets_sent, s.sent_packets);
        cost.max_wire_sent = std::max(cost.max_wire_sent, s.sent_wire);
        cost.max_bytes_received =
            std::max(cost.max_bytes_received, s.recv_bytes);
        cost.max_packets_received =
            std::max(cost.max_packets_received, s.recv_packets);
        cost.total_bytes += s.bytes_sent;
        cost.num_messages += s.num_messages;
        if (zero_copy) {
          // Refs stay valid through the write phase below: the outboxes
          // (and their arenas) outlive this group's write_message_refs.
          for (const auto& m : outboxes[i].messages()) {
            outgoing_refs.push_back(m);
          }
          arena_peak = std::max<std::uint64_t>(
              arena_peak, outboxes[i].arena_high_water());
        } else {
          for (auto& m : outboxes[i].take()) outgoing.push_back(std::move(m));
          outbox_copied += outboxes[i].bytes_copied();
        }
      }
      arena_peak = std::max<std::uint64_t>(arena_peak,
                                           inbox_arena.high_water());

      // --- Writing Phase: steps 1(d) and 1(e) ---
      {
        ObsPhase phase(rec, pipelined ? "writeback_msg" : "write_msg",
                       *disks_, &result.phase_io.write_msg);
        if (zero_copy) {
          messages.write_message_refs(outgoing_refs, group_of, rng);
        } else {
          messages.write_messages(outgoing, group_of, rng);
        }
      }

      {
        ObsPhase phase(rec, pipelined ? "writeback_ctx" : "write_ctx",
                       *disks_, &result.phase_io.write_ctx);
        auto emit = [&](std::uint32_t ctx, util::Writer& w) {
          states[ctx - first].serialize(w);
        };
        if (pipelined) {
          // Retire group g-2's context write-backs, then submit group g's;
          // the writes overlap the following groups' compute.
          contexts.write_wait(ctx_write[cur]);
          contexts.write_submit(first, count, emit, ctx_write[cur]);
        } else {
          contexts.write(first, count, emit);
        }
      }
    }

    if (pipelined) {
      // Drain the pipeline: the last two groups' context write-backs and
      // every in-flight message write cycle.
      {
        ObsPhase phase(rec, "writeback_ctx", *disks_,
                       &result.phase_io.write_ctx);
        contexts.write_wait(ctx_write[num_groups & 1]);
        contexts.write_wait(ctx_write[(num_groups + 1) & 1]);
      }
      ObsPhase phase(rec, "writeback_msg", *disks_,
                     &result.phase_io.write_msg);
      messages.quiesce();
    }
    });  // end superstep-body recovery unit

    // --- Step 2: SimulateRouting ---
    // Its own recovery unit: reorganize drains the bucket chains
    // destructively and overwrites the arena (this superstep's *input*), so
    // rolling it back needs the chains snapshot taken at its entry — not
    // the superstep's.  Consolidation and arena writes go to fixed
    // locations, hence replaying them is idempotent.
    run_protected(reorganize_rollbacks, [&] {
      ObsPhase phase(rec, "reorganize", *disks_,
                     &result.phase_io.reorganize);
      result.routing_stats += messages.reorganize(rng);
    });

    result.costs.supersteps.push_back(cost);
    result.per_superstep_io.push_back(
        disks_->stats().since(superstep_before));
    if (!any_continue) {
      // Messages sent in the final superstep have no receiver.  (The store
      // counts at routing-group granularity, valid in flat and hierarchical
      // mode alike — nothing has been fetched from this reorganize yet.)
      if (messages.undelivered_real_blocks() != 0) {
        throw std::runtime_error(
            "SeqSimulator: messages sent in the final superstep were "
            "never received");
      }
      all_done = true;
    }

    // --- Superstep boundary: the only re-planning point ------------------
    // Adapting between supersteps keeps the call-indexed fault schedule
    // aligned within each superstep run; recreating the pool is the
    // adaptation mechanism (its threads hold no simulation state).
    if (tuner.has_value() && !all_done) {
      const std::size_t cur = pool != nullptr ? pool->width() : 1;
      const std::size_t next = tuner->recommend(disks_->engine_stats(), cur);
      if (next != cur) {
        pool.reset();
        if (next > 1) pool = std::make_unique<util::ComputePool>(next - 1);
      }
    }

    // --- Superstep boundary: durability point (§5.1) ---------------------
    // The reorganize above committed this superstep's state, so the disks
    // hold a consistent snapshot.  Publish a checkpoint when one is due (or
    // when we are stopping early), then honor cooperative cancellation.
    const bool canceled = cfg_.cancel != nullptr &&
                          cfg_.cancel->load(std::memory_order_relaxed);
    if (ckpt.has_value() && ckpt_write && !all_done &&
        (canceled || (step + 1) % cfg_.checkpoint.every == 0)) {
      publish_checkpoint(step + 1);
    }
    if (canceled && !all_done) {
      throw CanceledError("SeqSimulator: canceled at superstep boundary " +
                          std::to_string(step + 1));
    }
  }

  // Collect results, group by group.  Read-only, but reads can still
  // exhaust the retry budget; `collect` callbacks may run again after a
  // rollback (same first..first+count prefix, same states).
  {
    ObsPhase phase(rec, "collect", *disks_, &result.phase_io.collect);
    run_protected(superstep_rollbacks, [&] {
      for (std::uint32_t gidx = 0; gidx < num_groups; ++gidx) {
        const std::uint32_t first = gidx * k;
        const std::uint32_t count = std::min(k, v - first);
        contexts.read_into(first, count, payloads);
        for (std::uint32_t i = 0; i < count; ++i) {
          State s;
          util::Reader r(payloads[i]);
          s.deserialize(r);
          collect(first + i, s);
        }
      }
    });
  }

  // Flush barrier: every issued transfer has completed (the engine joins
  // per operation); this pushes file-backend buffers to the medium so the
  // backing files are externally consistent when run() returns.
  disks_->sync();
  disks_->harvest_backend_stats();  // fold ring counters into engine stats
  result.routing_stats.distribute_cycles += messages.distribute_cycles();
  result.total_io = disks_->stats();
  result.max_tracks_per_disk = disks_->max_tracks_used();
  {
    // Compute/I/O overlap achieved by the engine: the fraction of the
    // busiest disk's transfer time NOT spent blocking the simulator thread.
    // (The serial engine executes inline, so its stall equals its busy time
    // and the ratio reads ~0.)
    const auto& eng = disks_->engine_stats();
    const std::uint64_t busy = eng.max_busy_ns();
    if (busy > 0) {
      const double r =
          1.0 - static_cast<double>(eng.stall_ns) / static_cast<double>(busy);
      result.overlap_ratio = std::clamp(r, 0.0, 1.0);
    }
  }
  result.recovery.io_retries =
      base_io_retries + disks_->engine_stats().total_retries();
  result.recovery.io_giveups =
      base_io_giveups + disks_->engine_stats().total_giveups();
  result.recovery.superstep_rollbacks = superstep_rollbacks;
  result.recovery.reorganize_rollbacks = reorganize_rollbacks;
  result.recovery.checkpoints = checkpoints_published;
  result.recovery.faults = base_faults;
  if (fault_counters_ != nullptr) {
    result.recovery.faults += em::snapshot(*fault_counters_);
  }
  if (rec != nullptr) {
    auto& reg = rec->registry;
    em::export_metrics(disks_->engine_stats(), reg, "engine.");
    export_routing_stats(reg, result.routing_stats);
    export_recovery_stats(reg, result.recovery);
    reg.add("sim.supersteps", result.costs.num_supersteps());
    reg.set_gauge("sim.group_size", static_cast<double>(result.group_size));
    reg.set_gauge("sim.max_tracks_per_disk",
                  static_cast<double>(result.max_tracks_per_disk));
    reg.set_gauge("sim.overlap_ratio", result.overlap_ratio);
    // Copy discipline: staging bytes that crossed a memcpy (block staging
    // plus legacy outbox materialization) and peak arena residency.
    reg.add("sim.bytes_copied", messages.bytes_copied() + outbox_copied);
    reg.set_gauge("sim.arena_bytes", static_cast<double>(arena_peak));
    reg.set_gauge("sim.in_memory_routing",
                  messages.in_memory_routing() ? 1.0 : 0.0);
    LayoutPlanner::export_plan(reg, plan, cfg_);
    if (tuner.has_value()) {
      reg.set_gauge("sim.layout.replans",
                    static_cast<double>(tuner->replans()));
      reg.set_gauge("sim.layout.compute_width",
                    static_cast<double>(pool != nullptr ? pool->width()
                                                        : 1));
    }
  }
  return result;
}

}  // namespace embsp::sim
