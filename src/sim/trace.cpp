#include "sim/trace.hpp"

namespace embsp::sim {

void write_cost_csv(std::ostream& out, const bsp::RunCosts& costs,
                    const std::vector<em::IoStats>* per_superstep_io) {
  out << "superstep,max_work,total_work,max_bytes_sent,max_bytes_received,"
         "max_packets_sent,max_packets_received,total_bytes,num_messages";
  if (per_superstep_io != nullptr) {
    out << ",parallel_ios,blocks_read,blocks_written";
  }
  out << '\n';
  for (std::size_t i = 0; i < costs.supersteps.size(); ++i) {
    const auto& s = costs.supersteps[i];
    out << i << ',' << s.max_work << ',' << s.total_work << ','
        << s.max_bytes_sent << ',' << s.max_bytes_received << ','
        << s.max_packets_sent << ',' << s.max_packets_received << ','
        << s.total_bytes << ',' << s.num_messages;
    if (per_superstep_io != nullptr && i < per_superstep_io->size()) {
      const auto& io = (*per_superstep_io)[i];
      out << ',' << io.parallel_ios << ',' << io.blocks_read << ','
          << io.blocks_written;
    } else if (per_superstep_io != nullptr) {
      out << ",,,";
    }
    out << '\n';
  }
}

void write_cost_csv(std::ostream& out, const SimResult& result) {
  write_cost_csv(out, result.costs,
                 result.per_superstep_io.empty() ? nullptr
                                                 : &result.per_superstep_io);
}

}  // namespace embsp::sim
