#include "sim/message_store.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "em/fault_backend.hpp"

namespace embsp::sim {

MessageStore::MessageStore(em::DiskArray& disks, em::TrackAllocators& alloc,
                           MessageStoreConfig cfg)
    : disks_(&disks),
      alloc_(&alloc),
      cfg_(cfg),
      block_size_(disks.block_size()),
      num_disks_(static_cast<std::uint32_t>(disks.num_disks())),
      gpb_((cfg.num_groups + num_disks_ - 1) / num_disks_),
      bucket_cap_(static_cast<std::uint64_t>(gpb_) *
                  cfg.group_capacity_blocks),
      cap_rows_((bucket_cap_ + num_disks_ - 1) / num_disks_),
      buckets_(disks, alloc, num_disks_),
      rr_next_(num_disks_, 0),
      staged_count_(cfg.num_groups, 0),
      staged_real_(cfg.num_groups, 0),
      ready_count_(cfg.num_groups, 0),
      ready_real_(cfg.num_groups, 0),
      ready_base_(cfg.num_groups, 0) {
  if (cfg.num_groups == 0) {
    throw std::invalid_argument("MessageStore: need at least one group");
  }
  if (block_size_ < kMinBlockSize) {
    throw std::invalid_argument("MessageStore: block size below minimum (" +
                                std::to_string(kMinBlockSize) + " bytes)");
  }
  if (cfg_.leaf_fanout > 1) {
    if (!cfg_.leaf_of || cfg_.num_leaf_groups == 0 ||
        cfg_.leaf_capacity_blocks == 0) {
      throw std::invalid_argument(
          "MessageStore: hierarchical mode needs leaf_of, num_leaf_groups "
          "and leaf_capacity_blocks");
    }
  }
  // RoutingMode::automatic: when every group's worst-case receive volume
  // provably fits in the staging budget, routing never needs the disk at
  // all — Algorithm 2 exists only because buckets exceed M (Fig. 2).
  // Insufficient budget degrades to compact behavior (the default branches
  // below), so requesting automatic is always safe.  A super-group existing
  // at all means the exchange exceeds M, so the hierarchical schedule never
  // takes the in-memory path.
  if (cfg_.mode == RoutingMode::automatic && cfg_.leaf_fanout <= 1) {
    const std::uint64_t worst_case =
        static_cast<std::uint64_t>(cfg_.num_groups) *
        cfg_.group_capacity_blocks * block_size_;
    mem_mode_ = cfg_.memory_budget_bytes >= worst_case;
  }
  if (mem_mode_) {
    // No disk regions needed: staging and delivery both live in memory.
    mem_staged_.resize(cfg_.num_groups);
    mem_ready_.resize(cfg_.num_groups);
    consolidation_start_.assign(num_disks_, 0);
    arena_start_.assign(num_disks_, 0);
    return;
  }
  // Consolidation region: bucket d gathers on disk d (step 1 of Alg. 2).
  consolidation_start_.resize(num_disks_);
  for (std::uint32_t d = 0; d < num_disks_; ++d) {
    consolidation_start_[d] = (*alloc_)[d].reserve_region(bucket_cap_);
  }
  // Arena: one slab of cap_rows tracks per bucket on every disk.
  const std::uint64_t arena_tracks =
      static_cast<std::uint64_t>(num_disks_) * cap_rows_;
  arena_start_.resize(num_disks_);
  for (std::uint32_t d = 0; d < num_disks_; ++d) {
    arena_start_[d] = (*alloc_)[d].reserve_region(arena_tracks);
  }
  // Scratch for the multi-level distribution pass: one slab of leaf_rows
  // tracks per local leaf on every disk, striped like the arena so a leaf
  // fetch reads fully disk-parallel.
  if (cfg_.leaf_fanout > 1) {
    leaf_rows_ = (cfg_.leaf_capacity_blocks + num_disks_ - 1) / num_disks_;
    const std::uint64_t scratch_tracks =
        static_cast<std::uint64_t>(cfg_.leaf_fanout) * leaf_rows_;
    scratch_start_.resize(num_disks_);
    for (std::uint32_t d = 0; d < num_disks_; ++d) {
      scratch_start_[d] = (*alloc_)[d].reserve_region(scratch_tracks);
    }
    leaf_ready_.assign(cfg_.leaf_fanout, 0);
  }
}

std::uint32_t MessageStore::bucket_of_group(std::uint32_t g) const {
  return g / gpb_;
}

std::pair<std::uint32_t, std::uint64_t> MessageStore::arena_location(
    std::uint32_t bucket, std::uint64_t t) const {
  const auto disk = static_cast<std::uint32_t>((bucket + t) % num_disks_);
  const std::uint64_t track = arena_start_[disk] +
                              static_cast<std::uint64_t>(bucket) * cap_rows_ +
                              t / num_disks_;
  return {disk, track};
}

std::pair<std::uint32_t, std::uint64_t> MessageStore::scratch_location(
    std::uint32_t li, std::uint64_t t) const {
  const auto disk = static_cast<std::uint32_t>((li + t) % num_disks_);
  const std::uint64_t track = scratch_start_[disk] +
                              static_cast<std::uint64_t>(li) * leaf_rows_ +
                              t / num_disks_;
  return {disk, track};
}

void MessageStore::stage_account(std::uint32_t group, bool dummy) {
  if (group >= cfg_.num_groups) {
    throw std::out_of_range("MessageStore: destination group " +
                            std::to_string(group));
  }
  if (staged_count_[group] >= cfg_.group_capacity_blocks) {
    throw std::runtime_error(
        "MessageStore: group " + std::to_string(group) +
        " exceeded its receive capacity of " +
        std::to_string(cfg_.group_capacity_blocks) +
        " blocks — the program communicates more than the declared gamma");
  }
  ++staged_count_[group];
  if (!dummy) ++staged_real_[group];
}

void MessageStore::stage(std::uint32_t group, std::span<const std::byte> block,
                         util::Rng& rng) {
  stage_account(group, is_dummy_block(block));
  bytes_copied_ += block.size();
  if (mem_mode_) {
    mem_staged_[group].emplace_back(block.begin(), block.end());
    return;
  }
  pending_.push_back(
      {bucket_of_group(group),
       std::vector<std::byte>(block.begin(), block.end())});
  if (pending_.size() == num_disks_) flush(rng);
}

std::span<std::byte> MessageStore::stage_alloc(std::uint32_t group,
                                               util::Rng& rng) {
  // Completing the previous block may have filled the write cycle; flush
  // BEFORE accounting the next block so the RNG-draw order matches the
  // copying path (which flushes inside stage(), right after its push).
  if (!mem_mode_ && pending_.size() == num_disks_) flush(rng);
  stage_account(group, /*dummy=*/false);
  if (mem_mode_) {
    mem_staged_[group].emplace_back(block_size_);
    return {mem_staged_[group].back().data(), block_size_};
  }
  pending_.push_back(
      {bucket_of_group(group), std::vector<std::byte>(block_size_)});
  return {pending_.back().data.data(), block_size_};
}

void MessageStore::write_messages(
    std::span<const bsp::Message> messages,
    const std::function<std::uint32_t(std::uint32_t)>& group_of,
    util::Rng& rng) {
  // Partition messages by destination group, then pack each group's
  // messages into blocks ("each block inherits the destination address").
  std::vector<std::vector<const bsp::Message*>> per_group;
  for (const auto& m : messages) {
    const std::uint32_t g = group_of(m.dst);
    if (g >= cfg_.num_groups) {
      throw std::out_of_range("MessageStore: message to unknown group " +
                              std::to_string(g));
    }
    if (per_group.size() <= g) per_group.resize(g + 1);
    per_group[g].push_back(&m);
  }
  for (std::uint32_t g = 0; g < per_group.size(); ++g) {
    if (per_group[g].empty()) continue;
    pack_blocks(per_group[g], g, block_size_,
                [&](std::span<const std::byte> block) {
                  stage(g, block, rng);
                });
  }
}

void MessageStore::write_message_refs(
    std::span<const bsp::MessageRef> messages,
    const std::function<std::uint32_t(std::uint32_t)>& group_of,
    util::Rng& rng) {
  std::vector<std::vector<bsp::MessageRef>> per_group;
  for (const auto& m : messages) {
    const std::uint32_t g = group_of(m.dst);
    if (g >= cfg_.num_groups) {
      throw std::out_of_range("MessageStore: message to unknown group " +
                              std::to_string(g));
    }
    if (per_group.size() <= g) per_group.resize(g + 1);
    per_group[g].push_back(m);
  }
  for (std::uint32_t g = 0; g < per_group.size(); ++g) {
    if (per_group[g].empty()) continue;
    pack_blocks_into(per_group[g], g, block_size_,
                     [&]() { return stage_alloc(g, rng); });
    // The copying path flushes inside stage() the moment a cycle fills;
    // mirror that here in case this group's last block completed one.
    if (!mem_mode_ && pending_.size() == num_disks_) flush(rng);
  }
}

void MessageStore::write_block(std::span<const std::byte> block,
                               util::Rng& rng) {
  const BlockHeader h = parse_header(block);
  stage(h.dst_group, block, rng);
}

void MessageStore::write_block(std::vector<std::byte>&& block,
                               util::Rng& rng) {
  const BlockHeader h = parse_header(block);
  stage_account(h.dst_group, is_dummy_block(block));
  if (mem_mode_) {
    mem_staged_[h.dst_group].push_back(std::move(block));
    return;
  }
  pending_.push_back({bucket_of_group(h.dst_group), std::move(block)});
  if (pending_.size() == num_disks_) flush(rng);
}

void MessageStore::flush(util::Rng& rng) {
  if (pending_.empty()) return;
  // In write-behind mode the cycles of this flush are submitted, not
  // waited: the block payloads migrate into an InFlightCycle record that
  // keeps them alive until their tokens settle.  Placement (permutation
  // draws, round-robin cursors, track allocation) happens at submission in
  // call order either way, so both modes produce the same disk image.
  std::vector<em::DiskArray::IoToken> tokens;
  if (cfg_.mode == RoutingMode::deterministic) {
    // Round-robin per bucket: each bucket's blocks are spread over the
    // disks exactly evenly, no randomness.  Blocks whose assigned disks
    // collide within this flush go out in separate parallel I/Os.
    std::vector<std::pair<std::uint32_t, const PendingBlock*>> assigned;
    assigned.reserve(pending_.size());
    for (const auto& p : pending_) {
      const auto disk =
          static_cast<std::uint32_t>(rr_next_[p.bucket]++ % num_disks_);
      assigned.emplace_back(disk, &p);
    }
    std::vector<std::uint8_t> done(assigned.size(), 0);
    std::size_t remaining = assigned.size();
    while (remaining > 0) {
      std::vector<em::LinkedBuckets::OutBlock> cycle;
      std::vector<std::uint32_t> cycle_disks;
      std::vector<std::size_t> cycle_idx;
      std::vector<std::uint8_t> disk_used(num_disks_, 0);
      for (std::size_t i = 0; i < assigned.size(); ++i) {
        if (done[i] || disk_used[assigned[i].first]) continue;
        disk_used[assigned[i].first] = 1;
        cycle.push_back({assigned[i].second->bucket,
                         assigned[i].second->data});
        cycle_disks.push_back(assigned[i].first);
        cycle_idx.push_back(i);
      }
      if (write_behind_ > 0) {
        tokens.push_back(
            buckets_.submit_write_cycle_assigned(cycle, cycle_disks));
      } else {
        buckets_.write_cycle_assigned(cycle, cycle_disks);
      }
      for (auto i : cycle_idx) {
        done[i] = 1;
        --remaining;
      }
    }
  } else {
    std::vector<em::LinkedBuckets::OutBlock> out;
    out.reserve(pending_.size());
    for (const auto& p : pending_) {
      out.push_back({p.bucket, p.data});
    }
    if (write_behind_ > 0) {
      tokens.push_back(buckets_.submit_write_cycle(out, rng));
    } else {
      buckets_.write_cycle(out, rng);
    }
  }
  if (write_behind_ == 0) {
    pending_.clear();
    return;
  }
  InFlightCycle cycle;
  cycle.tokens = std::move(tokens);
  cycle.blocks = std::move(pending_);
  inflight_.push_back(std::move(cycle));
  if (!cycle_pool_.empty()) {
    pending_ = std::move(cycle_pool_.back());
    cycle_pool_.pop_back();
  } else {
    pending_ = {};
  }
  pending_.clear();
  while (inflight_.size() > write_behind_) retire_oldest_inflight();
}

void MessageStore::enable_write_behind(std::size_t max_inflight) {
  if (max_inflight == 0 && !inflight_.empty()) quiesce();
  write_behind_ = max_inflight;
}

void MessageStore::retire_oldest_inflight() {
  InFlightCycle cycle = std::move(inflight_.front());
  inflight_.pop_front();
  // Settle EVERY token before letting the payload buffers die, even when
  // one throws — a sibling token of the same cycle still references the
  // blocks until it settles.
  std::exception_ptr first;
  for (const auto t : cycle.tokens) {
    try {
      disks_->wait(t);
    } catch (...) {
      if (first == nullptr) first = std::current_exception();
    }
  }
  cycle.blocks.clear();
  cycle_pool_.push_back(std::move(cycle.blocks));
  if (first != nullptr) std::rethrow_exception(first);
}

void MessageStore::quiesce() {
  while (!inflight_.empty()) retire_oldest_inflight();
}

void MessageStore::abandon_inflight() {
  for (auto& cycle : inflight_) {
    cycle.blocks.clear();
    cycle_pool_.push_back(std::move(cycle.blocks));
  }
  inflight_.clear();
}

RoutingStats MessageStore::reorganize(util::Rng& rng) {
  RoutingStats stats;

  // In-memory fast path: the staged blocks already sit in memory, grouped
  // by destination, so "reorganization" is a pointer handoff — Algorithm
  // 2's two passes (and their I/O) vanish, which is exactly the win the
  // automatic mode is after.
  if (mem_mode_) {
    for (std::uint32_t g = 0; g < cfg_.num_groups; ++g) {
      stats.blocks_total += staged_count_[g];
    }
    std::swap(mem_ready_, mem_staged_);
    for (auto& blocks : mem_staged_) blocks.clear();
    ready_count_ = staged_count_;
    ready_real_ = staged_real_;
    std::fill(staged_count_.begin(), staged_count_.end(), 0);
    std::fill(staged_real_.begin(), staged_real_.end(), 0);
    return stats;
  }

  // Padded mode realizes the paper's "introduce dummy blocks" device: every
  // group is filled to capacity so each superstep's routing cost is the
  // fixed worst case that Lemma 3 analyzes.
  if (cfg_.mode == RoutingMode::padded) {
    std::vector<std::byte> dummy;
    for (std::uint32_t g = 0; g < cfg_.num_groups; ++g) {
      while (staged_count_[g] < cfg_.group_capacity_blocks) {
        make_dummy_block(g, block_size_, dummy);
        stats.dummy_blocks += 1;
        stage(g, dummy, rng);
      }
    }
  }
  flush(rng);
  // With write-behind on, flush() may only have SUBMITTED the last cycles;
  // step 1 below reads those very tracks, so settle them first.
  if (write_behind_ > 0) quiesce();

  for (std::uint32_t g = 0; g < cfg_.num_groups; ++g) {
    stats.blocks_total += staged_count_[g];
  }
  for (std::uint32_t d = 0; d < num_disks_; ++d) {
    for (std::uint32_t q = 0; q < num_disks_; ++q) {
      stats.max_chain = std::max<std::uint64_t>(
          stats.max_chain, buckets_.blocks_on_disk(q, d));
    }
  }

  // Consolidated placement: within its bucket, group g's blocks occupy
  // t in [base[g], base[g] + staged[g]); base is the running prefix sum of
  // group sizes inside the bucket (fixed offsets in padded mode, where all
  // sizes equal the capacity).
  std::vector<std::uint64_t> base(cfg_.num_groups, 0);
  {
    std::uint64_t run = 0;
    std::uint32_t cur_bucket = 0;
    for (std::uint32_t g = 0; g < cfg_.num_groups; ++g) {
      if (bucket_of_group(g) != cur_bucket) {
        cur_bucket = bucket_of_group(g);
        run = 0;
      }
      base[g] = run;
      run += staged_count_[g];
      if (run > bucket_cap_) {
        throw std::runtime_error("MessageStore: bucket overflow (gamma bound "
                                 "violated)");
      }
    }
  }

  // ---- Step 1: copy bucket d onto disk d, staggered reads --------------
  //   "Read block b_d belonging to bucket d from disk ((d+j) mod D).
  //    Write block b_d to disk d on the next available track."
  std::vector<std::uint64_t> next_in_group = base;  // next consolidated slot
  std::vector<std::byte> buf(static_cast<std::size_t>(num_disks_) *
                             block_size_);
  std::vector<em::ReadOp> reads;
  std::vector<em::WriteOp> writes;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> popped;
  for (std::uint64_t j = 0;; ++j) {
    reads.clear();
    popped.clear();
    std::vector<std::uint32_t> read_buckets;
    for (std::uint32_t d = 0; d < num_disks_; ++d) {
      const auto src_disk =
          static_cast<std::uint32_t>((d + j) % num_disks_);
      if (auto track = buckets_.pop_track(d, src_disk)) {
        reads.push_back({src_disk, *track,
                         std::span<std::byte>(buf).subspan(
                             reads.size() * block_size_, block_size_)});
        popped.emplace_back(src_disk, *track);
        read_buckets.push_back(d);
      }
    }
    if (reads.empty()) {
      // All chains a full stagger cycle can see are empty only when every
      // chain is empty; confirm before stopping.
      bool empty = true;
      for (std::uint32_t q = 0; q < num_disks_ && empty; ++q) {
        for (std::uint32_t d = 0; d < num_disks_ && empty; ++d) {
          if (buckets_.blocks_on_disk(q, d) != 0) empty = false;
        }
      }
      if (empty) break;
      continue;  // this stagger offset found nothing; advance j
    }
    disks_->parallel_read(reads);
    stats.step1_cycles += 1;
    writes.clear();
    for (std::size_t i = 0; i < reads.size(); ++i) {
      const std::uint32_t d = read_buckets[i];
      auto block = std::span<const std::byte>(buf).subspan(i * block_size_,
                                                           block_size_);
      const BlockHeader h = parse_header(block);
      const std::uint64_t t = next_in_group[h.dst_group]++;
      writes.push_back({d, consolidation_start_[d] + t, block});
      buckets_.release_track(popped[i].first, popped[i].second);
    }
    disks_->parallel_write(writes);
  }

  // ---- Step 2: re-stripe each bucket across the disks -------------------
  //   "read the j-th block from disk d and write it to disk (d+j) mod D on
  //    track d*ceil(cap/D) + floor(j/D)."
  std::vector<std::uint64_t> bucket_total(num_disks_, 0);
  for (std::uint32_t g = 0; g < cfg_.num_groups; ++g) {
    bucket_total[bucket_of_group(g)] += staged_count_[g];
  }
  const std::uint64_t max_t =
      *std::max_element(bucket_total.begin(), bucket_total.end());
  for (std::uint64_t j = 0; j < max_t; ++j) {
    reads.clear();
    std::vector<std::uint32_t> read_buckets;
    for (std::uint32_t d = 0; d < num_disks_; ++d) {
      if (j >= bucket_total[d]) continue;
      reads.push_back({d, consolidation_start_[d] + j,
                       std::span<std::byte>(buf).subspan(
                           reads.size() * block_size_, block_size_)});
      read_buckets.push_back(d);
    }
    if (reads.empty()) break;
    disks_->parallel_read(reads);
    writes.clear();
    for (std::size_t i = 0; i < reads.size(); ++i) {
      const std::uint32_t d = read_buckets[i];
      const auto [disk, track] = arena_location(d, j);
      writes.push_back({disk, track,
                        std::span<const std::byte>(buf).subspan(
                            i * block_size_, block_size_)});
    }
    disks_->parallel_write(writes);
    stats.step2_cycles += 1;
  }

  // Hand the reorganized layout to the fetch side and reset staging.  The
  // distribution scratch (a pure cache over the arena) is invalidated: the
  // next leaf fetch re-cuts its super-group from the fresh layout.
  ready_count_ = staged_count_;
  ready_real_ = staged_real_;
  ready_base_ = base;
  dist_super_ = kNoSuper;
  std::fill(staged_count_.begin(), staged_count_.end(), 0);
  std::fill(staged_real_.begin(), staged_real_.end(), 0);
  return stats;
}

std::uint64_t MessageStore::group_blocks(std::uint32_t g) const {
  return ready_count_[g];
}

std::uint64_t MessageStore::group_real_blocks(std::uint32_t g) const {
  return ready_real_[g];
}

void MessageStore::submit_group_reads(
    std::uint32_t g, std::vector<std::byte>& buf,
    std::vector<em::DiskArray::IoToken>& tokens) {
  const std::uint32_t bucket = bucket_of_group(g);
  const std::uint64_t base = ready_base_[g];
  const std::uint64_t count = ready_count_[g];
  if (count == 0) return;
  const auto want = static_cast<std::size_t>(count) * block_size_;
  if (buf.size() < want) buf.resize(want);
  // One batched submission for the whole group, pre-declared at the model
  // cost the old <=D-batch loop charged: ceil(count/D) parallel I/Os (each
  // cycle reads one track per disk).  arena_location makes consecutive t on
  // one disk consecutive tracks, so the per-disk t-ascending op order below
  // coalesces into a single vectored backend transfer per drive.
  std::vector<em::ReadOp> reads;
  reads.reserve(count);
  for (std::uint64_t t = 0; t < count; ++t) {
    const auto [disk, track] = arena_location(bucket, base + t);
    reads.push_back({disk, track,
                     std::span<std::byte>(buf).subspan(t * block_size_,
                                                       block_size_)});
  }
  const std::uint64_t cycles = (count + num_disks_ - 1) / num_disks_;
  tokens.push_back(disks_->submit_read_batch(reads, cycles));
}

void MessageStore::distribute(std::uint32_t super) {
  if (!hierarchical()) {
    throw std::logic_error("MessageStore::distribute: flat schedule");
  }
  if (super >= cfg_.num_groups) {
    throw std::out_of_range("MessageStore: super-group " +
                            std::to_string(super));
  }
  if (dist_super_ == super) return;
  const std::uint32_t f = cfg_.leaf_fanout;
  std::fill(leaf_ready_.begin(), leaf_ready_.end(), 0);
  dist_super_ = super;

  // One block builder per local leaf plus one pending write per disk: the
  // resident working set of the whole pass is (2*D + f) blocks, bounded by
  // the plan regardless of the super-group's volume.
  std::vector<BlockBuilder> builders;
  builders.reserve(f);
  for (std::uint32_t li = 0; li < f; ++li) builders.emplace_back(block_size_);

  std::vector<PendingBlock> wpend;  // .bucket reused as the target disk
  std::vector<std::uint64_t> wtracks;
  std::vector<std::uint8_t> disk_used(num_disks_, 0);
  auto flush_writes = [&]() {
    if (wpend.empty()) return;
    std::vector<em::WriteOp> ops;
    ops.reserve(wpend.size());
    for (std::size_t i = 0; i < wpend.size(); ++i) {
      ops.push_back({wpend[i].bucket, wtracks[i], wpend[i].data});
    }
    disks_->parallel_write(ops);
    dist_cycles_ += 1;
    wpend.clear();
    wtracks.clear();
    std::fill(disk_used.begin(), disk_used.end(), 0);
  };
  auto emit_leaf_block = [&](std::uint32_t li) {
    const std::uint64_t t = leaf_ready_[li];
    if (t >= cfg_.leaf_capacity_blocks) {
      throw std::runtime_error(
          "MessageStore: leaf group scratch slab overflow — traffic exceeds "
          "the planned leaf capacity of " +
          std::to_string(cfg_.leaf_capacity_blocks) + " blocks");
    }
    const auto [disk, track] = scratch_location(li, t);
    if (disk_used[disk]) flush_writes();
    std::vector<std::byte> out;
    builders[li].take(super * f + li, out);
    wpend.push_back({disk, std::move(out)});
    wtracks.push_back(track);
    disk_used[disk] = 1;
    ++leaf_ready_[li];
  };

  // Stream the super-group's reorganized blocks through in <=D-block read
  // cycles, re-cutting each chunk record into its leaf's builder.
  const std::uint32_t bucket = bucket_of_group(super);
  const std::uint64_t base = ready_base_[super];
  const std::uint64_t count = ready_count_[super];
  std::vector<std::byte> buf(static_cast<std::size_t>(num_disks_) *
                             block_size_);
  for (std::uint64_t t0 = 0; t0 < count; t0 += num_disks_) {
    const auto n = static_cast<std::size_t>(
        std::min<std::uint64_t>(num_disks_, count - t0));
    std::vector<em::ReadOp> reads;
    reads.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto [disk, track] = arena_location(bucket, base + t0 + i);
      reads.push_back({disk, track,
                       std::span<std::byte>(buf).subspan(i * block_size_,
                                                         block_size_)});
    }
    disks_->parallel_read(reads);
    dist_cycles_ += 1;
    for (std::size_t i = 0; i < n; ++i) {
      const auto block = std::span<const std::byte>(buf).subspan(
          i * block_size_, block_size_);
      for_each_chunk(block, [&](std::span<const std::byte> record,
                                std::uint32_t dst) {
        const std::uint32_t leaf = cfg_.leaf_of(dst);
        if (leaf >= cfg_.num_leaf_groups || leaf / f != super) {
          throw em::CorruptBlockError(
              "MessageStore: chunk for leaf group " + std::to_string(leaf) +
              " found in super-group " + std::to_string(super));
        }
        const std::uint32_t li = leaf % f;
        if (!builders[li].fits(record.size())) {
          if (builders[li].empty()) {
            throw em::CorruptBlockError(
                "MessageStore: chunk record larger than a block");
          }
          emit_leaf_block(li);
        }
        builders[li].append(record);
      });
    }
  }
  for (std::uint32_t li = 0; li < f; ++li) {
    if (!builders[li].empty()) emit_leaf_block(li);
  }
  flush_writes();
}

void MessageStore::submit_leaf_reads(
    std::uint32_t li, std::vector<std::byte>& buf,
    std::vector<em::DiskArray::IoToken>& tokens) {
  const std::uint64_t count = leaf_ready_[li];
  if (count == 0) return;
  const auto want = static_cast<std::size_t>(count) * block_size_;
  if (buf.size() < want) buf.resize(want);
  std::vector<em::ReadOp> reads;
  reads.reserve(count);
  for (std::uint64_t t = 0; t < count; ++t) {
    const auto [disk, track] = scratch_location(li, t);
    reads.push_back({disk, track,
                     std::span<std::byte>(buf).subspan(t * block_size_,
                                                       block_size_)});
  }
  const std::uint64_t cycles = (count + num_disks_ - 1) / num_disks_;
  tokens.push_back(disks_->submit_read_batch(reads, cycles));
}

std::uint64_t MessageStore::undelivered_real_blocks() const {
  std::uint64_t n = 0;
  for (const auto c : ready_real_) n += c;
  return n;
}

void MessageStore::fetch_group_blocks(
    std::uint32_t g,
    const std::function<void(std::span<const std::byte>)>& consume) {
  if (mem_mode_) {
    for (const auto& block : mem_ready_[g]) consume(block);
    return;
  }
  std::uint64_t count;
  std::vector<em::DiskArray::IoToken> tokens;
  if (hierarchical()) {
    // g is a global leaf index: materialize its super-group in scratch
    // (no-op when already there), then read the leaf's slab.
    distribute(g / cfg_.leaf_fanout);
    const std::uint32_t li = g % cfg_.leaf_fanout;
    count = leaf_ready_[li];
    submit_leaf_reads(li, fetch_buf_, tokens);
  } else {
    count = ready_count_[g];
    submit_group_reads(g, fetch_buf_, tokens);
  }
  for (const auto t : tokens) disks_->wait(t);
  for (std::uint64_t t = 0; t < count; ++t) {
    consume(std::span<const std::byte>(fetch_buf_)
                .subspan(t * block_size_, block_size_));
  }
}

void MessageStore::fetch_group_submit(std::uint32_t g, PendingFetch& pf) {
  pf.tokens.clear();
  pf.group = g;
  pf.active = true;
  if (hierarchical()) {
    // Crossing into a new super-group re-cuts it through scratch here (a
    // blocking pass; the pipeline simply loses overlap at super-group
    // boundaries).  The previous leaf's fetch was already waited by the
    // pipelined schedule, so clobbering the scratch slabs is safe.
    distribute(g / cfg_.leaf_fanout);
    const std::uint32_t li = g % cfg_.leaf_fanout;
    pf.count = leaf_ready_[li];
    submit_leaf_reads(li, pf.buf, pf.tokens);
    return;
  }
  pf.count = ready_count_[g];
  // In-memory routing: the blocks are already resident; nothing to submit.
  if (mem_mode_) return;
  submit_group_reads(g, pf.buf, pf.tokens);
}

void MessageStore::absorb_fetch(PendingFetch& pf, Reassembler& r) {
  if (!pf.active) {
    throw std::logic_error(
        "MessageStore::fetch_group_wait: no fetch in flight");
  }
  for (const auto t : pf.tokens) disks_->wait(t);
  pf.tokens.clear();
  pf.active = false;
  if (mem_mode_) {
    for (const auto& block : mem_ready_[pf.group]) r.absorb(block, pf.group);
    return;
  }
  for (std::uint64_t t = 0; t < pf.count; ++t) {
    r.absorb(std::span<const std::byte>(pf.buf).subspan(t * block_size_,
                                                        block_size_),
             pf.group);
  }
}

std::vector<bsp::Message> MessageStore::fetch_group_wait(PendingFetch& pf) {
  Reassembler r(cfg_.max_message_bytes);
  absorb_fetch(pf, r);
  return r.take();
}

std::vector<bsp::MessageRef> MessageStore::fetch_group_wait_refs(
    PendingFetch& pf, util::Arena& arena) {
  Reassembler r(cfg_.max_message_bytes, &arena);
  absorb_fetch(pf, r);
  return r.take_refs();
}

std::vector<bsp::Message> MessageStore::fetch_group(std::uint32_t g) {
  Reassembler r(cfg_.max_message_bytes);
  fetch_group_blocks(
      g, [&](std::span<const std::byte> block) { r.absorb(block, g); });
  return r.take();
}

std::vector<bsp::MessageRef> MessageStore::fetch_group_refs(
    std::uint32_t g, util::Arena& arena) {
  Reassembler r(cfg_.max_message_bytes, &arena);
  fetch_group_blocks(
      g, [&](std::span<const std::byte> block) { r.absorb(block, g); });
  return r.take_refs();
}

MessageStore::Snapshot MessageStore::snapshot() const {
  Snapshot s;
  s.pending = pending_;
  s.rr_next = rr_next_;
  s.staged_count = staged_count_;
  s.staged_real = staged_real_;
  s.ready_count = ready_count_;
  s.ready_real = ready_real_;
  s.ready_base = ready_base_;
  s.chains = buckets_.snapshot_chains();
  if (mem_mode_) {
    s.mem_staged = mem_staged_;
    s.mem_ready = mem_ready_;
  }
  return s;
}

void MessageStore::export_state(util::Writer& w) {
  if (hierarchical()) {
    // The simulators reject checkpointing under the multi-level schedule;
    // this backstop keeps a future caller from silently dropping the
    // distribution scratch from the record.
    throw std::logic_error(
        "MessageStore::export_state: hierarchical schedule not supported");
  }
  if (!pending_.empty() || !inflight_.empty()) {
    throw std::logic_error(
        "MessageStore::export_state: staging side not quiesced");
  }
  for (const auto c : staged_count_) {
    if (c != 0) {
      throw std::logic_error(
          "MessageStore::export_state: staged blocks present — not at a "
          "superstep boundary");
    }
  }
  w.write<std::uint8_t>(mem_mode_ ? 1 : 0);
  w.write_vector(rr_next_);
  w.write_vector(ready_count_);
  w.write_vector(ready_real_);
  w.write_vector(ready_base_);
  w.write<std::uint64_t>(bytes_copied_);
  if (mem_mode_) {
    for (std::uint32_t g = 0; g < cfg_.num_groups; ++g) {
      for (const auto& block : mem_ready_[g]) {
        if (block.size() != block_size_) {
          throw std::logic_error(
              "MessageStore::export_state: off-size resident block");
        }
        w.write_bytes(block);
      }
    }
    return;
  }
  std::vector<std::byte> block(block_size_);
  for (std::uint32_t g = 0; g < cfg_.num_groups; ++g) {
    const std::uint32_t bucket = bucket_of_group(g);
    for (std::uint64_t t = 0; t < ready_count_[g]; ++t) {
      const auto [disk, track] = arena_location(bucket, ready_base_[g] + t);
      em::Disk& d = disks_->disk(disk);
      d.peek_track(track, block, em::unwrap_faults(d.backend()));
      w.write_bytes(block);
    }
  }
}

void MessageStore::restore_state(util::Reader& r) {
  const auto mem = r.read<std::uint8_t>();
  if ((mem != 0) != mem_mode_) {
    throw std::runtime_error(
        "MessageStore::restore_state: in-memory routing mode mismatch "
        "(checkpoint taken under a different config)");
  }
  rr_next_ = r.read_vector<std::uint64_t>();
  ready_count_ = r.read_vector<std::uint64_t>();
  ready_real_ = r.read_vector<std::uint64_t>();
  ready_base_ = r.read_vector<std::uint64_t>();
  bytes_copied_ = r.read<std::uint64_t>();
  if (rr_next_.size() != num_disks_ ||
      ready_count_.size() != cfg_.num_groups ||
      ready_real_.size() != cfg_.num_groups ||
      ready_base_.size() != cfg_.num_groups) {
    throw std::runtime_error(
        "MessageStore::restore_state: corrupt record (vector shapes)");
  }
  if (mem_mode_) {
    for (std::uint32_t g = 0; g < cfg_.num_groups; ++g) {
      mem_ready_[g].clear();
      for (std::uint64_t t = 0; t < ready_count_[g]; ++t) {
        const auto bytes = r.read_bytes(block_size_);
        mem_ready_[g].emplace_back(bytes.begin(), bytes.end());
      }
    }
    return;
  }
  for (std::uint32_t g = 0; g < cfg_.num_groups; ++g) {
    const std::uint32_t bucket = bucket_of_group(g);
    for (std::uint64_t t = 0; t < ready_count_[g]; ++t) {
      const auto bytes = r.read_bytes(block_size_);
      const auto [disk, track] = arena_location(bucket, ready_base_[g] + t);
      em::Disk& d = disks_->disk(disk);
      d.restore_track(track, bytes, em::unwrap_faults(d.backend()));
    }
  }
}

void MessageStore::restore(const Snapshot& s) {
  // The distribution scratch is a cache over the arena; a restored state
  // must re-cut its super-group from the (replayed) arena contents.
  dist_super_ = kNoSuper;
  pending_ = s.pending;
  rr_next_ = s.rr_next;
  staged_count_ = s.staged_count;
  staged_real_ = s.staged_real;
  ready_count_ = s.ready_count;
  ready_real_ = s.ready_real;
  ready_base_ = s.ready_base;
  buckets_.restore_chains(s.chains);
  if (mem_mode_) {
    mem_staged_ = s.mem_staged;
    mem_ready_ = s.mem_ready;
  }
}

}  // namespace embsp::sim
