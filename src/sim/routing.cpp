#include "sim/routing.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "em/io_error.hpp"

namespace embsp::sim {

namespace {

void put_u32(std::byte* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put_u16(std::byte* p, std::uint16_t v) { std::memcpy(p, &v, 2); }
std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint16_t get_u16(const std::byte* p) {
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}

// Shared packing core.  `get(i)` yields anything with src/dst/seq fields
// and a payload supporting data()/size() (bsp::Message or bsp::MessageRef),
// so the copying and zero-copy entry points run the identical algorithm and
// produce bit-identical blocks.  Blocks are written in place into spans
// handed out by `alloc`; the previously returned span is fully written
// (header, chunks, zero pad) before the next alloc call.
template <typename GetMsg>
std::size_t pack_core(std::size_t count, GetMsg&& get,
                      std::uint32_t dst_group, std::size_t block_size,
                      const std::function<std::span<std::byte>()>& alloc) {
  if (block_size < kMinBlockSize) {
    throw std::invalid_argument("pack_blocks: block size below minimum");
  }
  std::span<std::byte> block{};
  std::size_t pos = kBlockHeaderBytes;
  std::uint16_t chunks = 0;
  std::size_t produced = 0;

  auto complete = [&]() {
    if (chunks == 0) return;
    std::memset(block.data() + pos, 0, block_size - pos);
    put_u32(block.data(), dst_group);
    put_u16(block.data() + 4, chunks);
    put_u16(block.data() + 6, 0);
    ++produced;
    block = {};
    pos = kBlockHeaderBytes;
    chunks = 0;
  };
  auto acquire = [&]() {
    block = alloc();
    if (block.size() != block_size) {
      throw std::invalid_argument(
          "pack_blocks: alloc returned a span of wrong size");
    }
  };

  for (std::size_t i = 0; i < count; ++i) {
    const auto& m = get(i);
    const auto total = static_cast<std::uint32_t>(m.payload.size());
    std::uint32_t offset = 0;
    // Emit at least one chunk even for empty messages.
    do {
      std::size_t space = block_size - pos;
      if (block.empty() ||
          space < kChunkHeaderBytes + (total > offset ? 1u : 0u)) {
        complete();
        acquire();
        space = block_size - pos;
      }
      const auto chunk_len = static_cast<std::uint16_t>(std::min<std::size_t>(
          {space - kChunkHeaderBytes, static_cast<std::size_t>(total - offset),
           std::size_t{0xFFFF}}));
      std::byte* p = block.data() + pos;
      put_u32(p, m.src);
      put_u32(p + 4, m.dst);
      put_u32(p + 8, m.seq);
      put_u32(p + 12, total);
      put_u32(p + 16, offset);
      put_u16(p + 20, chunk_len);
      if (chunk_len > 0) {
        std::memcpy(p + kChunkHeaderBytes, m.payload.data() + offset,
                    chunk_len);
      }
      pos += kChunkHeaderBytes + chunk_len;
      ++chunks;
      offset += chunk_len;
    } while (offset < total);
  }
  complete();
  return produced;
}

// Adapts the emit-style interface onto the alloc core: one bounce buffer,
// emitted when the core completes it (i.e. just before the next alloc and
// once more after the core returns — every alloc'd block gets >= 1 chunk,
// so the counts always match).
template <typename GetMsg>
std::size_t pack_emit(std::size_t count, GetMsg&& get, std::uint32_t dst_group,
                      std::size_t block_size,
                      const std::function<void(std::span<const std::byte>)>&
                          emit) {
  std::vector<std::byte> buf(block_size >= kMinBlockSize ? block_size : 0);
  bool have = false;
  const std::size_t produced = pack_core(
      count, std::forward<GetMsg>(get), dst_group, block_size, [&]() {
        if (have) emit(buf);
        have = true;
        return std::span<std::byte>(buf);
      });
  if (have) emit(buf);
  return produced;
}

}  // namespace

std::size_t pack_blocks(
    std::span<const bsp::Message* const> messages, std::uint32_t dst_group,
    std::size_t block_size,
    const std::function<void(std::span<const std::byte>)>& emit) {
  return pack_emit(
      messages.size(), [&](std::size_t i) -> const bsp::Message& {
        return *messages[i];
      },
      dst_group, block_size, emit);
}

std::size_t pack_blocks(
    std::span<const bsp::MessageRef> messages, std::uint32_t dst_group,
    std::size_t block_size,
    const std::function<void(std::span<const std::byte>)>& emit) {
  return pack_emit(
      messages.size(),
      [&](std::size_t i) -> const bsp::MessageRef& { return messages[i]; },
      dst_group, block_size, emit);
}

std::size_t pack_blocks_into(
    std::span<const bsp::MessageRef> messages, std::uint32_t dst_group,
    std::size_t block_size,
    const std::function<std::span<std::byte>()>& alloc) {
  return pack_core(
      messages.size(),
      [&](std::size_t i) -> const bsp::MessageRef& { return messages[i]; },
      dst_group, block_size, alloc);
}

void make_dummy_block(std::uint32_t dst_group, std::size_t block_size,
                      std::vector<std::byte>& out) {
  out.assign(block_size, std::byte{0});
  put_u32(out.data(), dst_group);
  put_u16(out.data() + 4, 0xFFFF);  // n_chunks sentinel marks a dummy
}

BlockHeader parse_header(std::span<const std::byte> block) {
  if (block.size() < kBlockHeaderBytes) {
    throw std::invalid_argument("parse_header: block too small");
  }
  BlockHeader h;
  h.dst_group = get_u32(block.data());
  h.n_chunks = get_u16(block.data() + 4);
  return h;
}

bool is_dummy_block(std::span<const std::byte> block) {
  return parse_header(block).n_chunks == 0xFFFF;
}

void for_each_chunk(
    std::span<const std::byte> block,
    const std::function<void(std::span<const std::byte>, std::uint32_t)>&
        fn) {
  const BlockHeader h = parse_header(block);
  if (h.n_chunks == 0xFFFF) return;  // dummy padding block
  // Same untrusted-input discipline as Reassembler::absorb: every header
  // field is validated against the block span before a record is handed out.
  if (kBlockHeaderBytes + h.n_chunks * kChunkHeaderBytes > block.size()) {
    throw em::CorruptBlockError(
        "for_each_chunk: n_chunks " + std::to_string(h.n_chunks) +
        " cannot fit in a " + std::to_string(block.size()) + "-byte block");
  }
  std::size_t pos = kBlockHeaderBytes;
  for (std::uint16_t c = 0; c < h.n_chunks; ++c) {
    if (pos + kChunkHeaderBytes > block.size()) {
      throw em::CorruptBlockError("for_each_chunk: truncated chunk header");
    }
    const std::byte* p = block.data() + pos;
    const std::uint32_t dst = get_u32(p + 4);
    const std::uint32_t total = get_u32(p + 12);
    const std::uint32_t offset = get_u32(p + 16);
    const std::uint16_t len = get_u16(p + 20);
    if (pos + kChunkHeaderBytes + len > block.size()) {
      throw em::CorruptBlockError("for_each_chunk: chunk_len " +
                                  std::to_string(len) +
                                  " runs past the block span");
    }
    if (std::uint64_t{offset} + std::uint64_t{len} > std::uint64_t{total}) {
      throw em::CorruptBlockError(
          "for_each_chunk: chunk [" + std::to_string(offset) + ", " +
          std::to_string(offset + std::uint64_t{len}) +
          ") outside message of total_len " + std::to_string(total));
    }
    fn(block.subspan(pos, kChunkHeaderBytes + len), dst);
    pos += kChunkHeaderBytes + len;
  }
}

BlockBuilder::BlockBuilder(std::size_t block_size)
    : block_size_(block_size) {
  if (block_size < kMinBlockSize) {
    throw std::invalid_argument("BlockBuilder: block size below minimum");
  }
  buf_.reserve(block_size - kBlockHeaderBytes);
}

bool BlockBuilder::fits(std::size_t record_bytes) const {
  return n_chunks_ < 0xFFFE &&
         kBlockHeaderBytes + buf_.size() + record_bytes <= block_size_;
}

void BlockBuilder::append(std::span<const std::byte> record) {
  if (record.size() < kChunkHeaderBytes) {
    throw std::invalid_argument("BlockBuilder: record below a chunk header");
  }
  const std::uint16_t len = get_u16(record.data() + 20);
  if (record.size() != kChunkHeaderBytes + len) {
    throw std::invalid_argument(
        "BlockBuilder: record size disagrees with its chunk_len");
  }
  if (!fits(record.size())) {
    throw std::invalid_argument("BlockBuilder: record does not fit");
  }
  buf_.insert(buf_.end(), record.begin(), record.end());
  ++n_chunks_;
}

void BlockBuilder::take(std::uint32_t dst_group, std::vector<std::byte>& out) {
  out.assign(block_size_, std::byte{0});
  put_u32(out.data(), dst_group);
  put_u16(out.data() + 4, n_chunks_);
  put_u16(out.data() + 6, 0);
  if (!buf_.empty()) {
    std::memcpy(out.data() + kBlockHeaderBytes, buf_.data(), buf_.size());
  }
  buf_.clear();
  n_chunks_ = 0;
}

Reassembler::Partial* Reassembler::find_or_create(std::uint32_t src,
                                                  std::uint32_t dst,
                                                  std::uint32_t seq,
                                                  std::uint32_t total_len) {
  auto [it, inserted] = partial_.try_emplace(ChunkKey{src, dst, seq});
  Partial& p = it->second;
  if (inserted) {
    p.msg.src = src;
    p.msg.dst = dst;
    p.msg.seq = seq;
    if (arena_ != nullptr) {
      p.buf = arena_->allocate(total_len);
    } else {
      p.msg.payload.resize(total_len);
    }
  } else if (p.total(arena_ != nullptr) != total_len) {
    // Chunks of one message must agree on its total length; a mismatch
    // means a garbled header, and trusting the larger value would let the
    // memcpy below run past the buffer sized by the first chunk.
    throw em::CorruptBlockError(
        "Reassembler: total_len mismatch across chunks of message (src " +
        std::to_string(src) + ", dst " + std::to_string(dst) + ", seq " +
        std::to_string(seq) + "): " +
        std::to_string(p.total(arena_ != nullptr)) + " vs " +
        std::to_string(total_len));
  }
  return &p;
}

void Reassembler::absorb(std::span<const std::byte> block,
                         std::uint32_t expected_group) {
  const BlockHeader h = parse_header(block);
  if (h.n_chunks == 0xFFFF) return;  // dummy padding block
  if (expected_group != kDummyGroup && h.dst_group != expected_group) {
    throw std::runtime_error(
        "Reassembler: block for group " + std::to_string(h.dst_group) +
        " delivered to group " + std::to_string(expected_group));
  }
  // All fields below came off disk — validate before use, in 64-bit
  // arithmetic (the u32 fields can be crafted so that offset + len wraps).
  if (kBlockHeaderBytes + h.n_chunks * kChunkHeaderBytes > block.size()) {
    throw em::CorruptBlockError(
        "Reassembler: n_chunks " + std::to_string(h.n_chunks) +
        " cannot fit in a " + std::to_string(block.size()) + "-byte block");
  }
  std::size_t pos = kBlockHeaderBytes;
  for (std::uint16_t c = 0; c < h.n_chunks; ++c) {
    if (pos + kChunkHeaderBytes > block.size()) {
      throw em::CorruptBlockError("Reassembler: truncated chunk header");
    }
    const std::byte* p = block.data() + pos;
    const std::uint32_t src = get_u32(p);
    const std::uint32_t dst = get_u32(p + 4);
    const std::uint32_t seq = get_u32(p + 8);
    const std::uint32_t total = get_u32(p + 12);
    const std::uint32_t offset = get_u32(p + 16);
    const std::uint16_t len = get_u16(p + 20);
    pos += kChunkHeaderBytes;
    if (pos + len > block.size()) {
      throw em::CorruptBlockError("Reassembler: chunk_len " +
                                  std::to_string(len) +
                                  " runs past the block span");
    }
    if (std::uint64_t{offset} + std::uint64_t{len} > std::uint64_t{total}) {
      throw em::CorruptBlockError(
          "Reassembler: chunk [" + std::to_string(offset) + ", " +
          std::to_string(offset + std::uint64_t{len}) +
          ") outside message of total_len " + std::to_string(total));
    }
    if (max_message_bytes_ != 0 && total > max_message_bytes_) {
      throw em::CorruptBlockError(
          "Reassembler: claimed total_len " + std::to_string(total) +
          " exceeds the message-size limit " +
          std::to_string(max_message_bytes_));
    }
    Partial* part = find_or_create(src, dst, seq, total);
    if (len > 0) {
      std::byte* dst_bytes = arena_ != nullptr
                                 ? part->buf.data()
                                 : part->msg.payload.data();
      std::memcpy(dst_bytes + offset, block.data() + pos, len);
    }
    part->received += len;
    pos += len;
  }
}

std::vector<bsp::Message> Reassembler::take() {
  std::vector<bsp::Message> out;
  out.reserve(partial_.size());
  for (auto& [key, p] : partial_) {
    check_complete(p);
    if (arena_ != nullptr) {
      p.msg.payload.assign(p.buf.begin(), p.buf.end());
    }
    out.push_back(std::move(p.msg));
  }
  partial_.clear();
  return out;
}

std::vector<bsp::MessageRef> Reassembler::take_refs() {
  if (arena_ == nullptr) {
    throw std::logic_error(
        "Reassembler::take_refs requires arena mode (payloads would dangle)");
  }
  std::vector<bsp::MessageRef> out;
  out.reserve(partial_.size());
  for (auto& [key, p] : partial_) {
    check_complete(p);
    out.push_back(bsp::MessageRef{p.msg.src, p.msg.dst, p.msg.seq,
                                  {p.buf.data(), p.buf.size()}});
  }
  partial_.clear();
  return out;
}

void Reassembler::check_complete(const Partial& p) const {
  if (p.received != p.total(arena_ != nullptr)) {
    throw std::runtime_error(
        "Reassembler: incomplete message (src " + std::to_string(p.msg.src) +
        ", seq " + std::to_string(p.msg.seq) + "): got " +
        std::to_string(p.received) + " of " +
        std::to_string(p.total(arena_ != nullptr)) + " bytes");
  }
}

}  // namespace embsp::sim
