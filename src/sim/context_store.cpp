#include "sim/context_store.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "em/fault_backend.hpp"

namespace embsp::sim {

namespace {
constexpr std::size_t kLenPrefix = sizeof(std::uint32_t);
}

ContextStore::ContextStore(em::DiskArray& disks, em::TrackAllocators& alloc,
                           std::uint32_t num_contexts,
                           std::size_t max_context_bytes, bool journaled)
    : disks_(&disks),
      num_contexts_(num_contexts),
      max_context_bytes_(max_context_bytes),
      block_size_(disks.block_size()),
      blocks_((max_context_bytes + kLenPrefix + block_size_ - 1) /
              block_size_),
      band_((blocks_ + disks.num_disks() - 1) / disks.num_disks()),
      journaled_(journaled),
      lengths_(num_contexts, 0) {
  if (num_contexts == 0) {
    throw std::invalid_argument("ContextStore: need at least one context");
  }
  if (max_context_bytes == 0) {
    throw std::invalid_argument("ContextStore: mu must be > 0");
  }
  // Context j occupies its own band of `band_` tracks on every disk; its
  // i-th block lives on disk (j + i) mod D — the rotation keeps partial
  // (length-limited) accesses of consecutive contexts spread over all
  // drives, preserving the fully parallel group I/O of §5.1.  Journaled
  // mode reserves a second bank of the same shape right after the first.
  start_tracks_ = alloc.reserve_striped(static_cast<std::uint64_t>(band_) *
                                        num_contexts *
                                        (journaled_ ? 2 : 1));
  if (journaled_) {
    bank_.assign(num_contexts, 0);
    dirty_.assign(num_contexts, 0);
    pending_lengths_.assign(num_contexts, 0);
  }
}

std::pair<std::uint32_t, std::uint64_t> ContextStore::location_in_bank(
    std::uint32_t ctx, std::uint64_t block, std::uint8_t bank) const {
  const std::uint64_t d = disks_->num_disks();
  const auto disk = static_cast<std::uint32_t>((ctx + block) % d);
  return {disk,
          start_tracks_[disk] +
              (static_cast<std::uint64_t>(bank) * num_contexts_ + ctx) *
                  band_ +
              block / d};
}

std::pair<std::uint32_t, std::uint64_t> ContextStore::location(
    std::uint32_t ctx, std::uint64_t block) const {
  return location_in_bank(ctx, block, journaled_ ? bank_[ctx] : 0);
}

void ContextStore::commit_epoch() {
  ++epoch_;
  if (!journaled_) return;
  for (std::uint32_t c = 0; c < num_contexts_; ++c) {
    if (dirty_[c] != 0) {
      bank_[c] ^= 1;
      lengths_[c] = pending_lengths_[c];
      dirty_[c] = 0;
    }
  }
}

void ContextStore::discard_epoch() {
  if (!journaled_) return;
  for (std::uint32_t c = 0; c < num_contexts_; ++c) dirty_[c] = 0;
}

void ContextStore::export_context(std::uint32_t ctx, util::Writer& w) {
  if (ctx >= num_contexts_) {
    throw std::out_of_range("ContextStore::export_context: context index");
  }
  const std::uint8_t bank = journaled_ ? bank_[ctx] : 0;
  const std::uint32_t len = lengths_[ctx];
  w.write<std::uint8_t>(bank);
  w.write<std::uint32_t>(len);
  const std::uint64_t used = blocks_for(len);
  std::vector<std::byte> slot(used * block_size_);
  for (std::uint64_t b = 0; b < used; ++b) {
    const auto [disk, track] = location_in_bank(ctx, b, bank);
    em::Disk& d = disks_->disk(disk);
    d.peek_track(track,
                 std::span<std::byte>(slot).subspan(b * block_size_,
                                                    block_size_),
                 em::unwrap_faults(d.backend()));
  }
  std::uint32_t stored = 0;
  std::memcpy(&stored, slot.data(), kLenPrefix);
  if (stored != len) {
    throw std::runtime_error(
        "ContextStore::export_context: slot of processor " +
        std::to_string(ctx) + " stores length " + std::to_string(stored) +
        ", metadata says " + std::to_string(len));
  }
  w.write_bytes(std::span<const std::byte>(slot).subspan(kLenPrefix, len));
}

void ContextStore::restore_context(std::uint32_t ctx, util::Reader& r) {
  if (ctx >= num_contexts_) {
    throw std::out_of_range("ContextStore::restore_context: context index");
  }
  const auto bank = r.read<std::uint8_t>();
  const auto len = r.read<std::uint32_t>();
  if (len > max_context_bytes_ || bank > 1 || (bank != 0 && !journaled_)) {
    throw std::runtime_error(
        "ContextStore::restore_context: corrupt record for processor " +
        std::to_string(ctx));
  }
  const auto payload = r.read_bytes(len);
  const std::uint64_t used = blocks_for(len);
  std::vector<std::byte> slot(used * block_size_, std::byte{0});
  std::memcpy(slot.data(), &len, kLenPrefix);
  std::memcpy(slot.data() + kLenPrefix, payload.data(), len);
  for (std::uint64_t b = 0; b < used; ++b) {
    const auto [disk, track] = location_in_bank(ctx, b, bank);
    em::Disk& d = disks_->disk(disk);
    d.restore_track(track,
                    std::span<const std::byte>(slot).subspan(
                        b * block_size_, block_size_),
                    em::unwrap_faults(d.backend()));
  }
  if (journaled_) bank_[ctx] = bank;
  lengths_[ctx] = len;
}

void ContextStore::write_submit(std::uint32_t first, std::uint32_t count,
                                const EmitFn& emit, PendingIo& io) {
  if (first + count > num_contexts_) {
    throw std::out_of_range("ContextStore::write: context range");
  }
  const std::uint64_t d = disks_->num_disks();
  io.tokens.clear();
  io.buf.clear();  // keeps capacity: the staging buffer is grow-only
  io.first = first;
  io.count = count;
  io.active = true;
  // Stage all used blocks, then drain per-disk queues one op per disk per
  // parallel I/O — the rotated layout keeps the queues balanced.
  struct Op {
    std::uint32_t disk;
    std::uint64_t track;
    std::size_t offset;
  };
  std::vector<std::vector<Op>> queues(d);
  for (std::uint32_t i = 0; i < count; ++i) {
    // Slot format [u32 len][payload][zero pad]: serialize straight into the
    // staging buffer behind a length placeholder, then zero only the pad
    // bytes (resize value-initializes the tail) — never the payload region.
    const std::size_t offset = io.buf.size();
    io.buf.resize(offset + kLenPrefix);
    util::Writer w(io.buf);
    emit(first + i, w);
    const std::size_t payload = io.buf.size() - offset - kLenPrefix;
    if (payload > max_context_bytes_) {
      throw std::runtime_error(
          "ContextStore: context of processor " + std::to_string(first + i) +
          " is " + std::to_string(payload) +
          " bytes, exceeding the declared mu = " +
          std::to_string(max_context_bytes_));
    }
    const auto len = static_cast<std::uint32_t>(payload);
    std::memcpy(io.buf.data() + offset, &len, kLenPrefix);
    const std::uint64_t used = blocks_for(payload);
    io.buf.resize(offset + used * block_size_);
    // Journaled: write the non-live bank and leave the committed copy (the
    // checkpoint) untouched until commit_epoch().
    const std::uint8_t bank =
        journaled_ ? static_cast<std::uint8_t>(bank_[first + i] ^ 1) : 0;
    for (std::uint64_t b = 0; b < used; ++b) {
      const auto [disk, track] = location_in_bank(first + i, b, bank);
      queues[disk].push_back(Op{disk, track, offset + b * block_size_});
    }
    if (journaled_) {
      pending_lengths_[first + i] = len;
      dirty_[first + i] = 1;
    } else {
      lengths_[first + i] = len;
    }
  }
  // One batched submission, pre-declared at the cost the old round-robin
  // drain charged: max per-disk queue depth parallel I/Os (one track per
  // disk per round).  Per-disk op order stays the queue order, and a
  // context's blocks on one disk sit on consecutive tracks, so runs
  // coalesce into vectored backend transfers.
  std::uint64_t deepest = 0;
  std::vector<em::WriteOp> ops;
  for (const auto& q : queues) {
    deepest = std::max<std::uint64_t>(deepest, q.size());
    for (const Op& op : q) {
      ops.push_back({op.disk, op.track,
                     std::span<const std::byte>(io.buf)
                         .subspan(op.offset, block_size_)});
    }
  }
  if (!ops.empty()) {
    io.tokens.push_back(disks_->submit_write_batch(ops, deepest));
  }
}

void ContextStore::write_wait(PendingIo& io) {
  if (!io.active) return;
  // A token that fails leaves the rest outstanding; the recovery path
  // settles them via DiskArray::drain() before restoring snapshots.
  for (const auto t : io.tokens) disks_->wait(t);
  io.tokens.clear();
  io.active = false;
}

void ContextStore::write(std::uint32_t first, std::uint32_t count,
                         const EmitFn& emit) {
  write_submit(first, count, emit, sync_io_);
  write_wait(sync_io_);
}

void ContextStore::write(std::uint32_t first,
                         std::span<const std::vector<std::byte>> payloads) {
  write(first, static_cast<std::uint32_t>(payloads.size()),
        [&](std::uint32_t ctx, util::Writer& w) {
          w.write_bytes(payloads[ctx - first]);
        });
}

void ContextStore::read_submit(std::uint32_t first, std::uint32_t count,
                               PendingIo& io) {
  if (first + count > num_contexts_) {
    throw std::out_of_range("ContextStore::read: context range");
  }
  const std::uint64_t d = disks_->num_disks();
  io.tokens.clear();
  io.first = first;
  io.count = count;
  io.active = true;
  struct Op {
    std::uint32_t disk;
    std::uint64_t track;
    std::size_t offset;
  };
  std::vector<std::vector<Op>> queues(d);
  io.ctx_offset.resize(count);
  io.expected_len.resize(count);
  std::size_t staged = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t used = blocks_for(lengths_[first + i]);
    io.ctx_offset[i] = staged;
    io.expected_len[i] = lengths_[first + i];
    for (std::uint64_t b = 0; b < used; ++b) {
      const auto [disk, track] = location(first + i, b);
      queues[disk].push_back(Op{disk, track, staged + b * block_size_});
    }
    staged += used * block_size_;
  }
  // Grow-only: every staged byte is overwritten by the reads, so stale
  // contents need no clearing.
  if (io.buf.size() < staged) io.buf.resize(staged);
  // Mirror of write_submit's batching: one submission, cycles = max
  // per-disk queue depth, per-disk order = queue order.
  std::uint64_t deepest = 0;
  std::vector<em::ReadOp> ops;
  for (const auto& q : queues) {
    deepest = std::max<std::uint64_t>(deepest, q.size());
    for (const Op& op : q) {
      ops.push_back({op.disk, op.track,
                     std::span<std::byte>(io.buf).subspan(op.offset,
                                                          block_size_)});
    }
  }
  if (!ops.empty()) {
    io.tokens.push_back(disks_->submit_read_batch(ops, deepest));
  }
}

void ContextStore::read_wait(PendingIo& io,
                             std::vector<std::vector<std::byte>>& out) {
  if (!io.active) {
    throw std::logic_error("ContextStore::read_wait: no read in flight");
  }
  for (const auto t : io.tokens) disks_->wait(t);
  io.tokens.clear();
  io.active = false;
  out.resize(io.count);
  for (std::uint32_t i = 0; i < io.count; ++i) {
    std::uint32_t len = 0;
    std::memcpy(&len, io.buf.data() + io.ctx_offset[i], kLenPrefix);
    if (len != io.expected_len[i] || len > max_context_bytes_) {
      throw std::runtime_error(
          "ContextStore: corrupted context slot for processor " +
          std::to_string(io.first + i));
    }
    const auto* src = io.buf.data() + io.ctx_offset[i] + kLenPrefix;
    out[i].assign(src, src + len);
  }
}

void ContextStore::read_into(std::uint32_t first, std::uint32_t count,
                             std::vector<std::vector<std::byte>>& out) {
  read_submit(first, count, sync_io_);
  read_wait(sync_io_, out);
}

std::vector<std::vector<std::byte>> ContextStore::read(std::uint32_t first,
                                                       std::uint32_t count) {
  std::vector<std::vector<std::byte>> out;
  read_into(first, count, out);
  return out;
}

}  // namespace embsp::sim
