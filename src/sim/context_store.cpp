#include "sim/context_store.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

namespace embsp::sim {

namespace {
constexpr std::size_t kLenPrefix = sizeof(std::uint32_t);
}

ContextStore::ContextStore(em::DiskArray& disks, em::TrackAllocators& alloc,
                           std::uint32_t num_contexts,
                           std::size_t max_context_bytes, bool journaled)
    : disks_(&disks),
      num_contexts_(num_contexts),
      max_context_bytes_(max_context_bytes),
      block_size_(disks.block_size()),
      blocks_((max_context_bytes + kLenPrefix + block_size_ - 1) /
              block_size_),
      band_((blocks_ + disks.num_disks() - 1) / disks.num_disks()),
      journaled_(journaled),
      lengths_(num_contexts, 0) {
  if (num_contexts == 0) {
    throw std::invalid_argument("ContextStore: need at least one context");
  }
  if (max_context_bytes == 0) {
    throw std::invalid_argument("ContextStore: mu must be > 0");
  }
  // Context j occupies its own band of `band_` tracks on every disk; its
  // i-th block lives on disk (j + i) mod D — the rotation keeps partial
  // (length-limited) accesses of consecutive contexts spread over all
  // drives, preserving the fully parallel group I/O of §5.1.  Journaled
  // mode reserves a second bank of the same shape right after the first.
  start_tracks_ = alloc.reserve_striped(static_cast<std::uint64_t>(band_) *
                                        num_contexts *
                                        (journaled_ ? 2 : 1));
  if (journaled_) {
    bank_.assign(num_contexts, 0);
    dirty_.assign(num_contexts, 0);
    pending_lengths_.assign(num_contexts, 0);
  }
}

std::pair<std::uint32_t, std::uint64_t> ContextStore::location_in_bank(
    std::uint32_t ctx, std::uint64_t block, std::uint8_t bank) const {
  const std::uint64_t d = disks_->num_disks();
  const auto disk = static_cast<std::uint32_t>((ctx + block) % d);
  return {disk,
          start_tracks_[disk] +
              (static_cast<std::uint64_t>(bank) * num_contexts_ + ctx) *
                  band_ +
              block / d};
}

std::pair<std::uint32_t, std::uint64_t> ContextStore::location(
    std::uint32_t ctx, std::uint64_t block) const {
  return location_in_bank(ctx, block, journaled_ ? bank_[ctx] : 0);
}

void ContextStore::commit_epoch() {
  if (!journaled_) return;
  for (std::uint32_t c = 0; c < num_contexts_; ++c) {
    if (dirty_[c] != 0) {
      bank_[c] ^= 1;
      lengths_[c] = pending_lengths_[c];
      dirty_[c] = 0;
    }
  }
}

void ContextStore::discard_epoch() {
  if (!journaled_) return;
  for (std::uint32_t c = 0; c < num_contexts_; ++c) dirty_[c] = 0;
}

void ContextStore::write(std::uint32_t first,
                         std::span<const std::vector<std::byte>> payloads) {
  const auto count = static_cast<std::uint32_t>(payloads.size());
  if (first + count > num_contexts_) {
    throw std::out_of_range("ContextStore::write: context range");
  }
  const std::uint64_t d = disks_->num_disks();
  // Stage all used blocks, then drain per-disk queues one op per disk per
  // parallel I/O — the rotated layout keeps the queues balanced.
  scratch_.clear();
  struct Op {
    std::uint32_t disk;
    std::uint64_t track;
    std::size_t offset;
  };
  std::vector<std::vector<Op>> queues(d);
  std::size_t staged = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto& p = payloads[i];
    if (p.size() > max_context_bytes_) {
      throw std::runtime_error(
          "ContextStore: context of processor " + std::to_string(first + i) +
          " is " + std::to_string(p.size()) +
          " bytes, exceeding the declared mu = " +
          std::to_string(max_context_bytes_));
    }
    const std::uint64_t used = blocks_for(p.size());
    scratch_.resize(staged + used * block_size_, std::byte{0});
    const auto len = static_cast<std::uint32_t>(p.size());
    std::memcpy(scratch_.data() + staged, &len, kLenPrefix);
    std::memcpy(scratch_.data() + staged + kLenPrefix, p.data(), p.size());
    // Journaled: write the non-live bank and leave the committed copy (the
    // checkpoint) untouched until commit_epoch().
    const std::uint8_t bank =
        journaled_ ? static_cast<std::uint8_t>(bank_[first + i] ^ 1) : 0;
    for (std::uint64_t b = 0; b < used; ++b) {
      const auto [disk, track] = location_in_bank(first + i, b, bank);
      queues[disk].push_back(Op{disk, track, staged + b * block_size_});
    }
    staged += used * block_size_;
    if (journaled_) {
      pending_lengths_[first + i] = len;
      dirty_[first + i] = 1;
    } else {
      lengths_[first + i] = len;
    }
  }
  std::vector<std::size_t> heads(d, 0);
  std::vector<em::WriteOp> ops;
  for (;;) {
    ops.clear();
    for (std::uint64_t disk = 0; disk < d; ++disk) {
      if (heads[disk] < queues[disk].size()) {
        const Op& op = queues[disk][heads[disk]++];
        ops.push_back({op.disk, op.track,
                       std::span<const std::byte>(scratch_)
                           .subspan(op.offset, block_size_)});
      }
    }
    if (ops.empty()) break;
    disks_->parallel_write(ops);
  }
}

std::vector<std::vector<std::byte>> ContextStore::read(std::uint32_t first,
                                                       std::uint32_t count) {
  if (first + count > num_contexts_) {
    throw std::out_of_range("ContextStore::read: context range");
  }
  const std::uint64_t d = disks_->num_disks();
  struct Op {
    std::uint32_t disk;
    std::uint64_t track;
    std::size_t offset;
  };
  std::vector<std::vector<Op>> queues(d);
  std::vector<std::size_t> ctx_offset(count);
  std::size_t staged = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t used = blocks_for(lengths_[first + i]);
    ctx_offset[i] = staged;
    for (std::uint64_t b = 0; b < used; ++b) {
      const auto [disk, track] = location(first + i, b);
      queues[disk].push_back(Op{disk, track, staged + b * block_size_});
    }
    staged += used * block_size_;
  }
  scratch_.resize(staged);
  std::vector<std::size_t> heads(d, 0);
  std::vector<em::ReadOp> ops;
  for (;;) {
    ops.clear();
    for (std::uint64_t disk = 0; disk < d; ++disk) {
      if (heads[disk] < queues[disk].size()) {
        const Op& op = queues[disk][heads[disk]++];
        ops.push_back({op.disk, op.track,
                       std::span<std::byte>(scratch_).subspan(op.offset,
                                                              block_size_)});
      }
    }
    if (ops.empty()) break;
    disks_->parallel_read(ops);
  }

  std::vector<std::vector<std::byte>> out(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t len = 0;
    std::memcpy(&len, scratch_.data() + ctx_offset[i], kLenPrefix);
    if (len != lengths_[first + i] || len > max_context_bytes_) {
      throw std::runtime_error(
          "ContextStore: corrupted context slot for processor " +
          std::to_string(first + i));
    }
    const auto* src = scratch_.data() + ctx_offset[i] + kLenPrefix;
    out[i].assign(src, src + len);
  }
  return out;
}

}  // namespace embsp::sim
