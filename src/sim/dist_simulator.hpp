// Algorithm 3 over a real interconnect: one rank of the p-processor EM-BSP*
// simulation per DistSimulator instance, communicating through a
// net::Transport instead of shared-memory mailboxes.
//
// This is the threaded ParSimulator's worker loop, factored onto message
// passing.  Each rank owns a private D-disk array and simulates virtual
// processors [rank*v/p, (rank+1)*v/p); a compound superstep runs the same
// v/(p*k) rounds with the same two-phase randomized routing:
//
//   round j:  fetch local blocks of batch j   → exchange #1 (forward to the
//             destination's owner over the wire),
//             compute the k virtual supersteps,
//             pack per (owner, batch), scatter → exchange #2 (to a uniformly
//             random intermediate rank, Lemma 10),
//             write received blocks to local buckets.
//   step 2:   local SimulateRouting reorganize.
//   boundary: exchange #3 — an all-to-all control record (per-rank cost
//             contribution, continue flag, rank 0's cancel sample); every
//             rank applies the same commutative reduction, so all ranks
//             append the same SuperstepCost and take the same branch.
//
// Parity contract (tested byte for byte in tests/test_net.cpp): on the
// loopback transport, results, SuperstepCosts, IoStats and fault-schedule
// call indices are identical to the threaded ParSimulator.  The invariants
// that make this hold:
//   * identical SimLayout (including the group-capacity inflation),
//   * the per-rank RNG replays the master fork loop (fork advances the
//     master, so all p forks are drawn in rank order),
//   * blocks are absorbed in source-rank order 0..p-1, the order the
//     ParSimulator's mailbox sweep uses,
//   * disk arrays use machine-wide drive indices (rank*D + d), keying the
//     deterministic fault schedule identically,
//   * cost reduction uses the same max/+ merges, which are commutative, so
//     cross-rank reduction order cannot change the result.
//
// Pipelined execution (cfg.pipeline): each rank runs the ParSimulator's
// double-buffered group schedule against its private disks — context
// prefetch for round r+1 and write-behind for round r-1 ride under round
// r's compute, message writes ride a bounded write-behind window — and the
// transport is driven incrementally: forward/scatter blocks are post()ed
// as they materialize and Transport::progress() is pumped from the fetch,
// compute and scatter phases, so phase t's wire traffic drains while the
// rank is still computing or waiting on its disks instead of serializing
// behind the complete() barrier.  Overlap changes only timing, never
// content: disk submissions, RNG draws and post ordering are untouched, so
// the byte-parity contract above holds with the pipeline on (asserted in
// tests/test_net.cpp), and the won overlap shows up in the obs Registry as
// net.exchange_overlap_ratio / net.link.<peer>.max_inflight_bytes.
//
// Not supported over a transport (throws up front): durable checkpoints
// and coordinated superstep recovery.  Transient injected faults are still
// absorbed rank-locally by the retry machinery; what cannot be absorbed
// aborts the run with a typed error, broadcast to peers via
// Transport::abort.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>

#include "bsp/direct_runtime.hpp"
#include "bsp/program.hpp"
#include "em/disk_array.hpp"
#include "net/transport.hpp"
#include "sim/context_store.hpp"
#include "sim/message_store.hpp"
#include "sim/obs_hooks.hpp"
#include "sim/seq_simulator.hpp"
#include "sim/sim_config.hpp"
#include "util/thread_pool.hpp"

namespace embsp::sim {

class DistSimulator {
 public:
  /// `transport` must outlive the simulator; its size() must equal
  /// cfg.machine.p and its rank() selects which processor this instance
  /// simulates.
  DistSimulator(SimConfig cfg, net::Transport& transport,
                std::function<std::unique_ptr<em::Backend>(std::size_t)>
                    backend = nullptr);

  template <bsp::Program P>
  SimResult run(
      const P& prog,
      const std::function<typename P::State(std::uint32_t)>& make_state,
      const std::function<void(std::uint32_t, typename P::State&)>& collect);

  [[nodiscard]] const em::DiskArray& disks() const { return *disks_; }
  [[nodiscard]] const SimConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint32_t rank() const { return tp_->rank(); }

 private:
  /// The exact field set the ParSimulator's per-round cost merge touches
  /// (max_wire_* stay zero in the reduced record there too).
  static void merge_cost(bsp::SuperstepCost& into,
                         const bsp::SuperstepCost& c) {
    into.max_work = std::max(into.max_work, c.max_work);
    into.total_work += c.total_work;
    into.max_bytes_sent = std::max(into.max_bytes_sent, c.max_bytes_sent);
    into.max_bytes_received =
        std::max(into.max_bytes_received, c.max_bytes_received);
    into.max_packets_sent =
        std::max(into.max_packets_sent, c.max_packets_sent);
    into.max_packets_received =
        std::max(into.max_packets_received, c.max_packets_received);
    into.total_bytes += c.total_bytes;
    into.num_messages += c.num_messages;
  }

  SimConfig cfg_;
  net::Transport* tp_;
  std::unique_ptr<em::DiskArray> disks_;
  std::shared_ptr<em::FaultCounters> fault_counters_;
};

// ---------------------------------------------------------------------------
// implementation
// ---------------------------------------------------------------------------

template <bsp::Program P>
SimResult DistSimulator::run(
    const P& prog,
    const std::function<typename P::State(std::uint32_t)>& make_state,
    const std::function<void(std::uint32_t, typename P::State&)>& collect) {
  using State = typename P::State;
  cfg_.machine.validate();
  const std::uint32_t p = cfg_.machine.p;
  const std::uint32_t v = cfg_.machine.bsp.v;
  const std::uint32_t local_v = v / p;
  const std::uint32_t me = tp_->rank();

  // Leaf-granular plan consumption, same rationale as the ParSimulator:
  // forwarding peeks per-block owners, so rounds are leaf-sized already.
  SimLayout layout = LayoutPlanner::plan(cfg_, local_v).leaf;
  // Same receive-capacity inflation as the ParSimulator (see the comment
  // there): scattering is balanced only in expectation.
  layout.group_capacity = layout.group_capacity * 2 + 4 * p + 4;
  const auto k = static_cast<std::uint32_t>(layout.k);
  const std::uint32_t rounds = layout.num_groups;

  em::TrackAllocators alloc(disks_->num_disks());
  ContextStore contexts(*disks_, alloc, local_v, cfg_.mu,
                        /*journaled=*/false);
  MessageStoreConfig mcfg;
  mcfg.num_groups = rounds;
  mcfg.group_capacity_blocks = layout.group_capacity;
  mcfg.mode = cfg_.routing;
  mcfg.max_message_bytes = cfg_.gamma;
  mcfg.memory_budget_bytes = layout.routing_mem_budget;
  MessageStore messages(*disks_, alloc, mcfg);
  // Per-rank RNG: replay the ParSimulator's fork loop — fork() advances the
  // master, so every rank must draw all p forks in order and keep its own.
  util::Rng rng(0);
  {
    util::Rng master(cfg_.seed);
    for (std::uint32_t i = 0; i < p; ++i) {
      util::Rng f = master.fork(i + 1);
      if (i == me) rng = f;
    }
  }
  std::uint64_t rr_scatter = 0;
  PhaseIo phase_io;
  RoutingStats routing;
  std::uint64_t comm_bytes_this_step = 0;
  std::uint64_t max_comm_bytes_step = 0;
  std::uint64_t outbox_copied = 0;
  std::uint64_t arena_peak = 0;
  bool want_continue = false;

  SimResult result;
  result.group_size = layout.k;
  std::vector<State> final_states(v);

  const auto owner_of = [local_v](std::uint32_t vp) { return vp / local_v; };
  const auto batch_of = [local_v, k](std::uint32_t vp) {
    return (vp % local_v) / k;
  };

  obs::Recorder* const rec = cfg_.recorder;
  auto& disks = *disks_;
  // Pipelined double-buffered context staging.  Declared OUTSIDE the try:
  // stack unwinding must not destroy buffers that in-flight transfers
  // still reference — the catch blocks below drain the disk array first.
  ContextStore::PendingIo ctx_read[2];
  ContextStore::PendingIo ctx_write[2];
  // Unregisters kernel fixed buffers on any exit; declared after the slots
  // so it runs before their destruction (the catch blocks have drained by
  // then).
  struct RegGuard {
    em::DiskArray* d = nullptr;
    ~RegGuard() {
      if (d != nullptr) d->register_io_buffers({});
    }
  } reg_guard;
  std::unique_ptr<util::ComputePool> pool;
  const bool pipelined = cfg_.pipeline;
  try {
    if (pipelined) {
      messages.enable_write_behind(4);
      if (cfg_.compute_threads > 1) {
        pool = std::make_unique<util::ComputePool>(cfg_.compute_threads - 1);
      }
      // Kernel fixed buffers (uring engine): pre-size the double-buffered
      // context staging and register it with this rank's private disk
      // array (see SeqSimulator::run for the contract).
      const std::size_t ctx_bytes = layout.k * layout.context_slot_bytes;
      std::vector<std::span<std::byte>> regions;
      for (int s = 0; s < 2; ++s) {
        ctx_read[s].buf.resize(ctx_bytes);
        ctx_write[s].buf.resize(ctx_bytes);
        regions.push_back({ctx_read[s].buf.data(), ctx_read[s].buf.size()});
        regions.push_back({ctx_write[s].buf.data(), ctx_write[s].buf.size()});
      }
      if (disks.register_io_buffers(regions) > 0) reg_guard.d = &disks;
    }
    // Initial contexts for this rank's virtual processors.
    {
      ObsPhase phase(rec, "init", disks, &phase_io.init, me);
      for (std::uint32_t r = 0; r < rounds; ++r) {
        const std::uint32_t first = r * k;
        const std::uint32_t count = std::min(k, local_v - first);
        contexts.write(first, count, [&](std::uint32_t ctx, util::Writer& w) {
          make_state(me * local_v + ctx).serialize(w);
        });
      }
    }
    // Startup alignment: validates the mesh before the first superstep and
    // keeps slow-starting peers from eating into round deadlines.
    (void)tp_->exchange();

    // Buffers reused across rounds and supersteps.
    std::vector<std::vector<std::byte>> payloads;
    std::vector<std::vector<bsp::Message>> inboxes;
    std::vector<bsp::Message> outgoing;
    std::vector<State> states;
    const bool zero_copy = cfg_.zero_copy;
    util::Arena inbox_arena;
    std::vector<std::vector<bsp::MessageRef>> inbox_refs;
    std::vector<bsp::MessageRef> outgoing_refs;
    std::vector<bsp::Outbox> outboxes;

    // post() keeps fragment spans alive until exchange() returns — the
    // socket backend serializes them into the wire at pump time — but the
    // spans this loop produces are transient (fetch callbacks, pack_blocks
    // scratch, serialized records), so they are staged into owned buffers
    // first and the stage is dropped after each exchange.  Growing the
    // outer vector may move the inner vectors; their heap storage stays
    // put, so spans posted earlier in the phase remain valid.
    std::vector<std::vector<std::byte>> wire_stage;
    const auto post_staged = [&](std::uint32_t dst,
                                 std::span<const std::byte> bytes) {
      wire_stage.emplace_back(bytes.begin(), bytes.end());
      tp_->post(dst, std::span<const std::byte>(wire_stage.back()));
    };
    // Per-vproc compute results, reduced sequentially in vproc order below
    // so cost totals are identical whether compute fans out or not.
    struct VpStats {
      bool cont = false;
      std::uint64_t work = 0;
      std::uint64_t sent_packets = 0;
      std::uint64_t sent_wire = 0;
      std::uint64_t bytes_sent = 0;
      std::uint64_t num_messages = 0;
      std::uint64_t recv_packets = 0;
      std::uint64_t recv_bytes = 0;
    };
    std::vector<VpStats> vp;
    auto submit_ctx_read = [&](std::uint32_t r) {
      const std::uint32_t rf = r * k;
      const std::uint32_t rc = std::min(k, local_v - rf);
      contexts.read_submit(rf, rc, ctx_read[r & 1]);
    };

    for (std::size_t step = 0;; ++step) {
      if (step >= cfg_.max_supersteps) {
        throw std::runtime_error("DistSimulator: superstep limit exceeded");
      }
      want_continue = false;
      comm_bytes_this_step = 0;
      bsp::SuperstepCost local_step_cost;
      if (pipelined) submit_ctx_read(0);

      for (std::uint32_t round = 0; round < rounds; ++round) {
        // --- Fetch: read local blocks of this batch, forward to owners.
        // Each block is handed to the transport the moment the disks
        // surface it and progress() pushes it toward the wire while the
        // remaining blocks of the batch are still being read.
        {
          ObsPhase phase(rec, "fetch_msg", disks, &phase_io.fetch_msg, me);
          messages.fetch_group_blocks(
              round, [&](std::span<const std::byte> block) {
                if (is_dummy_block(block)) return;
                util::Reader r(block.subspan(kBlockHeaderBytes));
                r.read<std::uint32_t>();  // src
                const auto dst = r.read<std::uint32_t>();
                const auto owner = owner_of(dst);
                // The fetch callback's span is only valid during the call,
                // so it goes through the staging copy.
                post_staged(owner, block);
                if (owner != me) comm_bytes_this_step += block.size();
                tp_->progress();
              });
        }
        auto forward = tp_->exchange();
        wire_stage.clear();

        // --- Compute: reassemble inboxes, run the k virtual supersteps.
        const std::uint32_t first = round * k;
        const std::uint32_t count = std::min(k, local_v - first);
        if (zero_copy) inbox_arena.reset();
        Reassembler reasm(cfg_.gamma, zero_copy ? &inbox_arena : nullptr);
        for (std::uint32_t src = 0; src < p; ++src) {
          for (auto& block : forward[src]) {
            reasm.absorb(block, round);
          }
        }
        if (zero_copy) {
          if (inbox_refs.size() < count) inbox_refs.resize(count);
          for (std::uint32_t i = 0; i < count; ++i) inbox_refs[i].clear();
          for (const auto& m : reasm.take_refs()) {
            const std::uint32_t local = m.dst - me * local_v;
            if (owner_of(m.dst) != me || local < first ||
                local >= first + count) {
              throw std::runtime_error(
                  "DistSimulator: block forwarded to the wrong processor");
            }
            inbox_refs[local - first].push_back(m);
          }
        } else {
          auto incoming = reasm.take();
          if (inboxes.size() < count) inboxes.resize(count);
          for (std::uint32_t i = 0; i < count; ++i) inboxes[i].clear();
          for (auto& m : incoming) {
            const std::uint32_t local = m.dst - me * local_v;
            if (owner_of(m.dst) != me || local < first ||
                local >= first + count) {
              throw std::runtime_error(
                  "DistSimulator: block forwarded to the wrong processor");
            }
            inboxes[local - first].push_back(std::move(m));
          }
        }

        {
          ObsPhase phase(rec, pipelined ? "prefetch_ctx" : "fetch_ctx",
                         disks, &phase_io.fetch_ctx, me);
          if (pipelined) {
            contexts.read_wait(ctx_read[round & 1], payloads);
            // Read-ahead: the next round's contexts stream in while this
            // round computes.
            if (round + 1 < rounds) submit_ctx_read(round + 1);
          } else {
            contexts.read_into(first, count, payloads);
          }
        }
        // A fast peer may already be scattering this round's blocks at us;
        // buffering them now shortens the exchange after the pack below.
        tp_->progress();

        states.clear();
        states.resize(count);
        vp.assign(count, VpStats{});
        outboxes.clear();
        for (std::uint32_t i = 0; i < count; ++i) {
          outboxes.emplace_back(me * local_v + first + i, v);
        }
        outgoing.clear();
        outgoing_refs.clear();
        bsp::SuperstepCost local_cost;
        {
          ObsPhase compute_phase(rec, "compute", disks, nullptr, me);
          // Each task touches only index-i data; costs are reduced below
          // in vproc order, so the totals match the sequential loop.
          auto task = [&](std::size_t i) {
            util::Reader r(payloads[i]);
            states[i].deserialize(r);
            bsp::Inbox in = zero_copy ? bsp::Inbox(std::move(inbox_refs[i]))
                                      : bsp::Inbox(std::move(inboxes[i]));
            bsp::WorkMeter m;
            bsp::ProcEnv env{
                me * local_v + first + static_cast<std::uint32_t>(i), v, &m};
            VpStats& s = vp[i];
            s.cont = prog.superstep(step, env, states[i], in, outboxes[i]);
            s.work = m.total();
            for (const auto& msg : outboxes[i].messages()) {
              s.sent_packets +=
                  bsp::packets_for(msg.size_bytes(), cfg_.machine.bsp.b);
              s.sent_wire += bsp::wire_bytes(msg.size_bytes());
            }
            s.bytes_sent = outboxes[i].total_bytes();
            s.num_messages = outboxes[i].messages().size();
            for (const auto& msg : in.all()) {
              s.recv_packets +=
                  bsp::packets_for(msg.size_bytes(), cfg_.machine.bsp.b);
              s.recv_bytes += msg.size_bytes();
            }
          };
          if (pool != nullptr) {
            pool->run(count, task);
          } else {
            for (std::uint32_t i = 0; i < count; ++i) task(i);
          }
        }
        for (std::uint32_t i = 0; i < count; ++i) {
          const VpStats& s = vp[i];
          want_continue = want_continue || s.cont;
          local_cost.max_work = std::max(local_cost.max_work, s.work);
          local_cost.total_work += s.work;
          if (s.sent_wire > cfg_.gamma) {
            throw std::runtime_error(
                "DistSimulator: processor exceeded the declared gamma");
          }
          local_cost.max_bytes_sent =
              std::max(local_cost.max_bytes_sent, s.bytes_sent);
          local_cost.max_packets_sent =
              std::max(local_cost.max_packets_sent, s.sent_packets);
          local_cost.max_wire_sent =
              std::max(local_cost.max_wire_sent, s.sent_wire);
          local_cost.max_bytes_received =
              std::max(local_cost.max_bytes_received, s.recv_bytes);
          local_cost.max_packets_received =
              std::max(local_cost.max_packets_received, s.recv_packets);
          local_cost.total_bytes += s.bytes_sent;
          local_cost.num_messages += s.num_messages;
          if (zero_copy) {
            for (const auto& msg : outboxes[i].messages()) {
              outgoing_refs.push_back(msg);
            }
            arena_peak = std::max<std::uint64_t>(
                arena_peak, outboxes[i].arena_high_water());
          } else {
            for (auto& msg : outboxes[i].take()) {
              outgoing.push_back(std::move(msg));
            }
            outbox_copied += outboxes[i].bytes_copied();
          }
        }
        arena_peak =
            std::max<std::uint64_t>(arena_peak, inbox_arena.high_water());
        merge_cost(local_step_cost, local_cost);

        // Write contexts back.
        {
          ObsPhase phase(rec, pipelined ? "writeback_ctx" : "write_ctx",
                         disks, &phase_io.write_ctx, me);
          auto emit = [&](std::uint32_t ctx, util::Writer& w) {
            states[ctx - first].serialize(w);
          };
          if (pipelined) {
            // Retire round r-2's write-backs, then submit round r's; the
            // writes overlap the following rounds' compute.
            contexts.write_wait(ctx_write[round & 1]);
            contexts.write_submit(first, count, emit, ctx_write[round & 1]);
          } else {
            contexts.write(first, count, emit);
          }
        }

        // --- Writing: pack per (owner, batch) and scatter randomly.  The
        // packed block spans die when pack_blocks returns, so scatter
        // posts go through the staging copy too.
        {
          std::vector<std::uint64_t> dest_keys;
          std::vector<std::pair<std::uint64_t, std::size_t>> index;
          const auto slot_of = [&](std::uint32_t dst) {
            const std::uint64_t key =
                (static_cast<std::uint64_t>(owner_of(dst)) << 32) |
                batch_of(dst);
            for (const auto& [kk, s] : index) {
              if (kk == key) return s;
            }
            const std::size_t slot = index.size();
            index.emplace_back(key, slot);
            dest_keys.push_back(key);
            return slot;
          };
          const auto scatter_block = [&](std::span<const std::byte> block) {
            const auto target = static_cast<std::uint32_t>(
                cfg_.routing == RoutingMode::deterministic
                    ? (me + rr_scatter++) % p
                    : rng.below(p));
            post_staged(target, block);
            if (target != me) comm_bytes_this_step += block.size();
            // Sealed blocks go to the wire while the pack continues.
            tp_->progress();
          };
          if (zero_copy) {
            std::vector<std::vector<bsp::MessageRef>> by_dest;
            for (const auto& m : outgoing_refs) {
              const std::size_t slot = slot_of(m.dst);
              if (by_dest.size() <= slot) by_dest.resize(slot + 1);
              by_dest[slot].push_back(m);
            }
            for (std::size_t s = 0; s < by_dest.size(); ++s) {
              const auto batch =
                  static_cast<std::uint32_t>(dest_keys[s] & 0xFFFFFFFFu);
              pack_blocks(std::span<const bsp::MessageRef>(by_dest[s]), batch,
                          disks.block_size(), scatter_block);
            }
          } else {
            std::vector<std::vector<const bsp::Message*>> by_dest;
            for (const auto& m : outgoing) {
              const std::size_t slot = slot_of(m.dst);
              if (by_dest.size() <= slot) by_dest.resize(slot + 1);
              by_dest[slot].push_back(&m);
            }
            for (std::size_t s = 0; s < by_dest.size(); ++s) {
              const auto batch =
                  static_cast<std::uint32_t>(dest_keys[s] & 0xFFFFFFFFu);
              pack_blocks(by_dest[s], batch, disks.block_size(),
                          scatter_block);
            }
          }
        }
        auto scattered = tp_->exchange();
        wire_stage.clear();

        // --- Receive scattered blocks, write them to local buckets in
        // source-rank order (the ParSimulator's mailbox sweep order — the
        // write_block RNG draws must land on the same call indices).
        {
          ObsPhase phase(rec, "write_msg", disks, &phase_io.write_msg, me);
          for (std::uint32_t src = 0; src < p; ++src) {
            for (auto& block : scattered[src]) {
              if (zero_copy) {
                messages.write_block(std::move(block), rng);
              } else {
                messages.write_block(block, rng);
              }
            }
          }
        }
      }

      if (pipelined) {
        // Drain the pipeline before reorganizing: the last two rounds'
        // context write-backs and every in-flight message write cycle.
        {
          ObsPhase phase(rec, "writeback_ctx", disks, &phase_io.write_ctx,
                         me);
          contexts.write_wait(ctx_write[rounds & 1]);
          contexts.write_wait(ctx_write[(rounds + 1) & 1]);
        }
        ObsPhase phase(rec, "writeback_msg", disks, &phase_io.write_msg, me);
        messages.quiesce();
      }

      // --- Step 2: local SimulateRouting.
      {
        ObsPhase phase(rec, "reorganize", disks, &phase_io.reorganize, me);
        messages.flush(rng);
        routing += messages.reorganize(rng);
      }
      max_comm_bytes_step =
          std::max(max_comm_bytes_step, comm_bytes_this_step);

      // --- Superstep boundary: all-to-all control record.  Every rank
      // computes the same reduction, so the cost log, the continue branch
      // and the cancel branch stay in lockstep without a coordinator.
      {
        util::Writer w;
        w.write<bsp::SuperstepCost>(local_step_cost);
        w.write<std::uint8_t>(want_continue ? 1 : 0);
        const bool cancel_sample =
            me == 0 && cfg_.cancel != nullptr &&
            cfg_.cancel->load(std::memory_order_relaxed);
        w.write<std::uint8_t>(cancel_sample ? 1 : 0);
        const auto record = w.take();
        for (std::uint32_t q = 0; q < p; ++q) {
          post_staged(q, record);
        }
      }
      auto controls = tp_->exchange();
      wire_stage.clear();
      bsp::SuperstepCost step_cost;
      bool any = false;
      bool cancel_seen = false;
      for (std::uint32_t src = 0; src < p; ++src) {
        if (controls[src].size() != 1) {
          throw net::PeerFailedError(
              "DistSimulator: malformed control record from rank " +
              std::to_string(src));
        }
        util::Reader r(controls[src][0]);
        merge_cost(step_cost, r.read<bsp::SuperstepCost>());
        any = any || r.read<std::uint8_t>() != 0;
        const bool cancel = r.read<std::uint8_t>() != 0;
        if (src == 0) cancel_seen = cancel;
      }
      result.costs.supersteps.push_back(step_cost);
      if (cancel_seen && any) {
        throw CanceledError("DistSimulator: canceled at superstep boundary " +
                            std::to_string(step + 1));
      }
      if (!any) break;
    }

    // Collect this rank's final states, then allgather so every rank can
    // hand the workload driver the complete output (drivers feed collected
    // results into the next phase's input, and all ranks must stay in
    // lockstep).
    util::Writer local_out;
    {
      ObsPhase phase(rec, "collect", disks, &phase_io.collect, me);
      for (std::uint32_t r = 0; r < rounds; ++r) {
        const std::uint32_t first = r * k;
        const std::uint32_t count = std::min(k, local_v - first);
        contexts.read_into(first, count, payloads);
        for (std::uint32_t i = 0; i < count; ++i) {
          local_out.write_vector(payloads[i]);
        }
      }
    }
    disks.sync();

    {
      const auto blob = local_out.take();
      for (std::uint32_t q = 0; q < p; ++q) {
        post_staged(q, blob);
      }
    }
    auto gathered = tp_->exchange();
    wire_stage.clear();
    for (std::uint32_t src = 0; src < p; ++src) {
      if (gathered[src].size() != 1) {
        throw net::PeerFailedError(
            "DistSimulator: malformed state record from rank " +
            std::to_string(src));
      }
      util::Reader r(gathered[src][0]);
      for (std::uint32_t j = 0; j < local_v; ++j) {
        const auto bytes = r.read_vector<std::byte>();
        util::Reader sr(bytes);
        final_states[src * local_v + j].deserialize(sr);
      }
    }

    // --- End-of-run record allgather: every rank assembles the SAME
    // SimResult the threaded ParSimulator would have produced (max-over-
    // processors I/O, summed routing stats, reduced overlap), so digests
    // agree on every rank and with the single-process run.
    disks.harvest_backend_stats();
    {
      util::Writer w;
      w.write<em::IoStats>(disks.stats());
      w.write<std::uint64_t>(disks.engine_stats().total_retries());
      w.write<std::uint64_t>(disks.engine_stats().total_giveups());
      const auto& eng = disks.engine_stats();
      const std::uint64_t busy = eng.max_busy_ns();
      double clamped = 0.0;
      if (busy > 0) {
        clamped = std::clamp(1.0 - static_cast<double>(eng.stall_ns) /
                                       static_cast<double>(busy),
                             0.0, 1.0);
      }
      w.write<std::uint8_t>(busy > 0 ? 1 : 0);
      w.write<double>(clamped);
      w.write<RoutingStats>(routing);
      w.write<std::uint64_t>(max_comm_bytes_step);
      w.write<std::uint64_t>(disks.max_tracks_used());
      em::FaultCounts fc;
      if (fault_counters_ != nullptr) fc = em::snapshot(*fault_counters_);
      w.write<em::FaultCounts>(fc);
      w.write<PhaseIo>(phase_io);
      w.write<std::uint64_t>(messages.bytes_copied() + outbox_copied);
      w.write<std::uint64_t>(arena_peak);
      w.write<std::uint8_t>(messages.in_memory_routing() ? 1 : 0);
      const auto record = w.take();
      for (std::uint32_t q = 0; q < p; ++q) {
        post_staged(q, record);
      }
    }
    auto records = tp_->exchange();
    wire_stage.clear();
    std::uint64_t copied_total = 0;
    std::uint64_t arena_peak_all = 0;
    bool mem_routing = true;
    for (std::uint32_t src = 0; src < p; ++src) {
      if (records[src].size() != 1) {
        throw net::PeerFailedError(
            "DistSimulator: malformed end-of-run record from rank " +
            std::to_string(src));
      }
      util::Reader r(records[src][0]);
      const auto io = r.read<em::IoStats>();
      result.per_proc_io.push_back(io);
      if (io.parallel_ios >= result.total_io.parallel_ios) {
        result.total_io = io;
      }
      result.recovery.io_retries += r.read<std::uint64_t>();
      result.recovery.io_giveups += r.read<std::uint64_t>();
      const bool has_busy = r.read<std::uint8_t>() != 0;
      const double clamped = r.read<double>();
      if (has_busy) {
        result.overlap_ratio =
            src == 0 ? clamped : std::min(result.overlap_ratio, clamped);
      }
      result.routing_stats += r.read<RoutingStats>();
      result.real_comm_bytes =
          std::max(result.real_comm_bytes, r.read<std::uint64_t>());
      result.max_tracks_per_disk =
          std::max(result.max_tracks_per_disk, r.read<std::uint64_t>());
      result.recovery.faults += r.read<em::FaultCounts>();
      const auto pio = r.read<PhaseIo>();
      if (src == 0) result.phase_io = pio;
      copied_total += r.read<std::uint64_t>();
      arena_peak_all = std::max(arena_peak_all, r.read<std::uint64_t>());
      mem_routing = mem_routing && r.read<std::uint8_t>() != 0;
    }

    if (rec != nullptr) {
      auto& reg = rec->registry;
      em::export_metrics(disks.engine_stats(), reg,
                         "proc." + std::to_string(me) + ".engine.");
      export_routing_stats(reg, result.routing_stats);
      export_recovery_stats(reg, result.recovery);
      reg.add("sim.supersteps", result.costs.num_supersteps());
      reg.set_gauge("sim.group_size", static_cast<double>(result.group_size));
      reg.set_gauge("sim.max_tracks_per_disk",
                    static_cast<double>(result.max_tracks_per_disk));
      reg.set_gauge("sim.real_comm_bytes",
                    static_cast<double>(result.real_comm_bytes));
      reg.set_gauge("sim.overlap_ratio", result.overlap_ratio);
      reg.add("sim.bytes_copied", copied_total);
      reg.set_gauge("sim.arena_bytes", static_cast<double>(arena_peak_all));
      reg.set_gauge("sim.in_memory_routing", mem_routing ? 1.0 : 0.0);
      tp_->export_metrics(reg);
    }
  } catch (const std::exception& e) {
    // Settle in-flight tokens before unwinding past their staging buffers,
    // then poison the mesh so peers fail fast instead of timing out.
    disks.drain();
    messages.abandon_inflight();
    tp_->abort(e.what());
    throw;
  } catch (...) {
    disks.drain();
    messages.abandon_inflight();
    tp_->abort("unknown error");
    throw;
  }

  for (std::uint32_t vp = 0; vp < v; ++vp) collect(vp, final_states[vp]);
  return result;
}

}  // namespace embsp::sim
