// embsp — command-line driver for the EM-BSP workloads.
//
// Runs any Table 1 workload on a configurable simulated EM machine and
// prints the cost summary (optionally a per-superstep CSV trace), so
// machine-shape questions ("what does doubling D buy me on list ranking?")
// can be answered without writing code.
//
//   embsp <workload> [options]
//
//   workloads: sort permute transpose maxima dominance closest hull
//              envelope listrank euler cc lca
//   options:
//     --n <count>      problem size                  (default 65536)
//     --v <count>      virtual BSP* processors       (default 64)
//     --p <count>      real processors               (default 1)
//     --D <count>      disks per processor           (default 4)
//     --B <bytes>      block size                    (default 512)
//     --M <bytes>      memory per processor          (default 4194304)
//     --k <count>      group size (0 = auto)         (default 0)
//     --mode <m>       compact | padded | deterministic | auto
//                      (--routing is an alias; auto keeps routing in memory
//                      and skips Algorithm 2 when the staging budget fits,
//                      falling back to compact otherwise)
//     --no-zero-copy   route message payloads through the legacy copying
//                      path (same results; for comparison/debugging)
//     --no-coalesce    disable vectored coalescing of adjacent-track runs
//     --auto-tune      let the layout planner pick the tuning knobs (group
//                      size, routing mode, coalescing, compute-pool width)
//                      from the machine parameters, and — when pipelined —
//                      adapt the compute width at superstep boundaries from
//                      the I/O engine's stall fraction.  Results are
//                      byte-identical to the equivalent static config;
//                      the chosen plan is exported as sim.layout.* gauges.
//     --seed <u64>     workload + placement seed     (default 42)
//     --csv <path>     write the per-superstep cost trace (p=1 only)
//     --faults <rate>  inject transient I/O faults at this per-call rate
//                      (plus torn writes and bit flips at rate/2 each);
//                      enables block checksums, retry/backoff and — for
//                      p=1 — superstep-granular recovery.  Results are
//                      identical to a fault-free run; the recovery rows
//                      in the report show what the substrate absorbed.
//     --metrics <path> write a JSON metrics snapshot (per-phase wall/model
//                      cost, per-disk service-time histograms, routing and
//                      recovery counters; schema in src/obs/metrics.hpp)
//     --pipeline       overlap disk I/O with compute: prefetch the next
//                      group's contexts/messages and retire the previous
//                      group's write-backs while the current group runs
//                      (enables the parallel I/O engine; results and disk
//                      image are byte-identical to the serial schedule).
//                      Composes with --transport: each rank pipelines its
//                      private disks and drains the wire incrementally
//                      while it computes.
//     --compute-threads <count>
//                      with --pipeline: run each group's superstep() calls
//                      on this many threads (default 1; deterministic)
//     --trace-events <path>
//                      write a Chrome trace-event timeline (open in
//                      chrome://tracing or https://ui.perfetto.dev)
//     --io-engine <e>  serial | parallel | uring — how each parallel I/O's
//                      per-disk transfers execute.  uring puts every drive
//                      on a kernel-native io_uring backend over per-drive
//                      scratch files (falls back to file I/O on kernels
//                      without io_uring); results are byte-identical across
//                      engines for a fixed seed.
//     --direct         with --io-engine uring: open the scratch files
//                      O_DIRECT so transfers bypass the page cache
//                      (degrades to buffered I/O on filesystems that
//                      refuse O_DIRECT, e.g. tmpfs)
//     --disk-dir <dir> directory for the uring engine's scratch files
//                      (default: the system temp directory)
//     --checkpoint <dir>
//                      write a durable checkpoint of the run's state to
//                      <dir> at superstep boundaries (crash-consistent:
//                      tmp + fsync + atomic rename; a torn checkpoint is
//                      detected and the previous epoch used instead)
//     --checkpoint-every <N>
//                      with --checkpoint: snapshot every N superstep
//                      boundaries (default 1)
//     --resume <dir>   restore the last committed checkpoint from <dir>
//                      and continue; the finished run is byte-identical
//                      (same results, costs, and fault schedule) to one
//                      that was never interrupted
//     --digest         print a deterministic digest of the workload's
//                      outputs and model costs — two runs agree iff their
//                      results and costs agree (the resume-equivalence
//                      check the crash-restart harness scripts against)
//     --transport <t>  loopback | socket — run the distributed simulator
//                      (Algorithm 3 over the net/ transport tier) instead
//                      of the shared-memory executors.  loopback drives p
//                      in-process endpoints (byte-identical to the
//                      threaded simulator); socket runs p real processes
//                      over unix-domain or TCP sockets.
//     --workers <p>    worker count for --transport (overrides --p)
//     --listen <addr>  with --transport socket: mesh address — a
//                      unix-socket path prefix, or host:port for TCP
//                      (rank r binds <prefix>.r / port+r).  The
//                      coordinator forks the workers itself; default is a
//                      fresh prefix under the system temp directory.
//     --connect <addr> --rank <r>
//                      join an externally launched mesh at <addr> as rank
//                      r instead of forking workers (one process per rank,
//                      e.g. one per machine); rank 0 prints the report
//
// SIGINT/SIGTERM request graceful shutdown: the run stops at the next
// superstep boundary, publishes a final checkpoint when --checkpoint is
// active, writes any requested --metrics/--trace-events snapshots, and
// exits 130.
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <type_traits>
#include <set>
#include <span>
#include <fstream>
#include <iostream>
#include <thread>

#include "embsp/embsp.hpp"
#include "util/parse.hpp"

namespace {

using namespace embsp;

// Set by the SIGINT/SIGTERM handlers; the simulators poll it at superstep
// boundaries (SimConfig::cancel).  A plain atomic store is async-signal-safe.
std::atomic<bool> g_cancel{false};

void request_shutdown(int) { g_cancel.store(true, std::memory_order_relaxed); }

struct Options {
  std::string workload;
  std::uint64_t n = 65536;
  std::uint32_t v = 64;
  std::uint32_t p = 1;
  std::size_t D = 4;
  std::size_t B = 512;
  std::size_t M = 4u << 20;
  std::size_t k = 0;
  sim::RoutingMode mode = sim::RoutingMode::compact;
  std::uint64_t seed = 42;
  std::string csv;
  double faults = 0.0;
  std::string metrics;
  std::string trace;
  bool pipeline = false;
  bool zero_copy = true;
  bool coalesce = true;
  bool auto_tune = false;
  std::size_t compute_threads = 1;
  std::string io_engine;  // "", "serial", "parallel", "uring"
  bool direct = false;
  std::string disk_dir;
  std::string checkpoint_dir;
  std::size_t checkpoint_every = 1;
  bool resume = false;
  bool digest = false;
  std::string transport;  // "", "loopback", "socket"
  std::string listen;
  std::string connect;
  std::uint32_t rank = 0;
  bool rank_set = false;
  /// Internal: set on worker ranks > 0 so only rank 0 reports/digests.
  bool quiet = false;
};

int usage() {
  std::cerr
      << "usage: embsp <workload> [--n N] [--v V] [--p P] [--D D] [--B B]\n"
         "             [--M M] [--k K]\n"
         "             [--mode compact|padded|deterministic|auto]\n"
         "             [--seed S] [--csv PATH] [--faults RATE]\n"
         "             [--metrics PATH] [--trace-events PATH]\n"
         "             [--pipeline] [--compute-threads T]\n"
         "             [--no-zero-copy] [--no-coalesce] [--auto-tune]\n"
         "             [--io-engine serial|parallel|uring] [--direct]\n"
         "             [--disk-dir DIR]\n"
         "             [--checkpoint DIR] [--checkpoint-every N]\n"
         "             [--resume DIR] [--digest]\n"
         "             [--transport loopback|socket] [--workers P]\n"
         "             [--listen ADDR | --connect ADDR --rank R]\n"
         "workloads: sort permute transpose maxima dominance closest hull\n"
         "           envelope listrank euler cc lca\n";
  return 2;
}

/// Prints the diagnostic the checked parsers feed; always returns false so
/// `parse` call sites read `return bad_value(...)`.
bool bad_value(const std::string& flag, const std::string& val,
               const char* expected) {
  std::cerr << "embsp: invalid value '" << val << "' for " << flag
            << " (expected " << expected << ")\n";
  return false;
}

bool parse_uint_flag(const std::string& flag, const std::string& val,
                     std::uint64_t max, std::uint64_t& out) {
  const auto parsed = util::parse_u64_max(val, max);
  if (!parsed) {
    return bad_value(flag, val,
                     ("an unsigned integer <= " + std::to_string(max)).c_str());
  }
  out = *parsed;
  return true;
}

bool parse(int argc, char** argv, Options& opt) {
  if (argc < 2) return false;
  opt.workload = argv[1];
  for (int i = 2; i < argc;) {
    const std::string flag = argv[i];
    // Flags without a value.
    if (flag == "--pipeline") {
      opt.pipeline = true;
      ++i;
      continue;
    }
    if (flag == "--no-zero-copy") {
      opt.zero_copy = false;
      ++i;
      continue;
    }
    if (flag == "--no-coalesce") {
      opt.coalesce = false;
      ++i;
      continue;
    }
    if (flag == "--auto-tune") {
      opt.auto_tune = true;
      ++i;
      continue;
    }
    if (flag == "--direct") {
      opt.direct = true;
      ++i;
      continue;
    }
    if (flag == "--digest") {
      opt.digest = true;
      ++i;
      continue;
    }
    if (i + 1 >= argc) {
      std::cerr << "embsp: " << flag << " requires a value\n";
      return false;
    }
    const std::string val = argv[i + 1];
    i += 2;
    // Checked numeric parsing: a malformed value ("foo", "10x", "-1")
    // prints a diagnostic naming the flag and exits with the usage status,
    // instead of std::stoul aborting the process on an uncaught exception
    // or silently swallowing trailing garbage.
    std::uint64_t num = 0;
    if (flag == "--n") {
      if (!parse_uint_flag(flag, val, UINT64_MAX, num)) return false;
      opt.n = num;
    } else if (flag == "--v") {
      if (!parse_uint_flag(flag, val, UINT32_MAX, num)) return false;
      opt.v = static_cast<std::uint32_t>(num);
    } else if (flag == "--p" || flag == "--workers") {
      if (!parse_uint_flag(flag, val, UINT32_MAX, num)) return false;
      opt.p = static_cast<std::uint32_t>(num);
    } else if (flag == "--D") {
      if (!parse_uint_flag(flag, val, SIZE_MAX, num)) return false;
      opt.D = num;
    } else if (flag == "--B") {
      if (!parse_uint_flag(flag, val, SIZE_MAX, num)) return false;
      opt.B = num;
    } else if (flag == "--M") {
      if (!parse_uint_flag(flag, val, SIZE_MAX, num)) return false;
      opt.M = num;
    } else if (flag == "--k") {
      if (!parse_uint_flag(flag, val, SIZE_MAX, num)) return false;
      opt.k = num;
    } else if (flag == "--seed") {
      if (!parse_uint_flag(flag, val, UINT64_MAX, num)) return false;
      opt.seed = num;
    } else if (flag == "--rank") {
      if (!parse_uint_flag(flag, val, UINT32_MAX, num)) return false;
      opt.rank = static_cast<std::uint32_t>(num);
      opt.rank_set = true;
    } else if (flag == "--csv") {
      opt.csv = val;
    } else if (flag == "--metrics") {
      opt.metrics = val;
    } else if (flag == "--trace-events") {
      opt.trace = val;
    } else if (flag == "--faults") {
      const auto rate = util::parse_f64(val);
      if (!rate || *rate < 0.0 || *rate >= 1.0) {
        return bad_value(flag, val, "a rate in [0, 1)");
      }
      opt.faults = *rate;
    } else if (flag == "--compute-threads") {
      if (!parse_uint_flag(flag, val, SIZE_MAX, num)) return false;
      if (num == 0) return bad_value(flag, val, "a positive thread count");
      opt.compute_threads = num;
    } else if (flag == "--io-engine") {
      if (val != "serial" && val != "parallel" && val != "uring") {
        return bad_value(flag, val, "serial, parallel or uring");
      }
      opt.io_engine = val;
    } else if (flag == "--disk-dir") {
      opt.disk_dir = val;
    } else if (flag == "--checkpoint") {
      opt.checkpoint_dir = val;
    } else if (flag == "--checkpoint-every") {
      if (!parse_uint_flag(flag, val, SIZE_MAX, num)) return false;
      if (num == 0) return bad_value(flag, val, "a positive interval");
      opt.checkpoint_every = num;
    } else if (flag == "--resume") {
      opt.checkpoint_dir = val;
      opt.resume = true;
    } else if (flag == "--transport") {
      if (val != "loopback" && val != "socket") {
        return bad_value(flag, val, "loopback or socket");
      }
      opt.transport = val;
    } else if (flag == "--listen") {
      opt.listen = val;
    } else if (flag == "--connect") {
      opt.connect = val;
    } else if (flag == "--mode" || flag == "--routing") {
      if (val == "compact") {
        opt.mode = sim::RoutingMode::compact;
      } else if (val == "padded") {
        opt.mode = sim::RoutingMode::padded;
      } else if (val == "deterministic") {
        opt.mode = sim::RoutingMode::deterministic;
      } else if (val == "auto" || val == "automatic") {
        opt.mode = sim::RoutingMode::automatic;
      } else {
        return bad_value(flag, val, "compact, padded, deterministic or auto");
      }
    } else {
      std::cerr << "embsp: unknown flag " << flag << "\n";
      return false;
    }
  }
  if (opt.transport.empty()) {
    if (!opt.listen.empty() || !opt.connect.empty() || opt.rank_set) {
      std::cerr << "embsp: --listen/--connect/--rank require "
                   "--transport socket\n";
      return false;
    }
  } else {
    if (opt.transport == "loopback" &&
        (!opt.listen.empty() || !opt.connect.empty())) {
      std::cerr << "embsp: --listen/--connect only apply to "
                   "--transport socket\n";
      return false;
    }
    if (!opt.connect.empty() && !opt.listen.empty()) {
      std::cerr << "embsp: --listen and --connect are mutually exclusive\n";
      return false;
    }
    if (!opt.connect.empty() && !opt.rank_set) {
      std::cerr << "embsp: --connect requires --rank\n";
      return false;
    }
    if (opt.rank_set && opt.rank >= opt.p) {
      std::cerr << "embsp: --rank " << opt.rank
                << " out of range for --workers " << opt.p << "\n";
      return false;
    }
    // Features whose protocols assume shared memory; DistSimulator rejects
    // them too, but catching the combination here gives a usage-level
    // message instead of a runtime error.  (--pipeline is NOT one of them:
    // it composes with --transport — each rank runs the double-buffered
    // schedule and overlaps wire traffic with compute.)
    if (!opt.checkpoint_dir.empty()) {
      std::cerr << "embsp: --checkpoint/--resume are not supported with "
                   "--transport\n";
      return false;
    }
  }
  return true;
}

struct KeyLess {
  bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
};

// --- Output digest (--digest) ----------------------------------------------
// A running hash over the workload's collected outputs plus the model costs.
// Every folded quantity is deterministic for a fixed seed and config, so
// two invocations print the same digest iff they produced the same results
// at the same cost — the equality the crash/restart harness asserts between
// an uninterrupted run and a killed-and-resumed one.

std::uint64_t g_digest = 0x9e3779b97f4a7c15ULL;

void fold_digest(std::uint64_t x) {
  g_digest = util::mix64(g_digest ^ util::mix64(x + 0x9e3779b97f4a7c15ULL));
}

template <typename T>
void fold_digest_vec(const std::vector<T>& v) {
  // Every folded element type is either a scalar or a struct with explicit
  // padding fields, so hashing the raw bytes is well-defined.
  static_assert(std::is_trivially_copyable_v<T>);
  fold_digest(v.size());
  fold_digest(
      util::checksum64(std::as_bytes(std::span<const T>(v.data(), v.size()))));
}

void fold_digest_costs(const cgm::ExecResult& exec) {
  fold_digest(exec.lambda);
  fold_digest_vec(exec.costs.supersteps);
  if (exec.sim.has_value()) {
    const auto& io = exec.sim->total_io;
    fold_digest(io.parallel_ios);
    fold_digest(io.blocks_read);
    fold_digest(io.blocks_written);
    fold_digest(io.bytes_read);
    fold_digest(io.bytes_written);
  }
}

void print_digest() {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(g_digest));
  std::cout << "digest: " << buf << "\n";
}

void report(const Options& opt, const cgm::ExecResult& exec,
            const std::string& note) {
  // Worker ranks of a distributed run compute everything (the collect
  // phase is an allgather, so every rank holds the full result) but only
  // rank 0 speaks.
  if (opt.quiet) return;
  util::Table table({"metric", "value"});
  table.add_row({"workload", opt.workload});
  table.add_row({"machine", "p=" + std::to_string(opt.p) +
                                " D=" + std::to_string(opt.D) +
                                " B=" + std::to_string(opt.B) +
                                " M=" + util::fmt_bytes(opt.M)});
  table.add_row({"virtual processors", std::to_string(opt.v)});
  table.add_row({"supersteps (lambda)", std::to_string(exec.lambda)});
  if (exec.sim.has_value()) {
    const auto& r = *exec.sim;
    std::uint64_t max_ios = r.total_io.parallel_ios;
    for (const auto& io : r.per_proc_io) {
      max_ios = std::max(max_ios, io.parallel_ios);
    }
    table.add_row({"parallel I/Os (max/proc)", util::fmt_count(max_ios)});
    table.add_row(
        {"blocks moved", util::fmt_count(r.total_io.blocks_read +
                                         r.total_io.blocks_written)});
    table.add_row({"disk utilization",
                   util::fmt_double(r.total_io.utilization(opt.D), 3)});
    table.add_row({"I/O time (G=1)",
                   util::fmt_double(r.io_time(1.0), 0)});
    table.add_row({"group size k", std::to_string(r.group_size)});
    table.add_row({"disk tracks used (max)",
                   util::fmt_count(r.max_tracks_per_disk)});
    if (opt.pipeline) {
      table.add_row(
          {"compute/I-O overlap", util::fmt_double(r.overlap_ratio, 3)});
    }
    if (opt.p > 1) {
      table.add_row({"real comm bytes/superstep (max)",
                     util::fmt_bytes(r.real_comm_bytes)});
    }
    if (opt.faults > 0.0) {
      table.add_row({"injected faults",
                     util::fmt_count(r.recovery.faults.total())});
      table.add_row({"I/O retries", util::fmt_count(r.recovery.io_retries)});
      table.add_row({"I/O giveups", util::fmt_count(r.recovery.io_giveups)});
      table.add_row({"superstep rollbacks",
                     util::fmt_count(r.recovery.total_rollbacks())});
    }
  }
  if (!note.empty()) table.add_row({"result", note});
  std::cout << table.render();

  if (opt.digest) {
    fold_digest_costs(exec);
    print_digest();
  }

  if (!opt.csv.empty() && exec.sim.has_value()) {
    std::ofstream out(opt.csv);
    sim::write_cost_csv(out, *exec.sim);
    std::cout << "trace written to " << opt.csv << "\n";
  }
}

/// Options for worker ranks > 0: same simulation inputs, no output.  The
/// digest is rank 0's job (fold order must match a single-process run, and
/// g_digest is file-scope state — loopback worker threads must not touch
/// it concurrently).
Options worker_options(const Options& opt) {
  Options o = opt;
  o.quiet = true;
  o.digest = false;
  o.csv.clear();
  o.metrics.clear();
  o.trace.clear();
  return o;
}

template <typename Fn>
int run_transport_rank(const Options& o, sim::SimConfig cfg,
                       net::Transport& tp, Fn& fn) {
  if (o.quiet) cfg.recorder = nullptr;  // rank 0 owns the metrics snapshot
  cgm::DistEmExec exec(cfg, tp);
  return fn(exec, o);
}

template <typename Fn>
int run_loopback(const Options& opt, const sim::SimConfig& cfg, Fn& fn) {
  const std::uint32_t p = opt.p;
  auto eps = net::make_loopback_group(p);
  std::vector<int> rc(p, 0);
  std::vector<std::exception_ptr> errors(p);
  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      try {
        rc[r] = run_transport_rank(r == 0 ? opt : worker_options(opt), cfg,
                                   *eps[r], fn);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  // The rank that failed first aborted the group and its peers unwound
  // with PeerFailedError; surface the root cause, not the echo.
  std::exception_ptr root, echo;
  for (const auto& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const net::PeerFailedError&) {
      if (!echo) echo = e;
    } catch (...) {
      if (!root) root = e;
    }
  }
  if (root) std::rethrow_exception(root);
  if (echo) std::rethrow_exception(echo);
  int worst = 0;
  for (const int r : rc) worst = std::max(worst, r);
  return worst;
}

template <typename Fn>
int run_socket(const Options& opt, const sim::SimConfig& cfg, Fn& fn) {
  net::SocketConfig scfg;
  scfg.peers = opt.p;
  if (!opt.connect.empty()) {
    // Externally launched mesh: this process is exactly one rank.
    scfg.address = opt.connect;
    scfg.rank = opt.rank;
    auto tp = net::make_socket_transport(scfg);
    return run_transport_rank(opt.rank == 0 ? opt : worker_options(opt), cfg,
                              *tp, fn);
  }
  // Coordinator mode: fork ranks 1..p-1, run rank 0 here.  Forking happens
  // before any transport (or thread) exists; children inherit only the
  // parsed options and flushed stdio.
  const std::string addr =
      !opt.listen.empty()
          ? opt.listen
          : (std::filesystem::temp_directory_path() /
             ("embsp_mesh_" + std::to_string(::getpid())))
                .string();
  std::cout.flush();
  std::cerr.flush();
  std::vector<pid_t> kids;
  for (std::uint32_t r = 1; r < opt.p; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      const int err = errno;
      for (const pid_t k : kids) ::kill(k, SIGTERM);
      throw std::runtime_error(std::string("fork failed: ") +
                               std::strerror(err));
    }
    if (pid == 0) {
      int rc = 1;
      try {
        scfg.address = addr;
        scfg.rank = r;
        auto tp = net::make_socket_transport(scfg);
        rc = run_transport_rank(worker_options(opt), cfg, *tp, fn);
      } catch (const sim::CanceledError&) {
        rc = 130;
      } catch (const std::exception& e) {
        std::cerr << "embsp worker " << r << ": " << e.what() << "\n";
        rc = 1;
      }
      std::_Exit(rc);  // never unwind into the parent's stack/state
    }
    kids.push_back(pid);
  }
  int rc0 = 0;
  std::exception_ptr err;
  try {
    scfg.address = addr;
    scfg.rank = 0;
    auto tp = net::make_socket_transport(scfg);
    rc0 = run_transport_rank(opt, cfg, *tp, fn);
  } catch (...) {
    err = std::current_exception();
  }
  // Reap the workers before surfacing rank 0's outcome: a failed worker
  // turns into a nonzero exit, never a zombie.
  int worst = rc0;
  for (const pid_t k : kids) {
    int status = 0;
    while (::waitpid(k, &status, 0) < 0 && errno == EINTR) {
    }
    worst = std::max(worst, WIFEXITED(status) ? WEXITSTATUS(status) : 1);
  }
  if (err) std::rethrow_exception(err);
  return worst;
}

template <typename Fn>
int run_workload(const Options& opt, Fn fn) {
  sim::SimConfig cfg;
  cfg.machine.p = opt.p;
  cfg.machine.em = {opt.M, opt.D, opt.B, 1.0};
  cfg.k = opt.k;
  cfg.routing = opt.mode;
  cfg.zero_copy = opt.zero_copy;
  cfg.coalesce_io = opt.coalesce;
  cfg.auto_tune = opt.auto_tune;
  cfg.seed = opt.seed;
  if (opt.pipeline) {
    // Pipelining needs a concurrent engine, or submissions block inline.
    cfg.pipeline = true;
    cfg.io_engine = em::IoEngine::parallel;
    cfg.compute_threads = opt.compute_threads;
  }
  // An explicit --io-engine wins over --pipeline's default (uring is also a
  // concurrent engine, so pipelining composes with it).
  if (opt.io_engine == "serial") {
    cfg.io_engine = em::IoEngine::serial;
  } else if (opt.io_engine == "parallel") {
    cfg.io_engine = em::IoEngine::parallel;
  } else if (opt.io_engine == "uring") {
    cfg.io_engine = em::IoEngine::uring;
  }
  cfg.direct_io = opt.direct;
  cfg.disk_dir = opt.disk_dir;
  if (opt.faults > 0.0) {
    cfg.faults.seed = opt.seed;
    cfg.faults.read_error_rate = opt.faults;
    cfg.faults.write_error_rate = opt.faults;
    cfg.faults.torn_write_rate = opt.faults / 2;
    cfg.faults.bit_flip_rate = opt.faults / 2;
    cfg.block_checksums = true;
    // Superstep-granular rollback: the sequential simulator re-executes the
    // failed superstep; the parallel simulator rolls all processors back to
    // the last committed epoch together (coordinated recovery).
    cfg.superstep_recovery = true;
  }
  if (!opt.transport.empty()) {
    // DistSimulator has no coordinated rollback protocol yet; transient
    // injected faults are absorbed by per-transfer retry/backoff instead.
    cfg.superstep_recovery = false;
  }
  cfg.checkpoint.dir = opt.checkpoint_dir;
  cfg.checkpoint.every = opt.checkpoint_every;
  cfg.checkpoint.resume = opt.resume;
  cfg.cancel = &g_cancel;
  // The recorder outlives the run; sinks are written only when requested,
  // and a null cfg.recorder keeps the uninstrumented fast path.
  obs::Recorder recorder;
  if (!opt.metrics.empty() || !opt.trace.empty()) {
    recorder.trace_enabled = !opt.trace.empty();
    cfg.recorder = &recorder;
  }
  // Written on every exit path: an aborted or canceled run still leaves a
  // metrics snapshot and trace behind (that is when they matter most).
  auto write_sinks = [&] {
    if (!opt.metrics.empty()) {
      std::ofstream out(opt.metrics);
      recorder.registry.write_json(out);
      std::cout << "metrics written to " << opt.metrics << "\n";
    }
    if (!opt.trace.empty()) {
      std::ofstream out(opt.trace);
      recorder.trace.write_json(out);
      std::cout << "trace events written to " << opt.trace << "\n";
    }
  };
  int rc;
  try {
    if (opt.transport == "loopback") {
      rc = run_loopback(opt, cfg, fn);
    } else if (opt.transport == "socket") {
      rc = run_socket(opt, cfg, fn);
    } else if (opt.p == 1) {
      cgm::SeqEmExec exec(cfg);
      rc = fn(exec, opt);
    } else {
      cgm::ParEmExec exec(cfg);
      rc = fn(exec, opt);
    }
  } catch (const sim::CanceledError& e) {
    std::cerr << "canceled: " << e.what() << "\n";
    write_sinks();
    return 130;
  } catch (...) {
    write_sinks();
    throw;
  }
  write_sinks();
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return usage();

  std::signal(SIGINT, request_shutdown);
  std::signal(SIGTERM, request_shutdown);
  em::install_crash_hook_from_env();  // EMBSP_CRASH_AFTER_MS soak harness

  try {
    // The parameter shadows the parsed options on purpose: distributed
    // runs invoke this body once per rank with that rank's (possibly
    // quieted) options.
    return run_workload(opt, [&](auto& exec, const Options& opt) -> int {
      if (opt.workload == "sort") {
        auto keys = util::random_keys(opt.n, opt.seed);
        auto out = cgm::cgm_sort<std::uint64_t, KeyLess>(exec, keys, opt.v);
        const bool ok = std::is_sorted(out.sorted.begin(), out.sorted.end());
        if (opt.digest) fold_digest_vec(out.sorted);
        report(opt, out.exec, ok ? "sorted" : "NOT SORTED");
        return ok ? 0 : 1;
      }
      if (opt.workload == "permute") {
        auto values = util::random_keys(opt.n, opt.seed);
        auto perm = util::random_permutation(opt.n, opt.seed + 1);
        auto out = cgm::cgm_permute(exec, values, perm, opt.v);
        if (opt.digest) fold_digest_vec(out.values);
        report(opt, out.exec, "permuted " + util::fmt_count(opt.n));
        return 0;
      }
      if (opt.workload == "transpose") {
        std::uint64_t side = 1;
        while ((side * 2) * (side * 2) <= opt.n) side *= 2;
        auto m = util::random_keys(side * side, opt.seed);
        auto out = cgm::cgm_transpose(exec, m, side, side, opt.v);
        if (opt.digest) fold_digest_vec(out.data);
        report(opt, out.exec,
               std::to_string(side) + "x" + std::to_string(side));
        return 0;
      }
      if (opt.workload == "maxima") {
        auto pts = util::random_points_3d(opt.n, opt.seed);
        auto out = cgm::cgm_3d_maxima(exec, pts, opt.v);
        std::uint64_t count = 0;
        for (auto f : out.maximal) count += f;
        if (opt.digest) fold_digest_vec(out.maximal);
        report(opt, out.exec, util::fmt_count(count) + " maxima");
        return 0;
      }
      if (opt.workload == "dominance") {
        auto pts = util::random_points_2d(opt.n, opt.seed);
        std::vector<std::uint64_t> w(opt.n, 1);
        auto out = cgm::cgm_dominance_counts(exec, pts, w, opt.v);
        if (opt.digest) fold_digest_vec(out.counts);
        report(opt, out.exec, "counts computed");
        return 0;
      }
      if (opt.workload == "closest") {
        auto pts = util::random_points_2d(opt.n, opt.seed);
        auto out = cgm::cgm_closest_pair(exec, pts, opt.v);
        if (opt.digest) {
          fold_digest(out.best.tag_a);
          fold_digest(out.best.tag_b);
        }
        report(opt, out.exec,
               "pair (" + std::to_string(out.best.tag_a) + ", " +
                   std::to_string(out.best.tag_b) + ")");
        return 0;
      }
      if (opt.workload == "hull") {
        auto pts = util::random_points_2d(opt.n, opt.seed);
        auto out = cgm::cgm_convex_hull(exec, pts, opt.v);
        if (opt.digest) fold_digest_vec(out.hull_tags);
        report(opt, out.exec,
               std::to_string(out.hull.size()) + " hull vertices");
        return 0;
      }
      if (opt.workload == "envelope") {
        auto segs = util::random_disjoint_segments(opt.n, opt.seed);
        auto out = cgm::cgm_lower_envelope(exec, segs, opt.v);
        if (opt.digest) fold_digest_vec(out.envelope);
        report(opt, out.exec,
               std::to_string(out.envelope.size()) + " envelope pieces");
        return 0;
      }
      if (opt.workload == "listrank") {
        auto [succ, head] = util::random_list(opt.n, opt.seed);
        (void)head;
        auto out = cgm::cgm_list_ranking(exec, succ, opt.v);
        if (opt.digest) {
          fold_digest_vec(out.rank1);
          fold_digest_vec(out.rank2);
        }
        report(opt, out.exec, "ranked " + util::fmt_count(opt.n));
        return 0;
      }
      if (opt.workload == "euler") {
        auto parent = util::random_tree(opt.n, opt.seed);
        auto out = cgm::cgm_euler_tour(exec, parent, opt.v);
        std::uint64_t max_depth = 0;
        for (auto d : out.depth) max_depth = std::max(max_depth, d);
        if (opt.digest) {
          fold_digest_vec(out.depth);
          fold_digest_vec(out.subtree_size);
          fold_digest_vec(out.first_pos);
          fold_digest_vec(out.last_pos);
          fold_digest_costs(out.link_exec);
        }
        report(opt, out.rank_exec,
               "tree height " + std::to_string(max_depth));
        return 0;
      }
      if (opt.workload == "cc") {
        auto [edges, truth] = util::random_components_graph(
            opt.n, std::max<std::uint64_t>(2, opt.n / 1000 + 2), opt.n,
            opt.seed);
        (void)truth;
        auto out = cgm::cgm_connected_components(exec, opt.n, edges, opt.v);
        std::set<std::uint64_t> labels(out.component.begin(),
                                       out.component.end());
        if (opt.digest) {
          fold_digest_vec(out.component);
          fold_digest_vec(out.tree_edges);
        }
        report(opt, out.exec,
               std::to_string(labels.size()) + " components, " +
                   util::fmt_count(out.tree_edges.size()) + " forest edges");
        return 0;
      }
      if (opt.workload == "lca") {
        auto parent = util::random_tree(opt.n, opt.seed);
        util::Rng rng(opt.seed + 2);
        std::vector<std::pair<std::uint64_t, std::uint64_t>> queries;
        for (int i = 0; i < 256; ++i) {
          queries.emplace_back(rng.below(opt.n), rng.below(opt.n));
        }
        auto out = cgm::cgm_batched_lca(exec, parent, queries, opt.v);
        if (opt.digest) fold_digest_vec(out.lca);
        report(opt, out.exec, "256 queries answered");
        return 0;
      }
      usage();
      return 2;
    });
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
