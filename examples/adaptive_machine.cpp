// The conclusion's adaptivity claim:
//
//   "an application that is based on our method could adapt dynamically to
//    the operating parameters and numbers of the available resources such
//    as processors, memory, and disks."
//
// One CGM sort — written once, with no machine knowledge — is executed on
// six differently shaped EM machines.  The simulation adapts k, the bucket
// layout and the blocking automatically; the table shows how the cost moves
// with each resource.
//
//   ./examples/adaptive_machine

#include <iostream>

#include "embsp/embsp.hpp"

using namespace embsp;

namespace {
struct KeyLess {
  bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
};
}  // namespace

int main() {
  const std::uint64_t n = 1 << 16;
  auto keys = util::random_keys(n, 2026);
  auto want = keys;
  std::sort(want.begin(), want.end());

  struct Config {
    const char* label;
    std::uint32_t p;
    std::size_t D, B, M;
  };
  const Config configs[] = {
      {"laptop: 1 proc, 1 disk", 1, 1, 4096, 1 << 20},
      {"laptop + SSD array: 1 proc, 8 disks", 1, 8, 4096, 1 << 20},
      {"small block device: 1 proc, 4 disks, B=512", 1, 4, 512, 1 << 20},
      {"memory-starved node: 1 proc, 4 disks, M=64K", 1, 4, 4096, 1 << 16},
      {"cluster: 4 procs x 2 disks", 4, 2, 4096, 1 << 20},
      {"big cluster: 8 procs x 4 disks", 8, 4, 4096, 1 << 20},
  };

  util::Table table({"machine", "k", "max IOs/proc", "I/O time (G=1)",
                     "utilization", "sorted"});
  for (const auto& c : configs) {
    sim::SimConfig cfg;
    cfg.machine.p = c.p;
    cfg.machine.em = {c.M, c.D, c.B, 1.0};
    cgm::ParEmExec exec(cfg);
    auto out = cgm::cgm_sort<std::uint64_t, KeyLess>(exec, keys, 64);
    std::uint64_t ios = 0;
    double util_sum = 0;
    for (const auto& io : out.exec.sim->per_proc_io) {
      ios = std::max(ios, io.parallel_ios);
      util_sum += io.utilization(c.D);
    }
    table.add_row({c.label, std::to_string(out.exec.sim->group_size),
                   util::fmt_count(ios),
                   util::fmt_double(static_cast<double>(ios) * 1.0, 0),
                   util::fmt_double(util_sum / c.p, 2),
                   out.sorted == want ? "yes" : "NO"});
  }
  std::cout << "one cgm_sort call, six machines (n = " << n << " keys):\n"
            << table.render()
            << "\nmore disks / more processors / bigger blocks all reduce "
               "I/O time\nwithout touching the algorithm — the adaptivity "
               "the paper's conclusion\ndescribes.\n";
  return 0;
}
