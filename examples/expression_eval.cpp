// Expression tree evaluation at external-memory scale — Table 1's "tree
// contraction, expression tree evaluation" row as an application.
//
// Builds a large random arithmetic expression over Z_2^64 (a full binary
// tree of + and * nodes), evaluates every subtree with the CGM
// rake-and-compress program on a parallel EM machine, and cross-checks the
// root against a sequential evaluation.
//
//   ./examples/expression_eval [internal-nodes]

#include <cstdlib>
#include <iostream>

#include "embsp/embsp.hpp"

using namespace embsp;

int main(int argc, char** argv) {
  const std::uint64_t internal =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (1ull << 13);

  // Random full binary tree: repeatedly split a random leaf.
  util::Rng rng(2027);
  cgm::ExpressionTree t;
  t.parent = {0};
  t.op = {cgm::ExprOp::kAdd};
  t.leaf_value = {rng.next() % 1000};
  t.is_leaf = {1};
  std::vector<std::uint64_t> leaves{0};
  for (std::uint64_t s = 0; s < internal; ++s) {
    const auto pick = static_cast<std::size_t>(rng.below(leaves.size()));
    const std::uint64_t u = leaves[pick];
    leaves[pick] = leaves.back();
    leaves.pop_back();
    t.is_leaf[u] = 0;
    t.op[u] = (rng.next() & 1) ? cgm::ExprOp::kMul : cgm::ExprOp::kAdd;
    for (int c = 0; c < 2; ++c) {
      leaves.push_back(t.parent.size());
      t.parent.push_back(u);
      t.op.push_back(cgm::ExprOp::kAdd);
      t.leaf_value.push_back(rng.next() % 1000);
      t.is_leaf.push_back(1);
    }
  }
  const std::uint64_t n = t.parent.size();
  std::cout << "expression tree: " << n << " nodes (" << internal
            << " operators), arithmetic in Z_2^64\n";

  sim::SimConfig cfg;
  cfg.machine.p = 4;
  cfg.machine.em = {1 << 22, 2, 1024, 1.0};
  cgm::ParEmExec exec(cfg);
  auto out = cgm::cgm_tree_contraction(exec, t, 32);

  auto want = cgm::evaluate_expression_tree(t);
  const bool ok = out.value == want;
  std::cout << "root value:            " << out.value[0] << "\n";
  std::cout << "all subtree values ok: " << (ok ? "yes" : "NO") << "\n";
  std::cout << "supersteps:            " << out.exec.lambda
            << " (rake+compress rounds, vs " << n << " sequential steps)\n";
  std::uint64_t ios = 0;
  for (const auto& io : out.exec.sim->per_proc_io) {
    ios = std::max(ios, io.parallel_ios);
  }
  std::cout << "parallel I/Os (max/proc): " << ios << "\n";
  return ok ? 0 : 1;
}
