// Quickstart: write a BSP* program once, run it in memory and on a
// simulated multi-disk external-memory machine.
//
// The program computes, for every virtual processor, the sum of values
// held by all lower-numbered processors (an exclusive prefix sum) using
// one all-to-higher broadcast superstep — tiny, but it exercises the full
// pipeline: contexts parked on disk between supersteps, messages cut into
// blocks, randomized bucket placement, and the SimulateRouting
// reorganization of Algorithm 2.
//
//   ./examples/quickstart

#include <iostream>

#include "embsp/embsp.hpp"

using namespace embsp;

// A BSP* program = a State (serializable context) + a superstep function.
struct PrefixSum {
  struct State {
    std::uint64_t value = 0;
    std::uint64_t prefix = 0;
    void serialize(util::Writer& w) const {
      w.write(value);
      w.write(prefix);
    }
    void deserialize(util::Reader& r) {
      value = r.read<std::uint64_t>();
      prefix = r.read<std::uint64_t>();
    }
  };

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const {
    if (step == 0) {
      for (std::uint32_t q = env.pid + 1; q < env.nprocs; ++q) {
        out.send_value(q, s.value);
      }
      return true;  // one more superstep, please
    }
    for (std::size_t i = 0; i < in.count(); ++i) {
      s.prefix += in.value<std::uint64_t>(i);
    }
    return false;  // done
  }
};

int main() {
  constexpr std::uint32_t kV = 32;  // virtual BSP* processors
  PrefixSum prog;
  auto make_state = [](std::uint32_t pid) {
    PrefixSum::State s;
    s.value = pid + 1;
    return s;
  };

  // 1. Reference run: the direct in-memory BSP runtime.
  std::vector<std::uint64_t> expected(kV);
  bsp::DirectRuntime direct;
  direct.run<PrefixSum>(prog, kV, make_state,
                        [&](std::uint32_t pid, PrefixSum::State& s) {
                          expected[pid] = s.prefix;
                        });

  // 2. The same program on a single-processor EM-BSP* machine with 4 disks
  //    (Algorithm 1 of the paper).  mu/gamma are measured automatically.
  sim::SimConfig cfg;
  cfg.machine.p = 1;
  cfg.machine.bsp.v = kV;
  cfg.machine.em = {1 << 16 /*M*/, 4 /*D*/, 256 /*B*/, 1.0 /*G*/};
  std::vector<std::uint64_t> got(kV);
  auto result = sim::simulate_measured<PrefixSum>(
      prog, cfg, make_state, [&](std::uint32_t pid, PrefixSum::State& s) {
        got[pid] = s.prefix;
      });

  std::cout << "results match the in-memory run: "
            << (got == expected ? "yes" : "NO") << "\n";
  std::cout << "supersteps (lambda):       " << result.lambda() << "\n";
  std::cout << "parallel I/O operations:   " << result.total_io.parallel_ios
            << "\n";
  std::cout << "blocks moved:              "
            << result.total_io.blocks_read + result.total_io.blocks_written
            << "\n";
  std::cout << "disk utilization:          "
            << result.total_io.utilization(4) << " (1.0 = all 4 disks busy "
            << "every I/O)\n";
  std::cout << "model I/O time (G=1):      " << result.io_time(1.0) << "\n";
  std::cout << "group size k used:         " << result.group_size << "\n";
  return got == expected ? 0 : 1;
}
