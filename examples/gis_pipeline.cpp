// GIS-style geometry pipeline — the application domain the paper's
// introduction motivates (GIS, VLSI, computational geometry).
//
// On one simulated parallel EM machine (p = 4 processors x 2 disks each)
// the pipeline computes, over the same point set:
//   1. the 3D maxima (skyline) of sites scored by (x, y, elevation),
//   2. the closest pair of sites (collision / duplicate detection),
//   3. the convex hull of the site map (coverage boundary),
//   4. dominance counts (how many sites each site outranks in both
//      coordinates).
//
//   ./examples/gis_pipeline [n]

#include <cstdlib>
#include <iostream>

#include "embsp/embsp.hpp"

using namespace embsp;

int main(int argc, char** argv) {
  const std::uint64_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (1ull << 14);
  constexpr std::uint32_t kV = 32;

  sim::SimConfig cfg;
  cfg.machine.p = 4;
  cfg.machine.em = {1 << 22, 2, 1024, 1.0};
  cgm::ParEmExec exec(cfg);

  std::cout << "GIS pipeline over " << n << " sites on a p=4, D=2 EM machine\n";

  auto sites3 = util::random_points_3d(n, 7);
  auto sites2 = util::random_points_2d(n, 8);
  std::vector<std::uint64_t> weights(n, 1);

  auto maxima = cgm::cgm_3d_maxima(exec, sites3, kV);
  std::uint64_t skyline = 0;
  for (auto f : maxima.maximal) skyline += f;
  std::cout << "1. skyline sites:          " << skyline << " ("
            << maxima.exec.lambda << " supersteps, "
            << maxima.exec.sim->total_io.parallel_ios << " IOs max/proc)\n";

  auto pair = cgm::cgm_closest_pair(exec, sites2, kV);
  std::cout << "2. closest pair:           sites " << pair.best.tag_a
            << " and " << pair.best.tag_b << ", distance "
            << std::sqrt(pair.best.dist2) << "\n";

  auto hull = cgm::cgm_convex_hull(exec, sites2, kV);
  std::cout << "3. coverage boundary:      " << hull.hull.size()
            << " hull vertices\n";

  auto dom = cgm::cgm_dominance_counts(exec, sites2, weights, kV);
  std::uint64_t best = 0;
  for (std::uint64_t i = 1; i < n; ++i) {
    if (dom.counts[i] > dom.counts[best]) best = i;
  }
  std::cout << "4. most dominant site:     #" << best << " outranks "
            << dom.counts[best] << " sites ("
            << dom.exec.lambda << " supersteps)\n";

  // Cross-check one result against brute force so the example fails loudly
  // if anything regresses.
  const bool ok = maxima.maximal == cgm::maxima3d_bruteforce(sites3);
  std::cout << "skyline verified against brute force: " << (ok ? "yes" : "NO")
            << "\n";
  return ok ? 0 : 1;
}
