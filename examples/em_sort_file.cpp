// STXXL-style usage: sort a dataset that lives on real disk files.
//
// The simulated EM machine's drives are backed by flat files (one per
// drive), so every parallel I/O the cost meter charges corresponds to real
// file reads/writes.  The same cgm_sort call used everywhere else runs
// unchanged — only the backend factory differs.
//
//   ./examples/em_sort_file [n]

#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "embsp/embsp.hpp"

using namespace embsp;

namespace {
struct KeyLess {
  bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
};
}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                   : (1ull << 18);
  constexpr std::size_t kD = 4;
  constexpr std::size_t kB = 4096;
  std::cout << "sorting " << n << " keys (" << util::fmt_bytes(n * 8)
            << ") on " << kD << " file-backed disks\n";

  auto keys = util::random_keys(n, 42);

  sim::SimConfig cfg;
  cfg.machine.p = 1;
  cfg.machine.bsp.v = 64;
  cfg.machine.em = {1 << 22, kD, kB, 1.0};

  const auto dir = std::filesystem::temp_directory_path() / "embsp_demo";
  std::filesystem::create_directories(dir);
  auto backend = [dir](std::size_t disk) {
    return em::make_file_backend(
        (dir / ("disk" + std::to_string(disk) + ".bin")).string());
  };

  // Configure mu/gamma with a dry run, then build the simulator with the
  // file backends (what cgm::SeqEmExec does internally, spelled out here
  // because of the custom backend).
  cgm::SortProgram<std::uint64_t, KeyLess> prog;
  using State = cgm::SortProgram<std::uint64_t, KeyLess>::State;
  cgm::BlockDist dist{n, cfg.machine.bsp.v};
  auto make_state = [&](std::uint32_t pid) {
    State s;
    s.data.assign(keys.begin() + dist.first(pid),
                  keys.begin() + dist.first(pid) + dist.count(pid));
    return s;
  };
  cfg = cgm::autoconfigure(cfg, prog, cfg.machine.bsp.v,
                           std::function<State(std::uint32_t)>(make_state));
  sim::SeqSimulator simulator(cfg, backend);

  std::vector<std::uint64_t> sorted;
  auto result = simulator.run<cgm::SortProgram<std::uint64_t, KeyLess>>(
      prog, make_state, [&](std::uint32_t, State& s) {
        sorted.insert(sorted.end(), s.data.begin(), s.data.end());
      });

  const bool ok = std::is_sorted(sorted.begin(), sorted.end()) &&
                  sorted.size() == n;
  std::cout << "sorted correctly:        " << (ok ? "yes" : "NO") << "\n";
  std::cout << "supersteps:              " << result.lambda() << "\n";
  std::cout << "parallel I/O operations: " << result.total_io.parallel_ios
            << "\n";
  std::cout << "bytes through the disks: "
            << util::fmt_bytes(result.total_io.bytes_read +
                               result.total_io.bytes_written)
            << "\n";
  std::uint64_t on_disk = 0;
  for (std::size_t d = 0; d < kD; ++d) {
    on_disk += simulator.disks().disk(d).tracks_used() * kB;
  }
  std::cout << "disk space used:         " << util::fmt_bytes(on_disk)
            << " across " << kD << " files in " << dir << "\n";
  std::filesystem::remove_all(dir);
  return ok ? 0 : 1;
}
