// Graph analytics on the simulated parallel EM machine: connected
// components + spanning forest of a large sparse graph, then tree
// statistics (depths, subtree sizes) and batched LCA queries over one of
// its spanning trees — the Group C toolbox of Table 1 end to end.
//
//   ./examples/graph_analytics [n]

#include <cstdlib>
#include <iostream>
#include <set>

#include "embsp/embsp.hpp"

using namespace embsp;

int main(int argc, char** argv) {
  const std::uint64_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (1ull << 13);
  constexpr std::uint32_t kV = 32;

  sim::SimConfig cfg;
  cfg.machine.p = 4;
  cfg.machine.em = {1 << 22, 2, 1024, 1.0};
  cgm::ParEmExec exec(cfg);

  auto [edges, truth] = util::random_components_graph(n, 6, n, 99);
  std::cout << "graph: " << n << " vertices, " << edges.size()
            << " edges, 6 planted components\n";

  // 1. Connected components + spanning forest.
  auto cc = cgm::cgm_connected_components(exec, n, edges, kV);
  std::set<std::uint64_t> labels(cc.component.begin(), cc.component.end());
  std::cout << "1. components found:      " << labels.size() << " (forest of "
            << cc.tree_edges.size() << " edges, " << cc.exec.lambda
            << " supersteps)\n";

  // 2. Root the largest component's spanning tree (sequential glue: build
  //    the parent array from the forest edges) and compute tree stats.
  std::vector<std::vector<std::uint64_t>> adj(n);
  for (auto id : cc.tree_edges) {
    adj[edges[id].u].push_back(edges[id].v);
    adj[edges[id].v].push_back(edges[id].u);
  }
  // Extract vertex 0's component as a compact tree (labels 0..size-1) —
  // the LCA machinery wants a single tree.
  std::vector<std::uint64_t> compact(n, UINT64_MAX);
  std::vector<std::uint64_t> members;
  std::vector<std::uint64_t> parent;  // compacted parent array
  {
    std::vector<std::uint64_t> stack{0};
    compact[0] = 0;
    members.push_back(0);
    parent.push_back(0);
    while (!stack.empty()) {
      const auto u = stack.back();
      stack.pop_back();
      for (auto w : adj[u]) {
        if (compact[w] != UINT64_MAX) continue;
        compact[w] = members.size();
        members.push_back(w);
        parent.push_back(compact[u]);
        stack.push_back(w);
      }
    }
  }
  const std::uint64_t tree_size = members.size();
  std::cout << "2. spanning tree of vertex 0's component: " << tree_size
            << " vertices\n";

  auto tour = cgm::cgm_euler_tour(exec, parent, kV);
  std::uint64_t deepest = 0;
  for (std::uint64_t x = 0; x < tree_size; ++x) {
    if (tour.depth[x] > tour.depth[deepest]) deepest = x;
  }
  std::cout << "   deepest vertex:        #" << members[deepest]
            << " at depth " << tour.depth[deepest]
            << "; subtree sizes computed for all vertices\n";

  // 3. Batched LCA queries inside the component.
  util::Rng rng(123);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> queries;
  for (int i = 0; i < 64; ++i) {
    queries.emplace_back(rng.below(tree_size), rng.below(tree_size));
  }
  auto lca = cgm::cgm_batched_lca(exec, parent, queries, kV);
  std::cout << "3. answered " << queries.size()
            << " LCA queries; first: lca(#" << members[queries[0].first]
            << ", #" << members[queries[0].second] << ") = #"
            << members[lca.lca[0]] << "\n";

  // Sanity: component labels must match the planted structure.
  bool ok = labels.size() == 6;
  for (const auto& e : edges) {
    ok = ok && cc.component[e.u] == cc.component[e.v];
  }
  std::cout << "component labels verified: " << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
