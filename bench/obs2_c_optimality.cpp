// [O2] Observation 2 — c-optimality is preserved.
//
// A c-optimal BSP* algorithm stays c-optimal after simulation when the
// communication and I/O overheads are o(1) relative to computation.  This
// bench grows the per-processor load of the CGM sort and reports the
// ratios (communication volume)/(charged computation) and
// (I/O blocks)/(charged computation): both must *decrease* as n grows —
// the o(1) trend of §5.4.
#include <iostream>

#include "bench_util.hpp"
#include "cgm/sort.hpp"
#include "util/workloads.hpp"

int main() {
  using namespace embsp;
  using namespace embsp::bench;
  banner("O2", "c-optimality: overhead ratios shrink with n");

  struct KeyLess {
    bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
  };
  constexpr std::uint32_t kV = 32;

  util::Table table({"n", "charged comp ops", "comm bytes", "IO blocks",
                     "comm/comp", "IO/comp"});
  double prev_comm_ratio = 1e18, prev_io_ratio = 1e18;
  bool decreasing = true;
  for (std::uint64_t n : {1u << 12, 1u << 14, 1u << 16, 1u << 18}) {
    auto keys = util::random_keys(n, n ^ 0xbeef);
    cgm::SeqEmExec exec(machine(1, 4, 512, 1 << 22));
    auto out = cgm::cgm_sort<std::uint64_t, KeyLess>(exec, keys, kV);
    std::uint64_t comp = 0;
    for (const auto& s : out.exec.costs.supersteps) comp += s.total_work;
    const std::uint64_t comm = out.exec.costs.total_bytes();
    const std::uint64_t io_blocks = out.exec.sim->total_io.blocks_read +
                                    out.exec.sim->total_io.blocks_written;
    const double comm_ratio =
        static_cast<double>(comm) / static_cast<double>(comp);
    const double io_ratio =
        static_cast<double>(io_blocks) / static_cast<double>(comp);
    table.add_row({util::fmt_count(n), util::fmt_count(comp),
                   util::fmt_count(comm), util::fmt_count(io_blocks),
                   util::fmt_double(comm_ratio, 4),
                   util::fmt_double(io_ratio, 6)});
    decreasing = decreasing && comm_ratio <= prev_comm_ratio * 1.05 &&
                 io_ratio <= prev_io_ratio * 1.05;
    prev_comm_ratio = comm_ratio;
    prev_io_ratio = io_ratio;
  }
  std::cout << table.render();
  verdict(decreasing,
          "communication and I/O overhead per computation operation do not "
          "grow with n (log-factor computation growth drives them to o(1))");
  return 0;
}
