// [T1-B] Table 1, Group B — GIS / computational geometry algorithms.
//
// Regenerates the Group B rows: the simulated EM-CGM algorithms run with
// small, measured lambda and I/O time ~O~(lambda * n/(pBD)) — the optimal
// shape Corollary 1 promises (previous sequential EM algorithms pay an
// extra log_{M/B}(n/B) factor and use one processor).
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "cgm/geometry_closest_pair.hpp"
#include "cgm/geometry_dominance.hpp"
#include "cgm/geometry_envelope.hpp"
#include "cgm/geometry_hull.hpp"
#include "cgm/geometry_maxima.hpp"
#include "cgm/geometry_separability.hpp"
#include "util/workloads.hpp"

namespace {

using namespace embsp;
using namespace embsp::bench;

constexpr std::size_t kD = 4;
constexpr std::size_t kB = 512;
constexpr std::size_t kM = 1 << 22;
constexpr std::uint32_t kV = 32;
constexpr std::uint32_t kP = 4;

struct Row {
  std::string name;
  std::size_t lambda1 = 0;
  std::uint64_t ios1 = 0;
  std::size_t lambda4 = 0;
  std::uint64_t ios4 = 0;  // max per processor
  double record_bytes = 0; // bytes per input record for the prediction
  std::uint64_t n = 0;
};

template <typename Fn1, typename Fn4>
Row run_row(const std::string& name, std::uint64_t n, double rec_bytes,
            Fn1 fn1, Fn4 fn4) {
  Row row;
  row.name = name;
  row.n = n;
  row.record_bytes = rec_bytes;
  cgm::SeqEmExec seq(machine(1, kD, kB, kM));
  auto r1 = fn1(seq);
  row.lambda1 = r1.lambda;
  row.ios1 = algorithm_ios(*r1.sim);
  cgm::ParEmExec par(machine(kP, kD, kB, kM));
  auto r4 = fn4(par);
  row.lambda4 = r4.lambda;
  for (const auto& io : r4.sim->per_proc_io) {
    row.ios4 = std::max(row.ios4, io.parallel_ios);
  }
  return row;
}

}  // namespace

int main() {
  banner("T1-B", "Table 1 Group B: geometry on the simulated EM machine");
  const std::uint64_t n = 1 << 15;

  auto pts3 = util::random_points_3d(n, 1);
  auto pts2 = util::random_points_2d(n, 2);
  std::vector<std::uint64_t> weights(n, 1);
  auto segs = util::random_disjoint_segments(n / 4, 3);

  std::vector<Row> rows;
  rows.push_back(run_row(
      "3D-maxima", n, 40,
      [&](auto& e) { return cgm::cgm_3d_maxima(e, pts3, kV).exec; },
      [&](auto& e) { return cgm::cgm_3d_maxima(e, pts3, kV).exec; }));
  rows.push_back(run_row(
      "2D dominance counting", n, 56,
      [&](auto& e) {
        return cgm::cgm_dominance_counts(e, pts2, weights, kV).exec;
      },
      [&](auto& e) {
        return cgm::cgm_dominance_counts(e, pts2, weights, kV).exec;
      }));
  rows.push_back(run_row(
      "closest pair (2D-NN)", n, 24,
      [&](auto& e) { return cgm::cgm_closest_pair(e, pts2, kV).exec; },
      [&](auto& e) { return cgm::cgm_closest_pair(e, pts2, kV).exec; }));
  rows.push_back(run_row(
      "2D convex hull", n, 24,
      [&](auto& e) { return cgm::cgm_convex_hull(e, pts2, kV).exec; },
      [&](auto& e) { return cgm::cgm_convex_hull(e, pts2, kV).exec; }));
  rows.push_back(run_row(
      "lower envelope", segs.size(), 40,
      [&](auto& e) { return cgm::cgm_lower_envelope(e, segs, kV).exec; },
      [&](auto& e) { return cgm::cgm_lower_envelope(e, segs, kV).exec; }));
  // Separability: two clusters, a batch of query directions.
  std::vector<util::Point2D> set_a, set_b;
  {
    util::Rng rng(4);
    for (std::uint64_t i = 0; i < n / 2; ++i) {
      set_a.push_back({rng.uniform01() * 0.4, rng.uniform01()});
      set_b.push_back({0.55 + rng.uniform01() * 0.4, rng.uniform01()});
    }
  }
  std::vector<util::Point2D> dirs{{-1, 0}, {1, 0}, {0, 1}, {1, 1}};
  rows.push_back(run_row(
      "separability (uni/multi)", n, 24,
      [&](auto& e) {
        return cgm::cgm_separability(e, set_a, set_b, dirs, kV).exec_a;
      },
      [&](auto& e) {
        return cgm::cgm_separability(e, set_a, set_b, dirs, kV).exec_a;
      }));

  util::Table table({"problem", "n", "lambda", "prev-EM formula IOs",
                     "p=1 IOs", "p=4 IOs(max)", "p1/p4"});
  bool parallel_ok = true;
  bool lambda_ok = true;
  for (const auto& r : rows) {
    // Table 1 column 2: previously known sequential EM methods cost
    // O((n/B) log_{M/B}(n/B)) I/Os — no /D term, single processor.
    const double blocks = static_cast<double>(r.n) * r.record_bytes / kB;
    const double logf =
        std::log(blocks) / std::log(static_cast<double>(kM) / kB);
    const double prev_formula = blocks * std::max(1.0, logf);
    const double speedup =
        static_cast<double>(r.ios1) / std::max<std::uint64_t>(1, r.ios4);
    table.add_row({r.name, util::fmt_count(r.n), std::to_string(r.lambda1),
                   util::fmt_double(prev_formula, 0), util::fmt_count(r.ios1),
                   util::fmt_count(r.ios4), util::fmt_ratio(speedup)});
    parallel_ok = parallel_ok && speedup > 1.5;
    // O(1)-round algorithms stay constant; merge-tree ones are <= ~4+2log2(v).
    lambda_ok = lambda_ok && r.lambda1 <= 4 + 2 * 5 + 2;
  }
  std::cout << table.render();
  verdict(parallel_ok,
          "every Group B algorithm gains from multiple processors "
          "(p=4 max-per-processor I/O well below p=1)");
  verdict(lambda_ok,
          "lambda is O(1) for sort-based rows and <= O(log v) for "
          "merge-tree rows (vs Theta(n/B log n/B)-I/O sequential methods)");
  return 0;
}
