// [L10] Lemma 10 / §5.2 — randomized routing under adversarial patterns.
//
// The parallel simulator scatters generated packets to *random* real
// processors precisely so that adversarial communication patterns (all
// virtual processors flooding one destination) cannot overload a single
// machine.  This bench runs a hot-spot pattern — every virtual processor
// sends its whole budget to virtual processor 0 — and compares the real
// per-processor I/O and communication balance of the randomized scatter
// against the deterministic (round-robin) variant and against theory.
#include <iostream>

#include "bench_util.hpp"
#include "sim/par_simulator.hpp"
#include "sim/tail_bounds.hpp"
#include "util/table.hpp"

namespace {

using namespace embsp;
using namespace embsp::bench;

/// Hot spot: every processor sends `words` to processor 0, twice.
struct HotSpotProgram {
  std::size_t rounds = 2;
  std::size_t words = 64;

  struct State {
    std::uint64_t sum = 0;
    void serialize(util::Writer& w) const { w.write(sum); }
    void deserialize(util::Reader& r) { sum = r.read<std::uint64_t>(); }
  };

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const {
    for (std::size_t i = 0; i < in.count(); ++i) {
      for (auto x : in.vector<std::uint64_t>(i)) s.sum += x;
    }
    if (step < rounds) {
      std::vector<std::uint64_t> payload(words, env.pid + step);
      out.send_vector(0, payload);
      return true;
    }
    return false;
  }
};

}  // namespace

int main() {
  banner("L10", "hot-spot traffic: randomized vs deterministic scatter");

  constexpr std::uint32_t kP = 4;
  constexpr std::uint32_t kV = 64;
  HotSpotProgram prog;
  auto make = [](std::uint32_t) { return HotSpotProgram::State{}; };

  util::Table table({"scatter", "max IOs/proc", "min IOs/proc",
                     "max/min imbalance", "real comm (max/superstep)"});
  double rand_imbalance = 0;
  for (auto mode :
       {sim::RoutingMode::compact, sim::RoutingMode::deterministic}) {
    auto cfg = machine(kP, 2, 256, 1 << 20);
    cfg.machine.bsp.v = kV;
    cfg.routing = mode;
    cfg.mu = 64;
    cfg.gamma = 64 * 8 + 8 + 64;
    sim::ParSimulator simr(cfg);
    std::uint64_t sum = 0;
    auto result = simr.run<HotSpotProgram>(
        prog, make,
        [&](std::uint32_t, HotSpotProgram::State& s) { sum += s.sum; });
    std::uint64_t lo = UINT64_MAX, hi = 0;
    for (const auto& io : result.per_proc_io) {
      lo = std::min(lo, io.parallel_ios);
      hi = std::max(hi, io.parallel_ios);
    }
    const double imbalance =
        static_cast<double>(hi) / static_cast<double>(std::max<std::uint64_t>(
                                      1, lo));
    if (mode == sim::RoutingMode::compact) rand_imbalance = imbalance;
    table.add_row({mode == sim::RoutingMode::compact
                       ? "randomized (Lemma 10)"
                       : "deterministic round-robin",
                   util::fmt_count(hi), util::fmt_count(lo),
                   util::fmt_ratio(imbalance),
                   util::fmt_bytes(result.real_comm_bytes)});
  }
  std::cout << table.render();
  // Theory: x = v*(gamma/b) packets into p bins; overload beyond l*x/p is
  // exponentially unlikely.
  const double bound = sim::lemma10_tail(2.0, kV * 3.0, kP);
  std::cout << "  Lemma 10 bound for 2x overload at this scale: "
            << util::fmt_double(bound, 4) << "\n";
  verdict(rand_imbalance < 2.0,
          "random intermediate destinations keep per-processor load within "
          "2x under an all-to-one pattern");
  return 0;
}
