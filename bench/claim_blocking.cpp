// [C-B] §1 claim — "if I/O is not fully blocked, the runtime can typically
// be up to a factor of 10^3 (the blocking factor) too high".
//
// Compares the per-record (unblocked) EM permutation against blocked
// strategies while sweeping the block size: the gap tracks the blocking
// factor B/8 (records per block).
#include <iostream>

#include "baseline/em_permutation.hpp"
#include "bench_util.hpp"
#include "cgm/permutation.hpp"
#include "util/workloads.hpp"

int main() {
  using namespace embsp;
  using namespace embsp::bench;
  banner("C-B", "blocking factor: per-record vs blocked permutation");

  const std::uint64_t n = 1 << 13;
  auto values = util::random_keys(n, 6);
  auto perm = util::random_permutation(n, 7);

  util::Table table({"B (bytes)", "records/block", "naive IOs",
                     "sort-based IOs", "EM-CGM IOs", "naive/sort",
                     "blocking factor"});
  bool ok = true;
  for (std::size_t B : {64u, 256u, 1024u, 4096u}) {
    em::DiskArray d1(2, B), d2(2, B);
    baseline::EmPermStats naive_st, sort_st;
    baseline::em_permute_naive(d1, values, perm, 1 << 15, &naive_st);
    baseline::em_permute_sort(d2, values, perm, 1 << 15, &sort_st);
    cgm::SeqEmExec exec(machine(1, 2, B, 1 << 20));
    auto out = cgm::cgm_permute(exec, values, perm, 32);
    const double ratio =
        static_cast<double>(naive_st.algorithm.parallel_ios) /
        static_cast<double>(sort_st.algorithm.parallel_ios);
    table.add_row({std::to_string(B), std::to_string(B / 8),
                   util::fmt_count(naive_st.algorithm.parallel_ios),
                   util::fmt_count(sort_st.algorithm.parallel_ios),
                   util::fmt_count(algorithm_ios(*out.exec.sim)),
                   util::fmt_ratio(ratio),
                   util::fmt_ratio(static_cast<double>(B) / 8.0)});
    // The gap must grow with the blocking factor and reach a large
    // fraction of it (sort pays ~2 extra passes).
    ok = ok && ratio > static_cast<double>(B) / 8.0 / 8.0;
  }
  std::cout << table.render();
  verdict(ok,
          "the unblocked strategy loses by (a large fraction of) the "
          "blocking factor, growing with B");
  return 0;
}
