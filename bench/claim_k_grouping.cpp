// [C-K] §1 claim — "our technique can take full advantage of the physical
// memory available by concurrently simulating a superstep of more than one
// virtual processor" (k = floor(M/mu) grouping, §5.1).
//
// Sweeps the group size k at fixed machine and workload: larger groups
// amortize partial message blocks (fewer underfull tail blocks per source
// group / destination group pair) and reduce the superstep bookkeeping, so
// the I/O count falls as k grows toward M/mu.
#include <iostream>

#include "bench_util.hpp"
#include "cgm/sort.hpp"
#include "util/workloads.hpp"

int main() {
  using namespace embsp;
  using namespace embsp::bench;
  banner("C-K", "group size k: memory utilization vs I/O");

  struct KeyLess {
    bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
  };
  const std::uint64_t n = 1 << 15;
  auto keys = util::random_keys(n, 11);
  constexpr std::uint32_t kV = 64;

  util::Table table({"k", "groups", "parallel IOs", "vs k=1"});
  std::uint64_t base = 0;
  std::uint64_t last = 0;
  for (std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
    auto cfg = machine(1, 4, 512, 1 << 22);
    cfg.k = k;
    cgm::SeqEmExec exec(cfg);
    auto out = cgm::cgm_sort<std::uint64_t, KeyLess>(exec, keys, kV);
    const auto ios = out.exec.sim->total_io.parallel_ios;
    if (k == 1) base = ios;
    last = ios;
    table.add_row({std::to_string(k), std::to_string((kV + k - 1) / k),
                   util::fmt_count(ios),
                   util::fmt_ratio(static_cast<double>(base) / ios)});
  }
  std::cout << table.render();
  verdict(last < base,
          "grouping k virtual processors per round reduces I/O (memory is "
          "put to work)");
  return 0;
}
