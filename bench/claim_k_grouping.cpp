// [C-K] §1 claim — "our technique can take full advantage of the physical
// memory available by concurrently simulating a superstep of more than one
// virtual processor" (k = floor(M/mu) grouping, §5.1).
//
// Three legs, all on cgm_sort:
//   1. Static sweep of the group size k at a fixed machine: larger groups
//      amortize partial message blocks (fewer underfull tail blocks per
//      source/destination group pair), so I/O falls as k grows to M/mu.
//   2. The self-tuning planner (--auto-tune) against the same sweep: the
//      plan it picks must land within 10% of the best static point while
//      the worst static point stays well behind.
//   3. Flat vs two-level grouping on a memory-starved machine: a k that
//      flat scheduling rejects runs under the hierarchical schedule, at
//      the cost of the scratch distribution pass (reported, not hidden).
#include <iostream>

#include "bench_util.hpp"
#include "cgm/sort.hpp"
#include "sim/layout_planner.hpp"
#include "util/workloads.hpp"

int main() {
  using namespace embsp;
  using namespace embsp::bench;
  banner("C-K", "group size k: memory utilization vs I/O");

  struct KeyLess {
    bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
  };
  const std::uint64_t n = 1 << 15;
  auto keys = util::random_keys(n, 11);
  constexpr std::uint32_t kV = 64;
  JsonArtifact artifact("k_grouping");

  auto run_sort = [&](sim::SimConfig cfg) {
    cgm::SeqEmExec exec(cfg);
    auto out = cgm::cgm_sort<std::uint64_t, KeyLess>(exec, keys, kV);
    return *out.exec.sim;
  };

  // --- leg 1: static k sweep -------------------------------------------------
  util::Table table({"k", "groups", "parallel IOs", "vs k=1"});
  std::uint64_t base = 0, best = ~0ull, worst = 0;
  for (std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
    auto cfg = machine(1, 4, 512, 1 << 22);
    cfg.k = k;
    const auto res = run_sort(cfg);
    const auto ios = res.total_io.parallel_ios;
    if (k == 1) base = ios;
    best = std::min(best, ios);
    worst = std::max(worst, ios);
    table.add_row({std::to_string(k), std::to_string((kV + k - 1) / k),
                   util::fmt_count(ios),
                   util::fmt_ratio(static_cast<double>(base) / ios)});
    artifact.begin_case("static_k_" + std::to_string(k));
    artifact.metric("k", static_cast<double>(k));
    artifact.metric("parallel_ios", static_cast<double>(ios));
  }

  // --- leg 2: the self-tuning planner on the same machine --------------------
  auto auto_cfg = machine(1, 4, 512, 1 << 22);
  auto_cfg.auto_tune = true;
  const auto auto_res = run_sort(auto_cfg);
  const auto auto_ios = auto_res.total_io.parallel_ios;
  table.add_row({"auto", std::to_string((kV + auto_res.group_size - 1) /
                                        std::max<std::size_t>(
                                            auto_res.group_size, 1)),
                 util::fmt_count(auto_ios),
                 util::fmt_ratio(static_cast<double>(base) / auto_ios)});
  std::cout << table.render();

  const double auto_vs_best = static_cast<double>(auto_ios) / best;
  const double worst_vs_best = static_cast<double>(worst) / best;
  artifact.begin_case("auto_tuned");
  artifact.metric("k", static_cast<double>(auto_res.group_size));
  artifact.metric("parallel_ios", static_cast<double>(auto_ios));
  artifact.metric("auto_vs_best_ratio", auto_vs_best);
  artifact.metric("worst_vs_best_ratio", worst_vs_best);

  // --- leg 3: flat vs two-level on a memory-starved machine ------------------
  // Probe the machine with auto-k to learn the largest flat-feasible group,
  // then request 4x that: the flat schedule rejects it, the hierarchical
  // schedule stages super-groups through scratch and completes.
  const auto small = machine(1, 4, 512, 1 << 16);
  const auto probe = run_sort(small);
  const std::size_t k_fit = std::max<std::size_t>(probe.group_size, 1);
  auto flat_cfg = small;
  flat_cfg.k = k_fit;
  const auto flat_res = run_sort(flat_cfg);
  auto multi_cfg = small;
  multi_cfg.k = std::min<std::size_t>(k_fit * 4, kV);
  const auto multi_res = run_sort(multi_cfg);

  util::Table mtable({"schedule", "k", "parallel IOs", "distribute cycles"});
  mtable.add_row({"flat", std::to_string(k_fit),
                  util::fmt_count(flat_res.total_io.parallel_ios),
                  std::to_string(flat_res.routing_stats.distribute_cycles)});
  mtable.add_row({"two-level", std::to_string(multi_cfg.k),
                  util::fmt_count(multi_res.total_io.parallel_ios),
                  std::to_string(multi_res.routing_stats.distribute_cycles)});
  std::cout << mtable.render();

  artifact.begin_case("flat_small_M");
  artifact.metric("k", static_cast<double>(k_fit));
  artifact.metric("parallel_ios",
                  static_cast<double>(flat_res.total_io.parallel_ios));
  artifact.metric("distribute_cycles",
                  static_cast<double>(flat_res.routing_stats.distribute_cycles));
  artifact.begin_case("two_level_small_M");
  artifact.metric("k", static_cast<double>(multi_cfg.k));
  artifact.metric("parallel_ios",
                  static_cast<double>(multi_res.total_io.parallel_ios));
  artifact.metric(
      "distribute_cycles",
      static_cast<double>(multi_res.routing_stats.distribute_cycles));

  const std::string path = artifact.write();
  if (!path.empty()) std::cout << "  wrote " << path << "\n";

  verdict(best < base,
          "grouping k virtual processors per round reduces I/O (memory is "
          "put to work)");
  verdict(auto_vs_best <= 1.10,
          "the self-tuned plan lands within 10% of the best static k");
  verdict(worst_vs_best >= 1.5,
          "the worst static k pays >= 1.5x the best (tuning is worth it)");
  verdict(multi_cfg.k > k_fit &&
              multi_res.routing_stats.distribute_cycles > 0,
          "a group size the flat schedule cannot fit runs under the "
          "two-level schedule");
  return 0;
}
