// [C-D] §1 claim — "if parallel disks are not properly utilized, the
// runtime can be a factor of D too high".
//
// Part 1 runs the same EM-CGM sort on machines with D = 1..16 disks
// (everything else fixed) and checks that the parallel-I/O count — hence
// the model I/O time G * #IOs — scales like 1/D, i.e. the simulation
// exploits all drives.
//
// Part 2 checks the other half of the claim on real hardware: with file
// backends, the worker-pool engine (ParallelDiskArray) must complete the
// same track I/Os measurably faster than the serial engine, because the D
// per-track transfers overlap on the device.  Backends open O_DSYNC so
// each transfer is genuine device I/O rather than a page-cache memcpy.
#include <chrono>
#include <filesystem>
#include <iostream>

#include "bench_util.hpp"
#include "cgm/sort.hpp"
#include "em/disk_array.hpp"
#include "util/workloads.hpp"

namespace {

// Wall-clock seconds for `cycles` full-width track write+read cycles.
double run_engine(embsp::em::DiskArray& arr, std::size_t D, std::size_t B,
                  std::size_t cycles) {
  using namespace embsp::em;
  std::vector<std::byte> buf(D * B);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>(i * 31 + 7);
  }
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < cycles; ++c) {
    std::vector<WriteOp> writes;
    for (std::uint32_t d = 0; d < D; ++d) {
      writes.push_back({d, c,
                        std::span<const std::byte>(buf).subspan(d * B, B)});
    }
    arr.parallel_write(writes);
  }
  std::vector<ReadOp> reads;
  for (std::size_t c = 0; c < cycles; ++c) {
    reads.clear();
    for (std::uint32_t d = 0; d < D; ++d) {
      reads.push_back({d, c, std::span<std::byte>(buf).subspan(d * B, B)});
    }
    arr.parallel_read(reads);
  }
  arr.sync();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool engine_comparison(embsp::bench::JsonArtifact& artifact) {
  using namespace embsp;
  using namespace embsp::em;
  using namespace embsp::bench;
  banner("C-D2", "I/O engine: serial vs per-disk worker pool (file backend)");
  const std::size_t B = 1 << 16;  // 64 KiB tracks
  const std::size_t cycles = 64;
  const auto dir = std::filesystem::temp_directory_path();
  util::Table table({"D", "serial (s)", "parallel (s)", "speedup",
                     "overlap", "queue depth"});
  bool ok = true;
  for (std::size_t D : {1u, 4u, 8u}) {
    double secs[2];
    double overlap = 0.0;
    std::uint64_t depth = 0;
    for (int e = 0; e < 2; ++e) {
      const auto engine = e == 0 ? IoEngine::serial : IoEngine::parallel;
      auto arr = make_disk_array(engine, D, B, [&](std::size_t d) {
        const auto path = dir / ("embsp_engine_bench_" + std::to_string(e) +
                                 "_" + std::to_string(d) + ".bin");
        return make_file_backend(path.string(), /*keep=*/false,
                                 /*sync_writes=*/true);
      });
      // Warm up (allocate the file extents, settle the device queue), then
      // take the best of three repetitions — O_DSYNC latency on shared
      // hardware is noisy and the minimum is the stable estimator.
      run_engine(*arr, D, B, 8);
      arr->reset_stats();
      secs[e] = run_engine(*arr, D, B, cycles);
      for (int rep = 1; rep < 3; ++rep) {
        secs[e] = std::min(secs[e], run_engine(*arr, D, B, cycles));
      }
      if (e == 1) {
        const auto& eng = arr->engine_stats();
        depth = eng.max_queue_depth;
        // Every parallel I/O must have issued all D per-track transfers.
        ok = ok && depth == D;
        ok = ok && eng.total_ops() == 3 * 2 * cycles * D;
        // Effective concurrency: total device time the workers spent
        // transferring, over the time the issuing thread actually waited.
        // Both sides come from the same run, so ambient load cancels out.
        std::uint64_t busy = 0;
        for (const auto& ds : eng.per_disk) busy += ds.busy_ns;
        overlap = eng.stall_ns > 0
                      ? static_cast<double>(busy) /
                            static_cast<double>(eng.stall_ns)
                      : 0.0;
      }
    }
    const double speedup = secs[0] / secs[1];
    table.add_row({std::to_string(D), util::fmt_double(secs[0], 3),
                   util::fmt_double(secs[1], 3), util::fmt_ratio(speedup),
                   util::fmt_ratio(overlap), std::to_string(depth)});
    artifact.begin_case("engine_D" + std::to_string(D));
    artifact.metric("serial_s", secs[0]);
    artifact.metric("parallel_s", secs[1]);
    artifact.metric("speedup", speedup);
    artifact.metric("overlap", overlap);
    artifact.metric("max_queue_depth", static_cast<double>(depth));
    // The pool must show real device-level concurrency once there are
    // disks to overlap (D >= 4): either end-to-end wall-clock speedup over
    // the serial engine (threshold conservative — ideal is ~D, but a
    // shared/virtualized device serializes part of the overlap), or —
    // robust against ambient load on shared hardware — per-run overlap,
    // the per-drive transfer time the pool hid from the issuing thread.
    if (D >= 4) ok = ok && (speedup > 1.15 || overlap > 1.5);
  }
  std::cout << table.render();
  verdict(ok, "worker pool overlaps device I/O: parallel engine beats "
              "serial for D >= 4 with all D transfers in flight");
  return ok;
}

}  // namespace

int main() {
  using namespace embsp;
  using namespace embsp::bench;
  banner("C-D", "disk scaling: I/O time vs number of disks");

  struct KeyLess {
    bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
  };
  const std::uint64_t n = 1 << 16;
  auto keys = util::random_keys(n, 5);

  util::Table table({"D", "parallel IOs", "utilization", "speedup vs D=1",
                     "ideal"});
  JsonArtifact artifact("C-D");
  std::uint64_t base = 0;
  bool ok = true;
  for (std::size_t D : {1u, 2u, 4u, 8u, 16u}) {
    cgm::SeqEmExec exec(machine(1, D, 512, 1 << 20));
    auto out = cgm::cgm_sort<std::uint64_t, KeyLess>(exec, keys, 64);
    const auto ios = out.exec.sim->total_io.parallel_ios;
    if (D == 1) base = ios;
    const double speedup = static_cast<double>(base) / ios;
    const double disk_util = out.exec.sim->total_io.utilization(D);
    // The pipelined engine must charge the identical model I/O count: it
    // reorders only the waiting, never the submissions.  Doubling M keeps
    // the auto-picked group size k equal under the tightened 2-groups-
    // resident bound, so the schedules are track-for-track comparable.
    auto pcfg = machine(1, D, 512, 2 << 20);
    pcfg.pipeline = true;
    pcfg.io_engine = em::IoEngine::parallel;
    cgm::SeqEmExec pexec(pcfg);
    auto pout = cgm::cgm_sort<std::uint64_t, KeyLess>(pexec, keys, 64);
    const auto pios = pout.exec.sim->total_io.parallel_ios;
    ok = ok && pios == ios && pout.sorted == out.sorted;
    table.add_row({std::to_string(D), util::fmt_count(ios),
                   util::fmt_double(disk_util, 2),
                   util::fmt_ratio(speedup),
                   util::fmt_ratio(static_cast<double>(D))});
    artifact.begin_case("sort_D" + std::to_string(D));
    artifact.metric("parallel_ios", static_cast<double>(ios));
    artifact.metric("pipelined_ios", static_cast<double>(pios));
    artifact.metric("utilization", disk_util);
    artifact.metric("speedup_vs_D1", speedup);
    // At least 60% of ideal scaling at every width.
    ok = ok && speedup > 0.6 * static_cast<double>(D);
  }
  std::cout << table.render();
  verdict(ok, "I/O time scales ~1/D: the simulation keeps all disks busy");

  engine_comparison(artifact);
  const auto path = artifact.write();
  if (!path.empty()) std::cout << "artifact written to " << path << "\n";
  return 0;
}
