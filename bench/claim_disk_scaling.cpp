// [C-D] §1 claim — "if parallel disks are not properly utilized, the
// runtime can be a factor of D too high".
//
// Runs the same EM-CGM sort on machines with D = 1..16 disks (everything
// else fixed) and checks that the parallel-I/O count — hence the model I/O
// time G * #IOs — scales like 1/D, i.e. the simulation exploits all drives.
#include <iostream>

#include "bench_util.hpp"
#include "cgm/sort.hpp"
#include "util/workloads.hpp"

int main() {
  using namespace embsp;
  using namespace embsp::bench;
  banner("C-D", "disk scaling: I/O time vs number of disks");

  struct KeyLess {
    bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
  };
  const std::uint64_t n = 1 << 16;
  auto keys = util::random_keys(n, 5);

  util::Table table({"D", "parallel IOs", "utilization", "speedup vs D=1",
                     "ideal"});
  std::uint64_t base = 0;
  bool ok = true;
  for (std::size_t D : {1u, 2u, 4u, 8u, 16u}) {
    cgm::SeqEmExec exec(machine(1, D, 512, 1 << 20));
    auto out = cgm::cgm_sort<std::uint64_t, KeyLess>(exec, keys, 64);
    const auto ios = out.exec.sim->total_io.parallel_ios;
    if (D == 1) base = ios;
    const double speedup = static_cast<double>(base) / ios;
    table.add_row({std::to_string(D), util::fmt_count(ios),
                   util::fmt_double(out.exec.sim->total_io.utilization(D), 2),
                   util::fmt_ratio(speedup),
                   util::fmt_ratio(static_cast<double>(D))});
    // At least 60% of ideal scaling at every width.
    ok = ok && speedup > 0.6 * static_cast<double>(D);
  }
  std::cout << table.render();
  verdict(ok, "I/O time scales ~1/D: the simulation keeps all disks busy");
  return 0;
}
