// [C-P] Theorem 1 — multiprocessor scaling.
//
// Runs the same EM-CGM workloads on p = 1, 2, 4, 8 real processors (v
// fixed) and reports the max-per-processor I/O (the model's t_IO) and the
// per-superstep real communication volume.  Theorem 1 promises
// ~O~(G (v/p) mu lambda / (BD)): per-processor I/O should drop ~1/p.
#include <iostream>

#include "bench_util.hpp"
#include "cgm/graph_list_ranking.hpp"
#include "cgm/sort.hpp"
#include "util/workloads.hpp"

int main() {
  using namespace embsp;
  using namespace embsp::bench;
  banner("C-P", "processor scaling: per-processor I/O vs p");

  struct KeyLess {
    bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
  };
  const std::uint64_t n = 1 << 16;
  auto keys = util::random_keys(n, 8);
  auto [succ, head] = util::random_list(1 << 14, 9);
  (void)head;

  util::Table table({"workload", "p", "max IOs/proc", "speedup", "ideal",
                     "real comm bytes/superstep"});
  bool ok = true;
  for (const char* workload : {"sort", "list-ranking"}) {
    std::uint64_t base = 0;
    for (std::uint32_t p : {1u, 2u, 4u, 8u}) {
      cgm::ParEmExec exec(machine(p, 2, 512, 1 << 20));
      std::uint64_t ios = 0;
      std::uint64_t comm = 0;
      if (std::string(workload) == "sort") {
        auto out = cgm::cgm_sort<std::uint64_t, KeyLess>(exec, keys, 64);
        for (const auto& io : out.exec.sim->per_proc_io) {
          ios = std::max(ios, io.parallel_ios);
        }
        comm = out.exec.sim->real_comm_bytes;
      } else {
        auto out = cgm::cgm_list_ranking(exec, succ, 64);
        for (const auto& io : out.exec.sim->per_proc_io) {
          ios = std::max(ios, io.parallel_ios);
        }
        comm = out.exec.sim->real_comm_bytes;
      }
      if (p == 1) base = ios;
      const double speedup = static_cast<double>(base) / ios;
      table.add_row({workload, std::to_string(p), util::fmt_count(ios),
                     util::fmt_ratio(speedup),
                     util::fmt_ratio(static_cast<double>(p)),
                     util::fmt_bytes(comm)});
      ok = ok && speedup > 0.5 * static_cast<double>(p);
    }
  }
  std::cout << table.render();
  verdict(ok,
          "per-processor I/O drops close to 1/p — the simulation yields "
          "genuinely parallel EM algorithms");
  return 0;
}
