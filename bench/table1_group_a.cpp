// [T1-A] Table 1, Group A — sorting, permutation, matrix transpose.
//
// Regenerates the Table 1 comparison for the fundamental problems:
//   column 2: previously known sequential EM algorithms (our baselines),
//   column 4: the parallel EM-CGM algorithms produced by the simulation
//             technique (Theorem 1 / Corollary 1),
// reporting measured parallel I/O operations against the predicted shapes
//   sort:  Theta(n/(DB) log_{M/B} n/B)  vs  ~O~(n/(pBD))
//   perm:  Theta(min(n/D, sort))        vs  ~O~(n/(pBD))
//   transpose: Theta(n/(DB) * ...)      vs  ~O~(n/(pBD))
#include <iostream>

#include "baseline/em_mergesort.hpp"
#include "baseline/em_permutation.hpp"
#include "baseline/em_transpose.hpp"
#include "bench_util.hpp"
#include "cgm/permutation.hpp"
#include "cgm/sort.hpp"
#include "cgm/transpose.hpp"
#include "util/workloads.hpp"

namespace {

using namespace embsp;
using namespace embsp::bench;

struct KeyLess {
  bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
};

constexpr std::size_t kD = 4;
constexpr std::size_t kB = 512;   // 64 keys per block
constexpr std::size_t kM = 1 << 16;  // 8K keys of internal memory
constexpr std::uint32_t kV = 64;
constexpr std::uint32_t kP = 4;

void bench_sort() {
  banner("T1-A/sort", "sorting: sequential EM mergesort vs EM-CGM sort");
  // Note: the sequential mergesort is already I/O-optimal; Table 1's win
  // for sorting is *parallelism* (p processors, same O~(n/(pBD)) shape).
  // The shape checks are: per-processor I/O drops with p, and the
  // seq/cgm ratio improves as n grows (the simulation constant l is paid
  // once, the baseline's log_{M/B}(n/B) factor grows).
  util::Table table({"n", "seq-EM IOs", "seq pred", "EM-CGM p=1 IOs",
                     "EM-CGM p=4 IOs (max/proc)", "cgm pred n/(pBD)",
                     "seq/cgm(p=4)"});
  bool shape_ok = true;
  double prev_ratio = 0;
  double last_ratio = 0;
  for (std::uint64_t n : {1u << 14, 1u << 16, 1u << 18}) {
    auto keys = util::random_keys(n, n);

    em::DiskArray disks(kD, kB);
    baseline::EmSortStats st;
    baseline::em_mergesort(disks, keys, kM, &st);
    const auto seq_ios = st.algorithm_io().parallel_ios;
    const double seq_pred =
        baseline::em_sort_predicted_ios(n, kM, kD, kB);

    cgm::SeqEmExec seq_exec(machine(1, kD, kB, kM * 8));
    auto out1 = cgm::cgm_sort<std::uint64_t, KeyLess>(seq_exec, keys, kV);
    const auto cgm1 = algorithm_ios(*out1.exec.sim);

    cgm::ParEmExec par_exec(machine(kP, kD, kB, kM * 8));
    auto out4 = cgm::cgm_sort<std::uint64_t, KeyLess>(par_exec, keys, kV);
    std::uint64_t cgm4 = 0;
    for (const auto& io : out4.exec.sim->per_proc_io) {
      cgm4 = std::max(cgm4, io.parallel_ios);
    }
    // Corollary 1 shape: lambda passes over the local data, ~8 bytes/key.
    const double cgm_pred = static_cast<double>(out4.exec.lambda) *
                            static_cast<double>(n) * 8.0 /
                            (kP * kB * kD);
    last_ratio = static_cast<double>(seq_ios) / static_cast<double>(cgm4);
    table.add_row({util::fmt_count(n), util::fmt_count(seq_ios),
                   util::fmt_double(seq_pred, 0), util::fmt_count(cgm1),
                   util::fmt_count(cgm4), util::fmt_double(cgm_pred, 0),
                   util::fmt_ratio(last_ratio)});
    shape_ok = shape_ok && cgm4 < cgm1 && out4.exec.lambda == 4 &&
               last_ratio > prev_ratio;
    prev_ratio = last_ratio;
  }
  std::cout << table.render();
  verdict(shape_ok,
          "EM-CGM sort is parallel (p=4 beats p=1 per-processor I/O), stays "
          "within the simulation's constant of the optimal sequential sort, "
          "and the seq/cgm ratio improves with n");
}

void bench_permutation() {
  banner("T1-A/permutation",
         "permutation: naive (n/D) vs sort-based vs EM-CGM route");
  util::Table table({"n", "naive IOs", "sort-based IOs", "EM-CGM p=1 IOs",
                     "EM-CGM p=4 IOs", "naive/cgm(p=1)"});
  bool shape_ok = true;
  for (std::uint64_t n : {1u << 12, 1u << 14, 1u << 16}) {
    auto values = util::random_keys(n, n + 1);
    auto perm = util::random_permutation(n, n + 2);

    em::DiskArray d_naive(kD, kB), d_sort(kD, kB);
    baseline::EmPermStats naive_st, sort_st;
    baseline::em_permute_naive(d_naive, values, perm, kM, &naive_st);
    baseline::em_permute_sort(d_sort, values, perm, kM, &sort_st);

    cgm::SeqEmExec seq_exec(machine(1, kD, kB, kM * 8));
    auto out1 = cgm::cgm_permute(seq_exec, values, perm, kV);
    cgm::ParEmExec par_exec(machine(kP, kD, kB, kM * 8));
    auto out4 = cgm::cgm_permute(par_exec, values, perm, kV);
    std::uint64_t cgm4 = 0;
    for (const auto& io : out4.exec.sim->per_proc_io) {
      cgm4 = std::max(cgm4, io.parallel_ios);
    }
    const auto cgm1 = algorithm_ios(*out1.exec.sim);
    const double ratio =
        static_cast<double>(naive_st.algorithm.parallel_ios) /
        static_cast<double>(cgm1);
    table.add_row({util::fmt_count(n),
                   util::fmt_count(naive_st.algorithm.parallel_ios),
                   util::fmt_count(sort_st.algorithm.parallel_ios),
                   util::fmt_count(cgm1), util::fmt_count(cgm4),
                   util::fmt_ratio(ratio)});
    shape_ok = shape_ok && ratio > 4.0;
  }
  std::cout << table.render();
  verdict(shape_ok,
          "blocked EM-CGM routing beats per-record naive permutation by "
          "roughly the blocking factor");
}

void bench_transpose() {
  banner("T1-A/transpose", "matrix transpose: tiled EM vs EM-CGM");
  util::Table table({"matrix", "seq-EM IOs", "EM-CGM p=1 IOs",
                     "EM-CGM p=4 IOs", "pred n/(pBD)"});
  bool shape_ok = true;
  for (std::uint64_t side : {64u, 128u, 256u}) {
    const std::uint64_t n = side * side;
    auto m = util::random_keys(n, side);
    em::DiskArray disks(kD, kB);
    baseline::EmTransposeStats st;
    baseline::em_transpose(disks, m, side, side, kM, &st);

    cgm::SeqEmExec seq_exec(machine(1, kD, kB, kM * 8));
    auto out1 = cgm::cgm_transpose(seq_exec, m, side, side, kV);
    cgm::ParEmExec par_exec(machine(kP, kD, kB, kM * 8));
    auto out4 = cgm::cgm_transpose(par_exec, m, side, side, kV);
    std::uint64_t cgm4 = 0;
    for (const auto& io : out4.exec.sim->per_proc_io) {
      cgm4 = std::max(cgm4, io.parallel_ios);
    }
    const auto cgm1 = algorithm_ios(*out1.exec.sim);
    const double pred =
        2.0 * static_cast<double>(n) * 8.0 / (kP * kB * kD);
    table.add_row({std::to_string(side) + "x" + std::to_string(side),
                   util::fmt_count(st.algorithm.parallel_ios),
                   util::fmt_count(cgm1), util::fmt_count(cgm4),
                   util::fmt_double(pred, 0)});
    shape_ok = shape_ok && cgm4 < cgm1;
  }
  std::cout << table.render();
  verdict(shape_ok, "EM-CGM transpose parallelizes across processors");
}

}  // namespace

int main() {
  bench_sort();
  bench_permutation();
  bench_transpose();
  return 0;
}
