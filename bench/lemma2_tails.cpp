// [L2] Lemma 2 — randomized bucket placement balance.
//
// Lemma 2 bounds the probability that one disk holds more than l*R/D
// blocks of one bucket after R blocks are written with a fresh random disk
// permutation per write cycle:
//   Pr[X >= l*R/D] <= exp(-(R/D) (l ln l - l + 1)).
// This bench performs many independent placements and compares the
// empirical tail frequencies against the analytic bound (the bound must
// upper-bound the measurement).
#include <iostream>

#include "bench_util.hpp"
#include "em/linked_buckets.hpp"
#include "sim/tail_bounds.hpp"
#include "util/table.hpp"

int main() {
  using namespace embsp;
  using namespace embsp::bench;
  banner("L2", "Lemma 2: empirical tail vs analytic bound");

  constexpr int kTrials = 3000;
  util::Table table({"D", "R", "l", "empirical Pr[X >= l R/D]",
                     "Lemma 2 bound", "bound holds"});
  bool all_ok = true;
  for (std::size_t D : {4u, 8u}) {
    for (std::size_t R : {64u, 256u}) {
      std::vector<std::size_t> maxima(kTrials);
      for (int t = 0; t < kTrials; ++t) {
        em::DiskArray disks(D, 64);
        em::TrackAllocators alloc(D);
        em::LinkedBuckets buckets(disks, alloc, 1);
        util::Rng rng(10007ull * t + D * 31 + R);
        std::vector<std::byte> block(64, std::byte{1});
        std::size_t written = 0;
        while (written < R) {
          const std::size_t batch = std::min(D, R - written);
          std::vector<em::LinkedBuckets::OutBlock> out(
              batch, em::LinkedBuckets::OutBlock{0u, block});
          buckets.write_cycle(out, rng);
          written += batch;
        }
        std::size_t mx = 0;
        for (std::size_t d = 0; d < D; ++d) {
          mx = std::max(mx, buckets.blocks_on_disk(0, d));
        }
        maxima[t] = mx;
      }
      for (double l : {1.25, 1.5, 2.0}) {
        const double threshold = l * static_cast<double>(R) / D;
        int count = 0;
        for (auto m : maxima) {
          if (static_cast<double>(m) >= threshold) ++count;
        }
        const double empirical = static_cast<double>(count) / kTrials;
        const double bound = sim::lemma2_tail(l, static_cast<double>(R),
                                              static_cast<double>(D));
        const bool ok = empirical <= bound + 0.02;  // sampling slack
        all_ok = all_ok && ok;
        table.add_row({std::to_string(D), std::to_string(R),
                       util::fmt_double(l, 2), util::fmt_double(empirical, 4),
                       util::fmt_double(bound, 4), ok ? "yes" : "NO"});
      }
    }
  }
  std::cout << table.render();
  verdict(all_ok, "the analytic Lemma 2 bound dominates every measured tail");
  return 0;
}
