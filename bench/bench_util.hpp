// Shared helpers for the experiment binaries.
//
// Every bench prints (a) a header naming the paper artifact it regenerates,
// (b) a column-aligned table of measured vs predicted quantities, and (c) a
// short "shape check" verdict so EXPERIMENTS.md can quote pass/fail lines.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "sim/sim_config.hpp"
#include "util/table.hpp"

namespace embsp::bench {

inline void banner(const std::string& id, const std::string& title) {
  std::cout << "\n=== [" << id << "] " << title << " ===\n";
}

inline void verdict(bool ok, const std::string& claim) {
  std::cout << (ok ? "  [shape OK]  " : "  [SHAPE MISMATCH]  ") << claim
            << "\n";
}

/// Standard EM machine used across experiments unless a sweep overrides a
/// parameter: D disks of block size B, memory M, unit costs.
inline sim::SimConfig machine(std::uint32_t p, std::size_t D, std::size_t B,
                              std::size_t M = 1 << 20) {
  sim::SimConfig cfg;
  cfg.machine.p = p;
  cfg.machine.em.D = D;
  cfg.machine.em.B = B;
  cfg.machine.em.M = M;
  cfg.machine.em.G = 1.0;
  return cfg;
}

/// Parallel I/Os attributable to the algorithm itself (excludes loading the
/// input contexts and reading results back, mirroring how the baselines
/// report their algorithm phase).
inline std::uint64_t algorithm_ios(const sim::SimResult& r) {
  const auto& ph = r.phase_io;
  const std::uint64_t setup = ph.init.parallel_ios + ph.collect.parallel_ios;
  return r.total_io.parallel_ios > setup ? r.total_io.parallel_ios - setup
                                         : 0;
}

}  // namespace embsp::bench
