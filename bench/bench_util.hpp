// Shared helpers for the experiment binaries.
//
// Every bench prints (a) a header naming the paper artifact it regenerates,
// (b) a column-aligned table of measured vs predicted quantities, and (c) a
// short "shape check" verdict so EXPERIMENTS.md can quote pass/fail lines.
// Benches can also emit a machine-readable artifact (BENCH_<id>.json) next
// to the human-readable table via JsonArtifact, so sweeps are plottable
// without scraping stdout.
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "sim/sim_config.hpp"
#include "util/table.hpp"

namespace embsp::bench {

inline void banner(const std::string& id, const std::string& title) {
  std::cout << "\n=== [" << id << "] " << title << " ===\n";
}

inline void verdict(bool ok, const std::string& claim) {
  std::cout << (ok ? "  [shape OK]  " : "  [SHAPE MISMATCH]  ") << claim
            << "\n";
}

/// Standard EM machine used across experiments unless a sweep overrides a
/// parameter: D disks of block size B, memory M, unit costs.
inline sim::SimConfig machine(std::uint32_t p, std::size_t D, std::size_t B,
                              std::size_t M = 1 << 20) {
  sim::SimConfig cfg;
  cfg.machine.p = p;
  cfg.machine.em.D = D;
  cfg.machine.em.B = B;
  cfg.machine.em.M = M;
  cfg.machine.em.G = 1.0;
  return cfg;
}

/// Parallel I/Os attributable to the algorithm itself (excludes loading the
/// input contexts and reading results back, mirroring how the baselines
/// report their algorithm phase).
inline std::uint64_t algorithm_ios(const sim::SimResult& r) {
  const auto& ph = r.phase_io;
  const std::uint64_t setup = ph.init.parallel_ios + ph.collect.parallel_ios;
  return r.total_io.parallel_ios > setup ? r.total_io.parallel_ios - setup
                                         : 0;
}

/// Machine-readable companion to the stdout tables.  Collect one case per
/// measured configuration, then write() produces BENCH_<id>.json:
///
///   { "bench": "<id>", "schema_version": 1,
///     "cases": [ { "name": "...", "metrics": { "<k>": <double>, ... } } ] }
///
/// Metric insertion order is preserved, so the JSON columns line up with
/// the printed table.
class JsonArtifact {
 public:
  explicit JsonArtifact(std::string id) : id_(std::move(id)) {}

  /// Start a new case; subsequent metric() calls attach to it.
  void begin_case(const std::string& name) { cases_.push_back({name, {}}); }

  void metric(const std::string& key, double value) {
    cases_.back().metrics.emplace_back(key, value);
  }

  /// Writes BENCH_<id>.json into `dir` (current directory by default);
  /// returns the path written, or "" on failure (benches must not fail the
  /// run because an artifact directory is read-only).
  std::string write(const std::string& dir = ".") const {
    const std::string path = dir + "/BENCH_" + id_ + ".json";
    std::ofstream out(path);
    if (!out) return "";
    obs::JsonWriter w(out, /*indent=*/2);
    w.begin_object();
    w.kv("bench", id_);
    w.kv("schema_version", 1);
    w.key("cases");
    w.begin_array();
    for (const auto& c : cases_) {
      w.begin_object();
      w.kv("name", c.name);
      w.key("metrics");
      w.begin_object();
      for (const auto& [k, v] : c.metrics) w.kv(k, v);
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.end_object();
    out << '\n';
    return out ? path : "";
  }

 private:
  struct Case {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::string id_;
  std::vector<Case> cases_;
};

}  // namespace embsp::bench
