// [OP] §7 — the paper's open problem, measured.
//
//   "Note that our technique applies only to BSP-like algorithms for which
//    T_comp is at least lambda*M ... Algorithms which do not fall into this
//    category are typically for problems with sublinear time complexity.
//    An example of such an algorithm is multisearch."
//
// This bench implements CGM batched search (m queries routed through a
// splitter tree to the processor owning their slab of a sorted array, then
// answered by local binary search) and contrasts it with sorting:
//
//   * sorting:      T_comp = Theta(n log n / v) per processor — far above
//                   the context size mu, so the simulation's I/O is o(1)
//                   relative to computation (Observation 2 applies);
//   * multisearch:  T_comp = Theta(m log n / v) with m << n, but every
//                   superstep still parks *all* contexts (the full array)
//                   on disk — I/O ~ lambda * n/(DB) regardless of m, so
//                   the I/O-per-computation ratio explodes as m shrinks.
//
// The measured blow-up of io/comp for multisearch vs sort is the
// quantitative form of the open problem.
#include <iostream>

#include "bench_util.hpp"
#include "cgm/sort.hpp"
#include "util/table.hpp"
#include "util/workloads.hpp"

namespace {

using namespace embsp;
using namespace embsp::bench;

/// Batched search: the sorted array is block-distributed; processor 0
/// holds the slab splitters.  Queries route 0 -> owner -> home in three
/// supersteps; local binary searches are the only computation.
struct MultisearchProgram {
  std::uint64_t n = 0;  ///< array size (defines slabs)
  std::uint64_t m = 0;  ///< number of queries

  struct Query {
    std::uint64_t key;
    std::uint64_t tag;
    std::uint32_t home;
    std::uint32_t pad;
  };
  struct Answer {
    std::uint64_t tag;
    std::uint64_t position;  ///< global rank of the predecessor
  };

  struct State {
    std::vector<std::uint64_t> slab;      ///< sorted array slab
    std::vector<std::uint64_t> queries;   ///< keys homed here
    std::vector<std::uint64_t> answers;   ///< per local query
    void serialize(util::Writer& w) const {
      w.write_vector(slab);
      w.write_vector(queries);
      w.write_vector(answers);
    }
    void deserialize(util::Reader& r) {
      slab = r.read_vector<std::uint64_t>();
      queries = r.read_vector<std::uint64_t>();
      answers = r.read_vector<std::uint64_t>();
    }
  };

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const {
    cgm::BlockDist adist{n, env.nprocs};
    cgm::BlockDist qdist{m, env.nprocs};
    switch (step) {
      case 0: {  // send queries to the splitter holder (processor 0)
        std::vector<Query> qs;
        const auto qf = qdist.first(env.pid);
        for (std::size_t i = 0; i < s.queries.size(); ++i) {
          qs.push_back(Query{s.queries[i], qf + i, env.pid, 0});
        }
        if (!qs.empty()) out.send_vector(0, qs);
        env.charge(s.queries.size() + 1);
        return true;
      }
      case 1: {  // processor 0 routes each query to its slab owner
        if (env.pid == 0) {
          // Slab boundaries are the first keys of each slab — derivable
          // from processor 0's own knowledge of the block distribution
          // plus the sorted order; for the benchmark the array is the
          // sorted [0, n) sequence, so owner = key / chunk.
          std::vector<std::vector<Query>> route(env.nprocs);
          std::uint64_t routed = 0;
          for (std::size_t i = 0; i < in.count(); ++i) {
            for (const auto& q : in.vector<Query>(i)) {
              const auto owner =
                  adist.owner(std::min<std::uint64_t>(q.key, n - 1));
              route[owner].push_back(q);
              ++routed;
            }
          }
          env.charge(routed + 1);
          for (std::uint32_t t = 0; t < env.nprocs; ++t) {
            if (!route[t].empty()) out.send_vector(t, route[t]);
          }
        }
        return true;
      }
      case 2: {  // local binary search; answers go home
        std::vector<std::vector<Answer>> replies(env.nprocs);
        std::uint64_t work = 0;
        for (std::size_t i = 0; i < in.count(); ++i) {
          for (const auto& q : in.vector<Query>(i)) {
            const auto it =
                std::upper_bound(s.slab.begin(), s.slab.end(), q.key);
            const std::uint64_t pos =
                adist.first(env.pid) + (it - s.slab.begin());
            replies[q.home].push_back(Answer{q.tag, pos == 0 ? 0 : pos - 1});
            work += 16;  // ~log2(slab)
          }
        }
        env.charge(work + 1);
        for (std::uint32_t t = 0; t < env.nprocs; ++t) {
          if (!replies[t].empty()) out.send_vector(t, replies[t]);
        }
        return true;
      }
      default: {
        s.answers.assign(s.queries.size(), 0);
        const auto qf = qdist.first(env.pid);
        for (std::size_t i = 0; i < in.count(); ++i) {
          for (const auto& a : in.vector<Answer>(i)) {
            s.answers[a.tag - qf] = a.position;
          }
        }
        env.charge(s.answers.size() + 1);
        return false;
      }
    }
  }
};

struct KeyLess {
  bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
};

}  // namespace

int main() {
  banner("OP", "open problem (§7): multisearch breaks c-optimality");

  constexpr std::uint32_t kV = 32;
  const std::uint64_t n = 1 << 16;

  // Reference point: sorting (T_comp = omega(lambda * mu)).
  double sort_ratio = 0;
  {
    auto keys = util::random_keys(n, 3);
    cgm::SeqEmExec exec(machine(1, 4, 512, 1 << 22));
    auto out = cgm::cgm_sort<std::uint64_t, KeyLess>(exec, keys, kV);
    std::uint64_t comp = 0;
    for (const auto& s : out.exec.costs.supersteps) comp += s.total_work;
    sort_ratio = static_cast<double>(out.exec.sim->total_io.parallel_ios) /
                 static_cast<double>(comp);
  }

  util::Table table({"workload", "queries m", "comp ops", "parallel IOs",
                     "IO/comp", "vs sort's IO/comp"});
  table.add_row({"sort (reference)", "-", "-", "-",
                 util::fmt_double(sort_ratio, 5), "x1.00"});

  bool blows_up = true;
  double prev_ratio = 0;
  for (std::uint64_t m : {4096u, 512u, 64u}) {
    MultisearchProgram prog;
    prog.n = n;
    prog.m = m;
    using State = MultisearchProgram::State;
    cgm::BlockDist adist{n, kV};
    cgm::BlockDist qdist{m, kV};
    auto queries = util::random_keys(m, m);
    for (auto& q : queries) q %= n;

    auto cfg = machine(1, 4, 512, 1 << 22);
    cfg.machine.bsp.v = kV;
    cgm::SeqEmExec exec(cfg);
    auto result = exec.run(
        prog, kV,
        std::function<State(std::uint32_t)>([&](std::uint32_t pid) {
          State s;
          // The sorted array is [0, n): slab = consecutive integers.
          const auto first = adist.first(pid);
          s.slab.resize(adist.count(pid));
          for (std::size_t i = 0; i < s.slab.size(); ++i) {
            s.slab[i] = first + i;
          }
          const auto qf = qdist.first(pid);
          s.queries.assign(queries.begin() + qf,
                           queries.begin() + qf + qdist.count(pid));
          return s;
        }),
        std::function<void(std::uint32_t, State&)>(
            [&](std::uint32_t pid, State& s) {
              const auto qf = qdist.first(pid);
              for (std::size_t i = 0; i < s.answers.size(); ++i) {
                // Predecessor of q in [0, n) is q itself.
                if (s.answers[i] != queries[qf + i]) {
                  std::cerr << "wrong answer!\n";
                  std::exit(1);
                }
              }
            }));
    std::uint64_t comp = 0;
    for (const auto& s : result.costs.supersteps) comp += s.total_work;
    const auto ios = result.sim->total_io.parallel_ios;
    const double ratio =
        static_cast<double>(ios) / static_cast<double>(comp);
    table.add_row({"multisearch", util::fmt_count(m), util::fmt_count(comp),
                   util::fmt_count(ios), util::fmt_double(ratio, 5),
                   util::fmt_ratio(ratio / sort_ratio)});
    blows_up = blows_up && ratio > 10 * sort_ratio && ratio > prev_ratio;
    prev_ratio = ratio;
  }
  std::cout << table.render();
  verdict(blows_up,
          "with sublinear work the simulation's context I/O dominates "
          "computation and worsens as m shrinks — the open problem the "
          "paper leaves for data-structure search");
  return 0;
}
