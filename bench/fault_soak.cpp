// [R-F] Fault soak — robustness of the resilient disk substrate.
//
// Runs the EM-CGM sort workload under increasing injected-fault rates
// (transient read/write errors plus torn writes and silent bit flips at
// half that rate) with block checksums, retry/backoff and superstep
// recovery enabled, and checks:
//
//   * correctness  — the output is sorted and identical to the fault-free
//                    output at every rate (faults are absorbed below the
//                    model layer, never observable in results);
//   * cost model   — the parallel-I/O count (the quantity the paper's
//                    theorems bound) is unchanged by transient faults;
//   * overhead     — wall-clock degradation vs the fault-free run stays
//                    small at realistic rates (retries are rare and
//                    backoff is micro-seconds scale).
#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "cgm/sort.hpp"
#include "util/workloads.hpp"

namespace {

struct KeyLess {
  bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
};

}  // namespace

int main() {
  using namespace embsp;
  using namespace embsp::bench;
  banner("R-F", "fault soak: sort under injected transient I/O faults");

  const std::uint64_t n = 1 << 16;
  auto keys = util::random_keys(n, 5);

  util::Table table({"fault rate", "injected", "retries", "giveups",
                     "rollbacks", "parallel IOs", "time (s)", "overhead"});
  JsonArtifact art("fault_soak");
  bool ok = true;
  std::vector<std::uint64_t> baseline_out;
  std::uint64_t baseline_ios = 0;
  double baseline_secs = 0.0;
  for (const double rate : {0.0, 1e-4, 1e-3}) {
    auto cfg = machine(1, 4, 512, 1 << 20);
    if (rate > 0.0) {
      cfg.faults.seed = 99;
      cfg.faults.read_error_rate = rate;
      cfg.faults.write_error_rate = rate;
      cfg.faults.torn_write_rate = rate / 2;
      cfg.faults.bit_flip_rate = rate / 2;
      cfg.block_checksums = true;
      cfg.superstep_recovery = true;
    }
    const auto start = std::chrono::steady_clock::now();
    cgm::SeqEmExec exec(cfg);
    auto out = cgm::cgm_sort<std::uint64_t, KeyLess>(exec, keys, 64);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const auto& sim = *out.exec.sim;
    if (rate == 0.0) {
      baseline_out = out.sorted;
      baseline_ios = sim.total_io.parallel_ios;
      baseline_secs = secs;
    }
    const bool sorted =
        std::is_sorted(out.sorted.begin(), out.sorted.end());
    const bool identical = out.sorted == baseline_out;
    const bool same_cost = sim.total_io.parallel_ios == baseline_ios;
    ok = ok && sorted && identical && same_cost;
    const double overhead = baseline_secs > 0.0 ? secs / baseline_secs : 1.0;
    table.add_row({util::fmt_double(rate, 4),
                   util::fmt_count(sim.recovery.faults.total()),
                   util::fmt_count(sim.recovery.io_retries),
                   util::fmt_count(sim.recovery.io_giveups),
                   util::fmt_count(sim.recovery.total_rollbacks()),
                   util::fmt_count(sim.total_io.parallel_ios),
                   util::fmt_double(secs, 3), util::fmt_ratio(overhead)});
    art.begin_case("rate_" + util::fmt_double(rate, 4));
    art.metric("fault_rate", rate);
    art.metric("injected", double(sim.recovery.faults.total()));
    art.metric("io_retries", double(sim.recovery.io_retries));
    art.metric("io_giveups", double(sim.recovery.io_giveups));
    art.metric("rollbacks", double(sim.recovery.total_rollbacks()));
    art.metric("parallel_ios", double(sim.total_io.parallel_ios));
    art.metric("secs", secs);
    art.metric("overhead", overhead);
    art.metric("output_identical", identical ? 1.0 : 0.0);
    if (rate > 0.0 && sim.recovery.faults.total() == 0) {
      // A soak that injected nothing proves nothing.
      ok = false;
    }
  }
  std::cout << table.render();
  const auto path = art.write();
  if (!path.empty()) std::cout << "  artifact: " << path << "\n";
  verdict(ok,
          "injected transient faults are absorbed by retry/recovery: "
          "output and parallel-I/O count identical to the fault-free run");
  return ok ? 0 : 1;
}
