// [tentpole] Pipelined group scheduler — does overlapping group I/O with
// compute buy real wall-clock time?
//
// Runs the same compute-heavy BSP* program through four schedules on file
// backends (O_DSYNC, so writes are genuine device I/O):
//
//   serial        serial engine, serial schedule     (the PR-1 baseline)
//   engine_only   per-disk worker pool, serial schedule
//   pipelined     worker pool + double-buffered prefetch/write-behind
//   pipelined_mt  pipelined + compute_threads = 4
//
// The schedules must agree exactly on results and model I/O counts (the
// byte-identity guarantee — pipelining reorders only the waiting), while
// pipelined_mt must beat the serial schedule by >= 1.3x wall-clock with
// D >= 4 disks.  overlap_ratio reports how much of the drives' busy time
// was hidden behind compute.
#include <chrono>
#include <filesystem>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "sim/seq_simulator.hpp"
#include "util/table.hpp"

namespace {

namespace fs = std::filesystem;
using namespace embsp;

/// Ring exchange with a deliberately fat context (8 KiB payload) and a
/// tunable FNV spin per superstep, so the compute phase is long enough for
/// the prefetch of group g+1 and the write-back of group g-1 to hide under
/// it.  Results are a pure function of pid/step, so every schedule must
/// produce the identical checksum.
struct SpinRingProgram {
  std::size_t rounds = 6;
  std::size_t spin = 1 << 16;
  std::size_t payload_words = 1 << 10;

  struct State {
    std::vector<std::uint64_t> data;
    std::uint64_t acc = 0;
    void serialize(util::Writer& w) const {
      w.write_vector(data);
      w.write(acc);
    }
    void deserialize(util::Reader& r) {
      data = r.read_vector<std::uint64_t>();
      acc = r.read<std::uint64_t>();
    }
  };

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const {
    if (step == 0) {
      s.data.assign(payload_words,
                    env.pid * 1099511628211ULL + 1469598103934665603ULL);
    } else {
      s.acc ^= in.value<std::uint64_t>(0);
    }
    std::uint64_t h = 1469598103934665603ULL ^ s.acc;
    for (std::size_t i = 0; i < spin; ++i) {
      h ^= s.data[i & (s.data.size() - 1)];
      h *= 1099511628211ULL;
    }
    s.acc = h;
    s.data[step % s.data.size()] = h;
    env.charge(spin);
    if (step + 1 < rounds) {
      out.send_value((env.pid + 1) % env.nprocs, h);
      return true;
    }
    return false;
  }
};

struct CaseResult {
  double wall_s = 0.0;
  std::uint64_t parallel_ios = 0;
  double overlap = 0.0;
  std::uint64_t checksum = 0;
};

CaseResult run_case(const sim::SimConfig& cfg, const std::string& tag,
                    int reps) {
  CaseResult best;
  for (int rep = 0; rep < reps; ++rep) {
    sim::SeqSimulator simr(cfg, [&](std::size_t d) {
      const auto path =
          fs::temp_directory_path() /
          ("embsp_overlap_" + tag + "_" + std::to_string(d) + ".bin");
      return em::make_file_backend(path.string(), /*keep=*/false,
                                   /*sync_writes=*/true);
    });
    SpinRingProgram prog;
    std::uint64_t sum = 0;
    const auto start = std::chrono::steady_clock::now();
    const auto r = simr.run<SpinRingProgram>(
        prog, [](std::uint32_t) { return SpinRingProgram::State{}; },
        [&](std::uint32_t vp, SpinRingProgram::State& s) {
          sum ^= s.acc * (vp + 0x9E3779B97F4A7C15ULL);
        });
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    // Minimum over reps: O_DSYNC latency on shared hardware is noisy and
    // the minimum is the stable estimator (same policy as claim C-D2).
    if (rep == 0 || wall < best.wall_s) {
      best = {wall, r.total_io.parallel_ios, r.overlap_ratio, sum};
    }
  }
  return best;
}

}  // namespace

int main() {
  using namespace embsp;
  using namespace embsp::bench;
  banner("pipeline_overlap",
         "pipelined group schedule: compute/I-O overlap (file backend)");

  // D = 4 disks, 8 KiB contexts, 4 groups of 8 vprocs: enough groups for
  // the double buffer to stay full, enough context bytes per group that
  // the write-back is real device time worth hiding.
  sim::SimConfig base = machine(1, 4, 4096, 1 << 20);
  base.machine.bsp.v = 32;
  base.mu = 16384;
  base.gamma = 4096;
  base.k = 8;

  struct Schedule {
    const char* name;
    em::IoEngine engine;
    bool pipeline;
    std::size_t threads;
  };
  const Schedule schedules[] = {
      {"serial", em::IoEngine::serial, false, 1},
      {"engine_only", em::IoEngine::parallel, false, 1},
      {"pipelined", em::IoEngine::parallel, true, 1},
      {"pipelined_mt", em::IoEngine::parallel, true, 4},
  };

  util::Table table({"schedule", "wall (s)", "speedup", "overlap",
                     "parallel IOs"});
  JsonArtifact artifact("pipeline_overlap");
  CaseResult serial{};
  bool ok = true;
  double mt_speedup = 0.0;
  for (const auto& sch : schedules) {
    auto cfg = base;
    cfg.io_engine = sch.engine;
    cfg.pipeline = sch.pipeline;
    cfg.compute_threads = sch.threads;
    const auto r = run_case(cfg, sch.name, 3);
    if (std::string(sch.name) == "serial") serial = r;
    const double speedup = serial.wall_s / r.wall_s;
    if (std::string(sch.name) == "pipelined_mt") mt_speedup = speedup;
    // Byte-identity half of the claim: every schedule charges the same
    // model I/O count and computes the same answer.
    ok = ok && r.parallel_ios == serial.parallel_ios;
    ok = ok && r.checksum == serial.checksum;
    table.add_row({sch.name, util::fmt_double(r.wall_s, 3),
                   util::fmt_ratio(speedup), util::fmt_double(r.overlap, 3),
                   util::fmt_count(r.parallel_ios)});
    artifact.begin_case(sch.name);
    artifact.metric("wall_s", r.wall_s);
    artifact.metric("speedup_vs_serial", speedup);
    artifact.metric("overlap_ratio", r.overlap);
    artifact.metric("parallel_ios", static_cast<double>(r.parallel_ios));
    artifact.metric("results_match_serial",
                    r.checksum == serial.checksum ? 1.0 : 0.0);
  }
  std::cout << table.render();

  // Acceptance: the fully pipelined schedule beats the serial schedule by
  // >= 1.3x wall-clock on the file backend at D >= 4.
  ok = ok && mt_speedup >= 1.3;
  verdict(ok, "pipelined_mt >= 1.3x over serial schedule with identical "
              "results and model I/O counts");
  const auto path = artifact.write();
  if (!path.empty()) std::cout << "artifact written to " << path << "\n";
  return ok ? 0 : 1;
}
