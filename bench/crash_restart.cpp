// [R-K] Crash-restart soak — kill -9 at arbitrary points, resume must be
// byte-identical.
//
// Sweeps the process-death point across the run: for each crash fraction a
// forked child executes the EM-CGM sort workload with checkpointing on and a
// scripted FaultKind::crash at that backend call (std::_Exit(137) — no
// destructors, no flushes, the SIGKILL failure model), then the parent
// resumes from the orphaned checkpoint directory and checks:
//
//   * correctness — the resumed output equals the uninterrupted run's output
//                   byte for byte, at every crash point;
//   * cost model  — the resumed run's parallel-I/O count matches the
//                   uninterrupted run (checkpoint I/O is off-model);
//   * progress    — at least one crash point resumes from a nonzero epoch
//                   (the harness actually exercised restart, not just
//                   re-execution from scratch).
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "bench_util.hpp"
#include "cgm/sort.hpp"
#include "util/workloads.hpp"

namespace {

struct KeyLess {
  bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
};

std::string fresh_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("embsp_bench_crash_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

}  // namespace

int main() {
  using namespace embsp;
  using namespace embsp::bench;
  banner("R-K", "crash-restart soak: kill -9 sweep with checkpoint resume");

  const std::uint64_t n = 1 << 16;
  auto keys = util::random_keys(n, 5);
  const auto base_cfg = machine(1, 4, 512, 1 << 20);

  // Uninterrupted reference run: output bytes and the parallel-I/O count
  // every resumed run must reproduce.  Also sizes the crash sweep — scripted
  // crash points are per-disk call numbers, approximated as total/D.
  cgm::SeqEmExec base_exec(base_cfg);
  auto base = cgm::cgm_sort<std::uint64_t, KeyLess>(base_exec, keys, 64);
  const auto& base_sim = *base.exec.sim;
  const std::uint64_t disk0_calls =
      (base_sim.total_io.blocks_read + base_sim.total_io.blocks_written) /
      base_cfg.machine.em.D;

  util::Table table({"crash at call", "killed", "resume epoch", "checkpoints",
                     "parallel IOs", "identical"});
  JsonArtifact art("crash_restart");
  bool ok = disk0_calls > 8;
  std::uint64_t kills = 0;
  std::uint64_t resumes_with_progress = 0;
  for (const std::uint64_t num : {1, 2, 3, 4, 5, 6, 7}) {
    const std::uint64_t crash_call = disk0_calls * num / 8;
    const auto dir = fresh_dir("f" + std::to_string(num));

    const pid_t pid = fork();
    if (pid < 0) {
      std::cerr << "fork failed\n";
      return 1;
    }
    if (pid == 0) {
      // Child: same run, checkpointing on, process dies without warning at
      // backend call #crash_call of disk 0.
      auto doomed = base_cfg;
      doomed.checkpoint.dir = dir;
      doomed.faults.scripted.push_back({em::FaultKind::crash, 0u, crash_call});
      try {
        cgm::SeqEmExec exec(doomed);
        cgm::cgm_sort<std::uint64_t, KeyLess>(exec, keys, 64);
      } catch (...) {
      }
      std::_Exit(0);  // reached only if the crash point never fired
    }
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status)) {
      std::cerr << "child did not exit cleanly\n";
      return 1;
    }
    const bool killed = WEXITSTATUS(status) == 137;
    if (killed) ++kills;

    // Parent: resume from the orphaned checkpoint directory.  The child's
    // in-memory disks died with it — everything comes from stable storage.
    auto resumed_cfg = base_cfg;
    resumed_cfg.checkpoint.dir = dir;
    resumed_cfg.checkpoint.resume = true;
    cgm::SeqEmExec exec(resumed_cfg);
    auto out = cgm::cgm_sort<std::uint64_t, KeyLess>(exec, keys, 64);
    const auto& sim = *out.exec.sim;
    const bool identical = out.sorted == base.sorted;
    const bool same_cost =
        sim.total_io.parallel_ios == base_sim.total_io.parallel_ios;
    if (sim.recovery.resume_epoch > 0) ++resumes_with_progress;
    ok = ok && identical && same_cost;

    table.add_row({util::fmt_count(crash_call), killed ? "yes" : "no",
                   util::fmt_count(sim.recovery.resume_epoch),
                   util::fmt_count(sim.recovery.checkpoints),
                   util::fmt_count(sim.total_io.parallel_ios),
                   identical && same_cost ? "yes" : "NO"});
    art.begin_case("crash_" + std::to_string(num) + "_of_8");
    art.metric("crash_call", double(crash_call));
    art.metric("killed", killed ? 1.0 : 0.0);
    art.metric("resume_epoch", double(sim.recovery.resume_epoch));
    art.metric("checkpoints", double(sim.recovery.checkpoints));
    art.metric("parallel_ios", double(sim.total_io.parallel_ios));
    art.metric("identical", identical && same_cost ? 1.0 : 0.0);

    std::filesystem::remove_all(dir);
  }
  // A soak in which no child died — or no resume found a committed epoch —
  // proves nothing.
  ok = ok && kills > 0 && resumes_with_progress > 0;

  std::cout << table.render();
  const auto path = art.write();
  if (!path.empty()) std::cout << "  artifact: " << path << "\n";
  verdict(ok,
          "kill -9 at any point is survivable: resume from the checkpoint "
          "directory reproduces the uninterrupted run byte for byte");
  return ok ? 0 : 1;
}
