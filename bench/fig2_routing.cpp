// [F2] Figure 2 + Lemma 3 — the SimulateRouting reorganization.
//
// Measures the cost and balance of Algorithm 2 on communication-heavy
// supersteps, ablates the padded (paper-exact, dummy-block) mode against
// the compact (exact-count) mode, and compares the whole simulation against
// the Sibeyn–Kaufmann-style naive simulation (one virtual processor at a
// time, dense v x v message matrix, no blocking, no disk parallelism).
#include <iostream>

#include "baseline/naive_sim.hpp"
#include "bench_util.hpp"
#include "sim/seq_simulator.hpp"
#include "util/table.hpp"

namespace {

using namespace embsp;
using namespace embsp::bench;

/// Sparse pseudo-random traffic: every processor sends `fanout` messages of
/// `words` 8-byte words to hashed destinations each superstep — the regime
/// CGM communication rounds live in (h = O(n/v) per processor, most
/// processor pairs silent), and the one where the dense v x v cell matrix
/// pays its v^2-reads-per-superstep tax.
struct SparseTrafficProgram {
  std::size_t rounds = 3;
  std::size_t fanout = 4;
  std::size_t words = 32;

  struct State {
    std::uint64_t checksum = 0;
    void serialize(util::Writer& w) const { w.write(checksum); }
    void deserialize(util::Reader& r) { checksum = r.read<std::uint64_t>(); }
  };

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const {
    for (std::size_t i = 0; i < in.count(); ++i) {
      for (auto x : in.vector<std::uint64_t>(i)) s.checksum += x;
    }
    if (step < rounds) {
      std::vector<std::uint64_t> payload(words);
      for (std::size_t j = 0; j < words; ++j) {
        payload[j] = env.pid * 131 + step * 17 + j;
      }
      for (std::size_t f = 0; f < fanout; ++f) {
        const auto dst = static_cast<std::uint32_t>(
            (env.pid * 2654435761u + step * 40503u + f * 97u + 13u) %
            env.nprocs);
        out.send_vector(dst, payload);
      }
      return true;
    }
    return false;
  }
};

}  // namespace

int main() {
  banner("F2", "SimulateRouting: compact vs padded vs naive simulation");

  constexpr std::uint32_t kV = 128;
  constexpr std::size_t kD = 4;
  constexpr std::size_t kB = 256;
  SparseTrafficProgram prog;
  auto make = [](std::uint32_t) { return SparseTrafficProgram::State{}; };

  util::Table table({"simulator", "parallel IOs", "blocks moved",
                     "utilization", "routing max chain", "dummy blocks",
                     "vs compact"});
  JsonArtifact artifact("F2");

  std::uint64_t compact_ios = 0;
  std::uint64_t auto_ios = 0;
  std::uint64_t checksum_ref = 0;
  bool modes_agree = true;
  for (auto mode : {sim::RoutingMode::compact, sim::RoutingMode::padded,
                    sim::RoutingMode::deterministic,
                    sim::RoutingMode::automatic}) {
    auto cfg = machine(1, kD, kB, 1 << 20);
    cfg.machine.bsp.v = kV;
    cfg.routing = mode;
    cfg.mu = 64;
    // Receive side is hash-skewed: budget several times the average.
    cfg.gamma = 16 * (32 * 8 + 8 + 32) + 64;
    sim::SeqSimulator simr(cfg);
    std::uint64_t checksum = 0;
    auto result = simr.run<SparseTrafficProgram>(
        prog, make, [&](std::uint32_t, SparseTrafficProgram::State& s) {
          checksum += s.checksum;
        });
    if (mode == sim::RoutingMode::compact) {
      compact_ios = result.total_io.parallel_ios;
      checksum_ref = checksum;
    } else {
      modes_agree = modes_agree && checksum == checksum_ref;
    }
    if (mode == sim::RoutingMode::automatic) {
      auto_ios = result.total_io.parallel_ios;
    }
    const auto& io = result.total_io;
    const char* label = mode == sim::RoutingMode::compact
                            ? "EM-BSP (compact)"
                        : mode == sim::RoutingMode::padded
                            ? "EM-BSP (padded, paper-exact)"
                        : mode == sim::RoutingMode::deterministic
                            ? "EM-BSP (deterministic, CGM note)"
                            : "EM-BSP (auto, in-memory routing)";
    table.add_row(
        {label,
         util::fmt_count(io.parallel_ios),
         util::fmt_count(io.blocks_read + io.blocks_written),
         util::fmt_double(io.utilization(kD), 2),
         util::fmt_count(result.routing_stats.max_chain),
         util::fmt_count(result.routing_stats.dummy_blocks),
         util::fmt_ratio(static_cast<double>(io.parallel_ios) /
                         static_cast<double>(compact_ios))});
    artifact.begin_case(label);
    artifact.metric("parallel_ios", static_cast<double>(io.parallel_ios));
    artifact.metric("blocks_moved", static_cast<double>(io.blocks_read +
                                                        io.blocks_written));
    artifact.metric("utilization", io.utilization(kD));
    artifact.metric("routing_max_chain",
                    static_cast<double>(result.routing_stats.max_chain));
    artifact.metric("dummy_blocks",
                    static_cast<double>(result.routing_stats.dummy_blocks));
  }

  // Naive Sibeyn–Kaufmann style comparator.
  baseline::NaiveSimConfig ncfg;
  ncfg.v = kV;
  ncfg.D = kD;
  ncfg.B = kB;
  ncfg.mu = 64;
  ncfg.cell_bytes = 4 * (32 * 8 + 8) + 64;
  baseline::NaiveSimulator naive(ncfg);
  std::uint64_t naive_checksum = 0;
  auto nres = naive.run<SparseTrafficProgram>(
      prog, make, [&](std::uint32_t, SparseTrafficProgram::State& s) {
        naive_checksum += s.checksum;
      });
  table.add_row(
      {"naive (S-K style)", util::fmt_count(nres.total_io.parallel_ios),
       util::fmt_count(nres.total_io.blocks_read +
                       nres.total_io.blocks_written),
       util::fmt_double(nres.total_io.utilization(kD), 2), "-", "-",
       util::fmt_ratio(static_cast<double>(nres.total_io.parallel_ios) /
                       static_cast<double>(compact_ios))});

  artifact.begin_case("naive (S-K style)");
  artifact.metric("parallel_ios",
                  static_cast<double>(nres.total_io.parallel_ios));
  artifact.metric("blocks_moved",
                  static_cast<double>(nres.total_io.blocks_read +
                                      nres.total_io.blocks_written));
  artifact.metric("utilization", nres.total_io.utilization(kD));

  std::cout << table.render();
  const auto path = artifact.write();
  if (!path.empty()) std::cout << "artifact written to " << path << "\n";
  verdict(naive_checksum == checksum_ref && modes_agree,
          "all simulators compute identical results");
  verdict(auto_ios < compact_ios,
          "auto routing (groups fit the staging budget) skips Algorithm 2's "
          "reorganization I/O entirely");
  verdict(nres.total_io.parallel_ios > 3 * compact_ios,
          "blocked, disk-parallel reorganization beats the naive dense "
          "v x v scheme by a wide margin");
  verdict(nres.total_io.utilization(kD) <= 0.25 + 1e-9,
          "the naive scheme cannot use more than one disk per I/O");
  return 0;
}
