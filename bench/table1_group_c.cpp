// [T1-C] Table 1, Group C — graph algorithms.
//
// Regenerates the Group C comparison: EM-CGM list ranking / Euler tour /
// connected components with lambda = O(log p) supersteps and I/O
// ~O~(G log(p) n/(pBD)), against the PRAM-simulation EM baseline (Chiang et
// al. [14] style: one EM sort per pointer-jumping step, log2(n) rounds).
#include <iostream>

#include "baseline/em_list_ranking.hpp"
#include "baseline/em_pram.hpp"
#include "bench_util.hpp"
#include "cgm/graph_components.hpp"
#include "cgm/graph_euler_tour.hpp"
#include "cgm/graph_list_ranking.hpp"
#include "cgm/graph_biconnectivity.hpp"
#include "cgm/graph_tree_contraction.hpp"
#include "util/workloads.hpp"

namespace {

using namespace embsp;
using namespace embsp::bench;

constexpr std::size_t kD = 4;
constexpr std::size_t kB = 512;
constexpr std::size_t kM = 1 << 22;
constexpr std::uint32_t kV = 32;
constexpr std::uint32_t kP = 4;

}  // namespace

int main() {
  banner("T1-C/list-ranking",
         "list ranking: PRAM-simulation EM baseline vs EM-CGM contraction");
  {
    // Shape being reproduced: the PRAM-simulation baseline pays an EM sort
    // per pointer-jumping round — Theta(log n) rounds growing with n —
    // while the EM-CGM algorithm's superstep count depends only on v, so
    // the baseline/CGM ratio must improve with n, and the (inherently
    // sequential) baseline loses to the parallel algorithm's per-processor
    // I/O.
    util::Table table({"n", "PRAM-sim IOs", "PRAM rounds", "EM-CGM p=1 IOs",
                       "EM-CGM p=4 IOs(max)", "lambda", "base/cgm(p=4)"});
    bool ok = true;
    double prev_ratio = 0;
    for (std::uint64_t n : {1u << 12, 1u << 14, 1u << 16}) {
      auto [succ, head] = util::random_list(n, n);
      (void)head;
      em::DiskArray disks(kD, kB);
      baseline::EmListRankStats base_st;
      baseline::em_list_ranking(disks, succ, kM / 64, &base_st);

      cgm::SeqEmExec seq(machine(1, kD, kB, kM));
      auto r1 = cgm::cgm_list_ranking(seq, succ, kV);
      cgm::ParEmExec par(machine(kP, kD, kB, kM));
      auto r4 = cgm::cgm_list_ranking(par, succ, kV);
      std::uint64_t ios4 = 0;
      for (const auto& io : r4.exec.sim->per_proc_io) {
        ios4 = std::max(ios4, io.parallel_ios);
      }
      const auto ios1 = algorithm_ios(*r1.exec.sim);
      const double ratio = static_cast<double>(base_st.total.parallel_ios) /
                           static_cast<double>(ios4);
      table.add_row({util::fmt_count(n),
                     util::fmt_count(base_st.total.parallel_ios),
                     std::to_string(base_st.rounds), util::fmt_count(ios1),
                     util::fmt_count(ios4), std::to_string(r1.exec.lambda),
                     util::fmt_ratio(ratio)});
      ok = ok && ratio > prev_ratio && ios4 < ios1;
      if (n == (1u << 16)) ok = ok && ratio > 1.0;
      prev_ratio = ratio;
    }
    std::cout << table.render();
    verdict(ok,
            "the baseline/EM-CGM ratio improves with n (lambda is n-"
            "independent vs the baseline's log n rounds) and the parallel "
            "EM-CGM algorithm wins outright at the largest n");
  }

  banner("T1-C/pram-framework",
         "general PRAM simulation [14] vs hand-specialized baseline");
  {
    // The same pointer-jumping list ranking expressed three ways: through
    // the general PRAM-to-EM framework (one sort per PRAM step), through
    // the hand-specialized sort-per-jump baseline, and through the paper's
    // EM-CGM simulation.
    class ListRankPram : public baseline::PramProgram {
     public:
      explicit ListRankPram(std::uint64_t n) : n_(n) {}
      void plan_reads(std::uint64_t step, std::uint64_t pid,
                      const baseline::PramContext& ctx,
                      std::vector<std::uint64_t>& addrs) const override {
        if (step % 2 == 0) {
          addrs.push_back(pid);
          addrs.push_back(n_ + pid);
        } else {
          addrs.push_back(ctx.reg[0]);
          addrs.push_back(n_ + ctx.reg[0]);
        }
      }
      bool compute(std::uint64_t step, std::uint64_t pid,
                   baseline::PramContext& ctx,
                   std::span<const std::uint64_t> values,
                   std::vector<baseline::PramWrite>& writes) const override {
        if (step % 2 == 0) {
          ctx.reg[0] = values[0];
          ctx.reg[1] = values[1];
          return true;
        }
        if (ctx.reg[0] != pid) {
          writes.push_back(baseline::PramWrite{pid, values[0]});
          writes.push_back(
              baseline::PramWrite{n_ + pid, ctx.reg[1] + values[1]});
        }
        return (1ull << (step / 2 + 1)) < n_;
      }
     private:
      std::uint64_t n_;
    };

    const std::uint64_t n = 1 << 13;
    auto [succ, head] = util::random_list(n, 77);
    (void)head;
    std::vector<std::uint64_t> memory(2 * n);
    for (std::uint64_t i = 0; i < n; ++i) {
      memory[i] = succ[i];
      memory[n + i] = succ[i] == i ? 0 : 1;
    }
    em::DiskArray pram_disks(kD, kB);
    baseline::PramConfig pcfg;
    pcfg.num_procs = n;
    pcfg.memory_cells = 2 * n;
    baseline::EmPramStats pst;
    baseline::em_pram_run(pram_disks, ListRankPram(n), pcfg, memory,
                          kM / 64, &pst);

    em::DiskArray base_disks(kD, kB);
    baseline::EmListRankStats bst;
    baseline::em_list_ranking(base_disks, succ, kM / 64, &bst);

    cgm::ParEmExec par(machine(kP, kD, kB, kM));
    auto r4 = cgm::cgm_list_ranking(par, succ, kV);
    std::uint64_t cgm_ios = 0;
    for (const auto& io : r4.exec.sim->per_proc_io) {
      cgm_ios = std::max(cgm_ios, io.parallel_ios);
    }

    util::Table table({"technique", "IOs", "steps/rounds"});
    table.add_row({"general PRAM framework [14]",
                   util::fmt_count(pst.total.parallel_ios),
                   std::to_string(pst.steps)});
    table.add_row({"hand-specialized PRAM-sim",
                   util::fmt_count(bst.total.parallel_ios),
                   std::to_string(bst.rounds)});
    table.add_row({"EM-CGM (p=4, max/proc)", util::fmt_count(cgm_ios),
                   std::to_string(r4.exec.lambda)});
    std::cout << table.render();
    verdict(pst.total.parallel_ios > bst.total.parallel_ios,
            "the general framework pays extra sorts per step vs the "
            "specialized instance — the overhead the paper's technique "
            "avoids entirely");
  }

  banner("T1-C/euler-tour", "Euler tour tree computations (depth, subtree)");
  {
    util::Table table({"n", "link lambda", "rank lambda", "p=1 IOs",
                       "p=4 IOs(max)"});
    bool ok = true;
    for (std::uint64_t n : {1u << 12, 1u << 14}) {
      auto parent = util::random_tree(n, n);
      cgm::SeqEmExec seq(machine(1, kD, kB, kM));
      auto r1 = cgm::cgm_euler_tour(seq, parent, kV);
      cgm::ParEmExec par(machine(kP, kD, kB, kM));
      auto r4 = cgm::cgm_euler_tour(par, parent, kV);
      const std::uint64_t ios1 =
          algorithm_ios(*r1.link_exec.sim) + algorithm_ios(*r1.rank_exec.sim);
      std::uint64_t ios4 = 0;
      for (const auto& io : r4.link_exec.sim->per_proc_io) {
        ios4 = std::max(ios4, io.parallel_ios);
      }
      std::uint64_t rank4 = 0;
      for (const auto& io : r4.rank_exec.sim->per_proc_io) {
        rank4 = std::max(rank4, io.parallel_ios);
      }
      ios4 += rank4;
      table.add_row({util::fmt_count(n), std::to_string(r1.link_exec.lambda),
                     std::to_string(r1.rank_exec.lambda),
                     util::fmt_count(ios1), util::fmt_count(ios4)});
      ok = ok && r1.link_exec.lambda == 11 && ios4 < ios1;
    }
    std::cout << table.render();
    verdict(ok, "arc linking is O(1) rounds; ranking dominates at O(log p)");
  }

  banner("T1-C/tree-contraction",
         "tree contraction / expression tree evaluation");
  {
    util::Table table({"internal nodes", "lambda", "p=1 IOs",
                       "p=4 IOs(max)"});
    bool ok = true;
    for (std::uint64_t internal : {1u << 11, 1u << 13}) {
      // Random full binary expression tree.
      util::Rng rng(internal);
      cgm::ExpressionTree t;
      t.parent = {0};
      t.op = {cgm::ExprOp::kAdd};
      t.leaf_value = {rng.next() % 1000};
      t.is_leaf = {1};
      std::vector<std::uint64_t> leaves{0};
      for (std::uint64_t step = 0; step < internal; ++step) {
        const auto pick = static_cast<std::size_t>(rng.below(leaves.size()));
        const std::uint64_t u = leaves[pick];
        leaves[pick] = leaves.back();
        leaves.pop_back();
        t.is_leaf[u] = 0;
        t.op[u] = (rng.next() & 1) ? cgm::ExprOp::kMul : cgm::ExprOp::kAdd;
        for (int c = 0; c < 2; ++c) {
          leaves.push_back(t.parent.size());
          t.parent.push_back(u);
          t.op.push_back(cgm::ExprOp::kAdd);
          t.leaf_value.push_back(rng.next() % 1000);
          t.is_leaf.push_back(1);
        }
      }
      cgm::SeqEmExec seq(machine(1, kD, kB, kM));
      auto r1 = cgm::cgm_tree_contraction(seq, t, kV);
      cgm::ParEmExec par(machine(kP, kD, kB, kM));
      auto r4 = cgm::cgm_tree_contraction(par, t, kV);
      std::uint64_t ios4 = 0;
      for (const auto& io : r4.exec.sim->per_proc_io) {
        ios4 = std::max(ios4, io.parallel_ios);
      }
      const auto ios1 = algorithm_ios(*r1.exec.sim);
      table.add_row({util::fmt_count(internal),
                     std::to_string(r1.exec.lambda), util::fmt_count(ios1),
                     util::fmt_count(ios4)});
      ok = ok && r1.exec.lambda < 300 && ios4 < ios1 &&
           r1.value == cgm::evaluate_expression_tree(t);
    }
    std::cout << table.render();
    verdict(ok,
            "rake-and-compress evaluates every subtree in O(log) rounds and "
            "parallelizes over processors");
  }

  banner("T1-C/biconnectivity", "biconnected components (Tarjan-Vishkin)");
  {
    util::Table table({"n", "m", "blocks", "p=1 IOs", "p=4 IOs(max)"});
    bool ok = true;
    for (std::uint64_t n : {1u << 10, 1u << 12}) {
      // Connected graph: random tree + n/2 extra edges.
      auto parent = util::random_tree(n, n + 5);
      std::vector<util::Edge> edges;
      for (std::uint64_t x = 0; x < n; ++x) {
        if (parent[x] != x) edges.push_back({parent[x], x});
      }
      util::Rng rng(n * 3 + 1);
      for (std::uint64_t e = 0; e < n / 2; ++e) {
        auto a = rng.below(n), b = rng.below(n);
        if (a != b) edges.push_back({a, b});
      }
      cgm::SeqEmExec seq(machine(1, kD, kB, kM));
      auto r1 = cgm::cgm_biconnected_components(seq, n, edges, kV);
      cgm::ParEmExec par(machine(kP, kD, kB, kM));
      auto r4 = cgm::cgm_biconnected_components(par, n, edges, kV);
      const std::uint64_t ios1 = algorithm_ios(*r1.cc_exec.sim) +
                                 algorithm_ios(*r1.aux_exec.sim);
      std::uint64_t ios4 = 0, aux4 = 0;
      for (const auto& io : r4.cc_exec.sim->per_proc_io) {
        ios4 = std::max(ios4, io.parallel_ios);
      }
      for (const auto& io : r4.aux_exec.sim->per_proc_io) {
        aux4 = std::max(aux4, io.parallel_ios);
      }
      ios4 += aux4;
      table.add_row({util::fmt_count(n), util::fmt_count(edges.size()),
                     util::fmt_count(r1.num_blocks), util::fmt_count(ios1),
                     util::fmt_count(ios4)});
      ok = ok && r1.num_blocks == r4.num_blocks && ios4 < ios1;
    }
    std::cout << table.render();
    verdict(ok,
            "Tarjan-Vishkin biconnectivity composes spanning tree + Euler "
            "tour + RMQ + auxiliary connectivity and parallelizes");
  }

  banner("T1-C/components", "connected components + spanning forest");
  {
    util::Table table({"n", "m", "lambda", "hook rounds proxy", "p=1 IOs",
                       "p=4 IOs(max)"});
    bool ok = true;
    for (std::uint64_t n : {1u << 12, 1u << 14}) {
      auto [edges, truth] = util::random_components_graph(n, 8, n, n);
      (void)truth;
      cgm::SeqEmExec seq(machine(1, kD, kB, kM));
      auto r1 = cgm::cgm_connected_components(seq, n, edges, kV);
      cgm::ParEmExec par(machine(kP, kD, kB, kM));
      auto r4 = cgm::cgm_connected_components(par, n, edges, kV);
      std::uint64_t ios4 = 0;
      for (const auto& io : r4.exec.sim->per_proc_io) {
        ios4 = std::max(ios4, io.parallel_ios);
      }
      const auto ios1 = algorithm_ios(*r1.exec.sim);
      table.add_row({util::fmt_count(n), util::fmt_count(edges.size()),
                     std::to_string(r1.exec.lambda),
                     std::to_string(r1.exec.lambda / 9),
                     util::fmt_count(ios1), util::fmt_count(ios4)});
      // O(log p)-flavoured: far fewer supersteps than vertices.
      ok = ok && r1.exec.lambda < 200 && ios4 < ios1;
    }
    std::cout << table.render();
    verdict(ok,
            "components converge in a small number of hook+jump rounds and "
            "parallelize over processors");
  }
  return 0;
}
