// [net_routing] h-relation throughput over the transport tier.
//
// Algorithm 3's wire traffic is a sequence of all-to-all h-relations: every
// rank posts ~h bytes to every peer, then everyone meets at the exchange
// barrier.  This bench measures that exact pattern on both backends —
// in-process loopback (the parity/test configuration) and real unix-domain
// sockets driven from threads (the full framing + checksum + poll-pump
// path) — across message sizes, so transport regressions show up as
// throughput cliffs in BENCH_net_routing.json.
#include <chrono>
#include <cstring>
#include <filesystem>
#include <functional>
#include <thread>
#include <unistd.h>

#include "bench_util.hpp"
#include "net/transport.hpp"
#include "util/rng.hpp"

namespace {

using namespace embsp;

using Clock = std::chrono::steady_clock;

double run_ranks_timed(
    std::vector<std::unique_ptr<net::Transport>>& eps,
    const std::function<void(std::uint32_t, net::Transport&)>& body) {
  std::vector<std::thread> threads;
  const auto t0 = Clock::now();
  for (std::uint32_t r = 0; r < eps.size(); ++r) {
    threads.emplace_back([&, r] { body(r, *eps[r]); });
  }
  for (auto& t : threads) t.join();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<std::unique_ptr<net::Transport>> make_socket_group(
    std::uint32_t p, const std::string& tag) {
  const std::string prefix =
      (std::filesystem::temp_directory_path() /
       ("embsp_bench_net_" + tag + "_" + std::to_string(::getpid())))
          .string();
  std::vector<std::unique_ptr<net::Transport>> eps(p);
  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      net::SocketConfig cfg;
      cfg.address = prefix;
      cfg.rank = r;
      cfg.peers = p;
      eps[r] = net::make_socket_transport(cfg);
    });
  }
  for (auto& t : threads) t.join();
  return eps;
}

struct Case {
  std::size_t msg_bytes;
  std::size_t rounds;
};

/// One h-relation round: every rank posts one msg_bytes message to every
/// other rank, then exchanges.  Returns aggregate wire bytes moved.
double measure(std::vector<std::unique_ptr<net::Transport>>& eps,
               const Case& c) {
  const auto p = static_cast<std::uint32_t>(eps.size());
  return run_ranks_timed(eps, [&](std::uint32_t me, net::Transport& tp) {
    util::Rng rng(me + 1);
    std::vector<std::byte> payload(c.msg_bytes);
    for (auto& b : payload) b = static_cast<std::byte>(rng.below(256));
    for (std::size_t round = 0; round < c.rounds; ++round) {
      for (std::uint32_t q = 0; q < p; ++q) {
        if (q != me) tp.post(q, std::span<const std::byte>(payload));
      }
      auto got = tp.exchange();
      // Touch the delivered bytes so delivery cannot be optimized away.
      volatile std::byte sink{};
      for (std::uint32_t q = 0; q < p; ++q) {
        for (const auto& blob : got[q]) {
          if (!blob.empty()) sink = blob.front();
        }
      }
      (void)sink;
    }
  });
}

}  // namespace

int main() {
  bench::banner("net_routing",
                "h-relation throughput: loopback vs socket transport");

  constexpr std::uint32_t kRanks = 4;
  const Case cases[] = {
      {4u << 10, 256},   // latency-bound: many small frames
      {64u << 10, 128},  // mixed
      {1u << 20, 32},    // bandwidth-bound: pump interleaving dominates
  };

  bench::JsonArtifact artifact("net_routing");
  util::Table table(
      {"transport", "msg bytes", "rounds", "GB moved", "MB/s", "exch/s"});

  for (const auto& c : cases) {
    for (const bool socket : {false, true}) {
      auto eps = socket ? make_socket_group(
                              kRanks, "m" + std::to_string(c.msg_bytes))
                        : net::make_loopback_group(kRanks);
      const double secs = measure(eps, c);
      // Total bytes crossing the transport: p ranks x (p-1) peers x rounds.
      const double bytes = static_cast<double>(c.msg_bytes) * kRanks *
                           (kRanks - 1) * static_cast<double>(c.rounds);
      const double mbps = bytes / 1e6 / secs;
      const double exps = static_cast<double>(c.rounds) / secs;
      const std::string name = std::string(socket ? "socket" : "loopback") +
                               "/" + std::to_string(c.msg_bytes);
      table.add_row({socket ? "socket" : "loopback",
                     std::to_string(c.msg_bytes), std::to_string(c.rounds),
                     util::fmt_double(bytes / 1e9, 2),
                     util::fmt_double(mbps, 1), util::fmt_double(exps, 1)});
      artifact.begin_case(name);
      artifact.metric("msg_bytes", static_cast<double>(c.msg_bytes));
      artifact.metric("ranks", kRanks);
      artifact.metric("rounds", static_cast<double>(c.rounds));
      artifact.metric("seconds", secs);
      artifact.metric("mb_per_s", mbps);
      artifact.metric("exchanges_per_s", exps);
    }
  }

  std::cout << table.render();
  const auto path = artifact.write();
  if (!path.empty()) std::cout << "artifact written to " << path << "\n";
  bench::verdict(true, "h-relation pattern completed on both transports");
  return 0;
}
