// [net_routing] h-relation throughput over the transport tier.
//
// Algorithm 3's wire traffic is a sequence of all-to-all h-relations: every
// rank posts ~h bytes to every peer, then everyone meets at the exchange
// barrier.  This bench measures that exact pattern on both backends —
// in-process loopback (the parity/test configuration) and real unix-domain
// sockets driven from threads (the full framing + checksum + poll-pump
// path) — across message sizes, so transport regressions show up as
// throughput cliffs in BENCH_net_routing.json.
#include <chrono>
#include <cstring>
#include <filesystem>
#include <functional>
#include <thread>
#include <unistd.h>

#include "bench_util.hpp"
#include "em/backend.hpp"
#include "net/transport.hpp"
#include "obs/span.hpp"
#include "sim/dist_simulator.hpp"
#include "util/rng.hpp"
#include "util/serialization.hpp"

namespace {

using namespace embsp;

using Clock = std::chrono::steady_clock;

double run_ranks_timed(
    std::vector<std::unique_ptr<net::Transport>>& eps,
    const std::function<void(std::uint32_t, net::Transport&)>& body) {
  std::vector<std::thread> threads;
  const auto t0 = Clock::now();
  for (std::uint32_t r = 0; r < eps.size(); ++r) {
    threads.emplace_back([&, r] { body(r, *eps[r]); });
  }
  for (auto& t : threads) t.join();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<std::unique_ptr<net::Transport>> make_socket_group(
    std::uint32_t p, const std::string& tag) {
  const std::string prefix =
      (std::filesystem::temp_directory_path() /
       ("embsp_bench_net_" + tag + "_" + std::to_string(::getpid())))
          .string();
  std::vector<std::unique_ptr<net::Transport>> eps(p);
  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      net::SocketConfig cfg;
      cfg.address = prefix;
      cfg.rank = r;
      cfg.peers = p;
      eps[r] = net::make_socket_transport(cfg);
    });
  }
  for (auto& t : threads) t.join();
  return eps;
}

struct Case {
  std::size_t msg_bytes;
  std::size_t rounds;
};

/// One h-relation round: every rank posts one msg_bytes message to every
/// other rank, then exchanges.  Returns aggregate wire bytes moved.
double measure(std::vector<std::unique_ptr<net::Transport>>& eps,
               const Case& c) {
  const auto p = static_cast<std::uint32_t>(eps.size());
  return run_ranks_timed(eps, [&](std::uint32_t me, net::Transport& tp) {
    util::Rng rng(me + 1);
    std::vector<std::byte> payload(c.msg_bytes);
    for (auto& b : payload) b = static_cast<std::byte>(rng.below(256));
    for (std::size_t round = 0; round < c.rounds; ++round) {
      for (std::uint32_t q = 0; q < p; ++q) {
        if (q != me) tp.post(q, std::span<const std::byte>(payload));
      }
      auto got = tp.exchange();
      // Touch the delivered bytes so delivery cannot be optimized away.
      volatile std::byte sink{};
      for (std::uint32_t q = 0; q < p; ++q) {
        for (const auto& blob : got[q]) {
          if (!blob.empty()) sink = blob.front();
        }
      }
      (void)sink;
    }
  });
}

// --- Overlap sweep: blocking vs pipelined DistSimulator ---------------------

/// h-relation-heavy Program for the overlap sweep: every virtual processor
/// carries a fat context (words * 8 bytes, real write-back device time
/// under O_DSYNC file backends), ships payload slices to `fanout` peers
/// each superstep, and runs a deterministic hashing pass — so the
/// pipelined schedule has wire traffic, context write-backs and message
/// writes to hide behind the compute.
struct ShuffleProgram {
  std::size_t words = 2048;     ///< context payload (16 KiB serialized)
  std::size_t msg_words = 1024; ///< per-message payload words
  std::size_t fanout = 2;
  std::size_t steps = 6;
  std::size_t spin = 1 << 15;

  struct State {
    std::vector<std::uint64_t> data;
    std::uint64_t sum = 0;
    void serialize(util::Writer& w) const {
      w.write_vector(data);
      w.write(sum);
    }
    void deserialize(util::Reader& r) {
      data = r.read_vector<std::uint64_t>();
      sum = r.read<std::uint64_t>();
    }
  };

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const {
    if (step == 0) {
      s.data.assign(words, env.pid * 1315423911ULL + 2654435761ULL);
    }
    for (std::size_t i = 0; i < in.count(); ++i) {
      for (auto w : in.vector<std::uint64_t>(i)) s.sum += w;
    }
    std::uint64_t h = 1469598103934665603ULL ^ s.sum;
    for (std::size_t i = 0; i < spin; ++i) {
      h ^= s.data[i & (s.data.size() - 1)];
      h *= 1099511628211ULL;
    }
    s.sum = h;
    s.data[step % s.data.size()] = h;
    env.charge(spin);
    if (step + 1 >= steps) return false;
    std::vector<std::uint64_t> payload(s.data.begin(),
                                       s.data.begin() + msg_words);
    for (std::size_t f = 1; f <= fanout; ++f) {
      out.send_vector(
          static_cast<std::uint32_t>((env.pid + f * 7) % env.nprocs),
          payload);
    }
    return true;
  }
};

struct DistOutcome {
  double secs = 0.0;
  double overlap_ratio = 0.0;     ///< rank 0's net.exchange_overlap_ratio
  std::uint64_t checksum = 0;     ///< fold of the collected final states
};

DistOutcome run_dist_case(bool socket, bool pipeline, const std::string& tag) {
  constexpr std::uint32_t kDistRanks = 2;
  sim::SimConfig cfg;
  cfg.machine.p = kDistRanks;
  cfg.machine.bsp.v = 16;
  cfg.machine.em.D = 4;
  cfg.machine.em.B = 4096;
  cfg.machine.em.M = 1u << 20;
  cfg.mu = 20'000;
  cfg.gamma = 40'000;
  cfg.k = 4;  // same layout for both schedules — only the schedule varies
  cfg.io_engine = em::IoEngine::parallel;
  if (pipeline) {
    cfg.pipeline = true;
    cfg.compute_threads = 2;
  }
  ShuffleProgram prog;
  // O_DSYNC scratch files: context/message writes are genuine device I/O,
  // so the write-behind and prefetch of the overlapped schedule have real
  // latency to hide (same policy as bench/pipeline_overlap).
  const std::string scratch =
      (std::filesystem::temp_directory_path() /
       ("embsp_dist_overlap_" + tag + "_"))
          .string();
  auto factory = [scratch](std::size_t drive) {
    return em::make_file_backend(scratch + std::to_string(drive) + ".bin",
                                 /*keep=*/false, /*sync_writes=*/true);
  };
  obs::Recorder recorder;
  auto eps = socket ? make_socket_group(kDistRanks, tag)
                    : net::make_loopback_group(kDistRanks);
  std::vector<std::uint64_t> sums(cfg.machine.bsp.v, 0);
  DistOutcome out;
  out.secs = run_ranks_timed(eps, [&](std::uint32_t me, net::Transport& tp) {
    auto local = cfg;
    if (me == 0) local.recorder = &recorder;
    sim::DistSimulator sim(local, tp, factory);
    sim.run<ShuffleProgram>(
        prog,
        [](std::uint32_t pid) {
          ShuffleProgram::State s;
          s.sum = pid;
          return s;
        },
        [&, me](std::uint32_t pid, ShuffleProgram::State& s) {
          if (me == 0) sums[pid] = s.sum;
        });
  });
  out.overlap_ratio = recorder.registry.gauge("net.exchange_overlap_ratio");
  for (std::size_t i = 0; i < sums.size(); ++i) {
    out.checksum = out.checksum * 1099511628211ULL + sums[i];
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("net_routing",
                "h-relation throughput: loopback vs socket transport");

  constexpr std::uint32_t kRanks = 4;
  const Case cases[] = {
      {4u << 10, 256},   // latency-bound: many small frames
      {64u << 10, 128},  // mixed
      {1u << 20, 32},    // bandwidth-bound: pump interleaving dominates
  };

  bench::JsonArtifact artifact("net_routing");
  util::Table table(
      {"transport", "msg bytes", "rounds", "GB moved", "MB/s", "exch/s"});

  for (const auto& c : cases) {
    for (const bool socket : {false, true}) {
      auto eps = socket ? make_socket_group(
                              kRanks, "m" + std::to_string(c.msg_bytes))
                        : net::make_loopback_group(kRanks);
      const double secs = measure(eps, c);
      // Total bytes crossing the transport: p ranks x (p-1) peers x rounds.
      const double bytes = static_cast<double>(c.msg_bytes) * kRanks *
                           (kRanks - 1) * static_cast<double>(c.rounds);
      const double mbps = bytes / 1e6 / secs;
      const double exps = static_cast<double>(c.rounds) / secs;
      const std::string name = std::string(socket ? "socket" : "loopback") +
                               "/" + std::to_string(c.msg_bytes);
      table.add_row({socket ? "socket" : "loopback",
                     std::to_string(c.msg_bytes), std::to_string(c.rounds),
                     util::fmt_double(bytes / 1e9, 2),
                     util::fmt_double(mbps, 1), util::fmt_double(exps, 1)});
      artifact.begin_case(name);
      artifact.metric("msg_bytes", static_cast<double>(c.msg_bytes));
      artifact.metric("ranks", kRanks);
      artifact.metric("rounds", static_cast<double>(c.rounds));
      artifact.metric("seconds", secs);
      artifact.metric("mb_per_s", mbps);
      artifact.metric("exchanges_per_s", exps);
    }
  }

  std::cout << table.render();
  const auto path = artifact.write();
  if (!path.empty()) std::cout << "artifact written to " << path << "\n";

  // --- Overlap sweep: full DistSimulator, blocking vs pipelined schedule ---
  bench::banner("dist_overlap",
                "DistSimulator h-relation workload: blocking exchange vs "
                "overlapped (pipeline + progress-pumped wire)");
  bench::JsonArtifact overlap_artifact("dist_overlap");
  util::Table overlap_table({"transport", "blocking s", "overlap s", "speedup",
                             "overlap ratio"});
  bool parity_ok = true;
  // Minimum over reps: O_DSYNC latency on shared hardware is noisy and the
  // minimum is the stable estimator (same policy as bench/pipeline_overlap).
  const auto best_of = [](bool socket, bool pipeline, const std::string& tag) {
    DistOutcome best;
    for (int rep = 0; rep < 2; ++rep) {
      auto r = run_dist_case(socket, pipeline,
                             tag + "_r" + std::to_string(rep));
      if (rep == 0 || r.secs < best.secs) best = r;
    }
    return best;
  };
  for (const bool socket : {false, true}) {
    const std::string name = socket ? "socket" : "loopback";
    const auto blocking = best_of(socket, false, "ov_base_" + name);
    const auto overlapped = best_of(socket, true, "ov_pipe_" + name);
    parity_ok = parity_ok && blocking.checksum == overlapped.checksum;
    const double speedup = blocking.secs / overlapped.secs;
    overlap_table.add_row({name, util::fmt_double(blocking.secs, 3),
                           util::fmt_double(overlapped.secs, 3),
                           util::fmt_double(speedup, 2),
                           util::fmt_double(overlapped.overlap_ratio, 3)});
    overlap_artifact.begin_case(name);
    overlap_artifact.metric("seconds_blocking", blocking.secs);
    overlap_artifact.metric("seconds_overlap", overlapped.secs);
    overlap_artifact.metric("speedup", speedup);
    overlap_artifact.metric("overlap_ratio", overlapped.overlap_ratio);
  }
  std::cout << overlap_table.render();
  const auto overlap_path = overlap_artifact.write();
  if (!overlap_path.empty()) {
    std::cout << "artifact written to " << overlap_path << "\n";
  }
  bench::verdict(parity_ok,
                 parity_ok ? "overlapped schedule matches blocking results "
                             "on both transports"
                           : "overlapped schedule DIVERGED from the "
                             "blocking baseline");
  return parity_ok ? 0 : 1;
}
